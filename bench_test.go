// Benchmarks: one per table and figure of the paper (see the
// experiment index in DESIGN.md), plus micro-benchmarks of the two
// simulators' inner loops. Benchmark scales are reduced so the whole
// suite runs in seconds; the cmd tools run the same drivers at
// quick/paper scale.
package repro

import (
	"context"
	"testing"

	"repro/internal/analytic"
	"repro/internal/bandwidth"
	cachepkg "repro/internal/cache"
	"repro/internal/core"
	"repro/internal/cyclesim"
	"repro/internal/cyclesim/refsim"
	"repro/internal/delivery"
	"repro/internal/design"
	"repro/internal/dsa"
	"repro/internal/exp"
	"repro/internal/game"
	"repro/internal/gossip"
	"repro/internal/job"
	"repro/internal/pra"
	"repro/internal/swarm"
	"repro/internal/swarm/refswarm"
)

// benchCfg is the reduced PRA configuration shared by the figure
// benchmarks.
func benchCfg() pra.Config {
	return pra.Config{Peers: 16, Rounds: 60, PerfRuns: 1, EncounterRuns: 1, Opponents: 8, Seed: 1}
}

// benchProtocols is a small representative protocol set.
func benchProtocols() []design.Protocol {
	ps := []design.Protocol{
		design.BitTorrent(), design.Birds(), design.LoyalWhenNeeded(),
		design.SortS(), design.MostRobustCandidate(), design.Freerider(),
	}
	all := design.Enumerate()
	for i := 0; i < len(all); i += 300 {
		ps = append(ps, all[i])
	}
	return ps
}

// benchSweep memoises one sweep for the figure-extraction benchmarks.
var benchSweepCache *exp.SweepResult

func benchSweep(b *testing.B) *exp.SweepResult {
	b.Helper()
	if benchSweepCache == nil {
		r, err := exp.Sweep(benchProtocols(), benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		benchSweepCache = r
	}
	return benchSweepCache
}

// BenchmarkFig1Games measures the Section 2.1 game analysis: building
// the BitTorrent and Birds dilemmas and finding dominance and Nash
// equilibria.
func BenchmarkFig1Games(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bt, err := game.BitTorrentDilemma(100, 20)
		if err != nil {
			b.Fatal(err)
		}
		birds, err := game.BirdsDilemma(100, 20)
		if err != nil {
			b.Fatal(err)
		}
		_ = bt.PureNash()
		_ = birds.PureNash()
		bt.DominantRow(game.Defect)
		birds.DominantCol(game.Defect)
	}
}

// BenchmarkTable1NashModel measures the Section 2.2 analytical model
// plus the Appendix deviation analysis over the full default grid.
func BenchmarkTable1NashModel(b *testing.B) {
	grid := analytic.DefaultGrid()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := analytic.CheckBTNash(grid); err != nil {
			b.Fatal(err)
		}
		if _, err := analytic.CheckBirdsNash(grid); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig2Sweep measures the full PRA pipeline (performance sweep
// plus robustness and aggressiveness tournaments) that generates the
// Figure 2 scatter, at reduced scale.
func BenchmarkFig2Sweep(b *testing.B) {
	ps := benchProtocols()[:6]
	cfg := benchCfg()
	cfg.Opponents = 4
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exp.Sweep(ps, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig3Heat measures the Figure 3 performance-by-k extraction.
func BenchmarkFig3Heat(b *testing.B) {
	r := benchSweep(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = r.Fig3(10)
	}
}

// BenchmarkFig4Heat measures the Figure 4 robustness-by-k extraction.
func BenchmarkFig4Heat(b *testing.B) {
	r := benchSweep(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = r.Fig4(10)
	}
}

// BenchmarkFig5CCDF measures the Figure 5 stranger-policy CCDFs.
func BenchmarkFig5CCDF(b *testing.B) {
	r := benchSweep(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = r.Fig5()
	}
}

// BenchmarkFig6Fig7Groups measures the Figures 6-7 group extraction.
func BenchmarkFig6Fig7Groups(b *testing.B) {
	r := benchSweep(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = r.Fig6()
		_ = r.Fig7()
	}
}

// BenchmarkFig8Pearson measures the Figure 8 correlation.
func BenchmarkFig8Pearson(b *testing.B) {
	r := benchSweep(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := r.Fig8(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable3Regression measures the three OLS fits of Table 3
// (dummy coding, QR factorisation, inference).
func BenchmarkTable3Regression(b *testing.B) {
	r := benchSweep(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := r.Table3(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkValidate9010 measures the §4.3.2 90-10 robustness
// validation tournament.
func BenchmarkValidate9010(b *testing.B) {
	r := benchSweep(b)
	cfg := benchCfg()
	cfg.Opponents = 4
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := r.Validate9010(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkChurnSweep measures the §4.4 churn sensitivity experiment.
func BenchmarkChurnSweep(b *testing.B) {
	ps := benchProtocols()[:6]
	cfg := benchCfg()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exp.ChurnSweep(ps, []float64{0.01}, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// benchSwarmCfg is a reduced swarm setup for the Figure 9-10 benches.
func benchSwarmCfg() swarm.Config {
	cfg := swarm.Default()
	cfg.FileKiB = 1024
	cfg.PieceKiB = 128
	return cfg
}

// BenchmarkFig9aEncounters measures the Figure 9(a) series
// (Loyal-When-needed vs BitTorrent) at reduced scale.
func BenchmarkFig9aEncounters(b *testing.B) {
	cfg := benchSwarmCfg()
	for i := 0; i < b.N; i++ {
		if _, err := exp.Fig9a(12, 1, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig9bEncounters measures Figure 9(b) (Birds vs BitTorrent).
func BenchmarkFig9bEncounters(b *testing.B) {
	cfg := benchSwarmCfg()
	for i := 0; i < b.N; i++ {
		if _, err := exp.Fig9b(12, 1, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig9cEncounters measures Figure 9(c) (Loyal-When-needed vs
// Birds).
func BenchmarkFig9cEncounters(b *testing.B) {
	cfg := benchSwarmCfg()
	for i := 0; i < b.N; i++ {
		if _, err := exp.Fig9c(12, 1, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig10Homogeneous measures the Figure 10 homogeneous-swarm
// comparison across all five client variants.
func BenchmarkFig10Homogeneous(b *testing.B) {
	cfg := benchSwarmCfg()
	for i := 0; i < b.N; i++ {
		if _, err := exp.Fig10(12, 1, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCyclesimRun measures the Section 4.3.1 cycle simulator at
// paper scale (50 peers, 500 rounds): the unit of work behind the 107
// million runs of the full PRA quantification.
func BenchmarkCyclesimRun(b *testing.B) {
	caps := bandwidth.Piatek().Stratified(50)
	specs := make([]cyclesim.PeerSpec, 50)
	for i := range specs {
		specs[i] = cyclesim.PeerSpec{Protocol: design.BitTorrent(), Capacity: caps[i]}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cyclesim.Run(specs, cyclesim.Options{Rounds: 500, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEncounter measures a single 50/50 PRA encounter at paper
// scale.
func BenchmarkEncounter(b *testing.B) {
	cfg := pra.Paper()
	cfg.Seed = 1
	for i := 0; i < b.N; i++ {
		if _, _, err := pra.Encounter(design.BitTorrent(), design.Freerider(), 0.5, cfg, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSwarmRun measures one paper-scale swarm run (50 leechers,
// 5 MiB file): the unit of work of the Section 5 validation.
func BenchmarkSwarmRun(b *testing.B) {
	clients := make([]swarm.Client, 50)
	for i := range clients {
		clients[i] = swarm.ClientBT
	}
	cfg := swarm.Default()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i)
		if _, err := swarm.Run(clients, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// tournamentBench is the shared setup of the cold tournament-sweep
// pair below: a deterministic robustness tournament (4 protocols × 6
// opponents, paper-scale rounds, single worker so the optimized /
// reference ratio measures the simulator, not the scheduler). "Cold"
// means every score is simulated — no PR 4 cache — which is the
// regime that bounds sweeps of new design-space regions.
func tournamentBench() (ps, opponents []design.Protocol, cfg pra.Config) {
	ps = []design.Protocol{
		design.BitTorrent(), design.SortS(), design.MostRobustCandidate(), design.Freerider(),
	}
	opponents = []design.Protocol{
		design.BitTorrent(), design.Birds(), design.SortS(),
		design.LoyalWhenNeeded(), design.SortRandom(), design.Freerider(),
	}
	cfg = pra.Config{Peers: 30, Rounds: 200, PerfRuns: 1, EncounterRuns: 1, Seed: 1, Workers: 1}
	return ps, opponents, cfg
}

// BenchmarkTournamentCold measures the optimized cold tournament sweep
// — the hot path of every uncached PRA quantification.
// scripts/perf_smoke.sh (run in CI) divides
// BenchmarkTournamentColdReference by this and enforces the >= 2x
// floor of the PR 5 headline claim.
func BenchmarkTournamentCold(b *testing.B) {
	ps, opponents, cfg := tournamentBench()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pra.TournamentScores(ps, opponents, 0.5, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTournamentColdReference runs the identical tournament
// against the frozen pre-optimization simulator (refsim), mirroring
// pra.TournamentScores game for game and seed for seed. The parity
// suite proves both produce bit-equal camp means; this pair measures
// only the cost difference.
func BenchmarkTournamentColdReference(b *testing.B) {
	ps, opponents, cfg := tournamentBench()
	dist := bandwidth.Piatek()
	run := func() {
		for _, p := range ps {
			idA := design.ID(p)
			for _, opp := range opponents {
				idB := design.ID(opp)
				if idA == idB {
					continue
				}
				for r := 0; r < cfg.EncounterRuns; r++ {
					specs, mask := pra.EncounterSpecs(p, opp, cfg.Peers, cfg.Peers/2, dist)
					res, err := refsim.Run(specs, cyclesim.Options{
						Rounds:      cfg.Rounds,
						Seed:        dsa.TaskSeed(cfg.Seed, idA, idB, r, 500),
						Replacement: dist,
					})
					if err != nil {
						b.Fatal(err)
					}
					a := res.GroupMean(func(i int) bool { return mask[i] })
					bm := res.GroupMean(func(i int) bool { return !mask[i] })
					_ = a > bm
				}
			}
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run()
	}
}

// BenchmarkSwarmRunReference is BenchmarkSwarmRun against the frozen
// pre-optimization swarm (refswarm), the second half of the PR 5 perf
// trajectory (reported by scripts/perf_smoke.sh, advisory).
func BenchmarkSwarmRunReference(b *testing.B) {
	clients := make([]swarm.Client, 50)
	for i := range clients {
		clients[i] = swarm.ClientBT
	}
	cfg := swarm.Default()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i)
		if _, err := refswarm.Run(clients, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGossipRun measures one gossip-domain run (the Section 3.1 /
// Section 7 extension).
func BenchmarkGossipRun(b *testing.B) {
	p := gossip.Protocol{Selection: gossip.SelBest, Period: 1, Fanout: 2,
		Filter: gossip.FilterNewest, Record: gossip.RecordKeepAll}
	protos := make([]gossip.Protocol, 30)
	for i := range protos {
		protos[i] = p
	}
	opt := gossip.DefaultOptions()
	opt.Nodes = 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opt.Seed = int64(i)
		if _, err := gossip.Run(protos, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDesignEnumerate measures enumeration of the 3270-protocol
// space with ID round-trips.
func BenchmarkDesignEnumerate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		all := design.Enumerate()
		if design.ID(all[len(all)-1]) != design.SpaceSize-1 {
			b.Fatal("enumeration broken")
		}
	}
}

// benchExploreCfg is the explorer workload of the cache benchmarks:
// small enough to iterate, big enough that real simulation dominates a
// cold run.
func benchExploreCfg() dsa.Config {
	return dsa.Config{Peers: 10, Rounds: 60, PerfRuns: 1, EncounterRuns: 1, Opponents: 4, Seed: 1}
}

func benchExplore(b *testing.B, store *cachepkg.Store) {
	b.Helper()
	var sc dsa.ScoreCache
	if store != nil {
		sc = store
	}
	_, _, err := dsa.HillClimb(gossip.Domain(), dsa.Weights{gossip.MeasureCoverage: 1},
		benchExploreCfg(), core.HillClimbConfig{Restarts: 2, MaxSteps: 15, Seed: 3}, sc)
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkExplorerColdCache is the baseline of the PR 4 headline
// claim: each iteration is a full Section 7 hill climb with every
// score simulated (no cache). Compare against
// BenchmarkExplorerWarmCache — the warm/cold ns/op ratio is the
// measured speedup (CI asserts >= 5x in scripts/cache_smoke.sh).
func BenchmarkExplorerColdCache(b *testing.B) {
	for i := 0; i < b.N; i++ {
		benchExplore(b, nil)
	}
}

// BenchmarkExplorerWarmCache runs the identical hill climb against a
// pre-warmed content-addressed score cache: every evaluation is a key
// derivation plus a sharded-LRU hit, no simulation at all. Results are
// byte-identical to the cold run (asserted by the dsa and job parity
// tests); only the cost changes.
func BenchmarkExplorerWarmCache(b *testing.B) {
	store, err := cachepkg.Open(cachepkg.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer store.Close()
	benchExplore(b, store) // warm every score the search will touch
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchExplore(b, store)
	}
}

// BenchmarkCachedSweepWarm measures the engine-level seam: a full
// job.Run of a 28-point gossip sweep where every score is served from
// the cache (checkpointing off, simulation skipped).
func BenchmarkCachedSweepWarm(b *testing.B) {
	d := gossip.Domain()
	all := d.Space().Enumerate()
	var pts []core.Point
	for i := 0; i < len(all); i += 8 {
		pts = append(pts, all[i])
	}
	cfg := benchExploreCfg()
	store, err := cachepkg.Open(cachepkg.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer store.Close()
	ctx := context.Background()
	if _, err := job.Run(ctx, d, pts, cfg, job.Options{Chunk: 4, Cache: store}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := job.Run(ctx, d, pts, cfg, job.Options{Chunk: 4, Cache: store}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDeliveryRun measures one simulated download of the delivery
// domain (honest scenario, racing strategy) — the inner loop of every
// delivery measure.
func BenchmarkDeliveryRun(b *testing.B) {
	s := delivery.Strategy{Selection: delivery.SelBalanced, Fanout: 4,
		Racing: delivery.RaceWithFallback, Timeout: delivery.TimeoutAdaptive}
	opt := delivery.DefaultOptions()
	opt.Peers = 16
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opt.Seed = int64(i)
		if _, err := delivery.Run(s, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDeliveryScoreSlice measures the delivery domain's ScoreSlice
// across all four measures on a 12-point slice — the task unit the job
// engine shards, and the cost a warm score cache saves.
func BenchmarkDeliveryScoreSlice(b *testing.B) {
	d := delivery.Domain()
	cfg := dsa.Config{Peers: 8, Rounds: 300, PerfRuns: 2, EncounterRuns: 1, Seed: 1, Workers: 1}
	pts := dsa.StridePoints(d, 48)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		raw := map[string][]float64{}
		for _, m := range d.Measures() {
			vals, err := d.ScoreSlice(m, pts, nil, cfg)
			if err != nil {
				b.Fatal(err)
			}
			raw[m] = vals
		}
		if _, err := d.Assemble(pts, raw); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGossipDomainSweep measures a small gossip sweep through the
// generic domain engine (enumeration → ScoreSlice → Assemble), the
// path dsa-sweep -domain gossip takes.
func BenchmarkGossipDomainSweep(b *testing.B) {
	d := gossip.Domain()
	cfg := dsa.Config{Peers: 10, Rounds: 40, PerfRuns: 1, EncounterRuns: 1, Opponents: 3, Seed: 1}
	all := d.Space().Enumerate()
	pts := all[:12]
	opponents := d.SampleOpponents(cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		raw := map[string][]float64{}
		for _, m := range d.Measures() {
			vals, err := d.ScoreSlice(m, pts, opponents, cfg)
			if err != nil {
				b.Fatal(err)
			}
			raw[m] = vals
		}
		if _, err := d.Assemble(pts, raw); err != nil {
			b.Fatal(err)
		}
	}
}
