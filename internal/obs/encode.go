package obs

import (
	"math"
	"strconv"
	"unicode/utf8"
)

// Journal lines are hand-encoded: encoding/json would box every value
// in an interface and walk reflection on the hot path. These helpers
// append into the recorder's reused buffer and allocate nothing (the
// buffer only grows until the longest line fits).

const hexDigits = "0123456789abcdef"

// appendJSONString appends s as a JSON string literal, escaping
// quotes, backslashes, control characters and invalid UTF-8 (which is
// replaced, keeping the output parseable no matter what a caller puts
// in a label).
func appendJSONString(b []byte, s string) []byte {
	b = append(b, '"')
	for i := 0; i < len(s); {
		c := s[i]
		if c < utf8.RuneSelf {
			i++
			switch {
			case c == '"':
				b = append(b, '\\', '"')
			case c == '\\':
				b = append(b, '\\', '\\')
			case c >= 0x20:
				b = append(b, c)
			case c == '\n':
				b = append(b, '\\', 'n')
			case c == '\t':
				b = append(b, '\\', 't')
			case c == '\r':
				b = append(b, '\\', 'r')
			default:
				b = append(b, '\\', 'u', '0', '0', hexDigits[c>>4], hexDigits[c&0xf])
			}
			continue
		}
		r, size := utf8.DecodeRuneInString(s[i:])
		if r == utf8.RuneError && size == 1 {
			b = append(b, '\\', 'u', 'f', 'f', 'f', 'd') // replacement char
			i++
			continue
		}
		b = append(b, s[i:i+size]...)
		i += size
	}
	return append(b, '"')
}

func appendInt(b []byte, v int64) []byte { return strconv.AppendInt(b, v, 10) }

func appendUint(b []byte, v uint64) []byte { return strconv.AppendUint(b, v, 10) }

// appendFloat appends v as a JSON number, or null for the non-finite
// values JSON cannot carry.
func appendFloat(b []byte, v float64) []byte {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return append(b, "null"...)
	}
	return strconv.AppendFloat(b, v, 'g', -1, 64)
}
