package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"time"
)

// Record is one journalled span or event, as read back from a trace
// journal. The JSON field names are the journal format (see the
// DESIGN.md "Observability" section).
type Record struct {
	Writer  string         `json:"w"`
	ID      uint64         `json:"id"`
	Parent  uint64         `json:"par,omitempty"`
	Name    string         `json:"name"`
	StartUS int64          `json:"start_us"`
	DurUS   int64          `json:"dur_us"`
	Attrs   map[string]any `json:"attrs,omitempty"`
}

// Start returns the span's start offset on its writer's timebase.
func (r Record) Start() time.Duration { return time.Duration(r.StartUS) * time.Microsecond }

// Dur returns the span's duration.
func (r Record) Dur() time.Duration { return time.Duration(r.DurUS) * time.Microsecond }

// End returns the span's end offset on its writer's timebase.
func (r Record) End() time.Duration { return r.Start() + r.Dur() }

// AttrStr returns a string attribute, or "" when absent or not a
// string.
func (r Record) AttrStr(key string) string {
	s, _ := r.Attrs[key].(string)
	return s
}

// AttrInt returns a numeric attribute as int64 (JSON numbers decode
// as float64), or 0 when absent.
func (r Record) AttrInt(key string) int64 {
	switch v := r.Attrs[key].(type) {
	case float64:
		return int64(v)
	case json.Number:
		n, _ := v.Int64()
		return n
	}
	return 0
}

// AttrFloat returns a numeric attribute, or NaN when absent.
func (r Record) AttrFloat(key string) float64 {
	if v, ok := r.Attrs[key].(float64); ok {
		return v
	}
	return math.NaN()
}

// journalLess is the canonical total order of the merged timeline:
// start time, then writer, then span ID, then (for robustness against
// duplicated lines) the raw bytes. Deterministic regardless of which
// journal a record came from or in which order files were merged.
func journalLess(ai, bi Record, araw, braw []byte) bool {
	if ai.StartUS != bi.StartUS {
		return ai.StartUS < bi.StartUS
	}
	if ai.Writer != bi.Writer {
		return ai.Writer < bi.Writer
	}
	if ai.ID != bi.ID {
		return ai.ID < bi.ID
	}
	return bytes.Compare(araw, braw) < 0
}

// maxLine bounds one journal line on read. Far above anything the
// recorder emits (maxAttrs small attributes); lines past it are
// treated as corrupt and skipped.
const maxLine = 4 << 20

type rawRecord struct {
	rec Record
	raw []byte
}

// readJournal scans one journal, keeping each valid line's decoded
// record and raw bytes. Lines that do not parse — a torn final line
// from a crashed writer, a corrupted stretch — are skipped, exactly
// like the checkpoint manifest reader: appends are atomic enough in
// practice that a torn line can only be the last one, and skipping it
// loses one span, never the journal.
func readJournal(path string) ([]rawRecord, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return readJournalFrom(f, path)
}

// readJournalFrom is readJournal over any byte stream; name is only
// used in error messages.
func readJournalFrom(r io.Reader, name string) ([]rawRecord, error) {
	var out []rawRecord
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), maxLine)
	for sc.Scan() {
		line := sc.Bytes()
		var rec Record
		if json.Unmarshal(line, &rec) != nil || rec.Name == "" {
			continue // torn or corrupt line: skip, keep the rest
		}
		out = append(out, rawRecord{rec: rec, raw: append([]byte(nil), line...)})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: read %s: %w", name, err)
	}
	return out, nil
}

// LoadFile reads one journal's records in canonical order, skipping
// torn or corrupt lines.
func LoadFile(path string) ([]Record, error) {
	raws, err := readJournal(path)
	if err != nil {
		return nil, err
	}
	return sortedRecords(raws), nil
}

// LoadReader reads one JSONL record stream — e.g. a merged journal
// fetched from a coordinator's GET /v1/trace — into canonical order,
// skipping torn or corrupt lines exactly like the file readers.
func LoadReader(r io.Reader) ([]Record, error) {
	raws, err := readJournalFrom(r, "stream")
	if err != nil {
		return nil, err
	}
	return sortedRecords(raws), nil
}

// LoadFiles reads the given journals into one merged, canonically
// ordered timeline. The result is independent of argument order; zero
// paths yield zero records.
func LoadFiles(paths ...string) ([]Record, error) {
	var raws []rawRecord
	for _, p := range paths {
		rs, err := readJournal(p)
		if err != nil {
			return nil, err
		}
		raws = append(raws, rs...)
	}
	return sortedRecords(raws), nil
}

// JournalFiles lists the trace journals under dir, sorted by name.
func JournalFiles(dir string) ([]string, error) {
	paths, err := filepath.Glob(filepath.Join(dir, JournalPattern))
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	return paths, nil
}

// LoadDir reads every trace-*.jsonl journal under dir — one per shard
// or worker — into one merged, canonically ordered timeline. The
// result is independent of file system enumeration order.
func LoadDir(dir string) ([]Record, error) {
	paths, err := JournalFiles(dir)
	if err != nil {
		return nil, err
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("obs: no %s journals in %s", JournalPattern, dir)
	}
	return LoadFiles(paths...)
}

func sortedRecords(raws []rawRecord) []Record {
	sort.SliceStable(raws, func(a, b int) bool {
		return journalLess(raws[a].rec, raws[b].rec, raws[a].raw, raws[b].raw)
	})
	out := make([]Record, len(raws))
	for i, r := range raws {
		out[i] = r.rec
	}
	return out
}

// Merge writes the records of the given journals to w as one ordered
// JSONL timeline. Output lines are the input lines verbatim, ordered
// by the canonical total order, so merging the same set of journals
// produces byte-identical output regardless of argument order — the
// same property the checkpoint's shard manifests have. Returns the
// number of records written.
func Merge(w io.Writer, paths ...string) (int, error) {
	var raws []rawRecord
	for _, p := range paths {
		rs, err := readJournal(p)
		if err != nil {
			return 0, err
		}
		raws = append(raws, rs...)
	}
	sort.SliceStable(raws, func(a, b int) bool {
		return journalLess(raws[a].rec, raws[b].rec, raws[a].raw, raws[b].raw)
	})
	bw := bufio.NewWriter(w)
	for _, r := range raws {
		if _, err := bw.Write(r.raw); err != nil {
			return 0, err
		}
		if err := bw.WriteByte('\n'); err != nil {
			return 0, err
		}
	}
	return len(raws), bw.Flush()
}
