package obs

import (
	"testing"
	"time"
)

// mkTask builds a task record for analyzer tests.
func mkTask(writer string, id, parent uint64, measure string, start, dur time.Duration, hits, sim int64) Record {
	return Record{
		Writer: writer, ID: id, Parent: parent, Name: "task",
		StartUS: start.Microseconds(), DurUS: dur.Microseconds(),
		Attrs: map[string]any{
			"measure":    measure,
			"points":     float64(hits + sim),
			"cache_hits": float64(hits),
			"simulated":  float64(sim),
		},
	}
}

func TestAnalyzeEmpty(t *testing.T) {
	a := Analyze(nil)
	if a.Records != 0 || a.Tasks != 0 || len(a.Measures) != 0 || len(a.CriticalPath) != 0 {
		t.Errorf("empty analysis not empty: %+v", a)
	}
}

func TestAnalyzeAggregates(t *testing.T) {
	var recs []Record
	// Two workers; w1 runs two 10ms perf tasks back to back, w2 runs one
	// 20ms robust task overlapping nothing.
	recs = append(recs,
		Record{Writer: "w1", ID: 1, Name: "sweep", StartUS: 0, DurUS: 30_000},
		mkTask("w1", 2, 1, "perf", 0, 10*time.Millisecond, 2, 8),
		mkTask("w1", 3, 1, "perf", 10*time.Millisecond, 10*time.Millisecond, 10, 0),
		mkTask("w2", 2, 0, "robust", 0, 20*time.Millisecond, 0, 10),
		Record{Writer: "w1", ID: 4, Parent: 1, Name: "cache-lookup",
			Attrs: map[string]any{"outcome": "hit"}},
		Record{Writer: "w1", ID: 5, Parent: 1, Name: "cache-lookup",
			Attrs: map[string]any{"outcome": "miss"}},
	)
	a := Analyze(recs)

	if a.Tasks != 3 {
		t.Errorf("tasks = %d, want 3", a.Tasks)
	}
	if a.TaskBusy != 40*time.Millisecond {
		t.Errorf("task busy = %v, want 40ms", a.TaskBusy)
	}
	if a.PointsSimulated != 18 || a.PointsCached != 12 {
		t.Errorf("points sim/cached = %d/%d, want 18/12", a.PointsSimulated, a.PointsCached)
	}
	if a.CacheLookups != 2 || a.CacheHits != 1 {
		t.Errorf("lookups/hits = %d/%d, want 2/1", a.CacheLookups, a.CacheHits)
	}

	if len(a.Measures) != 2 {
		t.Fatalf("measures = %d, want 2", len(a.Measures))
	}
	perf := a.Measures[0] // sorted by name: perf < robust
	if perf.Measure != "perf" || perf.Tasks != 2 {
		t.Fatalf("measure[0] = %+v", perf)
	}
	if perf.Min != 10*time.Millisecond || perf.Max != 10*time.Millisecond ||
		perf.Mean != 10*time.Millisecond {
		t.Errorf("perf min/mean/max = %v/%v/%v", perf.Min, perf.Mean, perf.Max)
	}
	if perf.CacheHits != 12 || perf.Simulated != 8 || perf.Points != 20 {
		t.Errorf("perf attribution = hits %d sim %d pts %d", perf.CacheHits, perf.Simulated, perf.Points)
	}
	nHist := 0
	for _, c := range perf.Hist {
		nHist += c
	}
	if nHist != 2 {
		t.Errorf("perf histogram holds %d tasks, want 2", nHist)
	}

	if len(a.Workers) != 2 {
		t.Fatalf("workers = %d, want 2", len(a.Workers))
	}
	w1 := a.Workers[0]
	if w1.Writer != "w1" || w1.Tasks != 2 || w1.Busy != 20*time.Millisecond ||
		w1.Window != 20*time.Millisecond {
		t.Errorf("w1 = %+v", w1)
	}
	if w1.Parallelism < 0.99 || w1.Parallelism > 1.01 {
		t.Errorf("w1 parallelism = %v, want ~1", w1.Parallelism)
	}
	if a.Wall != 20*time.Millisecond {
		t.Errorf("wall = %v, want 20ms", a.Wall)
	}

	// Critical path: the w1 sweep (30ms) and its heaviest child chain.
	if len(a.CriticalPath) != 2 {
		t.Fatalf("critical path len = %d, want 2: %+v", len(a.CriticalPath), a.CriticalPath)
	}
	if a.CriticalPath[0].Name != "sweep" || a.CriticalPath[1].Name != "task" {
		t.Errorf("critical path = %q → %q", a.CriticalPath[0].Name, a.CriticalPath[1].Name)
	}
}

func TestAnalyzeStragglers(t *testing.T) {
	var recs []Record
	id := uint64(1)
	// 15 ordinary 10ms tasks and one 200ms outlier.
	for i := 0; i < 15; i++ {
		recs = append(recs, mkTask("w", id, 0, "perf",
			time.Duration(i)*10*time.Millisecond, 10*time.Millisecond, 0, 1))
		id++
	}
	recs = append(recs, mkTask("w", id, 0, "perf",
		150*time.Millisecond, 200*time.Millisecond, 0, 1))

	a := Analyze(recs)
	if len(a.Stragglers) != 1 {
		t.Fatalf("stragglers = %d, want 1", len(a.Stragglers))
	}
	s := a.Stragglers[0]
	if s.Dur != 200*time.Millisecond || s.Measure != "perf" {
		t.Errorf("straggler = %+v", s)
	}
	if s.Factor < 10 {
		t.Errorf("straggler factor = %v, want >= 10", s.Factor)
	}
	if s.Typical != 10*time.Millisecond {
		t.Errorf("straggler typical = %v, want 10ms", s.Typical)
	}
}

func TestAnalyzeUniformNoStragglers(t *testing.T) {
	var recs []Record
	for i := 0; i < 20; i++ {
		recs = append(recs, mkTask("w", uint64(i+1), 0, "perf",
			time.Duration(i)*10*time.Millisecond, 10*time.Millisecond, 0, 1))
	}
	if a := Analyze(recs); len(a.Stragglers) != 0 {
		t.Errorf("uniform tasks produced %d stragglers", len(a.Stragglers))
	}
}

func TestCriticalPathPerWriter(t *testing.T) {
	// Same span IDs on two writers must not cross-link.
	recs := []Record{
		{Writer: "a", ID: 1, Name: "sweep", DurUS: 1000},
		{Writer: "a", ID: 2, Parent: 1, Name: "task", DurUS: 900},
		{Writer: "b", ID: 1, Name: "sweep", DurUS: 5000},
		{Writer: "b", ID: 2, Parent: 1, Name: "task", DurUS: 100},
	}
	path := criticalPath(recs)
	if len(path) != 2 || path[0].Writer != "b" {
		t.Fatalf("critical path = %+v, want b's sweep chain", path)
	}
}
