package obs

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestRoundtrip(t *testing.T) {
	dir := t.TempDir()
	rec, err := OpenDir(dir, "s0of2")
	if err != nil {
		t.Fatal(err)
	}

	root := rec.Start(0, "sweep").Str("domain", "pra").Int("points", 100)
	task := rec.Start(root.ID(), "task").
		Str("measure", "perf").Int("cache_hits", 3).Int("simulated", 7).Float("frac", 0.3)
	time.Sleep(time.Millisecond)
	taskID := task.ID()
	task.End()
	rec.Event(root.ID(), "cache-lookup").Str("outcome", "hit").End()
	root.End()
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}

	recs, err := LoadFile(JournalPath(dir, "s0of2"))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("got %d records, want 3", len(recs))
	}
	byName := map[string]Record{}
	for _, r := range recs {
		byName[r.Name] = r
		if r.Writer != "s0of2" {
			t.Errorf("record %q writer = %q, want s0of2", r.Name, r.Writer)
		}
	}
	sweep, ok := byName["sweep"]
	if !ok {
		t.Fatal("no sweep record")
	}
	if sweep.Parent != 0 {
		t.Errorf("sweep parent = %d, want 0", sweep.Parent)
	}
	if got := sweep.AttrStr("domain"); got != "pra" {
		t.Errorf("sweep domain = %q", got)
	}
	if got := sweep.AttrInt("points"); got != 100 {
		t.Errorf("sweep points = %d", got)
	}
	task2 := byName["task"]
	if SpanID(task2.ID) != taskID {
		t.Errorf("task id = %d, want %d", task2.ID, taskID)
	}
	if SpanID(task2.Parent) != SpanID(sweep.ID) {
		t.Errorf("task parent = %d, want %d", task2.Parent, sweep.ID)
	}
	if task2.DurUS < 900 {
		t.Errorf("task dur = %dus, want >= ~1ms", task2.DurUS)
	}
	if got := task2.AttrFloat("frac"); got != 0.3 {
		t.Errorf("task frac = %v", got)
	}
	ev := byName["cache-lookup"]
	if ev.DurUS != 0 {
		t.Errorf("event dur = %d, want 0", ev.DurUS)
	}
	if ev.AttrStr("outcome") != "hit" {
		t.Errorf("event outcome = %q", ev.AttrStr("outcome"))
	}
	// Canonical order: sweep started first.
	if recs[0].Name != "sweep" {
		t.Errorf("first record = %q, want sweep", recs[0].Name)
	}
}

func TestCountingRecorder(t *testing.T) {
	rec := NewRecorder("mem")
	rec.Start(0, "task").End()
	rec.CountTask(1)
	rec.CountSimulated(7)
	rec.CountCached(3)
	rec.CacheLookup(true)
	rec.CacheLookup(true)
	rec.CacheLookup(false)
	rec.CountCachePut()
	rec.CountUploadRetries(2)
	st := rec.Stats()
	want := Stats{Spans: 4, TasksDone: 1, PointsSimulated: 7, PointsCached: 3,
		CacheHits: 2, CacheMisses: 1, CachePuts: 1, UploadRetries: 2}
	if st != want {
		t.Errorf("stats = %+v, want %+v", st, want)
	}
	if err := rec.Close(); err != nil {
		t.Errorf("close: %v", err)
	}
}

func TestNilSafety(t *testing.T) {
	var rec *Recorder
	s := rec.Start(0, "x")
	s.Str("a", "b").Int("c", 1).Float("d", 2)
	if s.ID() != 0 {
		t.Error("nil span id != 0")
	}
	s.End()
	rec.Event(0, "e").End()
	rec.Interval(0, "i", 0, time.Second).Drop()
	rec.CacheLookup(true)
	rec.CountTask(1)
	rec.CountSimulated(1)
	rec.CountCached(1)
	rec.CountCachePut()
	rec.CountUploadRetries(1)
	if rec.Stats() != (Stats{}) {
		t.Error("nil stats not zero")
	}
	if rec.Now() != 0 {
		t.Error("nil Now != 0")
	}
	if rec.Writer() != "" {
		t.Error("nil Writer != empty")
	}
	if err := rec.Flush(); err != nil {
		t.Error(err)
	}
	if err := rec.Close(); err != nil {
		t.Error(err)
	}
}

func TestIntervalAndDrop(t *testing.T) {
	dir := t.TempDir()
	rec, err := OpenDir(dir, "w")
	if err != nil {
		t.Fatal(err)
	}
	rec.Interval(0, "gen", 10*time.Millisecond, 25*time.Millisecond).Int("gen", 3).End()
	rec.Interval(0, "tail", 25*time.Millisecond, 25*time.Millisecond).Drop() // dangling tail: no record
	rec.Start(0, "errored").Drop()
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	recs, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("got %d records, want 1 (dropped spans must not be journalled)", len(recs))
	}
	r := recs[0]
	if r.StartUS != 10_000 || r.DurUS != 15_000 {
		t.Errorf("interval = start %dus dur %dus, want 10000/15000", r.StartUS, r.DurUS)
	}
}

func TestAttrOverflowAndEscaping(t *testing.T) {
	dir := t.TempDir()
	rec, err := OpenDir(dir, `we"ird\name`)
	if err != nil {
		t.Fatal(err)
	}
	s := rec.Start(0, "x").Str("q", "a\"b\\c\nd\x01e\xfff")
	for i := 0; i < 2*maxAttrs; i++ {
		s.Int(fmt.Sprintf("k%d", i), int64(i)) // past maxAttrs: dropped, not corrupted
	}
	s.Float("nan", nanFloat()).End()
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	recs, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("got %d records, want 1", len(recs))
	}
	r := recs[0]
	if r.Writer != `we"ird\name` {
		t.Errorf("writer = %q", r.Writer)
	}
	if got := r.AttrStr("q"); got != "a\"b\\c\nd\x01e�f" {
		t.Errorf("escaped attr = %q", got)
	}
	if len(r.Attrs) != maxAttrs {
		t.Errorf("attrs kept = %d, want %d", len(r.Attrs), maxAttrs)
	}
}

func nanFloat() float64 { // avoid the math import for one constant
	var z float64
	return z / z
}

func TestTornFinalLineSkipped(t *testing.T) {
	dir := t.TempDir()
	rec, err := OpenDir(dir, "w")
	if err != nil {
		t.Fatal(err)
	}
	rec.Start(0, "a").End()
	rec.Start(0, "b").End()
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	path := JournalPath(dir, "w")

	// Simulate a crash mid-append: a final line cut off partway.
	whole, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.SplitAfter(whole, []byte("\n"))
	if len(lines) < 3 {
		t.Fatalf("expected 2 full lines, got %q", whole)
	}
	torn := append(append([]byte{}, whole...), lines[0][:len(lines[0])/2]...)
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	recs, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d records after torn tail, want 2", len(recs))
	}
	for i, want := range []string{"a", "b"} {
		if recs[i].Name != want {
			t.Errorf("record %d = %q, want %q", i, recs[i].Name, want)
		}
	}

	// A journal that is nothing but garbage loads as empty, not error.
	garbled := filepath.Join(dir, "trace-garbled.jsonl")
	if err := os.WriteFile(garbled, []byte("{half a rec"), 0o644); err != nil {
		t.Fatal(err)
	}
	recs, err = LoadFile(garbled)
	if err != nil || len(recs) != 0 {
		t.Errorf("garbled journal: recs=%d err=%v, want 0/nil", len(recs), err)
	}
}

func TestMergeOrderIndependent(t *testing.T) {
	dir := t.TempDir()
	for i, name := range []string{"s0of2", "s1of2"} {
		rec, err := OpenDir(dir, name)
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j < 5; j++ {
			rec.Interval(0, "task", time.Duration(j)*time.Millisecond,
				time.Duration(j+1)*time.Millisecond).
				Int("shard", int64(i)).End()
		}
		if err := rec.Close(); err != nil {
			t.Fatal(err)
		}
	}
	a := JournalPath(dir, "s0of2")
	b := JournalPath(dir, "s1of2")

	var ab, ba bytes.Buffer
	nab, err := Merge(&ab, a, b)
	if err != nil {
		t.Fatal(err)
	}
	nba, err := Merge(&ba, b, a)
	if err != nil {
		t.Fatal(err)
	}
	if nab != 10 || nba != 10 {
		t.Fatalf("merged %d / %d records, want 10", nab, nba)
	}
	if !bytes.Equal(ab.Bytes(), ba.Bytes()) {
		t.Fatal("merge output depends on argument order")
	}
	// Ordered by start time, ties broken by writer.
	recs, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].StartUS < recs[i-1].StartUS {
			t.Fatalf("record %d out of order", i)
		}
		if recs[i].StartUS == recs[i-1].StartUS && recs[i].Writer < recs[i-1].Writer {
			t.Fatalf("record %d writer tie-break out of order", i)
		}
	}
}

func TestJournalPathSanitizes(t *testing.T) {
	got := JournalPath("d", "a/b:c 1")
	if got != filepath.Join("d", "trace-a_b_c_1.jsonl") {
		t.Errorf("JournalPath = %q", got)
	}
	if got := JournalPath("d", "///"); got != filepath.Join("d", "trace-___.jsonl") {
		t.Errorf("JournalPath slashes = %q", got)
	}
	if got := JournalPath("d", ""); !strings.Contains(got, "trace-writer.jsonl") {
		t.Errorf("JournalPath empty = %q", got)
	}
}

func TestResumeAppends(t *testing.T) {
	dir := t.TempDir()
	for run := 0; run < 2; run++ {
		rec, err := OpenDir(dir, "w")
		if err != nil {
			t.Fatal(err)
		}
		rec.Start(0, "task").Int("run", int64(run)).End()
		if err := rec.Close(); err != nil {
			t.Fatal(err)
		}
	}
	recs, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("resumed journal has %d records, want 2", len(recs))
	}
}
