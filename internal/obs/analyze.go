package obs

import (
	"math"
	"sort"
	"time"
)

// Analysis is the digest dsa-report trace renders: where wall-clock
// time went, which measures dominate, which tasks straggled, and how
// busy each worker was. All durations are on the writers' own
// monotonic timebases; cross-writer clocks are never compared, only
// per-writer windows and per-span durations.
type Analysis struct {
	Records int // journalled spans and events

	Tasks    int           // "task" spans
	TaskBusy time.Duration // summed task durations across all writers
	Wall     time.Duration // widest per-writer window (first start → last end)

	PointsSimulated int64 // summed from task spans
	PointsCached    int64
	CacheLookups    int64 // cache-lookup events
	CacheHits       int64 // cache-lookup events with outcome=hit

	Measures   []MeasureStat // per-measure task timing, one row per measure
	Workers    []WorkerStat  // per-writer utilization
	Stragglers []Straggler   // outlier tasks, slowest first

	// CriticalPath is the longest root→leaf chain of nested spans on
	// any single writer — the sequence a faster component would have
	// to shorten to shorten the run.
	CriticalPath []Record
}

// HistBuckets is the number of equal-width duration buckets in a
// MeasureStat histogram.
const HistBuckets = 8

// MeasureStat aggregates the task spans of one measure.
type MeasureStat struct {
	Measure string
	Tasks   int

	Min, Mean, P50, P90, Max time.Duration
	Total                    time.Duration

	// Hist counts tasks in HistBuckets equal-width duration buckets
	// spanning [Min, Max].
	Hist [HistBuckets]int

	Points    int64 // points attributed to this measure's tasks
	CacheHits int64 // of which cache-served
	Simulated int64 // of which simulated
}

// WorkerStat is one writer's (shard's or worker's) utilization.
type WorkerStat struct {
	Writer string
	Tasks  int

	Busy   time.Duration // summed task durations
	Window time.Duration // first task start → last task end on this writer

	// Parallelism is Busy/Window: mean concurrent tasks in flight.
	Parallelism float64

	Simulated int64
	CacheHits int64
}

// Straggler is a task span far outside its measure's typical
// duration.
type Straggler struct {
	Record  Record
	Measure string
	Dur     time.Duration
	Typical time.Duration // the measure's median
	Factor  float64       // Dur / Typical
}

// Analyze digests a merged record timeline (from LoadDir or LoadFile).
func Analyze(records []Record) *Analysis {
	a := &Analysis{Records: len(records)}
	if len(records) == 0 {
		return a
	}

	type mAgg struct {
		durs      []time.Duration
		total     time.Duration
		points    int64
		hits      int64
		simulated int64
		tasks     []Record
	}
	measures := map[string]*mAgg{}
	type wAgg struct {
		tasks     int
		busy      time.Duration
		lo, hi    time.Duration
		simulated int64
		hits      int64
		seen      bool
	}
	workers := map[string]*wAgg{}

	for _, r := range records {
		switch r.Name {
		case "task":
			a.Tasks++
			a.TaskBusy += r.Dur()
			sim := r.AttrInt("simulated")
			hit := r.AttrInt("cache_hits")
			a.PointsSimulated += sim
			a.PointsCached += hit

			m := r.AttrStr("measure")
			ma := measures[m]
			if ma == nil {
				ma = &mAgg{}
				measures[m] = ma
			}
			ma.durs = append(ma.durs, r.Dur())
			ma.total += r.Dur()
			ma.points += r.AttrInt("points")
			ma.hits += hit
			ma.simulated += sim
			ma.tasks = append(ma.tasks, r)

			wa := workers[r.Writer]
			if wa == nil {
				wa = &wAgg{}
				workers[r.Writer] = wa
			}
			wa.tasks++
			wa.busy += r.Dur()
			if !wa.seen || r.Start() < wa.lo {
				wa.lo = r.Start()
			}
			if !wa.seen || r.End() > wa.hi {
				wa.hi = r.End()
			}
			wa.seen = true
			wa.simulated += sim
			wa.hits += hit
		case "cache-lookup":
			// Instant outcome events from an instrumented cache carry
			// "outcome"; the job's per-task lookup-phase span does not
			// and is timing, not a lookup count.
			switch r.AttrStr("outcome") {
			case "hit":
				a.CacheLookups++
				a.CacheHits++
			case "miss":
				a.CacheLookups++
			}
		}
	}

	// Per-measure stats and straggler detection.
	names := make([]string, 0, len(measures))
	for m := range measures {
		names = append(names, m)
	}
	sort.Strings(names)
	for _, m := range names {
		ma := measures[m]
		sort.Slice(ma.durs, func(i, j int) bool { return ma.durs[i] < ma.durs[j] })
		n := len(ma.durs)
		st := MeasureStat{
			Measure:   m,
			Tasks:     n,
			Min:       ma.durs[0],
			Max:       ma.durs[n-1],
			P50:       quantile(ma.durs, 0.50),
			P90:       quantile(ma.durs, 0.90),
			Mean:      ma.total / time.Duration(n),
			Total:     ma.total,
			Points:    ma.points,
			CacheHits: ma.hits,
			Simulated: ma.simulated,
		}
		width := st.Max - st.Min
		for _, d := range ma.durs {
			b := 0
			if width > 0 {
				b = int(int64(d-st.Min) * HistBuckets / (int64(width) + 1))
			}
			st.Hist[min(b, HistBuckets-1)]++
		}
		a.Measures = append(a.Measures, st)

		// A straggler runs past mean+3σ, or past 3× the median when
		// the sample is big enough for the median to mean something.
		if n >= 2 {
			mean := float64(st.Mean)
			var varsum float64
			for _, d := range ma.durs {
				varsum += (float64(d) - mean) * (float64(d) - mean)
			}
			sigma := math.Sqrt(varsum / float64(n))
			med := float64(st.P50)
			for _, r := range ma.tasks {
				d := float64(r.Dur())
				if d > mean+3*sigma || (n >= 8 && med > 0 && d > 3*med) {
					a.Stragglers = append(a.Stragglers, Straggler{
						Record:  r,
						Measure: m,
						Dur:     r.Dur(),
						Typical: st.P50,
						Factor:  d / math.Max(med, 1),
					})
				}
			}
		}
	}
	sort.Slice(a.Stragglers, func(i, j int) bool { return a.Stragglers[i].Dur > a.Stragglers[j].Dur })
	if len(a.Stragglers) > 10 {
		a.Stragglers = a.Stragglers[:10]
	}

	// Per-worker utilization, widest window = wall clock estimate.
	wnames := make([]string, 0, len(workers))
	for w := range workers {
		wnames = append(wnames, w)
	}
	sort.Strings(wnames)
	for _, w := range wnames {
		wa := workers[w]
		ws := WorkerStat{
			Writer:    w,
			Tasks:     wa.tasks,
			Busy:      wa.busy,
			Window:    wa.hi - wa.lo,
			Simulated: wa.simulated,
			CacheHits: wa.hits,
		}
		if ws.Window > 0 {
			ws.Parallelism = float64(ws.Busy) / float64(ws.Window)
		}
		if ws.Window > a.Wall {
			a.Wall = ws.Window
		}
		a.Workers = append(a.Workers, ws)
	}

	a.CriticalPath = criticalPath(records)
	return a
}

// quantile reads q from sorted durations (nearest-rank).
func quantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

// criticalPath finds, per writer, the root span chain with the
// largest cumulative child duration and returns the longest such
// chain across writers. Chains never cross writers: each journal has
// its own monotonic timebase and span ID space.
func criticalPath(records []Record) []Record {
	type key struct {
		w  string
		id uint64
	}
	children := map[key][]Record{}
	var roots []Record
	for _, r := range records {
		if r.Parent == 0 {
			roots = append(roots, r)
		} else {
			k := key{r.Writer, r.Parent}
			children[k] = append(children[k], r)
		}
	}
	// Longest cumulative chain from r downward. Memo-free DFS is fine:
	// each span has exactly one parent, so the tree is walked once.
	var chain func(r Record) (time.Duration, []Record)
	chain = func(r Record) (time.Duration, []Record) {
		bestDur := time.Duration(0)
		var bestTail []Record
		for _, c := range children[key{r.Writer, r.ID}] {
			d, tail := chain(c)
			if d > bestDur {
				bestDur, bestTail = d, tail
			}
		}
		return r.Dur() + bestDur, append([]Record{r}, bestTail...)
	}
	var best []Record
	bestDur := time.Duration(-1)
	for _, r := range roots {
		d, path := chain(r)
		if d > bestDur {
			bestDur, best = d, path
		}
	}
	return best
}
