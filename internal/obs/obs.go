// Package obs is the engine-side tracing subsystem: spans with
// monotonic timestamps, parent IDs and typed attributes, recorded to
// an append-only JSONL trace journal that lives alongside the job
// checkpoint and merges across shards and workers the same way result
// files do. Where internal/gridobs instruments the HTTP surface of the
// grid, obs instruments the evaluation seams below it — sweep → task →
// cache-lookup → simulate on the engine path, explore → generation on
// the explorer path, lease → task → upload on a grid worker — so a
// slow sweep can finally be attributed: to stragglers, to a cold
// cache, to one measure's simulation cost, or to an idle worker.
//
// The package is dependency-free (stdlib only) and layered strictly
// below every engine package, so any of them can record into it.
//
// Two contracts shape the design:
//
//   - Observation never changes results. A recorder hands out spans
//     and counts events; it takes no part in scheduling, seeding or
//     value computation. Sweeps traced and untraced are byte-identical
//     — the trace smoke test pins this with real processes.
//
//   - Zero allocations in steady state. Span handles come from a
//     freelist, attributes live in fixed arrays, and journal lines are
//     encoded into a reused buffer with strconv appends — no fmt, no
//     interface boxing. AllocsPerRun pins in alloc_test.go enforce it,
//     so the PR 5 hot-path guarantees (0 allocs per simulated round)
//     survive with tracing on. Instrumentation sits at the sweep /
//     task / point level, never inside simulator round loops.
//
// A nil *Recorder is valid everywhere and records nothing, so call
// sites thread one unconditionally instead of branching.
package obs

import (
	"bufio"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// SpanID identifies a span within one recorder's journal. IDs are
// unique per recorder instance; the merged-timeline identity of a span
// is (writer, id) plus its start time. 0 is "no span" — a root.
type SpanID uint64

// maxAttrs bounds the typed attributes one span can carry. Setters
// past the cap drop silently — a span is a measurement, not a log
// line, and a fixed array is what keeps recording allocation-free.
const maxAttrs = 12

const (
	attrString = iota
	attrInt
	attrFloat
)

type attr struct {
	key  string
	kind uint8
	s    string
	i    int64
	f    float64
}

// Span is an in-flight measurement: created by Recorder.Start (or
// Interval), annotated with typed attributes, and written to the
// journal by End. Handles are recycled — a Span must not be touched
// after End or Drop. All methods are safe on a nil Span.
type Span struct {
	r      *Recorder
	id     SpanID
	parent SpanID
	name   string
	start  time.Duration // since the recorder epoch (monotonic)
	dur    time.Duration // fixed duration for Interval spans
	fixed  bool          // dur is authoritative; End must not re-measure
	nattr  int
	attrs  [maxAttrs]attr
	next   *Span // freelist link
}

// Stats is a snapshot of a recorder's event counters — the live feed
// behind dsa-sweep's progress rates and the worker /metrics registry.
type Stats struct {
	Spans           uint64 // journal records written (or counted, if memory-only)
	TasksDone       uint64 // engine tasks completed
	PointsSimulated uint64 // points actually simulated (cache misses included)
	PointsCached    uint64 // points served from the score cache
	CacheHits       uint64 // cache lookup outcomes reported by an instrumented store
	CacheMisses     uint64
	CachePuts       uint64
	UploadRetries   uint64 // grid upload HTTP retries beyond the first attempt
}

// Recorder records spans and counts events. Open one per writer —
// a sweep shard ("s0of4") or a grid worker name — so every journal
// file has a single appender and records carry their origin. A
// Recorder is safe for concurrent use; a nil Recorder is a no-op.
type Recorder struct {
	writer string
	epoch  time.Time

	nextID atomic.Uint64

	mu   sync.Mutex
	w    *bufio.Writer // nil: counting-only recorder
	f    *os.File
	free *Span
	buf  []byte
	err  error // first write error; surfaced by Close

	spans           atomic.Uint64
	tasksDone       atomic.Uint64
	pointsSimulated atomic.Uint64
	pointsCached    atomic.Uint64
	cacheHits       atomic.Uint64
	cacheMisses     atomic.Uint64
	cachePuts       atomic.Uint64
	uploadRetries   atomic.Uint64
}

// NewRecorder returns a memory-only recorder: spans are timed and
// counted (Stats works) but no journal is written. This is what a
// plain dsa-sweep runs with so its progress line always has live
// cache-hit and points/sec rates, journal or not.
func NewRecorder(writer string) *Recorder {
	return &Recorder{writer: writer, epoch: time.Now()}
}

// JournalPattern matches the trace journal files of a directory.
const JournalPattern = "trace-*.jsonl"

// JournalPath returns the journal path for one writer under dir:
// trace-<writer>.jsonl, with path-hostile characters mapped away.
func JournalPath(dir, writer string) string {
	clean := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
			return r
		}
		return '_'
	}, writer)
	if clean == "" {
		clean = "writer"
	}
	return filepath.Join(dir, "trace-"+clean+".jsonl")
}

// OpenDir opens (creating dir if needed) a journaling recorder whose
// records append to JournalPath(dir, writer). Appending is crash-
// tolerant by the same rule as the checkpoint manifests: a torn final
// line is skipped on load, never corrupts earlier records, and a
// resumed run simply keeps appending. Close flushes and syncs.
func OpenDir(dir, writer string) (*Recorder, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return Open(JournalPath(dir, writer), writer)
}

// Open opens a journaling recorder appending to path.
func Open(path, writer string) (*Recorder, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	r := NewRecorder(writer)
	r.f = f
	r.w = bufio.NewWriterSize(f, 64<<10)
	r.buf = make([]byte, 0, 1024)
	return r, nil
}

// Writer returns the identity stamped on this recorder's records.
func (r *Recorder) Writer() string {
	if r == nil {
		return ""
	}
	return r.writer
}

// Now returns the monotonic offset since the recorder's epoch — the
// timebase of every span it records. 0 on a nil recorder.
func (r *Recorder) Now() time.Duration {
	if r == nil {
		return 0
	}
	return time.Since(r.epoch)
}

// Start begins a span under parent (0 = root). The span is journalled
// when End is called on it. Nil recorders return a nil (no-op) span.
func (r *Recorder) Start(parent SpanID, name string) *Span {
	if r == nil {
		return nil
	}
	s := r.get()
	s.parent = parent
	s.name = name
	s.start = time.Since(r.epoch)
	return s
}

// Interval records a span whose boundaries the caller measured itself
// (via Now) — how callback-driven seams like the explorers' generation
// hooks turn "time between callbacks" into spans. End writes it with
// exactly the given duration.
func (r *Recorder) Interval(parent SpanID, name string, start, end time.Duration) *Span {
	if r == nil {
		return nil
	}
	s := r.get()
	s.parent = parent
	s.name = name
	s.start = start
	s.dur = max(end-start, 0)
	s.fixed = true
	return s
}

// Event records an instant (zero-duration) occurrence. The returned
// span still takes attributes; call End to write it.
func (r *Recorder) Event(parent SpanID, name string) *Span {
	if r == nil {
		return nil
	}
	s := r.get()
	s.parent = parent
	s.name = name
	s.start = time.Since(r.epoch)
	s.fixed = true // dur stays 0
	return s
}

// get pops a span handle off the freelist (or allocates the first
// time through — steady state never does).
func (r *Recorder) get() *Span {
	r.mu.Lock()
	s := r.free
	if s != nil {
		r.free = s.next
	}
	r.mu.Unlock()
	if s == nil {
		s = &Span{}
	}
	s.r = r
	s.id = SpanID(r.nextID.Add(1))
	s.parent = 0
	s.dur = 0
	s.fixed = false
	s.nattr = 0
	return s
}

// ID returns the span's identifier for parenting children; 0 on nil.
func (s *Span) ID() SpanID {
	if s == nil {
		return 0
	}
	return s.id
}

// Str attaches a string attribute. Returns s for chaining.
func (s *Span) Str(key, val string) *Span {
	if s == nil || s.nattr == maxAttrs {
		return s
	}
	s.attrs[s.nattr] = attr{key: key, kind: attrString, s: val}
	s.nattr++
	return s
}

// Int attaches an integer attribute.
func (s *Span) Int(key string, val int64) *Span {
	if s == nil || s.nattr == maxAttrs {
		return s
	}
	s.attrs[s.nattr] = attr{key: key, kind: attrInt, i: val}
	s.nattr++
	return s
}

// Float attaches a float attribute. Non-finite values are journalled
// as null (JSON has no NaN/Inf) and read back as absent.
func (s *Span) Float(key string, val float64) *Span {
	if s == nil || s.nattr == maxAttrs {
		return s
	}
	s.attrs[s.nattr] = attr{key: key, kind: attrFloat, f: val}
	s.nattr++
	return s
}

// End closes the span and appends its record to the journal. The
// handle is recycled — do not touch s afterwards.
func (s *Span) End() {
	if s == nil {
		return
	}
	r := s.r
	if !s.fixed {
		s.dur = time.Since(r.epoch) - s.start
	}
	r.record(s)
}

// Drop recycles the span without writing anything — for a measurement
// abandoned mid-flight (an errored task, a dangling tail interval).
func (s *Span) Drop() {
	if s == nil {
		return
	}
	r := s.r
	r.mu.Lock()
	s.next = r.free
	r.free = s
	r.mu.Unlock()
}

// record encodes the span into the reused line buffer, appends it to
// the journal, and recycles the handle — one lock, zero allocations in
// steady state.
func (r *Recorder) record(s *Span) {
	r.spans.Add(1)
	r.mu.Lock()
	if r.w != nil {
		b := r.buf[:0]
		b = append(b, `{"w":`...)
		b = appendJSONString(b, r.writer)
		b = append(b, `,"id":`...)
		b = appendUint(b, uint64(s.id))
		if s.parent != 0 {
			b = append(b, `,"par":`...)
			b = appendUint(b, uint64(s.parent))
		}
		b = append(b, `,"name":`...)
		b = appendJSONString(b, s.name)
		b = append(b, `,"start_us":`...)
		b = appendInt(b, s.start.Microseconds())
		b = append(b, `,"dur_us":`...)
		b = appendInt(b, s.dur.Microseconds())
		if s.nattr > 0 {
			b = append(b, `,"attrs":{`...)
			for i := 0; i < s.nattr; i++ {
				if i > 0 {
					b = append(b, ',')
				}
				a := &s.attrs[i]
				b = appendJSONString(b, a.key)
				b = append(b, ':')
				switch a.kind {
				case attrString:
					b = appendJSONString(b, a.s)
				case attrInt:
					b = appendInt(b, a.i)
				case attrFloat:
					b = appendFloat(b, a.f)
				}
			}
			b = append(b, '}')
		}
		b = append(b, '}', '\n')
		r.buf = b
		if _, err := r.w.Write(b); err != nil && r.err == nil {
			r.err = err
		}
	}
	s.next = r.free
	r.free = s
	r.mu.Unlock()
}

// CacheLookup is the score cache's outcome event: counts the hit or
// miss and journals an instant "cache-lookup" event. Wired in by
// cache.Store.SetTracer; allocation-free so it can sit on the lookup
// path of every point of a sweep.
func (r *Recorder) CacheLookup(hit bool) {
	if r == nil {
		return
	}
	outcome := "miss"
	if hit {
		r.cacheHits.Add(1)
		outcome = "hit"
	} else {
		r.cacheMisses.Add(1)
	}
	r.Event(0, "cache-lookup").Str("outcome", outcome).End()
}

// CountCachePut counts a score recorded into an instrumented cache.
func (r *Recorder) CountCachePut() {
	if r != nil {
		r.cachePuts.Add(1)
	}
}

// CountTask counts completed engine tasks.
func (r *Recorder) CountTask(n int) {
	if r != nil && n > 0 {
		r.tasksDone.Add(uint64(n))
	}
}

// CountSimulated counts points whose scores were computed by the
// domain's ScoreSlice (as opposed to served from a cache).
func (r *Recorder) CountSimulated(n int) {
	if r != nil && n > 0 {
		r.pointsSimulated.Add(uint64(n))
	}
}

// CountCached counts points served from the score cache.
func (r *Recorder) CountCached(n int) {
	if r != nil && n > 0 {
		r.pointsCached.Add(uint64(n))
	}
}

// CountUploadRetries counts grid upload attempts beyond the first.
func (r *Recorder) CountUploadRetries(n int) {
	if r != nil && n > 0 {
		r.uploadRetries.Add(uint64(n))
	}
}

// Stats snapshots the counters. Zero value on a nil recorder.
func (r *Recorder) Stats() Stats {
	if r == nil {
		return Stats{}
	}
	return Stats{
		Spans:           r.spans.Load(),
		TasksDone:       r.tasksDone.Load(),
		PointsSimulated: r.pointsSimulated.Load(),
		PointsCached:    r.pointsCached.Load(),
		CacheHits:       r.cacheHits.Load(),
		CacheMisses:     r.cacheMisses.Load(),
		CachePuts:       r.cachePuts.Load(),
		UploadRetries:   r.uploadRetries.Load(),
	}
}

// Flush forces buffered records to the journal file (Close does this
// too; Flush is for long-lived recorders that want bounded loss).
func (r *Recorder) Flush() error {
	if r == nil || r.w == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.w.Flush(); err != nil && r.err == nil {
		r.err = err
	}
	return r.err
}

// Close flushes and syncs the journal and surfaces the first write
// error. Safe on a nil or memory-only recorder; idempotent.
func (r *Recorder) Close() error {
	if r == nil || r.f == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.w.Flush(); err != nil && r.err == nil {
		r.err = err
	}
	if err := r.f.Sync(); err != nil && r.err == nil {
		r.err = err
	}
	if err := r.f.Close(); err != nil && r.err == nil {
		r.err = err
	}
	r.f, r.w = nil, nil
	return r.err
}
