//go:build !race

package obs

import "testing"

// These pins are the package's second contract: recording is
// allocation-free in steady state, so the PR 5 hot-path guarantees
// (0 allocs per simulated round) hold with tracing on. The warmup
// pass grows the freelist and the line buffer; after it, a span's
// whole life — Start, attributes, End, journal append — must not
// allocate. Excluded under -race like the cyclesim/swarm pins: the
// race runtime adds bookkeeping allocations.

func TestSpanAllocsJournaled(t *testing.T) {
	rec, err := OpenDir(t.TempDir(), "alloc")
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()

	span := func() {
		s := rec.Start(0, "task")
		s.Str("measure", "perf").Int("points", 8).Int("cache_hits", 3).
			Int("simulated", 5).Float("frac", 0.625)
		s.End()
	}
	for i := 0; i < 100; i++ { // warmup: freelist + line buffer reach steady state
		span()
	}
	if avg := testing.AllocsPerRun(500, span); avg != 0 {
		t.Errorf("journaled span allocates %.2f per op, want 0", avg)
	}
}

func TestSpanAllocsCounting(t *testing.T) {
	rec := NewRecorder("mem")
	span := func() {
		s := rec.Start(0, "task")
		s.Str("measure", "perf").Int("points", 8)
		s.End()
	}
	for i := 0; i < 100; i++ {
		span()
	}
	if avg := testing.AllocsPerRun(500, span); avg != 0 {
		t.Errorf("counting span allocates %.2f per op, want 0", avg)
	}
}

func TestCacheLookupAllocs(t *testing.T) {
	rec, err := OpenDir(t.TempDir(), "alloc")
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()

	hit := true
	look := func() {
		rec.CacheLookup(hit)
		hit = !hit
	}
	for i := 0; i < 100; i++ {
		look()
	}
	if avg := testing.AllocsPerRun(500, look); avg != 0 {
		t.Errorf("cache lookup event allocates %.2f per op, want 0", avg)
	}
}

func TestCounterAllocs(t *testing.T) {
	rec := NewRecorder("mem")
	count := func() {
		rec.CountTask(1)
		rec.CountSimulated(8)
		rec.CountCached(3)
		rec.CountCachePut()
		rec.CountUploadRetries(1)
		_ = rec.Stats()
	}
	for i := 0; i < 10; i++ {
		count()
	}
	if avg := testing.AllocsPerRun(500, count); avg != 0 {
		t.Errorf("counters allocate %.2f per op, want 0", avg)
	}
}

func TestNilRecorderAllocs(t *testing.T) {
	var rec *Recorder
	op := func() {
		s := rec.Start(0, "task")
		s.Str("a", "b").Int("c", 1)
		s.End()
		rec.CacheLookup(true)
		rec.CountSimulated(1)
	}
	if avg := testing.AllocsPerRun(500, op); avg != 0 {
		t.Errorf("nil recorder allocates %.2f per op, want 0", avg)
	}
}
