package obs

import (
	"bytes"
	"io"
	"os"
)

// DefaultChunkBytes bounds one ReadChunk window (and therefore one
// trace upload body) when the caller passes maxBytes <= 0. Large
// enough that a whole typical journal ships in one or two requests,
// small enough to stay far under any coordinator body cap.
const DefaultChunkBytes = 1 << 20

// ReadChunk reads the journal at path from byte offset, returning at
// most maxBytes of *complete* lines and the offset just past them.
// The recorder's buffered writer can flush mid-line, so the window is
// truncated at its last '\n': a chunk always ends on a record
// boundary and the returned bytes can be appended verbatim to a
// collected copy of the journal without ever tearing a record.
//
// data is empty (end == offset) when there is nothing new past
// offset, when the window holds no complete line yet, or when the
// file does not exist. Callers resume by passing end back as the next
// offset.
func ReadChunk(path string, offset int64, maxBytes int) (data []byte, end int64, err error) {
	if maxBytes <= 0 {
		maxBytes = DefaultChunkBytes
	}
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, offset, nil
		}
		return nil, offset, err
	}
	defer f.Close()
	buf := make([]byte, maxBytes)
	n, err := f.ReadAt(buf, offset)
	if err != nil && err != io.EOF {
		return nil, offset, err
	}
	buf = buf[:n]
	i := bytes.LastIndexByte(buf, '\n')
	if i < 0 {
		return nil, offset, nil
	}
	buf = buf[:i+1]
	return buf, offset + int64(len(buf)), nil
}
