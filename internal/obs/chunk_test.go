package obs

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestReadChunkRecordBoundaries(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trace-w.jsonl")
	body := []byte("line-one\nline-two\nline-three\n")
	if err := os.WriteFile(path, body, 0o644); err != nil {
		t.Fatal(err)
	}

	// A max smaller than the file must end on a newline, never mid-line.
	data, end, err := ReadChunk(path, 0, 12)
	if err != nil {
		t.Fatal(err)
	}
	if want := []byte("line-one\n"); !bytes.Equal(data, want) {
		t.Fatalf("chunk = %q, want %q", data, want)
	}
	if end != 9 {
		t.Fatalf("end = %d, want 9", end)
	}

	// Resuming at the returned end walks the rest of the file.
	var got []byte
	off := end
	for {
		data, next, err := ReadChunk(path, off, 12)
		if err != nil {
			t.Fatal(err)
		}
		if len(data) == 0 {
			break
		}
		got = append(got, data...)
		off = next
	}
	if !bytes.Equal(append([]byte("line-one\n"), got...), body) {
		t.Fatalf("resumed chunks reassemble to %q, want %q", got, body)
	}
	if off != int64(len(body)) {
		t.Fatalf("final offset = %d, want %d", off, len(body))
	}
}

func TestReadChunkTornTail(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trace-w.jsonl")
	if err := os.WriteFile(path, []byte("full\n{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	data, end, err := ReadChunk(path, 0, DefaultChunkBytes)
	if err != nil {
		t.Fatal(err)
	}
	if want := []byte("full\n"); !bytes.Equal(data, want) {
		t.Fatalf("chunk = %q, want %q (torn tail must be withheld)", data, want)
	}
	if end != 5 {
		t.Fatalf("end = %d, want 5", end)
	}
	// Nothing but the torn tail left: empty chunk, offset unchanged.
	data, end, err = ReadChunk(path, end, DefaultChunkBytes)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != 0 || end != 5 {
		t.Fatalf("torn-only chunk = %q end %d, want empty at 5", data, end)
	}
}

func TestReadChunkMissingFile(t *testing.T) {
	data, end, err := ReadChunk(filepath.Join(t.TempDir(), "nope.jsonl"), 7, 64)
	if err != nil {
		t.Fatalf("missing journal must read as empty, got %v", err)
	}
	if len(data) != 0 || end != 7 {
		t.Fatalf("missing file chunk = %q end %d, want empty at 7", data, end)
	}
}

func TestLoadReaderMatchesLoadFiles(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"a", "b"} {
		rec, err := OpenDir(dir, name)
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j < 3; j++ {
			rec.Interval(0, "task", time.Duration(j)*time.Millisecond, time.Millisecond).End()
		}
		if err := rec.Close(); err != nil {
			t.Fatal(err)
		}
	}
	files, err := JournalFiles(dir)
	if err != nil {
		t.Fatal(err)
	}
	fromFiles, err := LoadFiles(files...)
	if err != nil {
		t.Fatal(err)
	}
	var merged bytes.Buffer
	if _, err := Merge(&merged, files...); err != nil {
		t.Fatal(err)
	}
	fromReader, err := LoadReader(bytes.NewReader(merged.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(fromReader) != len(fromFiles) {
		t.Fatalf("LoadReader = %d records, LoadFiles = %d", len(fromReader), len(fromFiles))
	}
	for i := range fromFiles {
		if fromReader[i].StartUS != fromFiles[i].StartUS || fromReader[i].Writer != fromFiles[i].Writer ||
			fromReader[i].ID != fromFiles[i].ID {
			t.Fatalf("record %d differs: %+v vs %+v", i, fromReader[i], fromFiles[i])
		}
	}
}

func TestLoadFilesEmpty(t *testing.T) {
	recs, err := LoadFiles()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("LoadFiles() = %d records, want 0", len(recs))
	}
}
