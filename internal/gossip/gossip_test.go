package gossip

import (
	"testing"
	"testing/quick"

	"repro/internal/core"
)

func proto() Protocol {
	return Protocol{Selection: SelRandom, Period: 1, Fanout: 2, Filter: FilterNewest, Record: RecordKeepAll}
}

func uniform(p Protocol, n int) []Protocol {
	out := make([]Protocol, n)
	for i := range out {
		out[i] = p
	}
	return out
}

func TestValidate(t *testing.T) {
	if err := proto().Validate(); err != nil {
		t.Fatalf("valid protocol rejected: %v", err)
	}
	bad := []func(*Protocol){
		func(p *Protocol) { p.Selection = Selection(9) },
		func(p *Protocol) { p.Period = 3 },
		func(p *Protocol) { p.Fanout = 0 },
		func(p *Protocol) { p.Fanout = 4 },
		func(p *Protocol) { p.Filter = Filter(9) },
		func(p *Protocol) { p.Record = Record(9) },
	}
	for i, mutate := range bad {
		p := proto()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestSpaceSize(t *testing.T) {
	s := Space()
	if s.Size() != 4*3*3*3*2 {
		t.Errorf("gossip space size = %d, want 216", s.Size())
	}
	// Every point converts to a valid protocol.
	for _, pt := range s.Enumerate() {
		if _, err := FromPoint(pt); err != nil {
			t.Fatalf("point %v: %v", pt, err)
		}
	}
	if _, err := FromPoint(core.Point{0, 0}); err == nil {
		t.Error("wrong arity should error")
	}
}

func TestStringNames(t *testing.T) {
	p := proto()
	if p.String() != "Random/p1/f2/Newest/KeepAll" {
		t.Errorf("String = %q", p.String())
	}
	if SelBest.String() != "Best" || FilterRarest.String() != "Rarest" || RecordExpire.String() != "Expire" {
		t.Error("names wrong")
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(uniform(proto(), 1), DefaultOptions()); err == nil {
		t.Error("single node should error")
	}
	opt := DefaultOptions()
	opt.Nodes = 5
	if _, err := Run(uniform(proto(), 10), opt); err == nil {
		t.Error("node count mismatch should error")
	}
	opt2 := DefaultOptions()
	opt2.Rounds = 0
	opt2.Nodes = 0
	if _, err := Run(uniform(proto(), 10), opt2); err == nil {
		t.Error("zero rounds should error")
	}
	bad := uniform(proto(), 10)
	bad[3].Fanout = 99
	opt3 := DefaultOptions()
	opt3.Nodes = 0
	if _, err := Run(bad, opt3); err == nil {
		t.Error("invalid node protocol should error")
	}
}

func TestDeterminism(t *testing.T) {
	opt := DefaultOptions()
	opt.Nodes = 0
	a, err := Run(uniform(proto(), 20), opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(uniform(proto(), 20), opt)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Utility {
		if a.Utility[i] != b.Utility[i] {
			t.Fatal("not deterministic")
		}
	}
}

func TestGossipSpreads(t *testing.T) {
	opt := DefaultOptions()
	opt.Nodes = 0
	res, err := Run(uniform(proto(), 30), opt)
	if err != nil {
		t.Fatal(err)
	}
	// With ~200 rumours injected and active gossip, nodes should learn
	// a substantial number from others.
	if res.Mean() < 50 {
		t.Errorf("mean rumours learned = %v, want >= 50", res.Mean())
	}
}

func TestFreeridersLearnLessUnderBest(t *testing.T) {
	// A camp of FilterNone freeriders inside a SelBest population
	// should underperform the contributors: Best selection routes
	// exchanges toward nodes that deliver.
	n := 30
	contributor := Protocol{Selection: SelBest, Period: 1, Fanout: 2, Filter: FilterNewest, Record: RecordKeepAll}
	freerider := contributor
	freerider.Filter = FilterNone
	protos := make([]Protocol, n)
	for i := range protos {
		if i%3 == 0 {
			protos[i] = freerider
		} else {
			protos[i] = contributor
		}
	}
	opt := DefaultOptions()
	opt.Nodes = 0
	res, err := Run(protos, opt)
	if err != nil {
		t.Fatal(err)
	}
	fr := res.GroupMean(func(i int) bool { return i%3 == 0 })
	co := res.GroupMean(func(i int) bool { return i%3 != 0 })
	if fr >= co {
		t.Errorf("freeriders %v should learn less than contributors %v", fr, co)
	}
}

func TestHigherFanoutSpreadsFaster(t *testing.T) {
	opt := DefaultOptions()
	opt.Nodes = 0
	low := proto()
	low.Fanout = 1
	high := proto()
	high.Fanout = 3
	lowRes, err := Run(uniform(low, 30), opt)
	if err != nil {
		t.Fatal(err)
	}
	highRes, err := Run(uniform(high, 30), opt)
	if err != nil {
		t.Fatal(err)
	}
	if highRes.Mean() <= lowRes.Mean() {
		t.Errorf("fanout 3 (%v) should spread more than fanout 1 (%v)", highRes.Mean(), lowRes.Mean())
	}
}

func TestSlowerPeriodSpreadsLess(t *testing.T) {
	opt := DefaultOptions()
	opt.Nodes = 0
	fast := proto()
	slow := proto()
	slow.Period = 4
	fastRes, err := Run(uniform(fast, 30), opt)
	if err != nil {
		t.Fatal(err)
	}
	slowRes, err := Run(uniform(slow, 30), opt)
	if err != nil {
		t.Fatal(err)
	}
	if slowRes.Mean() >= fastRes.Mean() {
		t.Errorf("period 4 (%v) should spread less than period 1 (%v)", slowRes.Mean(), fastRes.Mean())
	}
}

func TestExpiryReducesCoverage(t *testing.T) {
	opt := DefaultOptions()
	opt.Nodes = 0
	opt.ExpireAge = 5
	keep := proto()
	exp := proto()
	exp.Record = RecordExpire
	keepRes, err := Run(uniform(keep, 30), opt)
	if err != nil {
		t.Fatal(err)
	}
	expRes, err := Run(uniform(exp, 30), opt)
	if err != nil {
		t.Fatal(err)
	}
	// Expiring records cannot beat keeping everything in coverage
	// terms (re-learning counts again, but forwarding capacity is
	// lost); allow equality for safety.
	if expRes.Mean() > keepRes.Mean()*1.5 {
		t.Errorf("expiry coverage %v unexpectedly above keep-all %v", expRes.Mean(), keepRes.Mean())
	}
}

func TestUtilityNonNegativeProperty(t *testing.T) {
	s := Space()
	pts := s.Enumerate()
	f := func(idx uint16, seed int64) bool {
		p, err := FromPoint(pts[int(idx)%len(pts)])
		if err != nil {
			return false
		}
		opt := DefaultOptions()
		opt.Nodes = 0
		opt.Rounds = 50
		opt.Seed = seed
		res, err := Run(uniform(p, 10), opt)
		if err != nil {
			return false
		}
		for _, u := range res.Utility {
			if u < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestGroupMeanEmpty(t *testing.T) {
	var r Result
	if r.Mean() != 0 {
		t.Error("empty mean should be 0")
	}
	r2 := Result{Utility: []float64{1}}
	if r2.GroupMean(func(int) bool { return false }) != 0 {
		t.Error("empty group mean should be 0")
	}
}
