package gossip

import (
	"fmt"
	"slices"
	"sync"

	"repro/internal/core"
	"repro/internal/dsa"
	"repro/internal/stats"
)

// DomainName is the gossip domain's registry name.
const DomainName = "gossip"

// Measure kinds of the gossip solution concept: Coverage is the
// domain's performance analogue (population mean rumours learned per
// node in a homogeneous population, min-max normalised over the
// evaluated set), Robustness the 50/50 tournament win fraction exactly
// as in the file-swarming domain.
const (
	MeasureCoverage   = "coverage"
	MeasureRobustness = "robustness"
)

func init() { dsa.Register(Domain()) }

// Domain returns the gossip design space of Section 3.1 as a
// dsa.Domain. Implementing the interface is all it takes for a gossip
// sweep to be shardable, checkpointable, resumable and mergeable by
// internal/job exactly like the 3270-protocol file-swarming sweep.
func Domain() dsa.Domain { return domainImpl{} }

type domainImpl struct{}

// space and its point index are shared, built once.
var (
	domainOnce  sync.Once
	domainSpace *core.Space
	domainIndex map[string]int // point key → enumeration index (the stable ID)
)

func domainState() (*core.Space, map[string]int) {
	domainOnce.Do(func() {
		domainSpace = Space()
		pts := domainSpace.Enumerate()
		domainIndex = make(map[string]int, len(pts))
		for i, p := range pts {
			domainIndex[p.Key()] = i
		}
	})
	return domainSpace, domainIndex
}

func (domainImpl) Name() string { return DomainName }

func (domainImpl) Space() *core.Space {
	s, _ := domainState()
	return s
}

// PointID is the point's position in the canonical enumeration — the
// stable ID persisted in checkpoint specs.
func (domainImpl) PointID(p core.Point) (int, error) {
	_, index := domainState()
	id, ok := index[p.Key()]
	if !ok {
		return 0, fmt.Errorf("gossip: point %v is not in the gossip space", p)
	}
	return id, nil
}

func (domainImpl) PointByID(id int) (core.Point, error) {
	s, _ := domainState()
	pts := s.Enumerate()
	if id < 0 || id >= len(pts) {
		return nil, fmt.Errorf("gossip: point ID %d out of range [0,%d)", id, len(pts))
	}
	return pts[id], nil
}

func (domainImpl) Label(p core.Point) string {
	proto, err := FromPoint(p)
	if err != nil {
		return p.Key()
	}
	return proto.String()
}

func (domainImpl) Measures() []string {
	return []string{MeasureCoverage, MeasureRobustness}
}

func (domainImpl) DefaultConfig(preset string) (dsa.Config, error) {
	switch preset {
	case "quick":
		// Minutes on a laptop: the full 216-protocol space against a
		// 24-opponent panel.
		return dsa.Config{Peers: 30, Rounds: 120, PerfRuns: 2, EncounterRuns: 1, Opponents: 24, Seed: 1}, nil
	case "paper":
		// Full round-robin at DefaultOptions scale.
		return dsa.Config{Peers: 40, Rounds: 200, PerfRuns: 10, EncounterRuns: 5, Seed: 1}, nil
	}
	return dsa.Config{}, fmt.Errorf("gossip: unknown preset %q (want quick or paper)", preset)
}

func (d domainImpl) SampleOpponents(cfg dsa.Config) []core.Point {
	return dsa.SamplePanel(d.Space().Enumerate(), cfg.Opponents, cfg.Seed)
}

func (d domainImpl) ScoreSlice(measure string, pts, opponents []core.Point, cfg dsa.Config) ([]float64, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	switch measure {
	case MeasureCoverage:
		return d.coverageSlice(pts, cfg)
	case MeasureRobustness:
		return d.robustnessSlice(pts, opponents, cfg)
	}
	return nil, fmt.Errorf("gossip: unknown measure %q", measure)
}

// simOptions maps the generic scale onto simulator options. RumourRate
// and ExpireAge are domain constants (DefaultOptions), not sweep knobs.
func simOptions(cfg dsa.Config, seed int64) Options {
	def := DefaultOptions()
	return Options{
		Nodes:      cfg.Peers,
		Rounds:     cfg.Rounds,
		RumourRate: def.RumourRate,
		ExpireAge:  def.ExpireAge,
		Seed:       seed,
	}
}

// seed discriminators, in the spirit of pra's runSeed kinds.
const (
	seedKindCoverage   = 1
	seedKindRobustness = 500 // 0.5 * 1000, mirroring pra's frac scheme
)

// coverageSlice measures homogeneous coverage for each point: the
// population mean number of rumours learned per node, averaged over
// PerfRuns runs. Seeds derive from the point's stable ID, so slice
// results concatenate into exactly the full-set result.
func (d domainImpl) coverageSlice(pts []core.Point, cfg dsa.Config) ([]float64, error) {
	out := make([]float64, len(pts))
	errs := make([]error, len(pts))
	dsa.ParallelFor(len(pts), cfg.Parallelism(), func(i int) {
		proto, err := FromPoint(pts[i])
		if err != nil {
			errs[i] = err
			return
		}
		id, err := d.PointID(pts[i])
		if err != nil {
			errs[i] = err
			return
		}
		population := make([]Protocol, cfg.Peers)
		for j := range population {
			population[j] = proto
		}
		var sum float64
		for r := 0; r < cfg.PerfRuns; r++ {
			res, err := Run(population, simOptions(cfg, dsa.TaskSeed(cfg.Seed, id, 0, r, seedKindCoverage)))
			if err != nil {
				errs[i] = err
				return
			}
			sum += res.Mean()
		}
		out[i] = sum / float64(cfg.PerfRuns)
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// robustnessSlice plays each point against the opponent panel in 50/50
// mixed populations, EncounterRuns runs per pairing; the value is the
// win fraction (strictly higher camp-mean utility), encounters against
// an identical protocol skipped — the Section 3.2 tournament, verbatim,
// in the gossip domain.
func (d domainImpl) robustnessSlice(pts, opponents []core.Point, cfg dsa.Config) ([]float64, error) {
	protoOf := func(p core.Point) (Protocol, int, error) {
		proto, err := FromPoint(p)
		if err != nil {
			return Protocol{}, 0, err
		}
		id, err := d.PointID(p)
		return proto, id, err
	}
	out := make([]float64, len(pts))
	errs := make([]error, len(pts))
	dsa.ParallelFor(len(pts), cfg.Parallelism(), func(i int) {
		a, idA, err := protoOf(pts[i])
		if err != nil {
			errs[i] = err
			return
		}
		nA := cfg.Peers / 2
		wins, games := 0, 0
		for _, oppPt := range opponents {
			b, idB, err := protoOf(oppPt)
			if err != nil {
				errs[i] = err
				return
			}
			if idA == idB {
				continue
			}
			population := make([]Protocol, cfg.Peers)
			for j := range population {
				if j < nA {
					population[j] = a
				} else {
					population[j] = b
				}
			}
			for r := 0; r < cfg.EncounterRuns; r++ {
				res, err := Run(population, simOptions(cfg, dsa.TaskSeed(cfg.Seed, idA, idB, r, seedKindRobustness)))
				if err != nil {
					errs[i] = err
					return
				}
				games++
				meanA := res.GroupMean(func(j int) bool { return j < nA })
				meanB := res.GroupMean(func(j int) bool { return j >= nA })
				if meanA > meanB {
					wins++
				}
			}
		}
		if games > 0 {
			out[i] = float64(wins) / float64(games)
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Assemble applies the whole-set step: coverage is min-max normalised
// over the evaluated set (the paper's performance normalisation),
// robustness is already a [0,1] win fraction.
func (domainImpl) Assemble(pts []core.Point, raw map[string][]float64) (*dsa.Scores, error) {
	for _, m := range []string{MeasureCoverage, MeasureRobustness} {
		if len(raw[m]) != len(pts) {
			return nil, fmt.Errorf("gossip: %s has %d values, want %d", m, len(raw[m]), len(pts))
		}
	}
	// Raw and Values get distinct backing slices so a caller mutating
	// one view cannot silently corrupt the other (or the engine's
	// in-memory task results).
	return &dsa.Scores{
		Domain: DomainName,
		Points: pts,
		Raw: map[string][]float64{
			MeasureCoverage:   slices.Clone(raw[MeasureCoverage]),
			MeasureRobustness: slices.Clone(raw[MeasureRobustness]),
		},
		Values: map[string][]float64{
			MeasureCoverage:   stats.MinMaxNormalize(raw[MeasureCoverage]),
			MeasureRobustness: slices.Clone(raw[MeasureRobustness]),
		},
	}, nil
}
