// Package gossip applies Design Space Analysis to a second domain —
// gossip-based dissemination — following the worked example of
// Section 3.1 and the paper's stated future work of testing DSA "on
// distributed domains other than P2P [file swarming]" (Section 7).
//
// Section 3.1 parameterizes the gossip design space as:
//
//	i)   Selection function for choosing partners for exchanging data
//	ii)  Periodicity of data exchange
//	iii) Filtering function for determining data to exchange
//	iv)  Record maintenance policy in the local database
//
// and sketches actualizations for the selection function (Random, Best,
// Loyal, Similarity). This package actualizes all four dimensions,
// implements a round-based push gossip simulator over them, and exposes
// the space in core.Space form so the PRA machinery applies unchanged:
// utility is the number of fresh rumours a node learns, performance is
// population mean coverage, and robustness tournaments pit protocol
// camps against each other exactly as in the file-swarming domain.
package gossip

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/core"
)

// Selection is the partner-selection actualization of Section 3.1.
type Selection int

// Selection function values, verbatim from Section 3.1.
const (
	// SelRandom chooses exchange partners uniformly at random.
	SelRandom Selection = iota
	// SelBest chooses the partners who delivered the most fresh
	// rumours recently ("who have given the best service").
	SelBest
	// SelLoyal chooses the partners with the longest uninterrupted
	// exchange streak.
	SelLoyal
	// SelSimilarity chooses partners whose activity rate is closest to
	// one's own ("based on similarity").
	SelSimilarity
)

// String names the selection function.
func (s Selection) String() string {
	switch s {
	case SelRandom:
		return "Random"
	case SelBest:
		return "Best"
	case SelLoyal:
		return "Loyal"
	case SelSimilarity:
		return "Similarity"
	default:
		return fmt.Sprintf("Selection(%d)", int(s))
	}
}

// Filter is the data-filtering actualization.
type Filter int

// Filtering function values.
const (
	// FilterNewest pushes the most recently learned rumours first.
	FilterNewest Filter = iota
	// FilterRarest pushes the rumours seen least often first.
	FilterRarest
	// FilterNone pushes nothing — the gossip analogue of freeriding.
	FilterNone
)

// String names the filter.
func (f Filter) String() string {
	switch f {
	case FilterNewest:
		return "Newest"
	case FilterRarest:
		return "Rarest"
	case FilterNone:
		return "None"
	default:
		return fmt.Sprintf("Filter(%d)", int(f))
	}
}

// Record is the record-maintenance actualization.
type Record int

// Record maintenance values.
const (
	// RecordKeepAll keeps every rumour ever learned.
	RecordKeepAll Record = iota
	// RecordExpire drops rumours after a fixed age, freeing capacity
	// but risking re-infection.
	RecordExpire
)

// String names the record policy.
func (r Record) String() string {
	if r == RecordExpire {
		return "Expire"
	}
	return "KeepAll"
}

// Protocol is one point in the gossip design space.
type Protocol struct {
	Selection Selection
	Period    int // rounds between exchanges: 1, 2 or 4
	Fanout    int // partners per exchange: 1..3
	Filter    Filter
	Record    Record
}

// Validate reports whether p is inside the actualized space.
func (p Protocol) Validate() error {
	if p.Selection < SelRandom || p.Selection > SelSimilarity {
		return fmt.Errorf("gossip: unknown selection %d", int(p.Selection))
	}
	switch p.Period {
	case 1, 2, 4:
	default:
		return fmt.Errorf("gossip: period must be 1, 2 or 4, got %d", p.Period)
	}
	if p.Fanout < 1 || p.Fanout > 3 {
		return fmt.Errorf("gossip: fanout must be in [1,3], got %d", p.Fanout)
	}
	if p.Filter < FilterNewest || p.Filter > FilterNone {
		return fmt.Errorf("gossip: unknown filter %d", int(p.Filter))
	}
	if p.Record != RecordKeepAll && p.Record != RecordExpire {
		return fmt.Errorf("gossip: unknown record policy %d", int(p.Record))
	}
	return nil
}

// String returns a compact code, e.g. "Best/p2/f3/Rarest/KeepAll".
func (p Protocol) String() string {
	return fmt.Sprintf("%s/p%d/f%d/%s/%s", p.Selection, p.Period, p.Fanout, p.Filter, p.Record)
}

// Space returns the gossip design space in core form:
// 4 selections × 3 periods × 3 fanouts × 3 filters × 2 records = 216
// protocols.
func Space() *core.Space {
	dims := []core.Dimension{
		{Name: "selection", Values: []string{"Random", "Best", "Loyal", "Similarity"}},
		{Name: "period", Values: []string{"1", "2", "4"}},
		{Name: "fanout", Values: []string{"1", "2", "3"}},
		{Name: "filter", Values: []string{"Newest", "Rarest", "None"}},
		{Name: "record", Values: []string{"KeepAll", "Expire"}},
	}
	s, err := core.NewSpace("gossip", dims, nil)
	if err != nil {
		panic("gossip: space: " + err.Error())
	}
	return s
}

// periods maps the period dimension index to rounds.
var periods = [3]int{1, 2, 4}

// FromPoint converts a core point of Space() into a Protocol.
func FromPoint(pt core.Point) (Protocol, error) {
	if len(pt) != 5 {
		return Protocol{}, fmt.Errorf("gossip: point needs 5 coords, got %d", len(pt))
	}
	p := Protocol{
		Selection: Selection(pt[0]),
		Period:    periods[pt[1]],
		Fanout:    pt[2] + 1,
		Filter:    Filter(pt[3]),
		Record:    Record(pt[4]),
	}
	return p, p.Validate()
}

// Options configures a simulation run.
type Options struct {
	Nodes      int // population size
	Rounds     int // simulated rounds
	RumourRate int // fresh rumours injected per round (at random nodes)
	ExpireAge  int // age at which RecordExpire drops rumours
	Seed       int64
}

// DefaultOptions returns a balanced configuration: 40 nodes, 200
// rounds, one fresh rumour per round, expiry after 20 rounds.
func DefaultOptions() Options {
	return Options{Nodes: 40, Rounds: 200, RumourRate: 1, ExpireAge: 20, Seed: 1}
}

// Result reports one run.
type Result struct {
	// Utility[i] is the number of distinct rumours node i learned from
	// OTHERS (injected rumours do not count) — the domain's analogue
	// of download throughput.
	Utility []float64
}

// Mean returns population mean utility.
func (r Result) Mean() float64 {
	if len(r.Utility) == 0 {
		return 0
	}
	var s float64
	for _, u := range r.Utility {
		s += u
	}
	return s / float64(len(r.Utility))
}

// GroupMean averages utility over selected nodes.
func (r Result) GroupMean(in func(i int) bool) float64 {
	var s float64
	n := 0
	for i, u := range r.Utility {
		if in(i) {
			s += u
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return s / float64(n)
}

// Run simulates a population where node i executes protocols[i].
func Run(protocols []Protocol, opt Options) (Result, error) {
	n := len(protocols)
	if n < 2 {
		return Result{}, fmt.Errorf("gossip: need at least 2 nodes, got %d", n)
	}
	if opt.Nodes != 0 && opt.Nodes != n {
		return Result{}, fmt.Errorf("gossip: opt.Nodes %d != len(protocols) %d", opt.Nodes, n)
	}
	if opt.Rounds < 1 || opt.RumourRate < 0 || opt.ExpireAge < 1 {
		return Result{}, fmt.Errorf("gossip: invalid options %+v", opt)
	}
	for i, p := range protocols {
		if err := p.Validate(); err != nil {
			return Result{}, fmt.Errorf("gossip: node %d: %w", i, err)
		}
	}
	return run(protocols, opt), nil
}

type node struct {
	proto Protocol
	// learnedAt[r] = round the rumour was learned (-1 unknown).
	learnedAt []int
	// everLearned[r]: utility counts only first-time learning so that
	// Expire + re-infection cannot inflate coverage.
	everLearned []bool
	utility     float64
	// service[j] = fresh rumours received from j recently (decayed).
	service []float64
	// streak[j] = consecutive exchanges with j that delivered data.
	streak []int
	// lastGave[j] = last round j delivered a fresh rumour.
	lastGave []int
}

func run(protocols []Protocol, opt Options) Result {
	n := len(protocols)
	rng := rand.New(rand.NewSource(opt.Seed))
	maxRumours := opt.Rounds*opt.RumourRate + 1
	nodes := make([]*node, n)
	for i := range nodes {
		nodes[i] = &node{
			proto:       protocols[i],
			learnedAt:   make([]int, maxRumours),
			everLearned: make([]bool, maxRumours),
			service:     make([]float64, n),
			streak:      make([]int, n),
			lastGave:    make([]int, n),
		}
		for r := range nodes[i].learnedAt {
			nodes[i].learnedAt[r] = -1
		}
	}
	nextRumour := 0
	counts := make([]int, maxRumours) // how many nodes know each rumour

	for round := 0; round < opt.Rounds; round++ {
		// Inject fresh rumours at random nodes.
		for k := 0; k < opt.RumourRate && nextRumour < maxRumours; k++ {
			src := rng.Intn(n)
			nodes[src].learnedAt[nextRumour] = round
			counts[nextRumour]++
			nextRumour++
		}
		// Expiry.
		for _, nd := range nodes {
			if nd.proto.Record != RecordExpire {
				continue
			}
			for r := 0; r < nextRumour; r++ {
				if nd.learnedAt[r] >= 0 && round-nd.learnedAt[r] > opt.ExpireAge {
					nd.learnedAt[r] = -1
					counts[r]--
				}
			}
		}
		// Exchanges (push).
		for i, nd := range nodes {
			if round%nd.proto.Period != 0 {
				continue
			}
			for f := 0; f < nd.proto.Fanout; f++ {
				j := nd.selectPartner(i, n, rng, round)
				if j < 0 {
					continue
				}
				nd.push(nodes[j], j, i, round, nextRumour, counts, rng)
			}
		}
	}
	res := Result{Utility: make([]float64, n)}
	for i, nd := range nodes {
		res.Utility[i] = nd.utility
	}
	return res
}

// selectPartner applies the node's selection function.
func (nd *node) selectPartner(self, n int, rng *rand.Rand, round int) int {
	switch nd.proto.Selection {
	case SelRandom:
		return randOther(self, n, rng)
	case SelBest:
		best, bestV := -1, -1.0
		for j := 0; j < n; j++ {
			if j != self && nd.service[j] > bestV {
				best, bestV = j, nd.service[j]
			}
		}
		if bestV <= 0 {
			return randOther(self, n, rng)
		}
		return best
	case SelLoyal:
		best, bestV := -1, 0
		for j := 0; j < n; j++ {
			if j != self && nd.streak[j] > bestV {
				best, bestV = j, nd.streak[j]
			}
		}
		if best < 0 {
			return randOther(self, n, rng)
		}
		return best
	case SelSimilarity:
		// Closest recent activity: partner whose last delivery is most
		// recent relative to ours — a lightweight profile-similarity
		// proxy that needs no extra state.
		best, bestV := -1, math.MaxFloat64
		for j := 0; j < n; j++ {
			if j == self {
				continue
			}
			d := math.Abs(float64(round - nd.lastGave[j]))
			if d < bestV {
				best, bestV = j, d
			}
		}
		if best < 0 {
			return randOther(self, n, rng)
		}
		return best
	default:
		return -1
	}
}

func randOther(self, n int, rng *rand.Rand) int {
	if n < 2 {
		return -1
	}
	j := rng.Intn(n - 1)
	if j >= self {
		j++
	}
	return j
}

// push sends up to one rumour chosen by the filter from nd to the
// target, updating the receiver's bookkeeping.
func (nd *node) push(to *node, toIdx, selfIdx, round, nRumours int, counts []int, rng *rand.Rand) {
	if nd.proto.Filter == FilterNone {
		return // freerider: exchanges happen but carry nothing
	}
	best := -1
	switch nd.proto.Filter {
	case FilterNewest:
		newest := -1
		for r := 0; r < nRumours; r++ {
			if nd.learnedAt[r] >= 0 && to.learnedAt[r] < 0 && nd.learnedAt[r] > newest {
				best, newest = r, nd.learnedAt[r]
			}
		}
	case FilterRarest:
		rarest := math.MaxInt32
		off := rng.Intn(nRumours + 1)
		for i := 0; i < nRumours; i++ {
			r := (off + i) % nRumours
			if nd.learnedAt[r] >= 0 && to.learnedAt[r] < 0 && counts[r] < rarest {
				best, rarest = r, counts[r]
			}
		}
	}
	if best < 0 {
		to.streak[selfIdx] = 0
		return
	}
	to.learnedAt[best] = round
	counts[best]++
	if !to.everLearned[best] {
		to.everLearned[best] = true
		to.utility++
	}
	to.service[selfIdx] = 0.8*to.service[selfIdx] + 1
	to.streak[selfIdx]++
	to.lastGave[selfIdx] = round
}
