package pra

import (
	"math"
	"testing"

	"repro/internal/cyclesim"
	"repro/internal/design"
	"repro/internal/dsa"
	"repro/internal/stats"
)

// tiny returns a fast test configuration.
func tiny() Config {
	return Config{Peers: 16, Rounds: 60, PerfRuns: 1, EncounterRuns: 1, Opponents: 8, Seed: 5}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Peers: 1, Rounds: 10, PerfRuns: 1, EncounterRuns: 1},
		{Peers: 10, Rounds: 0, PerfRuns: 1, EncounterRuns: 1},
		{Peers: 10, Rounds: 10, PerfRuns: 0, EncounterRuns: 1},
		{Peers: 10, Rounds: 10, PerfRuns: 1, EncounterRuns: 0},
		{Peers: 10, Rounds: 10, PerfRuns: 1, EncounterRuns: 1, Opponents: -1},
		{Peers: 10, Rounds: 10, PerfRuns: 1, EncounterRuns: 1, Churn: -0.1},
		{Peers: 10, Rounds: 10, PerfRuns: 1, EncounterRuns: 1, Churn: 1.5},
		{Peers: 10, Rounds: 10, PerfRuns: 1, EncounterRuns: 1, Churn: math.NaN()},
	}
	for i, c := range bad {
		if err := c.validate(); err == nil {
			t.Errorf("case %d should fail validation", i)
		}
	}
	if err := Paper().validate(); err != nil {
		t.Errorf("Paper config invalid: %v", err)
	}
	if err := Quick().validate(); err != nil {
		t.Errorf("Quick config invalid: %v", err)
	}
}

func TestPaperConfigMatchesSection43(t *testing.T) {
	p := Paper()
	if p.Peers != 50 || p.Rounds != 500 || p.PerfRuns != 100 || p.EncounterRuns != 10 {
		t.Errorf("Paper() = %+v, want 50 peers / 500 rounds / 100 perf runs / 10 encounter runs", p)
	}
	if p.Opponents != 0 {
		t.Error("Paper() must use the full round-robin")
	}
}

func TestEncounterSpecsBalance(t *testing.T) {
	a, b := design.BitTorrent(), design.Freerider()
	specs, mask := EncounterSpecs(a, b, 50, 25, nil)
	nA := 0
	var capA, capB float64
	for i, s := range specs {
		if mask[i] {
			nA++
			capA += s.Capacity
			if s.Protocol != a {
				t.Fatal("mask does not match protocol assignment")
			}
		} else {
			capB += s.Capacity
			if s.Protocol != b {
				t.Fatal("mask does not match protocol assignment")
			}
		}
	}
	if nA != 25 {
		t.Fatalf("nA = %d, want 25", nA)
	}
	// Stratified interleaving keeps camp capacities within 10%.
	if ratio := capA / capB; ratio < 0.9 || ratio > 1.1 {
		t.Errorf("capacity ratio between camps = %v, want ~1", ratio)
	}
}

func TestEncounterSpecsMinority(t *testing.T) {
	a, b := design.BitTorrent(), design.Freerider()
	_, mask := EncounterSpecs(a, b, 50, 5, nil)
	nA := 0
	for _, m := range mask {
		if m {
			nA++
		}
	}
	if nA != 5 {
		t.Fatalf("minority count = %d, want 5", nA)
	}
}

func TestEncounterDeterminism(t *testing.T) {
	cfg := tiny()
	a1, b1, err := Encounter(design.BitTorrent(), design.Freerider(), 0.5, cfg, 99)
	if err != nil {
		t.Fatal(err)
	}
	a2, b2, err := Encounter(design.BitTorrent(), design.Freerider(), 0.5, cfg, 99)
	if err != nil {
		t.Fatal(err)
	}
	if a1 != a2 || b1 != b2 {
		t.Error("same seed must reproduce encounter")
	}
}

func TestEncounterBTBeatsFreerider(t *testing.T) {
	cfg := tiny()
	meanBT, meanFR, err := Encounter(design.BitTorrent(), design.Freerider(), 0.5, cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	if meanBT <= meanFR {
		t.Errorf("BT camp %v should beat freeriders %v", meanBT, meanFR)
	}
}

func TestPerformanceSweepOrdering(t *testing.T) {
	cfg := tiny()
	cfg.Rounds = 150
	ps := []design.Protocol{design.BitTorrent(), design.Freerider(), design.SortS()}
	raw, err := PerformanceSweep(ps, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if raw[1] != 0 {
		t.Errorf("freerider raw perf = %v, want 0", raw[1])
	}
	if raw[0] <= raw[1] || raw[2] <= raw[1] {
		t.Error("cooperative protocols must beat freeriders")
	}
	norm := stats.MinMaxNormalize(raw)
	if stats.Max(norm) != 1 || stats.Min(norm) != 0 {
		t.Error("normalisation should span [0,1]")
	}
}

func TestPerformanceSweepParallelDeterminism(t *testing.T) {
	ps := []design.Protocol{design.BitTorrent(), design.Birds(), design.SortS(), design.LoyalWhenNeeded()}
	cfg1 := tiny()
	cfg1.Workers = 1
	cfg4 := tiny()
	cfg4.Workers = 4
	a, err := PerformanceSweep(ps, cfg1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := PerformanceSweep(ps, cfg4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("worker count changed results: %v vs %v", a, b)
		}
	}
}

func TestSampleOpponentsFixedAndSized(t *testing.T) {
	cfg := tiny()
	s1 := SampleOpponents(cfg)
	s2 := SampleOpponents(cfg)
	if len(s1) != cfg.Opponents {
		t.Fatalf("panel size = %d, want %d", len(s1), cfg.Opponents)
	}
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatal("panel must be deterministic")
		}
	}
	// Opponents=0 → everything.
	cfg.Opponents = 0
	if got := len(SampleOpponents(cfg)); got != design.SpaceSize {
		t.Fatalf("full panel size = %d", got)
	}
	// Distinct protocols in the panel.
	seen := map[string]bool{}
	for _, p := range s1 {
		if seen[p.String()] {
			t.Fatalf("duplicate opponent %s", p)
		}
		seen[p.String()] = true
	}
}

func TestTournamentScoresRobustOrdering(t *testing.T) {
	// The robust candidate should beat the freerider-family protocols
	// far more often than a freerider does.
	cfg := tiny()
	ps := []design.Protocol{design.MostRobustCandidate(), design.Freerider()}
	opponents := []design.Protocol{
		design.BitTorrent(), design.Birds(), design.SortS(),
		design.LoyalWhenNeeded(), design.SortRandom(), design.Freerider(),
	}
	scores, err := TournamentScores(ps, opponents, 0.5, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if scores[0] <= scores[1] {
		t.Errorf("robust candidate %v should out-score freerider %v", scores[0], scores[1])
	}
	for _, s := range scores {
		if s < 0 || s > 1 {
			t.Errorf("score %v outside [0,1]", s)
		}
	}
}

func TestTournamentSkipsSelfPlay(t *testing.T) {
	cfg := tiny()
	ps := []design.Protocol{design.BitTorrent()}
	opponents := []design.Protocol{design.BitTorrent()}
	scores, err := TournamentScores(ps, opponents, 0.5, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if scores[0] != 0 {
		t.Errorf("self-only tournament should score 0 (no games), got %v", scores[0])
	}
}

func TestRunPRAEndToEnd(t *testing.T) {
	cfg := tiny()
	cfg.Opponents = 6
	ps := []design.Protocol{
		design.BitTorrent(), design.Freerider(), design.SortS(), design.MostRobustCandidate(),
	}
	scores, err := Run(ps, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(scores.Performance) != len(ps) || len(scores.Robustness) != len(ps) || len(scores.Aggressiveness) != len(ps) {
		t.Fatal("score lengths mismatch")
	}
	for i := range ps {
		for _, v := range []float64{scores.Performance[i], scores.Robustness[i], scores.Aggressiveness[i]} {
			if v < 0 || v > 1 {
				t.Errorf("%s: score %v outside [0,1]", ps[i], v)
			}
		}
	}
	// The freerider must be at the bottom of performance.
	frIdx := 1
	if scores.Performance[frIdx] != 0 {
		t.Errorf("freerider performance = %v, want 0", scores.Performance[frIdx])
	}
}

func TestRunSeedIndependence(t *testing.T) {
	// Different coordinates must give different seeds (no collisions in
	// a small sample), and the same coordinates the same seed.
	seen := map[int64]bool{}
	for a := 0; a < 10; a++ {
		for b := 0; b < 10; b++ {
			for r := 0; r < 3; r++ {
				s := runSeed(1, a, b, r, 500)
				if seen[s] {
					t.Fatalf("seed collision at (%d,%d,%d)", a, b, r)
				}
				seen[s] = true
			}
		}
	}
	if runSeed(1, 2, 3, 4, 500) != runSeed(1, 2, 3, 4, 500) {
		t.Error("runSeed must be deterministic")
	}
	if runSeed(1, 2, 3, 4, 500) == runSeed(2, 2, 3, 4, 500) {
		t.Error("master seed must matter")
	}
}

func TestParallelForCoversAll(t *testing.T) {
	for _, w := range []int{1, 3, 8} {
		hit := make([]bool, 100)
		dsa.ParallelFor(100, w, func(i int) { hit[i] = true })
		for i, h := range hit {
			if !h {
				t.Fatalf("workers=%d: index %d not visited", w, i)
			}
		}
	}
	// n < workers and n == 0 edge cases.
	dsa.ParallelFor(0, 4, func(int) { t.Fatal("should not run") })
}

func TestExplicitPoolMatchesDefault(t *testing.T) {
	// Threading a dedicated cyclesim.Pool through the quantification
	// must not change a single value versus the shared default pool —
	// pooling is a pure allocation optimisation.
	ps := []design.Protocol{design.BitTorrent(), design.SortS(), design.Freerider()}
	cfg := tiny()
	cfg.Opponents = 4
	base, err := Run(ps, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Pool = &cyclesim.Pool{}
	pooled, err := Run(ps, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ps {
		if base.RawPerformance[i] != pooled.RawPerformance[i] ||
			base.Robustness[i] != pooled.Robustness[i] ||
			base.Aggressiveness[i] != pooled.Aggressiveness[i] {
			t.Fatalf("protocol %d: pooled quantification diverged", i)
		}
	}
}
