package pra

import (
	"fmt"
	"slices"

	"repro/internal/core"
	"repro/internal/design"
	"repro/internal/dsa"
)

// DomainName is the file-swarming domain's registry name.
const DomainName = "swarming"

func init() { dsa.Register(Domain()) }

// Domain returns the file-swarming design space of Section 4 as a
// dsa.Domain: the exported quantification primitives of this package
// (ScoreSlice, Assemble, SampleOpponents) behind the generic interface,
// which is what the sharded job engine and the CLIs run against.
func Domain() dsa.Domain { return swarmingDomain{} }

type swarmingDomain struct{}

func (swarmingDomain) Name() string { return DomainName }

// space is shared so the lazily built enumeration is computed once.
var swarmingSpace = core.FileSwarmingSpace()

func (swarmingDomain) Space() *core.Space { return swarmingSpace }

func (swarmingDomain) PointID(p core.Point) (int, error) {
	proto, err := core.PointProtocol(p)
	if err != nil {
		return 0, err
	}
	return design.ID(proto), nil
}

func (swarmingDomain) PointByID(id int) (core.Point, error) {
	proto, err := design.ByID(id)
	if err != nil {
		return nil, err
	}
	return core.ProtocolPoint(proto), nil
}

func (swarmingDomain) Label(p core.Point) string {
	proto, err := core.PointProtocol(p)
	if err != nil {
		return p.Key()
	}
	return proto.String()
}

func (swarmingDomain) Measures() []string {
	out := make([]string, len(Kinds))
	for i, k := range Kinds {
		out[i] = k.String()
	}
	return out
}

func (swarmingDomain) DefaultConfig(preset string) (dsa.Config, error) {
	switch preset {
	case "quick":
		return Quick().Generic(), nil
	case "paper":
		return Paper().Generic(), nil
	}
	return dsa.Config{}, fmt.Errorf("pra: unknown preset %q (want quick or paper)", preset)
}

func (swarmingDomain) SampleOpponents(cfg dsa.Config) []core.Point {
	return protocolsToPoints(SampleOpponents(FromGeneric(cfg)))
}

func (swarmingDomain) ScoreSlice(measure string, pts, opponents []core.Point, cfg dsa.Config) ([]float64, error) {
	kind, err := ParseScoreKind(measure)
	if err != nil {
		return nil, err
	}
	ps, err := pointsToProtocols(pts)
	if err != nil {
		return nil, err
	}
	opps, err := pointsToProtocols(opponents)
	if err != nil {
		return nil, err
	}
	return ScoreSlice(kind, ps, opps, FromGeneric(cfg))
}

func (swarmingDomain) Assemble(pts []core.Point, raw map[string][]float64) (*dsa.Scores, error) {
	ps, err := pointsToProtocols(pts)
	if err != nil {
		return nil, err
	}
	byKind := make(map[ScoreKind][]float64, len(Kinds))
	for _, k := range Kinds {
		byKind[k] = raw[k.String()]
	}
	scores, err := Assemble(ps, byKind)
	if err != nil {
		return nil, err
	}
	// Raw and Values get distinct backing slices so a caller mutating
	// one view cannot silently corrupt the other (or the engine's
	// in-memory task results).
	return &dsa.Scores{
		Domain: DomainName,
		Points: pts,
		Raw: map[string][]float64{
			KindPerformance.String():    slices.Clone(scores.RawPerformance),
			KindRobustness.String():     slices.Clone(scores.Robustness),
			KindAggressiveness.String(): slices.Clone(scores.Aggressiveness),
		},
		Values: map[string][]float64{
			KindPerformance.String():    slices.Clone(scores.Performance),
			KindRobustness.String():     slices.Clone(scores.Robustness),
			KindAggressiveness.String(): slices.Clone(scores.Aggressiveness),
		},
	}, nil
}

// Generic maps the result-affecting knobs onto the domain-independent
// config. A custom Dist cannot cross the generic boundary (it is not
// serialisable into a checkpoint spec), and neither can a Pool (it
// affects nothing a result is a function of — engine-driven sweeps
// pool simulator state through cyclesim's shared default pool
// instead); callers needing either use this package directly.
func (c Config) Generic() dsa.Config {
	return dsa.Config{
		Peers: c.Peers, Rounds: c.Rounds,
		PerfRuns: c.PerfRuns, EncounterRuns: c.EncounterRuns,
		Opponents: c.Opponents, Seed: c.Seed, Churn: c.Churn,
		Workers: c.Workers,
	}
}

// FromGeneric is the inverse of Config.Generic (with the default
// bandwidth distribution).
func FromGeneric(g dsa.Config) Config {
	return Config{
		Peers: g.Peers, Rounds: g.Rounds,
		PerfRuns: g.PerfRuns, EncounterRuns: g.EncounterRuns,
		Opponents: g.Opponents, Seed: g.Seed, Churn: g.Churn,
		Workers: g.Workers,
	}
}

// ScoresFromGeneric converts assembled generic scores of the swarming
// domain back into the typed Scores used by the figure and table
// extractors.
func ScoresFromGeneric(s *dsa.Scores) (*Scores, error) {
	if s.Domain != DomainName {
		return nil, fmt.Errorf("pra: scores are for domain %q, not %q", s.Domain, DomainName)
	}
	ps, err := pointsToProtocols(s.Points)
	if err != nil {
		return nil, err
	}
	return &Scores{
		Protocols:      ps,
		RawPerformance: s.Raw[KindPerformance.String()],
		Performance:    s.Values[KindPerformance.String()],
		Robustness:     s.Values[KindRobustness.String()],
		Aggressiveness: s.Values[KindAggressiveness.String()],
	}, nil
}

func pointsToProtocols(pts []core.Point) ([]design.Protocol, error) {
	out := make([]design.Protocol, len(pts))
	for i, p := range pts {
		proto, err := core.PointProtocol(p)
		if err != nil {
			return nil, err
		}
		out[i] = proto
	}
	return out, nil
}

func protocolsToPoints(ps []design.Protocol) []core.Point {
	out := make([]core.Point, len(ps))
	for i, p := range ps {
		out[i] = core.ProtocolPoint(p)
	}
	return out
}
