// Package pra implements the Performance, Robustness, Aggressiveness
// quantification of Section 3.2 — the solution concept of Design Space
// Analysis — over the file-swarming design space of Section 4.
//
// For a protocol Π:
//
//   - Performance: population mean throughput when everyone runs Π,
//     normalised over the whole evaluated set (1 = best in space).
//   - Robustness: the fraction of tournament games Π wins when half the
//     population runs Π and half runs an opposing protocol.
//   - Aggressiveness: the same with Π in a 10% minority.
//
// A tournament plays Π against every opponent (or a fixed deterministic
// sample, for reduced presets) for EncounterRuns runs each; a win is a
// strictly higher camp-mean utility. All work items get seeds derived
// from the pair and run index, so results are identical regardless of
// worker count or scheduling.
package pra

import (
	"fmt"
	"math"
	"runtime"

	"repro/internal/bandwidth"
	"repro/internal/cyclesim"
	"repro/internal/design"
	"repro/internal/dsa"
)

// Config scales the quantification. The zero value is not valid; start
// from Paper() or Quick().
type Config struct {
	Peers         int     // population size per run (paper: 50)
	Rounds        int     // rounds per run (paper: 500)
	PerfRuns      int     // runs averaged per performance value (paper: 100)
	EncounterRuns int     // runs per encounter (paper: 10)
	Opponents     int     // opponents sampled per tournament; 0 = every other protocol
	Seed          int64   // master seed
	Churn         float64 // per-round churn rate (0 in the main experiments)
	Workers       int     // parallel workers; 0 = GOMAXPROCS
	// Dist supplies peer capacities (stratified per run). nil = Piatek.
	Dist *bandwidth.Distribution
	// Pool supplies reusable simulator state to every run of this
	// quantification (cyclesim worlds are pooled either way — nil uses
	// the simulator's shared pool — but an explicit Pool isolates a
	// sweep's worlds from other workloads in the process). Like Dist
	// it cannot cross the generic Domain boundary: it affects nothing
	// a score is a function of, so Generic()/FromGeneric drop it and
	// cache keys never see it.
	Pool *cyclesim.Pool
}

// Paper returns the full-scale configuration of Section 4.3: 50 peers,
// 500 rounds, 100 performance runs, 10 runs per encounter, full
// round-robin. Running it over all 3270 protocols is the paper's
// 107-million-run, 25-cluster-hour experiment — budget accordingly.
func Paper() Config {
	return Config{Peers: 50, Rounds: 500, PerfRuns: 100, EncounterRuns: 10, Seed: 1}
}

// Quick returns a reduced configuration that preserves the shape of the
// results at a small fraction of the cost: fewer peers, rounds and runs,
// and a fixed 60-opponent sample per tournament.
func Quick() Config {
	return Config{Peers: 30, Rounds: 150, PerfRuns: 3, EncounterRuns: 1, Opponents: 60, Seed: 1}
}

func (c Config) validate() error {
	if c.Peers < 2 {
		return fmt.Errorf("pra: need at least 2 peers, got %d", c.Peers)
	}
	if c.Rounds < 1 {
		return fmt.Errorf("pra: need at least 1 round, got %d", c.Rounds)
	}
	if c.PerfRuns < 1 || c.EncounterRuns < 1 {
		return fmt.Errorf("pra: PerfRuns and EncounterRuns must be >= 1")
	}
	if c.Opponents < 0 {
		return fmt.Errorf("pra: Opponents must be >= 0, got %d", c.Opponents)
	}
	if math.IsNaN(c.Churn) || c.Churn < 0 || c.Churn > 1 {
		return fmt.Errorf("pra: Churn must be in [0,1], got %v", c.Churn)
	}
	return nil
}

func (c Config) dist() *bandwidth.Distribution {
	if c.Dist != nil {
		return c.Dist
	}
	return bandwidth.Piatek()
}

func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// runSeed derives independent run seeds from task coordinates, keeping
// every simulation deterministic and independent of scheduling. It is
// dsa.TaskSeed — the one seed-derivation scheme shared by every domain,
// so the checkpoint/merge determinism contract has a single definition.
func runSeed(master int64, a, b, run, kind int) int64 {
	return dsa.TaskSeed(master, a, b, run, kind)
}

// homogeneousSpecs builds an all-Π population with stratified
// capacities.
func homogeneousSpecs(p design.Protocol, n int, dist *bandwidth.Distribution) []cyclesim.PeerSpec {
	caps := dist.Stratified(n)
	specs := make([]cyclesim.PeerSpec, n)
	for i := range specs {
		specs[i] = cyclesim.PeerSpec{Protocol: p, Capacity: caps[i]}
	}
	return specs
}

// EncounterSpecs builds a mixed population: nA peers run a, the rest
// run b, with group-A positions spread evenly across the stratified
// capacity order so both camps see the same capacity distribution.
// The returned mask marks the peers running a. A nil dist defaults to
// the Piatek distribution.
func EncounterSpecs(a, b design.Protocol, n, nA int, dist *bandwidth.Distribution) ([]cyclesim.PeerSpec, []bool) {
	if dist == nil {
		dist = bandwidth.Piatek()
	}
	caps := dist.Stratified(n)
	specs := make([]cyclesim.PeerSpec, n)
	mask := make([]bool, n)
	// Assign capacities to camps so the per-capita capacity of both
	// camps matches as closely as possible: walk capacities from the
	// heaviest down (the tail dominates the mean) and give each to the
	// camp with the larger remaining per-slot deficit. Positional
	// interleaving is not enough — a single heavy-tail peer can skew a
	// camp's mean by 50%.
	total := 0.0
	for _, c := range caps {
		total += c
	}
	target := total / float64(n)
	sumA, sumB := 0.0, 0.0
	leftA, leftB := nA, n-nA
	for i := n - 1; i >= 0; i-- { // Stratified() is ascending
		var toA bool
		switch {
		case leftA == 0:
			toA = false
		case leftB == 0:
			toA = true
		default:
			defA := (target*float64(nA) - sumA) / float64(leftA)
			defB := (target*float64(n-nA) - sumB) / float64(leftB)
			// Ties go to the larger camp, which absorbs outliers best.
			toA = defA > defB || (defA == defB && leftA > leftB)
		}
		if toA {
			mask[i] = true
			sumA += caps[i]
			leftA--
		} else {
			sumB += caps[i]
			leftB--
		}
	}
	for i := range specs {
		p := b
		if mask[i] {
			p = a
		}
		specs[i] = cyclesim.PeerSpec{Protocol: p, Capacity: caps[i]}
	}
	return specs, mask
}

// PerformanceSweep measures raw homogeneous performance (population
// mean throughput in KiB/s, averaged over PerfRuns runs) for every
// protocol. Use stats.MinMaxNormalize for the paper's normalisation.
func PerformanceSweep(ps []design.Protocol, cfg Config) ([]float64, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	dist := cfg.dist()
	out := make([]float64, len(ps))
	errs := make([]error, len(ps))
	dsa.ParallelFor(len(ps), cfg.workers(), func(i int) {
		specs := homogeneousSpecs(ps[i], cfg.Peers, dist)
		var sum float64
		for r := 0; r < cfg.PerfRuns; r++ {
			res, err := cyclesim.Run(specs, cyclesim.Options{
				Rounds:      cfg.Rounds,
				Seed:        runSeed(cfg.Seed, design.ID(ps[i]), 0, r, 1),
				Churn:       cfg.Churn,
				Replacement: dist,
				Pool:        cfg.Pool,
			})
			if err != nil {
				errs[i] = err
				return
			}
			sum += res.Mean()
		}
		out[i] = sum / float64(cfg.PerfRuns)
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Encounter runs one mixed-population simulation and returns the camp
// means for a and b. frac is the fraction of the population running a.
func Encounter(a, b design.Protocol, frac float64, cfg Config, seed int64) (meanA, meanB float64, err error) {
	if err := cfg.validate(); err != nil {
		return 0, 0, err
	}
	nA := int(frac*float64(cfg.Peers) + 0.5)
	if nA < 1 {
		nA = 1
	}
	if nA >= cfg.Peers {
		nA = cfg.Peers - 1
	}
	dist := cfg.dist()
	specs, mask := EncounterSpecs(a, b, cfg.Peers, nA, dist)
	res, err := cyclesim.Run(specs, cyclesim.Options{
		Rounds:      cfg.Rounds,
		Seed:        seed,
		Churn:       cfg.Churn,
		Replacement: dist,
		Pool:        cfg.Pool,
	})
	if err != nil {
		return 0, 0, err
	}
	meanA = res.GroupMean(func(i int) bool { return mask[i] })
	meanB = res.GroupMean(func(i int) bool { return !mask[i] })
	return meanA, meanB, nil
}

// SampleOpponents returns the fixed opponent panel used by reduced
// configurations: cfg.Opponents protocols drawn deterministically and
// evenly from the full space (or the whole space when Opponents is 0 or
// exceeds it) by dsa.SamplePanel. Every tournament uses the same panel,
// keeping scores comparable across protocols.
func SampleOpponents(cfg Config) []design.Protocol {
	return dsa.SamplePanel(design.Enumerate(), cfg.Opponents, cfg.Seed)
}

// TournamentScores plays every protocol in ps against every opponent at
// the given population fraction (0.5 for Robustness, 0.1 for
// Aggressiveness, 0.9 for the 90-10 validation) and returns each
// protocol's win fraction in [0,1]. Encounters against an identical
// protocol are skipped.
func TournamentScores(ps, opponents []design.Protocol, frac float64, cfg Config) ([]float64, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	wins := make([]int, len(ps))
	games := make([]int, len(ps))
	errs := make([]error, len(ps))
	kind := int(frac * 1000)
	dsa.ParallelFor(len(ps), cfg.workers(), func(i int) {
		idA := design.ID(ps[i])
		for _, opp := range opponents {
			idB := design.ID(opp)
			if idA == idB {
				continue
			}
			for r := 0; r < cfg.EncounterRuns; r++ {
				seed := runSeed(cfg.Seed, idA, idB, r, kind)
				meanA, meanB, err := Encounter(ps[i], opp, frac, cfg, seed)
				if err != nil {
					errs[i] = err
					return
				}
				games[i]++
				if meanA > meanB {
					wins[i]++
				}
			}
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	out := make([]float64, len(ps))
	for i := range out {
		if games[i] > 0 {
			out[i] = float64(wins[i]) / float64(games[i])
		}
	}
	return out, nil
}

// Scores holds the full PRA quantification for a set of protocols.
type Scores struct {
	Protocols      []design.Protocol
	RawPerformance []float64 // KiB/s population means
	Performance    []float64 // normalised to [0,1] over the evaluated set
	Robustness     []float64 // win fraction at 50/50
	Aggressiveness []float64 // win fraction at 10/90
}

// Run computes the PRA quantification for every protocol in ps using
// the opponent panel from SampleOpponents. It is the single-process,
// unsharded composition of the ScoreSlice primitives; internal/job
// shards the same primitives across workers, processes and restarts.
func Run(ps []design.Protocol, cfg Config) (*Scores, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	opponents := SampleOpponents(cfg)
	raw := make(map[ScoreKind][]float64, len(Kinds))
	for _, k := range Kinds {
		vals, err := ScoreSlice(k, ps, opponents, cfg)
		if err != nil {
			return nil, err
		}
		raw[k] = vals
	}
	return Assemble(ps, raw)
}
