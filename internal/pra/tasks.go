package pra

import (
	"fmt"

	"repro/internal/design"
	"repro/internal/stats"
)

// ScoreKind identifies one of the three PRA measures as a unit of
// schedulable work. A full quantification is the cross product of the
// three kinds with the protocol set; because every simulation seed
// derives from protocol identity (runSeed), the work can be cut into
// arbitrary protocol slices and recombined without changing a single
// value.
type ScoreKind int

const (
	KindPerformance ScoreKind = iota
	KindRobustness
	KindAggressiveness
)

// Kinds lists the score kinds in canonical (enumeration) order.
var Kinds = []ScoreKind{KindPerformance, KindRobustness, KindAggressiveness}

// String returns the kind's canonical lower-case name.
func (k ScoreKind) String() string {
	switch k {
	case KindPerformance:
		return "performance"
	case KindRobustness:
		return "robustness"
	case KindAggressiveness:
		return "aggressiveness"
	}
	return fmt.Sprintf("ScoreKind(%d)", int(k))
}

// ParseScoreKind is the inverse of String.
func ParseScoreKind(s string) (ScoreKind, error) {
	for _, k := range Kinds {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("pra: unknown score kind %q", s)
}

// ScoreSlice computes the raw scores of one kind for ps, a slice of a
// (possibly larger) protocol set. Robustness and aggressiveness play
// against the given opponent panel (see SampleOpponents); performance
// ignores it. Seeds derive from protocol identity, not position, so
// concatenating slice results equals a single full-set call — this is
// the primitive the job engine shards over.
//
// Performance values are raw KiB/s: the paper's min-max normalisation
// needs the whole set, so it happens in Assemble after merging.
func ScoreSlice(k ScoreKind, ps, opponents []design.Protocol, cfg Config) ([]float64, error) {
	switch k {
	case KindPerformance:
		return PerformanceSweep(ps, cfg)
	case KindRobustness:
		return TournamentScores(ps, opponents, 0.5, cfg)
	case KindAggressiveness:
		return TournamentScores(ps, opponents, 0.1, cfg)
	}
	return nil, fmt.Errorf("pra: unknown score kind %d", int(k))
}

// Assemble bundles per-kind raw score vectors into Scores, applying the
// paper's min-max normalisation of performance over the evaluated set.
// Every kind must be present and match len(ps).
func Assemble(ps []design.Protocol, raw map[ScoreKind][]float64) (*Scores, error) {
	for _, k := range Kinds {
		if len(raw[k]) != len(ps) {
			return nil, fmt.Errorf("pra: %s has %d values, want %d", k, len(raw[k]), len(ps))
		}
	}
	return &Scores{
		Protocols:      ps,
		RawPerformance: raw[KindPerformance],
		Performance:    stats.MinMaxNormalize(raw[KindPerformance]),
		Robustness:     raw[KindRobustness],
		Aggressiveness: raw[KindAggressiveness],
	}, nil
}
