package core

import (
	"errors"
	"math"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/design"
)

func tinySpace(t *testing.T) *Space {
	t.Helper()
	s, err := NewSpace("tiny", []Dimension{
		{Name: "a", Values: []string{"0", "1", "2"}},
		{Name: "b", Values: []string{"x", "y"}},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewSpaceValidation(t *testing.T) {
	if _, err := NewSpace("empty", nil, nil); err == nil {
		t.Error("no dimensions should error")
	}
	if _, err := NewSpace("bad", []Dimension{{Name: "a"}}, nil); err == nil {
		t.Error("empty dimension should error")
	}
}

func TestEnumerateAndSize(t *testing.T) {
	s := tinySpace(t)
	if s.RawSize() != 6 || s.Size() != 6 {
		t.Errorf("sizes = %d/%d, want 6/6", s.RawSize(), s.Size())
	}
	pts := s.Enumerate()
	if !pts[0].Equal(Point{0, 0}) || !pts[5].Equal(Point{2, 1}) {
		t.Errorf("enumeration order wrong: %v", pts)
	}
}

func TestConstraintFilters(t *testing.T) {
	s, err := NewSpace("constrained", []Dimension{
		{Name: "a", Values: []string{"0", "1", "2"}},
		{Name: "b", Values: []string{"0", "1", "2"}},
	}, func(p Point) bool { return p[0] != p[1] })
	if err != nil {
		t.Fatal(err)
	}
	if s.Size() != 6 {
		t.Errorf("constrained size = %d, want 6", s.Size())
	}
	if s.Valid(Point{1, 1}) {
		t.Error("constraint should reject diagonal")
	}
	if !s.Valid(Point{0, 1}) {
		t.Error("valid point rejected")
	}
	if s.Valid(Point{0}) || s.Valid(Point{0, 9}) {
		t.Error("shape violations should be invalid")
	}
}

func TestNeighbors(t *testing.T) {
	s := tinySpace(t)
	nb := s.Neighbors(Point{0, 0})
	// 2 alternatives in dim a + 1 in dim b = 3 neighbours.
	if len(nb) != 3 {
		t.Fatalf("neighbours = %v", nb)
	}
	for _, q := range nb {
		diff := 0
		for d := range q {
			if q[d] != 0 {
				diff++
			}
		}
		if diff != 1 {
			t.Errorf("neighbour %v differs in %d dims", q, diff)
		}
	}
}

func TestDescribeAndKey(t *testing.T) {
	s := tinySpace(t)
	if got := s.Describe(Point{1, 0}); got != "a=1 b=x" {
		t.Errorf("Describe = %q", got)
	}
	if Point([]int{1, 2}).Key() != "1,2" {
		t.Error("Key format changed")
	}
	if (Point{1}).Equal(Point{1, 2}) {
		t.Error("length mismatch should not be equal")
	}
}

func TestFileSwarmingSpaceMatchesDesign(t *testing.T) {
	s := FileSwarmingSpace()
	if s.Size() != design.SpaceSize {
		t.Fatalf("space size = %d, want %d", s.Size(), design.SpaceSize)
	}
	// Round-trip every point through design.Protocol.
	seen := map[int]bool{}
	for _, p := range s.Enumerate() {
		proto, err := PointProtocol(p)
		if err != nil {
			t.Fatalf("point %v invalid: %v", p, err)
		}
		id := design.ID(proto)
		if seen[id] {
			t.Fatalf("duplicate protocol id %d", id)
		}
		seen[id] = true
		back := ProtocolPoint(proto)
		if !back.Equal(p) {
			t.Fatalf("round trip %v → %v", p, back)
		}
	}
}

func TestPointProtocolErrors(t *testing.T) {
	if _, err := PointProtocol(Point{1, 2}); err == nil {
		t.Error("wrong arity should error")
	}
	// StrangerNone with h=2 violates canonical form.
	if _, err := PointProtocol(Point{0, 2, 0, 0, 4, 0}); err == nil {
		t.Error("non-canonical point should error")
	}
}

func TestParseValue(t *testing.T) {
	d := Dimension{Name: "k", Values: []string{"0", "1", "2"}}
	if i, err := ParseValue(d, "2"); err != nil || i != 2 {
		t.Errorf("ParseValue = %d, %v", i, err)
	}
	if _, err := ParseValue(d, "9"); err == nil {
		t.Error("unknown value should error")
	}
	named := Dimension{Name: "r", Values: []string{"Fastest", "Slowest"}}
	if i, err := ParseValue(named, "Slowest"); err != nil || i != 1 {
		t.Errorf("ParseValue named = %d, %v", i, err)
	}
}

// quadratic is a deterministic objective with a unique optimum at the
// max indices.
func quadratic(s *Space) Objective {
	return func(p Point) (float64, error) {
		v := 0.0
		for d, x := range p {
			best := float64(len(s.Dimensions[d].Values) - 1)
			v -= (float64(x) - best) * (float64(x) - best)
		}
		return v, nil
	}
}

func TestExhaustiveBest(t *testing.T) {
	s := tinySpace(t)
	evals, err := ExhaustiveBest(s, quadratic(s))
	if err != nil {
		t.Fatal(err)
	}
	if !evals[0].Point.Equal(Point{2, 1}) || evals[0].Score != 0 {
		t.Errorf("best = %+v", evals[0])
	}
	if len(evals) != 6 {
		t.Errorf("evals = %d", len(evals))
	}
	for i := 1; i < len(evals); i++ {
		if evals[i].Score > evals[i-1].Score {
			t.Error("evaluations not sorted best-first")
		}
	}
}

func TestExhaustiveBestPropagatesError(t *testing.T) {
	s := tinySpace(t)
	boom := errors.New("boom")
	if _, err := ExhaustiveBest(s, func(Point) (float64, error) { return 0, boom }); !errors.Is(err, boom) {
		t.Errorf("error not propagated: %v", err)
	}
}

func TestHillClimbFindsOptimumOnSmooth(t *testing.T) {
	s, err := NewSpace("smooth", []Dimension{
		{Name: "a", Values: []string{"0", "1", "2", "3", "4"}},
		{Name: "b", Values: []string{"0", "1", "2", "3", "4"}},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	best, calls, err := HillClimb(s, quadratic(s), HillClimbConfig{Restarts: 3, MaxSteps: 20, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !best.Point.Equal(Point{4, 4}) {
		t.Errorf("hill climb best = %+v", best)
	}
	if calls <= 0 || calls > s.Size() {
		t.Errorf("calls = %d (cache should bound by space size)", calls)
	}
}

func TestHillClimbConfigValidation(t *testing.T) {
	s := tinySpace(t)
	if _, _, err := HillClimb(s, quadratic(s), HillClimbConfig{}); err == nil {
		t.Error("zero config should error")
	}
}

func TestEvolveFindsGoodPoint(t *testing.T) {
	s, err := NewSpace("evo", []Dimension{
		{Name: "a", Values: []string{"0", "1", "2", "3", "4", "5", "6", "7"}},
		{Name: "b", Values: []string{"0", "1", "2", "3", "4", "5", "6", "7"}},
		{Name: "c", Values: []string{"0", "1", "2", "3"}},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	best, calls, err := Evolve(s, quadratic(s), EvolveConfig{Population: 20, Generations: 30, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if best.Score < -2 { // optimum is 0; allow near-misses
		t.Errorf("evolve best = %+v", best)
	}
	if calls <= 0 {
		t.Error("no objective calls recorded")
	}
}

func TestEvolveConfigValidation(t *testing.T) {
	s := tinySpace(t)
	if _, _, err := Evolve(s, quadratic(s), EvolveConfig{Population: 1, Generations: 1}); err == nil {
		t.Error("population 1 should error")
	}
}

func TestExplorersDeterministic(t *testing.T) {
	s := FileSwarmingSpace()
	obj := func(p Point) (float64, error) {
		proto, err := PointProtocol(p)
		if err != nil {
			return 0, err
		}
		// Cheap synthetic objective over the real space.
		return float64(design.ID(proto)%97) / 97, nil
	}
	a, _, err := HillClimb(s, obj, HillClimbConfig{Restarts: 2, MaxSteps: 10, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := HillClimb(s, obj, HillClimbConfig{Restarts: 2, MaxSteps: 10, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if !a.Point.Equal(b.Point) || a.Score != b.Score {
		t.Error("hill climb not deterministic")
	}
	e1, _, err := Evolve(s, obj, EvolveConfig{Population: 10, Generations: 5, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	e2, _, err := Evolve(s, obj, EvolveConfig{Population: 10, Generations: 5, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if !e1.Point.Equal(e2.Point) || e1.Score != e2.Score {
		t.Error("evolve not deterministic")
	}
}

func TestParetoFront(t *testing.T) {
	xs := []float64{1, 2, 3, 0.5}
	ys := []float64{3, 2, 1, 0.5}
	front := ParetoFront(xs, ys)
	if len(front) != 3 {
		t.Fatalf("front = %v, want first three points", front)
	}
	for _, i := range front {
		if i == 3 {
			t.Error("dominated point on front")
		}
	}
	if ParetoFront([]float64{1}, []float64{1, 2}) != nil {
		t.Error("length mismatch should return nil")
	}
}

func TestParetoFrontProperty(t *testing.T) {
	// Property: no point on the front is dominated by any input point.
	f := func(raw []float64) bool {
		if len(raw) < 4 {
			return true
		}
		n := len(raw) / 2
		xs, ys := make([]float64, n), make([]float64, n)
		for i := 0; i < n; i++ {
			if math.IsNaN(raw[i]) || math.IsNaN(raw[n+i]) {
				return true
			}
			xs[i], ys[i] = raw[i], raw[n+i]
		}
		for _, i := range ParetoFront(xs, ys) {
			for j := 0; j < n; j++ {
				if j == i {
					continue
				}
				if xs[j] >= xs[i] && ys[j] >= ys[i] && (xs[j] > xs[i] || ys[j] > ys[i]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestEnumerateConcurrent pins the sync.Once guard on the lazy
// enumeration cache: the job engine's workers enumerate shared spaces
// concurrently, so first-use must be race-free (run with -race).
func TestEnumerateConcurrent(t *testing.T) {
	s, err := NewSpace("concurrent", []Dimension{
		{Name: "a", Values: []string{"0", "1", "2", "3"}},
		{Name: "b", Values: []string{"0", "1", "2"}},
		{Name: "c", Values: []string{"0", "1"}},
	}, func(p Point) bool { return p[0] != p[1] })
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	results := make([][]Point, 8)
	for i := range results {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[i] = s.Enumerate()
		}()
	}
	wg.Wait()
	for i, pts := range results {
		if len(pts) != s.Size() {
			t.Fatalf("goroutine %d saw %d points, want %d", i, len(pts), s.Size())
		}
	}
}
