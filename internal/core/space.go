// Package core is the Design Space Analysis framework of Section 3: it
// separates the *specification* of a design space (Parameterization:
// naming the salient dimensions; Actualization: listing concrete values
// per dimension) from its *analysis* by a solution concept.
//
// The package is domain-agnostic: a Space is a constrained cartesian
// product of named dimensions, an Objective maps points to scores, and
// solution concepts (exhaustive sweep, and the heuristic explorers the
// paper proposes as future work in Section 7 — hill climbing and an
// evolutionary search) work on any Space. The file-swarming space of
// Section 4 and the gossip space of Section 3.1 are both expressed in
// these terms (see FileSwarmingSpace and the gossip package).
package core

import (
	"fmt"
	"strings"
	"sync"
)

// Dimension is one salient design dimension (Parameterization) together
// with its concrete values (Actualization).
type Dimension struct {
	Name   string
	Values []string
}

// Point is a vector of value indices, one per dimension.
type Point []int

// Space is a constrained cartesian product of dimensions. Constraint
// (optional) rejects invalid combinations; rejected points are excluded
// from enumeration and never passed to objectives.
type Space struct {
	Name       string
	Dimensions []Dimension
	Constraint func(Point) bool

	enumOnce sync.Once
	valid    []Point // canonical enumeration, built once under enumOnce
}

// NewSpace builds a space after validating the dimensions.
func NewSpace(name string, dims []Dimension, constraint func(Point) bool) (*Space, error) {
	if len(dims) == 0 {
		return nil, fmt.Errorf("core: space %q needs at least one dimension", name)
	}
	for _, d := range dims {
		if len(d.Values) == 0 {
			return nil, fmt.Errorf("core: dimension %q has no values", d.Name)
		}
	}
	return &Space{Name: name, Dimensions: dims, Constraint: constraint}, nil
}

// RawSize returns the unconstrained cartesian product size.
func (s *Space) RawSize() int {
	n := 1
	for _, d := range s.Dimensions {
		n *= len(d.Values)
	}
	return n
}

// Enumerate returns every valid point in lexicographic order. The
// result is cached and must not be mutated. Safe for concurrent use:
// the job engine's workers enumerate shared spaces.
func (s *Space) Enumerate() []Point {
	s.enumOnce.Do(func() {
		var out []Point
		p := make(Point, len(s.Dimensions))
		var rec func(d int)
		rec = func(d int) {
			if d == len(s.Dimensions) {
				if s.Constraint == nil || s.Constraint(p) {
					cp := make(Point, len(p))
					copy(cp, p)
					out = append(out, cp)
				}
				return
			}
			for v := range s.Dimensions[d].Values {
				p[d] = v
				rec(d + 1)
			}
		}
		rec(0)
		s.valid = out
	})
	return s.valid
}

// Size returns the number of valid points.
func (s *Space) Size() int { return len(s.Enumerate()) }

// Describe renders a point as "dim=value" pairs.
func (s *Space) Describe(p Point) string {
	parts := make([]string, len(p))
	for d, v := range p {
		parts[d] = s.Dimensions[d].Name + "=" + s.Dimensions[d].Values[v]
	}
	return strings.Join(parts, " ")
}

// Valid reports whether p satisfies dimension bounds and the constraint.
func (s *Space) Valid(p Point) bool {
	if len(p) != len(s.Dimensions) {
		return false
	}
	for d, v := range p {
		if v < 0 || v >= len(s.Dimensions[d].Values) {
			return false
		}
	}
	return s.Constraint == nil || s.Constraint(p)
}

// Neighbors returns all valid points that differ from p in exactly one
// dimension — the move set of the hill-climbing explorer.
func (s *Space) Neighbors(p Point) []Point {
	var out []Point
	for d := range s.Dimensions {
		for v := range s.Dimensions[d].Values {
			if v == p[d] {
				continue
			}
			q := make(Point, len(p))
			copy(q, p)
			q[d] = v
			if s.Valid(q) {
				out = append(out, q)
			}
		}
	}
	return out
}

// Key returns a map key for a point.
func (p Point) Key() string {
	var b strings.Builder
	for i, v := range p {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", v)
	}
	return b.String()
}

// Equal reports whether two points are identical.
func (p Point) Equal(q Point) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}
