package core

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
)

// Objective scores a point; higher is better. Implementations are
// expected to be deterministic (memoise stochastic simulations behind
// fixed seeds) so explorers are reproducible.
type Objective func(Point) (float64, error)

// Evaluation pairs a point with its score.
type Evaluation struct {
	Point Point
	Score float64
}

// ExhaustiveBest evaluates every valid point — the paper's parameter
// sweep — and returns all evaluations sorted best-first plus the best.
// This is the "systematic analysis" path of Section 3.1; the heuristic
// explorers below are the Section 7 alternative for spaces too large to
// sweep.
func ExhaustiveBest(s *Space, obj Objective) ([]Evaluation, error) {
	pts := s.Enumerate()
	if len(pts) == 0 {
		return nil, errors.New("core: space has no valid points")
	}
	evals := make([]Evaluation, len(pts))
	for i, p := range pts {
		sc, err := obj(p)
		if err != nil {
			return nil, fmt.Errorf("core: objective at %v: %w", p, err)
		}
		evals[i] = Evaluation{Point: p, Score: sc}
	}
	sort.SliceStable(evals, func(a, b int) bool { return evals[a].Score > evals[b].Score })
	return evals, nil
}

// HillClimbConfig tunes the hill-climbing explorer.
type HillClimbConfig struct {
	Restarts int   // independent restarts from random valid points (>=1)
	MaxSteps int   // step cap per restart (>=1)
	Seed     int64 // RNG seed for restart points
	// OnRestart, if non-nil, is called after each restart finishes with
	// the restart index, the steps taken, the fresh objective calls it
	// cost, and the point it converged to. Purely observational — it
	// cannot influence the search (see internal/obs for the tracer
	// that hangs off it).
	OnRestart func(restart, steps, calls int, got Evaluation)
}

// HillClimb performs steepest-ascent hill climbing with random
// restarts: from a random valid point, repeatedly move to the best
// strictly-improving single-dimension neighbour until none exists.
// Returns the best evaluation found and the number of objective calls.
func HillClimb(s *Space, obj Objective, cfg HillClimbConfig) (Evaluation, int, error) {
	if cfg.Restarts < 1 || cfg.MaxSteps < 1 {
		return Evaluation{}, 0, errors.New("core: HillClimb needs Restarts >= 1 and MaxSteps >= 1")
	}
	pts := s.Enumerate()
	if len(pts) == 0 {
		return Evaluation{}, 0, errors.New("core: space has no valid points")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	cache := map[string]float64{}
	calls := 0
	eval := func(p Point) (float64, error) {
		if v, ok := cache[p.Key()]; ok {
			return v, nil
		}
		v, err := obj(p)
		if err != nil {
			return 0, err
		}
		calls++
		cache[p.Key()] = v
		return v, nil
	}

	var best Evaluation
	haveBest := false
	for r := 0; r < cfg.Restarts; r++ {
		callsBefore := calls
		steps := 0
		cur := pts[rng.Intn(len(pts))]
		curScore, err := eval(cur)
		if err != nil {
			return Evaluation{}, calls, err
		}
		for step := 0; step < cfg.MaxSteps; step++ {
			improved := false
			bestN := cur
			bestNScore := curScore
			for _, nb := range s.Neighbors(cur) {
				sc, err := eval(nb)
				if err != nil {
					return Evaluation{}, calls, err
				}
				if sc > bestNScore {
					bestN, bestNScore = nb, sc
					improved = true
				}
			}
			if !improved {
				break
			}
			cur, curScore = bestN, bestNScore
			steps++
		}
		if !haveBest || curScore > best.Score {
			best = Evaluation{Point: cur, Score: curScore}
			haveBest = true
		}
		if cfg.OnRestart != nil {
			cfg.OnRestart(r, steps, calls-callsBefore, Evaluation{Point: cur, Score: curScore})
		}
	}
	return best, calls, nil
}

// EvolveConfig tunes the evolutionary explorer.
type EvolveConfig struct {
	Population  int     // individuals per generation (>=2)
	Generations int     // generations to run (>=1)
	MutationP   float64 // per-dimension mutation probability (default 0.2 if 0)
	Elite       int     // individuals carried over unchanged (default 1 if 0)
	Seed        int64
	// OnGeneration, if non-nil, is called after each generation is
	// scored and ranked, with the generation index, the fresh objective
	// calls it cost, and the generation's best. Purely observational.
	OnGeneration func(gen, calls int, best Evaluation)
}

// Evolve runs a (μ+λ)-style evolutionary search: tournament selection,
// uniform crossover, per-dimension mutation, constraint repair by
// resampling. Returns the best evaluation found and objective calls.
func Evolve(s *Space, obj Objective, cfg EvolveConfig) (Evaluation, int, error) {
	if cfg.Population < 2 || cfg.Generations < 1 {
		return Evaluation{}, 0, errors.New("core: Evolve needs Population >= 2 and Generations >= 1")
	}
	if cfg.MutationP <= 0 {
		cfg.MutationP = 0.2
	}
	if cfg.Elite <= 0 {
		cfg.Elite = 1
	}
	pts := s.Enumerate()
	if len(pts) == 0 {
		return Evaluation{}, 0, errors.New("core: space has no valid points")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	cache := map[string]float64{}
	calls := 0
	eval := func(p Point) (float64, error) {
		if v, ok := cache[p.Key()]; ok {
			return v, nil
		}
		v, err := obj(p)
		if err != nil {
			return 0, err
		}
		calls++
		cache[p.Key()] = v
		return v, nil
	}
	randPoint := func() Point { return pts[rng.Intn(len(pts))] }

	pop := make([]Evaluation, cfg.Population)
	for i := range pop {
		p := randPoint()
		sc, err := eval(p)
		if err != nil {
			return Evaluation{}, calls, err
		}
		pop[i] = Evaluation{Point: p, Score: sc}
	}
	sortPop := func() {
		sort.SliceStable(pop, func(a, b int) bool { return pop[a].Score > pop[b].Score })
	}
	sortPop()

	pick := func() Evaluation { // binary tournament
		a, b := pop[rng.Intn(len(pop))], pop[rng.Intn(len(pop))]
		if a.Score >= b.Score {
			return a
		}
		return b
	}

	for g := 0; g < cfg.Generations; g++ {
		callsBefore := calls
		next := make([]Evaluation, 0, cfg.Population)
		next = append(next, pop[:cfg.Elite]...)
		for len(next) < cfg.Population {
			ma, pa := pick(), pick()
			child := make(Point, len(ma.Point))
			for d := range child {
				if rng.Intn(2) == 0 {
					child[d] = ma.Point[d]
				} else {
					child[d] = pa.Point[d]
				}
				if rng.Float64() < cfg.MutationP {
					child[d] = rng.Intn(len(s.Dimensions[d].Values))
				}
			}
			if !s.Valid(child) {
				child = randPoint() // constraint repair: resample
			}
			sc, err := eval(child)
			if err != nil {
				return Evaluation{}, calls, err
			}
			next = append(next, Evaluation{Point: child, Score: sc})
		}
		pop = next
		sortPop()
		if cfg.OnGeneration != nil {
			cfg.OnGeneration(g, calls-callsBefore, pop[0])
		}
	}
	return pop[0], calls, nil
}

// ParetoFront returns the indices of the points on the maximal Pareto
// front of two objectives (both maximised) — the Performance/Robustness
// trade-off frontier of Section 4.4 ("there will often be a trade-off
// between them"). Indices are returned in input order.
func ParetoFront(xs, ys []float64) []int {
	if len(xs) != len(ys) {
		return nil
	}
	var front []int
	for i := range xs {
		dominated := false
		for j := range xs {
			if j == i {
				continue
			}
			if xs[j] >= xs[i] && ys[j] >= ys[i] && (xs[j] > xs[i] || ys[j] > ys[i]) {
				dominated = true
				break
			}
		}
		if !dominated {
			front = append(front, i)
		}
	}
	return front
}
