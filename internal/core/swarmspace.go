package core

import (
	"fmt"
	"strconv"

	"repro/internal/design"
)

// FileSwarmingSpace expresses the Section 4.2 design space in the
// generic Space form: six dimensions with the canonical-zero
// constraints, yielding exactly design.SpaceSize (3270) valid points.
func FileSwarmingSpace() *Space {
	dims := []Dimension{
		{Name: "stranger", Values: []string{"None", "Periodic", "WhenNeeded", "Defect"}},
		{Name: "h", Values: []string{"0", "1", "2", "3"}},
		{Name: "candidates", Values: []string{"TFT", "TF2T"}},
		{Name: "ranking", Values: []string{"Fastest", "Slowest", "Proximity", "Adaptive", "Loyal", "Random"}},
		{Name: "k", Values: []string{"0", "1", "2", "3", "4", "5", "6", "7", "8", "9"}},
		{Name: "allocation", Values: []string{"EqualSplit", "PropShare", "Freeride"}},
	}
	s, err := NewSpace("p2p-file-swarming", dims, func(p Point) bool {
		_, err := PointProtocol(p)
		return err == nil
	})
	if err != nil {
		panic("core: file swarming space: " + err.Error())
	}
	return s
}

// PointProtocol converts a FileSwarmingSpace point into the design
// package's Protocol, enforcing the same canonical-form rules.
func PointProtocol(p Point) (design.Protocol, error) {
	if len(p) != 6 {
		return design.Protocol{}, fmt.Errorf("core: file-swarming point needs 6 coords, got %d", len(p))
	}
	proto := design.Protocol{
		Stranger:   design.StrangerKind(p[0]),
		H:          p[1],
		Candidate:  design.CandidateKind(p[2]),
		Ranking:    design.RankingKind(p[3]),
		K:          p[4],
		Allocation: design.AllocationKind(p[5]),
	}
	if err := proto.Validate(); err != nil {
		return design.Protocol{}, err
	}
	return proto, nil
}

// ProtocolPoint converts a design.Protocol into a FileSwarmingSpace
// point (the inverse of PointProtocol for valid protocols).
func ProtocolPoint(proto design.Protocol) Point {
	return Point{
		int(proto.Stranger),
		proto.H,
		int(proto.Candidate),
		int(proto.Ranking),
		proto.K,
		int(proto.Allocation),
	}
}

// ParseValue is a helper for tools mapping dimension value strings back
// to indices.
func ParseValue(d Dimension, value string) (int, error) {
	for i, v := range d.Values {
		if v == value {
			return i, nil
		}
	}
	if n, err := strconv.Atoi(value); err == nil && n >= 0 && n < len(d.Values) {
		return n, nil
	}
	return 0, fmt.Errorf("core: dimension %q has no value %q", d.Name, value)
}
