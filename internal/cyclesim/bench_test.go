package cyclesim

import (
	"testing"

	"repro/internal/design"
)

// BenchmarkCyclesimRound measures one steady-state simulation round at
// paper scale (50 BitTorrent peers) — the innermost unit of the PRA
// quantification's 107-million-run workload. Steady state means
// history and scratch buffers are warm; allocation here must be zero
// (pinned by TestRoundLoopAllocFree).
func BenchmarkCyclesimRound(b *testing.B) {
	w := newWorld(allocSpecs(design.BitTorrent(), 50), 1)
	for r := 0; r < 100; r++ {
		w.round = int32(r)
		w.step()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.round = int32(100 + i)
		w.step()
	}
}

// BenchmarkCyclesimRunPooled measures a whole paper-scale run on a
// warm pool: what one tournament encounter costs the sweep engine.
func BenchmarkCyclesimRunPooled(b *testing.B) {
	specs := allocSpecs(design.BitTorrent(), 50)
	pool := &Pool{}
	opt := Options{Rounds: 500, Seed: 0, Pool: pool}
	if _, err := Run(specs, opt); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opt.Seed = int64(i)
		if _, err := Run(specs, opt); err != nil {
			b.Fatal(err)
		}
	}
}
