// Package cyclesim implements the cycle-based simulation model of
// Section 4.3.1: time proceeds in rounds; in each round every peer
// selects partners from its candidate list (built from recent
// interactions), divides its upload capacity among them according to
// its resource-allocation policy, and deals with strangers according to
// its stranger policy. Every peer maintains a short history of others'
// actions. Peer utility is download throughput.
//
// # Modeling decisions
//
// The paper leaves several micro-decisions open; the ones made here are
// chosen to reproduce its reported dynamics and are ablated in the
// benchmark suite:
//
//   - Slot provisioning. A peer provisions one upload pipe per partner
//     slot (k) plus one per reserved stranger slot (h, for the Periodic
//     policy), each carrying capacity/(k+h). Capacity in unfilled slots
//     is wasted that round. This is what makes "peers rarely find
//     themselves without a fully occupied partner set" (Section 4.4)
//     matter: protocols that keep partner sets full perform better, and
//     low-k protocols fill trivially.
//   - Zero-byte contacts. A stranger contact always creates an
//     observation on the receiving side, even when the Defect policy
//     sends 0 bytes. The contacted peer therefore sees the contactor as
//     a candidate with observed rate 0 — which under Sort Slowest ranks
//     first. This reproduces the paper's Sort-S dynamics exactly.
//   - Prop Share distributes only the provisioned pipes of *selected*
//     partners (slotBW × selected), proportionally to bytes received in
//     the candidate window; if nothing was received from any selected
//     partner it gives nothing, reproducing the bootstrap failure the
//     paper describes for Sort-S + Prop Share.
//   - Churn replaces a peer with a fresh one (cleared history, new
//     capacity draw) in place, keeping the population size constant.
//
// Everything is deterministic given Options.Seed.
//
// # Performance model
//
// This package is the inner loop of the PRA quantification: a single
// paper-scale sweep runs hundreds of thousands of simulations through
// Run, so its steady state is engineered to be allocation-free and to
// avoid O(n²) work that the seed implementation repeated every round:
//
//   - Worlds are pooled (see Pool). All O(n²) history slabs survive
//     across runs; a run reset is O(n) because history validity is
//     tracked with absolute round stamps rather than cleared buffers —
//     the round counter keeps increasing across pooled runs (with a
//     guard gap), so stale stamps from earlier runs can never match.
//   - Per-round state (planned transfers, zero-byte contacts, current
//     partner sets) carries a round stamp instead of being cleared:
//     the seed's three O(n²) clears per round are gone.
//   - commit visits only the cells actually touched this round
//     (O(n·(k+h)) rather than O(n²)), in exactly the seed's
//     (receiver-ascending, giver-ascending) order so every float
//     accumulates in the same sequence.
//   - Partner selection uses an alloc-free partial selection sort over
//     the candidate scratch slice (the comparison key is a strict
//     total order, so the top-k prefix is identical to the seed's
//     sort.SliceStable result) instead of a closure-based stable sort
//     that allocated on every call.
//
// The contract for all of this is byte-identity: same RNG draw order,
// same float operation order, bit-equal Results versus the frozen seed
// implementation in internal/cyclesim/refsim. The golden-parity suite
// enforces it; it is what keeps PR 4's content-addressed cache entries
// and the committed CSVs valid across perf work without a
// ScoreVersioned bump.
package cyclesim

import (
	"fmt"
	"math"
	"math/bits"
	"math/rand"

	"repro/internal/bandwidth"
	"repro/internal/design"
)

// PeerSpec describes one peer: the protocol it executes and its upload
// capacity in KiB/s.
type PeerSpec struct {
	Protocol design.Protocol
	Capacity float64
}

// Options configures a run.
type Options struct {
	Rounds int     // number of simulation rounds (paper: 500)
	Seed   int64   // RNG seed; equal seeds give identical runs
	Churn  float64 // per-peer per-round replacement probability in [0,1] (paper: 0, 0.01, 0.1)
	// Replacement supplies capacities for churned-in peers. If nil,
	// the replacement inherits the departed peer's capacity.
	Replacement *bandwidth.Distribution
	// Pool, if non-nil, supplies and receives the run's world state so
	// repeated runs reuse the O(n²) history slabs instead of
	// reallocating them. Nil uses a shared package-level pool; pooling
	// never changes results (see the package comment's byte-identity
	// contract), only allocation behaviour.
	Pool *Pool
}

// Result holds the outcome of one run.
type Result struct {
	// Utility is each peer's mean download rate in KiB/s per round —
	// the application-specific utility of Section 3.2.
	Utility []float64
	// Spent is each peer's mean upload rate actually sent per round;
	// Capacity-Spent is bandwidth wasted in unfilled or defected slots.
	Spent []float64
	// Rounds echoes the simulated round count.
	Rounds int
}

// Mean returns the population mean utility — the paper's "average
// performance ... defined as throughput of the population".
func (r Result) Mean() float64 {
	if len(r.Utility) == 0 {
		return 0
	}
	var s float64
	for _, u := range r.Utility {
		s += u
	}
	return s / float64(len(r.Utility))
}

// GroupMean returns the mean utility over peers whose index satisfies
// the predicate — used by encounters to compare the two protocol camps.
func (r Result) GroupMean(in func(i int) bool) float64 {
	var s float64
	n := 0
	for i, u := range r.Utility {
		if in(i) {
			s += u
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return s / float64(n)
}

// aspirationEMA is the smoothing factor of the Adaptive ranking's
// aspiration level (Posch-style win-stay-lose-shift aspiration).
const aspirationEMA = 0.2

// stickRounds is how many rounds beyond the candidate window a silent
// current partner remains selectable. See the package comment; ablated
// in the benchmark suite.
const stickRounds = 2

// never is the stamp value meaning "this cell has no valid history".
// It is far enough below any reachable round that window arithmetic
// (round - stamp) cannot overflow int32: rounds are capped at maxRound
// and maxRound + |never| < 2³¹.
const never = int32(-1 << 29)

// maxRound bounds the absolute round counter. A pooled world whose
// counter would pass it is retired and replaced by a fresh one; a
// single run longer than this is rejected up front (the int32 round
// stamps the seed implementation already used would wrap there too —
// now it is an explicit error instead of silent corruption).
const maxRound = 1 << 28

// runGap is the guard gap inserted between the absolute round ranges
// of consecutive runs on a pooled world. It must exceed every
// backward-looking window in the model (candidate window + partner
// stickiness, and the two recv history rounds), so a stamp written by
// the previous run can never satisfy a window or equality check in the
// next one.
const runGap = 16

// world carries all mutable state of one run. History buffers are flat
// n×n row-major slices indexed [receiver*n + giver] (except give /
// giveRound / zeroContact, which are [giver*n + receiver], and
// partnerRound, which is [selector*n + partner]).
//
// Validity of every history cell is tracked with absolute round stamps
// rather than by clearing: a cell's value only counts when its stamp
// matches the window being asked about. The round counter is monotonic
// across pooled runs (each run starts runGap past the previous run's
// last round), which is what makes a pooled world's O(n) reset sound —
// every stale stamp is simply too old to match.
type world struct {
	n     int
	rng   *rand.Rand
	specs []PeerSpec
	caps  []float64

	// asp is the Adaptive ranking's aspiration level per peer.
	asp []float64
	// total accumulates received bytes per peer; spent accumulates sent.
	total []float64
	spent []float64

	// recvLast is the bytes received in round recvLastRound (the
	// receiver's most recent nonzero round for this giver); recvPrev /
	// recvPrevRound hold the nonzero round before that. Together they
	// cover the 2-round candidate window without per-round rotation.
	recvLast      []float64
	recvLastRound []int32
	recvPrev      []float64
	recvPrevRound []int32
	// streak counts consecutive rounds the receiver got >0 from giver,
	// as of the end of round streakRound; a gap breaks the chain by
	// leaving the stamp behind.
	streak      []int32
	streakRound []int32
	// lastContact is the absolute round of the giver's most recent
	// contact (data or zero-byte) toward the receiver, or never. The
	// selection tiebreak reads it; candidacy itself runs on the
	// contact bitmasks below.
	//
	// A pair selected in round r-1 (bit in partnerPrvMask) stays in
	// the candidate list (at its observed rate, 0 if silent) for up to
	// stickRounds beyond the candidate window after its last contact,
	// so a peer with a settled partner rarely goes candidate-less —
	// the bounded partner-stickiness that lets Sort-S peers "rarely
	// find themselves without a fully occupied partner set" (Section
	// 4.4) while still letting persistently silent partners expire,
	// which keeps large partner sets genuinely hard to sustain
	// (Figure 3's low-k advantage).
	lastContact []int32

	// give is the current round's planned transfer matrix
	// [giver*n + receiver], valid only where giveRound carries the
	// current round; zeroContact stamps zero-byte contacts the same
	// way. Neither is ever cleared.
	give        []float64
	giveRound   []int32
	zeroContact []int32

	// touchGiver[r*n : r*n+touchCnt[r]] lists the givers that planned a
	// transfer or zero-byte contact toward receiver r this round, in
	// ascending giver order (plan runs givers in index order). commit
	// walks exactly these cells.
	touchGiver []int32
	touchCnt   []int32

	// Contact bitmasks, the candidate-list accelerator: cmCur row i has
	// bit j set iff giver j contacted receiver i this round (written by
	// commit); cm1..cm4 are the previous four rounds' masks (rotated at
	// the top of every step). Because every candidacy condition looks
	// back at most win+stickRounds (≤ 4) rounds, the candidate set of
	// the seed's O(n) row scan is exactly the bits of
	//
	//	(m1|..|m_win) | (partnerPrev & (m1|..|m_{win+stick}))
	//
	// churn clears a departed peer's rows and bits, matching the
	// seed's history wipe. words is the row stride in uint64 words.
	words                          int
	cmCur, cm1, cm2, cm3, cm4      []uint64
	partnerCurMask, partnerPrvMask []uint64

	// round is the absolute index of the round being simulated; base is
	// the absolute index of the current run's round 0.
	round int32
	base  int32

	// scratch buffers for selection.
	cand []int
	keys []float64
}

// Run simulates peers for opt.Rounds rounds and returns per-peer
// utilities. It panics only on programmer error (invalid protocols are
// reported as an error instead).
func Run(peers []PeerSpec, opt Options) (Result, error) {
	n := len(peers)
	if n < 2 {
		return Result{}, fmt.Errorf("cyclesim: need at least 2 peers, got %d", n)
	}
	if opt.Rounds < 1 {
		return Result{}, fmt.Errorf("cyclesim: rounds must be >= 1, got %d", opt.Rounds)
	}
	if opt.Rounds > maxRound {
		return Result{}, fmt.Errorf("cyclesim: rounds must be <= %d, got %d", maxRound, opt.Rounds)
	}
	if math.IsNaN(opt.Churn) || opt.Churn < 0 || opt.Churn > 1 {
		return Result{}, fmt.Errorf("cyclesim: churn must be in [0,1], got %v", opt.Churn)
	}
	for i, p := range peers {
		if err := p.Protocol.Validate(); err != nil {
			return Result{}, fmt.Errorf("cyclesim: peer %d: %w", i, err)
		}
		if p.Capacity < 0 || math.IsNaN(p.Capacity) || math.IsInf(p.Capacity, 0) {
			return Result{}, fmt.Errorf("cyclesim: peer %d has invalid capacity %v", i, p.Capacity)
		}
	}
	pool := opt.Pool
	if pool == nil {
		pool = &defaultPool
	}
	w := pool.get(peers, opt.Seed, opt.Rounds)
	for r := 0; r < opt.Rounds; r++ {
		w.round = w.base + int32(r)
		w.step()
		if opt.Churn > 0 {
			w.churn(opt.Churn, opt.Replacement)
		}
	}
	res := Result{
		Utility: make([]float64, n),
		Spent:   make([]float64, n),
		Rounds:  opt.Rounds,
	}
	for i := range res.Utility {
		res.Utility[i] = w.total[i] / float64(opt.Rounds)
		res.Spent[i] = w.spent[i] / float64(opt.Rounds)
	}
	pool.put(w)
	return res, nil
}

func newWorld(peers []PeerSpec, seed int64) *world {
	n := len(peers)
	words := (n + 63) / 64
	w := &world{
		n:              n,
		words:          words,
		rng:            rand.New(rand.NewSource(seed)),
		specs:          peers,
		caps:           make([]float64, n),
		asp:            make([]float64, n),
		total:          make([]float64, n),
		spent:          make([]float64, n),
		recvLast:       make([]float64, n*n),
		recvLastRound:  make([]int32, n*n),
		recvPrev:       make([]float64, n*n),
		recvPrevRound:  make([]int32, n*n),
		streak:         make([]int32, n*n),
		streakRound:    make([]int32, n*n),
		lastContact:    make([]int32, n*n),
		give:           make([]float64, n*n),
		giveRound:      make([]int32, n*n),
		zeroContact:    make([]int32, n*n),
		touchGiver:     make([]int32, n*n),
		touchCnt:       make([]int32, n),
		cmCur:          make([]uint64, n*words),
		cm1:            make([]uint64, n*words),
		cm2:            make([]uint64, n*words),
		cm3:            make([]uint64, n*words),
		cm4:            make([]uint64, n*words),
		partnerCurMask: make([]uint64, n*words),
		partnerPrvMask: make([]uint64, n*words),
		cand:           make([]int, 0, n),
		keys:           make([]float64, n),
	}
	for i, p := range peers {
		w.caps[i] = p.Capacity
		w.asp[i] = p.Capacity
	}
	for _, s := range [][]int32{
		w.recvLastRound, w.recvPrevRound, w.streakRound,
		w.lastContact, w.giveRound, w.zeroContact,
	} {
		for i := range s {
			s[i] = never
		}
	}
	return w
}

// reset prepares a pooled world for a fresh run. The O(n²) stamp slabs
// stay as they are — the new run's round range starts runGap past the
// old one, so every stale stamp fails every check — and only the
// per-peer accumulators and the (n²/64-bit) contact masks, which carry
// no stamps, are actually cleared.
func (w *world) reset(peers []PeerSpec, seed int64) {
	w.rng.Seed(seed)
	w.base = w.round + runGap
	w.specs = peers
	for i, p := range peers {
		w.caps[i] = p.Capacity
		w.asp[i] = p.Capacity
		w.total[i] = 0
		w.spent[i] = 0
	}
	for _, m := range [][]uint64{
		w.cmCur, w.cm1, w.cm2, w.cm3, w.cm4,
		w.partnerCurMask, w.partnerPrvMask,
	} {
		for i := range m {
			m[i] = 0
		}
	}
}

// slots returns the number of provisioned upload pipes for peer i's
// protocol: k partner slots plus h reserved stranger slots under the
// Periodic policy (BitTorrent's always-on optimistic unchokes).
func slots(p design.Protocol) int {
	s := p.K
	if p.Stranger == design.Periodic {
		s += p.H
	}
	return s
}

// step executes one simultaneous round.
func (w *world) step() {
	n := w.n
	// Rotate the contact-mask generations (last round's current mask
	// becomes generation 1) and the partner masks; recycle the oldest
	// slab as the new current one. These clears — n²/64 bits each —
	// are the only per-round wipes left from the seed's three O(n²)
	// slab clears.
	w.cmCur, w.cm1, w.cm2, w.cm3, w.cm4 = w.cm4, w.cmCur, w.cm1, w.cm2, w.cm3
	for i := range w.cmCur {
		w.cmCur[i] = 0
	}
	w.partnerCurMask, w.partnerPrvMask = w.partnerPrvMask, w.partnerCurMask
	for i := range w.partnerCurMask {
		w.partnerCurMask[i] = 0
	}
	for i := range w.touchCnt {
		w.touchCnt[i] = 0
	}
	for i := 0; i < n; i++ {
		w.plan(i)
	}
	w.commit()
}

// touch records that giver i planned a transfer or zero-byte contact
// toward receiver j this round. plan runs givers in ascending index
// order and touches each (giver, receiver) cell at most once, so the
// receiver's list stays giver-sorted — the order commit relies on.
func (w *world) touch(j, i int) {
	w.touchGiver[j*w.n+int(w.touchCnt[j])] = int32(i)
	w.touchCnt[j]++
}

// plan decides peer i's uploads for this round into w.give.
func (w *world) plan(i int) {
	p := w.specs[i].Protocol
	ns := slots(p)
	if ns == 0 {
		// k=0 and no reserved stranger slots: the peer may still make
		// zero contacts? No — with no slots nothing is ever sent, and
		// only DefectStrangers makes zero-byte contacts below when it
		// has stranger activity. Handle the k=0 Defect case: contacts
		// still happen (h >= 1), they just carry nothing.
		if p.Stranger == design.DefectStrangers {
			w.contactStrangers(i, p.H, 0)
		}
		return
	}
	slotBW := w.caps[i] / float64(ns)

	selected := w.selectPartners(i, p)
	row := i * w.words
	for _, j := range selected {
		w.partnerCurMask[row+j>>6] |= 1 << (uint(j) & 63)
	}

	// Partner allocation. A planned amount of 0 (zero capacity, or a
	// zero Prop Share weight) is equivalent to no plan at all — the
	// seed wrote the 0 into a cleared slab — so only positive amounts
	// are recorded and touched.
	switch p.Allocation {
	case design.EqualSplit:
		for _, j := range selected {
			w.planGive(i, j, slotBW)
		}
	case design.PropShare:
		var sum float64
		for _, j := range selected {
			sum += w.windowRecv(i, j, p.Candidate.Window())
		}
		if sum > 0 {
			pool := slotBW * float64(len(selected))
			for _, j := range selected {
				wgt := w.windowRecv(i, j, p.Candidate.Window())
				w.planGive(i, j, pool*wgt/sum)
			}
		}
	case design.Freeride:
		// Nothing for partners.
	}

	// Stranger policy.
	switch p.Stranger {
	case design.StrangerNone:
		// No stranger interactions at all.
	case design.Periodic:
		w.contactStrangers(i, p.H, slotBW)
	case design.WhenNeeded:
		if vacant := p.K - len(selected); vacant > 0 {
			hn := p.H
			if hn > vacant {
				hn = vacant
			}
			w.contactStrangers(i, hn, slotBW)
		}
	case design.DefectStrangers:
		w.contactStrangers(i, p.H, 0)
	}
}

// planGive records a positive planned transfer from giver i to
// receiver j for this round.
func (w *world) planGive(i, j int, amount float64) {
	if amount <= 0 {
		return
	}
	idx := i*w.n + j
	w.give[idx] = amount
	w.giveRound[idx] = w.round
	w.touch(j, i)
}

// contactStrangers picks up to h distinct peers that i did not already
// plan an upload to (and are not i) and sends each amount (possibly 0,
// which still registers as a contact).
func (w *world) contactStrangers(i, h int, amount float64) {
	n := w.n
	for s := 0; s < h; s++ {
		// Rejection-sample a target; with small h and n >= 2 this
		// terminates quickly. Bail out after n tries to stay bounded.
		var j int
		ok := false
		for try := 0; try < n; try++ {
			j = w.rng.Intn(n)
			if j == i {
				continue
			}
			idx := i*n + j
			if (w.giveRound[idx] == w.round && w.give[idx] > 0) || w.zeroContact[idx] == w.round {
				continue // already serving this peer this round
			}
			ok = true
			break
		}
		if !ok {
			return
		}
		if amount > 0 {
			w.planGive(i, j, amount)
		} else {
			w.zeroContact[i*n+j] = w.round
			w.touch(j, i)
		}
	}
}

// selectPartners builds peer i's candidate list, ranks it with the
// protocol's ranking function and returns the top-k peer indices.
func (w *world) selectPartners(i int, p design.Protocol) []int {
	if p.K == 0 {
		return nil
	}
	n := w.n
	w.cand = w.cand[:0]
	win := p.Candidate.Window()
	row := i * n
	// Candidates: peers that contacted i within the window, plus
	// sticky partners — pairs selected last round whose most recent
	// contact is within win+stickRounds. Both conditions are exact
	// unions of the per-round contact masks (see the field comment),
	// so the bit scan reproduces the seed's ascending-index row scan.
	mrow := i * w.words
	for wi := 0; wi < w.words; wi++ {
		recent := w.cm1[mrow+wi]
		if win >= 2 {
			recent |= w.cm2[mrow+wi]
		}
		sticky := recent | w.cm2[mrow+wi] | w.cm3[mrow+wi]
		if win >= 2 {
			sticky |= w.cm4[mrow+wi]
		}
		m := recent | (w.partnerPrvMask[mrow+wi] & sticky)
		for m != 0 {
			j := wi<<6 + bits.TrailingZeros64(m)
			m &= m - 1
			w.cand = append(w.cand, j)
		}
	}
	if len(w.cand) == 0 {
		return nil
	}

	// Ranking keys: lower key = better rank.
	switch p.Ranking {
	case design.Fastest:
		for _, j := range w.cand {
			w.keys[j] = -w.windowRate(i, j, win)
		}
	case design.Slowest:
		for _, j := range w.cand {
			w.keys[j] = w.windowRate(i, j, win)
		}
	case design.Proximity:
		// Birds' distance = |own upload speed - other's upload speed|.
		// A peer observes others per-pipe, so it compares observed
		// rates against its own per-slot bandwidth: in a homogeneous
		// population both sides of the comparison are per-pipe speeds.
		own := w.caps[i] / float64(slots(p))
		for _, j := range w.cand {
			w.keys[j] = math.Abs(w.windowRate(i, j, win) - own)
		}
	case design.Adaptive:
		for _, j := range w.cand {
			w.keys[j] = math.Abs(w.windowRate(i, j, win) - w.asp[i])
		}
	case design.Loyal:
		for _, j := range w.cand {
			w.keys[j] = -float64(w.streakVal(row + j))
		}
	case design.RandomRank:
		w.rng.Shuffle(len(w.cand), func(a, b int) {
			w.cand[a], w.cand[b] = w.cand[b], w.cand[a]
		})
	}
	if p.Ranking != design.RandomRank {
		// Partial selection sort: only the first min(k, len) positions
		// are needed, and candLess is a strict total order (final
		// index tiebreak), so this prefix is exactly the prefix the
		// seed's sort.SliceStable produced — without the per-call
		// closure and reflection allocations, and in O(k·c) instead of
		// O(c log c) comparator indirections.
		limit := len(w.cand)
		if p.K < limit {
			limit = p.K
		}
		for a := 0; a < limit; a++ {
			best := a
			for b := a + 1; b < len(w.cand); b++ {
				if w.candLess(row, w.cand[b], w.cand[best]) {
					best = b
				}
			}
			w.cand[a], w.cand[best] = w.cand[best], w.cand[a]
		}
	}
	if len(w.cand) > p.K {
		w.cand = w.cand[:p.K]
	}
	return w.cand
}

// candLess orders candidates x, y of the selector whose matrix row
// starts at row: by ranking key, then most recent contactor first —
// the "immediately ... chooses p2" recency of Section 4.4, which also
// spreads selections uniformly instead of piling onto low indices —
// then by index for determinism. The index tiebreak makes this a
// strict total order.
func (w *world) candLess(row, x, y int) bool {
	kx, ky := w.keys[x], w.keys[y]
	if kx != ky {
		return kx < ky
	}
	lx, ly := w.lastContact[row+x], w.lastContact[row+y]
	if lx != ly {
		return lx > ly
	}
	return x < y
}

// streakVal returns the live streak for a history cell: the stored
// count only if it was extended through the previous round, else 0 (a
// silent round broke the chain by leaving the stamp behind).
func (w *world) streakVal(idx int) int32 {
	if w.streakRound[idx] == w.round-1 {
		return w.streak[idx]
	}
	return 0
}

// windowRecv returns the bytes i received from j within the window,
// adding the (at most two) stamped history rounds the window covers in
// the seed's last-then-previous order.
func (w *world) windowRecv(i, j, win int) float64 {
	idx := i*w.n + j
	lr := w.recvLastRound[idx]
	switch {
	case lr == w.round-1:
		s := w.recvLast[idx]
		if win >= 2 && w.recvPrevRound[idx] == w.round-2 {
			s += w.recvPrev[idx]
		}
		return s
	case win >= 2 && lr == w.round-2:
		return w.recvLast[idx]
	}
	return 0
}

// windowRate returns j's observed upload rate toward i over the window.
func (w *world) windowRate(i, j, win int) float64 {
	return w.windowRecv(i, j, win) / float64(win)
}

// commit applies the planned transfers: updates received/streak
// history, totals and aspiration levels. It walks only the cells
// touched this round, receiver-major with givers ascending — the same
// order the seed's full n×n scan accumulated nonzero amounts in, so
// every float operation sequence is identical (skipped cells only ever
// contributed exact +0 terms).
func (w *world) commit() {
	n := w.n
	for i := 0; i < n; i++ {
		cnt := int(w.touchCnt[i])
		if cnt == 0 {
			// No contacts: got stays 0 (total += 0 is exact identity)
			// and the aspiration level is untouched, as in the seed.
			continue
		}
		var got, givers float64
		row := i * n
		mrow := i * w.words
		for _, jg := range w.touchGiver[row : row+cnt] {
			j := int(jg)
			gidx := j*n + i
			var amt float64
			if w.giveRound[gidx] == w.round {
				amt = w.give[gidx]
			}
			idx := row + j
			w.lastContact[idx] = w.round
			w.cmCur[mrow+j>>6] |= 1 << (uint(j) & 63)
			if amt > 0 {
				// Rotate this cell's two-round receive window.
				w.recvPrev[idx] = w.recvLast[idx]
				w.recvPrevRound[idx] = w.recvLastRound[idx]
				w.recvLast[idx] = amt
				w.recvLastRound[idx] = w.round
				if w.streakRound[idx] == w.round-1 {
					w.streak[idx]++
				} else {
					w.streak[idx] = 1
				}
				w.streakRound[idx] = w.round
				got += amt
				givers++
				w.spent[j] += amt
			}
		}
		w.total[i] += got
		if givers > 0 {
			w.asp[i] = (1-aspirationEMA)*w.asp[i] + aspirationEMA*(got/givers)
		}
	}
}

// churn replaces each peer with probability rate: history involving it
// is invalidated (stamps pushed to never) and (if dist is non-nil) its
// capacity is redrawn.
func (w *world) churn(rate float64, dist *bandwidth.Distribution) {
	n := w.n
	for i := 0; i < n; i++ {
		if w.rng.Float64() >= rate {
			continue
		}
		if dist != nil {
			w.caps[i] = dist.Sample(w.rng)
		}
		w.asp[i] = w.caps[i]
		for j := 0; j < n; j++ {
			a, b := i*n+j, j*n+i
			w.recvLastRound[a], w.recvLastRound[b] = never, never
			w.recvPrevRound[a], w.recvPrevRound[b] = never, never
			w.streakRound[a], w.streakRound[b] = never, never
			w.lastContact[a], w.lastContact[b] = never, never
		}
		// Wipe the fresh peer from the contact and partner masks: its
		// own rows, and its bit in every other peer's rows.
		masks := [...][]uint64{
			w.cmCur, w.cm1, w.cm2, w.cm3, w.cm4,
			w.partnerCurMask, w.partnerPrvMask,
		}
		word, bit := i>>6, uint64(1)<<(uint(i)&63)
		for _, m := range masks {
			row := m[i*w.words : (i+1)*w.words]
			for k := range row {
				row[k] = 0
			}
			for r := 0; r < n; r++ {
				m[r*w.words+word] &^= bit
			}
		}
	}
}
