// Package cyclesim implements the cycle-based simulation model of
// Section 4.3.1: time proceeds in rounds; in each round every peer
// selects partners from its candidate list (built from recent
// interactions), divides its upload capacity among them according to
// its resource-allocation policy, and deals with strangers according to
// its stranger policy. Every peer maintains a short history of others'
// actions. Peer utility is download throughput.
//
// # Modeling decisions
//
// The paper leaves several micro-decisions open; the ones made here are
// chosen to reproduce its reported dynamics and are ablated in the
// benchmark suite:
//
//   - Slot provisioning. A peer provisions one upload pipe per partner
//     slot (k) plus one per reserved stranger slot (h, for the Periodic
//     policy), each carrying capacity/(k+h). Capacity in unfilled slots
//     is wasted that round. This is what makes "peers rarely find
//     themselves without a fully occupied partner set" (Section 4.4)
//     matter: protocols that keep partner sets full perform better, and
//     low-k protocols fill trivially.
//   - Zero-byte contacts. A stranger contact always creates an
//     observation on the receiving side, even when the Defect policy
//     sends 0 bytes. The contacted peer therefore sees the contactor as
//     a candidate with observed rate 0 — which under Sort Slowest ranks
//     first. This reproduces the paper's Sort-S dynamics exactly.
//   - Prop Share distributes only the provisioned pipes of *selected*
//     partners (slotBW × selected), proportionally to bytes received in
//     the candidate window; if nothing was received from any selected
//     partner it gives nothing, reproducing the bootstrap failure the
//     paper describes for Sort-S + Prop Share.
//   - Churn replaces a peer with a fresh one (cleared history, new
//     capacity draw) in place, keeping the population size constant.
//
// Everything is deterministic given Options.Seed.
package cyclesim

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/bandwidth"
	"repro/internal/design"
)

// PeerSpec describes one peer: the protocol it executes and its upload
// capacity in KiB/s.
type PeerSpec struct {
	Protocol design.Protocol
	Capacity float64
}

// Options configures a run.
type Options struct {
	Rounds int     // number of simulation rounds (paper: 500)
	Seed   int64   // RNG seed; equal seeds give identical runs
	Churn  float64 // per-peer per-round replacement probability (paper: 0, 0.01, 0.1)
	// Replacement supplies capacities for churned-in peers. If nil,
	// the replacement inherits the departed peer's capacity.
	Replacement *bandwidth.Distribution
}

// Result holds the outcome of one run.
type Result struct {
	// Utility is each peer's mean download rate in KiB/s per round —
	// the application-specific utility of Section 3.2.
	Utility []float64
	// Spent is each peer's mean upload rate actually sent per round;
	// Capacity-Spent is bandwidth wasted in unfilled or defected slots.
	Spent []float64
	// Rounds echoes the simulated round count.
	Rounds int
}

// Mean returns the population mean utility — the paper's "average
// performance ... defined as throughput of the population".
func (r Result) Mean() float64 {
	if len(r.Utility) == 0 {
		return 0
	}
	var s float64
	for _, u := range r.Utility {
		s += u
	}
	return s / float64(len(r.Utility))
}

// GroupMean returns the mean utility over peers whose index satisfies
// the predicate — used by encounters to compare the two protocol camps.
func (r Result) GroupMean(in func(i int) bool) float64 {
	var s float64
	n := 0
	for i, u := range r.Utility {
		if in(i) {
			s += u
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return s / float64(n)
}

// aspirationEMA is the smoothing factor of the Adaptive ranking's
// aspiration level (Posch-style win-stay-lose-shift aspiration).
const aspirationEMA = 0.2

// stickRounds is how many rounds beyond the candidate window a silent
// current partner remains selectable. See the package comment; ablated
// in the benchmark suite.
const stickRounds = 2

// noContact marks a pair that has never interacted.
const noContact = int32(-1 << 30)

// world carries all mutable state of one run. Buffers are flat n×n
// row-major slices indexed [receiver*n + giver]; they are allocated
// once so the round loop is allocation-free.
type world struct {
	n     int
	rng   *rand.Rand
	specs []PeerSpec
	caps  []float64

	// recv1/recv2: bytes received in the last and second-to-last round.
	recv1, recv2 []float64
	// contact1/contact2: whether the giver contacted the receiver
	// (possibly with 0 bytes) in the last / second-to-last round.
	contact1, contact2 []bool
	// streak counts consecutive rounds the receiver got >0 from giver.
	streak []int32
	// asp is the Adaptive ranking's aspiration level per peer.
	asp []float64
	// total accumulates received bytes per peer.
	total []float64
	// spent accumulates sent bytes per peer.
	spent []float64

	// give is the current round's planned transfer matrix
	// [giver*n + receiver]; zeroContact marks zero-byte contacts.
	give        []float64
	zeroContact []bool
	// partnerPrev/partnerCur mark [selector*n + partner] pairs chosen
	// last round / this round. A current partner stays in the candidate
	// list (at its observed rate, 0 if silent) for up to stickRounds
	// beyond the candidate window after its last contact, so a peer
	// with a settled partner rarely goes candidate-less — the bounded
	// partner-stickiness that lets Sort-S peers "rarely find themselves
	// without a fully occupied partner set" (Section 4.4) while still
	// letting persistently silent partners expire, which keeps large
	// partner sets genuinely hard to sustain (Figure 3's low-k
	// advantage).
	partnerPrev, partnerCur []bool
	// lastContact[i*n+j] is the round index of j's most recent contact
	// toward i (data or zero-byte), or noContact.
	lastContact []int32
	// round is the index of the round currently being simulated.
	round int32

	// scratch buffers for selection.
	cand []int
	keys []float64
}

// Run simulates peers for opt.Rounds rounds and returns per-peer
// utilities. It panics only on programmer error (invalid protocols are
// reported as an error instead).
func Run(peers []PeerSpec, opt Options) (Result, error) {
	n := len(peers)
	if n < 2 {
		return Result{}, fmt.Errorf("cyclesim: need at least 2 peers, got %d", n)
	}
	if opt.Rounds < 1 {
		return Result{}, fmt.Errorf("cyclesim: rounds must be >= 1, got %d", opt.Rounds)
	}
	for i, p := range peers {
		if err := p.Protocol.Validate(); err != nil {
			return Result{}, fmt.Errorf("cyclesim: peer %d: %w", i, err)
		}
		if p.Capacity < 0 || math.IsNaN(p.Capacity) || math.IsInf(p.Capacity, 0) {
			return Result{}, fmt.Errorf("cyclesim: peer %d has invalid capacity %v", i, p.Capacity)
		}
	}
	w := newWorld(peers, opt.Seed)
	for r := 0; r < opt.Rounds; r++ {
		w.round = int32(r)
		w.step()
		if opt.Churn > 0 {
			w.churn(opt.Churn, opt.Replacement)
		}
	}
	res := Result{
		Utility: make([]float64, n),
		Spent:   make([]float64, n),
		Rounds:  opt.Rounds,
	}
	for i := range res.Utility {
		res.Utility[i] = w.total[i] / float64(opt.Rounds)
		res.Spent[i] = w.spent[i] / float64(opt.Rounds)
	}
	return res, nil
}

func newWorld(peers []PeerSpec, seed int64) *world {
	n := len(peers)
	w := &world{
		n:           n,
		rng:         rand.New(rand.NewSource(seed)),
		specs:       peers,
		caps:        make([]float64, n),
		recv1:       make([]float64, n*n),
		recv2:       make([]float64, n*n),
		contact1:    make([]bool, n*n),
		contact2:    make([]bool, n*n),
		streak:      make([]int32, n*n),
		asp:         make([]float64, n),
		total:       make([]float64, n),
		spent:       make([]float64, n),
		give:        make([]float64, n*n),
		zeroContact: make([]bool, n*n),
		partnerPrev: make([]bool, n*n),
		partnerCur:  make([]bool, n*n),
		lastContact: make([]int32, n*n),
		cand:        make([]int, 0, n),
		keys:        make([]float64, n),
	}
	for i, p := range peers {
		w.caps[i] = p.Capacity
		w.asp[i] = p.Capacity
	}
	for i := range w.lastContact {
		w.lastContact[i] = noContact
	}
	return w
}

// slots returns the number of provisioned upload pipes for peer i's
// protocol: k partner slots plus h reserved stranger slots under the
// Periodic policy (BitTorrent's always-on optimistic unchokes).
func slots(p design.Protocol) int {
	s := p.K
	if p.Stranger == design.Periodic {
		s += p.H
	}
	return s
}

// step executes one simultaneous round.
func (w *world) step() {
	n := w.n
	for i := range w.give {
		w.give[i] = 0
		w.zeroContact[i] = false
		w.partnerCur[i] = false
	}
	for i := 0; i < n; i++ {
		w.plan(i)
	}
	w.commit()
}

// plan decides peer i's uploads for this round into w.give.
func (w *world) plan(i int) {
	p := w.specs[i].Protocol
	ns := slots(p)
	if ns == 0 {
		// k=0 and no reserved stranger slots: the peer may still make
		// zero contacts? No — with no slots nothing is ever sent, and
		// only DefectStrangers makes zero-byte contacts below when it
		// has stranger activity. Handle the k=0 Defect case: contacts
		// still happen (h >= 1), they just carry nothing.
		if p.Stranger == design.DefectStrangers {
			w.contactStrangers(i, p.H, 0)
		}
		return
	}
	slotBW := w.caps[i] / float64(ns)

	selected := w.selectPartners(i, p)
	for _, j := range selected {
		w.partnerCur[i*w.n+j] = true
	}

	// Partner allocation.
	switch p.Allocation {
	case design.EqualSplit:
		for _, j := range selected {
			w.give[i*w.n+j] = slotBW
		}
	case design.PropShare:
		var sum float64
		for _, j := range selected {
			sum += w.windowRecv(i, j, p.Candidate.Window())
		}
		if sum > 0 {
			pool := slotBW * float64(len(selected))
			for _, j := range selected {
				wgt := w.windowRecv(i, j, p.Candidate.Window())
				w.give[i*w.n+j] = pool * wgt / sum
			}
		}
	case design.Freeride:
		// Nothing for partners.
	}

	// Stranger policy.
	switch p.Stranger {
	case design.StrangerNone:
		// No stranger interactions at all.
	case design.Periodic:
		w.contactStrangers(i, p.H, slotBW)
	case design.WhenNeeded:
		if vacant := p.K - len(selected); vacant > 0 {
			hn := p.H
			if hn > vacant {
				hn = vacant
			}
			w.contactStrangers(i, hn, slotBW)
		}
	case design.DefectStrangers:
		w.contactStrangers(i, p.H, 0)
	}
}

// contactStrangers picks up to h distinct peers that i did not already
// plan an upload to (and are not i) and sends each amount (possibly 0,
// which still registers as a contact).
func (w *world) contactStrangers(i, h int, amount float64) {
	n := w.n
	for s := 0; s < h; s++ {
		// Rejection-sample a target; with small h and n >= 2 this
		// terminates quickly. Bail out after n tries to stay bounded.
		var j int
		ok := false
		for try := 0; try < n; try++ {
			j = w.rng.Intn(n)
			if j == i {
				continue
			}
			if w.give[i*n+j] > 0 || w.zeroContact[i*n+j] {
				continue // already serving this peer this round
			}
			ok = true
			break
		}
		if !ok {
			return
		}
		if amount > 0 {
			w.give[i*n+j] = amount
		} else {
			w.zeroContact[i*n+j] = true
		}
	}
}

// selectPartners builds peer i's candidate list, ranks it with the
// protocol's ranking function and returns the top-k peer indices.
func (w *world) selectPartners(i int, p design.Protocol) []int {
	if p.K == 0 {
		return nil
	}
	n := w.n
	w.cand = w.cand[:0]
	win := p.Candidate.Window()
	for j := 0; j < n; j++ {
		if j == i {
			continue
		}
		if w.contacted(i, j, win) ||
			(w.partnerPrev[i*n+j] && w.round-w.lastContact[i*n+j] <= int32(win+stickRounds)) {
			w.cand = append(w.cand, j)
		}
	}
	if len(w.cand) == 0 {
		return nil
	}

	// Ranking keys: lower key = better rank.
	switch p.Ranking {
	case design.Fastest:
		for _, j := range w.cand {
			w.keys[j] = -w.windowRate(i, j, win)
		}
	case design.Slowest:
		for _, j := range w.cand {
			w.keys[j] = w.windowRate(i, j, win)
		}
	case design.Proximity:
		// Birds' distance = |own upload speed - other's upload speed|.
		// A peer observes others per-pipe, so it compares observed
		// rates against its own per-slot bandwidth: in a homogeneous
		// population both sides of the comparison are per-pipe speeds.
		own := w.caps[i] / float64(slots(p))
		for _, j := range w.cand {
			w.keys[j] = math.Abs(w.windowRate(i, j, win) - own)
		}
	case design.Adaptive:
		for _, j := range w.cand {
			w.keys[j] = math.Abs(w.windowRate(i, j, win) - w.asp[i])
		}
	case design.Loyal:
		for _, j := range w.cand {
			w.keys[j] = -float64(w.streak[i*n+j])
		}
	case design.RandomRank:
		w.rng.Shuffle(len(w.cand), func(a, b int) {
			w.cand[a], w.cand[b] = w.cand[b], w.cand[a]
		})
	}
	if p.Ranking != design.RandomRank {
		cand := w.cand
		keys := w.keys
		lc := w.lastContact
		sort.SliceStable(cand, func(a, b int) bool {
			ka, kb := keys[cand[a]], keys[cand[b]]
			if ka != kb {
				return ka < kb
			}
			// Ties break toward the most recent contactor — the
			// "immediately ... chooses p2" recency of Section 4.4 —
			// then by index for determinism. Recency also spreads
			// selections uniformly instead of piling onto low indices.
			la, lb := lc[i*n+cand[a]], lc[i*n+cand[b]]
			if la != lb {
				return la > lb
			}
			return cand[a] < cand[b]
		})
	}
	if len(w.cand) > p.K {
		w.cand = w.cand[:p.K]
	}
	return w.cand
}

// contacted reports whether j interacted with i (sent bytes or a
// zero-byte contact) within the last win rounds.
func (w *world) contacted(i, j int, win int) bool {
	idx := i*w.n + j
	if w.recv1[idx] > 0 || w.contact1[idx] {
		return true
	}
	if win >= 2 && (w.recv2[idx] > 0 || w.contact2[idx]) {
		return true
	}
	return false
}

// windowRecv returns the bytes i received from j within the window.
func (w *world) windowRecv(i, j, win int) float64 {
	idx := i*w.n + j
	s := w.recv1[idx]
	if win >= 2 {
		s += w.recv2[idx]
	}
	return s
}

// windowRate returns j's observed upload rate toward i over the window.
func (w *world) windowRate(i, j, win int) float64 {
	return w.windowRecv(i, j, win) / float64(win)
}

// commit applies the planned transfers: rotates history windows,
// updates totals, streaks and aspiration levels.
func (w *world) commit() {
	n := w.n
	// Rotate: last round becomes second-to-last.
	w.recv1, w.recv2 = w.recv2, w.recv1
	w.contact1, w.contact2 = w.contact2, w.contact1
	w.partnerPrev, w.partnerCur = w.partnerCur, w.partnerPrev
	for i := 0; i < n; i++ {
		var got, givers float64
		for j := 0; j < n; j++ {
			idx := i*n + j
			amt := w.give[j*n+i]
			w.recv1[idx] = amt
			w.contact1[idx] = amt > 0 || w.zeroContact[j*n+i]
			if w.contact1[idx] {
				w.lastContact[idx] = w.round
			}
			if amt > 0 {
				w.streak[idx]++
				got += amt
				givers++
			} else {
				w.streak[idx] = 0
			}
			w.spent[j] += amt
		}
		w.total[i] += got
		if givers > 0 {
			w.asp[i] = (1-aspirationEMA)*w.asp[i] + aspirationEMA*(got/givers)
		}
	}
}

// churn replaces each peer with probability rate: history involving it
// is cleared and (if dist is non-nil) its capacity is redrawn.
func (w *world) churn(rate float64, dist *bandwidth.Distribution) {
	n := w.n
	for i := 0; i < n; i++ {
		if w.rng.Float64() >= rate {
			continue
		}
		if dist != nil {
			w.caps[i] = dist.Sample(w.rng)
		}
		w.asp[i] = w.caps[i]
		for j := 0; j < n; j++ {
			w.recv1[i*n+j], w.recv2[i*n+j] = 0, 0
			w.recv1[j*n+i], w.recv2[j*n+i] = 0, 0
			w.contact1[i*n+j], w.contact2[i*n+j] = false, false
			w.contact1[j*n+i], w.contact2[j*n+i] = false, false
			w.streak[i*n+j], w.streak[j*n+i] = 0, 0
			w.partnerPrev[i*n+j], w.partnerPrev[j*n+i] = false, false
			w.lastContact[i*n+j], w.lastContact[j*n+i] = noContact, noContact
		}
	}
}
