package cyclesim

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/bandwidth"
	"repro/internal/design"
)

// homogeneous builds n peers all executing p with stratified Piatek
// capacities.
func homogeneous(p design.Protocol, n int) []PeerSpec {
	caps := bandwidth.Piatek().Stratified(n)
	specs := make([]PeerSpec, n)
	for i := range specs {
		specs[i] = PeerSpec{Protocol: p, Capacity: caps[i]}
	}
	return specs
}

// mix interleaves two protocols: peers with index < cut run a, the rest
// run b, with stratified capacities shuffled deterministically across
// both groups by interleaving.
func mix(a, b design.Protocol, n, cut int) []PeerSpec {
	caps := bandwidth.Piatek().Stratified(n)
	specs := make([]PeerSpec, n)
	// Assign group membership round-robin so both groups see the same
	// capacity distribution, then count group A up to cut.
	gi := 0
	for i := range specs {
		proto := b
		if gi < cut && i%2 == 0 || (n-i) <= (cut-gi) {
			proto = a
			gi++
		}
		specs[i] = PeerSpec{Protocol: proto, Capacity: caps[i]}
	}
	return specs
}

func meanCapacity(specs []PeerSpec) float64 {
	var s float64
	for _, p := range specs {
		s += p.Capacity
	}
	return s / float64(len(specs))
}

func TestRunValidation(t *testing.T) {
	ok := homogeneous(design.BitTorrent(), 4)
	if _, err := Run(ok[:1], Options{Rounds: 10}); err == nil {
		t.Error("single peer should error")
	}
	if _, err := Run(ok, Options{Rounds: 0}); err == nil {
		t.Error("zero rounds should error")
	}
	bad := homogeneous(design.BitTorrent(), 4)
	bad[2].Protocol.H = 9
	if _, err := Run(bad, Options{Rounds: 10}); err == nil {
		t.Error("invalid protocol should error")
	}
	bad2 := homogeneous(design.BitTorrent(), 4)
	bad2[0].Capacity = math.NaN()
	if _, err := Run(bad2, Options{Rounds: 10}); err == nil {
		t.Error("NaN capacity should error")
	}
}

func TestDeterminism(t *testing.T) {
	specs := homogeneous(design.BitTorrent(), 20)
	a, err := Run(specs, Options{Rounds: 100, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(specs, Options{Rounds: 100, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Utility {
		if a.Utility[i] != b.Utility[i] {
			t.Fatalf("peer %d differs: %v vs %v", i, a.Utility[i], b.Utility[i])
		}
	}
	c, err := Run(specs, Options{Rounds: 100, Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Utility {
		if a.Utility[i] != c.Utility[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds should (generically) differ")
	}
}

func TestBitTorrentHomogeneousThroughput(t *testing.T) {
	specs := homogeneous(design.BitTorrent(), 50)
	res, err := Run(specs, Options{Rounds: 500, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	mc := meanCapacity(specs)
	util := res.Mean() / mc
	if util < 0.5 {
		t.Errorf("BT utilization = %.3f, want >= 0.5 (mean %v of capacity %v)", util, res.Mean(), mc)
	}
	if util > 1.000001 {
		t.Errorf("utilization = %.3f exceeds capacity: conservation violated", util)
	}
}

func TestSortSIsTopTier(t *testing.T) {
	// Section 4.4: the Sort-S protocol (defect on strangers, sort
	// slowest, one partner) is among the very best performers — peers
	// almost always keep their single slot filled and pay no stranger
	// tax. In this model Sort-S lands in the top tier but When-needed
	// k=1 variants edge it out (see EXPERIMENTS.md, deviation D1).
	n, rounds := 50, 500
	sortS, err := Run(homogeneous(design.SortS(), n), Options{Rounds: rounds, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	bt, err := Run(homogeneous(design.BitTorrent(), n), Options{Rounds: rounds, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	birds, err := Run(homogeneous(design.Birds(), n), Options{Rounds: rounds, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	mc := meanCapacity(homogeneous(design.SortS(), n))
	if util := sortS.Mean() / mc; util < 0.95 {
		t.Errorf("Sort-S utilization = %.3f, want >= 0.95", util)
	}
	if sortS.Mean() < birds.Mean() {
		t.Errorf("Sort-S mean %v should beat Birds %v", sortS.Mean(), birds.Mean())
	}
	if sortS.Mean() < bt.Mean()*0.97 {
		t.Errorf("Sort-S mean %v should be within 3%% of BitTorrent %v", sortS.Mean(), bt.Mean())
	}
}

func TestSortSPropShareFailsToBootstrap(t *testing.T) {
	// Section 4.4: "It is imperative ... that the resource allocation
	// method should not be Prop Share ... the entire population that
	// follows this protocol will fail to bootstrap."
	p := design.SortS()
	p.Allocation = design.PropShare
	res, err := Run(homogeneous(p, 30), Options{Rounds: 200, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mean() != 0 {
		t.Errorf("Sort-S + PropShare mean = %v, want 0 (no bootstrap)", res.Mean())
	}
}

func TestFreeriderPopulationsScoreZero(t *testing.T) {
	// Full freeriders (no partners, no strangers) move nothing.
	res, err := Run(homogeneous(design.Freerider(), 20), Options{Rounds: 100, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mean() != 0 {
		t.Errorf("freerider mean = %v, want 0", res.Mean())
	}
	// No-stranger protocols can never bootstrap either: without any
	// stranger contact, candidate lists stay empty forever.
	p := design.BitTorrent()
	p.Stranger, p.H = design.StrangerNone, 0
	res2, err := Run(homogeneous(p, 20), Options{Rounds: 100, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Mean() != 0 {
		t.Errorf("no-stranger mean = %v, want 0", res2.Mean())
	}
}

func TestFreerideOnPartnersStillServesStrangers(t *testing.T) {
	// R3 + Periodic uploads only the stranger slots: low but nonzero
	// throughput — the paper's "freeriders with low performance" that
	// still cooperate with strangers.
	p := design.BitTorrent()
	p.Allocation = design.Freeride
	res, err := Run(homogeneous(p, 30), Options{Rounds: 200, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mean() <= 0 {
		t.Error("periodic freerider should move stranger bytes")
	}
	bt, err := Run(homogeneous(design.BitTorrent(), 30), Options{Rounds: 200, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mean() >= bt.Mean()/2 {
		t.Errorf("freerider mean %v should be far below BT %v", res.Mean(), bt.Mean())
	}
}

func TestBitTorrentResistsFreeriders(t *testing.T) {
	// A 50/50 encounter of BitTorrent vs full freeriders: the BT camp
	// must strongly outperform the freeriders (Robustness win).
	n := 50
	specs := mix(design.BitTorrent(), design.Freerider(), n, n/2)
	res, err := Run(specs, Options{Rounds: 300, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	btMean := res.GroupMean(func(i int) bool { return specs[i].Protocol == design.BitTorrent() })
	frMean := res.GroupMean(func(i int) bool { return specs[i].Protocol == design.Freerider() })
	if btMean <= frMean {
		t.Errorf("BT camp %v should beat freeriders %v", btMean, frMean)
	}
}

func TestPropShareStarvesFreeridersHarder(t *testing.T) {
	// The robust combination (When-needed + Fastest + PropShare) should
	// leave invading freeriders with less than EqualSplit BitTorrent
	// does — the mechanism behind Figure 6.
	n := 50
	freerider := design.Freerider()

	specsES := mix(design.BitTorrent(), freerider, n, n/2)
	resES, err := Run(specsES, Options{Rounds: 300, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	frES := resES.GroupMean(func(i int) bool { return specsES[i].Protocol == freerider })

	robust := design.MostRobustCandidate()
	specsPS := mix(robust, freerider, n, n/2)
	resPS, err := Run(specsPS, Options{Rounds: 300, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	frPS := resPS.GroupMean(func(i int) bool { return specsPS[i].Protocol == freerider })

	if frPS >= frES {
		t.Errorf("freeriders vs PropShare earn %v, vs EqualSplit %v; PropShare should starve them harder", frPS, frES)
	}
}

func TestChurnReducesButKeepsThroughput(t *testing.T) {
	specs := homogeneous(design.BitTorrent(), 40)
	noChurn, err := Run(specs, Options{Rounds: 300, Seed: 19})
	if err != nil {
		t.Fatal(err)
	}
	// nil Replacement keeps the capacity composition fixed so the
	// comparison isolates the history-loss effect of churn.
	churned, err := Run(specs, Options{Rounds: 300, Seed: 19, Churn: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if churned.Mean() <= 0 {
		t.Error("churned population should still move data")
	}
	if churned.Mean() >= noChurn.Mean() {
		t.Errorf("churn 0.1 mean %v should be below churn-free %v", churned.Mean(), noChurn.Mean())
	}
}

func TestLowPartnerCountsWinUnderChurnToo(t *testing.T) {
	// Section 4.4: "we ran Performance tests ... under churn rates of
	// 0.01 and 0.1 ... it was still the protocols that employed a low
	// number of partners that performed the best." Compare like for
	// like: the same protocol family differing only in k.
	low := design.BitTorrent() // k=4 → k=1
	low.K = 1
	high := design.BitTorrent()
	high.K = 9
	for _, churn := range []float64{0.01, 0.1} {
		lowRes, err := Run(homogeneous(low, 40), Options{Rounds: 300, Seed: 23, Churn: churn})
		if err != nil {
			t.Fatal(err)
		}
		highRes, err := Run(homogeneous(high, 40), Options{Rounds: 300, Seed: 23, Churn: churn})
		if err != nil {
			t.Fatal(err)
		}
		if lowRes.Mean() <= highRes.Mean() {
			t.Errorf("churn %v: low-k mean %v should beat high-k %v", churn, lowRes.Mean(), highRes.Mean())
		}
	}
}

func TestConservationProperty(t *testing.T) {
	// Property: population mean download never exceeds population mean
	// upload capacity, for arbitrary protocols from the space.
	f := func(idA, idB uint16, seed int64) bool {
		a, err := design.ByID(int(idA) % design.SpaceSize)
		if err != nil {
			return false
		}
		b, err := design.ByID(int(idB) % design.SpaceSize)
		if err != nil {
			return false
		}
		specs := mix(a, b, 16, 8)
		res, err := Run(specs, Options{Rounds: 40, Seed: seed})
		if err != nil {
			return false
		}
		return res.Mean() <= meanCapacity(specs)*(1+1e-9)
	}
	cfg := &quick.Config{MaxCount: 30}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestUtilityNonNegativeProperty(t *testing.T) {
	f := func(id uint16, seed int64) bool {
		p, err := design.ByID(int(id) % design.SpaceSize)
		if err != nil {
			return false
		}
		res, err := Run(homogeneous(p, 12), Options{Rounds: 30, Seed: seed})
		if err != nil {
			return false
		}
		for _, u := range res.Utility {
			if u < 0 || math.IsNaN(u) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 40}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestGroupMeanEmptyGroup(t *testing.T) {
	r := Result{Utility: []float64{1, 2}}
	if got := r.GroupMean(func(int) bool { return false }); got != 0 {
		t.Errorf("empty group mean = %v", got)
	}
	var empty Result
	if empty.Mean() != 0 {
		t.Error("empty result mean should be 0")
	}
}

func TestBirdsAssortativeMatching(t *testing.T) {
	// In a homogeneous Birds population, fast peers should end up
	// downloading more than slow peers do in a Slowest-ranked world:
	// check that Birds' per-peer utility correlates positively with
	// capacity (birds of a feather: fast pair with fast).
	specs := homogeneous(design.Birds(), 50)
	res, err := Run(specs, Options{Rounds: 500, Seed: 29})
	if err != nil {
		t.Fatal(err)
	}
	// Compare top-decile vs bottom-decile mean utility.
	var slow, fast float64
	for i := 0; i < 5; i++ {
		slow += res.Utility[i]
		fast += res.Utility[len(specs)-1-i]
	}
	if fast <= slow {
		t.Errorf("Birds: fast peers (%v) should out-download slow peers (%v)", fast/5, slow/5)
	}
}
