// Package refsim is the frozen pre-optimization reference
// implementation of the cycle simulator (internal/cyclesim as of PR 4).
// It exists for two reasons:
//
//  1. Parity: the PR 5 hot-path rewrite of cyclesim promises
//     byte-identical results (same RNG draw order, same float operation
//     order). The parity suite runs both implementations over a matrix
//     of protocols, rankings, stranger policies and churn rates and
//     compares Result bit patterns. The committed golden fixtures are
//     generated from this package.
//  2. Perf baseline: scripts/perf_smoke.sh benchmarks a cold tournament
//     sweep against this implementation and enforces the >= 2x
//     optimized-vs-reference floor in CI, so the speedup claim is
//     re-measured on every push instead of decaying into a stale
//     number.
//
// DO NOT "fix" or optimise this package. It is intentionally the seed
// code, allocation patterns and all; the only edits since the freeze
// are the package clause and the import of the public cyclesim types
// (PeerSpec, Options, Result), which carry no behaviour.
package refsim

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/bandwidth"
	"repro/internal/cyclesim"
	"repro/internal/design"
)

// aspirationEMA mirrors cyclesim's constant at the freeze point.
const aspirationEMA = 0.2

// stickRounds mirrors cyclesim's constant at the freeze point.
const stickRounds = 2

// noContact marks a pair that has never interacted.
const noContact = int32(-1 << 30)

// world carries all mutable state of one run. Buffers are flat n×n
// row-major slices indexed [receiver*n + giver]; they are allocated
// once so the round loop is allocation-free.
type world struct {
	n     int
	rng   *rand.Rand
	specs []cyclesim.PeerSpec
	caps  []float64

	recv1, recv2       []float64
	contact1, contact2 []bool
	streak             []int32
	asp                []float64
	total              []float64
	spent              []float64

	give        []float64
	zeroContact []bool

	partnerPrev, partnerCur []bool
	lastContact             []int32
	round                   int32

	cand []int
	keys []float64
}

// Run is the frozen reference cyclesim.Run. It validates exactly as
// the seed did (note: churn is NOT validated here — that check is a
// PR 5 addition to the optimized implementation).
func Run(peers []cyclesim.PeerSpec, opt cyclesim.Options) (cyclesim.Result, error) {
	n := len(peers)
	if n < 2 {
		return cyclesim.Result{}, fmt.Errorf("refsim: need at least 2 peers, got %d", n)
	}
	if opt.Rounds < 1 {
		return cyclesim.Result{}, fmt.Errorf("refsim: rounds must be >= 1, got %d", opt.Rounds)
	}
	for i, p := range peers {
		if err := p.Protocol.Validate(); err != nil {
			return cyclesim.Result{}, fmt.Errorf("refsim: peer %d: %w", i, err)
		}
		if p.Capacity < 0 || math.IsNaN(p.Capacity) || math.IsInf(p.Capacity, 0) {
			return cyclesim.Result{}, fmt.Errorf("refsim: peer %d has invalid capacity %v", i, p.Capacity)
		}
	}
	w := newWorld(peers, opt.Seed)
	for r := 0; r < opt.Rounds; r++ {
		w.round = int32(r)
		w.step()
		if opt.Churn > 0 {
			w.churn(opt.Churn, opt.Replacement)
		}
	}
	res := cyclesim.Result{
		Utility: make([]float64, n),
		Spent:   make([]float64, n),
		Rounds:  opt.Rounds,
	}
	for i := range res.Utility {
		res.Utility[i] = w.total[i] / float64(opt.Rounds)
		res.Spent[i] = w.spent[i] / float64(opt.Rounds)
	}
	return res, nil
}

func newWorld(peers []cyclesim.PeerSpec, seed int64) *world {
	n := len(peers)
	w := &world{
		n:           n,
		rng:         rand.New(rand.NewSource(seed)),
		specs:       peers,
		caps:        make([]float64, n),
		recv1:       make([]float64, n*n),
		recv2:       make([]float64, n*n),
		contact1:    make([]bool, n*n),
		contact2:    make([]bool, n*n),
		streak:      make([]int32, n*n),
		asp:         make([]float64, n),
		total:       make([]float64, n),
		spent:       make([]float64, n),
		give:        make([]float64, n*n),
		zeroContact: make([]bool, n*n),
		partnerPrev: make([]bool, n*n),
		partnerCur:  make([]bool, n*n),
		lastContact: make([]int32, n*n),
		cand:        make([]int, 0, n),
		keys:        make([]float64, n),
	}
	for i, p := range peers {
		w.caps[i] = p.Capacity
		w.asp[i] = p.Capacity
	}
	for i := range w.lastContact {
		w.lastContact[i] = noContact
	}
	return w
}

func slots(p design.Protocol) int {
	s := p.K
	if p.Stranger == design.Periodic {
		s += p.H
	}
	return s
}

func (w *world) step() {
	n := w.n
	for i := range w.give {
		w.give[i] = 0
		w.zeroContact[i] = false
		w.partnerCur[i] = false
	}
	for i := 0; i < n; i++ {
		w.plan(i)
	}
	w.commit()
}

func (w *world) plan(i int) {
	p := w.specs[i].Protocol
	ns := slots(p)
	if ns == 0 {
		if p.Stranger == design.DefectStrangers {
			w.contactStrangers(i, p.H, 0)
		}
		return
	}
	slotBW := w.caps[i] / float64(ns)

	selected := w.selectPartners(i, p)
	for _, j := range selected {
		w.partnerCur[i*w.n+j] = true
	}

	switch p.Allocation {
	case design.EqualSplit:
		for _, j := range selected {
			w.give[i*w.n+j] = slotBW
		}
	case design.PropShare:
		var sum float64
		for _, j := range selected {
			sum += w.windowRecv(i, j, p.Candidate.Window())
		}
		if sum > 0 {
			pool := slotBW * float64(len(selected))
			for _, j := range selected {
				wgt := w.windowRecv(i, j, p.Candidate.Window())
				w.give[i*w.n+j] = pool * wgt / sum
			}
		}
	case design.Freeride:
	}

	switch p.Stranger {
	case design.StrangerNone:
	case design.Periodic:
		w.contactStrangers(i, p.H, slotBW)
	case design.WhenNeeded:
		if vacant := p.K - len(selected); vacant > 0 {
			hn := p.H
			if hn > vacant {
				hn = vacant
			}
			w.contactStrangers(i, hn, slotBW)
		}
	case design.DefectStrangers:
		w.contactStrangers(i, p.H, 0)
	}
}

func (w *world) contactStrangers(i, h int, amount float64) {
	n := w.n
	for s := 0; s < h; s++ {
		var j int
		ok := false
		for try := 0; try < n; try++ {
			j = w.rng.Intn(n)
			if j == i {
				continue
			}
			if w.give[i*n+j] > 0 || w.zeroContact[i*n+j] {
				continue
			}
			ok = true
			break
		}
		if !ok {
			return
		}
		if amount > 0 {
			w.give[i*n+j] = amount
		} else {
			w.zeroContact[i*n+j] = true
		}
	}
}

func (w *world) selectPartners(i int, p design.Protocol) []int {
	if p.K == 0 {
		return nil
	}
	n := w.n
	w.cand = w.cand[:0]
	win := p.Candidate.Window()
	for j := 0; j < n; j++ {
		if j == i {
			continue
		}
		if w.contacted(i, j, win) ||
			(w.partnerPrev[i*n+j] && w.round-w.lastContact[i*n+j] <= int32(win+stickRounds)) {
			w.cand = append(w.cand, j)
		}
	}
	if len(w.cand) == 0 {
		return nil
	}

	switch p.Ranking {
	case design.Fastest:
		for _, j := range w.cand {
			w.keys[j] = -w.windowRate(i, j, win)
		}
	case design.Slowest:
		for _, j := range w.cand {
			w.keys[j] = w.windowRate(i, j, win)
		}
	case design.Proximity:
		own := w.caps[i] / float64(slots(p))
		for _, j := range w.cand {
			w.keys[j] = math.Abs(w.windowRate(i, j, win) - own)
		}
	case design.Adaptive:
		for _, j := range w.cand {
			w.keys[j] = math.Abs(w.windowRate(i, j, win) - w.asp[i])
		}
	case design.Loyal:
		for _, j := range w.cand {
			w.keys[j] = -float64(w.streak[i*n+j])
		}
	case design.RandomRank:
		w.rng.Shuffle(len(w.cand), func(a, b int) {
			w.cand[a], w.cand[b] = w.cand[b], w.cand[a]
		})
	}
	if p.Ranking != design.RandomRank {
		cand := w.cand
		keys := w.keys
		lc := w.lastContact
		sort.SliceStable(cand, func(a, b int) bool {
			ka, kb := keys[cand[a]], keys[cand[b]]
			if ka != kb {
				return ka < kb
			}
			la, lb := lc[i*n+cand[a]], lc[i*n+cand[b]]
			if la != lb {
				return la > lb
			}
			return cand[a] < cand[b]
		})
	}
	if len(w.cand) > p.K {
		w.cand = w.cand[:p.K]
	}
	return w.cand
}

func (w *world) contacted(i, j int, win int) bool {
	idx := i*w.n + j
	if w.recv1[idx] > 0 || w.contact1[idx] {
		return true
	}
	if win >= 2 && (w.recv2[idx] > 0 || w.contact2[idx]) {
		return true
	}
	return false
}

func (w *world) windowRecv(i, j, win int) float64 {
	idx := i*w.n + j
	s := w.recv1[idx]
	if win >= 2 {
		s += w.recv2[idx]
	}
	return s
}

func (w *world) windowRate(i, j, win int) float64 {
	return w.windowRecv(i, j, win) / float64(win)
}

func (w *world) commit() {
	n := w.n
	w.recv1, w.recv2 = w.recv2, w.recv1
	w.contact1, w.contact2 = w.contact2, w.contact1
	w.partnerPrev, w.partnerCur = w.partnerCur, w.partnerPrev
	for i := 0; i < n; i++ {
		var got, givers float64
		for j := 0; j < n; j++ {
			idx := i*n + j
			amt := w.give[j*n+i]
			w.recv1[idx] = amt
			w.contact1[idx] = amt > 0 || w.zeroContact[j*n+i]
			if w.contact1[idx] {
				w.lastContact[idx] = w.round
			}
			if amt > 0 {
				w.streak[idx]++
				got += amt
				givers++
			} else {
				w.streak[idx] = 0
			}
			w.spent[j] += amt
		}
		w.total[i] += got
		if givers > 0 {
			w.asp[i] = (1-aspirationEMA)*w.asp[i] + aspirationEMA*(got/givers)
		}
	}
}

func (w *world) churn(rate float64, dist *bandwidth.Distribution) {
	n := w.n
	for i := 0; i < n; i++ {
		if w.rng.Float64() >= rate {
			continue
		}
		if dist != nil {
			w.caps[i] = dist.Sample(w.rng)
		}
		w.asp[i] = w.caps[i]
		for j := 0; j < n; j++ {
			w.recv1[i*n+j], w.recv2[i*n+j] = 0, 0
			w.recv1[j*n+i], w.recv2[j*n+i] = 0, 0
			w.contact1[i*n+j], w.contact2[i*n+j] = false, false
			w.contact1[j*n+i], w.contact2[j*n+i] = false, false
			w.streak[i*n+j], w.streak[j*n+i] = 0, 0
			w.partnerPrev[i*n+j], w.partnerPrev[j*n+i] = false, false
			w.lastContact[i*n+j], w.lastContact[j*n+i] = noContact, noContact
		}
	}
}
