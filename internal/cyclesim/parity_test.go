package cyclesim_test

// Golden-parity suite: proves the optimized cyclesim.Run is
// byte-identical to the frozen seed implementation (refsim) across a
// committed matrix of protocols × churn rates × population mixes, and
// that pooling never leaks state between runs.
//
// The golden fixtures in testdata/golden_cyclesim.json hold the exact
// float64 bit patterns refsim produced at freeze time; regenerate with
//
//	go test ./internal/cyclesim -run TestGoldenParity -update
//
// (which re-runs refsim, NOT the optimized code — the optimized
// implementation can never define its own truth). Any perf change that
// alters a single bit here also invalidates the PR 4 cache keys and
// the committed CSVs, and needs a dsa.ScoreVersioned version bump plus
// a deliberate fixture regeneration.

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"repro/internal/bandwidth"
	"repro/internal/cyclesim"
	"repro/internal/cyclesim/refsim"
	"repro/internal/design"
)

var update = flag.Bool("update", false, "regenerate golden fixtures from the frozen reference implementation")

const goldenPath = "testdata/golden_cyclesim.json"

// goldenCase pins one simulation: the spec is reconstructed from
// protocol IDs so fixtures survive any refactoring of the design
// space's Go types (IDs are the stable enumeration order).
type goldenCase struct {
	Name        string   `json:"name"`
	ProtoIDs    []int    `json:"protoIds"` // one per peer
	Rounds      int      `json:"rounds"`
	Seed        int64    `json:"seed"`
	Churn       float64  `json:"churn"`
	Replacement bool     `json:"replacement"` // churned-in capacities from Piatek
	UtilityBits []uint64 `json:"utilityBits,omitempty"`
	SpentBits   []uint64 `json:"spentBits,omitempty"`
}

// goldenCases builds the committed matrix: every ranking function and
// allocation policy appears, churn covers the paper's three rates, and
// the mixed populations exercise the encounter path.
func goldenCases() []goldenCase {
	adaptive := design.BitTorrent()
	adaptive.Ranking = design.Adaptive
	randomRank := design.BitTorrent()
	randomRank.Ranking = design.RandomRank
	sortSProp := design.SortS()
	sortSProp.Allocation = design.PropShare

	homogeneous := map[string]design.Protocol{
		"bittorrent":    design.BitTorrent(),
		"birds":         design.Birds(),
		"sort-s":        design.SortS(),
		"loyal-wn":      design.LoyalWhenNeeded(),
		"most-robust":   design.MostRobustCandidate(),
		"freerider":     design.Freerider(),
		"adaptive":      adaptive,
		"random-rank":   randomRank,
		"sort-s-propsh": sortSProp,
	}
	var cases []goldenCase
	uniform := func(p design.Protocol, n int) []int {
		ids := make([]int, n)
		for i := range ids {
			ids[i] = design.ID(p)
		}
		return ids
	}
	// Sorted name order keeps -update regenerations byte-stable, so a
	// deliberate fixture refresh diffs only the values that moved.
	sortedNames := func(m map[string]design.Protocol) []string {
		names := make([]string, 0, len(m))
		for name := range m {
			names = append(names, name)
		}
		sort.Strings(names)
		return names
	}
	for _, name := range sortedNames(homogeneous) {
		cases = append(cases, goldenCase{
			Name: "homogeneous/" + name, ProtoIDs: uniform(homogeneous[name], 30), Rounds: 150, Seed: 101,
		})
	}
	churned := map[string]design.Protocol{
		"bittorrent": design.BitTorrent(), "sort-s": design.SortS(),
	}
	for _, churn := range []float64{0.01, 0.1} {
		for _, name := range sortedNames(churned) {
			cases = append(cases, goldenCase{
				Name:     fmt.Sprintf("churn/%s/%v", name, churn),
				ProtoIDs: uniform(churned[name], 30), Rounds: 150, Seed: 202,
				Churn: churn, Replacement: true,
			})
		}
	}
	mix := func(a, b design.Protocol, n, nA int) []int {
		ids := make([]int, n)
		for i := range ids {
			if i < nA {
				ids[i] = design.ID(a)
			} else {
				ids[i] = design.ID(b)
			}
		}
		return ids
	}
	cases = append(cases,
		goldenCase{Name: "mixed/bt-vs-freerider", ProtoIDs: mix(design.BitTorrent(), design.Freerider(), 30, 15), Rounds: 150, Seed: 303},
		goldenCase{Name: "mixed/sorts-vs-bt", ProtoIDs: mix(design.SortS(), design.BitTorrent(), 30, 15), Rounds: 150, Seed: 304},
		goldenCase{Name: "mixed/minority-robust", ProtoIDs: mix(design.MostRobustCandidate(), design.BitTorrent(), 30, 3), Rounds: 150, Seed: 305, Churn: 0.01, Replacement: true},
	)
	return cases
}

func (c goldenCase) specs(t *testing.T) []cyclesim.PeerSpec {
	t.Helper()
	caps := bandwidth.Piatek().Stratified(len(c.ProtoIDs))
	specs := make([]cyclesim.PeerSpec, len(c.ProtoIDs))
	for i, id := range c.ProtoIDs {
		p, err := design.ByID(id)
		if err != nil {
			t.Fatalf("case %s: %v", c.Name, err)
		}
		specs[i] = cyclesim.PeerSpec{Protocol: p, Capacity: caps[i]}
	}
	return specs
}

func (c goldenCase) options() cyclesim.Options {
	opt := cyclesim.Options{Rounds: c.Rounds, Seed: c.Seed, Churn: c.Churn}
	if c.Replacement {
		opt.Replacement = bandwidth.Piatek()
	}
	return opt
}

func toBits(vals []float64) []uint64 {
	out := make([]uint64, len(vals))
	for i, v := range vals {
		out[i] = math.Float64bits(v)
	}
	return out
}

func checkBits(t *testing.T, caseName, what string, got []float64, want []uint64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %s has %d values, golden has %d", caseName, what, len(got), len(want))
	}
	for i := range got {
		if math.Float64bits(got[i]) != want[i] {
			t.Errorf("%s: %s[%d] = %v (bits %#x), golden bits %#x — byte-identity broken",
				caseName, what, i, got[i], math.Float64bits(got[i]), want[i])
			return
		}
	}
}

// TestGoldenParity checks three implementations against the committed
// bit patterns: the frozen reference (guards against accidental edits
// to refsim), the optimized Run, and the optimized Run on a shared
// Pool that has already absorbed other runs (guards against state
// leaking through reuse).
func TestGoldenParity(t *testing.T) {
	cases := goldenCases()
	if *update {
		for i := range cases {
			res, err := refsim.Run(cases[i].specs(t), cases[i].options())
			if err != nil {
				t.Fatalf("case %s: %v", cases[i].Name, err)
			}
			cases[i].UtilityBits = toBits(res.Utility)
			cases[i].SpentBits = toBits(res.Spent)
		}
		buf, err := json.MarshalIndent(cases, "", "\t")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(buf, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d cases)", goldenPath, len(cases))
		return
	}

	buf, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden fixtures (run with -update to generate from refsim): %v", err)
	}
	var golden []goldenCase
	if err := json.Unmarshal(buf, &golden); err != nil {
		t.Fatal(err)
	}
	byName := make(map[string]goldenCase, len(golden))
	for _, g := range golden {
		byName[g.Name] = g
	}
	pool := &cyclesim.Pool{} // shared across all cases, absorbing size changes
	for _, c := range cases {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			g, ok := byName[c.Name]
			if !ok {
				t.Fatalf("case %s missing from golden file; regenerate with -update", c.Name)
			}
			specs := c.specs(t)

			ref, err := refsim.Run(specs, c.options())
			if err != nil {
				t.Fatal(err)
			}
			checkBits(t, c.Name, "refsim utility", ref.Utility, g.UtilityBits)
			checkBits(t, c.Name, "refsim spent", ref.Spent, g.SpentBits)

			got, err := cyclesim.Run(specs, c.options())
			if err != nil {
				t.Fatal(err)
			}
			checkBits(t, c.Name, "utility", got.Utility, g.UtilityBits)
			checkBits(t, c.Name, "spent", got.Spent, g.SpentBits)

			opt := c.options()
			opt.Pool = pool
			pooled, err := cyclesim.Run(specs, opt)
			if err != nil {
				t.Fatal(err)
			}
			checkBits(t, c.Name, "pooled utility", pooled.Utility, g.UtilityBits)
			checkBits(t, c.Name, "pooled spent", pooled.Spent, g.SpentBits)
		})
	}
}

// TestRandomizedRefsimParity fuzzes the whole design space against the
// reference: random protocol pairs, population sizes, churn rates
// (including the 1.0 edge), round counts and pool sharing. Everything
// must match bit for bit.
func TestRandomizedRefsimParity(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	pool := &cyclesim.Pool{}
	trials := 250
	if testing.Short() {
		trials = 40
	}
	for trial := 0; trial < trials; trial++ {
		n := 4 + rng.Intn(28)
		a, err := design.ByID(rng.Intn(design.SpaceSize))
		if err != nil {
			t.Fatal(err)
		}
		b, err := design.ByID(rng.Intn(design.SpaceSize))
		if err != nil {
			t.Fatal(err)
		}
		caps := bandwidth.Piatek().Stratified(n)
		specs := make([]cyclesim.PeerSpec, n)
		for i := range specs {
			p := a
			if i%2 == 1 {
				p = b
			}
			specs[i] = cyclesim.PeerSpec{Protocol: p, Capacity: caps[i]}
		}
		churn := []float64{0, 0, 0.01, 0.1, 0.5, 1}[rng.Intn(6)]
		var dist *bandwidth.Distribution
		if rng.Intn(2) == 0 {
			dist = bandwidth.Piatek()
		}
		opt := cyclesim.Options{Rounds: 1 + rng.Intn(80), Seed: rng.Int63(), Churn: churn, Replacement: dist}
		ref, err := refsim.Run(specs, opt)
		if err != nil {
			t.Fatal(err)
		}
		optRun := opt
		if rng.Intn(2) == 0 {
			optRun.Pool = pool // alternate the shared default pool and an explicit one
		}
		got, err := cyclesim.Run(specs, optRun)
		if err != nil {
			t.Fatal(err)
		}
		for i := range ref.Utility {
			if ref.Utility[i] != got.Utility[i] || ref.Spent[i] != got.Spent[i] {
				t.Fatalf("trial %d (n=%d rounds=%d churn=%v a=%d b=%d): peer %d diverged: utility %v vs %v, spent %v vs %v",
					trial, n, opt.Rounds, churn, design.ID(a), design.ID(b), i,
					got.Utility[i], ref.Utility[i], got.Spent[i], ref.Spent[i])
			}
		}
	}
}

// TestChurnValidation pins the PR 5 bugfix: churn outside [0,1] and
// NaN were silently clamped by the seed (negative/NaN behaved as 0,
// >1 saturated); they are now explicit errors.
func TestChurnValidation(t *testing.T) {
	caps := bandwidth.Piatek().Stratified(4)
	specs := make([]cyclesim.PeerSpec, 4)
	for i := range specs {
		specs[i] = cyclesim.PeerSpec{Protocol: design.BitTorrent(), Capacity: caps[i]}
	}
	for _, churn := range []float64{math.NaN(), -0.01, -1, 1.0000001, 2, math.Inf(1), math.Inf(-1)} {
		if _, err := cyclesim.Run(specs, cyclesim.Options{Rounds: 5, Seed: 1, Churn: churn}); err == nil {
			t.Errorf("churn %v accepted, want error", churn)
		}
	}
	for _, churn := range []float64{0, 0.5, 1} {
		if _, err := cyclesim.Run(specs, cyclesim.Options{Rounds: 5, Seed: 1, Churn: churn, Replacement: bandwidth.Piatek()}); err != nil {
			t.Errorf("churn %v rejected: %v", churn, err)
		}
	}
}
