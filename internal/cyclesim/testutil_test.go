package cyclesim

import (
	"repro/internal/bandwidth"
	"repro/internal/design"
)

// allocSpecs builds an all-p population with stratified Piatek
// capacities — shared by the in-package allocation pins and
// benchmarks.
func allocSpecs(p design.Protocol, n int) []PeerSpec {
	caps := bandwidth.Piatek().Stratified(n)
	specs := make([]PeerSpec, n)
	for i := range specs {
		specs[i] = PeerSpec{Protocol: p, Capacity: caps[i]}
	}
	return specs
}
