//go:build !race

// The race detector's instrumentation allocates, so these exact
// allocation-count pins only run in non-race builds (CI runs both
// modes; the parity suites run under -race as usual).

package cyclesim

// Steady-state allocation pins for the round loop. These are
// in-package (they drive world.step directly); the byte-identity
// parity suite lives in parity_test.go in the external test package,
// because refsim imports this package's types.

import (
	"testing"

	"repro/internal/bandwidth"
	"repro/internal/design"
	"repro/internal/obs"
)

// TestRoundLoopAllocFree pins the per-round steady state at exactly 0
// allocations, for every ranking function (RandomRank exercises the
// rng.Shuffle closure, Loyal the streak stamps, PropShare the window
// sums) and with churn active (the bandwidth re-draw runs the
// piecewise-CDF inversion). Future perf work must keep this at 0 —
// the PRA tournament runs hundreds of millions of rounds.
func TestRoundLoopAllocFree(t *testing.T) {
	protos := map[string]design.Protocol{
		"bittorrent": design.BitTorrent(),
		"sort-s":     design.SortS(),
		"birds":      design.Birds(),
		"loyal":      design.LoyalWhenNeeded(),
		"propshare":  design.MostRobustCandidate(),
	}
	rr := design.BitTorrent()
	rr.Ranking = design.RandomRank
	protos["random-rank"] = rr

	dist := bandwidth.Piatek()
	for name, p := range protos {
		t.Run(name, func(t *testing.T) {
			w := newWorld(allocSpecs(p, 40), 11)
			// Warm up: let the candidate scratch and history reach
			// steady state before measuring.
			for r := 0; r < 60; r++ {
				w.round = int32(r)
				w.step()
				w.churn(0.05, dist)
			}
			r := w.round + 1
			if avg := testing.AllocsPerRun(300, func() {
				w.round = r
				w.step()
				w.churn(0.05, dist)
				r++
			}); avg != 0 {
				t.Errorf("round loop allocates %v objects/round in steady state, want 0", avg)
			}
		})
	}
}

// TestRoundLoopAllocFreeWithRecorder pins the observability contract
// at its sharpest point: the round loop stays at 0 allocations even
// with a journaling obs recorder live in the process — and even
// journaling a span every round (far finer than production, which
// records at the task level) costs nothing. Tracing a sweep cannot
// regress the PR 5 hot-path guarantees.
func TestRoundLoopAllocFreeWithRecorder(t *testing.T) {
	rec, err := obs.OpenDir(t.TempDir(), "alloc")
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()

	dist := bandwidth.Piatek()
	w := newWorld(allocSpecs(design.BitTorrent(), 40), 11)
	round := func() {
		s := rec.Start(0, "round").Int("round", int64(w.round))
		w.step()
		w.churn(0.05, dist)
		s.End()
		w.round++
	}
	for r := 0; r < 60; r++ { // steady state for world and recorder both
		round()
	}
	if avg := testing.AllocsPerRun(300, round); avg != 0 {
		t.Errorf("round loop with live recorder allocates %v objects/round, want 0", avg)
	}
}

// TestPooledRunAllocs pins a whole pooled Run at the Result slices
// only: the world (rng included) must come back from the pool without
// reallocation.
func TestPooledRunAllocs(t *testing.T) {
	specs := allocSpecs(design.BitTorrent(), 30)
	pool := &Pool{}
	opt := Options{Rounds: 40, Seed: 3, Pool: pool}
	if _, err := Run(specs, opt); err != nil { // warm the pool
		t.Fatal(err)
	}
	seed := int64(4)
	avg := testing.AllocsPerRun(50, func() {
		opt.Seed = seed
		if _, err := Run(specs, opt); err != nil {
			t.Fatal(err)
		}
		seed++
	})
	// Result{Utility, Spent} are the only per-run allocations.
	if avg > 2 {
		t.Errorf("pooled Run allocates %v objects/run, want <= 2 (the Result slices)", avg)
	}
}
