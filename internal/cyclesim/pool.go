package cyclesim

import "sync"

// Pool recycles world state across runs so a sweep's steady state
// allocates nothing per simulation: the O(n²) history slabs of a
// finished run are handed to the next run of the same population size
// and revalidated in O(n) (see world.reset — stamp monotonicity does
// the rest). Results are byte-identical with or without pooling, and
// regardless of which runs shared a world; the golden-parity suite
// pins this.
//
// A Pool is safe for concurrent use by multiple goroutines (the PRA
// tournament workers all draw from one). The zero value is ready to
// use. Run falls back to a shared package-level Pool when
// Options.Pool is nil, so every caller — pra sweeps, job.ExecTasks
// workers, the grid — pools by default; pass an explicit Pool to
// isolate a workload's worlds (ownership rules in DESIGN.md).
type Pool struct {
	p sync.Pool
}

// defaultPool serves Run calls with no explicit pool.
var defaultPool Pool

// get returns a world ready to simulate peers from seed: a pooled one
// of the right size when available (reset in O(n)), a fresh one
// otherwise. Worlds whose absolute round counter would pass maxRound
// within this run are retired — the replacement starts a fresh stamp
// epoch.
func (pl *Pool) get(peers []PeerSpec, seed int64, rounds int) *world {
	if w, _ := pl.p.Get().(*world); w != nil {
		if w.n == len(peers) && w.round+runGap+int32(rounds) < maxRound {
			w.reset(peers, seed)
			return w
		}
		// Wrong size or epoch exhausted: drop it for the GC.
	}
	return newWorld(peers, seed)
}

// put returns a world to the pool once its run has been read out. The
// caller's spec slice is released so pooling cannot pin it.
func (pl *Pool) put(w *world) {
	w.specs = nil
	pl.p.Put(w)
}
