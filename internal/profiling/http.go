package profiling

import (
	"crypto/sha256"
	"crypto/subtle"
	"net/http"
	"net/http/pprof"
	"strings"
)

// Handler returns the live /debug/pprof/ handler tree — the
// HTTP-served complement to Start's file profiles, for inspecting a
// running worker or coordinator (goroutine dumps, heap, 30s CPU
// profiles) without restarting it. It is opt-in at the CLI layer and
// never mounted by default: profiles expose internals and a CPU
// profile costs real cycles.
//
// With a non-empty token every request must carry
// `Authorization: Bearer <token>`, compared in constant time — the
// same shared-secret scheme as the grid's write endpoints. Pass "" if
// the caller wraps its own auth around the handler instead.
func Handler(token string) http.Handler {
	mux := http.NewServeMux()
	// Index also serves the named profiles (heap, goroutine, block,
	// mutex, ...) for any path under /debug/pprof/.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	if token == "" {
		return mux
	}
	want := sha256.Sum256([]byte(token))
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		got := sha256.Sum256([]byte(bearerToken(r)))
		if subtle.ConstantTimeCompare(got[:], want[:]) != 1 {
			w.Header().Set("WWW-Authenticate", `Bearer realm="pprof"`)
			http.Error(w, "profiling: missing or invalid auth token", http.StatusUnauthorized)
			return
		}
		mux.ServeHTTP(w, r)
	})
}

func bearerToken(r *http.Request) string {
	auth := r.Header.Get("Authorization")
	const prefix = "Bearer "
	if len(auth) > len(prefix) && strings.EqualFold(auth[:len(prefix)], prefix) {
		return auth[len(prefix):]
	}
	return ""
}
