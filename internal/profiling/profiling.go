// Package profiling wires the standard pprof file profiles into the
// CLIs (-cpuprofile / -memprofile on dsa-sweep and dsa-grid work), so
// perf work on the simulators and the engine can measure real sweeps
// instead of guessing. See the README's "Benchmarking and profiling"
// guide for how to read the output with `go tool pprof`.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sync"
)

// Start begins the profiles selected by the two file paths (either may
// be empty) and returns an idempotent stop function that finishes
// them: it stops the CPU profile and writes the heap profile after a
// forced GC, so the snapshot shows live steady-state memory rather
// than collectible garbage. Callers should both defer stop and invoke
// it explicitly before any os.Exit/log.Fatal path they want profiled.
func Start(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("profiling: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("profiling: %w", err)
		}
	}
	var once sync.Once
	return func() {
		once.Do(func() {
			if cpuFile != nil {
				pprof.StopCPUProfile()
				cpuFile.Close()
			}
			if memPath != "" {
				f, err := os.Create(memPath)
				if err != nil {
					fmt.Fprintf(os.Stderr, "profiling: %v\n", err)
					return
				}
				runtime.GC()
				if err := pprof.WriteHeapProfile(f); err != nil {
					fmt.Fprintf(os.Stderr, "profiling: %v\n", err)
				}
				f.Close()
			}
		})
	}, nil
}
