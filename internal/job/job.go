// Package job is the sharded, checkpointed execution engine behind
// design-space sweeps. The paper's headline experiment — quantifying
// all 3270 file-swarming protocols at Section 4.3 scale — cost ~25
// cluster-hours, so a sweep must be splittable across processes and
// machines and must survive interruption.
//
// The engine is domain-agnostic: it runs any dsa.Domain. A sweep
// decomposes into deterministic tasks, one (measure × point chunk)
// slice each, computed by the domain's ScoreSlice. Seeds derive from
// point identity (dsa.TaskSeed or an equivalent scheme), so task
// results are identical regardless of chunk size, shard count, worker
// count or scheduling order — sharded runs merge to byte-identical
// Scores.
//
// Tasks are distributed round-robin over opts.Shards shard processes;
// each process executes its share on a bounded worker pool with context
// cancellation, checkpointing every completed task to a JSONL manifest
// plus a per-task result file (see checkpoint.go). Restarting with the
// same checkpoint directory skips completed tasks and merges their
// cached values; the process whose run completes the final outstanding
// task assembles and returns the full Scores, while earlier shards
// return ErrIncomplete.
package job

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/dsa"
	"repro/internal/obs"
)

// DefaultChunk is the number of points per task: small enough that a
// paper-scale sweep yields hundreds of tasks (fine-grained progress,
// cheap loss on interruption), large enough to amortise bookkeeping.
const DefaultChunk = 32

// Task is one schedulable unit: compute one measure for the half-open
// point index range [Lo,Hi) of the sweep's point list.
type Task struct {
	Measure string
	Lo, Hi  int
}

// ID returns the task's stable identifier, used as the checkpoint key
// and result file stem.
func (t Task) ID() string {
	return fmt.Sprintf("%s-%05d-%05d", t.Measure, t.Lo, t.Hi)
}

// Spec pins down a sweep completely: the domain, the point list, the
// sweep configuration and the chunking. Two runs with equal specs
// enumerate equal task lists and produce equal results.
type Spec struct {
	Domain dsa.Domain
	Points []core.Point
	Cfg    dsa.Config
	Chunk  int // points per task; 0 = DefaultChunk
}

func (s Spec) chunk() int {
	if s.Chunk > 0 {
		return s.Chunk
	}
	return DefaultChunk
}

// Tasks enumerates the sweep's tasks in deterministic order: point
// chunks of each measure, measures in the domain's canonical order.
func (s Spec) Tasks() []Task {
	var out []Task
	for _, m := range s.Domain.Measures() {
		for lo := 0; lo < len(s.Points); lo += s.chunk() {
			out = append(out, Task{Measure: m, Lo: lo, Hi: min(lo+s.chunk(), len(s.Points))})
		}
	}
	return out
}

// Progress is a snapshot passed to the Options.Progress callback after
// every completed task.
type Progress struct {
	TotalTasks int           // tasks in the whole sweep, across all shards
	DoneTasks  int           // completed overall: checkpoint-restored + this run's
	FreshTasks int           // completed by this process during this run
	MineTasks  int           // tasks this process owns (fresh + still pending)
	Elapsed    time.Duration // since this Run started
	ETA        time.Duration // projected remaining time for this process's tasks
}

// Options controls sharding, checkpointing and reporting. The zero
// value runs the whole sweep in-process with no checkpointing.
type Options struct {
	Dir        string // checkpoint directory; "" disables checkpointing
	Shards     int    // total shard processes; <= 0 means 1
	ShardIndex int    // this process's shard in [0,Shards)
	Chunk      int    // points per task; 0 = DefaultChunk
	Workers    int    // task-level workers; 0 = Cfg.Workers or GOMAXPROCS
	// Cache, if non-nil, memoises raw scores across runs: every task
	// consults it per point before simulating and records what it
	// computed (see dsa.ScoreCache and internal/cache). Values are
	// identical with or without a cache — the cache key covers
	// everything a score is a function of, so a stale or foreign
	// entry is a miss, never a wrong hit.
	Cache dsa.ScoreCache
	// Progress, if non-nil, is called after every completed task.
	// Calls are serialized (never concurrent), but may come from any
	// worker goroutine; keep the callback fast — it blocks result
	// recording.
	Progress func(Progress)
	// Trace, if non-nil, records the sweep: a "sweep" root span for the
	// whole Run plus a "task" span per executed task with cache-lookup
	// and simulate children (see internal/obs). Tracing never changes
	// results — traced and untraced sweeps are byte-identical.
	Trace *obs.Recorder
}

// ErrIncomplete reports that this process's share of the sweep is done
// and checkpointed, but tasks owned by other shards are still
// outstanding, so the merged Scores cannot be assembled yet.
var ErrIncomplete = errors.New("job: sweep incomplete")

// Run executes the sweep of the given domain over points (nil points
// means the domain's whole space) under the given options and returns
// the merged Scores once every task of every shard is accounted for.
//
// With Options.Dir set, completed tasks are read back from the
// checkpoint before any work starts and each fresh task is persisted as
// it finishes, so a killed or cancelled run resumes where it left off.
// If this process finishes its shard while other shards' tasks remain,
// Run returns ErrIncomplete (wrapped with counts).
func Run(ctx context.Context, d dsa.Domain, points []core.Point, cfg dsa.Config, opts Options) (*dsa.Scores, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if points == nil {
		points = d.Space().Enumerate()
	}
	shards := opts.Shards
	if shards <= 0 {
		shards = 1
	}
	if opts.ShardIndex < 0 || opts.ShardIndex >= shards {
		return nil, fmt.Errorf("job: shard index %d out of range [0,%d)", opts.ShardIndex, shards)
	}
	spec := Spec{Domain: d, Points: points, Cfg: cfg, Chunk: opts.Chunk}
	tasks := spec.Tasks()

	sweep := opts.Trace.Start(0, "sweep").
		Str("domain", d.Name()).
		Int("points", int64(len(points))).
		Int("tasks", int64(len(tasks))).
		Int("shards", int64(shards)).
		Int("shard_index", int64(opts.ShardIndex))
	done := 0
	defer func() { sweep.Int("done", int64(done)).End() }()

	results := make(map[string][]float64, len(tasks))
	var cp *checkpoint
	if opts.Dir != "" {
		var err error
		cp, err = openCheckpoint(opts.Dir, spec, shards, opts.ShardIndex)
		if err != nil {
			return nil, err
		}
		defer cp.close()
		for id, vals := range cp.completed {
			results[id] = vals
		}
	}

	// Round-robin task ownership: task i belongs to shard i mod shards.
	// Interleaving (rather than contiguous ranges) spreads the cheap
	// homogeneous tasks and the expensive tournament tasks evenly, so
	// equally-sized shards take similar wall time.
	var mine []Task
	for i, t := range tasks {
		if i%shards != opts.ShardIndex {
			continue
		}
		if _, done := results[t.ID()]; done {
			continue
		}
		mine = append(mine, t)
	}

	if err := runPool(ctx, spec, mine, cp, results, opts, len(tasks), sweep.ID(), &done); err != nil {
		return nil, err
	}
	if cp != nil && len(results) < len(tasks) {
		// Concurrently running shards may have journalled more tasks
		// since we opened the checkpoint; pick them up so the shard
		// that finishes last assembles the full result.
		latest, err := readCompleted(opts.Dir, spec)
		if err != nil {
			return nil, err
		}
		for id, vals := range latest {
			if _, ok := results[id]; !ok {
				results[id] = vals
			}
		}
	}
	if len(results) < len(tasks) {
		return nil, fmt.Errorf("%w: %d of %d tasks done (merge after the remaining shards finish)",
			ErrIncomplete, len(results), len(tasks))
	}
	return assemble(spec, results)
}

// runPool executes the pending tasks on a bounded worker pool,
// journalling and recording each result as it lands; the first task or
// sink error, or a context cancellation, stops the pool.
func runPool(ctx context.Context, spec Spec, mine []Task, cp *checkpoint, results map[string][]float64, opts Options, total int, parent obs.SpanID, freshOut *int) error {
	start := time.Now()
	var (
		mu    sync.Mutex
		fresh int
	)
	execOpts := ExecOptions{Workers: opts.Workers, Cache: opts.Cache, Trace: opts.Trace, TraceParent: parent}
	return ExecTasks(ctx, spec, mine, execOpts, func(t Task, vals []float64, elapsed time.Duration) error {
		// The checkpoint write (with its fsyncs) runs concurrently
		// across pool workers — record has its own manifest lock; only
		// the in-memory bookkeeping and the Progress callback (whose
		// contract is "serialized") go under mu.
		if cp != nil {
			if err := cp.record(t, vals, elapsed); err != nil {
				return err
			}
		}
		mu.Lock()
		defer mu.Unlock()
		results[t.ID()] = vals
		fresh++
		*freshOut = fresh
		snap := Progress{
			TotalTasks: total,
			DoneTasks:  len(results),
			FreshTasks: fresh,
			MineTasks:  len(mine),
			Elapsed:    time.Since(start),
		}
		if left := len(mine) - fresh; left > 0 {
			snap.ETA = time.Duration(int64(snap.Elapsed) / int64(fresh) * int64(left))
		}
		if opts.Progress != nil {
			opts.Progress(snap)
		}
		return nil
	})
}

// ExecOptions controls one ExecTasks invocation.
type ExecOptions struct {
	// Workers is the pool width; <= 0 falls back to spec.Cfg.Workers,
	// then GOMAXPROCS.
	Workers int
	// Cache, if non-nil, is consulted per point before ScoreSlice runs
	// and filled with what ScoreSlice computed. A task whose points
	// all hit skips simulation entirely; a partial hit simulates only
	// the missing points (safe because ScoreSlice seeds from point
	// identity — any subset recombines exactly).
	Cache dsa.ScoreCache
	// Trace, if non-nil, records a "task" span per executed task
	// (measure, point count, cache hits, simulated count) with
	// cache-lookup and simulate child spans, parented under
	// TraceParent. The task span covers compute only — sink time
	// (checkpoint fsync, grid upload) is the caller's to trace.
	Trace       *obs.Recorder
	TraceParent obs.SpanID
	// OnTask, if non-nil, is called after each task completes, before
	// its sink. Unlike the sink it carries the cache attribution —
	// the seam worker metrics hang off. Called concurrently from pool
	// goroutines; must be safe for concurrent use.
	OnTask func(TaskStats)
}

// TaskStats is one completed task's accounting, as delivered to
// ExecOptions.OnTask.
type TaskStats struct {
	Task      Task
	Elapsed   time.Duration // compute time (cache lookups + simulation)
	CacheHits int           // points served from the score cache
	Simulated int           // points computed by ScoreSlice
}

// ExecTasks computes tasks on a bounded worker pool — the execution
// primitive shared by the local engine (Run) and the grid worker
// (internal/grid), so both parallelise a task batch identically. Each
// task's values come from the domain's ScoreSlice (or the cache, see
// ExecOptions.Cache) and are handed to sink. Sink is called
// concurrently from the pool's goroutines (so slow sinks — fsyncs,
// uploads — overlap with computation and each other) and must be safe
// for concurrent use; the first sink or task error stops the pool.
//
// Simulator state is pooled underneath this seam: the swarming
// domain's ScoreSlice runs cyclesim with its shared world pool
// (internal/cyclesim.Pool), so the workers here reuse O(n²) simulation
// slabs across tasks instead of reallocating them per run. That reuse
// is invisible by contract — the simulators' golden-parity suites pin
// pooled and fresh runs to bit-equal results — which is also what
// keeps ExecOptions.Cache sound: a cache hit recorded by a pooled run
// and a cold recomputation are the same bytes.
func ExecTasks(ctx context.Context, spec Spec, tasks []Task, opts ExecOptions, sink func(t Task, values []float64, elapsed time.Duration) error) error {
	if len(tasks) == 0 {
		return ctx.Err()
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = spec.Cfg.Workers
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	poolSize := min(workers, len(tasks))
	// Parallelism lives at the task level; when there are fewer tasks
	// than workers, give each task's inner ScoreSlice the spare share
	// so small sweeps still use the machine. Inner worker count never
	// affects values, only speed.
	taskCfg := spec.Cfg
	taskCfg.Workers = max(1, workers/poolSize)
	opponents := spec.Domain.SampleOpponents(spec.Cfg)
	var keyer *dsa.ScoreKeyer
	if opts.Cache != nil {
		// Key on spec.Cfg, not taskCfg: the keyer hashes only the
		// score-relevant fields and the two differ in Workers alone,
		// but keying on the canonical config keeps that invariant
		// independent of how the pool splits parallelism.
		var err error
		if keyer, err = dsa.NewScoreKeyer(spec.Domain, opponents, spec.Cfg); err != nil {
			return fmt.Errorf("job: score cache key: %w", err)
		}
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		mu      sync.Mutex
		wg      sync.WaitGroup
		firstEr error
	)
	fail := func(err error) {
		mu.Lock()
		if firstEr == nil {
			firstEr = err
		}
		mu.Unlock()
		cancel()
	}
	next := make(chan Task)
	wg.Add(poolSize)
	for w := 0; w < poolSize; w++ {
		go func() {
			defer wg.Done()
			for t := range next {
				if ctx.Err() != nil {
					return
				}
				taskStart := time.Now()
				span := opts.Trace.Start(opts.TraceParent, "task")
				vals, hits, err := execTask(spec, t, opponents, taskCfg, keyer, opts.Cache, opts.Trace, span.ID())
				if err != nil {
					span.Drop()
					fail(fmt.Errorf("job: task %s: %w", t.ID(), err))
					return
				}
				elapsed := time.Since(taskStart)
				simulated := (t.Hi - t.Lo) - hits
				// End before the sink: the task span measures compute,
				// not checkpointing or upload.
				span.Str("task", t.ID()).
					Str("measure", t.Measure).
					Int("points", int64(t.Hi-t.Lo)).
					Int("cache_hits", int64(hits)).
					Int("simulated", int64(simulated)).
					End()
				opts.Trace.CountTask(1)
				opts.Trace.CountSimulated(simulated)
				opts.Trace.CountCached(hits)
				if opts.OnTask != nil {
					opts.OnTask(TaskStats{Task: t, Elapsed: elapsed, CacheHits: hits, Simulated: simulated})
				}
				if err := sink(t, vals, elapsed); err != nil {
					fail(err)
					return
				}
			}
		}()
	}
feed:
	for _, t := range tasks {
		select {
		case next <- t:
		case <-ctx.Done():
			break feed
		}
	}
	close(next)
	wg.Wait()
	if firstEr != nil {
		return firstEr
	}
	return ctx.Err()
}

// execTask produces one task's values: straight from ScoreSlice
// without a cache; with one, cached points are read back and only the
// misses are simulated (as a single ScoreSlice call over the miss
// subset — point-identity seeding makes the recombination exact), then
// recorded. Cached and computed values are byte-identical by the
// domain determinism contract, which the parity tests pin down.
// Returns the number of points served from the cache alongside the
// values; rec (nil-safe) gets "cache-lookup" and "simulate" child
// spans under parent.
func execTask(spec Spec, t Task, opponents []core.Point, cfg dsa.Config, keyer *dsa.ScoreKeyer, cache dsa.ScoreCache, rec *obs.Recorder, parent obs.SpanID) ([]float64, int, error) {
	pts := spec.Points[t.Lo:t.Hi]
	if cache == nil {
		sim := rec.Start(parent, "simulate").Int("points", int64(len(pts)))
		vals, err := spec.Domain.ScoreSlice(t.Measure, pts, opponents, cfg)
		if err != nil {
			sim.Drop()
			return nil, 0, err
		}
		sim.End()
		return vals, 0, nil
	}
	lookup := rec.Start(parent, "cache-lookup")
	keys := make([]dsa.CacheKey, len(pts))
	vals := make([]float64, len(pts))
	miss := make([]int, 0, len(pts))
	for i, p := range pts {
		id, err := spec.Domain.PointID(p)
		if err != nil {
			lookup.Drop()
			return nil, 0, err
		}
		keys[i] = keyer.Key(t.Measure, id)
		if v, ok := cache.Get(keys[i]); ok {
			vals[i] = v
		} else {
			miss = append(miss, i)
		}
	}
	hits := len(pts) - len(miss)
	lookup.Int("hits", int64(hits)).Int("misses", int64(len(miss))).End()
	if len(miss) == 0 {
		return vals, hits, nil
	}
	missPts := pts
	if len(miss) < len(pts) {
		missPts = make([]core.Point, len(miss))
		for j, i := range miss {
			missPts[j] = pts[i]
		}
	}
	sim := rec.Start(parent, "simulate").Int("points", int64(len(missPts)))
	computed, err := spec.Domain.ScoreSlice(t.Measure, missPts, opponents, cfg)
	if err != nil {
		sim.Drop()
		return nil, 0, err
	}
	sim.End()
	if len(computed) != len(missPts) {
		return nil, 0, fmt.Errorf("job: ScoreSlice returned %d values for %d points", len(computed), len(missPts))
	}
	for j, i := range miss {
		vals[i] = computed[j]
		cache.Put(keys[i], computed[j])
	}
	return vals, hits, nil
}

// AssembleScores stitches per-task value slices (task ID → values)
// into this spec's merged Scores. It is the same assembly Run and Load
// perform, exported for the grid coordinator, which collects task
// results over HTTP instead of computing them — so grid sweeps merge
// byte-identically with local ones.
func (s Spec) AssembleScores(results map[string][]float64) (*dsa.Scores, error) {
	return assemble(s, results)
}

// assemble stitches per-task value slices into the merged Scores,
// handing the domain the whole-set post-processing last.
func assemble(spec Spec, results map[string][]float64) (*dsa.Scores, error) {
	raw := make(map[string][]float64, len(spec.Domain.Measures()))
	for _, m := range spec.Domain.Measures() {
		raw[m] = make([]float64, len(spec.Points))
	}
	for _, t := range spec.Tasks() {
		vals, ok := results[t.ID()]
		if !ok {
			return nil, fmt.Errorf("job: task %s missing from results", t.ID())
		}
		if len(vals) != t.Hi-t.Lo {
			return nil, fmt.Errorf("job: task %s has %d values, want %d", t.ID(), len(vals), t.Hi-t.Lo)
		}
		copy(raw[t.Measure][t.Lo:t.Hi], vals)
	}
	return spec.Domain.Assemble(spec.Points, raw)
}

// Load reassembles the Scores of a checkpointed sweep — possibly
// written by several shard processes whose manifests share (or were
// copied into) dir — without running any simulation. The domain is
// resolved from the checkpoint spec through the dsa registry, so the
// calling program must import the domain's package. It returns
// ErrIncomplete (wrapped with counts) if tasks are still outstanding.
func Load(dir string) (*dsa.Scores, error) {
	spec, results, err := loadCheckpoint(dir)
	if err != nil {
		return nil, err
	}
	if n := len(spec.Tasks()); len(results) < n {
		return nil, fmt.Errorf("%w: %d of %d tasks done in %s", ErrIncomplete, len(results), n, dir)
	}
	return assemble(spec, results)
}
