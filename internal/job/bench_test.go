package job

import (
	"context"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dsa"
	"repro/internal/obs"
	"repro/internal/pra"
)

// benchPoints strides the swarming space down to a bench-sized subset.
func benchPoints(b *testing.B) []core.Point {
	b.Helper()
	all := pra.Domain().Space().Enumerate()
	var pts []core.Point
	for i := 0; i < len(all); i += 100 {
		pts = append(pts, all[i])
	}
	return pts
}

func benchCfg() dsa.Config {
	return dsa.Config{Peers: 10, Rounds: 30, PerfRuns: 1, EncounterRuns: 1, Opponents: 4, Seed: 7}
}

// benchExecTasks is the shared body of the traced/untraced pair below.
// Real pra simulation per task keeps per-op cost in simulation, where
// it is in production — so the pair's delta isolates what tracing
// adds, and scripts/trace_smoke.sh pins that delta under 5%.
func benchExecTasks(b *testing.B, rec *obs.Recorder) {
	ctx := context.Background()
	spec := Spec{Domain: pra.Domain(), Points: benchPoints(b), Cfg: benchCfg(), Chunk: 8}
	tasks := spec.Tasks()
	sink := func(Task, []float64, time.Duration) error { return nil }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opts := ExecOptions{Workers: 4, Trace: rec}
		if err := ExecTasks(ctx, spec, tasks, opts, sink); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExecTasks(b *testing.B) {
	benchExecTasks(b, nil)
}

func BenchmarkExecTasksTraced(b *testing.B) {
	rec, err := obs.OpenDir(b.TempDir(), "bench")
	if err != nil {
		b.Fatal(err)
	}
	defer rec.Close()
	benchExecTasks(b, rec)
}
