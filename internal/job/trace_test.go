package job

import (
	"context"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/cache"
	"repro/internal/obs"
	"repro/internal/pra"
)

// TestTracedRunIdentical pins the first obs contract at the engine
// seam: a traced sweep and an untraced sweep produce identical Scores.
func TestTracedRunIdentical(t *testing.T) {
	ctx := context.Background()
	pts := subset(t)

	plain := mustRun(t, ctx, pts, Options{Chunk: 4, Workers: 2})

	rec, err := obs.OpenDir(t.TempDir(), "s0of1")
	if err != nil {
		t.Fatal(err)
	}
	traced := mustRun(t, ctx, pts, Options{Chunk: 4, Workers: 2, Trace: rec})
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(plain.Raw, traced.Raw) {
		t.Fatal("traced sweep diverged from untraced")
	}
}

func TestRunJournalsSweepAndTasks(t *testing.T) {
	ctx := context.Background()
	pts := subset(t)
	dir := t.TempDir()
	rec, err := obs.OpenDir(dir, "s0of1")
	if err != nil {
		t.Fatal(err)
	}
	mustRun(t, ctx, pts, Options{Chunk: 4, Workers: 2, Trace: rec})
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}

	recs, err := obs.LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	spec := Spec{Domain: pra.Domain(), Points: pts, Cfg: tinyCfg(), Chunk: 4}
	wantTasks := len(spec.Tasks())

	var sweep *obs.Record
	tasks := 0
	sims := 0
	for i := range recs {
		switch recs[i].Name {
		case "sweep":
			sweep = &recs[i]
		case "task":
			tasks++
		case "simulate":
			sims++
		}
	}
	if sweep == nil {
		t.Fatal("no sweep span journalled")
	}
	if got := sweep.AttrStr("domain"); got != pra.Domain().Name() {
		t.Errorf("sweep domain = %q", got)
	}
	if got := sweep.AttrInt("tasks"); got != int64(wantTasks) {
		t.Errorf("sweep tasks attr = %d, want %d", got, wantTasks)
	}
	if got := sweep.AttrInt("done"); got != int64(wantTasks) {
		t.Errorf("sweep done attr = %d, want %d", got, wantTasks)
	}
	if tasks != wantTasks {
		t.Errorf("task spans = %d, want %d", tasks, wantTasks)
	}
	if sims != wantTasks { // no cache: every task simulates once
		t.Errorf("simulate spans = %d, want %d", sims, wantTasks)
	}
	// Task spans parent under the sweep and carry full attribution.
	for _, r := range recs {
		if r.Name != "task" {
			continue
		}
		if r.Parent != sweep.ID {
			t.Fatalf("task span parent = %d, want sweep %d", r.Parent, sweep.ID)
		}
		pts := r.AttrInt("points")
		if pts <= 0 || r.AttrStr("measure") == "" || r.AttrStr("task") == "" {
			t.Fatalf("task span missing attribution: %+v", r)
		}
		if r.AttrInt("cache_hits")+r.AttrInt("simulated") != pts {
			t.Fatalf("task span hits+simulated != points: %+v", r)
		}
	}

	st := rec.Stats()
	if st.TasksDone != uint64(wantTasks) {
		t.Errorf("stats tasks = %d, want %d", st.TasksDone, wantTasks)
	}
	wantPoints := uint64(len(pts) * len(pra.Domain().Measures()))
	if st.PointsSimulated != wantPoints || st.PointsCached != 0 {
		t.Errorf("stats points sim/cached = %d/%d, want %d/0", st.PointsSimulated, st.PointsCached, wantPoints)
	}
}

// TestTracedCacheAttribution runs the same sweep twice over one warmed
// store: the second run's task spans must attribute every point to the
// cache, and the store's lookup events must land in the same journal.
func TestTracedCacheAttribution(t *testing.T) {
	ctx := context.Background()
	pts := subset(t)
	store, err := cache.Open(cache.Options{MemEntries: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	dir := t.TempDir()
	rec, err := obs.OpenDir(dir, "warm")
	if err != nil {
		t.Fatal(err)
	}
	store.SetTracer(rec)

	var onTask []TaskStats
	var mu sync.Mutex
	run := func() {
		spec := Spec{Domain: pra.Domain(), Points: pts, Cfg: tinyCfg(), Chunk: 4}
		err := ExecTasks(ctx, spec, spec.Tasks(), ExecOptions{
			Workers: 2, Cache: store, Trace: rec,
			OnTask: func(ts TaskStats) {
				mu.Lock()
				onTask = append(onTask, ts)
				mu.Unlock()
			},
		}, func(Task, []float64, time.Duration) error { return nil })
		if err != nil {
			t.Fatal(err)
		}
	}
	run() // cold: all simulated
	cold := rec.Stats()
	if cold.CacheMisses == 0 || cold.CacheHits != 0 {
		t.Fatalf("cold stats = %+v, want misses only", cold)
	}
	onTask = nil
	run() // warm: all cached
	warm := rec.Stats()
	if warm.CacheHits == 0 || warm.CacheMisses != cold.CacheMisses {
		t.Fatalf("warm stats = %+v", warm)
	}
	totalPts := len(pts) * len(pra.Domain().Measures())
	if got := int(warm.PointsCached); got != totalPts {
		t.Errorf("points cached after warm run = %d, want %d", got, totalPts)
	}
	gotHits, gotSim := 0, 0
	for _, ts := range onTask {
		gotHits += ts.CacheHits
		gotSim += ts.Simulated
		if ts.Elapsed < 0 {
			t.Errorf("task %s negative elapsed", ts.Task.ID())
		}
	}
	if gotHits != totalPts || gotSim != 0 {
		t.Errorf("OnTask warm totals = %d hits / %d simulated, want %d/0", gotHits, gotSim, totalPts)
	}

	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	recs, err := obs.LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	hits, misses := 0, 0
	for _, r := range recs {
		if r.Name == "cache-lookup" {
			switch r.AttrStr("outcome") {
			case "hit":
				hits++
			case "miss":
				misses++
			}
		}
	}
	if hits != int(warm.CacheHits) || misses != int(warm.CacheMisses) {
		t.Errorf("journalled lookup events %d hit / %d miss, stats say %d/%d",
			hits, misses, warm.CacheHits, warm.CacheMisses)
	}
}
