package job

// Checkpoint writes fail like real disks fail: full (ENOSPC, nothing
// persisted) or torn (short write). These tests pin the contract that
// every such failure surfaces as a typed *WriteError carrying the
// path, offset and operation — and that a failed Record never poisons
// the checkpoint: the task simply re-runs.

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"os"
	"path/filepath"
	"syscall"
	"testing"

	"repro/internal/chaos"
	"repro/internal/pra"
)

// faultSpec is a four-point sweep, chunked so the first few tasks are
// cheap to Record by hand.
func faultSpec(t *testing.T) Spec {
	t.Helper()
	return Spec{Domain: pra.Domain(), Points: subset(t)[:4], Cfg: tinyCfg(), Chunk: 2}
}

// TestCheckpointManifestDiskFullTyped: ENOSPC on the manifest append
// comes back as *WriteError{Op: "append manifest"} with the manifest
// path and durable offset, the root cause unwrappable — and the
// checkpoint keeps working once space returns.
func TestCheckpointManifestDiskFullTyped(t *testing.T) {
	dir := t.TempDir()
	spec := faultSpec(t)
	cp, err := OpenCheckpoint(dir, spec)
	if err != nil {
		t.Fatal(err)
	}
	defer cp.Close()
	tasks := spec.Tasks()
	vals := func(task Task) []float64 {
		out := make([]float64, task.Hi-task.Lo)
		for i := range out {
			out[i] = float64(task.Lo + i)
		}
		return out
	}
	if err := cp.Record(tasks[0], vals(tasks[0]), 0); err != nil {
		t.Fatal(err)
	}

	faults := chaos.NewFileFaults(1, 0, 1.0, "manifest-grid") // every manifest write: ENOSPC
	restore := SetWriterSeam(faults.Wrap)
	err = cp.Record(tasks[1], vals(tasks[1]), 0)
	restore()
	var werr *WriteError
	if !errors.As(err, &werr) {
		t.Fatalf("Record under disk-full: err = %v, want *WriteError", err)
	}
	manifestPath := filepath.Join(dir, "manifest-grid.jsonl")
	if werr.Path != manifestPath || werr.Op != "append manifest" || werr.Off <= 0 {
		t.Fatalf("WriteError = %+v, want manifest path, op \"append manifest\", positive offset", werr)
	}
	if !errors.Is(err, syscall.ENOSPC) || !errors.Is(err, chaos.ErrInjected) {
		t.Fatalf("err = %v, want ENOSPC via chaos.ErrInjected", err)
	}

	// The disk "recovers": the same task records cleanly, and a fresh
	// open sees both tasks exactly once.
	if err := cp.Record(tasks[1], vals(tasks[1]), 0); err != nil {
		t.Fatal(err)
	}
	if err := cp.Close(); err != nil {
		t.Fatal(err)
	}
	cp2, err := OpenCheckpoint(dir, spec)
	if err != nil {
		t.Fatal(err)
	}
	defer cp2.Close()
	done := cp2.Completed()
	if len(done) != 2 || done[tasks[0].ID()] == nil || done[tasks[1].ID()] == nil {
		t.Fatalf("completed after recovery = %v, want exactly tasks %s and %s", done, tasks[0].ID(), tasks[1].ID())
	}
}

// TestCheckpointManifestShortWriteTyped: a torn manifest append is a
// typed io.ErrShortWrite whose offset points past the persisted half,
// and the torn bytes are trimmed so the manifest stays line-clean.
func TestCheckpointManifestShortWriteTyped(t *testing.T) {
	dir := t.TempDir()
	spec := faultSpec(t)
	cp, err := OpenCheckpoint(dir, spec)
	if err != nil {
		t.Fatal(err)
	}
	defer cp.Close()
	tasks := spec.Tasks()

	faults := chaos.NewFileFaults(2, 1.0, 0, "manifest-grid") // every manifest write: torn
	restore := SetWriterSeam(faults.Wrap)
	err = cp.Record(tasks[0], []float64{1, 2}, 0)
	restore()
	var werr *WriteError
	if !errors.As(err, &werr) {
		t.Fatalf("Record under short write: err = %v, want *WriteError", err)
	}
	if werr.Op != "append manifest" || werr.Off <= 0 {
		t.Fatalf("WriteError = %+v, want op \"append manifest\" with the torn offset", werr)
	}
	if !errors.Is(err, io.ErrShortWrite) || !errors.Is(err, chaos.ErrInjected) {
		t.Fatalf("err = %v, want io.ErrShortWrite via chaos.ErrInjected", err)
	}

	// Truncate-back left a line-clean manifest: the retry lands whole,
	// and the file holds exactly one complete JSON line.
	if err := cp.Record(tasks[0], []float64{1, 2}, 0); err != nil {
		t.Fatal(err)
	}
	if err := cp.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(filepath.Join(dir, "manifest-grid.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimSuffix(raw, []byte("\n")), []byte("\n"))
	if len(lines) != 1 || !json.Valid(lines[0]) {
		t.Fatalf("manifest after torn write + retry:\n%s\nwant exactly one clean line", raw)
	}
	cp2, err := OpenCheckpoint(dir, spec)
	if err != nil {
		t.Fatal(err)
	}
	defer cp2.Close()
	if done := cp2.Completed(); len(done) != 1 || done[tasks[0].ID()] == nil {
		t.Fatalf("completed = %v, want exactly %s", done, tasks[0].ID())
	}
}

// TestCheckpointResultFileFaultTyped: a result-file write that hits
// disk-full fails before the manifest line is appended, typed with the
// final (not temp) path — so the task stays un-recorded and simply
// re-runs.
func TestCheckpointResultFileFaultTyped(t *testing.T) {
	dir := t.TempDir()
	spec := faultSpec(t)
	cp, err := OpenCheckpoint(dir, spec)
	if err != nil {
		t.Fatal(err)
	}
	defer cp.Close()
	task := spec.Tasks()[0]

	faults := chaos.NewFileFaults(3, 0, 1.0, "task-") // every result-file write: ENOSPC
	restore := SetWriterSeam(faults.Wrap)
	err = cp.Record(task, []float64{1, 2}, 0)
	restore()
	var werr *WriteError
	if !errors.As(err, &werr) {
		t.Fatalf("Record under result-file fault: err = %v, want *WriteError", err)
	}
	wantPath := filepath.Join(dir, "task-"+task.ID()+".json")
	if werr.Path != wantPath || werr.Op != "write" {
		t.Fatalf("WriteError = %+v, want path %s op \"write\"", werr, wantPath)
	}
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("err = %v, want ENOSPC", err)
	}
	// No manifest line, no result file, no leftover temp files: the
	// failed Record is invisible to every future open.
	if leftovers, _ := filepath.Glob(filepath.Join(dir, "*.tmp-*")); len(leftovers) != 0 {
		t.Fatalf("temp files survived a failed atomic write: %v", leftovers)
	}
	if err := cp.Close(); err != nil {
		t.Fatal(err)
	}
	cp2, err := OpenCheckpoint(dir, spec)
	if err != nil {
		t.Fatal(err)
	}
	defer cp2.Close()
	if done := cp2.Completed(); len(done) != 0 {
		t.Fatalf("completed after failed Record = %v, want empty (task re-runs)", done)
	}
}
