package job

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"slices"
	"sync"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/dsa"
)

// WriteError is the typed failure of a durable write (checkpoint
// manifest append, atomic result file, grid WAL append): it names the
// file and the byte offset of the first unwritten byte, so disk-full
// and short-write conditions are actionable from a log line instead of
// a generic wrap. Unwrap exposes the cause (syscall.ENOSPC,
// io.ErrShortWrite, ...) for errors.Is.
type WriteError struct {
	Path string // file being written
	Off  int64  // offset of the first byte NOT durably written
	Op   string // what was being attempted ("append manifest", "sync wal", ...)
	Err  error
}

func (e *WriteError) Error() string {
	return fmt.Sprintf("job: %s %s at offset %d: %v", e.Op, e.Path, e.Off, e.Err)
}

func (e *WriteError) Unwrap() error { return e.Err }

// The writer seam lets the chaos harness (internal/chaos.FileFaults)
// interpose failing writers on every durable append — checkpoint
// manifests, atomic result files, and the grid coordinator's WAL —
// without the production code knowing. nil seam = writes untouched.
var (
	seamMu sync.RWMutex
	seamFn func(path string, w io.Writer) io.Writer
)

// SetWriterSeam installs fn as the durable-write interposer and
// returns a restore func. Tests install fault schedules here; passing
// nil removes the seam.
func SetWriterSeam(fn func(path string, w io.Writer) io.Writer) (restore func()) {
	seamMu.Lock()
	prev := seamFn
	seamFn = fn
	seamMu.Unlock()
	return func() {
		seamMu.Lock()
		seamFn = prev
		seamMu.Unlock()
	}
}

// WrapWriter routes one durable write for path through the installed
// seam. Exported so the grid WAL (internal/grid) shares the same
// fault-injection point as the checkpoint writers.
func WrapWriter(path string, w io.Writer) io.Writer {
	seamMu.RLock()
	fn := seamFn
	seamMu.RUnlock()
	if fn == nil {
		return w
	}
	return fn(path, w)
}

// Checkpoint layout under one directory:
//
//	spec.json                    — the sweep Spec (domain name, config,
//	                               chunking, measures, point IDs);
//	                               written once, verified on every open
//	                               so a resume can never silently mix
//	                               incompatible results
//	manifest-s<I>of<N>.jsonl     — append-only journal, one line per
//	                               completed task, written by shard I of
//	                               N; a resumed or re-sharded run opens
//	                               its own file, and loading always
//	                               merges every manifest-*.jsonl present
//	task-<id>.json               — one result file per completed task
//	                               (the values the manifest line points
//	                               at), written atomically via rename
//
// A crash can lose at most the in-flight tasks: a torn manifest line or
// a missing/invalid result file makes that task re-run, never
// mis-merge. Shard processes on different machines use separate dirs
// and the manifests + task files are simply copied together for the
// merge.

const specFileName = "spec.json"

// specVersion is the checkpoint spec format written by this engine.
// Version 1 was the pre-Domain engine (file-swarming only, tasks keyed
// by pra.ScoreKind); version 2 keys everything by domain name + measure
// strings + point IDs. Old versions are rejected, never mis-merged.
const specVersion = 2

type specJSON struct {
	Version  int        `json:"version"`
	Domain   string     `json:"domain"`
	Config   configJSON `json:"config"`
	Chunk    int        `json:"chunk"`
	Measures []string   `json:"measures"`
	PointIDs []int      `json:"point_ids"`
}

// configJSON is the result-affecting subset of dsa.Config. Workers is
// deliberately absent: it changes speed, never values.
type configJSON struct {
	Peers         int     `json:"peers"`
	Rounds        int     `json:"rounds"`
	PerfRuns      int     `json:"perf_runs"`
	EncounterRuns int     `json:"encounter_runs"`
	Opponents     int     `json:"opponents"`
	Seed          int64   `json:"seed"`
	Churn         float64 `json:"churn"`
}

func specToJSON(s Spec) (specJSON, error) {
	ids := make([]int, len(s.Points))
	for i, p := range s.Points {
		id, err := s.Domain.PointID(p)
		if err != nil {
			return specJSON{}, fmt.Errorf("job: checkpoint spec: %w", err)
		}
		ids[i] = id
	}
	return specJSON{
		Version: specVersion,
		Domain:  s.Domain.Name(),
		Config: configJSON{
			Peers: s.Cfg.Peers, Rounds: s.Cfg.Rounds,
			PerfRuns: s.Cfg.PerfRuns, EncounterRuns: s.Cfg.EncounterRuns,
			Opponents: s.Cfg.Opponents, Seed: s.Cfg.Seed, Churn: s.Cfg.Churn,
		},
		Chunk:    s.chunk(),
		Measures: s.Domain.Measures(),
		PointIDs: ids,
	}, nil
}

// errSpecVersion builds the rejection error for a checkpoint written by
// a different engine generation.
func errSpecVersion(dir string, have int) error {
	if have < specVersion {
		return fmt.Errorf("job: checkpoint %s has spec version %d, this engine writes version %d: "+
			"it was written by an older engine generation (version 1 predates the domain-agnostic sweep API) "+
			"and cannot be resumed or merged — re-run the sweep into a fresh directory, or keep the old binary to finish it", dir, have, specVersion)
	}
	return fmt.Errorf("job: checkpoint %s has spec version %d, this engine only understands version %d: "+
		"it was written by a newer engine — resume or merge it with that engine version", dir, have, specVersion)
}

func specFromJSON(dir string, sj specJSON) (Spec, error) {
	if sj.Version != specVersion {
		return Spec{}, errSpecVersion(dir, sj.Version)
	}
	d, err := dsa.Get(sj.Domain)
	if err != nil {
		return Spec{}, fmt.Errorf("job: checkpoint %s: %w", dir, err)
	}
	if !slices.Equal(sj.Measures, d.Measures()) {
		return Spec{}, fmt.Errorf("job: checkpoint %s measures %v do not match domain %q measures %v",
			dir, sj.Measures, d.Name(), d.Measures())
	}
	points := make([]core.Point, len(sj.PointIDs))
	for i, id := range sj.PointIDs {
		p, err := d.PointByID(id)
		if err != nil {
			return Spec{}, fmt.Errorf("job: checkpoint spec: %w", err)
		}
		points[i] = p
	}
	return Spec{
		Domain: d,
		Points: points,
		Cfg: dsa.Config{
			Peers: sj.Config.Peers, Rounds: sj.Config.Rounds,
			PerfRuns: sj.Config.PerfRuns, EncounterRuns: sj.Config.EncounterRuns,
			Opponents: sj.Config.Opponents, Seed: sj.Config.Seed, Churn: sj.Config.Churn,
		},
		Chunk: sj.Chunk,
	}, nil
}

// EncodeSpec serialises a Spec in the checkpoint spec wire format (the
// bytes of spec.json). The grid coordinator ships this to workers so
// lease execution and checkpoint resume share one spec codec.
func EncodeSpec(s Spec) ([]byte, error) {
	sj, err := specToJSON(s)
	if err != nil {
		return nil, err
	}
	return json.Marshal(sj)
}

// DecodeSpec parses an EncodeSpec payload back into a Spec. The domain
// is resolved through the dsa registry, so the calling program must
// import the domain's package.
func DecodeSpec(raw []byte) (Spec, error) {
	var sj specJSON
	if err := json.Unmarshal(raw, &sj); err != nil {
		return Spec{}, fmt.Errorf("job: corrupt spec payload: %w", err)
	}
	return specFromJSON("(wire spec)", sj)
}

type manifestEntry struct {
	Task      string `json:"task"`
	File      string `json:"file"`
	ElapsedMS int64  `json:"elapsed_ms"`
}

// resultFile carries Values as dsa.JSONFloats so non-finite scores —
// which a domain may legitimately produce and the CSV codec already
// round-trips — checkpoint instead of panicking encoding/json.
type resultFile struct {
	Task    string         `json:"task"`
	Measure string         `json:"measure"`
	Lo      int            `json:"lo"`
	Hi      int            `json:"hi"`
	Values  dsa.JSONFloats `json:"values"`
}

// checkpoint is one process's open handle on a checkpoint directory.
type checkpoint struct {
	dir          string
	mu           sync.Mutex
	manifest     *os.File
	manifestPath string
	off          int64                // durable end of the manifest (bytes)
	completed    map[string][]float64 // restored at open
}

// openCheckpoint prepares dir for (spec, shard shardIndex of shards):
// it creates the directory, writes or verifies spec.json, restores
// every completed task from existing manifests, and opens this shard's
// manifest for appending.
func openCheckpoint(dir string, spec Spec, shards, shardIndex int) (*checkpoint, error) {
	return openCheckpointNamed(dir, spec, fmt.Sprintf("manifest-s%dof%d.jsonl", shardIndex, shards))
}

// openCheckpointNamed is openCheckpoint with an explicit manifest file
// name (every writer appends to its own manifest; loading merges all
// manifest-*.jsonl present).
func openCheckpointNamed(dir string, spec Spec, manifestName string) (*checkpoint, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("job: checkpoint dir: %w", err)
	}
	want, err := specToJSON(spec)
	if err != nil {
		return nil, err
	}
	specPath := filepath.Join(dir, specFileName)
	if raw, err := os.ReadFile(specPath); err == nil {
		var have specJSON
		if err := json.Unmarshal(raw, &have); err != nil {
			return nil, fmt.Errorf("job: corrupt %s: %w", specPath, err)
		}
		switch {
		case have.Version != want.Version:
			return nil, errSpecVersion(dir, have.Version)
		case have.Domain != want.Domain:
			return nil, fmt.Errorf("job: checkpoint %s sweeps domain %q, this run sweeps %q", dir, have.Domain, want.Domain)
		case have.Config != want.Config:
			return nil, fmt.Errorf("job: checkpoint %s was written with a different configuration (have %+v, want %+v)", dir, have.Config, want.Config)
		case have.Chunk != want.Chunk:
			return nil, fmt.Errorf("job: checkpoint %s uses chunk %d, this run wants %d", dir, have.Chunk, want.Chunk)
		case !slices.Equal(have.Measures, want.Measures):
			return nil, fmt.Errorf("job: checkpoint %s covers measures %v, this run computes %v", dir, have.Measures, want.Measures)
		case !slices.Equal(have.PointIDs, want.PointIDs):
			return nil, fmt.Errorf("job: checkpoint %s covers a different point set (%d points, this run sweeps %d)", dir, len(have.PointIDs), len(want.PointIDs))
		}
	} else if os.IsNotExist(err) {
		if err := writeFileAtomic(specPath, mustJSON(want)); err != nil {
			return nil, err
		}
	} else {
		return nil, fmt.Errorf("job: checkpoint spec: %w", err)
	}

	completed, err := readCompleted(dir, spec)
	if err != nil {
		return nil, err
	}
	mfPath := filepath.Join(dir, manifestName)
	mf, err := os.OpenFile(mfPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("job: open manifest: %w", err)
	}
	st, err := mf.Stat()
	if err != nil {
		mf.Close()
		return nil, fmt.Errorf("job: stat manifest: %w", err)
	}
	return &checkpoint{dir: dir, manifest: mf, manifestPath: mfPath, off: st.Size(), completed: completed}, nil
}

// Checkpoint is an exported handle on a checkpoint directory for
// external ingesters: the grid coordinator records results computed by
// remote workers through it, so grid runs and local runs share one
// on-disk format — Load, dsa-report and a local -resume all work on a
// directory regardless of which engine filled it.
type Checkpoint struct {
	cp *checkpoint
}

// OpenCheckpoint opens (or creates) dir for spec, writing or verifying
// spec.json exactly like a local run would. The coordinator appends to
// its own manifest file (manifest-grid.jsonl), so a directory may mix
// grid-ingested and shard-run results.
func OpenCheckpoint(dir string, spec Spec) (*Checkpoint, error) {
	cp, err := openCheckpointNamed(dir, spec, "manifest-grid.jsonl")
	if err != nil {
		return nil, err
	}
	return &Checkpoint{cp: cp}, nil
}

// Completed returns the task-ID → values map restored from the
// directory's manifests at open time. The caller takes ownership.
func (c *Checkpoint) Completed() map[string][]float64 { return c.cp.completed }

// Record persists one finished task (atomic result file, then a synced
// manifest line). Safe for concurrent use.
func (c *Checkpoint) Record(t Task, values []float64, elapsed time.Duration) error {
	return c.cp.record(t, values, elapsed)
}

// Close closes the manifest. Record must not be called after Close.
func (c *Checkpoint) Close() error { return c.cp.close() }

// Invalidate durably un-records a task: it removes the result file the
// manifest entries point at, so every restore skips the task and it
// re-runs. The coordinator's audit layer uses this to expunge results
// produced by a quarantined worker; a crash between Invalidate and the
// in-memory re-queue is safe because the on-disk state already says
// "never completed". Re-recording the task later (Record) writes a
// fresh result file under the same name, which the earliest manifest
// entry then resolves to — first-entry-wins reads the file, not the
// line.
func (c *Checkpoint) Invalidate(t Task) error {
	path := filepath.Join(c.cp.dir, "task-"+t.ID()+".json")
	if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("job: invalidate %s: %w", path, err)
	}
	if err := syncDir(c.cp.dir); err != nil {
		return fmt.Errorf("job: invalidate %s: %w", path, err)
	}
	return nil
}

// record persists one finished task: the result file first (atomic
// rename), then the manifest line that makes it count, synced so a
// crash right after record loses nothing.
func (c *checkpoint) record(t Task, values []float64, elapsed time.Duration) error {
	rf := resultFile{Task: t.ID(), Measure: t.Measure, Lo: t.Lo, Hi: t.Hi, Values: values}
	name := "task-" + t.ID() + ".json"
	if err := writeFileAtomic(filepath.Join(c.dir, name), mustJSON(rf)); err != nil {
		return err
	}
	line := append(mustJSON(manifestEntry{Task: t.ID(), File: name, ElapsedMS: elapsed.Milliseconds()}), '\n')
	c.mu.Lock()
	defer c.mu.Unlock()
	n, err := WrapWriter(c.manifestPath, c.manifest).Write(line)
	if err == nil && n < len(line) {
		err = io.ErrShortWrite
	}
	if err != nil {
		// Trim the torn tail so the next append (O_APPEND, so it
		// lands at the new end) starts on a clean line; if the
		// truncate itself fails the torn bytes stay and
		// readCompleted's torn-line tolerance bounds the damage.
		c.manifest.Truncate(c.off)
		return &WriteError{Path: c.manifestPath, Off: c.off + int64(n), Op: "append manifest", Err: err}
	}
	c.off += int64(n)
	if err := c.manifest.Sync(); err != nil {
		return &WriteError{Path: c.manifestPath, Off: c.off, Op: "sync manifest", Err: err}
	}
	return nil
}

func (c *checkpoint) close() error {
	return c.manifest.Close()
}

// readCompleted merges every manifest in dir into task-ID → values.
// Entries that are torn, missing their result file, or inconsistent
// with the spec's task list are skipped — the engine just re-runs those
// tasks — so a crash mid-write can never corrupt a resumed sweep.
func readCompleted(dir string, spec Spec) (map[string][]float64, error) {
	valid := make(map[string]Task)
	for _, t := range spec.Tasks() {
		valid[t.ID()] = t
	}
	manifests, err := filepath.Glob(filepath.Join(dir, "manifest-*.jsonl"))
	if err != nil {
		return nil, err
	}
	slices.Sort(manifests)
	out := make(map[string][]float64)
	for _, path := range manifests {
		f, err := os.Open(path)
		if err != nil {
			return nil, fmt.Errorf("job: read manifest: %w", err)
		}
		sc := bufio.NewScanner(f)
		sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
		for sc.Scan() {
			var e manifestEntry
			if json.Unmarshal(sc.Bytes(), &e) != nil {
				continue // torn write from a crash
			}
			t, ok := valid[e.Task]
			if !ok {
				continue
			}
			if _, have := out[e.Task]; have {
				continue
			}
			if vals, ok := readResult(filepath.Join(dir, e.File), t); ok {
				out[e.Task] = vals
			}
		}
		err = sc.Err()
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("job: read manifest %s: %w", path, err)
		}
	}
	return out, nil
}

func readResult(path string, t Task) ([]float64, bool) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, false
	}
	var rf resultFile
	if json.Unmarshal(raw, &rf) != nil {
		return nil, false
	}
	if rf.Task != t.ID() || rf.Lo != t.Lo || rf.Hi != t.Hi || rf.Measure != t.Measure || len(rf.Values) != t.Hi-t.Lo {
		return nil, false
	}
	return rf.Values, true
}

// loadCheckpoint reads dir without a target spec: the spec (and through
// the registry, the domain) comes from spec.json. Used by Load
// (merge/report without re-running).
func loadCheckpoint(dir string) (Spec, map[string][]float64, error) {
	raw, err := os.ReadFile(filepath.Join(dir, specFileName))
	if err != nil {
		return Spec{}, nil, fmt.Errorf("job: not a checkpoint dir: %w", err)
	}
	var sj specJSON
	if err := json.Unmarshal(raw, &sj); err != nil {
		return Spec{}, nil, fmt.Errorf("job: corrupt %s: %w", specFileName, err)
	}
	spec, err := specFromJSON(dir, sj)
	if err != nil {
		return Spec{}, nil, err
	}
	completed, err := readCompleted(dir, spec)
	if err != nil {
		return Spec{}, nil, err
	}
	return spec, completed, nil
}

// writeFileAtomic writes via a uniquely-named temp file in the same
// directory plus rename. The unique name matters: concurrently started
// shard processes race to write an identical spec.json, and a shared
// temp path would let one process rename the file away between
// another's write and rename. The file is fsynced before the rename
// and the directory after it, so a recorded task survives power loss,
// not just process crash.
func writeFileAtomic(path string, data []byte) error {
	f, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("job: write %s: %w", path, err)
	}
	tmp := f.Name()
	n, werr := WrapWriter(path, f).Write(data)
	if werr == nil && n < len(data) {
		werr = io.ErrShortWrite
	}
	op := "write"
	if werr == nil {
		if werr = f.Sync(); werr != nil {
			op, n = "sync", len(data)
		}
	}
	cerr := f.Close()
	if werr == nil && cerr != nil {
		werr, op, n = cerr, "close", len(data)
	}
	if werr == nil {
		if werr = os.Chmod(tmp, 0o644); werr != nil {
			op, n = "chmod", len(data)
		}
	}
	if werr == nil {
		if werr = os.Rename(tmp, path); werr != nil {
			op, n = "rename", len(data)
		}
	}
	if werr == nil {
		if werr = syncDir(filepath.Dir(path)); werr != nil {
			op, n = "sync dir of", len(data)
		}
	}
	if werr != nil {
		os.Remove(tmp)
		return &WriteError{Path: path, Off: int64(n), Op: op, Err: werr}
	}
	return nil
}

// syncDir fsyncs a directory so a just-renamed file's directory entry
// is durable. Filesystems that cannot sync directories (some network
// mounts) report EINVAL/ENOTSUP; those fall back silently to
// crash-only (not power-loss) durability — the rename itself is still
// atomic.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	if errors.Is(err, syscall.EINVAL) || errors.Is(err, syscall.ENOTSUP) {
		return nil
	}
	return err
}

func mustJSON(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		panic("job: marshal: " + err.Error())
	}
	return b
}
