package job

// Engine parity for the gossip domain: the same guarantees the job
// engine gives the file-swarming sweep — chunk invariance, resume
// round-trip, byte-identical multi-shard merge — hold for any Domain,
// demonstrated here on the 216-protocol gossip space.

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dsa"
	"repro/internal/gossip"
	"repro/internal/pra"
)

func tinyGossipCfg() dsa.Config {
	return dsa.Config{Peers: 8, Rounds: 40, PerfRuns: 1, EncounterRuns: 1, Opponents: 4, Seed: 7}
}

// gossipSubset strides over the gossip space: 18 points at stride 12.
func gossipSubset(t *testing.T) []core.Point {
	t.Helper()
	all := gossip.Domain().Space().Enumerate()
	var pts []core.Point
	for i := 0; i < len(all); i += 12 {
		pts = append(pts, all[i])
	}
	return pts
}

func mustRunGossip(t *testing.T, ctx context.Context, pts []core.Point, opts Options) *dsa.Scores {
	t.Helper()
	s, err := Run(ctx, gossip.Domain(), pts, tinyGossipCfg(), opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestGossipChunkInvariance(t *testing.T) {
	pts := gossipSubset(t)
	ctx := context.Background()
	a := mustRunGossip(t, ctx, pts, Options{Chunk: 1})
	b := mustRunGossip(t, ctx, pts, Options{Chunk: 5})
	if !reflect.DeepEqual(a, b) {
		t.Fatal("chunk size changed the merged gossip scores")
	}
	for _, m := range gossip.Domain().Measures() {
		if len(a.Values[m]) != len(pts) {
			t.Fatalf("measure %s has %d values, want %d", m, len(a.Values[m]), len(pts))
		}
	}
}

func TestGossipResumeRoundTrip(t *testing.T) {
	pts := gossipSubset(t)
	want := mustRunGossip(t, context.Background(), pts, Options{Chunk: 2})

	dir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	_, err := Run(ctx, gossip.Domain(), pts, tinyGossipCfg(), Options{
		Dir: dir, Chunk: 2, Workers: 1,
		Progress: func(p Progress) {
			if p.FreshTasks >= 3 {
				cancel()
			}
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}

	var resumed Progress
	got, err := Run(context.Background(), gossip.Domain(), pts, tinyGossipCfg(), Options{
		Dir: dir, Chunk: 2,
		Progress: func(p Progress) { resumed = p },
	})
	if err != nil {
		t.Fatal(err)
	}
	if resumed.FreshTasks >= resumed.TotalTasks {
		t.Fatalf("resume re-ran everything: %d fresh of %d total", resumed.FreshTasks, resumed.TotalTasks)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("resumed gossip run does not match uninterrupted run")
	}
}

// TestGossipTwoShardMergeByteIdentical asserts the merge contract at
// the byte level: an unsharded run, a 2-shard run merged through the
// shared checkpoint, and a cold Load of that checkpoint all serialise
// to identical bytes.
func TestGossipTwoShardMergeByteIdentical(t *testing.T) {
	pts := gossipSubset(t)
	ctx := context.Background()
	want := mustRunGossip(t, ctx, pts, Options{Chunk: 3})

	dir := t.TempDir()
	_, err := Run(ctx, gossip.Domain(), pts, tinyGossipCfg(), Options{Dir: dir, Chunk: 3, Shards: 2, ShardIndex: 0})
	if !errors.Is(err, ErrIncomplete) {
		t.Fatalf("shard 0: err = %v, want ErrIncomplete", err)
	}
	got, err := Run(ctx, gossip.Domain(), pts, tinyGossipCfg(), Options{Dir: dir, Chunk: 3, Shards: 2, ShardIndex: 1})
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	wantJSON := mustJSON(want)
	for name, s := range map[string]*dsa.Scores{"sharded merge": got, "Load": loaded} {
		if string(mustJSON(s)) != string(wantJSON) {
			t.Fatalf("%s is not byte-identical to the unsharded run", name)
		}
	}
}

// TestCrossDomainCheckpointRejected: a gossip run pointed at a
// swarming checkpoint directory (or vice versa) must fail loudly, not
// mis-merge two domains' task files.
func TestCrossDomainCheckpointRejected(t *testing.T) {
	dir := t.TempDir()
	mustRun(t, context.Background(), subset(t), Options{Dir: dir})

	_, err := Run(context.Background(), gossip.Domain(), gossipSubset(t), tinyGossipCfg(), Options{Dir: dir})
	if err == nil || errors.Is(err, ErrIncomplete) {
		t.Fatalf("gossip run accepted a swarming checkpoint (err = %v)", err)
	}
	if !strings.Contains(err.Error(), "domain") {
		t.Fatalf("rejection should name the domain mismatch, got: %v", err)
	}
}

// TestV1CheckpointRejected: a checkpoint directory written by the
// pre-Domain engine (spec version 1, keyed by pra.ScoreKind and
// protocol IDs) must be detected and rejected with a helpful error —
// resuming into it or loading it could otherwise silently mis-merge.
func TestV1CheckpointRejected(t *testing.T) {
	dir := t.TempDir()
	v1 := map[string]any{
		"version": 1,
		"config": map[string]any{
			"peers": 10, "rounds": 30, "perf_runs": 1, "encounter_runs": 1,
			"opponents": 4, "seed": 7, "churn": 0.0,
		},
		"chunk":        32,
		"protocol_ids": []int{0, 200, 400},
	}
	raw, err := json.Marshal(v1)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, specFileName), raw, 0o644); err != nil {
		t.Fatal(err)
	}

	checkErr := func(what string, err error) {
		t.Helper()
		if err == nil || errors.Is(err, ErrIncomplete) {
			t.Fatalf("%s accepted a v1 checkpoint (err = %v)", what, err)
		}
		for _, needle := range []string{"version 1", "re-run"} {
			if !strings.Contains(err.Error(), needle) {
				t.Fatalf("%s rejection should mention %q, got: %v", what, needle, err)
			}
		}
	}
	_, err = Run(context.Background(), pra.Domain(), subset(t), tinyCfg(), Options{Dir: dir})
	checkErr("Run", err)
	_, err = Load(dir)
	checkErr("Load", err)
}
