package job

// The caching correctness bar: with a score cache plugged into the
// engine, every output stays byte-identical to a cold run — same
// Scores JSON, same CSV bytes — while a warm run performs zero
// simulations. The cache is observed through a counting domain
// wrapper, so "skipped recomputation" is an exact claim about
// ScoreSlice invocations, not a timing heuristic.

import (
	"bytes"
	"context"
	"encoding/json"
	"sync/atomic"
	"testing"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/dsa"
	"repro/internal/gossip"
)

// countingDomain delegates to a real domain and counts ScoreSlice
// points actually simulated.
type countingDomain struct {
	dsa.Domain
	points atomic.Int64
}

func (c *countingDomain) ScoreSlice(measure string, pts, opponents []core.Point, cfg dsa.Config) ([]float64, error) {
	c.points.Add(int64(len(pts)))
	return c.Domain.ScoreSlice(measure, pts, opponents, cfg)
}

func cacheTestSpec(t *testing.T) ([]core.Point, dsa.Config) {
	t.Helper()
	all := gossip.Domain().Space().Enumerate()
	var pts []core.Point
	for i := 0; i < len(all); i += 16 {
		pts = append(pts, all[i])
	}
	cfg := dsa.Config{Peers: 8, Rounds: 30, PerfRuns: 1, EncounterRuns: 1, Opponents: 3, Seed: 13}
	return pts, cfg
}

func scoresJSON(t *testing.T, s *dsa.Scores) string {
	t.Helper()
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func scoresCSV(t *testing.T, d dsa.Domain, s *dsa.Scores) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := dsa.WriteCSV(&buf, d, s); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestCachedSweepByteIdentical: cold-with-cache and warm-with-cache
// runs produce exactly the bytes an uncached run produces, and the
// warm run simulates nothing.
func TestCachedSweepByteIdentical(t *testing.T) {
	pts, cfg := cacheTestSpec(t)
	ctx := context.Background()

	want, err := Run(ctx, gossip.Domain(), pts, cfg, Options{Chunk: 4})
	if err != nil {
		t.Fatal(err)
	}
	wantJSON := scoresJSON(t, want)
	wantCSV := scoresCSV(t, gossip.Domain(), want)

	store, err := cache.Open(cache.Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	cold := &countingDomain{Domain: gossip.Domain()}
	coldScores, err := Run(ctx, cold, pts, cfg, Options{Chunk: 4, Cache: store})
	if err != nil {
		t.Fatal(err)
	}
	if scoresJSON(t, coldScores) != wantJSON {
		t.Fatal("cold cached sweep differs from uncached sweep")
	}
	if !bytes.Equal(scoresCSV(t, gossip.Domain(), coldScores), wantCSV) {
		t.Fatal("cold cached sweep CSV differs from uncached CSV")
	}
	if cold.points.Load() == 0 {
		t.Fatal("cold run should simulate")
	}

	warm := &countingDomain{Domain: gossip.Domain()}
	warmScores, err := Run(ctx, warm, pts, cfg, Options{Chunk: 4, Cache: store})
	if err != nil {
		t.Fatal(err)
	}
	if scoresJSON(t, warmScores) != wantJSON {
		t.Fatal("warm cached sweep differs from uncached sweep")
	}
	if !bytes.Equal(scoresCSV(t, gossip.Domain(), warmScores), wantCSV) {
		t.Fatal("warm cached sweep CSV differs from uncached CSV")
	}
	if n := warm.points.Load(); n != 0 {
		t.Fatalf("warm sweep simulated %d points, want 0", n)
	}
	if st := store.Stats(); st.Hits == 0 {
		t.Fatalf("warm sweep recorded no cache hits: %+v", st)
	}
}

// TestOverlappingSweepReusesScores: a sweep of a *subset* of cached
// points with a *different* chunking hits fully — the cache is keyed
// per point, so task shapes are irrelevant — and matches its own
// uncached reference exactly.
func TestOverlappingSweepReusesScores(t *testing.T) {
	pts, cfg := cacheTestSpec(t)
	ctx := context.Background()

	store, err := cache.Open(cache.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	if _, err := Run(ctx, gossip.Domain(), pts, cfg, Options{Chunk: 4, Cache: store}); err != nil {
		t.Fatal(err)
	}

	var sub []core.Point
	for i := 0; i < len(pts); i += 2 {
		sub = append(sub, pts[i])
	}
	want, err := Run(ctx, gossip.Domain(), sub, cfg, Options{Chunk: 3})
	if err != nil {
		t.Fatal(err)
	}
	counting := &countingDomain{Domain: gossip.Domain()}
	got, err := Run(ctx, counting, sub, cfg, Options{Chunk: 3, Cache: store})
	if err != nil {
		t.Fatal(err)
	}
	if n := counting.points.Load(); n != 0 {
		t.Fatalf("overlapping sweep simulated %d points, want 0", n)
	}
	if scoresJSON(t, got) != scoresJSON(t, want) {
		t.Fatal("cache-served subset sweep differs from its uncached reference")
	}
}

// TestConfigChangeMissesCache: the same points under a different seed
// must not reuse cached scores — a mismatched config is a miss, never
// a wrong hit.
func TestConfigChangeMissesCache(t *testing.T) {
	pts, cfg := cacheTestSpec(t)
	ctx := context.Background()

	store, err := cache.Open(cache.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	if _, err := Run(ctx, gossip.Domain(), pts, cfg, Options{Chunk: 4, Cache: store}); err != nil {
		t.Fatal(err)
	}

	cfg2 := cfg
	cfg2.Seed = cfg.Seed + 1
	want, err := Run(ctx, gossip.Domain(), pts, cfg2, Options{Chunk: 4})
	if err != nil {
		t.Fatal(err)
	}
	counting := &countingDomain{Domain: gossip.Domain()}
	got, err := Run(ctx, counting, pts, cfg2, Options{Chunk: 4, Cache: store})
	if err != nil {
		t.Fatal(err)
	}
	if counting.points.Load() == 0 {
		t.Fatal("changed seed must re-simulate, not hit the old seed's scores")
	}
	if scoresJSON(t, got) != scoresJSON(t, want) {
		t.Fatal("re-seeded cached sweep differs from its uncached reference")
	}
}

// TestCacheWithResume: cache and checkpoint compose — a resumed sweep
// over a warm cache restores journalled tasks from the checkpoint,
// serves the rest from the cache, and still assembles the reference
// result.
func TestCacheWithResume(t *testing.T) {
	pts, cfg := cacheTestSpec(t)
	ctx := context.Background()
	want, err := Run(ctx, gossip.Domain(), pts, cfg, Options{Chunk: 4})
	if err != nil {
		t.Fatal(err)
	}

	store, err := cache.Open(cache.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	// Warm the cache with a no-checkpoint run...
	if _, err := Run(ctx, gossip.Domain(), pts, cfg, Options{Chunk: 4, Cache: store}); err != nil {
		t.Fatal(err)
	}
	// ...then run the same spec with a checkpoint directory: every
	// task journals cache-served values; a -resume Load sees a
	// complete, correct directory.
	dir := t.TempDir()
	counting := &countingDomain{Domain: gossip.Domain()}
	got, err := Run(ctx, counting, pts, cfg, Options{Chunk: 4, Dir: dir, Cache: store})
	if err != nil {
		t.Fatal(err)
	}
	if n := counting.points.Load(); n != 0 {
		t.Fatalf("checkpointed warm sweep simulated %d points, want 0", n)
	}
	if scoresJSON(t, got) != scoresJSON(t, want) {
		t.Fatal("checkpointed warm sweep differs from reference")
	}
	loaded, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if scoresJSON(t, loaded) != scoresJSON(t, want) {
		t.Fatal("checkpoint written from cache-served tasks loads differently")
	}
}
