package job

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/dsa"
	"repro/internal/pra"
)

// tinyCfg is small enough for unit tests while exercising every
// measure of the swarming domain.
func tinyCfg() dsa.Config {
	return dsa.Config{Peers: 10, Rounds: 30, PerfRuns: 1, EncounterRuns: 1, Opponents: 4, Seed: 7}
}

// subset strides over the swarming space: 17 points at stride 200.
func subset(t *testing.T) []core.Point {
	t.Helper()
	all := pra.Domain().Space().Enumerate()
	var pts []core.Point
	for i := 0; i < len(all); i += 200 {
		pts = append(pts, all[i])
	}
	return pts
}

func mustRun(t *testing.T, ctx context.Context, pts []core.Point, opts Options) *dsa.Scores {
	t.Helper()
	s, err := Run(ctx, pra.Domain(), pts, tinyCfg(), opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestTaskEnumeration(t *testing.T) {
	spec := Spec{Domain: pra.Domain(), Points: subset(t), Cfg: tinyCfg(), Chunk: 4}
	tasks := spec.Tasks()
	perMeasure := (len(spec.Points) + 3) / 4
	measures := spec.Domain.Measures()
	if len(tasks) != len(measures)*perMeasure {
		t.Fatalf("tasks = %d, want %d", len(tasks), len(measures)*perMeasure)
	}
	// Each measure's ranges must tile [0, len) exactly, in order.
	next := map[string]int{}
	seen := map[string]bool{}
	for _, task := range tasks {
		if task.Lo != next[task.Measure] {
			t.Fatalf("task %s starts at %d, want %d", task.ID(), task.Lo, next[task.Measure])
		}
		if task.Hi <= task.Lo || task.Hi > len(spec.Points) {
			t.Fatalf("task %s has bad range", task.ID())
		}
		if seen[task.ID()] {
			t.Fatalf("duplicate task ID %s", task.ID())
		}
		seen[task.ID()] = true
		next[task.Measure] = task.Hi
	}
	for _, m := range measures {
		if next[m] != len(spec.Points) {
			t.Fatalf("%s tasks cover %d of %d points", m, next[m], len(spec.Points))
		}
	}
}

func TestChunkInvariance(t *testing.T) {
	pts := subset(t)
	ctx := context.Background()
	a := mustRun(t, ctx, pts, Options{Chunk: 1})
	b := mustRun(t, ctx, pts, Options{Chunk: 7})
	if !reflect.DeepEqual(a, b) {
		t.Fatal("chunk size changed the merged scores")
	}
}

func TestShardedMatchesUnsharded(t *testing.T) {
	pts := subset(t)
	ctx := context.Background()
	want := mustRun(t, ctx, pts, Options{Chunk: 3})

	dir := t.TempDir()
	const shards = 3
	// Shards 0 and 1 finish their share but cannot assemble yet.
	for idx := 0; idx < shards-1; idx++ {
		_, err := Run(ctx, pra.Domain(), pts, tinyCfg(), Options{Dir: dir, Chunk: 3, Shards: shards, ShardIndex: idx})
		if !errors.Is(err, ErrIncomplete) {
			t.Fatalf("shard %d: err = %v, want ErrIncomplete", idx, err)
		}
	}
	// The last shard finds every other task checkpointed and merges.
	got, err := Run(ctx, pra.Domain(), pts, tinyCfg(), Options{Dir: dir, Chunk: 3, Shards: shards, ShardIndex: shards - 1})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("sharded run does not match unsharded run")
	}
	// Load assembles the same result without simulating.
	loaded, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(loaded, want) {
		t.Fatal("Load(dir) does not match unsharded run")
	}
}

// TestLastFinishingShardAssembles pins the documented concurrent-shard
// contract: a shard that finishes after the others picks their
// journalled tasks up from the shared dir and assembles the full
// result, even though they completed only after it had opened the
// checkpoint. Shard 1 runs to completion from inside shard 0's first
// progress callback, i.e. strictly mid-run.
func TestLastFinishingShardAssembles(t *testing.T) {
	pts := subset(t)
	want := mustRun(t, context.Background(), pts, Options{Chunk: 3})

	dir := t.TempDir()
	ranOther := false
	got, err := Run(context.Background(), pra.Domain(), pts, tinyCfg(), Options{
		Dir: dir, Chunk: 3, Shards: 2, ShardIndex: 0, Workers: 1,
		Progress: func(Progress) {
			if ranOther {
				return
			}
			ranOther = true
			_, err := Run(context.Background(), pra.Domain(), pts, tinyCfg(), Options{Dir: dir, Chunk: 3, Shards: 2, ShardIndex: 1})
			if !errors.Is(err, ErrIncomplete) {
				t.Errorf("inner shard: err = %v, want ErrIncomplete", err)
			}
		},
	})
	if err != nil {
		t.Fatalf("outer shard should assemble the full result, got %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("late-assembled sharded run does not match unsharded run")
	}
}

func TestResumeAfterCancelMatchesUninterrupted(t *testing.T) {
	pts := subset(t)
	want := mustRun(t, context.Background(), pts, Options{Chunk: 2})

	dir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	interrupted := 0
	_, err := Run(ctx, pra.Domain(), pts, tinyCfg(), Options{
		Dir: dir, Chunk: 2, Workers: 1,
		Progress: func(p Progress) {
			interrupted = p.FreshTasks
			if p.FreshTasks >= 3 {
				cancel()
			}
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if interrupted == 0 {
		t.Fatal("nothing was checkpointed before the cancel")
	}

	var resumed Progress
	got, err := Run(context.Background(), pra.Domain(), pts, tinyCfg(), Options{
		Dir: dir, Chunk: 2,
		Progress: func(p Progress) { resumed = p },
	})
	if err != nil {
		t.Fatal(err)
	}
	if resumed.FreshTasks >= resumed.TotalTasks {
		t.Fatalf("resume re-ran everything: %d fresh of %d total", resumed.FreshTasks, resumed.TotalTasks)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("resumed run does not match uninterrupted run")
	}
}

func TestPreCancelledRunsNothing(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	fresh := 0
	_, err := Run(ctx, pra.Domain(), subset(t), tinyCfg(), Options{Progress: func(p Progress) { fresh = p.FreshTasks }})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if fresh != 0 {
		t.Fatalf("%d tasks ran under a cancelled context", fresh)
	}
}

func TestSpecMismatchRejected(t *testing.T) {
	pts := subset(t)
	dir := t.TempDir()
	mustRun(t, context.Background(), pts, Options{Dir: dir})

	other := tinyCfg()
	other.Seed = 99
	if _, err := Run(context.Background(), pra.Domain(), pts, other, Options{Dir: dir}); err == nil || errors.Is(err, ErrIncomplete) {
		t.Fatalf("different seed accepted against existing checkpoint (err = %v)", err)
	}
	if _, err := Run(context.Background(), pra.Domain(), pts[:5], tinyCfg(), Options{Dir: dir}); err == nil || errors.Is(err, ErrIncomplete) {
		t.Fatalf("different point set accepted against existing checkpoint (err = %v)", err)
	}
}

func TestTornManifestLineIsReRun(t *testing.T) {
	pts := subset(t)
	dir := t.TempDir()
	want := mustRun(t, context.Background(), pts, Options{Dir: dir})

	// Simulate a crash mid-append: garbage tail on the manifest.
	matches, err := filepath.Glob(filepath.Join(dir, "manifest-*.jsonl"))
	if err != nil || len(matches) != 1 {
		t.Fatalf("manifest glob: %v %v", matches, err)
	}
	f, err := os.OpenFile(matches[0], os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"task":"robustness-000`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	got, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("torn manifest line changed the loaded scores")
	}
	// Resuming over the torn journal still assembles the same result.
	resumed := mustRun(t, context.Background(), pts, Options{Dir: dir})
	if !reflect.DeepEqual(resumed, want) {
		t.Fatal("resume over torn manifest does not match")
	}
}
