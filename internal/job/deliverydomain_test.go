package job

// Engine parity for the delivery domain — the third vertical through
// the generic seam, and the first whose measures include adversarial
// robustness. Same guarantees as the swarming and gossip suites: chunk
// invariance, resume round-trip, byte-identical multi-shard merge,
// byte-identical cached sweeps with a zero-simulation warm run — plus
// the three-domain cache-isolation case: no two registered domains may
// ever share a ScoreKeyer key.

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/delivery"
	"repro/internal/dsa"
	"repro/internal/gossip"
	"repro/internal/pra"
)

func tinyDeliveryCfg() dsa.Config {
	return dsa.Config{Peers: 6, Rounds: 200, PerfRuns: 2, EncounterRuns: 1, Seed: 11}
}

// deliverySubset strides the 576-strategy space down to 16 points.
func deliverySubset(t *testing.T) []core.Point {
	t.Helper()
	pts := dsa.StridePoints(delivery.Domain(), 36)
	if len(pts) != 16 {
		t.Fatalf("subset has %d points, want 16", len(pts))
	}
	return pts
}

func mustRunDelivery(t *testing.T, ctx context.Context, pts []core.Point, opts Options) *dsa.Scores {
	t.Helper()
	s, err := Run(ctx, delivery.Domain(), pts, tinyDeliveryCfg(), opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestDeliveryChunkInvariance(t *testing.T) {
	pts := deliverySubset(t)
	ctx := context.Background()
	a := mustRunDelivery(t, ctx, pts, Options{Chunk: 1})
	b := mustRunDelivery(t, ctx, pts, Options{Chunk: 5})
	if !reflect.DeepEqual(a, b) {
		t.Fatal("chunk size changed the merged delivery scores")
	}
	for _, m := range delivery.Domain().Measures() {
		if len(a.Values[m]) != len(pts) {
			t.Fatalf("measure %s has %d values, want %d", m, len(a.Values[m]), len(pts))
		}
	}
}

func TestDeliveryResumeRoundTrip(t *testing.T) {
	pts := deliverySubset(t)
	want := mustRunDelivery(t, context.Background(), pts, Options{Chunk: 2})

	dir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	_, err := Run(ctx, delivery.Domain(), pts, tinyDeliveryCfg(), Options{
		Dir: dir, Chunk: 2, Workers: 1,
		Progress: func(p Progress) {
			if p.FreshTasks >= 3 {
				cancel()
			}
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}

	var resumed Progress
	got, err := Run(context.Background(), delivery.Domain(), pts, tinyDeliveryCfg(), Options{
		Dir: dir, Chunk: 2,
		Progress: func(p Progress) { resumed = p },
	})
	if err != nil {
		t.Fatal(err)
	}
	if resumed.FreshTasks >= resumed.TotalTasks {
		t.Fatalf("resume re-ran everything: %d fresh of %d total", resumed.FreshTasks, resumed.TotalTasks)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("resumed delivery run does not match uninterrupted run")
	}
}

func TestDeliveryTwoShardMergeByteIdentical(t *testing.T) {
	pts := deliverySubset(t)
	ctx := context.Background()
	want := mustRunDelivery(t, ctx, pts, Options{Chunk: 3})

	dir := t.TempDir()
	_, err := Run(ctx, delivery.Domain(), pts, tinyDeliveryCfg(), Options{Dir: dir, Chunk: 3, Shards: 2, ShardIndex: 0})
	if !errors.Is(err, ErrIncomplete) {
		t.Fatalf("shard 0: err = %v, want ErrIncomplete", err)
	}
	got, err := Run(ctx, delivery.Domain(), pts, tinyDeliveryCfg(), Options{Dir: dir, Chunk: 3, Shards: 2, ShardIndex: 1})
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	wantJSON := mustJSON(want)
	for name, s := range map[string]*dsa.Scores{"sharded merge": got, "Load": loaded} {
		if string(mustJSON(s)) != string(wantJSON) {
			t.Fatalf("%s is not byte-identical to the unsharded run", name)
		}
	}
}

// TestDeliveryCachedSweepByteIdentical extends the PR 4 caching bar to
// the delivery domain: cold-with-cache and warm-with-cache runs emit
// exactly the uncached bytes (JSON and CSV), and the warm run performs
// zero simulations.
func TestDeliveryCachedSweepByteIdentical(t *testing.T) {
	pts := deliverySubset(t)
	cfg := tinyDeliveryCfg()
	ctx := context.Background()

	want, err := Run(ctx, delivery.Domain(), pts, cfg, Options{Chunk: 4})
	if err != nil {
		t.Fatal(err)
	}
	wantJSON := scoresJSON(t, want)
	wantCSV := scoresCSV(t, delivery.Domain(), want)

	store, err := cache.Open(cache.Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	cold := &countingDomain{Domain: delivery.Domain()}
	coldScores, err := Run(ctx, cold, pts, cfg, Options{Chunk: 4, Cache: store})
	if err != nil {
		t.Fatal(err)
	}
	if scoresJSON(t, coldScores) != wantJSON {
		t.Fatal("cold cached sweep differs from uncached sweep")
	}
	if cold.points.Load() == 0 {
		t.Fatal("cold run should simulate")
	}

	warm := &countingDomain{Domain: delivery.Domain()}
	warmScores, err := Run(ctx, warm, pts, cfg, Options{Chunk: 4, Cache: store})
	if err != nil {
		t.Fatal(err)
	}
	if scoresJSON(t, warmScores) != wantJSON {
		t.Fatal("warm cached sweep differs from uncached sweep")
	}
	if string(scoresCSV(t, delivery.Domain(), warmScores)) != string(wantCSV) {
		t.Fatal("warm cached sweep CSV differs from uncached CSV")
	}
	if n := warm.points.Load(); n != 0 {
		t.Fatalf("warm sweep simulated %d points, want 0", n)
	}
}

// TestThreeDomainCacheIsolation: the same (measure name, point ID,
// config) under different domains must produce different cache keys —
// the domain name is hashed into the keyer context, so a delivery
// score can never be served to a swarming or gossip sweep (or vice
// versa) even from one shared store. "robustness" is a real collision
// candidate: three domains, one measure name.
func TestThreeDomainCacheIsolation(t *testing.T) {
	cfg := dsa.Config{Peers: 8, Rounds: 30, PerfRuns: 1, EncounterRuns: 1, Seed: 7}
	domains := []dsa.Domain{pra.Domain(), gossip.Domain(), delivery.Domain()}
	keys := map[dsa.CacheKey]string{}
	for _, d := range domains {
		keyer, err := dsa.NewScoreKeyer(d, nil, cfg)
		if err != nil {
			t.Fatalf("%s: %v", d.Name(), err)
		}
		// "robustness" is a measure of all three domains; point 0 is
		// valid in all three spaces.
		for _, m := range []string{"robustness", "phantom"} {
			k := keyer.Key(m, 0)
			if prev, dup := keys[k]; dup {
				t.Fatalf("cache key collision between %s and %s for measure %q", prev, d.Name(), m)
			}
			keys[k] = d.Name()
		}
	}
}

// TestSharedStoreServesAllDomains: one store, three domains swept
// back-to-back, every warm rerun byte-identical and simulation-free —
// isolation and reuse at once, through the real engine.
func TestSharedStoreServesAllDomains(t *testing.T) {
	ctx := context.Background()
	store, err := cache.Open(cache.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	type sweep struct {
		d   dsa.Domain
		pts []core.Point
		cfg dsa.Config
	}
	gossipPts, gossipCfg := cacheTestSpec(t)
	sweeps := []sweep{
		{pra.Domain(), subset(t), tinyCfg()},
		{gossip.Domain(), gossipPts, gossipCfg},
		{delivery.Domain(), deliverySubset(t), tinyDeliveryCfg()},
	}
	wants := make([]string, len(sweeps))
	for i, s := range sweeps {
		w, err := Run(ctx, s.d, s.pts, s.cfg, Options{Chunk: 4, Cache: store})
		if err != nil {
			t.Fatalf("%s cold: %v", s.d.Name(), err)
		}
		wants[i] = scoresJSON(t, w)
	}
	for i, s := range sweeps {
		counting := &countingDomain{Domain: s.d}
		got, err := Run(ctx, counting, s.pts, s.cfg, Options{Chunk: 4, Cache: store})
		if err != nil {
			t.Fatalf("%s warm: %v", s.d.Name(), err)
		}
		if n := counting.points.Load(); n != 0 {
			t.Fatalf("%s warm rerun simulated %d points, want 0", s.d.Name(), n)
		}
		if scoresJSON(t, got) != wants[i] {
			t.Fatalf("%s warm rerun differs from its cold run", s.d.Name())
		}
	}
}
