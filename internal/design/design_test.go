package design

import (
	"testing"
	"testing/quick"
)

func TestSpaceSizeMatchesPaper(t *testing.T) {
	// Section 4.2: "the total number of unique protocols comes to
	// 10 × 109 × 3 = 3270".
	if NumStrangerPolicies != 10 {
		t.Errorf("stranger policies = %d, want 10", NumStrangerPolicies)
	}
	if NumSelectionPolicies != 109 {
		t.Errorf("selection policies = %d, want 109", NumSelectionPolicies)
	}
	if SpaceSize != 3270 {
		t.Errorf("space size = %d, want 3270", SpaceSize)
	}
}

func TestEnumerateAllValidAndUnique(t *testing.T) {
	all := Enumerate()
	if len(all) != SpaceSize {
		t.Fatalf("enumerated %d, want %d", len(all), SpaceSize)
	}
	seen := make(map[string]bool, SpaceSize)
	for i, p := range all {
		if err := p.Validate(); err != nil {
			t.Fatalf("protocol %d invalid: %v", i, err)
		}
		s := p.String()
		if seen[s] {
			t.Fatalf("duplicate protocol %s at %d", s, i)
		}
		seen[s] = true
	}
}

func TestIDRoundTrip(t *testing.T) {
	for id := 0; id < SpaceSize; id++ {
		p, err := ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		if got := ID(p); got != id {
			t.Fatalf("ID(ByID(%d)) = %d", id, got)
		}
	}
}

func TestByIDOutOfRange(t *testing.T) {
	if _, err := ByID(-1); err == nil {
		t.Error("negative ID should error")
	}
	if _, err := ByID(SpaceSize); err == nil {
		t.Error("ID == SpaceSize should error")
	}
}

func TestStringParseRoundTrip(t *testing.T) {
	for id := 0; id < SpaceSize; id++ {
		p, _ := ByID(id)
		back, err := Parse(p.String())
		if err != nil {
			t.Fatalf("Parse(%q): %v", p.String(), err)
		}
		if back != p {
			t.Fatalf("round trip %q → %+v ≠ %+v", p.String(), back, p)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"B1h1-C1-I1k4",     // missing allocation
		"X1h1-C1-I1k4-R1",  // bad stranger
		"B9h1-C1-I1k4-R1",  // unknown stranger number
		"B1h1-C9-I1k4-R1",  // bad candidate
		"B1h1-C1-I7k4-R1",  // unknown ranking
		"B1h1-C1-I1k4-R9",  // bad allocation
		"B1hX-C1-I1k4-R1",  // non-numeric h
		"B1h1-C1-I1kX-R1",  // non-numeric k
		"B1h9-C1-I1k4-R1",  // h out of range (validate)
		"B0h0-C2-I1k0-R1",  // non-canonical zero selection
		"B1h1-C1-I1k10-R1", // k out of range
	}
	for _, s := range bad {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) should fail", s)
		}
	}
}

func TestValidateCanonicalZeroPolicies(t *testing.T) {
	ok := Protocol{Stranger: StrangerNone, H: 0, Candidate: TFT, Ranking: Fastest, K: 0, Allocation: Freeride}
	if err := ok.Validate(); err != nil {
		t.Errorf("canonical zero protocol rejected: %v", err)
	}
	bad := ok
	bad.Ranking = Loyal // non-canonical with k=0
	if err := bad.Validate(); err == nil {
		t.Error("non-canonical k=0 should be rejected")
	}
	bad2 := ok
	bad2.H = 2 // StrangerNone with h>0
	if err := bad2.Validate(); err == nil {
		t.Error("StrangerNone with h>0 should be rejected")
	}
	bad3 := Protocol{Stranger: Periodic, H: 0, Candidate: TFT, Ranking: Fastest, K: 1}
	if err := bad3.Validate(); err == nil {
		t.Error("Periodic with h=0 should be rejected")
	}
}

func TestNamedProtocolsAreInSpace(t *testing.T) {
	for name, p := range Named() {
		if err := p.Validate(); err != nil {
			t.Errorf("%s invalid: %v", name, err)
		}
		id := ID(p)
		if id < 0 || id >= SpaceSize {
			t.Errorf("%s ID %d out of range", name, id)
		}
		back, _ := ByID(id)
		if back != p {
			t.Errorf("%s does not round-trip through ID", name)
		}
	}
}

func TestNamedProtocolProperties(t *testing.T) {
	bt := BitTorrent()
	if bt.Ranking != Fastest || bt.Allocation != EqualSplit || bt.Candidate != TFT {
		t.Errorf("BitTorrent = %+v", bt)
	}
	birds := Birds()
	if birds.Ranking != Proximity {
		t.Error("Birds must rank by proximity")
	}
	if birds.Stranger != bt.Stranger || birds.K != bt.K {
		t.Error("Birds should differ from BitTorrent only in ranking")
	}
	lwn := LoyalWhenNeeded()
	if lwn.Ranking != Loyal || lwn.Stranger != WhenNeeded {
		t.Errorf("LoyalWhenNeeded = %+v", lwn)
	}
	ss := SortS()
	if ss.Ranking != Slowest || ss.K != 1 || ss.Stranger != DefectStrangers {
		t.Errorf("SortS = %+v", ss)
	}
	if ss.Allocation == PropShare {
		t.Error("SortS with PropShare would fail to bootstrap (Section 4.4)")
	}
	mr := MostRobustCandidate()
	if mr.Stranger != WhenNeeded || mr.Ranking != Fastest || mr.Allocation != PropShare || mr.K != 7 {
		t.Errorf("MostRobust = %+v", mr)
	}
	fr := Freerider()
	if fr.K != 0 || fr.Stranger != StrangerNone || fr.Allocation != Freeride {
		t.Errorf("Freerider = %+v", fr)
	}
}

func TestStringFormat(t *testing.T) {
	p := Protocol{Stranger: WhenNeeded, H: 2, Candidate: TFT, Ranking: Loyal, K: 7, Allocation: PropShare}
	if got := p.String(); got != "B2h2-C1-I5k7-R2" {
		t.Errorf("String = %q", got)
	}
	if got := Freerider().String(); got != "B0h0-C1-I1k0-R3" {
		t.Errorf("Freerider String = %q", got)
	}
}

func TestDescribeMentionsAllDimensions(t *testing.T) {
	d := BitTorrent().Describe()
	for _, want := range []string{"Periodic", "TFT", "Fastest", "EqualSplit"} {
		if !contains(d, want) {
			t.Errorf("Describe() = %q missing %q", d, want)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 ||
		func() bool {
			for i := 0; i+len(sub) <= len(s); i++ {
				if s[i:i+len(sub)] == sub {
					return true
				}
			}
			return false
		}())
}

func TestIDBijectionProperty(t *testing.T) {
	// Property: random valid protocols round-trip ID ↔ Protocol.
	f := func(str, h, cand, rank, k, alloc uint8) bool {
		var p Protocol
		p.Stranger = StrangerKind(int(str) % 4)
		if p.Stranger == StrangerNone {
			p.H = 0
		} else {
			p.H = int(h)%MaxStrangers + 1
		}
		p.K = int(k) % (MaxPartners + 1)
		if p.K == 0 {
			p.Candidate, p.Ranking = TFT, Fastest
		} else {
			p.Candidate = CandidateKind(int(cand) % 2)
			p.Ranking = RankingKind(int(rank) % 6)
		}
		p.Allocation = AllocationKind(int(alloc) % 3)
		if p.Validate() != nil {
			return false // generator must always build valid protocols
		}
		back, err := ByID(ID(p))
		return err == nil && back == p
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCodeStrings(t *testing.T) {
	if Periodic.Code() != "B1" || WhenNeeded.Code() != "B2" || DefectStrangers.Code() != "B3" || StrangerNone.Code() != "B0" {
		t.Error("stranger codes wrong")
	}
	if TFT.Code() != "C1" || TF2T.Code() != "C2" {
		t.Error("candidate codes wrong")
	}
	if Fastest.Code() != "I1" || RandomRank.Code() != "I6" {
		t.Error("ranking codes wrong")
	}
	if EqualSplit.Code() != "R1" || Freeride.Code() != "R3" {
		t.Error("allocation codes wrong")
	}
	if TFT.Window() != 1 || TF2T.Window() != 2 {
		t.Error("candidate windows wrong")
	}
}

func TestTable2(t *testing.T) {
	rows := Table2()
	if len(rows) != 6 {
		t.Fatalf("Table 2 rows = %d, want 6", len(rows))
	}
	systems := map[string]bool{}
	for _, r := range rows {
		if r.System == "" || r.StrangerPolicy == "" || r.SelectionFunction == "" {
			t.Errorf("incomplete row %+v", r)
		}
		systems[r.System] = true
	}
	for _, want := range []string{"Maze [32]", "BarterCast [20]", "GTG [21]"} {
		if !systems[want] {
			t.Errorf("missing system %s", want)
		}
	}
}
