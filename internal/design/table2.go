package design

// SystemMapping records how an existing protocol or proposed design
// maps onto the generic P2P design space of Section 4.1 — Table 2 of
// the paper. The entries are descriptive: they document that the
// parameterized dimensions (peer discovery, stranger policy, selection
// function, resource allocation) cover a wide range of deployed
// systems, which is the argument for the Parameterization step.
type SystemMapping struct {
	System             string
	PeerDiscovery      string
	StrangerPolicy     string
	SelectionFunction  string
	ResourceAllocation string
}

// Table2 returns the paper's Table 2 verbatim: six existing
// protocols/designs mapped to the four generic dimensions.
func Table2() []SystemMapping {
	return []SystemMapping{
		{
			System:             "P2P Replica Storage [30]",
			PeerDiscovery:      "Gossip based",
			StrangerPolicy:     "Defect if set of partners full",
			SelectionFunction:  "Closest to own profile",
			ResourceAllocation: "Equal",
		},
		{
			System:             "GTG [21]",
			PeerDiscovery:      "orthogonal",
			StrangerPolicy:     "Unconditional cooperation",
			SelectionFunction:  "Sort on Forwarding Rank",
			ResourceAllocation: "Equal",
		},
		{
			System:             "Maze [32]",
			PeerDiscovery:      "Central server",
			StrangerPolicy:     "Initialized with points",
			SelectionFunction:  "Ranked on points",
			ResourceAllocation: "Differentiated according to rank",
		},
		{
			System:             "Pulse [23]",
			PeerDiscovery:      "Gossip based",
			StrangerPolicy:     "Give positive score",
			SelectionFunction:  "Missing list, Forwarding list",
			ResourceAllocation: "Equal",
		},
		{
			System:             "BarterCast [20]",
			PeerDiscovery:      "Gossip based",
			StrangerPolicy:     "Unconditional cooperation",
			SelectionFunction:  "Rank/Ban according to reputation",
			ResourceAllocation: "orthogonal",
		},
		{
			System:             "Private BT Communities",
			PeerDiscovery:      "Central server",
			StrangerPolicy:     "Initial credit",
			SelectionFunction:  "Credits or sharing ratio above certain level",
			ResourceAllocation: "Equal / Differentiated according to credits",
		},
	}
}
