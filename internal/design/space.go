package design

import "fmt"

// Space counts of the actualized design space (Section 4.2).
const (
	NumStrangerPolicies  = 1 + 3*MaxStrangers                                          // 10
	NumSelectionPolicies = 1 + 2*6*MaxPartners                                         // 109
	NumAllocations       = 3                                                           // R1-R3
	SpaceSize            = NumStrangerPolicies * NumSelectionPolicies * NumAllocations // 3270
)

// strangerPolicyIndex returns the index of p's stranger policy in
// [0, NumStrangerPolicies): 0 for none, then (B1,h1..h3), (B2,...), (B3,...).
func strangerPolicyIndex(p Protocol) int {
	if p.Stranger == StrangerNone {
		return 0
	}
	kind := int(p.Stranger) - int(Periodic) // 0..2
	return 1 + kind*MaxStrangers + (p.H - 1)
}

// selectionPolicyIndex returns the index of p's selection policy in
// [0, NumSelectionPolicies): 0 for k=0, then C×I×k in row-major
// (candidate, ranking, k) order.
func selectionPolicyIndex(p Protocol) int {
	if p.K == 0 {
		return 0
	}
	c := int(p.Candidate) // 0..1
	r := int(p.Ranking)   // 0..5
	return 1 + (c*6+r)*MaxPartners + (p.K - 1)
}

// ID returns p's stable position in enumeration order, in [0, SpaceSize).
// The inverse is ByID.
func ID(p Protocol) int {
	return (strangerPolicyIndex(p)*NumSelectionPolicies+selectionPolicyIndex(p))*NumAllocations + int(p.Allocation)
}

// ByID returns the protocol with the given enumeration ID.
func ByID(id int) (Protocol, error) {
	if id < 0 || id >= SpaceSize {
		return Protocol{}, fmt.Errorf("design: ID %d out of range [0,%d)", id, SpaceSize)
	}
	alloc := id % NumAllocations
	rest := id / NumAllocations
	sel := rest % NumSelectionPolicies
	str := rest / NumSelectionPolicies

	var p Protocol
	p.Allocation = AllocationKind(alloc)
	if str == 0 {
		p.Stranger, p.H = StrangerNone, 0
	} else {
		str--
		p.Stranger = Periodic + StrangerKind(str/MaxStrangers)
		p.H = str%MaxStrangers + 1
	}
	if sel == 0 {
		p.Candidate, p.Ranking, p.K = TFT, Fastest, 0
	} else {
		sel--
		p.K = sel%MaxPartners + 1
		cr := sel / MaxPartners
		p.Candidate = CandidateKind(cr / 6)
		p.Ranking = RankingKind(cr % 6)
	}
	return p, nil
}

// Enumerate returns all SpaceSize protocols in ID order.
func Enumerate() []Protocol {
	out := make([]Protocol, SpaceSize)
	for id := range out {
		p, err := ByID(id)
		if err != nil {
			panic("design: enumeration broken: " + err.Error())
		}
		out[id] = p
	}
	return out
}

// Named protocols referenced throughout the paper. The exact
// non-headline dimensions (h, k) follow BitTorrent's defaults where the
// paper does not pin them: one optimistic unchoke slot and four regular
// unchoke slots.

// BitTorrent is the reference protocol: periodic optimistic unchoke,
// TFT candidates, fastest-first ranking, equal split.
func BitTorrent() Protocol {
	return Protocol{Stranger: Periodic, H: 1, Candidate: TFT, Ranking: Fastest, K: 4, Allocation: EqualSplit}
}

// Birds is Section 2.3's protocol: BitTorrent with the ranking replaced
// by proximity to one's own upload capacity ("the best Birds variant,
// i.e. a protocol that at the very least ranks others by Proximity and
// employs Equal Split", Section 4.4.2).
func Birds() Protocol {
	p := BitTorrent()
	p.Ranking = Proximity
	return p
}

// LoyalWhenNeeded is the protocol validated in Section 5: Sort Loyal
// ranking with the When-needed stranger policy, which DSA found to have
// both high Performance and high Robustness.
func LoyalWhenNeeded() Protocol {
	return Protocol{Stranger: WhenNeeded, H: 2, Candidate: TFT, Ranking: Loyal, K: 4, Allocation: EqualSplit}
}

// SortS is the counter-intuitive top performer of Section 4.4: defect
// on strangers, rank slowest first, keep a single partner, equal split
// (Prop Share would fail to bootstrap).
func SortS() Protocol {
	return Protocol{Stranger: DefectStrangers, H: 1, Candidate: TFT, Ranking: Slowest, K: 1, Allocation: EqualSplit}
}

// SortRandom is BitTorrent with random ranking, the Figure 10 baseline
// that performs on par with BitTorrent (cf. Leong et al. [15]).
func SortRandom() Protocol {
	p := BitTorrent()
	p.Ranking = RandomRank
	return p
}

// MostRobustCandidate is the combination Section 4.4 identifies in the
// >0.99-robustness cluster: When-needed strangers, Sort Fastest,
// Prop Share, seven partners.
func MostRobustCandidate() Protocol {
	return Protocol{Stranger: WhenNeeded, H: 3, Candidate: TFT, Ranking: Fastest, K: 7, Allocation: PropShare}
}

// Freerider is the canonical low point of the space: no cooperation
// with anybody.
func Freerider() Protocol {
	return Protocol{Stranger: StrangerNone, H: 0, Candidate: TFT, Ranking: Fastest, K: 0, Allocation: Freeride}
}

// Named returns the paper's named protocols keyed by their names, for
// tooling and reports.
func Named() map[string]Protocol {
	return map[string]Protocol{
		"BitTorrent":      BitTorrent(),
		"Birds":           Birds(),
		"LoyalWhenNeeded": LoyalWhenNeeded(),
		"SortS":           SortS(),
		"SortRandom":      SortRandom(),
		"MostRobust":      MostRobustCandidate(),
		"Freerider":       Freerider(),
	}
}
