// Package design specifies the protocol design space of Section 4: the
// Parameterization (salient dimensions of a generic P2P protocol) and
// the Actualization (concrete values per dimension) of a BitTorrent-like
// file-swarming system.
//
// The actualized space is exactly the paper's:
//
//   - Stranger Policy: B1 Periodic / B2 When-needed / B3 Defect, each
//     with h ∈ [1,3] strangers, plus one policy with zero strangers
//     → 10 stranger policies.
//   - Selection Function: candidate list C1 (TFT, window 1) or C2
//     (TF2T, window 2) × ranking function I1-I6 × k ∈ [1,9] partners,
//     plus one policy with zero partners → 109 selection policies.
//   - Resource Allocation: R1 Equal Split / R2 Prop Share / R3 Freeride
//     → 3 allocation policies.
//
// 10 × 109 × 3 = 3270 unique protocols, each addressable by a stable
// integer ID (its position in enumeration order) and a compact string
// form such as "B2h2-C1-I5k7-R1".
package design

import (
	"fmt"
	"strconv"
	"strings"
)

// StrangerKind is the B dimension: how a peer treats unknown peers.
type StrangerKind int

// Stranger policy actualizations (Section 4.2).
const (
	// StrangerNone is the added policy with zero strangers: the peer
	// never contacts unknown peers at all.
	StrangerNone StrangerKind = iota
	// Periodic (B1) gives resources to up to h strangers every round.
	Periodic
	// WhenNeeded (B2) gives resources to strangers only while the set
	// of regular partners is not full (inspired by Izhak-Ratzin [11]).
	WhenNeeded
	// DefectStrangers (B3) contacts strangers but always gives them
	// nothing. The contact still creates an observation of 0 on the
	// receiving side — which is what makes the paper's Sort-S protocol
	// work (Section 4.4).
	DefectStrangers
)

// String returns the paper's label for the policy.
func (s StrangerKind) String() string {
	switch s {
	case StrangerNone:
		return "NoStrangers"
	case Periodic:
		return "Periodic"
	case WhenNeeded:
		return "WhenNeeded"
	case DefectStrangers:
		return "Defect"
	default:
		return fmt.Sprintf("StrangerKind(%d)", int(s))
	}
}

// Code returns the paper's B-code ("B1".."B3", or "B0" for none).
func (s StrangerKind) Code() string {
	switch s {
	case Periodic:
		return "B1"
	case WhenNeeded:
		return "B2"
	case DefectStrangers:
		return "B3"
	default:
		return "B0"
	}
}

// CandidateKind is the first part of the Selection Function: which
// peers are eligible for selection.
type CandidateKind int

// Candidate list actualizations.
const (
	// TFT (C1) admits peers who interacted with us in the last round.
	TFT CandidateKind = iota
	// TF2T (C2) admits peers who interacted with us in either of the
	// last two rounds (Axelrod [1]).
	TF2T
)

// String returns the candidate list name.
func (c CandidateKind) String() string {
	if c == TF2T {
		return "TF2T"
	}
	return "TFT"
}

// Code returns the paper's C-code.
func (c CandidateKind) Code() string {
	if c == TF2T {
		return "C2"
	}
	return "C1"
}

// Window returns the history window in rounds (1 for TFT, 2 for TF2T).
func (c CandidateKind) Window() int {
	if c == TF2T {
		return 2
	}
	return 1
}

// RankingKind is the second part of the Selection Function: how
// candidates are ordered before taking the top k.
type RankingKind int

// Ranking function actualizations I1-I6.
const (
	// Fastest (I1) ranks fastest observed uploaders first — standard
	// BitTorrent.
	Fastest RankingKind = iota
	// Slowest (I2) ranks slowest first.
	Slowest
	// Proximity (I3) ranks by closeness to one's own upload capacity —
	// the Birds rule of Section 2.3.
	Proximity
	// Adaptive (I4) ranks by closeness to an adaptive aspiration level
	// that tracks the peer's own recent download performance (Posch
	// [25], Win-Stay-Lose-Shift flavour).
	Adaptive
	// Loyal (I5) ranks by the length of the uninterrupted cooperation
	// streak (Hruschka & Henrich [10]).
	Loyal
	// RandomRank (I6) applies no ordering: candidates are shuffled
	// (Leong et al. [15]).
	RandomRank
)

// String returns the ranking function name.
func (r RankingKind) String() string {
	switch r {
	case Fastest:
		return "Fastest"
	case Slowest:
		return "Slowest"
	case Proximity:
		return "Proximity"
	case Adaptive:
		return "Adaptive"
	case Loyal:
		return "Loyal"
	case RandomRank:
		return "Random"
	default:
		return fmt.Sprintf("RankingKind(%d)", int(r))
	}
}

// Code returns the paper's I-code.
func (r RankingKind) Code() string { return fmt.Sprintf("I%d", int(r)+1) }

// AllocationKind is the Resource Allocation dimension.
type AllocationKind int

// Resource allocation actualizations R1-R3.
const (
	// EqualSplit (R1) divides upload capacity equally among selected
	// partners (and served strangers).
	EqualSplit AllocationKind = iota
	// PropShare (R2) divides capacity proportionally to what each
	// partner gave in the candidate window (Levin et al. [16]).
	PropShare
	// Freeride (R3) gives partners nothing.
	Freeride
)

// String returns the allocation policy name.
func (a AllocationKind) String() string {
	switch a {
	case EqualSplit:
		return "EqualSplit"
	case PropShare:
		return "PropShare"
	case Freeride:
		return "Freeride"
	default:
		return fmt.Sprintf("AllocationKind(%d)", int(a))
	}
}

// Code returns the paper's R-code.
func (a AllocationKind) Code() string { return fmt.Sprintf("R%d", int(a)+1) }

// Bounds of the numeric dimensions (Section 4.2).
const (
	MaxStrangers = 3 // h ranges over [1,3] (0 only for StrangerNone)
	MaxPartners  = 9 // k ranges over [1,9] (0 only for the no-partner policy)
)

// Protocol is one point in the design space.
type Protocol struct {
	Stranger   StrangerKind
	H          int // strangers contacted per round (0 iff Stranger == StrangerNone)
	Candidate  CandidateKind
	Ranking    RankingKind
	K          int // maximum partners (0 = never select; Candidate/Ranking must be canonical)
	Allocation AllocationKind
}

// Validate reports whether p is a canonical member of the space.
// Canonicality matters for the zero policies: k=0 selection must carry
// (TFT, Fastest) and h=0 must carry StrangerNone, so that each of the
// 3270 protocols has exactly one representation.
func (p Protocol) Validate() error {
	switch {
	case p.Stranger == StrangerNone && p.H != 0:
		return fmt.Errorf("design: StrangerNone requires h=0, got h=%d", p.H)
	case p.Stranger != StrangerNone && (p.H < 1 || p.H > MaxStrangers):
		return fmt.Errorf("design: %v requires h in [1,%d], got %d", p.Stranger, MaxStrangers, p.H)
	}
	if p.K < 0 || p.K > MaxPartners {
		return fmt.Errorf("design: k must be in [0,%d], got %d", MaxPartners, p.K)
	}
	if p.K == 0 && (p.Candidate != TFT || p.Ranking != Fastest) {
		return fmt.Errorf("design: k=0 must use canonical (TFT, Fastest), got (%v, %v)", p.Candidate, p.Ranking)
	}
	if p.Candidate != TFT && p.Candidate != TF2T {
		return fmt.Errorf("design: unknown candidate kind %d", int(p.Candidate))
	}
	if p.Ranking < Fastest || p.Ranking > RandomRank {
		return fmt.Errorf("design: unknown ranking kind %d", int(p.Ranking))
	}
	if p.Allocation < EqualSplit || p.Allocation > Freeride {
		return fmt.Errorf("design: unknown allocation kind %d", int(p.Allocation))
	}
	return nil
}

// String returns the compact code, e.g. "B2h2-C1-I5k7-R1". Zero
// policies render as "B0h0" and "k0".
func (p Protocol) String() string {
	var b strings.Builder
	b.WriteString(p.Stranger.Code())
	b.WriteString("h")
	b.WriteString(strconv.Itoa(p.H))
	b.WriteString("-")
	b.WriteString(p.Candidate.Code())
	b.WriteString("-")
	b.WriteString(p.Ranking.Code())
	b.WriteString("k")
	b.WriteString(strconv.Itoa(p.K))
	b.WriteString("-")
	b.WriteString(p.Allocation.Code())
	return b.String()
}

// Describe returns a human-readable multi-part description.
func (p Protocol) Describe() string {
	return fmt.Sprintf("stranger=%v(h=%d) candidates=%v ranking=%v(k=%d) allocation=%v",
		p.Stranger, p.H, p.Candidate, p.Ranking, p.K, p.Allocation)
}

// Parse inverts String.
func Parse(s string) (Protocol, error) {
	var p Protocol
	parts := strings.Split(s, "-")
	if len(parts) != 4 {
		return p, fmt.Errorf("design: malformed protocol code %q", s)
	}
	// Stranger part: B<n>h<h>.
	bp := parts[0]
	hIdx := strings.IndexByte(bp, 'h')
	if !strings.HasPrefix(bp, "B") || hIdx < 0 {
		return p, fmt.Errorf("design: malformed stranger code %q", bp)
	}
	bNum, err := strconv.Atoi(bp[1:hIdx])
	if err != nil {
		return p, fmt.Errorf("design: malformed stranger code %q: %v", bp, err)
	}
	switch bNum {
	case 0:
		p.Stranger = StrangerNone
	case 1:
		p.Stranger = Periodic
	case 2:
		p.Stranger = WhenNeeded
	case 3:
		p.Stranger = DefectStrangers
	default:
		return p, fmt.Errorf("design: unknown stranger code B%d", bNum)
	}
	if p.H, err = strconv.Atoi(bp[hIdx+1:]); err != nil {
		return p, fmt.Errorf("design: malformed h in %q: %v", bp, err)
	}
	// Candidate part.
	switch parts[1] {
	case "C1":
		p.Candidate = TFT
	case "C2":
		p.Candidate = TF2T
	default:
		return p, fmt.Errorf("design: unknown candidate code %q", parts[1])
	}
	// Ranking part: I<n>k<k>.
	ip := parts[2]
	kIdx := strings.IndexByte(ip, 'k')
	if !strings.HasPrefix(ip, "I") || kIdx < 0 {
		return p, fmt.Errorf("design: malformed ranking code %q", ip)
	}
	iNum, err := strconv.Atoi(ip[1:kIdx])
	if err != nil || iNum < 1 || iNum > 6 {
		return p, fmt.Errorf("design: unknown ranking code %q", ip)
	}
	p.Ranking = RankingKind(iNum - 1)
	if p.K, err = strconv.Atoi(ip[kIdx+1:]); err != nil {
		return p, fmt.Errorf("design: malformed k in %q: %v", ip, err)
	}
	// Allocation part.
	switch parts[3] {
	case "R1":
		p.Allocation = EqualSplit
	case "R2":
		p.Allocation = PropShare
	case "R3":
		p.Allocation = Freeride
	default:
		return p, fmt.Errorf("design: unknown allocation code %q", parts[3])
	}
	if err := p.Validate(); err != nil {
		return p, err
	}
	return p, nil
}
