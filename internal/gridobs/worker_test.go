package gridobs

import (
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestWorkerMetricsExposition(t *testing.T) {
	m := NewWorkerMetrics(nil)
	m.ObserveLease(4)
	m.ObserveTask("performance", 120*time.Millisecond, 6, 2)
	m.ObserveTask("robustness", 40*time.Millisecond, 0, 8)
	m.ObserveUpload(0)
	m.ObserveUpload(2)
	m.ObserveLeasesLost(1)

	rr := httptest.NewRecorder()
	m.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rr.Header().Get("Content-Type"); ct != TextContentType {
		t.Errorf("content type = %q", ct)
	}
	text := rr.Body.String()
	for _, want := range []string{
		"worker_tasks_total 2",
		"worker_points_simulated_total 6",
		"worker_points_cache_served_total 10",
		"worker_lease_requests_total 1",
		"worker_leased_tasks_total 4",
		"worker_uploads_total 2",
		"worker_upload_retries_total 2",
		"worker_leases_lost_total 1",
		`worker_task_seconds_count{measure="performance"} 1`,
		`worker_task_seconds_count{measure="robustness"} 1`,
		"worker_uptime_seconds",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
}
