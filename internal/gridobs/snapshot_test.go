package gridobs

import (
	"reflect"
	"testing"
	"time"
)

func TestHistogramSnapshotLoadRoundtrip(t *testing.T) {
	reg := NewRegistry()
	src := reg.NewHistogram("src_seconds", "", DefBuckets)
	for _, v := range []float64{0.002, 0.002, 0.03, 0.7, 12} {
		src.Observe(v)
	}
	snap := src.Snapshot()
	if snap.Count != 5 {
		t.Fatalf("snapshot count = %d, want 5", snap.Count)
	}
	if snap.Sum != 0.002+0.002+0.03+0.7+12 {
		t.Fatalf("snapshot sum = %v", snap.Sum)
	}
	var total uint64
	for _, c := range snap.Counts {
		total += c
	}
	if total != 5 {
		t.Fatalf("bucket counts sum to %d, want 5 (counts must be non-cumulative)", total)
	}

	dst := NewRegistry().NewHistogram("dst_seconds", "", DefBuckets)
	if !dst.Load(snap) {
		t.Fatal("Load rejected a matching snapshot")
	}
	if got := dst.Snapshot(); !reflect.DeepEqual(got.Counts, snap.Counts) || got.Sum != snap.Sum || got.Count != snap.Count {
		t.Fatalf("loaded snapshot = %+v, want %+v", got, snap)
	}

	// Mismatched bucket layout must be refused, not silently mangled.
	other := NewRegistry().NewHistogram("other_seconds", "", []float64{1, 2})
	if other.Load(snap) {
		t.Fatal("Load accepted a snapshot with a different bucket count")
	}
}

func TestHistSnapshotMerge(t *testing.T) {
	reg := NewRegistry()
	a := reg.NewHistogram("a_seconds", "", DefBuckets)
	b := reg.NewHistogram("b_seconds", "", DefBuckets)
	a.Observe(0.002)
	a.Observe(4)
	b.Observe(0.002)
	sa, sb := a.Snapshot(), b.Snapshot()

	m := sa.Merge(sb)
	if m.Count != 3 || m.Sum != 4.004 {
		t.Fatalf("merge count/sum = %d/%v, want 3/4.004", m.Count, m.Sum)
	}
	var total uint64
	for _, c := range m.Counts {
		total += c
	}
	if total != 3 {
		t.Fatalf("merged bucket counts sum to %d, want 3", total)
	}

	// A zero receiver adopts the argument (the fleet-accumulator case).
	if got := (HistSnapshot{}).Merge(sb); !reflect.DeepEqual(got, sb) {
		t.Fatalf("zero.Merge = %+v, want %+v", got, sb)
	}
	// Mismatched layouts keep the receiver.
	odd := HistSnapshot{Counts: []uint64{1}, Count: 1, Sum: 9}
	if got := sa.Merge(odd); !reflect.DeepEqual(got.Counts, sa.Counts) || got.Count != sa.Count {
		t.Fatalf("mismatched merge mutated the receiver: %+v", got)
	}
}

func TestHistogramVecEachAndReset(t *testing.T) {
	reg := NewRegistry()
	vec := reg.NewHistogramVec("task_seconds", "", DefBuckets, "measure")
	vec.With("robustness").Observe(1)
	vec.With("performance").Observe(2)

	var seen []string
	vec.Each(func(values []string, h *Histogram) {
		seen = append(seen, values[0])
		if h.Count() != 1 {
			t.Errorf("child %q count = %d, want 1", values[0], h.Count())
		}
	})
	if want := []string{"performance", "robustness"}; !reflect.DeepEqual(seen, want) {
		t.Fatalf("Each order = %v, want %v (sorted by label)", seen, want)
	}

	vec.Reset()
	seen = nil
	vec.Each(func(values []string, h *Histogram) { seen = append(seen, values[0]) })
	if len(seen) != 0 {
		t.Fatalf("children survive Reset: %v", seen)
	}
}

func TestWorkerMetricsSnapshot(t *testing.T) {
	var nilMetrics *WorkerMetrics
	if nilMetrics.Snapshot() != nil {
		t.Fatal("nil WorkerMetrics must snapshot to nil")
	}

	m := NewWorkerMetrics(nil)
	m.ObserveLease(4)
	m.ObserveTask("performance", 120*time.Millisecond, 6, 2)
	m.ObserveTask("robustness", 40*time.Millisecond, 0, 8)
	m.ObserveUpload(2)
	m.ObserveLeasesLost(1)

	s := m.Snapshot()
	if s.Tasks != 2 || s.PointsSimulated != 6 || s.PointsCached != 10 {
		t.Fatalf("task counters = %+v", s)
	}
	if s.Leases != 1 || s.LeasedTasks != 4 || s.Uploads != 1 || s.UploadRetries != 2 || s.LeasesLost != 1 {
		t.Fatalf("lease/upload counters = %+v", s)
	}
	if len(s.TaskSeconds) != 2 {
		t.Fatalf("task_seconds has %d measures, want 2", len(s.TaskSeconds))
	}
	if hs := s.TaskSeconds["performance"]; hs.Count != 1 || hs.Sum != 0.12 {
		t.Fatalf("performance snapshot = %+v", hs)
	}
	if hs := s.TaskSeconds["robustness"]; hs.Count != 1 {
		t.Fatalf("robustness snapshot = %+v", hs)
	}
}
