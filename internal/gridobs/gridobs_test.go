package gridobs

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func gather(r *Registry) string {
	var b strings.Builder
	r.WritePrometheus(&b)
	return b.String()
}

func TestCounterGaugeExposition(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("grid_ingests_total", "Results ingested.")
	c.Inc()
	c.Add(2)
	c.Add(-5) // ignored: counters only go up
	g := r.NewGauge("grid_queue_depth", "Pending tasks.")
	g.Set(7)
	g.Dec()
	v := r.NewCounterVec("grid_http_requests_total", "Requests by code.", "code")
	v.With("200").Add(3)
	v.With("404").Inc()

	out := gather(r)
	for _, want := range []string{
		"# TYPE grid_ingests_total counter",
		"grid_ingests_total 3",
		"# HELP grid_queue_depth Pending tasks.",
		"grid_queue_depth 6",
		`grid_http_requests_total{code="200"} 3`,
		`grid_http_requests_total{code="404"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Families must be sorted by name for scraper-friendly diffs.
	if strings.Index(out, "grid_http_requests_total") > strings.Index(out, "grid_ingests_total") {
		t.Errorf("families not sorted by name:\n%s", out)
	}
}

func TestHistogramExposition(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("grid_lease_latency_seconds", "Lease to ingest.", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	out := gather(r)
	for _, want := range []string{
		"# TYPE grid_lease_latency_seconds histogram",
		`grid_lease_latency_seconds_bucket{le="0.1"} 1`,
		`grid_lease_latency_seconds_bucket{le="1"} 3`,
		`grid_lease_latency_seconds_bucket{le="10"} 4`,
		`grid_lease_latency_seconds_bucket{le="+Inf"} 5`,
		"grid_lease_latency_seconds_sum 56.05",
		"grid_lease_latency_seconds_count 5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if h.Count() != 5 {
		t.Errorf("Count = %d, want 5", h.Count())
	}
}

func TestGaugeFuncAndCollectHook(t *testing.T) {
	r := NewRegistry()
	r.NewGaugeFunc("grid_live", "Live value.", func() float64 { return 42 })
	depth := r.NewGaugeVec("grid_depth", "Per job.", "job")
	calls := 0
	r.OnCollect(func() {
		calls++
		depth.Reset()
		depth.With("j1").Set(float64(calls))
	})
	out := gather(r)
	if !strings.Contains(out, "grid_live 42") {
		t.Errorf("GaugeFunc value missing:\n%s", out)
	}
	if !strings.Contains(out, `grid_depth{job="j1"} 1`) {
		t.Errorf("collect hook did not run before exposition:\n%s", out)
	}
	out = gather(r)
	if !strings.Contains(out, `grid_depth{job="j1"} 2`) || calls != 2 {
		t.Errorf("collect hook should run once per scrape (calls=%d):\n%s", calls, out)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.NewGaugeVec("g", "h", "name").With(`a"b\c` + "\nd").Set(1)
	out := gather(r)
	if !strings.Contains(out, `g{name="a\"b\\c\nd"} 1`) {
		t.Errorf("label not escaped:\n%s", out)
	}
}

// TestMetricsRace hammers every type concurrently; run with -race.
func TestMetricsRace(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("c", "")
	g := r.NewGauge("g", "")
	hv := r.NewHistogramVec("h", "", nil, "w")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for k := 0; k < 500; k++ {
				c.Inc()
				g.Add(1)
				hv.With([]string{"a", "b"}[i%2]).Observe(float64(k))
				if k%100 == 0 {
					gather(r)
				}
			}
		}(i)
	}
	wg.Wait()
	if c.Value() != 4000 {
		t.Errorf("counter lost updates: %v", c.Value())
	}
	if g.Value() != 4000 {
		t.Errorf("gauge lost updates: %v", g.Value())
	}
}

func TestLimiter(t *testing.T) {
	l := NewLimiter(1, 3) // 1 token/s, burst 3
	now := time.Unix(1000, 0)
	l.SetClock(func() time.Time { return now })

	for i := 0; i < 3; i++ {
		if !l.Allow("a") {
			t.Fatalf("burst request %d should be admitted", i)
		}
	}
	if l.Allow("a") {
		t.Fatal("4th immediate request should be limited")
	}
	if ra := l.RetryAfter("a"); ra <= 0 || ra > time.Second {
		t.Fatalf("RetryAfter = %v, want (0, 1s]", ra)
	}
	// Other keys are independent.
	if !l.Allow("b") {
		t.Fatal("fresh key must have its own bucket")
	}
	// Refill at 1/s.
	now = now.Add(2 * time.Second)
	if !l.Allow("a") || !l.Allow("a") {
		t.Fatal("2s should refill 2 tokens")
	}
	if l.Allow("a") {
		t.Fatal("3rd request after 2s refill should be limited")
	}
	// Disabled limiter admits everything.
	var nilL *Limiter
	if !nilL.Allow("x") || !NewLimiter(0, 0).Allow("x") {
		t.Fatal("nil/disabled limiter must admit")
	}
}

func TestLimiterPrune(t *testing.T) {
	l := NewLimiter(10, 10)
	now := time.Unix(1000, 0)
	l.SetClock(func() time.Time { return now })
	for i := 0; i < pruneAbove+1; i++ {
		l.Allow(strings.Repeat("k", 1+i%7) + string(rune('a'+i%26)) + time.Duration(i).String())
	}
	now = now.Add(time.Hour)
	l.Allow("trigger") // table over threshold + everyone idle => prune
	l.mu.Lock()
	n := len(l.buckets)
	l.mu.Unlock()
	if n > 2 {
		t.Fatalf("idle buckets survived the prune: %d left", n)
	}
}

func TestInstrument(t *testing.T) {
	var got AccessInfo
	h := Instrument(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if RequestID(r.Context()) == "" {
			t.Error("request ID missing from context")
		}
		w.WriteHeader(http.StatusTeapot)
		w.Write([]byte("short and stout"))
	}), func(ai AccessInfo) { got = ai })

	// Generated ID: present in context, echoed on the response.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/jobs", nil))
	if rec.Header().Get(RequestIDHeader) == "" {
		t.Fatal("response missing generated X-Request-ID")
	}
	if got.Status != http.StatusTeapot || got.Bytes != 15 || got.Path != "/v1/jobs" {
		t.Fatalf("access info = %+v", got)
	}
	if got.RequestID != rec.Header().Get(RequestIDHeader) {
		t.Fatal("logged ID differs from response header")
	}

	// Caller-provided ID propagates.
	rec = httptest.NewRecorder()
	req := httptest.NewRequest("GET", "/", nil)
	req.Header.Set(RequestIDHeader, "caller-chose-this")
	h.ServeHTTP(rec, req)
	if rec.Header().Get(RequestIDHeader) != "caller-chose-this" {
		t.Fatal("caller-provided request ID not propagated")
	}

	// Absurdly long inbound IDs are replaced, not echoed.
	rec = httptest.NewRecorder()
	req = httptest.NewRequest("GET", "/", nil)
	req.Header.Set(RequestIDHeader, strings.Repeat("x", 500))
	h.ServeHTTP(rec, req)
	if id := rec.Header().Get(RequestIDHeader); len(id) > 64 {
		t.Fatalf("oversized inbound ID echoed back (%d bytes)", len(id))
	}
}
