package gridobs

import (
	"net/http"
	"time"
)

// WorkerMetrics is the worker-side metrics surface, served on
// `dsa-grid work -metrics-addr`: task throughput, simulated vs
// cache-served points, per-measure score latency and upload retries —
// the counters that say whether a worker is compute-bound, cache-fed
// or fighting its coordinator. All methods are safe on a nil receiver
// (a worker without -metrics-addr passes nil everywhere).
type WorkerMetrics struct {
	reg *Registry

	tasks           *Counter
	taskSeconds     *HistogramVec
	pointsSimulated *Counter
	pointsCached    *Counter
	leases          *Counter
	leasedTasks     *Counter
	uploads         *Counter
	uploadRetries   *Counter
	leasesLost      *Counter
}

// NewWorkerMetrics registers the worker metric family on r (a fresh
// registry if nil) and returns the typed handle the worker records
// through.
func NewWorkerMetrics(r *Registry) *WorkerMetrics {
	if r == nil {
		r = NewRegistry()
	}
	m := &WorkerMetrics{
		reg: r,
		tasks: r.NewCounter("worker_tasks_total",
			"Tasks computed by this worker."),
		taskSeconds: r.NewHistogramVec("worker_task_seconds",
			"Task compute latency by measure (cache lookups + simulation).",
			nil, "measure"),
		pointsSimulated: r.NewCounter("worker_points_simulated_total",
			"Design points actually simulated (score-cache misses)."),
		pointsCached: r.NewCounter("worker_points_cache_served_total",
			"Design points served from the score cache."),
		leases: r.NewCounter("worker_lease_requests_total",
			"Lease requests issued to the coordinator."),
		leasedTasks: r.NewCounter("worker_leased_tasks_total",
			"Tasks granted across all lease responses."),
		uploads: r.NewCounter("worker_uploads_total",
			"Result uploads acknowledged by the coordinator."),
		uploadRetries: r.NewCounter("worker_upload_retries_total",
			"Upload HTTP attempts beyond each call's first."),
		leasesLost: r.NewCounter("worker_leases_lost_total",
			"Leases reported lost by heartbeat (expired or re-leased)."),
	}
	start := time.Now()
	r.NewGaugeFunc("worker_uptime_seconds",
		"Seconds since this worker process started.",
		func() float64 { return time.Since(start).Seconds() })
	return m
}

// ObserveLease counts one lease round trip and the tasks it granted.
func (m *WorkerMetrics) ObserveLease(granted int) {
	if m == nil {
		return
	}
	m.leases.Inc()
	m.leasedTasks.Add(float64(granted))
}

// ObserveTask records one computed task: latency under its measure
// plus the simulated/cache-served point split.
func (m *WorkerMetrics) ObserveTask(measure string, elapsed time.Duration, simulated, cached int) {
	if m == nil {
		return
	}
	m.tasks.Inc()
	m.taskSeconds.With(measure).Observe(elapsed.Seconds())
	m.pointsSimulated.Add(float64(simulated))
	m.pointsCached.Add(float64(cached))
}

// ObserveUpload counts one acknowledged upload and the retries it cost.
func (m *WorkerMetrics) ObserveUpload(retries int) {
	if m == nil {
		return
	}
	m.uploads.Inc()
	if retries > 0 {
		m.uploadRetries.Add(float64(retries))
	}
}

// ObserveLeasesLost counts leases the coordinator reported lost.
func (m *WorkerMetrics) ObserveLeasesLost(n int) {
	if m == nil || n <= 0 {
		return
	}
	m.leasesLost.Add(float64(n))
}

// WorkerSnapshot is a point-in-time copy of a worker's counters and
// per-measure latency histograms, shaped for the wire: workers
// piggyback it on trace uploads and the coordinator federates the
// latest snapshot per worker into its own /metrics. Counters are
// cumulative since worker start, so the coordinator re-exposes them
// as per-worker gauges; histograms merge across workers by bucket
// (HistSnapshot.Merge).
type WorkerSnapshot struct {
	Tasks           float64                 `json:"tasks"`
	PointsSimulated float64                 `json:"points_simulated"`
	PointsCached    float64                 `json:"points_cached"`
	Leases          float64                 `json:"leases"`
	LeasedTasks     float64                 `json:"leased_tasks"`
	Uploads         float64                 `json:"uploads"`
	UploadRetries   float64                 `json:"upload_retries"`
	LeasesLost      float64                 `json:"leases_lost"`
	TaskSeconds     map[string]HistSnapshot `json:"task_seconds,omitempty"`
}

// Snapshot copies the current counter values and per-measure latency
// histograms. Returns nil on a nil receiver (a worker running without
// metrics ships trace chunks with no stats attached).
func (m *WorkerMetrics) Snapshot() *WorkerSnapshot {
	if m == nil {
		return nil
	}
	s := &WorkerSnapshot{
		Tasks:           m.tasks.Value(),
		PointsSimulated: m.pointsSimulated.Value(),
		PointsCached:    m.pointsCached.Value(),
		Leases:          m.leases.Value(),
		LeasedTasks:     m.leasedTasks.Value(),
		Uploads:         m.uploads.Value(),
		UploadRetries:   m.uploadRetries.Value(),
		LeasesLost:      m.leasesLost.Value(),
	}
	m.taskSeconds.Each(func(values []string, h *Histogram) {
		if s.TaskSeconds == nil {
			s.TaskSeconds = make(map[string]HistSnapshot)
		}
		s.TaskSeconds[values[0]] = h.Snapshot()
	})
	return s
}

// Registry exposes the underlying registry (for composing extra
// collectors onto the same /metrics).
func (m *WorkerMetrics) Registry() *Registry {
	if m == nil {
		return nil
	}
	return m.reg
}

// Handler serves the registry in Prometheus text format — mount it on
// the worker's -metrics-addr mux.
func (m *WorkerMetrics) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", TextContentType)
		m.reg.WritePrometheus(w)
	})
}
