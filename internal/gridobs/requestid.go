package gridobs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"net/http"
	"time"
)

// RequestIDHeader is the header request IDs travel in, both directions:
// an inbound value is trusted and propagated (so a caller can correlate
// across hops), otherwise a fresh ID is generated. The response always
// carries the header.
const RequestIDHeader = "X-Request-ID"

// RetryAttemptHeader marks client retries: absent on the first attempt
// of a call, "1", "2", … on retries. The ID in RequestIDHeader stays
// constant across one call's attempts, so coordinator logs show a
// retried upload as the same rid with increasing retry marks rather
// than as unrelated requests.
const RetryAttemptHeader = "X-Retry-Attempt"

// NewRequestID returns a fresh 16-hex-char request ID — the same shape
// the Instrument middleware assigns. Exported for clients (the grid
// worker) that generate their own IDs so a call is correlatable on
// both sides of the wire.
func NewRequestID() string { return newRequestID() }

type ctxKey int

const requestIDKey ctxKey = 0

// RequestID returns the request ID threaded through ctx by the
// Instrument middleware, or "" outside one.
func RequestID(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey).(string)
	return id
}

// WithRequestID returns ctx carrying the given request ID — for tests
// and non-HTTP callers that want their log lines correlated too.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, requestIDKey, id)
}

// newRequestID returns 8 random bytes as hex. crypto/rand never fails
// on the platforms we run on; on the impossible path the constant at
// least stays greppable.
func newRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "rand-unavailable"
	}
	return hex.EncodeToString(b[:])
}

// statusWriter records the status code and bytes written so the access
// log and metrics can see them. It deliberately does not implement
// http.Flusher pass-through implicitly — Flush is forwarded when the
// underlying writer supports it, which the NDJSON progress stream needs.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// AccessInfo describes one completed request for the access logger.
type AccessInfo struct {
	RequestID string
	Method    string
	Path      string
	Remote    string
	Status    int
	Bytes     int64
	Elapsed   time.Duration
}

// Instrument wraps next with request-ID injection and per-request
// accounting: the ID is read from (or added to) RequestIDHeader, set
// on the response, threaded through the request context, and onDone
// (if non-nil) receives one AccessInfo per completed request — the
// structured access log.
func Instrument(next http.Handler, onDone func(AccessInfo)) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get(RequestIDHeader)
		if id == "" || len(id) > 64 {
			id = newRequestID()
		}
		w.Header().Set(RequestIDHeader, id)
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		next.ServeHTTP(sw, r.WithContext(WithRequestID(r.Context(), id)))
		if onDone != nil {
			status := sw.status
			if status == 0 {
				status = http.StatusOK
			}
			onDone(AccessInfo{
				RequestID: id,
				Method:    r.Method,
				Path:      r.URL.Path,
				Remote:    r.RemoteAddr,
				Status:    status,
				Bytes:     sw.bytes,
				Elapsed:   time.Since(start),
			})
		}
	})
}
