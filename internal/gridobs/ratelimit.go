package gridobs

import (
	"sync"
	"time"
)

// Limiter is a per-key token-bucket rate limiter: each key (a client
// IP, a worker name) gets its own bucket refilled at Rate tokens per
// second up to Burst. Allow is O(1) and safe for concurrent use.
//
// Buckets are pruned lazily: once the table crosses a size threshold,
// any bucket that has been idle long enough to be full again is
// dropped — dropping a full bucket is behavior-neutral, so the table
// stays bounded by the number of concurrently-active clients without
// a background goroutine.
type Limiter struct {
	rate  float64 // tokens per second
	burst float64 // bucket capacity (and initial fill)
	now   func() time.Time

	mu      sync.Mutex
	buckets map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

// pruneAbove is the table size that triggers a lazy prune pass.
const pruneAbove = 1024

// NewLimiter returns a limiter granting rate tokens/second with the
// given burst capacity. rate <= 0 disables limiting (Allow always
// true). burst <= 0 defaults to max(rate, 1) — one second of traffic.
func NewLimiter(rate, burst float64) *Limiter {
	if burst <= 0 {
		burst = rate
		if burst < 1 {
			burst = 1
		}
	}
	return &Limiter{rate: rate, burst: burst, now: time.Now, buckets: map[string]*bucket{}}
}

// SetClock injects a clock, for tests.
func (l *Limiter) SetClock(now func() time.Time) { l.now = now }

// Enabled reports whether the limiter actually limits.
func (l *Limiter) Enabled() bool { return l != nil && l.rate > 0 }

// Allow consumes one token from key's bucket, reporting whether the
// request is admitted. A nil or disabled limiter admits everything.
func (l *Limiter) Allow(key string) bool {
	if !l.Enabled() {
		return true
	}
	now := l.now()
	l.mu.Lock()
	defer l.mu.Unlock()
	b, ok := l.buckets[key]
	if !ok {
		if len(l.buckets) > pruneAbove {
			l.pruneLocked(now)
		}
		b = &bucket{tokens: l.burst, last: now}
		l.buckets[key] = b
	} else {
		b.tokens += now.Sub(b.last).Seconds() * l.rate
		if b.tokens > l.burst {
			b.tokens = l.burst
		}
		b.last = now
	}
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// RetryAfter estimates how long key must wait before a request would
// be admitted — the Retry-After hint on 429 responses.
func (l *Limiter) RetryAfter(key string) time.Duration {
	if !l.Enabled() {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	b, ok := l.buckets[key]
	if !ok || b.tokens >= 1 {
		return 0
	}
	return time.Duration((1 - b.tokens) / l.rate * float64(time.Second))
}

// pruneLocked drops buckets idle long enough to have refilled — their
// absence is indistinguishable from their presence.
func (l *Limiter) pruneLocked(now time.Time) {
	fullAfter := time.Duration(l.burst / l.rate * float64(time.Second))
	for k, b := range l.buckets {
		if now.Sub(b.last) > fullAfter {
			delete(l.buckets, k)
		}
	}
}
