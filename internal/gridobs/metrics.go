// Package gridobs is the grid's observability layer: a dependency-free
// metrics registry with Prometheus text-format exposition, request-ID
// middleware for structured HTTP logging, and a token-bucket rate
// limiter for per-client admission control.
//
// The registry deliberately implements the small subset of the
// Prometheus data model the grid needs — counters, gauges, histograms,
// with optional label vectors — rather than pulling in a client
// library: every type is race-safe, allocation happens only at
// registration or first label use, and WritePrometheus renders the
// standard text format (version 0.0.4) that any Prometheus-compatible
// scraper ingests.
package gridobs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry holds metric families and renders them in Prometheus text
// format. The zero value is not usable; call NewRegistry.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string // registration order; exposition sorts anyway
	hooks    []func()
}

type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "untyped"
}

// family is one named metric family: a help string, a type, optional
// label names, and one child per distinct label-value tuple (the empty
// tuple for unlabeled metrics).
type family struct {
	name   string
	help   string
	kind   metricKind
	labels []string

	mu       sync.Mutex
	children map[string]child // key = joined label values
	fn       func() float64   // GaugeFunc only
	buckets  []float64        // histograms only
}

type child interface {
	// write appends this child's sample lines.
	write(w io.Writer, fam *family, labelValues []string)
	labelVals() []string
}

// register adds (or finds) a family, enforcing one kind per name.
func (r *Registry) register(name, help string, kind metricKind, labels []string) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != kind {
			panic(fmt.Sprintf("gridobs: metric %q re-registered as %s (was %s)", name, kind, f.kind))
		}
		return f
	}
	f := &family{name: name, help: help, kind: kind, labels: labels, children: map[string]child{}}
	r.families[name] = f
	r.order = append(r.order, name)
	return f
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// OnCollect registers a hook run at the top of every WritePrometheus
// call (and Gather), outside the registry lock. Use it to refresh
// gauges that mirror external state — queue depths, liveness — so a
// scrape always sees current values without a background updater.
func (r *Registry) OnCollect(fn func()) {
	r.mu.Lock()
	r.hooks = append(r.hooks, fn)
	r.mu.Unlock()
}

// --- Counter ---

// Counter is a monotonically increasing float64. All methods are safe
// for concurrent use.
type Counter struct {
	bits atomic.Uint64
	vals []string
}

func (c *Counter) labelVals() []string { return c.vals }

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add adds v; negative deltas are ignored (counters only go up).
func (c *Counter) Add(v float64) {
	if v < 0 {
		return
	}
	for {
		old := c.bits.Load()
		if c.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Value returns the current count.
func (c *Counter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

func (c *Counter) write(w io.Writer, fam *family, _ []string) {
	fmt.Fprintf(w, "%s%s %s\n", fam.name, formatLabels(fam.labels, c.vals), formatFloat(c.Value()))
}

// NewCounter registers (or returns the existing) unlabeled counter.
func (r *Registry) NewCounter(name, help string) *Counter {
	return r.NewCounterVec(name, help).With()
}

// CounterVec is a counter family keyed by label values.
type CounterVec struct{ fam *family }

// NewCounterVec registers a counter family with the given label names.
func (r *Registry) NewCounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{r.register(name, help, kindCounter, labels)}
}

// With returns the counter for the given label values, creating it on
// first use. The number of values must match the registered labels.
func (v *CounterVec) With(values ...string) *Counter {
	v.fam.checkValues(values)
	v.fam.mu.Lock()
	defer v.fam.mu.Unlock()
	key := joinKey(values)
	if c, ok := v.fam.children[key]; ok {
		return c.(*Counter)
	}
	c := &Counter{vals: append([]string(nil), values...)}
	v.fam.children[key] = c
	return c
}

// --- Gauge ---

// Gauge is an arbitrary float64 that can go up and down.
type Gauge struct {
	bits atomic.Uint64
	vals []string
}

func (g *Gauge) labelVals() []string { return g.vals }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds v (which may be negative).
func (g *Gauge) Add(v float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Inc adds 1.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts 1.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

func (g *Gauge) write(w io.Writer, fam *family, _ []string) {
	fmt.Fprintf(w, "%s%s %s\n", fam.name, formatLabels(fam.labels, g.vals), formatFloat(g.Value()))
}

// NewGauge registers (or returns the existing) unlabeled gauge.
func (r *Registry) NewGauge(name, help string) *Gauge {
	return r.NewGaugeVec(name, help).With()
}

// NewGaugeFunc registers a gauge whose value is computed at scrape
// time by fn. It cannot share a name with any other metric.
func (r *Registry) NewGaugeFunc(name, help string, fn func() float64) {
	f := r.register(name, help, kindGauge, nil)
	f.mu.Lock()
	f.fn = fn
	f.mu.Unlock()
}

// GaugeVec is a gauge family keyed by label values.
type GaugeVec struct{ fam *family }

// NewGaugeVec registers a gauge family with the given label names.
func (r *Registry) NewGaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{r.register(name, help, kindGauge, labels)}
}

// With returns the gauge for the given label values, creating it on
// first use.
func (v *GaugeVec) With(values ...string) *Gauge {
	v.fam.checkValues(values)
	v.fam.mu.Lock()
	defer v.fam.mu.Unlock()
	key := joinKey(values)
	if g, ok := v.fam.children[key]; ok {
		return g.(*Gauge)
	}
	g := &Gauge{vals: append([]string(nil), values...)}
	v.fam.children[key] = g
	return g
}

// Reset drops every child, so stale label tuples (a finished job, a
// departed worker) disappear from the exposition. Typically called
// from an OnCollect hook before re-setting the live tuples.
func (v *GaugeVec) Reset() {
	v.fam.mu.Lock()
	v.fam.children = map[string]child{}
	v.fam.mu.Unlock()
}

// --- Histogram ---

// Histogram counts observations into cumulative buckets and tracks
// their sum, the Prometheus classic-histogram shape.
type Histogram struct {
	mu      sync.Mutex
	buckets []float64 // upper bounds, shared read-only with the family
	counts  []uint64  // one per bucket, non-cumulative internally
	sum     float64
	total   uint64
	vals    []string
}

func (h *Histogram) labelVals() []string { return h.vals }

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	h.sum += v
	h.total++
	for i, ub := range h.buckets {
		if v <= ub {
			h.counts[i]++
			break
		}
	}
	h.mu.Unlock()
}

// Count returns the number of observations so far.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.total
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

func (h *Histogram) write(w io.Writer, fam *family, _ []string) {
	h.mu.Lock()
	counts := append([]uint64(nil), h.counts...)
	sum, total := h.sum, h.total
	h.mu.Unlock()
	cum := uint64(0)
	for i, ub := range fam.buckets {
		cum += counts[i]
		fmt.Fprintf(w, "%s_bucket%s %d\n", fam.name,
			formatLabels(append(fam.labels, "le"), append(append([]string(nil), h.vals...), formatFloat(ub))), cum)
	}
	fmt.Fprintf(w, "%s_bucket%s %d\n", fam.name,
		formatLabels(append(fam.labels, "le"), append(append([]string(nil), h.vals...), "+Inf")), total)
	fmt.Fprintf(w, "%s_sum%s %s\n", fam.name, formatLabels(fam.labels, h.vals), formatFloat(sum))
	fmt.Fprintf(w, "%s_count%s %d\n", fam.name, formatLabels(fam.labels, h.vals), total)
}

// NewHistogram registers a histogram with the given bucket upper
// bounds (sorted ascending; the +Inf bucket is implicit).
func (r *Registry) NewHistogram(name, help string, buckets []float64) *Histogram {
	return r.NewHistogramVec(name, help, buckets).With()
}

// HistogramVec is a histogram family keyed by label values.
type HistogramVec struct{ fam *family }

// NewHistogramVec registers a histogram family.
func (r *Registry) NewHistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if len(buckets) == 0 {
		buckets = DefBuckets
	}
	if !sort.Float64sAreSorted(buckets) {
		panic(fmt.Sprintf("gridobs: histogram %q buckets are not sorted", name))
	}
	f := r.register(name, help, kindHistogram, labels)
	f.mu.Lock()
	if f.buckets == nil {
		f.buckets = append([]float64(nil), buckets...)
	}
	f.mu.Unlock()
	return &HistogramVec{f}
}

// With returns the histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	v.fam.checkValues(values)
	v.fam.mu.Lock()
	defer v.fam.mu.Unlock()
	key := joinKey(values)
	if h, ok := v.fam.children[key]; ok {
		return h.(*Histogram)
	}
	h := &Histogram{
		buckets: v.fam.buckets,
		counts:  make([]uint64, len(v.fam.buckets)),
		vals:    append([]string(nil), values...),
	}
	v.fam.children[key] = h
	return h
}

// HistSnapshot is a point-in-time, mergeable copy of one histogram's
// state, shaped for the wire: per-bucket (non-cumulative) counts
// aligned with the bucket upper bounds, plus the sum and total count.
// Two snapshots over the same bounds merge by element-wise addition,
// which is exactly how Prometheus histograms federate.
type HistSnapshot struct {
	Buckets []float64 `json:"buckets,omitempty"`
	Counts  []uint64  `json:"counts,omitempty"`
	Sum     float64   `json:"sum"`
	Count   uint64    `json:"count"`
}

// Merge returns the element-wise sum of two snapshots. A zero-valued
// receiver adopts o; mismatched bucket layouts keep the receiver
// unchanged (there is no meaningful sum across different bounds).
func (s HistSnapshot) Merge(o HistSnapshot) HistSnapshot {
	if len(s.Counts) == 0 && s.Count == 0 {
		return o
	}
	if len(o.Counts) != len(s.Counts) {
		return s
	}
	out := HistSnapshot{
		Buckets: s.Buckets,
		Counts:  append([]uint64(nil), s.Counts...),
		Sum:     s.Sum + o.Sum,
		Count:   s.Count + o.Count,
	}
	for i, c := range o.Counts {
		out.Counts[i] += c
	}
	return out
}

// Snapshot copies the histogram's current state.
func (h *Histogram) Snapshot() HistSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	return HistSnapshot{
		Buckets: h.buckets, // shared read-only with the family
		Counts:  append([]uint64(nil), h.counts...),
		Sum:     h.sum,
		Count:   h.total,
	}
}

// Load overwrites the histogram's state from a snapshot, the
// receiving half of metric federation: a collector re-exposes a
// remote histogram by loading its latest snapshot. Returns false
// (leaving the histogram unchanged) when the snapshot's bucket count
// does not match this histogram's.
func (h *Histogram) Load(s HistSnapshot) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(s.Counts) != len(h.counts) {
		return false
	}
	copy(h.counts, s.Counts)
	h.sum = s.Sum
	h.total = s.Count
	return true
}

// Each calls fn for every child histogram, with its label values.
func (v *HistogramVec) Each(fn func(values []string, h *Histogram)) {
	v.fam.mu.Lock()
	kids := make([]*Histogram, 0, len(v.fam.children))
	for _, c := range v.fam.children {
		kids = append(kids, c.(*Histogram))
	}
	v.fam.mu.Unlock()
	sort.Slice(kids, func(i, j int) bool { return joinKey(kids[i].vals) < joinKey(kids[j].vals) })
	for _, h := range kids {
		fn(h.vals, h)
	}
}

// Reset drops every child histogram, so stale label tuples disappear
// from the exposition before a collect hook re-loads the live ones.
func (v *HistogramVec) Reset() {
	v.fam.mu.Lock()
	v.fam.children = map[string]child{}
	v.fam.mu.Unlock()
}

// DefBuckets are latency-shaped default buckets in seconds, from 1ms
// to ~100s — wide enough for both HTTP handling and task turnaround.
var DefBuckets = []float64{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100}

// --- Exposition ---

// TextContentType is the Content-Type of the Prometheus text format.
const TextContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus runs the collect hooks and renders every family in
// the Prometheus text exposition format, families sorted by name and
// children sorted by label values.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	hooks := append([]func(){}, r.hooks...)
	r.mu.Unlock()
	for _, h := range hooks {
		h()
	}

	r.mu.Lock()
	names := append([]string(nil), r.order...)
	fams := make([]*family, len(names))
	for i, n := range names {
		fams[i] = r.families[n]
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	for _, f := range fams {
		f.mu.Lock()
		kids := make([]child, 0, len(f.children))
		for _, c := range f.children {
			kids = append(kids, c)
		}
		fn := f.fn
		f.mu.Unlock()
		sort.Slice(kids, func(i, j int) bool {
			return joinKey(kids[i].labelVals()) < joinKey(kids[j].labelVals())
		})
		if f.help != "" {
			fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind)
		if fn != nil {
			fmt.Fprintf(w, "%s %s\n", f.name, formatFloat(fn()))
			continue
		}
		for _, c := range kids {
			c.write(w, f, c.labelVals())
		}
	}
}

// --- helpers ---

func (f *family) checkValues(values []string) {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("gridobs: metric %q got %d label values, want %d (%v)",
			f.name, len(values), len(f.labels), f.labels))
	}
}

// joinKey builds a map key from label values; 0x1f never appears in
// sane label values and keeps distinct tuples distinct.
func joinKey(values []string) string { return strings.Join(values, "\x1f") }

func formatLabels(names, values []string) string {
	if len(names) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
