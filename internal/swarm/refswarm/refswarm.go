// Package refswarm is the frozen pre-optimization reference
// implementation of the piece-level swarm simulator (internal/swarm as
// of PR 4). Like internal/cyclesim/refsim it exists for parity (the
// optimized swarm.Run must stay byte-identical to this code — same RNG
// draw order, same float operation order; the golden fixtures are
// generated from it) and as the perf baseline scripts/perf_smoke.sh
// measures against.
//
// DO NOT "fix" or optimise this package. The only edits since the
// freeze are the package clause, the import of the public swarm types
// (Client, Config, Result, TraceSample) and local copies of the three
// unexported helpers those types carried (slots, optimistic, pieces);
// none carry behaviour.
package refswarm

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/bandwidth"
	"repro/internal/swarm"
)

type optimisticMode int

const (
	optimisticAlways optimisticMode = iota
	optimisticWhenNeeded
	optimisticNever
)

// slotsOf mirrors swarm.Client.slots at the freeze point.
func slotsOf(c swarm.Client) int {
	if c == swarm.ClientSortS {
		return 1
	}
	return 3
}

// optimisticOf mirrors swarm.Client.optimistic at the freeze point.
func optimisticOf(c swarm.Client) optimisticMode {
	switch c {
	case swarm.ClientSortS:
		return optimisticNever
	case swarm.ClientLoyal:
		return optimisticWhenNeeded
	default:
		return optimisticAlways
	}
}

func validate(c swarm.Config) error {
	switch {
	case c.FileKiB < 1 || c.PieceKiB < 1:
		return fmt.Errorf("refswarm: file and piece sizes must be positive")
	case c.PieceKiB > c.FileKiB:
		return fmt.Errorf("refswarm: piece larger than file")
	case c.SeedUploadKBps <= 0:
		return fmt.Errorf("refswarm: seeder upload must be positive")
	case c.Seeders < 1:
		return fmt.Errorf("refswarm: need at least one seeder")
	case c.SeederSlots < 1:
		return fmt.Errorf("refswarm: need at least one seeder slot")
	case c.ChokeIntervalS < 1 || c.OptimisticEvery < 1:
		return fmt.Errorf("refswarm: intervals must be positive")
	case c.MaxSeconds < 1:
		return fmt.Errorf("refswarm: MaxSeconds must be positive")
	}
	return nil
}

func pieces(c swarm.Config) int {
	return (c.FileKiB + c.PieceKiB - 1) / c.PieceKiB
}

// peer is one participant (leecher or seeder).
type peer struct {
	client   swarm.Client
	seed     bool
	upKBps   float64
	downKBps float64
	have     []bool
	haveCnt  int
	done     bool
	doneAt   int
	unchoked []int
	optIdx   int

	partial       []float64
	assigned      []int
	rate          []float64
	gotThisPeriod []float64
	streak        []int
}

// Run is the frozen reference swarm.Run.
func Run(clients []swarm.Client, cfg swarm.Config) (swarm.Result, error) {
	if err := validate(cfg); err != nil {
		return swarm.Result{}, err
	}
	if len(clients) < 1 {
		return swarm.Result{}, fmt.Errorf("refswarm: need at least one leecher")
	}
	for i, c := range clients {
		if c < 0 || c.String() == fmt.Sprintf("Client(%d)", int(c)) {
			return swarm.Result{}, fmt.Errorf("refswarm: leecher %d has unknown client %d", i, int(c))
		}
	}
	s := newState(clients, cfg)
	traceEvery := cfg.TraceEvery
	if traceEvery <= 0 {
		traceEvery = 10
	}
	for sec := 0; sec < cfg.MaxSeconds; sec++ {
		if sec%cfg.ChokeIntervalS == 0 {
			s.rechoke(sec / cfg.ChokeIntervalS)
		}
		edgesBefore := s.activeEdges
		s.transfer(sec)
		if cfg.Trace != nil && sec%traceEvery == 0 {
			var have, alive float64
			for i := 0; i < s.nLeech; i++ {
				if !s.peers[i].done {
					have += float64(s.peers[i].haveCnt)
					alive++
				}
			}
			if alive > 0 {
				have /= alive
			}
			cfg.Trace(swarm.TraceSample{
				Sec: sec, Remaining: s.remaining, MeanHave: have,
				ActiveEdges: s.activeEdges - edgesBefore,
				Goodput:     s.goodput, Wasted: s.wasted,
			})
		}
		if s.remaining == 0 {
			break
		}
	}
	res := swarm.Result{Times: make([]float64, len(clients))}
	res.Goodput = s.goodput
	res.Wasted = s.wasted
	if s.seconds > 0 {
		res.MeanActiveEdges = float64(s.activeEdges) / float64(s.seconds)
	}
	for i := range clients {
		if s.peers[i].done {
			res.Times[i] = float64(s.peers[i].doneAt + 1)
		} else {
			res.Times[i] = math.Inf(1)
			res.Censored++
		}
	}
	return res, nil
}

type state struct {
	cfg       swarm.Config
	rng       *rand.Rand
	peers     []*peer
	nLeech    int
	nPieces   int
	avail     []int
	remaining int
	scratch   []int

	goodput     float64
	wasted      float64
	activeEdges int
	seconds     int
	downBudget  []float64
}

func newState(clients []swarm.Client, cfg swarm.Config) *state {
	nL := len(clients)
	n := nL + cfg.Seeders
	nP := pieces(cfg)
	dist := cfg.Dist
	if dist == nil {
		dist = bandwidth.Piatek()
	}
	caps := dist.Stratified(nL)
	s := &state{
		cfg:       cfg,
		rng:       rand.New(rand.NewSource(cfg.Seed)),
		peers:     make([]*peer, n),
		nLeech:    nL,
		nPieces:   nP,
		avail:     make([]int, nP),
		remaining: nL,
	}
	s.downBudget = make([]float64, nL)
	for i := 0; i < n; i++ {
		p := &peer{
			have:          make([]bool, nP),
			partial:       make([]float64, nP),
			assigned:      make([]int, nP),
			rate:          make([]float64, n),
			gotThisPeriod: make([]float64, n),
			streak:        make([]int, n),
			optIdx:        -1,
		}
		for j := range p.assigned {
			p.assigned[j] = -1
		}
		if i < nL {
			p.client = clients[i]
			p.upKBps = caps[i]
			if cfg.DownCapFactor > 0 {
				p.downKBps = cfg.DownCapFactor * caps[i]
				if p.downKBps < cfg.DownFloorKBps {
					p.downKBps = cfg.DownFloorKBps
				}
			}
		} else {
			p.seed = true
			p.upKBps = cfg.SeedUploadKBps
			for j := range p.have {
				p.have[j] = true
			}
			p.haveCnt = nP
		}
		s.peers[i] = p
	}
	for pc := range s.avail {
		s.avail[pc] = cfg.Seeders
	}
	return s
}

func (s *state) interested(a, b int) bool {
	pa, pb := s.peers[a], s.peers[b]
	if pa.done || pb.done {
		return false
	}
	if pb.seed {
		return !pa.done
	}
	for p := 0; p < s.nPieces; p++ {
		if pb.have[p] && !pa.have[p] {
			return true
		}
	}
	return false
}

func (s *state) rechoke(period int) {
	interval := float64(s.cfg.ChokeIntervalS)
	for _, p := range s.peers {
		if p.done {
			continue
		}
		for j := range p.rate {
			obs := p.gotThisPeriod[j] / interval
			if period == 0 {
				p.rate[j] = obs
			} else {
				p.rate[j] = 0.5*p.rate[j] + 0.5*obs
			}
			if p.gotThisPeriod[j] > 0 {
				p.streak[j]++
			} else {
				p.streak[j] = 0
			}
			p.gotThisPeriod[j] = 0
		}
	}
	for i := range s.peers {
		if s.peers[i].done {
			continue
		}
		if s.peers[i].seed {
			s.rechokeSeeder(i)
		} else {
			s.rechokeLeecher(i, period)
		}
	}
}

func (s *state) rechokeSeeder(i int) {
	p := s.peers[i]
	s.scratch = s.scratch[:0]
	for j := 0; j < s.nLeech; j++ {
		if j != i && s.interested(j, i) {
			s.scratch = append(s.scratch, j)
		}
	}
	s.rng.Shuffle(len(s.scratch), func(a, b int) {
		s.scratch[a], s.scratch[b] = s.scratch[b], s.scratch[a]
	})
	k := s.cfg.SeederSlots
	if k > len(s.scratch) {
		k = len(s.scratch)
	}
	p.unchoked = append(p.unchoked[:0], s.scratch[:k]...)
}

func (s *state) rechokeLeecher(i, period int) {
	p := s.peers[i]
	c := p.client
	s.scratch = s.scratch[:0]
	for j := range s.peers {
		if j == i || s.peers[j].done {
			continue
		}
		if s.interested(j, i) {
			s.scratch = append(s.scratch, j)
		}
	}
	cand := s.scratch
	s.rng.Shuffle(len(cand), func(a, b int) { cand[a], cand[b] = cand[b], cand[a] })
	switch c {
	case swarm.ClientBT:
		sort.SliceStable(cand, func(a, b int) bool { return p.rate[cand[a]] > p.rate[cand[b]] })
	case swarm.ClientBirds:
		own := p.upKBps / float64(slotsOf(c))
		sort.SliceStable(cand, func(a, b int) bool {
			return math.Abs(p.rate[cand[a]]-own) < math.Abs(p.rate[cand[b]]-own)
		})
	case swarm.ClientLoyal:
		sort.SliceStable(cand, func(a, b int) bool {
			if p.streak[cand[a]] != p.streak[cand[b]] {
				return p.streak[cand[a]] > p.streak[cand[b]]
			}
			return p.rate[cand[a]] > p.rate[cand[b]]
		})
	case swarm.ClientSortS:
		sort.SliceStable(cand, func(a, b int) bool { return p.rate[cand[a]] < p.rate[cand[b]] })
	case swarm.ClientRandom:
		s.rng.Shuffle(len(cand), func(a, b int) { cand[a], cand[b] = cand[b], cand[a] })
	}
	k := slotsOf(c)
	if k > len(cand) {
		k = len(cand)
	}
	p.unchoked = append(p.unchoked[:0], cand[:k]...)

	mode := optimisticOf(c)
	need := mode == optimisticAlways ||
		(mode == optimisticWhenNeeded && len(p.unchoked) < slotsOf(c))
	if need {
		if period%s.cfg.OptimisticEvery == 0 || p.optIdx < 0 || s.peers[p.optIdx].done {
			p.optIdx = s.pickOptimistic(i)
		}
	} else {
		p.optIdx = -1
	}
	if p.optIdx >= 0 && !contains(p.unchoked, p.optIdx) {
		p.unchoked = append(p.unchoked, p.optIdx)
	}
}

func (s *state) pickOptimistic(i int) int {
	p := s.peers[i]
	var pool []int
	for j := 0; j < s.nLeech; j++ {
		if j == i || s.peers[j].done || contains(p.unchoked, j) {
			continue
		}
		if s.interested(j, i) {
			pool = append(pool, j)
		}
	}
	if len(pool) == 0 {
		return -1
	}
	return pool[s.rng.Intn(len(pool))]
}

func contains(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

func (s *state) transfer(sec int) {
	s.seconds++
	for v := 0; v < s.nLeech; v++ {
		if s.peers[v].downKBps > 0 {
			s.downBudget[v] = s.peers[v].downKBps
		} else {
			s.downBudget[v] = math.Inf(1)
		}
	}
	for v := 0; v < s.nLeech; v++ {
		pv := s.peers[v]
		if pv.done {
			continue
		}
		for p := 0; p < s.nPieces; p++ {
			pv.assigned[p] = -1
		}
	}
	for u := range s.peers {
		up := s.peers[u]
		if up.done || len(up.unchoked) == 0 {
			continue
		}
		s.scratch = s.scratch[:0]
		for _, v := range up.unchoked {
			if s.peers[v].done {
				continue
			}
			if s.pickPiece(v, u) >= 0 {
				s.scratch = append(s.scratch, v)
			}
		}
		if len(s.scratch) == 0 {
			continue
		}
		share := up.upKBps / float64(len(s.scratch))
		s.activeEdges += len(s.scratch)
		for _, v := range s.scratch {
			s.deliver(v, u, share, sec)
		}
	}
}

func (s *state) pickPiece(v, u int) int {
	pv, pu := s.peers[v], s.peers[u]
	for p := 0; p < s.nPieces; p++ {
		if pv.assigned[p] == u && !pv.have[p] {
			return p
		}
	}
	bestPartial, bestAmt := -1, 0.0
	for p := 0; p < s.nPieces; p++ {
		if !pu.have[p] || pv.have[p] || pv.assigned[p] >= 0 {
			continue
		}
		if pv.partial[p] > bestAmt {
			bestPartial, bestAmt = p, pv.partial[p]
		}
	}
	if bestPartial >= 0 {
		pv.assigned[bestPartial] = u
		return bestPartial
	}
	off := s.rng.Intn(s.nPieces)
	best, bestAvail := -1, math.MaxInt32
	for i := 0; i < s.nPieces; i++ {
		p := (off + i) % s.nPieces
		if !pu.have[p] || pv.have[p] || pv.assigned[p] >= 0 {
			continue
		}
		if s.avail[p] < bestAvail {
			best, bestAvail = p, s.avail[p]
		}
	}
	if best >= 0 {
		pv.assigned[best] = u
		return best
	}
	if s.nPieces-pv.haveCnt > endgamePieces {
		return -1
	}
	for i := 0; i < s.nPieces; i++ {
		p := (off + i) % s.nPieces
		if !pu.have[p] || pv.have[p] {
			continue
		}
		if s.avail[p] < bestAvail {
			best, bestAvail = p, s.avail[p]
		}
	}
	return best
}

const endgamePieces = 3

func (s *state) deliver(v, u int, kib float64, sec int) {
	pv := s.peers[v]
	if kib > s.downBudget[v] {
		s.wasted += kib - s.downBudget[v]
		kib = s.downBudget[v]
	}
	s.downBudget[v] -= kib
	for kib > 0 && !pv.done {
		p := s.pickPiece(v, u)
		if p < 0 {
			s.wasted += kib
			return
		}
		needed := float64(s.cfg.PieceKiB) - pv.partial[p]
		take := kib
		if take > needed {
			take = needed
		}
		pv.partial[p] += take
		pv.gotThisPeriod[u] += take
		s.goodput += take
		kib -= take
		if pv.partial[p] >= float64(s.cfg.PieceKiB) {
			pv.have[p] = true
			pv.haveCnt++
			pv.assigned[p] = -1
			s.avail[p]++
			if pv.haveCnt == s.nPieces {
				s.complete(v, sec)
			}
		}
	}
}

func (s *state) complete(v, sec int) {
	pv := s.peers[v]
	pv.done = true
	pv.doneAt = sec
	s.remaining--
	for p := 0; p < s.nPieces; p++ {
		if pv.have[p] {
			s.avail[p]--
		}
	}
}
