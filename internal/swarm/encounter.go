package swarm

import (
	"fmt"

	"repro/internal/stats"
)

// MixPoint is one point of a Figure 9 curve: the average download time
// of each camp at a given composition, with 95% confidence intervals
// over the runs.
type MixPoint struct {
	FracA  float64      // fraction of leechers running client A
	TimeA  stats.MeanCI // camp-A mean download time (seconds)
	TimeB  stats.MeanCI // camp-B mean download time
	CountA int          // leechers running A
}

// EncounterSeries reproduces one Figure 9 panel: client a against
// client b across the composition fractions, runs runs per point (the
// paper uses at least 10), n leechers per swarm. At frac 0 or 1 the
// swarm is homogeneous and only the corresponding camp's time is
// meaningful.
func EncounterSeries(a, b Client, fracs []float64, n, runs int, cfg Config) ([]MixPoint, error) {
	if n < 1 || runs < 1 {
		return nil, fmt.Errorf("swarm: need n >= 1 and runs >= 1")
	}
	out := make([]MixPoint, 0, len(fracs))
	for fi, frac := range fracs {
		if frac < 0 || frac > 1 {
			return nil, fmt.Errorf("swarm: fraction %v outside [0,1]", frac)
		}
		nA := int(frac*float64(n) + 0.5)
		clients := make([]Client, n)
		// Spread A evenly over the (stratified-capacity) index order so
		// camps see the same capacity mix.
		placed := 0
		for i := 0; i < n; i++ {
			if (i+1)*nA/n > placed {
				clients[i] = a
				placed++
			} else {
				clients[i] = b
			}
		}
		var timesA, timesB []float64
		for r := 0; r < runs; r++ {
			runCfg := cfg
			runCfg.Seed = cfg.Seed + int64(1000*fi+r)
			res, err := Run(clients, runCfg)
			if err != nil {
				return nil, err
			}
			if nA > 0 {
				if m := res.CampMean(func(i int) bool { return clients[i] == a }); !isInf(m) {
					timesA = append(timesA, m)
				}
			}
			if nA < n {
				if m := res.CampMean(func(i int) bool { return clients[i] == b }); !isInf(m) {
					timesB = append(timesB, m)
				}
			}
		}
		out = append(out, MixPoint{
			FracA:  frac,
			TimeA:  stats.MeanCI95(timesA),
			TimeB:  stats.MeanCI95(timesB),
			CountA: nA,
		})
	}
	return out, nil
}

// Homogeneous measures the all-same-client swarm of Figure 10: mean
// download time with 95% CI over runs.
func Homogeneous(c Client, n, runs int, cfg Config) (stats.MeanCI, error) {
	clients := make([]Client, n)
	for i := range clients {
		clients[i] = c
	}
	var times []float64
	for r := 0; r < runs; r++ {
		runCfg := cfg
		runCfg.Seed = cfg.Seed + int64(r)
		res, err := Run(clients, runCfg)
		if err != nil {
			return stats.MeanCI{}, err
		}
		if m := res.CampMean(func(int) bool { return true }); !isInf(m) {
			times = append(times, m)
		}
	}
	return stats.MeanCI95(times), nil
}

func isInf(f float64) bool { return f > 1e300 }
