package swarm_test

// Golden-parity suite: proves the optimized swarm.Run is
// byte-identical to the frozen seed implementation (refswarm) across a
// committed matrix of client mixes and configurations, and that
// pooling never leaks state between runs. Fixtures hold exact float64
// bit patterns; regenerate (from refswarm, never from the optimized
// code) with
//
//	go test ./internal/swarm -run TestSwarmGoldenParity -update

import (
	"encoding/json"
	"flag"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/bandwidth"
	"repro/internal/swarm"
	"repro/internal/swarm/refswarm"
)

var update = flag.Bool("update", false, "regenerate golden fixtures from the frozen reference implementation")

const goldenPath = "testdata/golden_swarm.json"

type goldenCase struct {
	Name      string `json:"name"`
	Clients   []int  `json:"clients"`
	FileKiB   int    `json:"fileKiB"`
	PieceKiB  int    `json:"pieceKiB"`
	Seeders   int    `json:"seeders"`
	Seed      int64  `json:"seed"`
	NoDownCap bool   `json:"noDownCap,omitempty"`

	TimesBits []uint64 `json:"timesBits,omitempty"`
	Goodput   uint64   `json:"goodputBits,omitempty"`
	Wasted    uint64   `json:"wastedBits,omitempty"`
	Edges     uint64   `json:"edgesBits,omitempty"`
	Censored  int      `json:"censored"`
}

func goldenCases() []goldenCase {
	uniform := func(c swarm.Client, n int) []int {
		ids := make([]int, n)
		for i := range ids {
			ids[i] = int(c)
		}
		return ids
	}
	all := []swarm.Client{
		swarm.ClientBT, swarm.ClientBirds, swarm.ClientLoyal,
		swarm.ClientSortS, swarm.ClientRandom,
	}
	var cases []goldenCase
	for _, c := range all {
		cases = append(cases, goldenCase{
			Name: "homogeneous/" + c.String(), Clients: uniform(c, 16),
			FileKiB: 1024, PieceKiB: 128, Seeders: 1, Seed: 11,
		})
	}
	mixed := make([]int, 20)
	for i := range mixed {
		mixed[i] = i % len(all)
	}
	cases = append(cases,
		goldenCase{Name: "mixed/all-five", Clients: mixed, FileKiB: 1024, PieceKiB: 128, Seeders: 1, Seed: 12},
		goldenCase{Name: "mixed/two-seeders", Clients: mixed, FileKiB: 2048, PieceKiB: 256, Seeders: 2, Seed: 13},
		goldenCase{Name: "mixed/no-downcap", Clients: mixed, FileKiB: 1024, PieceKiB: 128, Seeders: 1, Seed: 14, NoDownCap: true},
	)
	return cases
}

func (c goldenCase) config() (swarm.Config, []swarm.Client) {
	cfg := swarm.Default()
	cfg.FileKiB = c.FileKiB
	cfg.PieceKiB = c.PieceKiB
	cfg.Seeders = c.Seeders
	cfg.Seed = c.Seed
	if c.NoDownCap {
		cfg.DownCapFactor = 0
	}
	clients := make([]swarm.Client, len(c.Clients))
	for i, id := range c.Clients {
		clients[i] = swarm.Client(id)
	}
	return cfg, clients
}

func toBits(vals []float64) []uint64 {
	out := make([]uint64, len(vals))
	for i, v := range vals {
		out[i] = math.Float64bits(v)
	}
	return out
}

func checkResult(t *testing.T, caseName, impl string, got swarm.Result, g goldenCase) {
	t.Helper()
	if len(got.Times) != len(g.TimesBits) {
		t.Fatalf("%s/%s: %d times, golden has %d", caseName, impl, len(got.Times), len(g.TimesBits))
	}
	for i := range got.Times {
		if math.Float64bits(got.Times[i]) != g.TimesBits[i] {
			t.Errorf("%s/%s: Times[%d] = %v (bits %#x), golden bits %#x — byte-identity broken",
				caseName, impl, i, got.Times[i], math.Float64bits(got.Times[i]), g.TimesBits[i])
			return
		}
	}
	if math.Float64bits(got.Goodput) != g.Goodput || math.Float64bits(got.Wasted) != g.Wasted ||
		math.Float64bits(got.MeanActiveEdges) != g.Edges || got.Censored != g.Censored {
		t.Errorf("%s/%s: aggregates diverged from golden (goodput %v wasted %v edges %v censored %d)",
			caseName, impl, got.Goodput, got.Wasted, got.MeanActiveEdges, got.Censored)
	}
}

// TestSwarmGoldenParity checks refswarm (freeze guard), the optimized
// Run, and the optimized Run on a shared, already-used Pool against
// the committed bit patterns.
func TestSwarmGoldenParity(t *testing.T) {
	cases := goldenCases()
	if *update {
		for i := range cases {
			cfg, clients := cases[i].config()
			res, err := refswarm.Run(clients, cfg)
			if err != nil {
				t.Fatalf("case %s: %v", cases[i].Name, err)
			}
			cases[i].TimesBits = toBits(res.Times)
			cases[i].Goodput = math.Float64bits(res.Goodput)
			cases[i].Wasted = math.Float64bits(res.Wasted)
			cases[i].Edges = math.Float64bits(res.MeanActiveEdges)
			cases[i].Censored = res.Censored
		}
		buf, err := json.MarshalIndent(cases, "", "\t")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(buf, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d cases)", goldenPath, len(cases))
		return
	}

	buf, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden fixtures (run with -update to generate from refswarm): %v", err)
	}
	var golden []goldenCase
	if err := json.Unmarshal(buf, &golden); err != nil {
		t.Fatal(err)
	}
	byName := make(map[string]goldenCase, len(golden))
	for _, g := range golden {
		byName[g.Name] = g
	}
	pool := &swarm.Pool{} // shared across all cases, absorbing shape changes
	for _, c := range cases {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			g, ok := byName[c.Name]
			if !ok {
				t.Fatalf("case %s missing from golden file; regenerate with -update", c.Name)
			}
			cfg, clients := c.config()

			ref, err := refswarm.Run(clients, cfg)
			if err != nil {
				t.Fatal(err)
			}
			checkResult(t, c.Name, "refswarm", ref, g)

			got, err := swarm.Run(clients, cfg)
			if err != nil {
				t.Fatal(err)
			}
			checkResult(t, c.Name, "optimized", got, g)

			cfg.Pool = pool
			pooled, err := swarm.Run(clients, cfg)
			if err != nil {
				t.Fatal(err)
			}
			checkResult(t, c.Name, "pooled", pooled, g)
		})
	}
}

// TestRandomizedRefswarmParity fuzzes client mixes, swarm shapes and
// capacity distributions against the reference, alternating pooled and
// unpooled runs. Everything must match bit for bit.
func TestRandomizedRefswarmParity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pool := &swarm.Pool{}
	trials := 60
	if testing.Short() {
		trials = 12
	}
	for trial := 0; trial < trials; trial++ {
		n := 4 + rng.Intn(20)
		clients := make([]swarm.Client, n)
		for i := range clients {
			clients[i] = swarm.Client(rng.Intn(5))
		}
		cfg := swarm.Default()
		cfg.FileKiB = []int{512, 1024, 2048}[rng.Intn(3)]
		cfg.PieceKiB = []int{64, 128, 200}[rng.Intn(3)]
		cfg.Seeders = 1 + rng.Intn(2)
		cfg.SeederSlots = 2 + rng.Intn(3)
		cfg.Seed = rng.Int63()
		cfg.MaxSeconds = 400 + rng.Intn(400)
		if rng.Intn(3) == 0 {
			cfg.DownCapFactor = 0
		}
		if rng.Intn(3) == 0 {
			cfg.Dist = bandwidth.Uniform(80)
		}
		ref, err := refswarm.Run(clients, cfg)
		if err != nil {
			t.Fatal(err)
		}
		optCfg := cfg
		if rng.Intn(2) == 0 {
			optCfg.Pool = pool
		}
		got, err := swarm.Run(clients, optCfg)
		if err != nil {
			t.Fatal(err)
		}
		if got.Goodput != ref.Goodput || got.Wasted != ref.Wasted ||
			got.MeanActiveEdges != ref.MeanActiveEdges || got.Censored != ref.Censored {
			t.Fatalf("trial %d: aggregates differ:\nnew %+v\nref %+v\nclients %v", trial, got, ref, clients)
		}
		for i := range ref.Times {
			if got.Times[i] != ref.Times[i] {
				t.Fatalf("trial %d leecher %d: %v vs %v (clients %v)", trial, i, got.Times[i], ref.Times[i], clients)
			}
		}
	}
}
