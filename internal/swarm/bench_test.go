package swarm

import "testing"

// BenchmarkSwarmSecond measures one steady-state simulated second —
// transfer plus the periodic rechoke share — of a busy 50-leecher
// mixed-client swarm: the innermost unit of the Section 5 validation.
// Steady state must allocate nothing (pinned by
// TestTransferLoopAllocFree).
func BenchmarkSwarmSecond(b *testing.B) {
	cfg := Default()
	cfg.FileKiB = 256 * 1024 // large file: the swarm stays busy for the whole measurement
	clients := make([]Client, 50)
	for i := range clients {
		clients[i] = Client(i % int(numClients))
	}
	s := newState(clients, cfg)
	sec := 0
	tick := func() {
		if sec%cfg.ChokeIntervalS == 0 {
			s.rechoke(sec / cfg.ChokeIntervalS)
		}
		s.transfer(sec)
		sec++
	}
	for sec < 60 {
		tick()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tick()
	}
	b.StopTimer()
	if s.remaining == 0 {
		b.Fatal("swarm drained during measurement; enlarge the file")
	}
}

// BenchmarkSwarmRunPooled measures a whole Section 5 run (50 BT
// leechers, 5 MiB file) on a warm pool.
func BenchmarkSwarmRunPooled(b *testing.B) {
	cfg := Default()
	cfg.Pool = &Pool{}
	clients := make([]Client, 50)
	for i := range clients {
		clients[i] = ClientBT
	}
	if _, err := Run(clients, cfg); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i)
		if _, err := Run(clients, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
