//go:build !race

// The race detector's instrumentation allocates, so these exact
// allocation-count pins only run in non-race builds (CI runs both
// modes; the parity suites run under -race as usual).

package swarm

// Steady-state allocation pins for the transfer loop. In-package (they
// drive state.transfer/rechoke directly); the byte-identity parity
// suite lives in parity_test.go in the external test package, because
// refswarm imports this package's types.

import (
	"testing"

	"repro/internal/obs"
)

// TestTransferLoopAllocFree pins the per-second steady state —
// transfer plus the periodic rechoke, i.e. everything inside Run's
// clock loop — at exactly 0 allocations, over a mixed-client swarm so
// every ranking's insertion sort, the optimistic-unchoke scratch and
// the want-list maintenance are all exercised.
func TestTransferLoopAllocFree(t *testing.T) {
	cfg := Default()
	cfg.FileKiB = 64 * 1024 // big enough that the swarm stays busy throughout
	cfg.PieceKiB = 128
	clients := make([]Client, 30)
	for i := range clients {
		clients[i] = Client(i % int(numClients))
	}
	s := newState(clients, cfg)
	sec := 0
	tick := func() {
		if sec%cfg.ChokeIntervalS == 0 {
			s.rechoke(sec / cfg.ChokeIntervalS)
		}
		s.transfer(sec)
		sec++
	}
	for sec < 60 { // warm scratch capacities and rate history
		tick()
	}
	if avg := testing.AllocsPerRun(300, tick); avg != 0 {
		t.Errorf("transfer loop allocates %v objects/second in steady state, want 0", avg)
	}
	if s.remaining == 0 {
		t.Fatal("swarm finished during measurement; enlarge the file so the steady state is real")
	}
}

// TestTransferLoopAllocFreeWithRecorder pins the observability
// contract at the swarm simulator's hot path: the per-second steady
// state stays at 0 allocations with a journaling obs recorder live —
// even journaling a span every simulated second (far finer than
// production, which records at the task level). Tracing a sweep
// cannot regress the PR 5 hot-path guarantees.
func TestTransferLoopAllocFreeWithRecorder(t *testing.T) {
	rec, err := obs.OpenDir(t.TempDir(), "alloc")
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()

	cfg := Default()
	cfg.FileKiB = 64 * 1024
	cfg.PieceKiB = 128
	clients := make([]Client, 30)
	for i := range clients {
		clients[i] = Client(i % int(numClients))
	}
	s := newState(clients, cfg)
	sec := 0
	tick := func() {
		sp := rec.Start(0, "second").Int("sec", int64(sec))
		if sec%cfg.ChokeIntervalS == 0 {
			s.rechoke(sec / cfg.ChokeIntervalS)
		}
		s.transfer(sec)
		sp.End()
		sec++
	}
	for sec < 60 { // steady state for swarm and recorder both
		tick()
	}
	if avg := testing.AllocsPerRun(300, tick); avg != 0 {
		t.Errorf("transfer loop with live recorder allocates %v objects/second, want 0", avg)
	}
	if s.remaining == 0 {
		t.Fatal("swarm finished during measurement; enlarge the file so the steady state is real")
	}
}

// TestPooledRunAllocsSwarm pins a whole pooled Run at the per-run
// result and capacity draws only — the state must come back from the
// pool without slab reallocation.
func TestPooledRunAllocsSwarm(t *testing.T) {
	cfg := Default()
	cfg.FileKiB = 512
	cfg.PieceKiB = 128
	cfg.Pool = &Pool{}
	clients := make([]Client, 12)
	for i := range clients {
		clients[i] = ClientBT
	}
	if _, err := Run(clients, cfg); err != nil { // warm the pool
		t.Fatal(err)
	}
	seed := int64(2)
	avg := testing.AllocsPerRun(30, func() {
		cfg.Seed = seed
		if _, err := Run(clients, cfg); err != nil {
			t.Fatal(err)
		}
		seed++
	})
	// Result.Times plus the stratified capacity draw (one slice in
	// Stratified, one in SampleN) are the only per-run allocations.
	if avg > 4 {
		t.Errorf("pooled Run allocates %v objects/run, want <= 4", avg)
	}
}
