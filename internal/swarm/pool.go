package swarm

import "sync"

// Pool recycles swarm state across runs so a benchmark series' steady
// state allocates nothing per simulation: a finished run's
// O(n·nPieces + n²) bookkeeping slabs are handed to the next run of
// the same shape and revalidated in place (the per-second assignment
// epoch is monotonic across runs, so stale assignment stamps can never
// match — see state.reset). Results are byte-identical with or without
// pooling; the golden-parity suite pins this.
//
// A Pool is safe for concurrent use. The zero value is ready to use.
// Run falls back to a shared package-level Pool when Config.Pool is
// nil, so encounter series and homogeneous sweeps pool by default.
type Pool struct {
	p sync.Pool
}

// defaultPool serves Run calls with no explicit pool.
var defaultPool Pool

// get returns a state ready to simulate clients under cfg: a pooled
// one of the same shape (leecher count, seeder count, piece count)
// when available, a fresh one otherwise.
func (pl *Pool) get(clients []Client, cfg Config) *state {
	if s, _ := pl.p.Get().(*state); s != nil {
		if s.nLeech == len(clients) && len(s.peers) == len(clients)+cfg.Seeders && s.nPieces == cfg.pieces() {
			s.reset(clients, cfg)
			return s
		}
		// Wrong shape: drop it for the GC.
	}
	return newState(clients, cfg)
}

// put returns a state to the pool once its run has been read out. The
// caller's config (which may hold a Trace closure and a Dist) is
// released so pooling cannot pin it.
func (pl *Pool) put(s *state) {
	s.cfg = Config{}
	pl.p.Put(s)
}
