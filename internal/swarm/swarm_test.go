package swarm

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/bandwidth"
)

// fastCfg shrinks the experiment for unit tests: smaller file, fewer
// pieces, generous seeder.
func fastCfg() Config {
	cfg := Default()
	cfg.FileKiB = 1024
	cfg.PieceKiB = 128
	cfg.MaxSeconds = 1800
	return cfg
}

func allBT(n int) []Client {
	cs := make([]Client, n)
	for i := range cs {
		cs[i] = ClientBT
	}
	return cs
}

func TestConfigValidate(t *testing.T) {
	good := Default()
	if err := good.validate(); err != nil {
		t.Fatalf("default invalid: %v", err)
	}
	bad := []func(*Config){
		func(c *Config) { c.FileKiB = 0 },
		func(c *Config) { c.PieceKiB = 0 },
		func(c *Config) { c.PieceKiB = c.FileKiB * 2 },
		func(c *Config) { c.SeedUploadKBps = 0 },
		func(c *Config) { c.Seeders = 0 },
		func(c *Config) { c.SeederSlots = 0 },
		func(c *Config) { c.ChokeIntervalS = 0 },
		func(c *Config) { c.OptimisticEvery = 0 },
		func(c *Config) { c.MaxSeconds = 0 },
	}
	for i, mutate := range bad {
		c := Default()
		mutate(&c)
		if err := c.validate(); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestRunInputValidation(t *testing.T) {
	if _, err := Run(nil, Default()); err == nil {
		t.Error("no leechers should error")
	}
	if _, err := Run([]Client{Client(99)}, Default()); err == nil {
		t.Error("unknown client should error")
	}
}

func TestPiecesRounding(t *testing.T) {
	c := Default()
	c.FileKiB, c.PieceKiB = 1000, 256
	if got := c.pieces(); got != 4 {
		t.Errorf("pieces = %d, want 4 (ceil)", got)
	}
}

func TestClientNames(t *testing.T) {
	want := map[Client]string{
		ClientBT:     "BitTorrent",
		ClientBirds:  "Birds",
		ClientLoyal:  "Loyal-When-needed",
		ClientSortS:  "Sort-S",
		ClientRandom: "Random",
	}
	for c, name := range want {
		if c.String() != name {
			t.Errorf("%d.String() = %q, want %q", int(c), c.String(), name)
		}
	}
	if ClientSortS.slots() != 1 || ClientBT.slots() != 3 {
		t.Error("slot counts wrong")
	}
	if ClientSortS.optimistic() != optimisticNever ||
		ClientLoyal.optimistic() != optimisticWhenNeeded ||
		ClientBT.optimistic() != optimisticAlways {
		t.Error("optimistic modes wrong")
	}
}

func TestAllLeechersComplete(t *testing.T) {
	res, err := Run(allBT(20), fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.Censored != 0 {
		t.Fatalf("censored = %d, want 0", res.Censored)
	}
	for i, tt := range res.Times {
		if math.IsInf(tt, 1) || tt <= 0 {
			t.Errorf("leecher %d time = %v", i, tt)
		}
	}
}

func TestDeterminism(t *testing.T) {
	a, err := Run(allBT(15), fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(allBT(15), fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Times {
		if a.Times[i] != b.Times[i] {
			t.Fatal("same seed must reproduce the run")
		}
	}
	cfg2 := fastCfg()
	cfg2.Seed = 999
	c, err := Run(allBT(15), cfg2)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Times {
		if a.Times[i] != c.Times[i] {
			same = false
		}
	}
	if same {
		t.Error("different seed should change some download times")
	}
}

func TestDownloadTimesPhysicallyPlausible(t *testing.T) {
	// The swarm can never finish faster than the seeder needs to push
	// one full copy of the file into the swarm.
	cfg := fastCfg()
	res, err := Run(allBT(10), cfg)
	if err != nil {
		t.Fatal(err)
	}
	lower := float64(cfg.FileKiB) / cfg.SeedUploadKBps
	last := 0.0
	for _, tt := range res.Times {
		if tt > last {
			last = tt
		}
	}
	if last < lower {
		t.Errorf("swarm finished in %v s, below seeder bound %v s", last, lower)
	}
}

func TestPaperScaleMagnitudes(t *testing.T) {
	// Section 5 setup: 5 MiB file, 128 KiB/s seeder, 50 leechers.
	// Figures 9-10 report average download times of roughly 40-200 s;
	// the simulator should land in that ballpark.
	if testing.Short() {
		t.Skip("paper-scale swarm in -short mode")
	}
	cfg := Default()
	res, err := Run(allBT(50), cfg)
	if err != nil {
		t.Fatal(err)
	}
	mean := res.CampMean(func(int) bool { return true })
	if mean < 30 || mean > 400 {
		t.Errorf("mean download time = %v s, want within [30,400]", mean)
	}
	if res.Censored != 0 {
		t.Errorf("censored = %d", res.Censored)
	}
}

func TestFreeriderLikeSwarmStillFinishes(t *testing.T) {
	// Even an all-Sort-S swarm (single slot, no optimistic unchokes)
	// must complete: the seeder alone guarantees progress.
	res, err := Run([]Client{ClientSortS, ClientSortS, ClientSortS, ClientSortS}, fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.Censored != 0 {
		t.Errorf("censored = %d", res.Censored)
	}
}

func TestMixedSwarm(t *testing.T) {
	clients := []Client{
		ClientBT, ClientBirds, ClientLoyal, ClientSortS, ClientRandom,
		ClientBT, ClientBirds, ClientLoyal, ClientSortS, ClientRandom,
	}
	res, err := Run(clients, fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.Censored != 0 {
		t.Errorf("mixed swarm censored = %d", res.Censored)
	}
}

func TestCampMeanAndTimes(t *testing.T) {
	r := Result{Times: []float64{10, 20, math.Inf(1), 40}}
	even := func(i int) bool { return i%2 == 0 }
	if got := r.CampMean(even); got != 10 {
		t.Errorf("CampMean = %v, want 10 (censored excluded)", got)
	}
	if got := r.CampTimes(even); len(got) != 1 || got[0] != 10 {
		t.Errorf("CampTimes = %v", got)
	}
	if got := r.CampMean(func(i int) bool { return i == 2 }); !math.IsInf(got, 1) {
		t.Errorf("all-censored camp mean = %v, want +Inf", got)
	}
}

func TestEncounterSeriesShape(t *testing.T) {
	cfg := fastCfg()
	pts, err := EncounterSeries(ClientBirds, ClientBT, []float64{0, 0.5, 1}, 12, 2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	if pts[0].CountA != 0 || pts[2].CountA != 12 {
		t.Errorf("camp counts = %d/%d", pts[0].CountA, pts[2].CountA)
	}
	if pts[1].CountA != 6 {
		t.Errorf("50%% camp count = %d", pts[1].CountA)
	}
	// Middle point must report both camps with finite times.
	if pts[1].TimeA.Mean <= 0 || pts[1].TimeB.Mean <= 0 {
		t.Error("mixed point should have finite camp times")
	}
	if pts[1].TimeA.N != 2 {
		t.Errorf("runs aggregated = %d, want 2", pts[1].TimeA.N)
	}
}

func TestEncounterSeriesValidation(t *testing.T) {
	cfg := fastCfg()
	if _, err := EncounterSeries(ClientBT, ClientBirds, []float64{0.5}, 0, 1, cfg); err == nil {
		t.Error("n=0 should error")
	}
	if _, err := EncounterSeries(ClientBT, ClientBirds, []float64{1.5}, 10, 1, cfg); err == nil {
		t.Error("fraction > 1 should error")
	}
}

func TestHomogeneous(t *testing.T) {
	ci, err := Homogeneous(ClientBT, 10, 3, fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if ci.N != 3 || ci.Mean <= 0 {
		t.Errorf("homogeneous CI = %+v", ci)
	}
}

func TestRarestFirstSpreadsPieces(t *testing.T) {
	// With rarest-first, availability across pieces should stay fairly
	// even: after a run no piece should have been systematically
	// neglected (all leechers finished means every piece replicated).
	cfg := fastCfg()
	res, err := Run(allBT(16), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Censored != 0 {
		t.Error("run did not complete")
	}
}

func TestFasterPeersFinishSoonerUnderBT(t *testing.T) {
	// Under the reference client, upload capacity correlates with
	// download time: the reciprocation mechanism rewards fast peers.
	cfg := Default()
	cfg.FileKiB = 2048
	res, err := Run(allBT(30), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Capacities are stratified ascending; compare slowest vs fastest
	// thirds.
	var slow, fast float64
	for i := 0; i < 10; i++ {
		slow += res.Times[i] / 10
		fast += res.Times[29-i] / 10
	}
	if fast >= slow {
		t.Errorf("fast third %v s should finish before slow third %v s", fast, slow)
	}
}

func TestSeederBoundProperty(t *testing.T) {
	// Property: over random small swarms, nobody finishes before the
	// seeder could possibly have delivered a full copy anywhere.
	cfg := fastCfg()
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%8) + 3
		runCfg := cfg
		runCfg.Seed = seed
		res, err := Run(allBT(n), runCfg)
		if err != nil {
			return false
		}
		first := math.Inf(1)
		for _, tt := range res.Times {
			if tt < first {
				first = tt
			}
		}
		// First finisher needs at least FileKiB at the aggregate rate
		// available to it; the loosest bound is file/(seed+total peers'
		// upload), but a simple sanity floor is 1 second.
		return first >= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestUniformDistSwarm(t *testing.T) {
	cfg := fastCfg()
	cfg.Dist = bandwidth.Uniform(100)
	res, err := Run(allBT(10), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Censored != 0 {
		t.Error("uniform swarm should finish")
	}
}
