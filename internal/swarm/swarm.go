// Package swarm is a piece-level BitTorrent swarm simulator — the
// stand-in for the instrumented BitTorrent client on a cluster used to
// validate DSA in Section 5 of the paper (see DESIGN.md for the
// substitution argument).
//
// The simulation is time-stepped at one-second ticks. A swarm consists
// of one or more seeders (upload 128 KiB/s in the paper's setup) and
// leechers with heterogeneous upload capacities downloading a 5 MiB
// file of 256 KiB pieces via a full-mesh overlay (the paper used a
// local tracker with 50 leechers). Every choke interval (10 s) each
// leecher re-evaluates its unchokes: it ranks interested peers with its
// client's ranking policy over observed download rates and unchokes the
// top slots; optimistic unchokes follow the client's stranger policy.
// Piece selection is rarest-first. Peers depart on completion. The
// recorded metric is per-leecher download time, reported with 95%
// confidence intervals as in Figures 9 and 10.
//
// Client variants map the DSA-discovered protocols onto the choke
// algorithm:
//
//   - ClientBT: sort fastest, periodic optimistic unchoke (reference).
//   - ClientBirds: sort by proximity to own per-slot rate (Section 2.3).
//   - ClientLoyal: sort loyal + optimistic unchoke only when slots are
//     empty ("Loyal-When-needed", the Section 5 DSA pick).
//   - ClientSortS: one slot, sort slowest, no optimistic unchoke.
//   - ClientRandom: random ranking, periodic optimistic unchoke.
//
// # Performance model
//
// The transfer loop is engineered to be allocation-free and scan-free
// in steady state, byte-identical to the frozen seed implementation in
// internal/swarm/refswarm (same RNG draw order, same float operation
// order — the golden-parity suite pins it):
//
//   - Piece assignments carry a per-second epoch instead of being
//     reset: the seed's O(nLeech × nPieces) clear at the top of every
//     second is gone, and pooled states stay valid because the epoch
//     counter keeps increasing across runs.
//   - Every leecher keeps an incremental want list (pieces it still
//     lacks, swap-removed on completion), so the piece scans in
//     pickPiece and the interest checks shrink as the download
//     progresses instead of staying O(nPieces). Want-list order never
//     affects results: every selection minimises an explicit
//     (availability, cyclic-offset) or (progress, index) key that
//     reproduces the seed's scan-order tie-breaking exactly.
//   - Each leecher also keeps a per-uploader assignment slot, making
//     the seed's "piece already assigned from this uploader" scan O(1).
//   - The choke rankings run on alloc-free stable insertion sorts
//     (identical output to the seed's sort.SliceStable by stability),
//     and state is pooled across runs (see Pool / Config.Pool).
package swarm

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/bandwidth"
)

// Client identifies a choke-algorithm variant.
type Client int

// The client variants evaluated in Section 5.
const (
	ClientBT Client = iota
	ClientBirds
	ClientLoyal
	ClientSortS
	ClientRandom
	numClients
)

// String returns the client name as used in the paper's figures.
func (c Client) String() string {
	switch c {
	case ClientBT:
		return "BitTorrent"
	case ClientBirds:
		return "Birds"
	case ClientLoyal:
		return "Loyal-When-needed"
	case ClientSortS:
		return "Sort-S"
	case ClientRandom:
		return "Random"
	default:
		return fmt.Sprintf("Client(%d)", int(c))
	}
}

// slots returns the client's regular unchoke slot count.
func (c Client) slots() int {
	if c == ClientSortS {
		return 1
	}
	return 3
}

// optimistic reports whether the client uses periodic optimistic
// unchokes unconditionally (BT-style), only when needed (Loyal), or
// never (Sort-S).
func (c Client) optimistic() optimisticMode {
	switch c {
	case ClientSortS:
		return optimisticNever
	case ClientLoyal:
		return optimisticWhenNeeded
	default:
		return optimisticAlways
	}
}

type optimisticMode int

const (
	optimisticAlways optimisticMode = iota
	optimisticWhenNeeded
	optimisticNever
)

// Config describes a swarm experiment. The zero value is not valid;
// start from Default().
type Config struct {
	FileKiB         int     // file size in KiB (paper: 5 MiB)
	PieceKiB        int     // piece size in KiB
	SeedUploadKBps  float64 // seeder upload capacity (paper: 128)
	Seeders         int     // number of seeders (paper: 1)
	SeederSlots     int     // concurrent seeder unchokes
	ChokeIntervalS  int     // choke re-evaluation period in seconds (10)
	OptimisticEvery int     // optimistic rotation, in choke periods (3)
	MaxSeconds      int     // safety cap per run
	Seed            int64
	// DownCapFactor caps a leecher's download rate at this multiple of
	// its upload capacity (home links are asymmetric; Piatek et al.
	// measured roughly 5×). 0 disables the cap. Download caps stagger
	// completions, which keeps the last pieces replicating after early
	// finishers depart.
	DownCapFactor float64
	// DownFloorKBps is the minimum download capacity applied with
	// DownCapFactor, so the slowest uploaders are not starved beyond
	// realism.
	DownFloorKBps float64
	// Dist supplies leecher upload capacities; nil = Piatek.
	Dist *bandwidth.Distribution
	// Trace, if non-nil, receives a sample every TraceEvery seconds
	// (default 10 when Trace is set) — an observability hook for
	// debugging and for the verbose modes of the benchmark tools.
	Trace      func(TraceSample)
	TraceEvery int
	// Pool, if non-nil, supplies and receives the run's state so
	// repeated runs reuse the O(n·nPieces + n²) bookkeeping slabs. Nil
	// uses a shared package-level pool; pooling never changes results,
	// only allocation behaviour.
	Pool *Pool
}

// TraceSample is a periodic snapshot of swarm state.
type TraceSample struct {
	Sec         int
	Remaining   int     // unfinished leechers
	MeanHave    float64 // mean piece count over unfinished leechers
	ActiveEdges int     // transferring edges this second
	Goodput     float64 // cumulative useful KiB
	Wasted      float64 // cumulative wasted KiB
}

// Default returns the Section 5 experimental setup: 5 MiB file in
// 256 KiB pieces, one 128 KiB/s seeder, 10 s choke interval, 30 s
// optimistic rotation.
func Default() Config {
	return Config{
		FileKiB:         5 * 1024,
		PieceKiB:        256,
		SeedUploadKBps:  128,
		Seeders:         1,
		SeederSlots:     4,
		ChokeIntervalS:  10,
		OptimisticEvery: 3,
		MaxSeconds:      3600,
		Seed:            1,
		DownCapFactor:   5,
		DownFloorKBps:   100,
	}
}

func (c Config) validate() error {
	switch {
	case c.FileKiB < 1 || c.PieceKiB < 1:
		return fmt.Errorf("swarm: file and piece sizes must be positive")
	case c.PieceKiB > c.FileKiB:
		return fmt.Errorf("swarm: piece larger than file")
	case c.SeedUploadKBps <= 0:
		return fmt.Errorf("swarm: seeder upload must be positive")
	case c.Seeders < 1:
		return fmt.Errorf("swarm: need at least one seeder")
	case c.SeederSlots < 1:
		return fmt.Errorf("swarm: need at least one seeder slot")
	case c.ChokeIntervalS < 1 || c.OptimisticEvery < 1:
		return fmt.Errorf("swarm: intervals must be positive")
	case c.MaxSeconds < 1:
		return fmt.Errorf("swarm: MaxSeconds must be positive")
	}
	return nil
}

func (c Config) pieces() int {
	return (c.FileKiB + c.PieceKiB - 1) / c.PieceKiB
}

// Result reports one swarm run.
type Result struct {
	// Times[i] is leecher i's download time in seconds; math.Inf(1) if
	// it did not finish within MaxSeconds (Censored reports how many).
	Times    []float64
	Censored int
	// Goodput is the total KiB of useful piece data delivered.
	Goodput float64
	// Wasted is the total KiB of duplicate endgame bytes discarded.
	Wasted float64
	// MeanActiveEdges is the average number of transferring
	// uploader→downloader edges per second while the swarm ran.
	MeanActiveEdges float64
}

// CampMean returns the mean download time of the leechers whose index
// satisfies the predicate, ignoring censored peers.
func (r Result) CampMean(in func(i int) bool) float64 {
	var s float64
	n := 0
	for i, t := range r.Times {
		if in(i) && !math.IsInf(t, 1) {
			s += t
			n++
		}
	}
	if n == 0 {
		return math.Inf(1)
	}
	return s / float64(n)
}

// CampTimes returns the finite download times of the selected camp.
func (r Result) CampTimes(in func(i int) bool) []float64 {
	var out []float64
	for i, t := range r.Times {
		if in(i) && !math.IsInf(t, 1) {
			out = append(out, t)
		}
	}
	return out
}

// peer is one participant (leecher or seeder).
type peer struct {
	client   Client
	seed     bool
	upKBps   float64
	downKBps float64 // 0 = uncapped
	have     []bool
	haveCnt  int
	done     bool
	doneAt   int
	unchoked []int // peer ids currently unchoked by this peer
	optIdx   int   // current optimistic unchoke target (-1 none)
	// partial[p] = KiB received toward piece p.
	partial []float64
	// assigned[p] = uploader currently serving piece p to us, valid
	// only while assignedAt[p] matches the state's second epoch — the
	// per-second reassignment the seed implemented by clearing the
	// whole array every second.
	assigned   []int32
	assignedAt []int64
	// fromPiece[u] = the piece currently assigned from uploader u
	// (valid under fromAt[u], -1 none): the O(1) form of the seed's
	// "existing assignment first" scan. At most one piece per
	// (downloader, uploader) pair is ever live within a second.
	fromPiece []int32
	fromAt    []int64
	// want lists the pieces this leecher still lacks (swap-removed on
	// completion; order is irrelevant to results — see the package
	// comment); wantPos[p] is p's index in want, -1 once held.
	want    []int32
	wantPos []int32
	// rate[j] = EMA of KiB/s received from j (choke-period granularity).
	rate []float64
	// gotThisPeriod[j] = KiB received from j during the current period.
	gotThisPeriod []float64
	// streak[j] = consecutive choke periods with data from j.
	streak []int
}

// Run simulates one swarm: clients[i] is leecher i's variant. Returns
// per-leecher download times. Seeders are appended internally and not
// reported.
func Run(clients []Client, cfg Config) (Result, error) {
	if err := cfg.validate(); err != nil {
		return Result{}, err
	}
	if len(clients) < 1 {
		return Result{}, fmt.Errorf("swarm: need at least one leecher")
	}
	for i, c := range clients {
		if c < 0 || c >= numClients {
			return Result{}, fmt.Errorf("swarm: leecher %d has unknown client %d", i, int(c))
		}
	}
	pool := cfg.Pool
	if pool == nil {
		pool = &defaultPool
	}
	s := pool.get(clients, cfg)
	traceEvery := cfg.TraceEvery
	if traceEvery <= 0 {
		traceEvery = 10
	}
	for sec := 0; sec < cfg.MaxSeconds; sec++ {
		if sec%cfg.ChokeIntervalS == 0 {
			s.rechoke(sec / cfg.ChokeIntervalS)
		}
		edgesBefore := s.activeEdges
		s.transfer(sec)
		if cfg.Trace != nil && sec%traceEvery == 0 {
			var have, alive float64
			for i := 0; i < s.nLeech; i++ {
				if !s.peers[i].done {
					have += float64(s.peers[i].haveCnt)
					alive++
				}
			}
			if alive > 0 {
				have /= alive
			}
			cfg.Trace(TraceSample{
				Sec: sec, Remaining: s.remaining, MeanHave: have,
				ActiveEdges: s.activeEdges - edgesBefore,
				Goodput:     s.goodput, Wasted: s.wasted,
			})
		}
		if s.remaining == 0 {
			break
		}
	}
	res := Result{Times: make([]float64, len(clients))}
	res.Goodput = s.goodput
	res.Wasted = s.wasted
	if s.seconds > 0 {
		res.MeanActiveEdges = float64(s.activeEdges) / float64(s.seconds)
	}
	for i := range clients {
		if s.peers[i].done {
			res.Times[i] = float64(s.peers[i].doneAt + 1)
		} else {
			res.Times[i] = math.Inf(1)
			res.Censored++
		}
	}
	pool.put(s)
	return res, nil
}

type state struct {
	cfg       Config
	rng       *rand.Rand
	peers     []*peer
	nLeech    int
	nPieces   int
	avail     []int // availability count per piece (present peers)
	remaining int   // unfinished leechers
	scratch   []int
	scratch2  []int // pickOptimistic's pool (the seed allocated it per call)

	goodput     float64
	wasted      float64
	activeEdges int
	seconds     int
	downBudget  []float64 // per-leecher remaining download KiB this second
	// epoch validates piece assignments: bumped at the top of every
	// simulated second and monotonic across pooled runs, so stale
	// assignedAt/fromAt stamps — from earlier seconds or earlier runs
	// — can never match.
	epoch int64
}

func newState(clients []Client, cfg Config) *state {
	nL := len(clients)
	n := nL + cfg.Seeders
	nP := cfg.pieces()
	s := &state{
		cfg:     cfg,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		peers:   make([]*peer, n),
		nLeech:  nL,
		nPieces: nP,
		avail:   make([]int, nP),
	}
	s.downBudget = make([]float64, nL)
	for i := 0; i < n; i++ {
		s.peers[i] = &peer{
			have:          make([]bool, nP),
			partial:       make([]float64, nP),
			assigned:      make([]int32, nP),
			assignedAt:    make([]int64, nP),
			fromPiece:     make([]int32, n),
			fromAt:        make([]int64, n),
			want:          make([]int32, 0, nP),
			wantPos:       make([]int32, nP),
			rate:          make([]float64, n),
			gotThisPeriod: make([]float64, n),
			streak:        make([]int, n),
		}
	}
	s.reset(clients, cfg)
	return s
}

// reset prepares a (fresh or pooled) state for one run. The epoch
// counter is NOT reset — its monotonicity is what keeps the pooled
// assignment slabs valid without clearing them.
func (s *state) reset(clients []Client, cfg Config) {
	nL := len(clients)
	n := nL + cfg.Seeders
	nP := cfg.pieces()
	s.cfg = cfg
	s.rng.Seed(cfg.Seed)
	s.remaining = nL
	s.goodput, s.wasted = 0, 0
	s.activeEdges, s.seconds = 0, 0
	dist := cfg.Dist
	if dist == nil {
		dist = bandwidth.Piatek()
	}
	caps := dist.Stratified(nL)
	for i := 0; i < n; i++ {
		p := s.peers[i]
		p.haveCnt = 0
		p.done = false
		p.doneAt = 0
		p.unchoked = p.unchoked[:0]
		p.optIdx = -1
		p.want = p.want[:0]
		for j := range p.have {
			p.have[j] = false
			p.partial[j] = 0
		}
		for j := range p.rate {
			p.rate[j] = 0
			p.gotThisPeriod[j] = 0
			p.streak[j] = 0
		}
		if i < nL {
			p.client = clients[i]
			p.seed = false
			p.upKBps = caps[i]
			p.downKBps = 0
			if cfg.DownCapFactor > 0 {
				p.downKBps = cfg.DownCapFactor * caps[i]
				if p.downKBps < cfg.DownFloorKBps {
					p.downKBps = cfg.DownFloorKBps
				}
			}
			for j := 0; j < nP; j++ {
				p.want = append(p.want, int32(j))
				p.wantPos[j] = int32(j)
			}
		} else {
			p.seed = true
			p.client = 0
			p.upKBps = cfg.SeedUploadKBps
			p.downKBps = 0
			for j := range p.have {
				p.have[j] = true
				p.wantPos[j] = -1
			}
			p.haveCnt = nP
		}
	}
	for pc := range s.avail {
		s.avail[pc] = cfg.Seeders
	}
}

// interested reports whether a wants anything b has.
func (s *state) interested(a, b int) bool {
	pa, pb := s.peers[a], s.peers[b]
	if pa.done || pb.done {
		return false
	}
	if pb.seed {
		return !pa.done
	}
	for _, p := range pa.want {
		if pb.have[p] {
			return true
		}
	}
	return false
}

// rechoke re-evaluates every present peer's unchoke set at the given
// choke-period index.
func (s *state) rechoke(period int) {
	// Fold the period's received bytes into rate EMAs and streaks.
	interval := float64(s.cfg.ChokeIntervalS)
	for _, p := range s.peers {
		if p.done {
			continue
		}
		for j := range p.rate {
			obs := p.gotThisPeriod[j] / interval
			if period == 0 {
				p.rate[j] = obs
			} else {
				p.rate[j] = 0.5*p.rate[j] + 0.5*obs
			}
			if p.gotThisPeriod[j] > 0 {
				p.streak[j]++
			} else {
				p.streak[j] = 0
			}
			p.gotThisPeriod[j] = 0
		}
	}
	for i := range s.peers {
		if s.peers[i].done {
			continue
		}
		if s.peers[i].seed {
			s.rechokeSeeder(i)
		} else {
			s.rechokeLeecher(i, period)
		}
	}
}

// rechokeSeeder grants SeederSlots uniform-random interested leechers —
// the "seeders interact uniformly with all peers" assumption (Chow et
// al., adopted in Section 2.1).
func (s *state) rechokeSeeder(i int) {
	p := s.peers[i]
	s.scratch = s.scratch[:0]
	for j := 0; j < s.nLeech; j++ {
		if j != i && s.interested(j, i) {
			s.scratch = append(s.scratch, j)
		}
	}
	s.rng.Shuffle(len(s.scratch), func(a, b int) {
		s.scratch[a], s.scratch[b] = s.scratch[b], s.scratch[a]
	})
	k := s.cfg.SeederSlots
	if k > len(s.scratch) {
		k = len(s.scratch)
	}
	p.unchoked = append(p.unchoked[:0], s.scratch[:k]...)
}

// rechokeLeecher applies the client's ranking policy. The rankings run
// on stable insertion sorts with the seed's comparators: stability
// makes their output identical to sort.SliceStable's, without the
// per-call closure allocations.
func (s *state) rechokeLeecher(i, period int) {
	p := s.peers[i]
	c := p.client
	// Candidates: present peers interested in what we have (they can
	// use our unchoke) — for ranking purposes we consider everyone who
	// could reciprocate, i.e. all present leechers and seeders we are
	// connected to. Rank by observed download rate FROM them.
	s.scratch = s.scratch[:0]
	for j := range s.peers {
		if j == i || s.peers[j].done {
			continue
		}
		if s.interested(j, i) { // they want our pieces
			s.scratch = append(s.scratch, j)
		}
	}
	cand := s.scratch
	// Shuffle before the stable sort so rate ties (ubiquitous in the
	// first periods, when every observed rate is zero) break uniformly
	// instead of by peer index — index order is capacity order here.
	s.rng.Shuffle(len(cand), func(a, b int) { cand[a], cand[b] = cand[b], cand[a] })
	switch c {
	case ClientBT:
		rate := p.rate
		for x := 1; x < len(cand); x++ {
			v, y := cand[x], x-1
			for y >= 0 && rate[v] > rate[cand[y]] {
				cand[y+1] = cand[y]
				y--
			}
			cand[y+1] = v
		}
	case ClientBirds:
		rate := p.rate
		own := p.upKBps / float64(c.slots())
		for x := 1; x < len(cand); x++ {
			v, y := cand[x], x-1
			kv := math.Abs(rate[v] - own)
			for y >= 0 && kv < math.Abs(rate[cand[y]]-own) {
				cand[y+1] = cand[y]
				y--
			}
			cand[y+1] = v
		}
	case ClientLoyal:
		rate, streak := p.rate, p.streak
		for x := 1; x < len(cand); x++ {
			v, y := cand[x], x-1
			for y >= 0 && (streak[v] > streak[cand[y]] ||
				(streak[v] == streak[cand[y]] && rate[v] > rate[cand[y]])) {
				cand[y+1] = cand[y]
				y--
			}
			cand[y+1] = v
		}
	case ClientSortS:
		rate := p.rate
		for x := 1; x < len(cand); x++ {
			v, y := cand[x], x-1
			for y >= 0 && rate[v] < rate[cand[y]] {
				cand[y+1] = cand[y]
				y--
			}
			cand[y+1] = v
		}
	case ClientRandom:
		s.rng.Shuffle(len(cand), func(a, b int) { cand[a], cand[b] = cand[b], cand[a] })
	}
	k := c.slots()
	if k > len(cand) {
		k = len(cand)
	}
	p.unchoked = append(p.unchoked[:0], cand[:k]...)

	// Optimistic unchoke per the client's stranger policy.
	mode := c.optimistic()
	need := mode == optimisticAlways ||
		(mode == optimisticWhenNeeded && len(p.unchoked) < c.slots())
	if need {
		if period%s.cfg.OptimisticEvery == 0 || p.optIdx < 0 || s.peers[p.optIdx].done {
			p.optIdx = s.pickOptimistic(i)
		}
	} else {
		p.optIdx = -1
	}
	if p.optIdx >= 0 && !contains(p.unchoked, p.optIdx) {
		p.unchoked = append(p.unchoked, p.optIdx)
	}
}

// pickOptimistic returns a uniform-random present peer interested in i
// that is not already unchoked, or -1.
func (s *state) pickOptimistic(i int) int {
	p := s.peers[i]
	s.scratch2 = s.scratch2[:0]
	for j := 0; j < s.nLeech; j++ {
		if j == i || s.peers[j].done || contains(p.unchoked, j) {
			continue
		}
		if s.interested(j, i) {
			s.scratch2 = append(s.scratch2, j)
		}
	}
	if len(s.scratch2) == 0 {
		return -1
	}
	return s.scratch2[s.rng.Intn(len(s.scratch2))]
}

func contains(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

// transfer moves one second of data along every active unchoke edge.
func (s *state) transfer(sec int) {
	s.seconds++
	// New second, new assignment epoch: every piece is re-pickable and
	// single-sourced again (no duplicates outside endgame), but a fat
	// upload pipe can chain through several pieces, and a piece served
	// by a slow source is re-pickable next second — the one-second
	// request granularity that block-level pipelining gives real
	// clients. (The seed cleared every leecher's whole assigned array
	// here; the epoch bump invalidates them all for free.)
	s.epoch++
	for v := 0; v < s.nLeech; v++ {
		if s.peers[v].downKBps > 0 {
			s.downBudget[v] = s.peers[v].downKBps
		} else {
			s.downBudget[v] = math.Inf(1)
		}
	}
	for u := range s.peers {
		up := s.peers[u]
		if up.done || len(up.unchoked) == 0 {
			continue
		}
		// Active targets: unchoked, present, and with a piece to take.
		s.scratch = s.scratch[:0]
		for _, v := range up.unchoked {
			if s.peers[v].done {
				continue
			}
			if s.pickPiece(v, u) >= 0 {
				s.scratch = append(s.scratch, v)
			}
		}
		if len(s.scratch) == 0 {
			continue
		}
		share := up.upKBps / float64(len(s.scratch))
		s.activeEdges += len(s.scratch)
		for _, v := range s.scratch {
			s.deliver(v, u, share, sec)
		}
	}
}

// assignedTo returns the uploader currently serving piece p to pv this
// second, or -1.
func (s *state) assignedTo(pv *peer, p int32) int32 {
	if pv.assignedAt[p] == s.epoch {
		return pv.assigned[p]
	}
	return -1
}

// assign records that uploader u serves piece p to pv this second.
func (s *state) assign(pv *peer, p int32, u int) {
	pv.assigned[p] = int32(u)
	pv.assignedAt[p] = s.epoch
	pv.fromPiece[u] = p
	pv.fromAt[u] = s.epoch
}

// pickPiece returns the piece v should fetch from u: the piece already
// assigned to u if any, else the rarest piece u has, v lacks, and no
// other uploader is currently assigned. When every wanted piece is
// already assigned elsewhere, it falls back to duplicating the rarest
// wanted piece (BitTorrent's endgame mode) — without this, a piece
// locked to a slow source head-of-line-blocks the whole download.
// Returns -1 if u has nothing v wants.
//
// All three searches walk v's want list, whose order varies with
// completion history; the explicit minimisation keys below reproduce
// the seed's ascending / random-offset-cyclic scan order exactly, so
// the picked piece never depends on want-list order.
func (s *state) pickPiece(v, u int) int {
	pv, pu := s.peers[v], s.peers[u]
	// Existing assignment first: O(1) via the per-uploader slot (at
	// most one piece per (v,u) pair is live within a second).
	if pv.fromAt[u] == s.epoch {
		if p := pv.fromPiece[u]; p >= 0 && !pv.have[p] {
			return int(p)
		}
	}
	// In-progress pieces next: finish what is started (most-complete
	// first, ties to the lowest piece index like the seed's ascending
	// scan), as real clients do. Without this, per-second source
	// re-picking scatters progress across many partial pieces and no
	// piece ever completes.
	bestPartial, bestAmt := int32(-1), 0.0
	for _, p := range pv.want {
		if !pu.have[p] || s.assignedTo(pv, p) >= 0 {
			continue
		}
		if pv.partial[p] > bestAmt || (pv.partial[p] == bestAmt && bestPartial >= 0 && p < bestPartial) {
			bestPartial, bestAmt = p, pv.partial[p]
		}
	}
	if bestPartial >= 0 {
		s.assign(pv, bestPartial, u)
		return int(bestPartial)
	}
	// Rarest-first with randomised tie-breaking: the seed scanned from
	// a random offset so equally-rare pieces are picked uniformly —
	// deterministic tie-breaking would make every peer fetch pieces in
	// the same global order, keeping piece sets identical and
	// collapsing mutual interest (the classic synchronized-piece-set
	// pathology real clients avoid by randomising rarest-first). The
	// same draw, applied as a minimisation over (availability, cyclic
	// distance from the offset), picks the identical piece.
	off := s.rng.Intn(s.nPieces)
	best, bestAvail, bestCyc := int32(-1), math.MaxInt32, math.MaxInt32
	for _, p := range pv.want {
		if !pu.have[p] || s.assignedTo(pv, p) >= 0 {
			continue
		}
		cyc := int(p) - off
		if cyc < 0 {
			cyc += s.nPieces
		}
		if s.avail[p] < bestAvail || (s.avail[p] == bestAvail && cyc < bestCyc) {
			best, bestAvail, bestCyc = p, s.avail[p], cyc
		}
	}
	if best >= 0 {
		s.assign(pv, best, u)
		return int(best)
	}
	// Endgame: only when v is down to its last few pieces, duplicate
	// the rarest wanted piece u has. The original assignment is kept;
	// surplus bytes are wasted, as in real clients. Duplicating any
	// earlier floods the swarm with redundant bytes — mid-game piece
	// sets overlap heavily in a 20-piece file.
	if len(pv.want) > endgamePieces {
		return -1
	}
	for _, p := range pv.want {
		if !pu.have[p] {
			continue
		}
		cyc := int(p) - off
		if cyc < 0 {
			cyc += s.nPieces
		}
		if s.avail[p] < bestAvail || (s.avail[p] == bestAvail && cyc < bestCyc) {
			best, bestAvail, bestCyc = p, s.avail[p], cyc
		}
	}
	return int(best)
}

// endgamePieces is the remaining-piece threshold below which duplicate
// fetching (endgame mode) is allowed.
const endgamePieces = 3

// deliver moves kib KiB from u to v's current piece, completing pieces
// and possibly the whole download.
func (s *state) deliver(v, u int, kib float64, sec int) {
	pv := s.peers[v]
	// Download cap: clip to v's remaining intake this second; the
	// overflow is wasted sender capacity (no per-stream backpressure
	// reallocation in the fluid model).
	if kib > s.downBudget[v] {
		s.wasted += kib - s.downBudget[v]
		kib = s.downBudget[v]
	}
	s.downBudget[v] -= kib
	for kib > 0 && !pv.done {
		p := s.pickPiece(v, u)
		if p < 0 {
			s.wasted += kib
			return
		}
		needed := float64(s.cfg.PieceKiB) - pv.partial[p]
		take := kib
		if take > needed {
			take = needed
		}
		pv.partial[p] += take
		pv.gotThisPeriod[u] += take
		s.goodput += take
		kib -= take
		if pv.partial[p] >= float64(s.cfg.PieceKiB) {
			s.obtain(pv, int32(p))
			s.avail[p]++
			if pv.haveCnt == s.nPieces {
				s.complete(v, sec)
			}
		}
	}
}

// obtain marks piece p held by pv: want-list removal, assignment
// teardown (including the uploader's per-pair slot, which may belong
// to a different uploader than the endgame deliverer).
func (s *state) obtain(pv *peer, p int32) {
	pv.have[p] = true
	pv.haveCnt++
	if u := s.assignedTo(pv, p); u >= 0 {
		if pv.fromAt[u] == s.epoch && pv.fromPiece[u] == p {
			pv.fromPiece[u] = -1
		}
		pv.assigned[p] = -1
	}
	pos := pv.wantPos[p]
	last := int32(len(pv.want) - 1)
	moved := pv.want[last]
	pv.want[pos] = moved
	pv.wantPos[moved] = pos
	pv.want = pv.want[:last]
	pv.wantPos[p] = -1
}

// complete marks leecher v finished at the given second and removes it
// from the swarm.
func (s *state) complete(v, sec int) {
	pv := s.peers[v]
	pv.done = true
	pv.doneAt = sec
	s.remaining--
	// Its copies leave with it.
	for p := 0; p < s.nPieces; p++ {
		if pv.have[p] {
			s.avail[p]--
		}
	}
	// Drop any assignment bookkeeping pointing at v: other peers keep
	// their own assigned maps (entries referencing v as uploader are
	// cleared lazily by pickPiece via the done check in transfer).
}
