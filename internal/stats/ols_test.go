package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestLeastSquaresExact(t *testing.T) {
	// y = 3 + 2x fits exactly.
	x := NewMatrix(4, 2)
	xs := []float64{0, 1, 2, 3}
	y := make([]float64, 4)
	for i, v := range xs {
		x.Set(i, 0, 1)
		x.Set(i, 1, v)
		y[i] = 3 + 2*v
	}
	b, err := LeastSquares(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(b[0], 3, 1e-10) || !almostEq(b[1], 2, 1e-10) {
		t.Errorf("b = %v", b)
	}
}

func TestLeastSquaresOverdetermined(t *testing.T) {
	// Classic: fit mean. X = column of ones; solution is the mean of y.
	x := NewMatrix(5, 1)
	for i := 0; i < 5; i++ {
		x.Set(i, 0, 1)
	}
	y := []float64{1, 2, 3, 4, 10}
	b, err := LeastSquares(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(b[0], 4, 1e-12) {
		t.Errorf("b = %v, want mean 4", b)
	}
}

func TestLeastSquaresRankDeficient(t *testing.T) {
	x := NewMatrix(4, 2)
	for i := 0; i < 4; i++ {
		x.Set(i, 0, 1)
		x.Set(i, 1, 2) // column 2 = 2 * column 1 → rank deficient
	}
	if _, err := LeastSquares(x, []float64{1, 2, 3, 4}); err == nil {
		t.Error("expected rank-deficiency error")
	}
}

func TestQRReproducesKnownRegression(t *testing.T) {
	// Hand-checked small regression: y on x1, x2.
	// Data chosen so normal equations are easy to verify externally.
	xs1 := []float64{1, 2, 3, 4, 5, 6}
	xs2 := []float64{1, 1, 2, 2, 3, 3}
	y := []float64{2.1, 3.9, 6.2, 7.8, 10.1, 11.9}
	x := NewMatrix(6, 3)
	for i := range xs1 {
		x.Set(i, 0, 1)
		x.Set(i, 1, xs1[i])
		x.Set(i, 2, xs2[i])
	}
	b, err := LeastSquares(x, y)
	if err != nil {
		t.Fatal(err)
	}
	// Residuals must be orthogonal to every column (normal equations).
	for j := 0; j < 3; j++ {
		var dot float64
		for i := 0; i < 6; i++ {
			pred := b[0]*x.At(i, 0) + b[1]*x.At(i, 1) + b[2]*x.At(i, 2)
			dot += x.At(i, j) * (y[i] - pred)
		}
		if !almostEq(dot, 0, 1e-9) {
			t.Errorf("residual not orthogonal to column %d: %v", j, dot)
		}
	}
}

func TestOLSInferenceAgainstR(t *testing.T) {
	// Reference fit derived by hand from the normal equations:
	//   x = 1..10 → x̄ = 5.5, Sxx = 82.5
	//   y = 1.2,1.9,3.1,3.9,5.2,5.8,7.1,8.2,8.9,10.1 → ȳ = 5.54, Sxy = 82.40
	// slope = Sxy/Sxx = 0.99878788, intercept = ȳ - slope·x̄ = 0.04666667.
	// Inference values (se, t, σ, adj R²) cross-checked for internal
	// consistency: se(slope) = σ/√Sxx, t = slope/se.
	xv := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	yv := []float64{1.2, 1.9, 3.1, 3.9, 5.2, 5.8, 7.1, 8.2, 8.9, 10.1}
	b := NewDesignBuilder()
	b.AddNumeric("x")
	for i := range xv {
		b.AddRow(yv[i], xv[i])
	}
	res, err := b.Fit()
	if err != nil {
		t.Fatal(err)
	}
	ic := res.Coef("(intercept)")
	xc := res.Coef("x")
	if ic == nil || xc == nil {
		t.Fatal("missing coefficients")
	}
	if !almostEq(ic.Estimate, 0.04666667, 1e-6) {
		t.Errorf("intercept = %v", ic.Estimate)
	}
	if !almostEq(xc.Estimate, 0.99878788, 1e-6) {
		t.Errorf("slope = %v", xc.Estimate)
	}
	// Internal consistency of the inference quantities.
	if !almostEq(xc.StdErr, res.Sigma/math.Sqrt(82.5), 1e-9) {
		t.Errorf("slope se = %v, want σ/√Sxx = %v", xc.StdErr, res.Sigma/math.Sqrt(82.5))
	}
	if !almostEq(xc.TValue, xc.Estimate/xc.StdErr, 1e-9) {
		t.Errorf("slope t = %v", xc.TValue)
	}
	if !almostEq(res.AdjR2, 1-(res.RSS/8)/(res.TSS/9), 1e-12) {
		t.Errorf("adj R² = %v", res.AdjR2)
	}
	if res.AdjR2 < 0.99 {
		t.Errorf("adj R² = %v, want > 0.99 for near-linear data", res.AdjR2)
	}
	if !xc.Significant(0.001) {
		t.Error("slope should be significant at 0.001")
	}
	if ic.Significant(0.001) {
		t.Error("intercept should not be significant at 0.001")
	}
	if res.DF() != 8 {
		t.Errorf("df = %d", res.DF())
	}
}

func TestOLSWithDummies(t *testing.T) {
	// Three groups with means 1, 3, 6; dummy coding against baseline A.
	b := NewDesignBuilder()
	b.AddDummies("B", "C")
	groups := []struct {
		mean   float64
		dummyB float64
		dummyC float64
	}{{1, 0, 0}, {3, 1, 0}, {6, 0, 1}}
	rng := rand.New(rand.NewSource(3))
	for _, g := range groups {
		for i := 0; i < 40; i++ {
			b.AddRow(g.mean+0.01*rng.NormFloat64(), g.dummyB, g.dummyC)
		}
	}
	res, err := b.Fit()
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(res.Coef("(intercept)").Estimate, 1, 0.01) {
		t.Errorf("baseline = %v", res.Coef("(intercept)").Estimate)
	}
	if !almostEq(res.Coef("B").Estimate, 2, 0.01) {
		t.Errorf("B = %v", res.Coef("B").Estimate)
	}
	if !almostEq(res.Coef("C").Estimate, 5, 0.01) {
		t.Errorf("C = %v", res.Coef("C").Estimate)
	}
	if !res.Coef("B").Significant(0.001) || !res.Coef("C").Significant(0.001) {
		t.Error("group effects should be significant")
	}
}

func TestOLSRecoversCoefficientsProperty(t *testing.T) {
	// Property: with noiseless data OLS recovers the generating
	// coefficients for random well-conditioned designs.
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 50; trial++ {
		n := 20 + rng.Intn(30)
		p := 2 + rng.Intn(4)
		truth := make([]float64, p+1)
		for i := range truth {
			truth[i] = rng.NormFloat64() * 3
		}
		b := NewDesignBuilder()
		names := make([]string, p)
		for j := 0; j < p; j++ {
			names[j] = string(rune('a' + j))
		}
		for j := range names {
			b.AddNumeric(names[j])
		}
		for i := 0; i < n; i++ {
			row := make([]float64, p)
			y := truth[0]
			for j := 0; j < p; j++ {
				row[j] = rng.NormFloat64()
				y += truth[j+1] * row[j]
			}
			b.AddRow(y, row...)
		}
		res, err := b.Fit()
		if err != nil {
			t.Fatal(err)
		}
		for j, c := range res.Coefficients {
			if !almostEq(c.Estimate, truth[j], 1e-7) {
				t.Fatalf("trial %d coef %d = %v, want %v", trial, j, c.Estimate, truth[j])
			}
		}
		if res.R2 < 1-1e-9 {
			t.Fatalf("noiseless R² = %v", res.R2)
		}
	}
}

func TestOLSErrors(t *testing.T) {
	x := NewMatrix(2, 3)
	if _, err := OLS(x, []float64{1, 2}, []string{"a", "b", "c"}); err == nil {
		t.Error("n <= p should error")
	}
	x2 := NewMatrix(5, 2)
	if _, err := OLS(x2, []float64{1, 2, 3, 4, 5}, []string{"a"}); err == nil {
		t.Error("names mismatch should error")
	}
}

func TestDesignBuilderPanics(t *testing.T) {
	b := NewDesignBuilder()
	b.AddNumeric("x")
	b.AddRow(1, 2)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("adding columns after rows should panic")
			}
		}()
		b.AddNumeric("late")
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("wrong row width should panic")
			}
		}()
		b.AddRow(1, 2, 3)
	}()
}

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(1, 2, 5)
	if m.At(1, 2) != 5 {
		t.Error("At/Set broken")
	}
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) != 0 {
		t.Error("Clone should not alias")
	}
	if len(m.String()) == 0 {
		t.Error("String should render")
	}
	defer func() {
		if recover() == nil {
			t.Error("negative dims should panic")
		}
	}()
	NewMatrix(-1, 2)
}

func TestOLSHandlesNaNFreeSigma(t *testing.T) {
	// Perfect fit: sigma 0, standard errors 0, t-values NaN — must not panic.
	b := NewDesignBuilder()
	b.AddNumeric("x")
	for i := 0; i < 5; i++ {
		b.AddRow(float64(2*i), float64(i))
	}
	res, err := b.Fit()
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(res.Coef("x").Estimate, 2, 1e-10) {
		t.Errorf("slope = %v", res.Coef("x").Estimate)
	}
	if !math.IsNaN(res.Coef("x").TValue) && res.Coef("x").StdErr != 0 {
		t.Log("t-value defined, se nonzero — acceptable if tiny")
	}
}
