package stats

import (
	"errors"
	"math"
)

// Coefficient is one fitted regression coefficient with its inference,
// matching the columns of Table 3 (estimate, t value, significance).
type Coefficient struct {
	Name     string  // regressor name, e.g. "(intercept)", "B3", "log(h~)"
	Estimate float64 // fitted value
	StdErr   float64 // standard error
	TValue   float64 // Estimate / StdErr
	PValue   float64 // two-sided p-value against t(n-p)
}

// Significant reports whether the coefficient's p-value is below alpha,
// the "OK if less than 0.001" column of Table 3.
func (c Coefficient) Significant(alpha float64) bool {
	return !math.IsNaN(c.PValue) && c.PValue < alpha
}

// OLSResult is a fitted ordinary least squares model.
type OLSResult struct {
	Coefficients []Coefficient
	N            int     // observations
	P            int     // regressors including intercept
	RSS          float64 // residual sum of squares
	TSS          float64 // total sum of squares (about the mean)
	R2           float64 // coefficient of determination
	AdjR2        float64 // adjusted R², as reported in Table 3's header
	Sigma        float64 // residual standard error
}

// DF returns the residual degrees of freedom n-p.
func (r *OLSResult) DF() int { return r.N - r.P }

// Coef returns the coefficient with the given name, or nil.
func (r *OLSResult) Coef(name string) *Coefficient {
	for i := range r.Coefficients {
		if r.Coefficients[i].Name == name {
			return &r.Coefficients[i]
		}
	}
	return nil
}

// OLS fits y ~ X by ordinary least squares. names labels the columns of
// x and must have length x.Cols. X must already contain the intercept
// column if one is desired (see DesignBuilder, which always adds one).
func OLS(x *Matrix, y []float64, names []string) (*OLSResult, error) {
	if len(names) != x.Cols {
		return nil, errors.New("stats: OLS: names length mismatch")
	}
	if x.Rows <= x.Cols {
		return nil, errors.New("stats: OLS: need more observations than regressors")
	}
	f, err := factorQR(x)
	if err != nil {
		return nil, err
	}
	qty := make([]float64, len(y))
	copy(qty, y)
	f.applyQT(qty)
	beta, err := f.solveR(qty)
	if err != nil {
		return nil, err
	}
	// Residuals: the bottom n-p entries of Qᵀy hold the residual norm,
	// but compute residuals explicitly for clarity and TSS anyway.
	var rss float64
	for i := 0; i < x.Rows; i++ {
		pred := 0.0
		for j := 0; j < x.Cols; j++ {
			pred += x.At(i, j) * beta[j]
		}
		d := y[i] - pred
		rss += d * d
	}
	my := Mean(y)
	var tss float64
	for _, v := range y {
		d := v - my
		tss += d * d
	}
	n, p := x.Rows, x.Cols
	df := float64(n - p)
	sigma2 := rss / df
	xtxInv, err := f.invRtR()
	if err != nil {
		return nil, err
	}
	res := &OLSResult{
		N: n, P: p,
		RSS:   rss,
		TSS:   tss,
		Sigma: math.Sqrt(sigma2),
	}
	if tss > 0 {
		res.R2 = 1 - rss/tss
		res.AdjR2 = 1 - (rss/df)/(tss/float64(n-1))
	}
	res.Coefficients = make([]Coefficient, p)
	for j := 0; j < p; j++ {
		se := math.Sqrt(sigma2 * xtxInv.At(j, j))
		t := math.NaN()
		pv := math.NaN()
		if se > 0 {
			t = beta[j] / se
			pv = TPValue(t, df)
		}
		res.Coefficients[j] = Coefficient{
			Name: names[j], Estimate: beta[j], StdErr: se, TValue: t, PValue: pv,
		}
	}
	return res, nil
}

// DesignBuilder incrementally assembles a regression design matrix with
// an intercept, numeric columns and dummy-coded categorical columns.
// Rows are added observation by observation; the set of columns is fixed
// at construction via the successive Add* calls before the first AddRow.
type DesignBuilder struct {
	names  []string
	rows   [][]float64
	y      []float64
	closed bool
}

// NewDesignBuilder returns a builder whose first column is the
// intercept, named "(intercept)" as in Table 3.
func NewDesignBuilder() *DesignBuilder {
	return &DesignBuilder{names: []string{"(intercept)"}}
}

// AddNumeric declares a numeric regressor column.
func (b *DesignBuilder) AddNumeric(name string) {
	b.mustBeOpen()
	b.names = append(b.names, name)
}

// AddDummies declares dummy (one-hot) columns for every non-baseline
// level of a categorical variable. levels must exclude the baseline.
func (b *DesignBuilder) AddDummies(levels ...string) {
	b.mustBeOpen()
	b.names = append(b.names, levels...)
}

func (b *DesignBuilder) mustBeOpen() {
	if b.closed {
		panic("stats: DesignBuilder: columns added after first row")
	}
}

// AddRow appends one observation. values must follow the column order
// declared by the Add* calls (excluding the intercept, which is implied).
func (b *DesignBuilder) AddRow(y float64, values ...float64) {
	if len(values) != len(b.names)-1 {
		panic("stats: DesignBuilder: row width mismatch")
	}
	b.closed = true
	row := make([]float64, len(b.names))
	row[0] = 1
	copy(row[1:], values)
	b.rows = append(b.rows, row)
	b.y = append(b.y, y)
}

// Fit builds the design matrix and runs OLS.
func (b *DesignBuilder) Fit() (*OLSResult, error) {
	if len(b.rows) == 0 {
		return nil, ErrEmpty
	}
	x := NewMatrix(len(b.rows), len(b.names))
	for i, row := range b.rows {
		copy(x.Data[i*x.Cols:(i+1)*x.Cols], row)
	}
	return OLS(x, b.y, b.names)
}

// Names returns the declared column names including the intercept.
func (b *DesignBuilder) Names() []string { return b.names }
