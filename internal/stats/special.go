package stats

import "math"

// This file implements the special functions needed for statistical
// inference without any third-party dependency: the regularised
// incomplete beta function, the Student-t CDF and quantile function.
// They back the p-values and confidence intervals reported in Table 3
// and the error bars in Figures 9-10.

// RegIncBeta returns the regularised incomplete beta function
// I_x(a, b) for a, b > 0 and x in [0, 1], computed with the continued
// fraction expansion of Numerical Recipes (Lentz's algorithm).
func RegIncBeta(a, b, x float64) float64 {
	switch {
	case x <= 0:
		return 0
	case x >= 1:
		return 1
	}
	lbeta, _ := math.Lgamma(a + b)
	la, _ := math.Lgamma(a)
	lb, _ := math.Lgamma(b)
	front := math.Exp(lbeta - la - lb + a*math.Log(x) + b*math.Log(1-x))
	// The continued fraction converges rapidly for x <= (a+1)/(a+b+2);
	// use the symmetry I_x(a,b) = 1 - I_{1-x}(b,a) otherwise. The <=
	// matters: with < the symmetric case a=b, x=0.5 recurses forever.
	if x <= (a+1)/(a+b+2) {
		return front * betaCF(a, b, x) / a
	}
	return 1 - RegIncBeta(b, a, 1-x)
}

// betaCF evaluates the continued fraction for the incomplete beta
// function using the modified Lentz method.
func betaCF(a, b, x float64) float64 {
	const (
		maxIter = 300
		eps     = 3e-14
		fpmin   = 1e-300
	)
	qab := a + b
	qap := a + 1
	qam := a - 1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		fm := float64(m)
		m2 := 2 * fm
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}

// TCDF returns P(T <= t) for a Student-t random variable with df
// degrees of freedom.
func TCDF(t, df float64) float64 {
	if df <= 0 {
		return math.NaN()
	}
	if t == 0 {
		return 0.5
	}
	x := df / (df + t*t)
	p := 0.5 * RegIncBeta(df/2, 0.5, x)
	if t > 0 {
		return 1 - p
	}
	return p
}

// TPValue returns the two-sided p-value for a t-statistic with df
// degrees of freedom: P(|T| >= |t|).
func TPValue(t, df float64) float64 {
	if math.IsNaN(t) {
		return math.NaN()
	}
	return 2 * (1 - TCDF(math.Abs(t), df))
}

// TQuantile returns the p-quantile (0 < p < 1) of the Student-t
// distribution with df degrees of freedom, found by bisection on TCDF.
// Accuracy is far beyond what confidence intervals need (~1e-10).
func TQuantile(p, df float64) float64 {
	switch {
	case math.IsNaN(p) || df <= 0:
		return math.NaN()
	case p <= 0:
		return math.Inf(-1)
	case p >= 1:
		return math.Inf(1)
	case p == 0.5:
		return 0
	}
	// Symmetric: solve for the upper tail and mirror.
	if p < 0.5 {
		return -TQuantile(1-p, df)
	}
	lo, hi := 0.0, 1.0
	for TCDF(hi, df) < p {
		hi *= 2
		if hi > 1e12 {
			break
		}
	}
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if TCDF(mid, df) < p {
			lo = mid
		} else {
			hi = mid
		}
		if hi-lo < 1e-12*(1+hi) {
			break
		}
	}
	return (lo + hi) / 2
}

// NormalCDF returns the standard normal CDF, used as the large-df limit
// in tests and for quick z-based approximations.
func NormalCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}
