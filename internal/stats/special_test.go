package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestRegIncBetaKnownValues(t *testing.T) {
	cases := []struct {
		a, b, x, want float64
	}{
		// I_x(1,1) = x (uniform CDF).
		{1, 1, 0.3, 0.3},
		{1, 1, 0.9, 0.9},
		// I_x(2,2) = x²(3-2x).
		{2, 2, 0.5, 0.5},
		{2, 2, 0.25, 0.25 * 0.25 * (3 - 0.5)},
		// I_x(0.5,0.5) = (2/π) asin(√x) (arcsine distribution).
		{0.5, 0.5, 0.5, 0.5},
		{0.5, 0.5, 0.25, 2 / math.Pi * math.Asin(0.5)},
	}
	for _, c := range cases {
		if got := RegIncBeta(c.a, c.b, c.x); !almostEq(got, c.want, 1e-10) {
			t.Errorf("I_%v(%v,%v) = %v, want %v", c.x, c.a, c.b, got, c.want)
		}
	}
}

func TestRegIncBetaBounds(t *testing.T) {
	if RegIncBeta(2, 3, 0) != 0 || RegIncBeta(2, 3, 1) != 1 {
		t.Error("boundary values wrong")
	}
	if RegIncBeta(2, 3, -0.5) != 0 || RegIncBeta(2, 3, 1.5) != 1 {
		t.Error("out-of-range clamping wrong")
	}
}

func TestRegIncBetaMonotoneProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		a := 0.5 + 5*rng.Float64()
		b := 0.5 + 5*rng.Float64()
		prev := 0.0
		for x := 0.0; x <= 1.0001; x += 0.05 {
			v := RegIncBeta(a, b, math.Min(x, 1))
			if v < prev-1e-12 {
				t.Fatalf("I_x(%v,%v) not monotone at x=%v: %v < %v", a, b, x, v, prev)
			}
			prev = v
		}
	}
}

func TestTCDFKnownValues(t *testing.T) {
	// t with df=1 is Cauchy: CDF(1) = 3/4.
	if got := TCDF(1, 1); !almostEq(got, 0.75, 1e-10) {
		t.Errorf("TCDF(1,1) = %v, want 0.75", got)
	}
	if got := TCDF(0, 5); got != 0.5 {
		t.Errorf("TCDF(0,5) = %v, want 0.5", got)
	}
	// Symmetry.
	if got := TCDF(-2, 7) + TCDF(2, 7); !almostEq(got, 1, 1e-12) {
		t.Errorf("symmetry violated: %v", got)
	}
	// Large df approaches the normal distribution.
	if got := TCDF(1.959963985, 1e7); !almostEq(got, 0.975, 1e-4) {
		t.Errorf("TCDF large df = %v, want ~0.975", got)
	}
}

func TestTQuantileRoundTrip(t *testing.T) {
	for _, df := range []float64{1, 2, 5, 10, 30, 100} {
		for _, p := range []float64{0.6, 0.9, 0.95, 0.975, 0.999} {
			q := TQuantile(p, df)
			back := TCDF(q, df)
			if !almostEq(back, p, 1e-8) {
				t.Errorf("df=%v p=%v: TCDF(TQuantile)=%v", df, p, back)
			}
		}
	}
}

func TestTQuantileKnownValues(t *testing.T) {
	// Classic t-table values.
	cases := []struct {
		p, df, want float64
	}{
		{0.975, 3, 3.182446},
		{0.975, 10, 2.228139},
		{0.975, 30, 2.042272},
		{0.995, 5, 4.032143},
	}
	for _, c := range cases {
		if got := TQuantile(c.p, c.df); !almostEq(got, c.want, 1e-4) {
			t.Errorf("TQuantile(%v,%v) = %v, want %v", c.p, c.df, got, c.want)
		}
	}
}

func TestTQuantileSymmetry(t *testing.T) {
	if got := TQuantile(0.025, 9); !almostEq(got, -TQuantile(0.975, 9), 1e-9) {
		t.Errorf("quantile not symmetric: %v", got)
	}
	if TQuantile(0.5, 9) != 0 {
		t.Error("median should be 0")
	}
}

func TestTPValue(t *testing.T) {
	// Huge |t| → p ≈ 0; t=0 → p=1.
	if p := TPValue(0, 10); !almostEq(p, 1, 1e-12) {
		t.Errorf("TPValue(0) = %v", p)
	}
	if p := TPValue(50, 100); p > 1e-10 {
		t.Errorf("TPValue(50) = %v, want ~0", p)
	}
	// Two-sided symmetry.
	if !almostEq(TPValue(2.5, 8), TPValue(-2.5, 8), 1e-14) {
		t.Error("p-value should be symmetric in t")
	}
}

func TestNormalCDF(t *testing.T) {
	cases := []struct{ x, want float64 }{
		{0, 0.5},
		{1.959963985, 0.975},
		{-1.959963985, 0.025},
	}
	for _, c := range cases {
		if got := NormalCDF(c.x); !almostEq(got, c.want, 1e-8) {
			t.Errorf("NormalCDF(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}
