package stats

import (
	"math"
	"sort"
)

// Histogram is a fixed-width binning of samples over [Lo, Hi], as drawn
// along the axes of Figure 2 and on the y-axes of Figures 3-4.
type Histogram struct {
	Lo, Hi float64 // range covered by the bins
	Counts []int   // one count per bin
	N      int     // total number of binned samples
}

// NewHistogram bins xs into bins equal-width bins over [lo, hi].
// Samples outside the range are clamped into the first or last bin,
// which matches how the paper's normalised values behave at 0 and 1.
func NewHistogram(xs []float64, bins int, lo, hi float64) Histogram {
	if bins < 1 {
		bins = 1
	}
	h := Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
	if hi <= lo {
		return h
	}
	w := (hi - lo) / float64(bins)
	for _, x := range xs {
		b := int((x - lo) / w)
		if b < 0 {
			b = 0
		}
		if b >= bins {
			b = bins - 1
		}
		h.Counts[b]++
		h.N++
	}
	return h
}

// Bins returns the number of bins.
func (h Histogram) Bins() int { return len(h.Counts) }

// BinCenter returns the midpoint of bin i.
func (h Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + (float64(i)+0.5)*w
}

// Fraction returns the fraction of samples falling in bin i.
func (h Histogram) Fraction(i int) float64 {
	if h.N == 0 {
		return 0
	}
	return float64(h.Counts[i]) / float64(h.N)
}

// MaxCount returns the largest bin count, useful for scaling plots.
func (h Histogram) MaxCount() int {
	m := 0
	for _, c := range h.Counts {
		if c > m {
			m = c
		}
	}
	return m
}

// Hist2D is a two-dimensional histogram: one row of value-bins per
// integer category. Figures 3 and 4 are exactly this structure — for
// each number of partners (category 0..9) a histogram of Performance or
// Robustness, shaded by relative frequency within the value interval.
type Hist2D struct {
	Categories int     // number of category rows
	Lo, Hi     float64 // value range binned along the other axis
	ValueBins  int
	Counts     [][]int // [category][valueBin]
}

// NewHist2D creates an empty 2-D histogram with the given shape.
func NewHist2D(categories, valueBins int, lo, hi float64) *Hist2D {
	h := &Hist2D{Categories: categories, Lo: lo, Hi: hi, ValueBins: valueBins}
	h.Counts = make([][]int, categories)
	for i := range h.Counts {
		h.Counts[i] = make([]int, valueBins)
	}
	return h
}

// Add records one sample with the given category and value.
// Out-of-range categories are ignored; values are clamped.
func (h *Hist2D) Add(category int, value float64) {
	if category < 0 || category >= h.Categories {
		return
	}
	if h.Hi <= h.Lo {
		return
	}
	w := (h.Hi - h.Lo) / float64(h.ValueBins)
	b := int((value - h.Lo) / w)
	if b < 0 {
		b = 0
	}
	if b >= h.ValueBins {
		b = h.ValueBins - 1
	}
	h.Counts[category][b]++
}

// RowNormalized returns, for value-bin b, the frequency of each category
// normalised by the total count in that value interval — the "darker
// squares represent high partner-value frequency for a particular
// interval" shading of Figures 3-4.
func (h *Hist2D) RowNormalized(b int) []float64 {
	out := make([]float64, h.Categories)
	total := 0
	for c := 0; c < h.Categories; c++ {
		total += h.Counts[c][b]
	}
	if total == 0 {
		return out
	}
	for c := 0; c < h.Categories; c++ {
		out[c] = float64(h.Counts[c][b]) / float64(total)
	}
	return out
}

// CCDFPoint is one point of a complementary CDF curve.
type CCDFPoint struct {
	X float64 // threshold
	P float64 // P(X > x)
}

// CCDF returns the complementary cumulative distribution function of xs
// evaluated at every distinct sample value, as plotted in Figure 5
// ("Complementary CDF plots of Robustness of different stranger
// policies"). The curve is right-continuous: P(X > x).
func CCDF(xs []float64) []CCDFPoint {
	n := len(xs)
	if n == 0 {
		return nil
	}
	sorted := make([]float64, n)
	copy(sorted, xs)
	sort.Float64s(sorted)
	var pts []CCDFPoint
	i := 0
	for i < n {
		x := sorted[i]
		j := i
		for j < n && sorted[j] == x {
			j++
		}
		pts = append(pts, CCDFPoint{X: x, P: float64(n-j) / float64(n)})
		i = j
	}
	return pts
}

// CCDFAt evaluates P(X > x) for a single threshold without building the
// whole curve.
func CCDFAt(xs []float64, x float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	n := 0
	for _, v := range xs {
		if v > x {
			n++
		}
	}
	return float64(n) / float64(len(xs))
}
