package stats

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestHistogramBasic(t *testing.T) {
	xs := []float64{0.05, 0.15, 0.15, 0.95}
	h := NewHistogram(xs, 10, 0, 1)
	if h.N != 4 {
		t.Fatalf("N = %d", h.N)
	}
	if h.Counts[0] != 1 || h.Counts[1] != 2 || h.Counts[9] != 1 {
		t.Errorf("counts = %v", h.Counts)
	}
	if !almostEq(h.BinCenter(0), 0.05, 1e-12) {
		t.Errorf("center = %v", h.BinCenter(0))
	}
	if !almostEq(h.Fraction(1), 0.5, 1e-12) {
		t.Errorf("fraction = %v", h.Fraction(1))
	}
	if h.MaxCount() != 2 {
		t.Errorf("MaxCount = %d", h.MaxCount())
	}
}

func TestHistogramClamping(t *testing.T) {
	h := NewHistogram([]float64{-5, 5, 1}, 4, 0, 1)
	if h.Counts[0] != 1 || h.Counts[3] != 2 {
		t.Errorf("clamped counts = %v", h.Counts)
	}
}

func TestHistogramConservesMass(t *testing.T) {
	f := func(raw []float64) bool {
		h := NewHistogram(raw, 7, -1000, 1000)
		total := 0
		for _, c := range h.Counts {
			total += c
		}
		return total == len(raw) && h.N == len(raw)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogramDegenerateRange(t *testing.T) {
	h := NewHistogram([]float64{1, 2}, 5, 3, 3)
	if h.N != 0 {
		t.Error("degenerate range should bin nothing")
	}
}

func TestHist2D(t *testing.T) {
	h := NewHist2D(10, 10, 0, 1)
	h.Add(3, 0.55)
	h.Add(3, 0.55)
	h.Add(7, 0.55)
	h.Add(99, 0.5) // ignored: category out of range
	h.Add(-1, 0.5) // ignored
	h.Add(5, 1.5)  // clamped into last bin
	h.Add(5, -0.5) // clamped into first bin
	if h.Counts[3][5] != 2 || h.Counts[7][5] != 1 {
		t.Errorf("counts = %v", h.Counts[3])
	}
	if h.Counts[5][9] != 1 || h.Counts[5][0] != 1 {
		t.Error("clamping failed")
	}
	row := h.RowNormalized(5)
	if !almostEq(row[3], 2.0/3.0, 1e-12) || !almostEq(row[7], 1.0/3.0, 1e-12) {
		t.Errorf("row = %v", row)
	}
	// Empty row normalises to zeros.
	for _, v := range h.RowNormalized(1) {
		if v != 0 {
			t.Error("empty row should be zeros")
		}
	}
}

func TestCCDF(t *testing.T) {
	xs := []float64{1, 2, 2, 3}
	pts := CCDF(xs)
	want := []CCDFPoint{{1, 0.75}, {2, 0.25}, {3, 0}}
	if len(pts) != len(want) {
		t.Fatalf("pts = %v", pts)
	}
	for i := range want {
		if pts[i] != want[i] {
			t.Errorf("pts[%d] = %v, want %v", i, pts[i], want[i])
		}
	}
	if CCDF(nil) != nil {
		t.Error("empty CCDF should be nil")
	}
}

func TestCCDFAt(t *testing.T) {
	xs := []float64{0.1, 0.5, 0.9, 0.99}
	if got := CCDFAt(xs, 0.5); !almostEq(got, 0.5, 1e-12) {
		t.Errorf("CCDFAt = %v", got)
	}
	if got := CCDFAt(xs, 2); got != 0 {
		t.Errorf("CCDFAt above max = %v", got)
	}
	if got := CCDFAt(xs, -1); got != 1 {
		t.Errorf("CCDFAt below min = %v", got)
	}
}

func TestCCDFMonotoneProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(100)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Float64()
		}
		pts := CCDF(xs)
		if !sort.SliceIsSorted(pts, func(i, j int) bool { return pts[i].X < pts[j].X }) {
			t.Fatal("CCDF x values not sorted")
		}
		for i := 1; i < len(pts); i++ {
			if pts[i].P > pts[i-1].P {
				t.Fatal("CCDF not non-increasing")
			}
		}
		if pts[len(pts)-1].P != 0 {
			t.Fatal("CCDF should reach 0 at the max sample")
		}
		// Agreement with CCDFAt at every knot.
		for _, p := range pts {
			if !almostEq(CCDFAt(xs, p.X), p.P, 1e-12) {
				t.Fatalf("CCDFAt disagrees at %v", p.X)
			}
		}
	}
}
