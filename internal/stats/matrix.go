package stats

import (
	"errors"
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix of float64. It is deliberately
// minimal: just what QR-based least squares needs.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len Rows*Cols, row-major
}

// NewMatrix allocates a zero matrix with the given shape.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic("stats: negative matrix dimension")
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// String formats the matrix for debugging.
func (m *Matrix) String() string {
	s := ""
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			s += fmt.Sprintf("%10.4f ", m.At(i, j))
		}
		s += "\n"
	}
	return s
}

// ErrRankDeficient is returned when the design matrix does not have full
// column rank and the least-squares problem has no unique solution.
var ErrRankDeficient = errors.New("stats: rank-deficient design matrix")

// qr holds an in-place Householder QR factorisation of an m×n matrix
// with m >= n. After factorisation the upper triangle of a contains R
// and the lower part the Householder vectors; beta holds the scalar
// factors.
type qr struct {
	a    *Matrix
	beta []float64
}

// factorQR computes the Householder QR factorisation of a copy of m.
func factorQR(m *Matrix) (*qr, error) {
	if m.Rows < m.Cols {
		return nil, errors.New("stats: QR requires rows >= cols")
	}
	a := m.Clone()
	n := a.Cols
	beta := make([]float64, n)
	for k := 0; k < n; k++ {
		// Compute the Householder reflector for column k.
		var norm float64
		for i := k; i < a.Rows; i++ {
			v := a.At(i, k)
			norm += v * v
		}
		norm = math.Sqrt(norm)
		if norm == 0 {
			return nil, ErrRankDeficient
		}
		// Choose the sign of norm to match a(k,k) so the Householder
		// vector's leading entry 1 + a(k,k)/norm suffers no cancellation
		// (the LINPACK/JAMA convention); R(k,k) is then -norm.
		if a.At(k, k) < 0 {
			norm = -norm
		}
		for i := k; i < a.Rows; i++ {
			a.Set(i, k, a.At(i, k)/norm)
		}
		a.Set(k, k, a.At(k, k)+1)
		beta[k] = -norm
		// Apply the reflector to the remaining columns.
		for j := k + 1; j < n; j++ {
			var s float64
			for i := k; i < a.Rows; i++ {
				s += a.At(i, k) * a.At(i, j)
			}
			s = -s / a.At(k, k)
			for i := k; i < a.Rows; i++ {
				a.Set(i, j, a.At(i, j)+s*a.At(i, k))
			}
		}
	}
	return &qr{a: a, beta: beta}, nil
}

// applyQT overwrites y with Qᵀy.
func (f *qr) applyQT(y []float64) {
	n := f.a.Cols
	for k := 0; k < n; k++ {
		var s float64
		for i := k; i < f.a.Rows; i++ {
			s += f.a.At(i, k) * y[i]
		}
		s = -s / f.a.At(k, k)
		for i := k; i < f.a.Rows; i++ {
			y[i] += s * f.a.At(i, k)
		}
	}
}

// solveR solves R x = b for the upper-triangular R stored in the
// factorisation, where b has length >= Cols.
func (f *qr) solveR(b []float64) ([]float64, error) {
	n := f.a.Cols
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		r := b[i]
		for j := i + 1; j < n; j++ {
			r -= f.rAt(i, j) * x[j]
		}
		d := f.rAt(i, i)
		if d == 0 {
			return nil, ErrRankDeficient
		}
		x[i] = r / d
	}
	return x, nil
}

// rAt returns R(i, j). The diagonal of R is held in beta (negated during
// the factorisation), the strict upper triangle lives in a.
func (f *qr) rAt(i, j int) float64 {
	if i == j {
		return f.beta[i]
	}
	return f.a.At(i, j)
}

// invRtR computes (RᵀR)⁻¹ = (XᵀX)⁻¹, needed for the coefficient
// covariance matrix. It inverts R by back substitution column by column
// and multiplies R⁻¹ R⁻ᵀ.
func (f *qr) invRtR() (*Matrix, error) {
	n := f.a.Cols
	rinv := NewMatrix(n, n)
	// Solve R * col_j = e_j for each j to build R⁻¹.
	e := make([]float64, n)
	for j := 0; j < n; j++ {
		for i := range e {
			e[i] = 0
		}
		e[j] = 1
		col, err := f.solveR(e)
		if err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			rinv.Set(i, j, col[i])
		}
	}
	// (XᵀX)⁻¹ = R⁻¹ R⁻ᵀ.
	out := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for k := 0; k < n; k++ {
				s += rinv.At(i, k) * rinv.At(j, k)
			}
			out.Set(i, j, s)
		}
	}
	return out, nil
}

// LeastSquares solves min ||X b - y||₂ by Householder QR and returns the
// coefficient vector b.
func LeastSquares(x *Matrix, y []float64) ([]float64, error) {
	if len(y) != x.Rows {
		return nil, errors.New("stats: response length mismatch")
	}
	f, err := factorQR(x)
	if err != nil {
		return nil, err
	}
	qty := make([]float64, len(y))
	copy(qty, y)
	f.applyQT(qty)
	return f.solveR(qty)
}
