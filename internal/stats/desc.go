// Package stats provides the statistical substrate used throughout the
// repository: descriptive statistics, histograms, empirical and
// complementary CDFs, Pearson correlation, min-max normalisation,
// standardisation, and ordinary least squares regression with full
// inference (standard errors, t-statistics, p-values, adjusted R²).
//
// The package is written against the paper's needs: Table 3 is a multiple
// linear regression with dummy-coded categorical variables and
// standardised numeric variables; Figures 2-8 need histograms, CCDFs and
// Pearson correlations; every experiment reports means with 95%
// confidence intervals.
//
// All functions are deterministic and allocate only what they return.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by functions that require at least one sample.
var ErrEmpty = errors.New("stats: empty sample")

// Sum returns the sum of xs. An empty slice sums to 0.
func Sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// Mean returns the arithmetic mean of xs. It returns NaN for an empty
// slice so that downstream aggregation surfaces the error rather than
// silently treating the sample as zero.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	return Sum(xs) / float64(len(xs))
}

// Variance returns the unbiased (n-1) sample variance of xs.
// It returns 0 for samples of size < 2.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(n-1)
}

// StdDev returns the unbiased sample standard deviation of xs.
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// PopVariance returns the population (n) variance of xs.
func PopVariance(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(n)
}

// Min returns the minimum of xs. It returns +Inf for an empty slice.
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs. It returns -Inf for an empty slice.
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// Median returns the median of xs, interpolating between the two middle
// order statistics for even-sized samples. It returns NaN for an empty
// slice. xs is not modified.
func Median(xs []float64) float64 {
	return Quantile(xs, 0.5)
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics (type-7, the R default).
// It returns NaN for an empty slice. xs is not modified.
func Quantile(xs []float64, q float64) float64 {
	n := len(xs)
	if n == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return Min(xs)
	}
	if q >= 1 {
		return Max(xs)
	}
	sorted := make([]float64, n)
	copy(sorted, xs)
	sort.Float64s(sorted)
	h := q * float64(n-1)
	lo := int(math.Floor(h))
	hi := lo + 1
	if hi >= n {
		return sorted[n-1]
	}
	frac := h - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// MeanCI holds a sample mean together with a symmetric confidence
// interval half-width, as used for the error bars in Figures 9 and 10.
type MeanCI struct {
	Mean  float64 // sample mean
	Half  float64 // half-width of the confidence interval
	N     int     // sample size
	Level float64 // confidence level, e.g. 0.95
}

// Lo returns the lower bound of the interval.
func (c MeanCI) Lo() float64 { return c.Mean - c.Half }

// Hi returns the upper bound of the interval.
func (c MeanCI) Hi() float64 { return c.Mean + c.Half }

// MeanCI95 returns the sample mean of xs with a 95% Student-t confidence
// interval. For n < 2 the half-width is zero.
func MeanCI95(xs []float64) MeanCI {
	return MeanConfidence(xs, 0.95)
}

// MeanConfidence returns the sample mean of xs with a Student-t
// confidence interval at the given level (e.g. 0.95).
func MeanConfidence(xs []float64, level float64) MeanCI {
	n := len(xs)
	ci := MeanCI{Mean: Mean(xs), N: n, Level: level}
	if n < 2 {
		return ci
	}
	sem := StdDev(xs) / math.Sqrt(float64(n))
	t := TQuantile(1-(1-level)/2, float64(n-1))
	ci.Half = t * sem
	return ci
}

// MinMaxNormalize rescales xs into [0,1] in place semantics over a fresh
// slice: the minimum maps to 0 and the maximum to 1, exactly the
// normalisation the paper applies to Performance over the whole design
// space ("P=1 indicates the best performance obtained from any protocol
// in the design space"). If all values are equal the result is all zeros.
func MinMaxNormalize(xs []float64) []float64 {
	out := make([]float64, len(xs))
	lo, hi := Min(xs), Max(xs)
	span := hi - lo
	if span <= 0 || math.IsInf(lo, 1) {
		return out
	}
	for i, x := range xs {
		out[i] = (x - lo) / span
	}
	return out
}

// Standardize returns (xs - mean)/stddev, the z-scores used for the
// standardised regressors h~ and k~ in Table 3. If the standard
// deviation is zero the result is all zeros.
func Standardize(xs []float64) []float64 {
	out := make([]float64, len(xs))
	m, s := Mean(xs), StdDev(xs)
	if s == 0 || math.IsNaN(s) {
		return out
	}
	for i, x := range xs {
		out[i] = (x - m) / s
	}
	return out
}

// Pearson returns the Pearson product-moment correlation coefficient
// between xs and ys. It returns an error if the slices differ in length,
// contain fewer than two points, or have zero variance.
//
// The paper reports Pearson's r in three places: Figure 8 (r=0.96
// between Robustness and Aggressiveness), the 50-50 vs 90-10 robustness
// validation (r=0.97), and implicitly in the regression diagnostics.
func Pearson(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, errors.New("stats: Pearson: length mismatch")
	}
	n := len(xs)
	if n < 2 {
		return 0, ErrEmpty
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := 0; i < n; i++ {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, errors.New("stats: Pearson: zero variance")
	}
	return sxy / math.Sqrt(sxx*syy), nil
}
