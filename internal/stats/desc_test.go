package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	return math.Abs(a-b) <= tol
}

func TestMeanBasic(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{[]float64{1, 2, 3}, 2},
		{[]float64{5}, 5},
		{[]float64{-1, 1}, 0},
		{[]float64{0.5, 0.5, 0.5, 0.5}, 0.5},
	}
	for _, c := range cases {
		if got := Mean(c.in); !almostEq(got, c.want, 1e-12) {
			t.Errorf("Mean(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestMeanEmptyIsNaN(t *testing.T) {
	if !math.IsNaN(Mean(nil)) {
		t.Error("Mean(nil) should be NaN")
	}
}

func TestVariance(t *testing.T) {
	// Known: sample variance of 2,4,4,4,5,5,7,9 is 4.571428...
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); !almostEq(got, 32.0/7.0, 1e-12) {
		t.Errorf("Variance = %v, want %v", got, 32.0/7.0)
	}
	if Variance([]float64{3}) != 0 {
		t.Error("Variance of singleton should be 0")
	}
}

func TestPopVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := PopVariance(xs); !almostEq(got, 4, 1e-12) {
		t.Errorf("PopVariance = %v, want 4", got)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -2, 7, 0}
	if Min(xs) != -2 || Max(xs) != 7 {
		t.Errorf("Min/Max = %v/%v", Min(xs), Max(xs))
	}
	if !math.IsInf(Min(nil), 1) || !math.IsInf(Max(nil), -1) {
		t.Error("empty Min/Max should be infinities")
	}
}

func TestMedianAndQuantile(t *testing.T) {
	if got := Median([]float64{1, 3, 2}); got != 2 {
		t.Errorf("Median odd = %v", got)
	}
	if got := Median([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Errorf("Median even = %v", got)
	}
	xs := []float64{10, 20, 30, 40, 50}
	if got := Quantile(xs, 0.25); got != 20 {
		t.Errorf("Q25 = %v, want 20", got)
	}
	if got := Quantile(xs, 0); got != 10 {
		t.Errorf("Q0 = %v", got)
	}
	if got := Quantile(xs, 1); got != 50 {
		t.Errorf("Q1 = %v", got)
	}
	// Quantile must not modify its input.
	orig := []float64{5, 1, 4}
	Quantile(orig, 0.5)
	if orig[0] != 5 || orig[1] != 1 || orig[2] != 4 {
		t.Error("Quantile modified its input")
	}
}

func TestMinMaxNormalize(t *testing.T) {
	out := MinMaxNormalize([]float64{2, 4, 6})
	want := []float64{0, 0.5, 1}
	for i := range want {
		if !almostEq(out[i], want[i], 1e-12) {
			t.Errorf("normalize[%d] = %v, want %v", i, out[i], want[i])
		}
	}
	// Constant input maps to zeros.
	for _, v := range MinMaxNormalize([]float64{3, 3, 3}) {
		if v != 0 {
			t.Error("constant input should normalize to 0")
		}
	}
}

func TestMinMaxNormalizeProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				// Clamp magnitudes so span arithmetic stays exact enough.
				xs = append(xs, math.Mod(v, 1e6))
			}
		}
		if len(xs) < 2 {
			return true
		}
		out := MinMaxNormalize(xs)
		for _, v := range out {
			if v < -1e-9 || v > 1+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStandardize(t *testing.T) {
	out := Standardize([]float64{1, 2, 3, 4, 5})
	if !almostEq(Mean(out), 0, 1e-12) {
		t.Errorf("standardized mean = %v", Mean(out))
	}
	if !almostEq(StdDev(out), 1, 1e-12) {
		t.Errorf("standardized sd = %v", StdDev(out))
	}
}

func TestPearsonPerfect(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{2, 4, 6, 8}
	r, err := Pearson(xs, ys)
	if err != nil || !almostEq(r, 1, 1e-12) {
		t.Errorf("Pearson = %v, %v", r, err)
	}
	neg := []float64{8, 6, 4, 2}
	r, _ = Pearson(xs, neg)
	if !almostEq(r, -1, 1e-12) {
		t.Errorf("Pearson negative = %v", r)
	}
}

func TestPearsonErrors(t *testing.T) {
	if _, err := Pearson([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := Pearson([]float64{1}, []float64{2}); err == nil {
		t.Error("n<2 should error")
	}
	if _, err := Pearson([]float64{1, 1}, []float64{2, 3}); err == nil {
		t.Error("zero variance should error")
	}
}

func TestPearsonRangeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(50)
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()
			ys[i] = rng.NormFloat64()
		}
		r, err := Pearson(xs, ys)
		if err != nil {
			continue
		}
		if r < -1-1e-9 || r > 1+1e-9 {
			t.Fatalf("Pearson out of range: %v", r)
		}
	}
}

func TestMeanCI95(t *testing.T) {
	// 95% CI of a known sample: n=4, mean=2.5, sd=~1.29, t(3,0.975)=3.1824.
	xs := []float64{1, 2, 3, 4}
	ci := MeanCI95(xs)
	if !almostEq(ci.Mean, 2.5, 1e-12) {
		t.Errorf("mean = %v", ci.Mean)
	}
	wantHalf := 3.182446305 * StdDev(xs) / 2
	if !almostEq(ci.Half, wantHalf, 1e-6) {
		t.Errorf("half = %v, want %v", ci.Half, wantHalf)
	}
	if !almostEq(ci.Lo(), ci.Mean-ci.Half, 1e-12) || !almostEq(ci.Hi(), ci.Mean+ci.Half, 1e-12) {
		t.Error("Lo/Hi inconsistent")
	}
}

func TestMeanCISingleton(t *testing.T) {
	ci := MeanCI95([]float64{7})
	if ci.Mean != 7 || ci.Half != 0 {
		t.Errorf("singleton CI = %+v", ci)
	}
}

func TestMeanCICoverageProperty(t *testing.T) {
	// Empirical coverage of the 95% CI over normal samples should be
	// near 95%: a sanity check on TQuantile's integration with MeanCI.
	rng := rand.New(rand.NewSource(42))
	const trials = 400
	covered := 0
	for trial := 0; trial < trials; trial++ {
		xs := make([]float64, 10)
		for i := range xs {
			xs[i] = 5 + 2*rng.NormFloat64()
		}
		ci := MeanCI95(xs)
		if ci.Lo() <= 5 && 5 <= ci.Hi() {
			covered++
		}
	}
	frac := float64(covered) / trials
	if frac < 0.90 || frac > 0.99 {
		t.Errorf("95%% CI coverage = %v, want ≈0.95", frac)
	}
}

func TestSumEmpty(t *testing.T) {
	if Sum(nil) != 0 {
		t.Error("Sum(nil) != 0")
	}
}

func TestStandardizeDegenerate(t *testing.T) {
	for _, v := range Standardize([]float64{2, 2, 2}) {
		if v != 0 {
			t.Error("constant standardize should be 0")
		}
	}
}
