// Package delivery applies Design Space Analysis to a third domain —
// swarm content-delivery orchestration — the paper's own closing pitch
// (Section 7) that DSA generalises to any distributed-coordination
// design problem, instantiated on the design space of a debswarm-style
// fleet downloader: a client fetching a chunked file from a swarm of
// peers and/or an HTTP mirror, deciding which peers to trust, how wide
// to fan out, when to give up on a slow source, and when to fall back
// to the mirror.
//
// The simulation sits on the two substrate packages of the Section 5
// validation: internal/bandwidth supplies the heterogeneous peer
// upload-capacity distribution (Piatek et al.), and the file/chunk/
// mirror scale is the Section 5 swarm setup (swarm.Default(): a 5 MiB
// file in 256 KiB pieces, a 128 KiB/s origin — here the mirror plays
// the seeder's role).
//
// # The design space
//
// Five dimensions, 4·4·3·3·4 = 576 design points:
//
//   - Selection: how the client scores peers when assigning a chunk —
//     discrete blends of observed latency, throughput and reliability
//     (Latency, Throughput, Reliability, Balanced). debswarm ranks its
//     peers with exactly these signals.
//   - Fanout: parallel chunk fetches in flight (1, 2, 4, 8).
//   - Racing: P2POnly (never touch the mirror), MirrorOnly (never touch
//     the swarm), Race (start on the swarm, fall back to the mirror for
//     any chunk whose peer fetch times out).
//   - Timeout: Fixed (a flat per-chunk deadline), Adaptive (2.5× the
//     observed mean chunk time), Eager (1.2× — aggressive re-issue).
//   - Scenario: the adversary model the strategy must survive — Honest,
//     FreeRiders (stalling peers that accept requests and deliver
//     nothing), Colluders (under-reporters: instant accept, throttled
//     delivery — they look great to latency scoring), Sybil (peers
//     churn identities, resetting everything the client learned).
//
// Unlike the file-swarming and gossip domains, the adversary is *in*
// the space: a design point is only good if its orchestration policy
// holds up under the scenario it is paired with, which is what the
// robustness measure quantifies (see domain.go).
//
// # Determinism
//
// A run is a pure function of (Strategy, Options): one rand.Rand seeded
// from Options.Seed drives every draw, peers are visited in index
// order, ties in peer selection resolve to the lowest index, and the
// transfer loop iterates chunks in index order. The domain layer
// derives per-run seeds from the point's stable ID via dsa.TaskSeed,
// so any sharding of a sweep recombines byte-identically.
package delivery

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/bandwidth"
	"repro/internal/core"
	"repro/internal/swarm"
)

// Selection is the peer-scoring blend used when assigning a chunk.
type Selection int

// Selection policies: which observed signal ranks peers.
const (
	// SelLatency picks the peer with the lowest observed response
	// latency — fast to react, trivially gamed by colluders.
	SelLatency Selection = iota
	// SelThroughput picks the peer with the highest observed chunk
	// throughput.
	SelThroughput
	// SelReliability picks the peer with the best success/attempt
	// record.
	SelReliability
	// SelBalanced blends all three signals equally.
	SelBalanced
)

// String names the selection policy.
func (s Selection) String() string {
	switch s {
	case SelLatency:
		return "Latency"
	case SelThroughput:
		return "Throughput"
	case SelReliability:
		return "Reliability"
	case SelBalanced:
		return "Balanced"
	default:
		return fmt.Sprintf("Selection(%d)", int(s))
	}
}

// weights returns the (latency, throughput, reliability) blend.
func (s Selection) weights() (wl, wt, wr float64) {
	switch s {
	case SelLatency:
		return 1, 0, 0
	case SelThroughput:
		return 0, 1, 0
	case SelReliability:
		return 0, 0, 1
	default:
		return 1.0 / 3, 1.0 / 3, 1.0 / 3
	}
}

// Racing is the mirror policy.
type Racing int

// Racing policies.
const (
	// RaceP2POnly never uses the mirror; if the swarm cannot deliver,
	// the download stalls.
	RaceP2POnly Racing = iota
	// RaceMirrorOnly fetches every chunk from the mirror, sharing its
	// capacity across concurrent fetches.
	RaceMirrorOnly
	// RaceWithFallback starts every chunk on the swarm and re-issues it
	// to the mirror once the peer fetch times out — debswarm's racing
	// strategy.
	RaceWithFallback
)

// String names the racing policy.
func (r Racing) String() string {
	switch r {
	case RaceP2POnly:
		return "P2POnly"
	case RaceMirrorOnly:
		return "MirrorOnly"
	case RaceWithFallback:
		return "Race"
	default:
		return fmt.Sprintf("Racing(%d)", int(r))
	}
}

// Timeout is the per-chunk deadline policy.
type Timeout int

// Timeout policies.
const (
	// TimeoutFixed uses a flat 20 s deadline per chunk.
	TimeoutFixed Timeout = iota
	// TimeoutAdaptive uses 2.5× the observed mean chunk time, clamped
	// to [5 s, 40 s].
	TimeoutAdaptive
	// TimeoutEager uses 1.2× the observed mean chunk time, clamped to
	// [2 s, 40 s] — re-issues aggressively, risking wasted transfers.
	TimeoutEager
)

// String names the timeout policy.
func (t Timeout) String() string {
	switch t {
	case TimeoutFixed:
		return "Fixed"
	case TimeoutAdaptive:
		return "Adaptive"
	case TimeoutEager:
		return "Eager"
	default:
		return fmt.Sprintf("Timeout(%d)", int(t))
	}
}

// Scenario is the adversary model of a run.
type Scenario int

// Adversary scenarios.
const (
	// ScenarioHonest has every peer serve at its true capacity.
	ScenarioHonest Scenario = iota
	// ScenarioFreeRiders makes 40% of peers free riders: they accept
	// chunk requests promptly and then deliver essentially nothing.
	ScenarioFreeRiders
	// ScenarioColluders makes 40% of peers colluding under-reporters:
	// they respond instantly (gaming latency-based selection) but
	// throttle delivery to a quarter of their capacity.
	ScenarioColluders
	// ScenarioSybil churns peer identities: every second each peer may
	// reappear as a fresh identity, aborting its transfer and wiping
	// everything the client had learned about it.
	ScenarioSybil
)

// String names the scenario.
func (s Scenario) String() string {
	switch s {
	case ScenarioHonest:
		return "Honest"
	case ScenarioFreeRiders:
		return "FreeRiders"
	case ScenarioColluders:
		return "Colluders"
	case ScenarioSybil:
		return "Sybil"
	default:
		return fmt.Sprintf("Scenario(%d)", int(s))
	}
}

// fanouts are the actualized fan-out widths.
var fanouts = [4]int{1, 2, 4, 8}

// Strategy is one point of the delivery design space.
type Strategy struct {
	Selection Selection
	Fanout    int // parallel chunk fetches: 1, 2, 4 or 8
	Racing    Racing
	Timeout   Timeout
	Scenario  Scenario
}

// Validate reports whether s is inside the actualized space.
func (s Strategy) Validate() error {
	if s.Selection < SelLatency || s.Selection > SelBalanced {
		return fmt.Errorf("delivery: unknown selection %d", int(s.Selection))
	}
	switch s.Fanout {
	case 1, 2, 4, 8:
	default:
		return fmt.Errorf("delivery: fanout must be 1, 2, 4 or 8, got %d", s.Fanout)
	}
	if s.Racing < RaceP2POnly || s.Racing > RaceWithFallback {
		return fmt.Errorf("delivery: unknown racing policy %d", int(s.Racing))
	}
	if s.Timeout < TimeoutFixed || s.Timeout > TimeoutEager {
		return fmt.Errorf("delivery: unknown timeout policy %d", int(s.Timeout))
	}
	if s.Scenario < ScenarioHonest || s.Scenario > ScenarioSybil {
		return fmt.Errorf("delivery: unknown scenario %d", int(s.Scenario))
	}
	return nil
}

// String returns a compact code, e.g. "Balanced/f4/Race/Adaptive/Sybil".
func (s Strategy) String() string {
	return fmt.Sprintf("%s/f%d/%s/%s/%s", s.Selection, s.Fanout, s.Racing, s.Timeout, s.Scenario)
}

// Space returns the delivery design space in core form: 4 selections ×
// 4 fanouts × 3 racing policies × 3 timeout policies × 4 scenarios =
// 576 strategies.
func Space() *core.Space {
	dims := []core.Dimension{
		{Name: "selection", Values: []string{"Latency", "Throughput", "Reliability", "Balanced"}},
		{Name: "fanout", Values: []string{"1", "2", "4", "8"}},
		{Name: "racing", Values: []string{"P2POnly", "MirrorOnly", "Race"}},
		{Name: "timeout", Values: []string{"Fixed", "Adaptive", "Eager"}},
		{Name: "scenario", Values: []string{"Honest", "FreeRiders", "Colluders", "Sybil"}},
	}
	s, err := core.NewSpace("delivery", dims, nil)
	if err != nil {
		panic("delivery: space: " + err.Error())
	}
	return s
}

// FromPoint converts a core point of Space() into a Strategy.
func FromPoint(pt core.Point) (Strategy, error) {
	if len(pt) != 5 {
		return Strategy{}, fmt.Errorf("delivery: point needs 5 coords, got %d", len(pt))
	}
	if pt[1] < 0 || pt[1] >= len(fanouts) {
		return Strategy{}, fmt.Errorf("delivery: fanout index %d out of range", pt[1])
	}
	s := Strategy{
		Selection: Selection(pt[0]),
		Fanout:    fanouts[pt[1]],
		Racing:    Racing(pt[2]),
		Timeout:   Timeout(pt[3]),
		Scenario:  Scenario(pt[4]),
	}
	return s, s.Validate()
}

// Options configures one simulated download.
type Options struct {
	Peers      int   // swarm peers available to the client
	MaxSeconds int   // horizon; a download not finished by then is censored
	Seed       int64 // drives every random draw of the run
	// Churn is a baseline per-second identity-churn probability applied
	// to every peer on top of the scenario's own churn (the Sybil
	// scenario adds its own). In [0,1].
	Churn float64
	// Stress enables the robustness stress mode: peers additionally
	// depart permanently at stressFailPerSec and the mirror serves at
	// half rate — the churn/failure regime the robustness measure
	// compares completion rates under.
	Stress         bool
	FileKiB        int     // file size in KiB
	ChunkKiB       int     // chunk size in KiB
	MirrorKBps     float64 // mirror (origin) upload capacity
	ClientDownKBps float64 // client download capacity shared by concurrent fetches
	// Dist supplies peer upload capacities; nil = bandwidth.Piatek.
	Dist *bandwidth.Distribution
}

// DefaultOptions returns the Section 5 delivery setup: the swarm
// validation's 5 MiB file in 256 KiB chunks with the mirror serving at
// the seeder's 128 KiB/s, 16 peers, a 1 MiB/s client downlink and a
// 600 s horizon.
func DefaultOptions() Options {
	sw := swarm.Default()
	return Options{
		Peers:          16,
		MaxSeconds:     600,
		Seed:           1,
		FileKiB:        sw.FileKiB,
		ChunkKiB:       sw.PieceKiB,
		MirrorKBps:     sw.SeedUploadKBps,
		ClientDownKBps: 1024,
	}
}

func (o Options) validate() error {
	switch {
	case o.Peers < 2:
		return fmt.Errorf("delivery: need at least 2 peers, got %d", o.Peers)
	case o.MaxSeconds < 1:
		return fmt.Errorf("delivery: MaxSeconds must be positive")
	case o.FileKiB < 1 || o.ChunkKiB < 1:
		return fmt.Errorf("delivery: file and chunk sizes must be positive")
	case o.ChunkKiB > o.FileKiB:
		return fmt.Errorf("delivery: chunk larger than file")
	case o.MirrorKBps <= 0:
		return fmt.Errorf("delivery: mirror capacity must be positive")
	case o.ClientDownKBps <= 0:
		return fmt.Errorf("delivery: client download capacity must be positive")
	case math.IsNaN(o.Churn) || o.Churn < 0 || o.Churn > 1:
		return fmt.Errorf("delivery: Churn must be in [0,1], got %v", o.Churn)
	}
	return nil
}

// Result reports one simulated download.
type Result struct {
	// Completed reports whether every chunk arrived within MaxSeconds.
	Completed bool
	// Seconds is the completion time (MaxSeconds when censored).
	Seconds int
	// PeerKiB / MirrorKiB split the delivered bytes by source; their
	// ratio is the mirror-offload measure.
	PeerKiB   float64
	MirrorKiB float64
	// Restarts counts chunk fetches aborted by timeout, churn or peer
	// departure.
	Restarts int
}

// Behaviour constants of the simulation model (documented in
// DESIGN.md; changing any of them changes scores, so they are fixed
// package constants, not options).
const (
	adversaryFrac    = 0.4  // fraction of adversarial peers in FreeRiders/Colluders
	freeRiderKBps    = 0.5  // a free rider's actual delivery rate
	colluderFactor   = 0.25 // a colluder delivers this fraction of its capacity
	colluderLatS     = 0.02 // colluders answer instantly to look attractive
	sybilChurnPerSec = 0.03 // per-second identity churn in the Sybil scenario
	stressFailPerSec = 0.02 // per-second permanent departure under Stress
	stressMirrorFrac = 0.5  // mirror capacity factor under Stress
	exploreEps       = 0.15 // ε-greedy exploration rate of peer selection
	fixedTimeoutS    = 20.0 // TimeoutFixed deadline
	unknownLatPrior  = 0.25 // optimistic latency prior for unattempted peers
	ewmaKeep         = 0.7  // EWMA retention for observed stats
)

// peerState is one swarm peer plus everything the client has observed
// about it.
type peerState struct {
	capKBps   float64
	latS      float64 // true request→first-byte latency in seconds
	freeRider bool
	colluder  bool
	alive     bool
	serving   int // chunk index currently fetched from this peer, -1 none
	// Client-observed statistics (wiped when the peer churns identity):
	ewmaThr  float64 // KiB/s over completed chunks
	ewmaLat  float64 // seconds
	attempts float64
	fails    float64
}

// deliverRate is the peer's actual delivery rate toward the client.
func (p *peerState) deliverRate() float64 {
	switch {
	case p.freeRider:
		return freeRiderKBps
	case p.colluder:
		return colluderFactor * p.capKBps
	default:
		return p.capKBps
	}
}

// chunkState is one chunk of the file.
type chunkState struct {
	done        bool
	active      bool
	src         int // peer index, or -1 for the mirror
	progress    float64
	started     int
	forceMirror bool // Race fallback: a timed-out chunk re-issues to the mirror
}

// Run simulates one download of strategy s under opt.
func Run(s Strategy, opt Options) (Result, error) {
	if err := s.Validate(); err != nil {
		return Result{}, err
	}
	if err := opt.validate(); err != nil {
		return Result{}, err
	}
	return run(s, opt), nil
}

// spawn initialises (or re-rolls, on identity churn) one peer.
func spawn(p *peerState, s Strategy, dist *bandwidth.Distribution, rng *rand.Rand) {
	*p = peerState{
		capKBps: dist.Sample(rng),
		latS:    0.05 + 0.45*rng.Float64(),
		alive:   true,
		serving: -1,
	}
	switch s.Scenario {
	case ScenarioFreeRiders:
		if rng.Float64() < adversaryFrac {
			p.freeRider = true
			p.latS = 0.05
		}
	case ScenarioColluders:
		if rng.Float64() < adversaryFrac {
			p.colluder = true
			p.latS = colluderLatS
		}
	}
}

func run(s Strategy, opt Options) Result {
	rng := rand.New(rand.NewSource(opt.Seed))
	dist := opt.Dist
	if dist == nil {
		dist = bandwidth.Piatek()
	}
	peers := make([]peerState, opt.Peers)
	for i := range peers {
		spawn(&peers[i], s, dist, rng)
	}
	nChunks := (opt.FileKiB + opt.ChunkKiB - 1) / opt.ChunkKiB
	chunks := make([]chunkState, nChunks)
	for i := range chunks {
		chunks[i].src = -1
	}
	chunkKiB := float64(opt.ChunkKiB)

	mirrorKBps := opt.MirrorKBps
	if opt.Stress {
		mirrorKBps *= stressMirrorFrac
	}

	var res Result
	doneChunks := 0
	// ewmaChunkS is the client's running estimate of a chunk's transfer
	// time, seeding the adaptive timeouts; initialised from the
	// distribution's median capacity.
	ewmaChunkS := chunkKiB / dist.Median()

	churnProb := opt.Churn
	if s.Scenario == ScenarioSybil {
		churnProb += sybilChurnPerSec
	}
	if churnProb > 1 {
		churnProb = 1
	}

	abort := func(c *chunkState) {
		if c.src >= 0 {
			peers[c.src].serving = -1
		}
		c.active = false
		c.src = -1
		c.progress = 0
		res.Restarts++
	}

	rates := make([]float64, nChunks)
	for sec := 0; sec < opt.MaxSeconds; sec++ {
		// 1. Churn and stress departures, peers in index order.
		for i := range peers {
			p := &peers[i]
			if !p.alive {
				continue
			}
			if churnProb > 0 && rng.Float64() < churnProb {
				// Identity churn: the transfer dies and the client's
				// knowledge of the peer evaporates with its old name.
				if p.serving >= 0 {
					abort(&chunks[p.serving])
				}
				spawn(p, s, dist, rng)
				continue
			}
			if opt.Stress && rng.Float64() < stressFailPerSec {
				if p.serving >= 0 {
					abort(&chunks[p.serving])
				}
				p.alive = false
			}
		}

		// 2. Assignment: top up to Fanout in-flight chunks.
		active := 0
		for i := range chunks {
			if chunks[i].active {
				active++
			}
		}
		for next := 0; active < s.Fanout && next < nChunks; next++ {
			c := &chunks[next]
			if c.done || c.active {
				continue
			}
			useMirror := s.Racing == RaceMirrorOnly || (s.Racing == RaceWithFallback && c.forceMirror)
			src := -1
			if !useMirror {
				src = pickPeer(peers, s.Selection, rng)
				if src < 0 {
					if s.Racing == RaceP2POnly {
						continue // nothing can serve this chunk right now
					}
					useMirror = true // Race: no eligible peer, go to the mirror
				}
			}
			if useMirror {
				src = -1
			} else {
				peers[src].serving = next
			}
			c.active = true
			c.src = src
			c.progress = 0
			c.started = sec
			active++
		}

		// 3. Transfer: nominal per-source rates, scaled down together
		// if they exceed the client's downlink.
		mirrorFetches := 0
		for i := range chunks {
			if chunks[i].active && chunks[i].src < 0 {
				mirrorFetches++
			}
		}
		total := 0.0
		for i := range chunks {
			c := &chunks[i]
			rates[i] = 0
			if !c.active {
				continue
			}
			if c.src < 0 {
				rates[i] = mirrorKBps / float64(mirrorFetches)
			} else {
				p := &peers[c.src]
				r := p.deliverRate()
				if sec == c.started {
					// Request latency eats into the first second.
					r *= math.Max(0, 1-p.latS)
				}
				rates[i] = r
			}
			total += rates[i]
		}
		if total > opt.ClientDownKBps {
			scale := opt.ClientDownKBps / total
			for i := range rates {
				rates[i] *= scale
			}
		}

		// 4. Progress, completions and timeouts, chunks in index order.
		for i := range chunks {
			c := &chunks[i]
			if !c.active {
				continue
			}
			c.progress += rates[i]
			elapsed := float64(sec - c.started + 1)
			if c.progress >= chunkKiB {
				c.done = true
				c.active = false
				doneChunks++
				if c.src >= 0 {
					p := &peers[c.src]
					p.serving = -1
					obsThr := chunkKiB / elapsed
					if p.attempts == 0 {
						p.ewmaThr, p.ewmaLat = obsThr, p.latS
					} else {
						p.ewmaThr = ewmaKeep*p.ewmaThr + (1-ewmaKeep)*obsThr
						p.ewmaLat = ewmaKeep*p.ewmaLat + (1-ewmaKeep)*p.latS
					}
					p.attempts++
					res.PeerKiB += chunkKiB
				} else {
					res.MirrorKiB += chunkKiB
				}
				ewmaChunkS = ewmaKeep*ewmaChunkS + (1-ewmaKeep)*elapsed
				continue
			}
			if c.src >= 0 && elapsed >= s.timeoutS(ewmaChunkS) {
				p := &peers[c.src]
				p.attempts++
				p.fails++
				if p.attempts == 1 {
					p.ewmaLat = p.latS
				}
				abort(c)
				if s.Racing == RaceWithFallback {
					c.forceMirror = true
				}
			}
		}

		if doneChunks == nChunks {
			res.Completed = true
			res.Seconds = sec + 1
			return res
		}
	}
	res.Seconds = opt.MaxSeconds
	return res
}

// timeoutS returns the current per-chunk deadline in seconds.
func (s Strategy) timeoutS(ewmaChunkS float64) float64 {
	switch s.Timeout {
	case TimeoutAdaptive:
		return clamp(2.5*ewmaChunkS, 5, 40)
	case TimeoutEager:
		return clamp(1.2*ewmaChunkS, 2, 40)
	default:
		return fixedTimeoutS
	}
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// pickPeer chooses an eligible peer (alive, not already serving us) by
// the selection policy, with ε-greedy exploration so unattempted peers
// get observed. Returns -1 if no peer is eligible. Deterministic given
// the rng state: eligibility and scoring iterate in index order and
// ties resolve to the lowest index.
func pickPeer(peers []peerState, sel Selection, rng *rand.Rand) int {
	eligible := 0
	for i := range peers {
		if peers[i].alive && peers[i].serving < 0 {
			eligible++
		}
	}
	if eligible == 0 {
		return -1
	}
	if rng.Float64() < exploreEps {
		k := rng.Intn(eligible)
		for i := range peers {
			if peers[i].alive && peers[i].serving < 0 {
				if k == 0 {
					return i
				}
				k--
			}
		}
	}
	// Normalise latency and throughput goodness by the eligible max so
	// the blend weights act on comparable [0,1] scales.
	maxLat, maxThr := 0.0, 0.0
	for i := range peers {
		p := &peers[i]
		if !p.alive || p.serving >= 0 {
			continue
		}
		if lg := latGoodness(p); lg > maxLat {
			maxLat = lg
		}
		if tg := thrGoodness(p); tg > maxThr {
			maxThr = tg
		}
	}
	wl, wt, wr := sel.weights()
	best, bestScore := -1, math.Inf(-1)
	for i := range peers {
		p := &peers[i]
		if !p.alive || p.serving >= 0 {
			continue
		}
		score := 0.0
		if maxLat > 0 {
			score += wl * latGoodness(p) / maxLat
		}
		if maxThr > 0 {
			score += wt * thrGoodness(p) / maxThr
		}
		score += wr * (p.attempts - p.fails + 1) / (p.attempts + 2)
		if score > bestScore {
			best, bestScore = i, score
		}
	}
	return best
}

// latGoodness is the inverse observed latency; unattempted peers get an
// optimistic prior so they are worth trying.
func latGoodness(p *peerState) float64 {
	lat := p.ewmaLat
	if p.attempts == 0 && p.fails == 0 {
		lat = unknownLatPrior
	}
	return 1 / (0.02 + lat)
}

// thrGoodness is the observed chunk throughput; unattempted peers get
// the optimistic prior of an average peer.
func thrGoodness(p *peerState) float64 {
	if p.attempts == 0 && p.fails == 0 {
		return 50 // the distribution's median class, optimistic prior
	}
	return p.ewmaThr
}
