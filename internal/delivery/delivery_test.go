package delivery

import (
	"math"
	"strings"
	"testing"
)

// tinyOpts is a small, fast download setup shared by simulator tests.
func tinyOpts() Options {
	opt := DefaultOptions()
	opt.Peers = 8
	opt.MaxSeconds = 400
	opt.Seed = 7
	return opt
}

func honest() Strategy {
	return Strategy{Selection: SelBalanced, Fanout: 4, Racing: RaceWithFallback, Timeout: TimeoutAdaptive}
}

func TestSpaceShape(t *testing.T) {
	s := Space()
	pts := s.Enumerate()
	if want := 4 * 4 * 3 * 3 * 4; len(pts) != want {
		t.Fatalf("space has %d points, want %d", len(pts), want)
	}
	seen := map[string]bool{}
	for _, p := range pts {
		st, err := FromPoint(p)
		if err != nil {
			t.Fatalf("FromPoint(%v): %v", p, err)
		}
		if err := st.Validate(); err != nil {
			t.Fatalf("enumerated strategy %v invalid: %v", st, err)
		}
		if seen[st.String()] {
			t.Fatalf("duplicate strategy label %q", st.String())
		}
		seen[st.String()] = true
	}
}

func TestStrategyValidate(t *testing.T) {
	bad := []Strategy{
		{Selection: -1, Fanout: 1},
		{Selection: SelBalanced + 1, Fanout: 1},
		{Fanout: 0},
		{Fanout: 3},
		{Fanout: 16},
		{Fanout: 1, Racing: RaceWithFallback + 1},
		{Fanout: 1, Timeout: TimeoutEager + 1},
		{Fanout: 1, Scenario: ScenarioSybil + 1},
	}
	for _, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("Validate(%+v) accepted an invalid strategy", s)
		}
		if _, err := Run(s, tinyOpts()); err == nil {
			t.Errorf("Run accepted invalid strategy %+v", s)
		}
	}
	if err := honest().Validate(); err != nil {
		t.Fatalf("valid strategy rejected: %v", err)
	}
}

func TestOptionsValidation(t *testing.T) {
	mutate := []func(*Options){
		func(o *Options) { o.Peers = 1 },
		func(o *Options) { o.MaxSeconds = 0 },
		func(o *Options) { o.FileKiB = 0 },
		func(o *Options) { o.ChunkKiB = 0 },
		func(o *Options) { o.ChunkKiB = o.FileKiB + 1 },
		func(o *Options) { o.MirrorKBps = 0 },
		func(o *Options) { o.ClientDownKBps = -1 },
		func(o *Options) { o.Churn = -0.1 },
		func(o *Options) { o.Churn = 1.5 },
		func(o *Options) { o.Churn = math.NaN() },
	}
	for i, m := range mutate {
		opt := tinyOpts()
		m(&opt)
		if _, err := Run(honest(), opt); err == nil {
			t.Errorf("mutation %d: invalid options accepted", i)
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	for _, s := range []Strategy{
		honest(),
		{Selection: SelLatency, Fanout: 2, Racing: RaceP2POnly, Timeout: TimeoutEager, Scenario: ScenarioColluders},
		{Selection: SelReliability, Fanout: 8, Racing: RaceMirrorOnly, Timeout: TimeoutFixed, Scenario: ScenarioSybil},
	} {
		a, err := Run(s, tinyOpts())
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(s, tinyOpts())
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatalf("%v: same seed, different results:\n%+v\n%+v", s, a, b)
		}
	}
}

func TestRunSeedSensitivity(t *testing.T) {
	s := honest()
	opt := tinyOpts()
	a, err := Run(s, opt)
	if err != nil {
		t.Fatal(err)
	}
	differs := false
	for seed := int64(100); seed < 110; seed++ {
		opt.Seed = seed
		b, err := Run(s, opt)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			differs = true
			break
		}
	}
	if !differs {
		t.Fatal("10 different seeds all produced the identical result")
	}
}

// TestBytesConserved pins the accounting identity: a completed download
// delivered exactly the file (rounded up to whole chunks), split
// between swarm and mirror.
func TestBytesConserved(t *testing.T) {
	opt := tinyOpts()
	for seed := int64(0); seed < 10; seed++ {
		opt.Seed = seed
		res, err := Run(honest(), opt)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Completed {
			t.Fatalf("seed %d: honest race download did not complete", seed)
		}
		chunks := (opt.FileKiB + opt.ChunkKiB - 1) / opt.ChunkKiB
		want := float64(chunks * opt.ChunkKiB)
		if got := res.PeerKiB + res.MirrorKiB; got != want {
			t.Fatalf("seed %d: delivered %v KiB, want %v", seed, got, want)
		}
		if res.Seconds < 1 || res.Seconds > opt.MaxSeconds {
			t.Fatalf("seed %d: Seconds = %d outside (0,%d]", seed, res.Seconds, opt.MaxSeconds)
		}
	}
}

func TestRacingSourceConstraints(t *testing.T) {
	opt := tinyOpts()
	p2p := honest()
	p2p.Racing = RaceP2POnly
	res, err := Run(p2p, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.MirrorKiB != 0 {
		t.Fatalf("P2POnly used the mirror: %v KiB", res.MirrorKiB)
	}
	mo := honest()
	mo.Racing = RaceMirrorOnly
	res, err = Run(mo, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.PeerKiB != 0 {
		t.Fatalf("MirrorOnly used the swarm: %v KiB", res.PeerKiB)
	}
	if !res.Completed {
		t.Fatal("MirrorOnly download did not complete")
	}
}

// TestStressSlowsMirror pins the stress regime's mirror half-rate: a
// mirror-only download (deterministic, no randomness on its path)
// takes twice as long under stress.
func TestStressSlowsMirror(t *testing.T) {
	mo := honest()
	mo.Racing = RaceMirrorOnly
	opt := tinyOpts()
	nominal, err := Run(mo, opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Stress = true
	stressed, err := Run(mo, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !nominal.Completed || !stressed.Completed {
		t.Fatal("mirror-only download did not complete")
	}
	if stressed.Seconds <= nominal.Seconds {
		t.Fatalf("stress did not slow the mirror: nominal %ds, stressed %ds", nominal.Seconds, stressed.Seconds)
	}
}

// TestColludersExploitLatencyScoring pins the space's central
// adversarial structure: under colluding under-reporters, pure
// latency scoring (the signal colluders fake) downloads slower on
// aggregate than balanced scoring.
func TestColludersExploitLatencyScoring(t *testing.T) {
	base := Strategy{Fanout: 4, Racing: RaceP2POnly, Timeout: TimeoutAdaptive, Scenario: ScenarioColluders}
	total := func(sel Selection) int {
		s := base
		s.Selection = sel
		sum := 0
		opt := tinyOpts()
		for seed := int64(0); seed < 12; seed++ {
			opt.Seed = seed
			res, err := Run(s, opt)
			if err != nil {
				t.Fatal(err)
			}
			sum += res.Seconds
		}
		return sum
	}
	lat, bal := total(SelLatency), total(SelBalanced)
	if lat <= bal {
		t.Fatalf("colluders should exploit latency scoring: latency total %ds <= balanced total %ds", lat, bal)
	}
}

func TestStringsAreStable(t *testing.T) {
	s := Strategy{Selection: SelThroughput, Fanout: 8, Racing: RaceWithFallback, Timeout: TimeoutEager, Scenario: ScenarioFreeRiders}
	if got, want := s.String(), "Throughput/f8/Race/Eager/FreeRiders"; got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
	for _, bad := range []string{Selection(99).String(), Racing(99).String(), Timeout(99).String(), Scenario(99).String()} {
		if !strings.Contains(bad, "99") {
			t.Fatalf("out-of-range enum String() = %q, want a diagnostic form", bad)
		}
	}
}
