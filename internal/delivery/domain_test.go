package delivery_test

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/delivery"
	"repro/internal/dsa"
)

// tinyCfg is the smallest config that exercises every code path fast.
func tinyCfg() dsa.Config {
	return dsa.Config{Peers: 6, Rounds: 200, PerfRuns: 2, EncounterRuns: 1, Seed: 3, Workers: 1}
}

// subset strides the 576-point space down to a fast 12-point sample.
func subset(t *testing.T, d dsa.Domain) []core.Point {
	t.Helper()
	pts := dsa.StridePoints(d, 48)
	if len(pts) != 12 {
		t.Fatalf("stride subset has %d points, want 12", len(pts))
	}
	return pts
}

func TestDomainRegistered(t *testing.T) {
	d, err := dsa.Get(delivery.DomainName)
	if err != nil {
		t.Fatal(err)
	}
	if d.Name() != "delivery" {
		t.Fatalf("Name() = %q", d.Name())
	}
	if got := d.Space().Size(); got != 576 {
		t.Fatalf("space size %d, want 576", got)
	}
}

func TestMeasuresCanonicalOrder(t *testing.T) {
	d := delivery.Domain()
	got := d.Measures()
	want := []string{"robustness", "mean_time", "p95_time", "mirror_offload"}
	if len(got) != len(want) {
		t.Fatalf("Measures() = %v, want %v", got, want)
	}
	for i := range want {
		// The order is part of the task-enumeration contract; changing
		// it would invalidate every delivery checkpoint.
		if got[i] != want[i] {
			t.Fatalf("Measures() = %v, want %v", got, want)
		}
	}
}

func TestPointIDCodecRoundTrip(t *testing.T) {
	d := delivery.Domain()
	pts := d.Space().Enumerate()
	seen := make(map[int]bool, len(pts))
	for _, p := range pts {
		id, err := d.PointID(p)
		if err != nil {
			t.Fatal(err)
		}
		if seen[id] {
			t.Fatalf("duplicate ID %d", id)
		}
		seen[id] = true
		back, err := d.PointByID(id)
		if err != nil {
			t.Fatal(err)
		}
		if back.Key() != p.Key() {
			t.Fatalf("ID %d: round-trip %v != %v", id, back, p)
		}
	}
	if _, err := d.PointByID(-1); err == nil {
		t.Fatal("PointByID(-1) accepted")
	}
	if _, err := d.PointByID(len(pts)); err == nil {
		t.Fatal("PointByID(size) accepted")
	}
	if _, err := d.PointID(core.Point{0}); err == nil {
		t.Fatal("PointID of a foreign point accepted")
	}
}

func TestDefaultConfigPresets(t *testing.T) {
	d := delivery.Domain()
	for _, preset := range []string{"quick", "paper"} {
		cfg, err := d.DefaultConfig(preset)
		if err != nil {
			t.Fatalf("%s: %v", preset, err)
		}
		if err := cfg.Validate(); err != nil {
			t.Fatalf("%s preset invalid: %v", preset, err)
		}
	}
	if _, err := d.DefaultConfig("nope"); err == nil {
		t.Fatal("unknown preset accepted")
	}
}

func TestScoreSliceDeterministic(t *testing.T) {
	d := delivery.Domain()
	pts := subset(t, d)
	cfg := tinyCfg()
	for _, m := range d.Measures() {
		a, err := d.ScoreSlice(m, pts, nil, cfg)
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		// Workers must never affect values, only speed.
		cfgWide := cfg
		cfgWide.Workers = 4
		b, err := d.ScoreSlice(m, pts, nil, cfgWide)
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		for i := range a {
			if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
				t.Fatalf("%s[%d]: %v != %v across worker counts", m, i, a[i], b[i])
			}
		}
	}
}

// TestScoreSliceConcatenation pins the sharding contract: scores derive
// from point identity, never slice position, so any partition
// concatenates into the full-set result bit-for-bit.
func TestScoreSliceConcatenation(t *testing.T) {
	d := delivery.Domain()
	pts := subset(t, d)
	cfg := tinyCfg()
	for _, m := range d.Measures() {
		full, err := d.ScoreSlice(m, pts, nil, cfg)
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		var parts []float64
		for _, cut := range [][]core.Point{pts[:5], pts[5:9], pts[9:]} {
			vals, err := d.ScoreSlice(m, cut, nil, cfg)
			if err != nil {
				t.Fatalf("%s: %v", m, err)
			}
			parts = append(parts, vals...)
		}
		for i := range full {
			if math.Float64bits(full[i]) != math.Float64bits(parts[i]) {
				t.Fatalf("%s[%d]: full %v != concatenated %v", m, i, full[i], parts[i])
			}
		}
	}
}

func TestMeasureRanges(t *testing.T) {
	d := delivery.Domain()
	pts := subset(t, d)
	cfg := tinyCfg()
	for _, m := range []string{delivery.MeasureRobustness, delivery.MeasureMirrorOffload} {
		vals, err := d.ScoreSlice(m, pts, nil, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range vals {
			if v < 0 || v > 1 || math.IsNaN(v) {
				t.Fatalf("%s[%d] = %v outside [0,1]", m, i, v)
			}
		}
	}
	for _, m := range []string{delivery.MeasureMeanTime, delivery.MeasureP95Time} {
		vals, err := d.ScoreSlice(m, pts, nil, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range vals {
			if v <= 0 || v > float64(cfg.Rounds) || math.IsNaN(v) {
				t.Fatalf("%s[%d] = %v outside (0,%d]", m, i, v, cfg.Rounds)
			}
		}
	}
}

func TestScoreSliceErrors(t *testing.T) {
	d := delivery.Domain()
	pts := subset(t, d)
	if _, err := d.ScoreSlice("nope", pts, nil, tinyCfg()); err == nil {
		t.Fatal("unknown measure accepted")
	}
	if _, err := d.ScoreSlice(delivery.MeasureMeanTime, pts, nil, dsa.Config{}); err == nil {
		t.Fatal("zero config accepted")
	}
	if _, err := d.ScoreSlice(delivery.MeasureMeanTime, []core.Point{{0}}, nil, tinyCfg()); err == nil {
		t.Fatal("foreign point accepted")
	}
}

func TestAssemble(t *testing.T) {
	d := delivery.Domain()
	pts := subset(t, d)
	cfg := tinyCfg()
	raw := map[string][]float64{}
	for _, m := range d.Measures() {
		vals, err := d.ScoreSlice(m, pts, nil, cfg)
		if err != nil {
			t.Fatal(err)
		}
		raw[m] = vals
	}
	scores, err := d.Assemble(pts, raw)
	if err != nil {
		t.Fatal(err)
	}
	if scores.Domain != "delivery" || len(scores.Points) != len(pts) {
		t.Fatalf("bad assembly header: %q, %d points", scores.Domain, len(scores.Points))
	}
	for _, m := range d.Measures() {
		if len(scores.Raw[m]) != len(pts) || len(scores.Values[m]) != len(pts) {
			t.Fatalf("%s: wrong vector lengths", m)
		}
	}
	// The times are inverted min-max normalised: the raw minimum maps
	// to value 1, the raw maximum to 0, everything lands in [0,1].
	for _, m := range []string{delivery.MeasureMeanTime, delivery.MeasureP95Time} {
		rawV, norm := scores.Raw[m], scores.Values[m]
		minI, maxI := 0, 0
		for i := range rawV {
			if rawV[i] < rawV[minI] {
				minI = i
			}
			if rawV[i] > rawV[maxI] {
				maxI = i
			}
		}
		if rawV[minI] == rawV[maxI] {
			t.Fatalf("%s: degenerate sample, pick a different subset", m)
		}
		if norm[minI] != 1 || norm[maxI] != 0 {
			t.Fatalf("%s: inverted normalisation broken: min→%v, max→%v", m, norm[minI], norm[maxI])
		}
		for i, v := range norm {
			if v < 0 || v > 1 {
				t.Fatalf("%s[%d] normalised to %v", m, i, v)
			}
		}
	}
	// Raw and Values must be distinct backing arrays: mutating one view
	// cannot corrupt the other.
	scores.Raw[delivery.MeasureRobustness][0] = -99
	if scores.Values[delivery.MeasureRobustness][0] == -99 {
		t.Fatal("Raw and Values share a backing slice")
	}
	// Missing or short measures are rejected.
	short := map[string][]float64{}
	for _, m := range d.Measures() {
		short[m] = raw[m][:len(pts)-1]
	}
	if _, err := d.Assemble(pts, short); err == nil {
		t.Fatal("short raw vectors accepted")
	}
	if _, err := d.Assemble(pts, map[string][]float64{}); err == nil {
		t.Fatal("empty raw map accepted")
	}
}

// TestHillClimbOnRobustness is the acceptance criterion's explorer leg:
// a heuristic search over the robustness measure completes through the
// generic dsa seam with no delivery-specific engine code.
func TestHillClimbOnRobustness(t *testing.T) {
	d := delivery.Domain()
	best, evals, err := dsa.HillClimb(d,
		dsa.Weights{delivery.MeasureRobustness: 1},
		tinyCfg(),
		core.HillClimbConfig{Restarts: 2, MaxSteps: 20, Seed: 5},
		nil)
	if err != nil {
		t.Fatal(err)
	}
	if evals <= 0 {
		t.Fatalf("explorer made %d evaluations", evals)
	}
	if best.Score < 0 || best.Score > 1 || math.IsNaN(best.Score) {
		t.Fatalf("best robustness %v outside [0,1]", best.Score)
	}
	if _, err := d.PointID(best.Point); err != nil {
		t.Fatalf("best point not in the space: %v", err)
	}
}
