package delivery

import (
	"fmt"
	"slices"
	"sync"

	"repro/internal/core"
	"repro/internal/dsa"
	"repro/internal/stats"
)

// DomainName is the delivery domain's registry name.
const DomainName = "delivery"

// Measure kinds of the delivery solution concept. Robustness leads the
// canonical order: it is the domain's headline quantity (the paper's
// point that a design is only good if it survives failure), it is
// already oriented higher-is-better in raw form, and the explorers'
// default objective is the first measure.
const (
	// MeasureRobustness is the completion-rate degradation under
	// churn/failure stress: completions in the stress regime (permanent
	// peer departures, mirror at half rate) divided by completions in
	// the nominal regime, clamped to [0,1]. 1 = no degradation.
	MeasureRobustness = "robustness"
	// MeasureMeanTime is the mean completion time in seconds over the
	// nominal runs (censored runs count as the horizon).
	MeasureMeanTime = "mean_time"
	// MeasureP95Time is the 95th-percentile completion time in seconds
	// over the same nominal runs.
	MeasureP95Time = "p95_time"
	// MeasureMirrorOffload is the fraction of delivered bytes served by
	// the swarm rather than the mirror — how much load the strategy
	// takes off the origin. 1 = pure P2P, 0 = pure mirror.
	MeasureMirrorOffload = "mirror_offload"
)

func init() { dsa.Register(Domain()) }

// Domain returns the content-delivery orchestration design space as a
// dsa.Domain: the third registered vertical, and the first whose
// measures quantify adversarial robustness. Implementing the interface
// is all it takes — sharding, resume, the grid, the score cache and
// the explorers run it through the generic seam unchanged.
func Domain() dsa.Domain { return domainImpl{} }

type domainImpl struct{}

// space and its point index are shared, built once.
var (
	domainOnce  sync.Once
	domainSpace *core.Space
	domainIndex map[string]int // point key → enumeration index (the stable ID)
)

func domainState() (*core.Space, map[string]int) {
	domainOnce.Do(func() {
		domainSpace = Space()
		pts := domainSpace.Enumerate()
		domainIndex = make(map[string]int, len(pts))
		for i, p := range pts {
			domainIndex[p.Key()] = i
		}
	})
	return domainSpace, domainIndex
}

func (domainImpl) Name() string { return DomainName }

func (domainImpl) Space() *core.Space {
	s, _ := domainState()
	return s
}

// PointID is the point's position in the canonical enumeration — the
// stable ID persisted in checkpoint specs.
func (domainImpl) PointID(p core.Point) (int, error) {
	_, index := domainState()
	id, ok := index[p.Key()]
	if !ok {
		return 0, fmt.Errorf("delivery: point %v is not in the delivery space", p)
	}
	return id, nil
}

func (domainImpl) PointByID(id int) (core.Point, error) {
	s, _ := domainState()
	pts := s.Enumerate()
	if id < 0 || id >= len(pts) {
		return nil, fmt.Errorf("delivery: point ID %d out of range [0,%d)", id, len(pts))
	}
	return pts[id], nil
}

func (domainImpl) Label(p core.Point) string {
	s, err := FromPoint(p)
	if err != nil {
		return p.Key()
	}
	return s.String()
}

func (domainImpl) Measures() []string {
	return []string{MeasureRobustness, MeasureMeanTime, MeasureP95Time, MeasureMirrorOffload}
}

// DefaultConfig maps the generic scale onto the delivery simulator:
// Peers is the swarm size, Rounds the per-download horizon in seconds,
// PerfRuns the downloads averaged per (point, regime), Churn the
// baseline identity-churn rate. The domain has no tournament, so
// EncounterRuns/Opponents are inert (kept at their neutral values to
// satisfy Config.Validate).
func (domainImpl) DefaultConfig(preset string) (dsa.Config, error) {
	switch preset {
	case "quick":
		// Seconds for the full 576-strategy space on a laptop.
		return dsa.Config{Peers: 12, Rounds: 400, PerfRuns: 3, EncounterRuns: 1, Seed: 1}, nil
	case "paper":
		// DefaultOptions scale with tight run averaging.
		return dsa.Config{Peers: 40, Rounds: 1800, PerfRuns: 25, EncounterRuns: 1, Seed: 1}, nil
	}
	return dsa.Config{}, fmt.Errorf("delivery: unknown preset %q (want quick or paper)", preset)
}

// SampleOpponents is empty: delivery has no tournament measure — the
// adversaries live inside the design space's scenario dimension.
func (domainImpl) SampleOpponents(cfg dsa.Config) []core.Point { return nil }

// seed discriminators, in the spirit of pra's runSeed kinds. Nominal
// and stress regimes draw disjoint seed streams; every time/offload
// statistic derives from the same nominal runs so the measures are
// coherent views of one experiment.
const (
	seedKindNominal = 11
	seedKindStress  = 12
)

// simOptions maps the generic scale onto one download's options; file,
// chunk, mirror and client scales are domain constants (DefaultOptions).
func simOptions(cfg dsa.Config, seed int64, stress bool) Options {
	opt := DefaultOptions()
	opt.Peers = cfg.Peers
	opt.MaxSeconds = cfg.Rounds
	opt.Churn = cfg.Churn
	opt.Seed = seed
	opt.Stress = stress
	return opt
}

// pointRuns runs PerfRuns downloads of one point in the given regime.
// Seeds derive from the point's stable ID and the run index — never
// from slice position — so any partition of a sweep recombines into
// byte-identical results.
func (d domainImpl) pointRuns(pt core.Point, cfg dsa.Config, kind int, stress bool) ([]Result, error) {
	s, err := FromPoint(pt)
	if err != nil {
		return nil, err
	}
	id, err := d.PointID(pt)
	if err != nil {
		return nil, err
	}
	out := make([]Result, cfg.PerfRuns)
	for r := 0; r < cfg.PerfRuns; r++ {
		res, err := Run(s, simOptions(cfg, dsa.TaskSeed(cfg.Seed, id, 0, r, kind), stress))
		if err != nil {
			return nil, err
		}
		out[r] = res
	}
	return out, nil
}

func (d domainImpl) ScoreSlice(measure string, pts, opponents []core.Point, cfg dsa.Config) ([]float64, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	var value func(nominal []Result, pt core.Point) (float64, error)
	switch measure {
	case MeasureMeanTime:
		value = func(nominal []Result, _ core.Point) (float64, error) {
			sum := 0.0
			for _, r := range nominal {
				sum += float64(r.Seconds)
			}
			return sum / float64(len(nominal)), nil
		}
	case MeasureP95Time:
		value = func(nominal []Result, _ core.Point) (float64, error) {
			times := make([]float64, len(nominal))
			for i, r := range nominal {
				times[i] = float64(r.Seconds)
			}
			return stats.Quantile(times, 0.95), nil
		}
	case MeasureMirrorOffload:
		value = func(nominal []Result, _ core.Point) (float64, error) {
			peer, total := 0.0, 0.0
			for _, r := range nominal {
				peer += r.PeerKiB
				total += r.PeerKiB + r.MirrorKiB
			}
			if total == 0 {
				return 0, nil
			}
			return peer / total, nil
		}
	case MeasureRobustness:
		value = func(nominal []Result, pt core.Point) (float64, error) {
			stressed, err := d.pointRuns(pt, cfg, seedKindStress, true)
			if err != nil {
				return 0, err
			}
			nomDone, strDone := 0, 0
			for _, r := range nominal {
				if r.Completed {
					nomDone++
				}
			}
			for _, r := range stressed {
				if r.Completed {
					strDone++
				}
			}
			if nomDone == 0 {
				// A strategy that cannot complete even nominally has
				// nothing to degrade from.
				return 0, nil
			}
			rb := float64(strDone) / float64(nomDone)
			if rb > 1 {
				rb = 1
			}
			return rb, nil
		}
	default:
		return nil, fmt.Errorf("delivery: unknown measure %q", measure)
	}
	out := make([]float64, len(pts))
	errs := make([]error, len(pts))
	dsa.ParallelFor(len(pts), cfg.Parallelism(), func(i int) {
		nominal, err := d.pointRuns(pts[i], cfg, seedKindNominal, false)
		if err != nil {
			errs[i] = err
			return
		}
		out[i], errs[i] = value(nominal, pts[i])
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Assemble applies the whole-set step. Raw keeps every measure as
// ScoreSlice produced it (seconds for the times). Values orients all
// four measures higher-is-better on [0,1]: robustness and offload are
// already such fractions and pass through; the two completion times
// get an inverted min-max normalisation over the evaluated set (1 =
// fastest in set, 0 = slowest — the paper's performance normalisation,
// flipped because small times are good).
func (domainImpl) Assemble(pts []core.Point, raw map[string][]float64) (*dsa.Scores, error) {
	for _, m := range (domainImpl{}).Measures() {
		if len(raw[m]) != len(pts) {
			return nil, fmt.Errorf("delivery: %s has %d values, want %d", m, len(raw[m]), len(pts))
		}
	}
	return &dsa.Scores{
		Domain: DomainName,
		Points: pts,
		Raw: map[string][]float64{
			MeasureRobustness:    slices.Clone(raw[MeasureRobustness]),
			MeasureMeanTime:      slices.Clone(raw[MeasureMeanTime]),
			MeasureP95Time:       slices.Clone(raw[MeasureP95Time]),
			MeasureMirrorOffload: slices.Clone(raw[MeasureMirrorOffload]),
		},
		Values: map[string][]float64{
			MeasureRobustness:    slices.Clone(raw[MeasureRobustness]),
			MeasureMeanTime:      invertedMinMax(raw[MeasureMeanTime]),
			MeasureP95Time:       invertedMinMax(raw[MeasureP95Time]),
			MeasureMirrorOffload: slices.Clone(raw[MeasureMirrorOffload]),
		},
	}, nil
}

// invertedMinMax min-max normalises and flips orientation (1 = the
// set's minimum). The degenerate all-equal span keeps MinMaxNormalize's
// all-zeros convention rather than flipping to all-ones.
func invertedMinMax(xs []float64) []float64 {
	norm := stats.MinMaxNormalize(xs)
	if len(xs) == 0 || stats.Max(xs)-stats.Min(xs) <= 0 {
		return norm
	}
	for i := range norm {
		norm[i] = 1 - norm[i]
	}
	return norm
}
