package chaos

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// ErrInjected is the sentinel under every fault this package fabricates
// (dropped requests, injected write failures); errors.Is(err,
// ErrInjected) distinguishes scheduled chaos from real trouble in test
// assertions and logs.
var ErrInjected = errors.New("chaos: injected fault")

// Transport is an http.RoundTripper that subjects every request to a
// seeded fault Schedule before (maybe) forwarding it to the base
// transport. Grid clients take it via http.Client.Transport, composing
// with grid.AuthTransport.
//
// Fault semantics, in the order applied:
//
//	drop    — the request never reaches the wire; the caller sees a
//	          transport error (retryable by the grid client).
//	err500  — a synthetic 500 is fabricated without touching the
//	          network (retryable; carries an X-Chaos header).
//	delay   — the request is held for DelayBy, honoring ctx cancel.
//	corrupt — one request-body byte is flipped in flight, which the
//	          coordinator's X-Body-Sha256 check rejects as transport
//	          corruption (retryable, and the retry re-draws its fate).
//	dup     — the request is transmitted twice back to back; the grid
//	          protocol's idempotent ingest absorbs the duplicate.
type Transport struct {
	sched *Schedule
	base  http.RoundTripper
	logf  func(format string, args ...any)
}

// NewTransport wraps base (nil = http.DefaultTransport) with the fault
// schedule for cfg. logf (nil = silent) narrates every injected fault.
func NewTransport(cfg Config, base http.RoundTripper, logf func(string, ...any)) *Transport {
	if base == nil {
		base = http.DefaultTransport
	}
	if logf == nil {
		logf = func(string, ...any) {}
	}
	return &Transport{sched: NewSchedule(cfg), base: base, logf: logf}
}

// Schedule exposes the underlying decision stream (tests assert on
// Drawn to prove the schedule ran).
func (t *Transport) Schedule() *Schedule { return t.sched }

func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	d := t.sched.Next()
	if d != (Decision{}) {
		t.logf("chaos: %s %s: %s", req.Method, req.URL.Path, d)
	}
	body, err := drainBody(req)
	if err != nil {
		return nil, err
	}
	if d.Drop {
		return nil, fmt.Errorf("%w: dropped %s %s", ErrInjected, req.Method, req.URL.Path)
	}
	if d.Err500 {
		return synthetic500(req), nil
	}
	if d.Delay > 0 {
		timer := time.NewTimer(d.Delay)
		defer timer.Stop()
		select {
		case <-timer.C:
		case <-req.Context().Done():
			return nil, req.Context().Err()
		}
	}
	if d.Corrupt && len(body) > 0 {
		body = bytes.Clone(body)
		body[len(body)/2] ^= 0xff
	}
	if d.Dup {
		if resp, err := t.base.RoundTrip(withBody(req, body)); err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}
	return t.base.RoundTrip(withBody(req, body))
}

// drainBody reads the full request body so the transport can corrupt
// or re-send it. Grid requests are small JSON payloads.
func drainBody(req *http.Request) ([]byte, error) {
	if req.Body == nil {
		return nil, nil
	}
	body, err := io.ReadAll(req.Body)
	req.Body.Close()
	if err != nil {
		return nil, fmt.Errorf("chaos: read request body: %w", err)
	}
	return body, nil
}

// withBody clones req with the given body, preserving idempotent
// re-transmission (both the dup fault and net/http retries).
func withBody(req *http.Request, body []byte) *http.Request {
	r := req.Clone(req.Context())
	if body == nil {
		r.Body = nil
		return r
	}
	r.Body = io.NopCloser(bytes.NewReader(body))
	r.ContentLength = int64(len(body))
	r.GetBody = func() (io.ReadCloser, error) { return io.NopCloser(bytes.NewReader(body)), nil }
	return r
}

func synthetic500(req *http.Request) *http.Response {
	const msg = `{"error":"chaos: injected 500"}`
	h := make(http.Header)
	h.Set("Content-Type", "application/json")
	h.Set("X-Chaos", "err500")
	return &http.Response{
		Status:        "500 Internal Server Error (chaos)",
		StatusCode:    http.StatusInternalServerError,
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        h,
		Body:          io.NopCloser(strings.NewReader(msg)),
		ContentLength: int64(len(msg)),
		Request:       req,
	}
}
