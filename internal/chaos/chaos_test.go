package chaos

import (
	"bytes"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

func TestParseSpec(t *testing.T) {
	cfg, err := ParseSpec("seed=7,drop=0.05,delay=0.1:20ms,dup=0.25,corrupt=0.5,err500=1")
	if err != nil {
		t.Fatal(err)
	}
	want := Config{Seed: 7, Drop: 0.05, Delay: 0.1, DelayBy: 20 * time.Millisecond, Dup: 0.25, Corrupt: 0.5, Err500: 1}
	if cfg != want {
		t.Fatalf("cfg = %+v, want %+v", cfg, want)
	}
	if _, err := ParseSpec("dorp=0.1"); err == nil {
		t.Fatal("unknown key accepted")
	}
	if _, err := ParseSpec("drop=1.5"); err == nil {
		t.Fatal("probability outside [0,1] accepted")
	}
	if cfg, err := ParseSpec(""); err != nil || cfg.Drop != 0 {
		t.Fatalf("empty spec: cfg=%+v err=%v", cfg, err)
	}
}

// TestScheduleDeterminism pins the core contract: the i-th decision is
// a pure function of (seed, i).
func TestScheduleDeterminism(t *testing.T) {
	cfg := Config{Seed: 42, Drop: 0.2, Delay: 0.2, DelayBy: time.Millisecond, Dup: 0.2, Corrupt: 0.2, Err500: 0.2}
	a, b := NewSchedule(cfg), NewSchedule(cfg)
	var faults int
	for i := 0; i < 1000; i++ {
		da, db := a.Next(), b.Next()
		if da != db {
			t.Fatalf("decision %d diverged: %+v vs %+v", i, da, db)
		}
		if da != (Decision{}) {
			faults++
		}
		if da.Drop && da.Err500 {
			t.Fatalf("decision %d is both drop and err500", i)
		}
	}
	if faults == 0 {
		t.Fatal("schedule with 20% rates injected nothing in 1000 draws")
	}
	cfg.Seed = 43
	c, d := NewSchedule(cfg), NewSchedule(Config{Seed: 42, Drop: 0.2, Delay: 0.2, DelayBy: time.Millisecond, Dup: 0.2, Corrupt: 0.2, Err500: 0.2})
	diverged := false
	for i := 0; i < 1000 && !diverged; i++ {
		diverged = c.Next() != d.Next()
	}
	if !diverged {
		t.Fatal("seeds 42 and 43 produced identical 1000-decision streams")
	}
}

func TestTransportFaults(t *testing.T) {
	var mu sync.Mutex
	var got [][]byte
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body, _ := io.ReadAll(r.Body)
		mu.Lock()
		got = append(got, body)
		mu.Unlock()
		w.WriteHeader(200)
	}))
	defer srv.Close()

	post := func(tr *Transport) (*http.Response, error) {
		req, _ := http.NewRequest("POST", srv.URL+"/v1/up", bytes.NewReader([]byte("hello world")))
		return tr.RoundTrip(req)
	}

	t.Run("drop", func(t *testing.T) {
		tr := NewTransport(Config{Drop: 1}, nil, t.Logf)
		if _, err := post(tr); !errors.Is(err, ErrInjected) {
			t.Fatalf("err = %v, want ErrInjected", err)
		}
	})
	t.Run("err500", func(t *testing.T) {
		tr := NewTransport(Config{Err500: 1}, nil, t.Logf)
		resp, err := post(tr)
		if err != nil || resp.StatusCode != 500 || resp.Header.Get("X-Chaos") == "" {
			t.Fatalf("resp=%v err=%v, want synthetic 500", resp, err)
		}
		resp.Body.Close()
	})
	t.Run("corrupt", func(t *testing.T) {
		mu.Lock()
		got = nil
		mu.Unlock()
		tr := NewTransport(Config{Corrupt: 1}, nil, t.Logf)
		resp, err := post(tr)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		mu.Lock()
		defer mu.Unlock()
		if len(got) != 1 || bytes.Equal(got[0], []byte("hello world")) {
			t.Fatalf("server saw %q, want one corrupted body", got)
		}
		if len(got[0]) != len("hello world") {
			t.Fatalf("corruption changed length: %d", len(got[0]))
		}
	})
	t.Run("dup", func(t *testing.T) {
		mu.Lock()
		got = nil
		mu.Unlock()
		tr := NewTransport(Config{Dup: 1}, nil, t.Logf)
		resp, err := post(tr)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		mu.Lock()
		defer mu.Unlock()
		if len(got) != 2 || !bytes.Equal(got[0], got[1]) {
			t.Fatalf("server saw %d bodies, want 2 identical", len(got))
		}
	})
	t.Run("clean", func(t *testing.T) {
		tr := NewTransport(Config{}, nil, t.Logf)
		resp, err := post(tr)
		if err != nil || resp.StatusCode != 200 {
			t.Fatalf("resp=%v err=%v", resp, err)
		}
		resp.Body.Close()
		if tr.Schedule().Drawn() != 1 {
			t.Fatalf("drawn = %d, want 1", tr.Schedule().Drawn())
		}
	})
}

func TestFileFaults(t *testing.T) {
	t.Run("enospc", func(t *testing.T) {
		var buf bytes.Buffer
		w := NewFileFaults(1, 0, 1, "").Wrap("/tmp/x/wal.jsonl", &buf)
		n, err := w.Write([]byte("0123456789"))
		if n != 0 || !errors.Is(err, syscall.ENOSPC) || !errors.Is(err, ErrInjected) {
			t.Fatalf("n=%d err=%v, want 0, ENOSPC via ErrInjected", n, err)
		}
		if buf.Len() != 0 {
			t.Fatalf("%d bytes written despite ENOSPC", buf.Len())
		}
	})
	t.Run("short", func(t *testing.T) {
		var buf bytes.Buffer
		w := NewFileFaults(1, 1, 0, "").Wrap("/tmp/x/wal.jsonl", &buf)
		n, err := w.Write([]byte("0123456789"))
		if n != 5 || !errors.Is(err, io.ErrShortWrite) {
			t.Fatalf("n=%d err=%v, want 5, ErrShortWrite", n, err)
		}
		if buf.String() != "01234" {
			t.Fatalf("buf = %q", buf.String())
		}
	})
	t.Run("match-filter", func(t *testing.T) {
		var buf bytes.Buffer
		f := NewFileFaults(1, 0, 1, "manifest")
		w := f.Wrap("/tmp/x/spec.json", &buf)
		if n, err := w.Write([]byte("ok")); n != 2 || err != nil {
			t.Fatalf("filtered path faulted: n=%d err=%v", n, err)
		}
		if _, err := f.Wrap("/tmp/x/manifest-grid.jsonl", &buf).Write([]byte("no")); !errors.Is(err, syscall.ENOSPC) {
			t.Fatalf("matching path not faulted: %v", err)
		}
	})
}

func TestDecisionString(t *testing.T) {
	d := Decision{Drop: true, Delay: time.Millisecond}
	if s := d.String(); !strings.Contains(s, "drop") || !strings.Contains(s, "delay") {
		t.Fatalf("String() = %q", s)
	}
	if (Decision{}).String() != "clean" {
		t.Fatalf("zero decision = %q", (Decision{}).String())
	}
}
