// Package chaos is the repo's deterministic fault-injection harness.
// It provides a seeded fault schedule (drop / delay / duplicate /
// corrupt / 5xx-inject) pluggable as an http.RoundTripper on grid
// clients, and a failing-io.Writer seam for checkpoint/WAL writes, so
// robustness tests and scripts/chaos_smoke.sh can replay the exact
// same fault sequence from a seed instead of flaking on real networks.
//
// Determinism contract: the i-th decision drawn from a Schedule is a
// pure function of (seed, i). A single-threaded client therefore sees
// a fully reproducible fault interleaving; concurrent clients share
// the decision sequence, so the schedule itself is still seeded and
// reproducible, but which request draws which decision depends on
// arrival order.
package chaos

import (
	"fmt"
	"math/rand/v2"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Config is a parsed fault schedule: independent per-request fault
// probabilities. All probabilities are in [0, 1].
type Config struct {
	Seed    uint64        // schedule seed; same seed → same decisions
	Drop    float64       // P(request dropped before reaching the wire)
	Delay   float64       // P(request delayed by DelayBy)
	DelayBy time.Duration // how long a delayed request waits
	Dup     float64       // P(request transmitted twice)
	Corrupt float64       // P(one request-body byte flipped in flight)
	Err500  float64       // P(synthetic 500 returned, server never sees it)
}

// ParseSpec parses the CLI fault-schedule syntax:
//
//	seed=7,drop=0.05,delay=0.1:20ms,dup=0.05,corrupt=0.05,err500=0.05
//
// Every field is optional; unknown keys are an error so typos in a
// chaos run fail loudly instead of silently testing nothing.
func ParseSpec(s string) (Config, error) {
	cfg := Config{DelayBy: 10 * time.Millisecond}
	if strings.TrimSpace(s) == "" {
		return cfg, nil
	}
	for _, part := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return Config{}, fmt.Errorf("chaos: malformed field %q (want key=value)", part)
		}
		var err error
		switch k {
		case "seed":
			cfg.Seed, err = strconv.ParseUint(v, 10, 64)
		case "drop":
			cfg.Drop, err = parseProb(k, v)
		case "dup":
			cfg.Dup, err = parseProb(k, v)
		case "corrupt":
			cfg.Corrupt, err = parseProb(k, v)
		case "err500":
			cfg.Err500, err = parseProb(k, v)
		case "delay":
			p, dur, found := strings.Cut(v, ":")
			cfg.Delay, err = parseProb(k, p)
			if err == nil && found {
				cfg.DelayBy, err = time.ParseDuration(dur)
			}
		default:
			return Config{}, fmt.Errorf("chaos: unknown field %q", k)
		}
		if err != nil {
			return Config{}, fmt.Errorf("chaos: field %q: %w", part, err)
		}
	}
	return cfg, nil
}

func parseProb(k, v string) (float64, error) {
	p, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, err
	}
	if p < 0 || p > 1 {
		return 0, fmt.Errorf("%s=%v outside [0,1]", k, p)
	}
	return p, nil
}

// Decision is the fate of one request, drawn from a Schedule.
type Decision struct {
	Drop    bool
	Delay   time.Duration // 0 = no delay
	Dup     bool
	Corrupt bool
	Err500  bool
}

func (d Decision) String() string {
	var parts []string
	if d.Drop {
		parts = append(parts, "drop")
	}
	if d.Delay > 0 {
		parts = append(parts, "delay="+d.Delay.String())
	}
	if d.Dup {
		parts = append(parts, "dup")
	}
	if d.Corrupt {
		parts = append(parts, "corrupt")
	}
	if d.Err500 {
		parts = append(parts, "err500")
	}
	if len(parts) == 0 {
		return "clean"
	}
	return strings.Join(parts, "+")
}

// Schedule hands out per-request fault Decisions from a seeded PRNG.
// Safe for concurrent use; each Next draws a fixed number of variates,
// so decision i depends only on (seed, i).
type Schedule struct {
	cfg Config
	mu  sync.Mutex
	rng *rand.Rand
	n   int
}

// NewSchedule builds the decision stream for cfg.
func NewSchedule(cfg Config) *Schedule {
	return &Schedule{cfg: cfg, rng: rand.New(rand.NewPCG(cfg.Seed, cfg.Seed^0x9e3779b97f4a7c15))}
}

// Next draws the next Decision. At most one of Drop/Err500 fires (a
// dropped request cannot also answer), so retries always make
// progress under any sub-1 fault probability.
func (s *Schedule) Next() Decision {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.n++
	// Fixed draw order: the decision stream never shifts when one
	// probability is zero.
	var d Decision
	d.Drop = s.rng.Float64() < s.cfg.Drop
	if s.rng.Float64() < s.cfg.Delay {
		d.Delay = s.cfg.DelayBy
	}
	d.Dup = s.rng.Float64() < s.cfg.Dup
	d.Corrupt = s.rng.Float64() < s.cfg.Corrupt
	d.Err500 = !d.Drop && s.rng.Float64() < s.cfg.Err500
	return d
}

// Drawn reports how many decisions have been handed out.
func (s *Schedule) Drawn() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}
