package chaos

import (
	"fmt"
	"io"
	"math/rand/v2"
	"strings"
	"sync"
	"syscall"
)

// FileFaults injects write failures into the checkpoint/WAL writer
// seam (job.SetWriterSeam). Two fault kinds model the ways durable
// appends really fail:
//
//	short — the write persists only half its bytes and reports
//	        io.ErrShortWrite (a torn append);
//	fail  — the write persists nothing and reports ENOSPC (disk full).
//
// Decisions come from a seeded stream like Transport's, so a failing
// write sequence is reproducible. Match restricts faults to paths
// containing the substring (e.g. "wal" or "manifest"); writes to other
// paths pass through untouched and draw no decision, keeping the
// stream stable across unrelated file traffic.
type FileFaults struct {
	Short float64 // P(short write + io.ErrShortWrite)
	Fail  float64 // P(nothing written + ENOSPC)
	Match string  // substring a path must contain to be eligible

	mu  sync.Mutex
	rng *rand.Rand
}

// NewFileFaults builds a seeded write-fault schedule.
func NewFileFaults(seed uint64, short, fail float64, match string) *FileFaults {
	return &FileFaults{
		Short: short, Fail: fail, Match: match,
		rng: rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15)),
	}
}

// Wrap implements the job.SetWriterSeam signature.
func (f *FileFaults) Wrap(path string, w io.Writer) io.Writer {
	if f.Match != "" && !strings.Contains(path, f.Match) {
		return w
	}
	return &faultWriter{faults: f, path: path, w: w}
}

type faultWriter struct {
	faults *FileFaults
	path   string
	w      io.Writer
}

func (fw *faultWriter) Write(p []byte) (int, error) {
	f := fw.faults
	f.mu.Lock()
	short := f.rng.Float64() < f.Short
	fail := f.rng.Float64() < f.Fail
	f.mu.Unlock()
	if fail {
		return 0, fmt.Errorf("%w: %s: %w", ErrInjected, fw.path, syscall.ENOSPC)
	}
	if short && len(p) > 1 {
		n, err := fw.w.Write(p[:len(p)/2])
		if err != nil {
			return n, err
		}
		return n, fmt.Errorf("%w: %s: %w", ErrInjected, fw.path, io.ErrShortWrite)
	}
	return fw.w.Write(p)
}
