package grid

// TraceShipper streams a worker's span journal to its coordinator.
// It tails the journal file the recorder appends to — flushing the
// recorder first so every span recorded so far is on disk — and
// uploads complete-line chunks with their byte offset. The ack's Have
// is authoritative: the shipper resumes from wherever the coordinator
// says its collected copy ends, so retries, duplicate sends and
// coordinator restarts all converge without ever duplicating a span.

import (
	"context"
	"net/http"
	"sync"
	"time"

	"repro/internal/gridobs"
	"repro/internal/obs"
)

// DefaultShipInterval is the incremental flush cadence of
// TraceShipper.Run.
const DefaultShipInterval = 2 * time.Second

// TraceShipperOptions configures a TraceShipper.
type TraceShipperOptions struct {
	// Job scopes the collected journal on the coordinator. "" files it
	// under the shared fleet scope (multi-job workers trace every job
	// into one journal).
	Job string
	// Client is the HTTP client; nil = NewClient(AuthToken).
	Client *http.Client
	// AuthToken is the coordinator's shared secret; ignored when
	// Client is provided.
	AuthToken string
	// Metrics, if non-nil, is snapshotted onto every upload so the
	// coordinator can federate this worker's counters and latency
	// histograms into its own /metrics.
	Metrics *gridobs.WorkerMetrics
	// Interval is the Run cadence; 0 = DefaultShipInterval.
	Interval time.Duration
	// ChunkBytes bounds one upload body; 0 = obs.DefaultChunkBytes.
	ChunkBytes int
	// Logf, if non-nil, receives ship errors from Run.
	Logf func(format string, args ...any)
}

// TraceShipper ships one recorder's journal. Create with
// NewTraceShipper, run Run in a goroutine alongside Work, and call
// Ship once after Work returns for the final drain flush.
type TraceShipper struct {
	baseURL string
	rec     *obs.Recorder
	path    string
	writer  string
	opts    TraceShipperOptions
	client  *http.Client

	mu     sync.Mutex // serializes Ship passes
	offset int64      // bytes acked by the coordinator
}

// NewTraceShipper builds a shipper for the journal at path, written
// by rec (whose writer name identifies the stream on the
// coordinator).
func NewTraceShipper(baseURL string, rec *obs.Recorder, path string, opts TraceShipperOptions) *TraceShipper {
	client := opts.Client
	if client == nil {
		client = NewClient(opts.AuthToken)
	}
	return &TraceShipper{
		baseURL: baseURL,
		rec:     rec,
		path:    path,
		writer:  rec.Writer(),
		opts:    opts,
		client:  client,
	}
}

func (s *TraceShipper) interval() time.Duration {
	if s.opts.Interval > 0 {
		return s.opts.Interval
	}
	return DefaultShipInterval
}

// Offset returns how many journal bytes the coordinator has acked.
func (s *TraceShipper) Offset() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.offset
}

// Ship flushes the recorder and uploads everything past the acked
// offset, in chunks, until the coordinator has the whole journal. At
// least one upload is always sent — possibly with no data — so the
// coordinator's federated metrics snapshot stays fresh even when no
// new spans landed. Safe to call concurrently with Run; overlapping
// calls serialize.
func (s *TraceShipper) Ship(ctx context.Context) error {
	s.mu.Lock()
	defer s.mu.Unlock()

	if err := s.rec.Flush(); err != nil {
		return err
	}
	first := true
	for {
		data, _, err := obs.ReadChunk(s.path, s.offset, s.opts.ChunkBytes)
		if err != nil {
			return err
		}
		if len(data) == 0 && !first {
			return nil
		}
		first = false
		var ack TraceAck
		up := TraceUpload{
			Writer: s.writer, Job: s.opts.Job,
			Offset: s.offset, Data: data,
			Stats: s.opts.Metrics.Snapshot(),
		}
		if err := postJSON(ctx, s.client, apiURL(s.baseURL, "trace"), up, &ack); err != nil {
			return err
		}
		if ack.Have == s.offset && len(data) == 0 {
			return nil // pure stats probe, nothing new on either side
		}
		// Resume from wherever the coordinator says its copy ends: end
		// of our chunk normally, earlier after a coordinator restart
		// (rewind and re-ship), later if a twin shipper got there first.
		s.offset = ack.Have
	}
}

// Run ships on a ticker until ctx is cancelled — the incremental
// flush that keeps the coordinator's timeline live during a run.
// Errors are logged and retried next tick; the journal is append-only
// and offsets are acked, so a failed pass loses nothing.
func (s *TraceShipper) Run(ctx context.Context) {
	tick := time.NewTicker(s.interval())
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		}
		if err := s.Ship(ctx); err != nil && ctx.Err() == nil {
			if s.opts.Logf != nil {
				s.opts.Logf("grid: trace ship: %v", err)
			}
		}
	}
}
