package grid

// Grid parity for the delivery domain: the acceptance bar of the
// third vertical is that a grid-run sweep — coordinator + two workers
// over HTTP — serialises byte-identically to a single-process job.Run
// with zero delivery-specific engine code. The worker resolves the
// domain from the wire spec through the registry, so this also pins
// that the delivery registration reaches the grid's seam.

import (
	"context"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/delivery"
	"repro/internal/dsa"
	"repro/internal/job"
)

func deliverySpec(t *testing.T) job.Spec {
	t.Helper()
	pts := dsa.StridePoints(delivery.Domain(), 36)
	if len(pts) != 16 {
		t.Fatalf("subset has %d points, want 16", len(pts))
	}
	cfg := dsa.Config{Peers: 6, Rounds: 200, PerfRuns: 2, EncounterRuns: 1, Seed: 11}
	return job.Spec{Domain: delivery.Domain(), Points: pts, Cfg: cfg, Chunk: 2}
}

func TestGridDeliveryTwoWorkersMatchRunSweep(t *testing.T) {
	spec := deliverySpec(t)
	want := wantScores(t, spec)

	coord := NewCoordinator(CoordinatorOptions{Dir: t.TempDir(), LeaseTTL: 2 * time.Second})
	defer coord.Close()
	id, err := coord.AddJob(spec)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	ctx := context.Background()
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for w := range errs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[w] = Work(ctx, srv.URL, "", WorkerOptions{Workers: 2, TasksPerLease: 2, Poll: 20 * time.Millisecond})
		}()
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}

	got, err := coord.WaitComplete(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if mustJSON(t, got) != mustJSON(t, want) {
		t.Fatal("2-worker delivery grid scores are not byte-identical to single-process job.Run")
	}
	fetched, err := FetchScores(ctx, nil, srv.URL, id)
	if err != nil {
		t.Fatal(err)
	}
	if mustJSON(t, fetched) != mustJSON(t, want) {
		t.Fatal("delivery scores fetched over HTTP differ from single-process job.Run")
	}
}
