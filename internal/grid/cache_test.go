package grid

// Coordinator-side caching and client robustness: a job whose scores
// the cross-job cache already holds completes without dispatching any
// work (and still journals a checkpoint job.Load can read), and the
// HTTP clients retry transient failures but refuse to hang on a
// wedged coordinator.

import (
	"context"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/job"
)

// TestCrossJobCacheShortCircuit: job A is computed by a worker; job B
// — an overlapping subset with a different chunking — is served
// entirely from the coordinator's cache: complete at registration,
// zero leases dispatched, scores and checkpoint byte-identical to a
// local run.
func TestCrossJobCacheShortCircuit(t *testing.T) {
	store, err := cache.Open(cache.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	dir := t.TempDir()
	coord := NewCoordinator(CoordinatorOptions{Dir: dir, Cache: store, LeaseTTL: 2 * time.Second})
	defer coord.Close()

	specA := gossipSpec(t)
	idA, err := coord.AddJob(specA)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()
	ctx := context.Background()
	if err := Work(ctx, srv.URL, idA, WorkerOptions{Workers: 2, TasksPerLease: 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := coord.WaitComplete(ctx, idA); err != nil {
		t.Fatal(err)
	}

	// Job B: every other point of A, different chunk — no task of B
	// has A's shape, but every per-point score is known.
	var sub []core.Point
	for i := 0; i < len(specA.Points); i += 2 {
		sub = append(sub, specA.Points[i])
	}
	specB := job.Spec{Domain: specA.Domain, Points: sub, Cfg: specA.Cfg, Chunk: 3}
	want := wantScores(t, specB)

	idB, err := coord.AddJob(specB)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := coord.Progress(idB)
	if err != nil {
		t.Fatal(err)
	}
	if !snap.Complete {
		t.Fatalf("overlapping job should complete from the cache at registration: %+v", snap)
	}
	if snap.CacheTasks != snap.Total {
		t.Fatalf("all %d tasks should be cache-served, got %d", snap.Total, snap.CacheTasks)
	}

	// A lease request must find nothing to do.
	lease, err := coord.Lease(context.Background(), idB, "idle-worker", 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(lease.Tasks) != 0 || !lease.Complete {
		t.Fatalf("cache-served job still dispatched work: %+v", lease)
	}

	got, err := coord.WaitComplete(ctx, idB)
	if err != nil {
		t.Fatal(err)
	}
	if mustJSON(t, got) != mustJSON(t, want) {
		t.Fatal("cache-served job scores differ from single-process job.Run")
	}
	// The cache-served tasks were journalled like ingested results:
	// the directory is a normal, complete checkpoint.
	loaded, err := job.Load(filepath.Join(dir, idB))
	if err != nil {
		t.Fatal(err)
	}
	if mustJSON(t, loaded) != mustJSON(t, want) {
		t.Fatal("checkpoint of a cache-served job loads differently")
	}

	stats, enabled := coord.CacheStats()
	if !enabled || stats.Entries == 0 || stats.Hits == 0 {
		t.Fatalf("cache stats should show entries and hits: %+v (enabled %v)", stats, enabled)
	}
}

// TestCacheAbsorbsMidJob: entries arriving from one job's ingests
// complete another running job's pending tasks at its next lease poll.
func TestCacheAbsorbsMidJob(t *testing.T) {
	store, err := cache.Open(cache.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	coord := NewCoordinator(CoordinatorOptions{Cache: store, LeaseTTL: time.Minute})
	defer coord.Close()

	spec := gossipSpec(t)
	// B first: registered while the cache is empty, so it has pending
	// tasks that only a later feed can absorb.
	var sub []core.Point
	for i := 0; i < len(spec.Points); i += 2 {
		sub = append(sub, spec.Points[i])
	}
	specB := job.Spec{Domain: spec.Domain, Points: sub, Cfg: spec.Cfg, Chunk: 3}
	idB, err := coord.AddJob(specB)
	if err != nil {
		t.Fatal(err)
	}
	if snap, _ := coord.Progress(idB); snap.Complete {
		t.Fatal("job B complete before anything was computed")
	}

	idA, err := coord.AddJob(spec)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()
	if err := Work(context.Background(), srv.URL, idA, WorkerOptions{Workers: 2, TasksPerLease: 2}); err != nil {
		t.Fatal(err)
	}

	// B's next lease poll absorbs A's ingested scores.
	lease, err := coord.Lease(context.Background(), idB, "w", 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(lease.Tasks) != 0 || !lease.Complete {
		t.Fatalf("job B should be fully absorbed after A's ingests: %+v", lease)
	}
	got, err := coord.WaitComplete(context.Background(), idB)
	if err != nil {
		t.Fatal(err)
	}
	if mustJSON(t, got) != mustJSON(t, wantScores(t, specB)) {
		t.Fatal("absorbed job B differs from single-process job.Run")
	}
}

// TestCacheStatsEndpoint: /v1/cache serves live counters, and reports
// disabled without a cache.
func TestCacheStatsEndpoint(t *testing.T) {
	store, err := cache.Open(cache.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	coord := NewCoordinator(CoordinatorOptions{Cache: store})
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()
	resp, err := FetchCacheStats(context.Background(), nil, srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Enabled {
		t.Fatalf("cache-enabled coordinator reports %+v", resp)
	}

	bare := NewCoordinator(CoordinatorOptions{})
	bareSrv := httptest.NewServer(bare.Handler())
	defer bareSrv.Close()
	resp, err = FetchCacheStats(context.Background(), nil, bareSrv.URL)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Enabled {
		t.Fatalf("cache-less coordinator reports %+v", resp)
	}
}

// TestClientRetriesTransientFailures: 5xx responses and the like are
// retried with backoff until the coordinator recovers.
func TestClientRetriesTransientFailures(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			http.Error(w, `{"error":"temporarily sad"}`, http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"jobs":[]}`))
	}))
	defer srv.Close()
	jobs, err := ListJobs(context.Background(), nil, srv.URL)
	if err != nil {
		t.Fatalf("two 500s then success should succeed, got %v", err)
	}
	if len(jobs) != 0 || calls.Load() != 3 {
		t.Fatalf("jobs %v after %d calls, want [] after 3", jobs, calls.Load())
	}
}

// TestClientDoesNotRetryClientErrors: a 4xx means the request is
// wrong; retrying would just repeat it.
func TestClientDoesNotRetryClientErrors(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, `{"error":"no such job"}`, http.StatusNotFound)
	}))
	defer srv.Close()
	if _, err := GetJob(context.Background(), nil, srv.URL, "nope"); err == nil {
		t.Fatal("404 should surface as an error")
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("4xx was retried %d times", n)
	}
}

// TestClientTimeoutUnwedges: a coordinator that accepts connections
// but never answers cannot hang a client — the timeout fires, the
// retries run out, and the call returns.
func TestClientTimeoutUnwedges(t *testing.T) {
	wedged := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-r.Context().Done() // hold the request open until the client gives up
	}))
	defer wedged.Close()
	client := &http.Client{Timeout: 50 * time.Millisecond}
	start := time.Now()
	_, err := ListJobs(context.Background(), client, wedged.URL)
	if err == nil {
		t.Fatal("a wedged coordinator should produce an error")
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("client took %v to give up", elapsed)
	}
}

// TestDefaultClientHasTimeout guards the satellite fix itself: nil
// clients must never again mean "no timeout".
func TestDefaultClientHasTimeout(t *testing.T) {
	if c := defaultClient(); c.Timeout <= 0 {
		t.Fatalf("default grid client timeout = %v, want > 0", c.Timeout)
	}
	if DefaultHTTPTimeout <= 0 {
		t.Fatal("DefaultHTTPTimeout must be positive")
	}
}

// TestClientRespectsContextDuringBackoff: cancelling mid-backoff
// returns promptly instead of sleeping out the schedule.
func TestClientRespectsContextDuringBackoff(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"down"}`, http.StatusInternalServerError)
	}))
	defer srv.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := ListJobs(ctx, nil, srv.URL)
	if err == nil {
		t.Fatal("persistently failing coordinator should error")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancelled call still took %v", elapsed)
	}
}
