package grid

// Fleet trace collection: workers stream their span journals to the
// coordinator in chunked, idempotent POST /v1/trace uploads, and the
// coordinator persists each (job, writer) stream verbatim in the same
// append-only JSONL format the workers write locally. Because the
// collected files are byte-for-byte copies of the originals,
// obs.Merge / obs.Analyze work unchanged on the collected set and
// produce output identical to merging the workers' local journals.

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"repro/internal/gridobs"
	"repro/internal/obs"
)

// fleetScope is the collection scope for journals shipped without a
// job binding (multi-job workers trace all their jobs into one
// journal). It can never collide with a job ID — IDs are always
// "<domain>-<12 hex digits>".
const fleetScope = "_fleet"

// --- Wire types ---

// TraceUpload is one chunk of a worker's span journal. Offset is the
// byte position of Data within the worker's local journal; the
// coordinator appends exactly the bytes it has not seen yet, so
// re-sending a chunk (retry after a lost 200) or overlapping a
// previous one is safe. Data always ends on a record boundary
// (obs.ReadChunk) and may be empty — an empty upload is a pure
// stats/offset probe. Stats, if present, is the worker's latest
// metrics snapshot, federated into the coordinator's /metrics.
type TraceUpload struct {
	Writer string                  `json:"writer"`
	Job    string                  `json:"job,omitempty"`
	Offset int64                   `json:"offset"`
	Data   []byte                  `json:"data,omitempty"`
	Stats  *gridobs.WorkerSnapshot `json:"stats,omitempty"`
}

// TraceAck tells the uploader where the collected copy of its journal
// ends. Have is authoritative: whatever the request's offset was, the
// client's next chunk starts at Have. A gap (offset past Have, e.g.
// after a coordinator restart lost collected bytes) accepts nothing
// and the client rewinds; a duplicate or overlap accepts only the
// unseen suffix.
type TraceAck struct {
	Have      int64 `json:"have"`
	Accepted  int64 `json:"accepted"`
	Duplicate bool  `json:"duplicate,omitempty"`
}

// TraceDigest is the JSON summary GET /v1/trace?format=digest serves:
// obs.Analyze over the collected journals — totals, per-measure
// latency, per-worker utilization, stragglers and the critical path —
// cheap enough to poll from a dashboard.
type TraceDigest struct {
	Job             string           `json:"job,omitempty"`
	Journals        int              `json:"journals"`
	Records         int              `json:"records"`
	Tasks           int              `json:"tasks"`
	WallUS          int64            `json:"wall_us"`
	TaskBusyUS      int64            `json:"task_busy_us"`
	PointsSimulated int64            `json:"points_simulated"`
	PointsCached    int64            `json:"points_cached"`
	CacheLookups    int64            `json:"cache_lookups"`
	CacheHits       int64            `json:"cache_hits"`
	Workers         []TraceWorker    `json:"workers,omitempty"`
	Measures        []TraceMeasure   `json:"measures,omitempty"`
	Stragglers      []TraceStraggler `json:"stragglers,omitempty"`
	CriticalPath    []TraceSpan      `json:"critical_path,omitempty"`
}

// TraceWorker is one worker's utilization within a digest.
type TraceWorker struct {
	Writer      string  `json:"writer"`
	Tasks       int     `json:"tasks"`
	BusyUS      int64   `json:"busy_us"`
	WindowUS    int64   `json:"window_us"`
	Parallelism float64 `json:"parallelism"`
	Simulated   int64   `json:"simulated"`
	CacheHits   int64   `json:"cache_hits"`
}

// TraceMeasure is one measure's latency profile within a digest.
type TraceMeasure struct {
	Measure   string `json:"measure"`
	Tasks     int    `json:"tasks"`
	MinUS     int64  `json:"min_us"`
	MeanUS    int64  `json:"mean_us"`
	P50US     int64  `json:"p50_us"`
	P90US     int64  `json:"p90_us"`
	MaxUS     int64  `json:"max_us"`
	TotalUS   int64  `json:"total_us"`
	Points    int64  `json:"points"`
	CacheHits int64  `json:"cache_hits"`
	Simulated int64  `json:"simulated"`
}

// TraceStraggler is one outlier task span within a digest.
type TraceStraggler struct {
	Writer    string  `json:"writer"`
	Task      string  `json:"task"`
	Measure   string  `json:"measure"`
	DurUS     int64   `json:"dur_us"`
	TypicalUS int64   `json:"typical_us"`
	Factor    float64 `json:"factor"`
}

// TraceSpan is one span on the digest's critical path.
type TraceSpan struct {
	Writer  string `json:"writer"`
	Name    string `json:"name"`
	Task    string `json:"task,omitempty"`
	Measure string `json:"measure,omitempty"`
	StartUS int64  `json:"start_us"`
	DurUS   int64  `json:"dur_us"`
}

func digestFromAnalysis(job string, journals int, a *obs.Analysis) TraceDigest {
	d := TraceDigest{
		Job:             job,
		Journals:        journals,
		Records:         a.Records,
		Tasks:           a.Tasks,
		WallUS:          a.Wall.Microseconds(),
		TaskBusyUS:      a.TaskBusy.Microseconds(),
		PointsSimulated: a.PointsSimulated,
		PointsCached:    a.PointsCached,
		CacheLookups:    a.CacheLookups,
		CacheHits:       a.CacheHits,
	}
	for _, ws := range a.Workers {
		d.Workers = append(d.Workers, TraceWorker{
			Writer: ws.Writer, Tasks: ws.Tasks,
			BusyUS: ws.Busy.Microseconds(), WindowUS: ws.Window.Microseconds(),
			Parallelism: ws.Parallelism, Simulated: ws.Simulated, CacheHits: ws.CacheHits,
		})
	}
	for _, ms := range a.Measures {
		d.Measures = append(d.Measures, TraceMeasure{
			Measure: ms.Measure, Tasks: ms.Tasks,
			MinUS: ms.Min.Microseconds(), MeanUS: ms.Mean.Microseconds(),
			P50US: ms.P50.Microseconds(), P90US: ms.P90.Microseconds(),
			MaxUS: ms.Max.Microseconds(), TotalUS: ms.Total.Microseconds(),
			Points: ms.Points, CacheHits: ms.CacheHits, Simulated: ms.Simulated,
		})
	}
	for _, st := range a.Stragglers {
		d.Stragglers = append(d.Stragglers, TraceStraggler{
			Writer: st.Record.Writer, Task: st.Record.AttrStr("task"),
			Measure: st.Measure, DurUS: st.Dur.Microseconds(),
			TypicalUS: st.Typical.Microseconds(), Factor: st.Factor,
		})
	}
	for _, rec := range a.CriticalPath {
		d.CriticalPath = append(d.CriticalPath, TraceSpan{
			Writer: rec.Writer, Name: rec.Name,
			Task: rec.AttrStr("task"), Measure: rec.AttrStr("measure"),
			StartUS: rec.StartUS, DurUS: rec.DurUS,
		})
	}
	return d
}

// --- Collector ---

type traceKey struct{ job, writer string }

type traceJournal struct {
	job    string // "" = fleet scope
	writer string
	path   string
	size   int64 // collected bytes == the uploader's acked offset
}

// traceCollector owns the coordinator's collected journals: one
// verbatim file per (job, writer) under <root>/<scope>/trace/, where
// scope is the job ID or "_fleet". With no configured directory a
// temp dir is created lazily and removed on Close, so an in-memory
// coordinator still collects traces through the one file-based path.
type traceCollector struct {
	configured string // CoordinatorOptions.Dir, "" = temp
	logf       func(format string, args ...any)

	mu       sync.Mutex
	root     string // resolved on first use
	temp     bool
	journals map[traceKey]*traceJournal
	snaps    map[string]gridobs.WorkerSnapshot
	digests  map[string]*traceDigestCache
}

// traceDigestCache memoises one scope's obs.Analyze result, keyed by
// the scope's collected byte total — appends invalidate it, polling
// an idle fleet does not re-analyze.
type traceDigestCache struct {
	bytes    int64
	journals int
	analysis *obs.Analysis
}

func newTraceCollector(dir string, logf func(string, ...any)) *traceCollector {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	return &traceCollector{
		configured: dir,
		logf:       logf,
		journals:   map[traceKey]*traceJournal{},
		snaps:      map[string]gridobs.WorkerSnapshot{},
		digests:    map[string]*traceDigestCache{},
	}
}

func scopeName(job string) string {
	if job == "" {
		return fleetScope
	}
	return job
}

func (tc *traceCollector) rootLocked() (string, error) {
	if tc.root != "" {
		return tc.root, nil
	}
	if tc.configured != "" {
		tc.root = tc.configured
		return tc.root, nil
	}
	dir, err := os.MkdirTemp("", "grid-trace-")
	if err != nil {
		return "", err
	}
	tc.root, tc.temp = dir, true
	return tc.root, nil
}

// journalLocked returns (creating if needed) the collected journal for
// one (job, writer) stream. On first open of a pre-existing file —
// coordinator restart — the file is truncated back to its last
// newline: a crash mid-append could have left a torn tail, and the
// offset protocol needs the collected size to sit on a record
// boundary of the worker's journal.
func (tc *traceCollector) journalLocked(job, writer string) (*traceJournal, error) {
	key := traceKey{job, writer}
	if j := tc.journals[key]; j != nil {
		return j, nil
	}
	root, err := tc.rootLocked()
	if err != nil {
		return nil, err
	}
	dir := filepath.Join(root, scopeName(job), "trace")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	path := obs.JournalPath(dir, writer)
	size, err := truncateToNewline(path)
	if err != nil {
		return nil, err
	}
	j := &traceJournal{job: job, writer: writer, path: path, size: size}
	tc.journals[key] = j
	return j, nil
}

// truncateToNewline trims path back to just past its last '\n' and
// returns the resulting size; a missing file is size 0.
func truncateToNewline(path string) (int64, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, err
	}
	defer f.Close()
	info, err := f.Stat()
	if err != nil {
		return 0, err
	}
	size := info.Size()
	buf := make([]byte, 64<<10)
	var last int64 = -1 // position of the last '\n'
	var off int64
	for off < size {
		n, err := f.ReadAt(buf, off)
		if n > 0 {
			if i := bytes.LastIndexByte(buf[:n], '\n'); i >= 0 {
				last = off + int64(i)
			}
			off += int64(n)
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			return 0, err
		}
	}
	keep := last + 1
	if keep < size {
		if err := f.Truncate(keep); err != nil {
			return 0, err
		}
	}
	return keep, nil
}

// append ingests one upload chunk idempotently: only bytes past the
// collected size are written (verbatim, synced), so replays and
// overlaps never duplicate or tear a record. Returns the ack plus the
// appended byte/span counts for metrics.
func (tc *traceCollector) append(job, writer string, offset int64, data []byte) (ack TraceAck, spans int64, dup bool, err error) {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	j, err := tc.journalLocked(job, writer)
	if err != nil {
		return TraceAck{}, 0, false, err
	}
	have := j.size
	switch {
	case offset > have:
		// Gap: the client is ahead of us (collected bytes were lost to
		// a restart). Accept nothing; the client rewinds to Have.
		return TraceAck{Have: have}, 0, false, nil
	case offset+int64(len(data)) <= have:
		// Entirely seen before — a retry after a lost ack.
		return TraceAck{Have: have, Duplicate: true}, 0, len(data) > 0, nil
	}
	app := data[have-offset:]
	if err := appendFile(j.path, app); err != nil {
		return TraceAck{}, 0, false, err
	}
	j.size += int64(len(app))
	return TraceAck{Have: j.size, Accepted: int64(len(app)), Duplicate: offset < have},
		int64(bytes.Count(app, []byte{'\n'})), offset < have, nil
}

// appendFile appends data to path with an fsync — chunks are
// infrequent (seconds apart per worker), so open/write/sync/close per
// chunk keeps the collected copy as crash-tolerant as the original.
func appendFile(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func (tc *traceCollector) setSnapshot(writer string, s gridobs.WorkerSnapshot) {
	tc.mu.Lock()
	tc.snaps[writer] = s
	tc.mu.Unlock()
}

// snapshots returns the latest federated snapshot per worker.
func (tc *traceCollector) snapshots() map[string]gridobs.WorkerSnapshot {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	out := make(map[string]gridobs.WorkerSnapshot, len(tc.snaps))
	for k, v := range tc.snaps {
		out[k] = v
	}
	return out
}

func (tc *traceCollector) journalCount() int {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	n := 0
	for _, j := range tc.journals {
		if j.size > 0 {
			n++
		}
	}
	return n
}

// pathsLocked lists the collected journal files for one scope ("" =
// every scope), sorted for deterministic merges. Streams that only
// ever sent stats probes have no file yet and are skipped.
func (tc *traceCollector) pathsLocked(job string) []string {
	var paths []string
	for _, j := range tc.journals {
		if j.size > 0 && (job == "" || j.job == job) {
			paths = append(paths, j.path)
		}
	}
	sort.Strings(paths)
	return paths
}

func (tc *traceCollector) paths(job string) []string {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	return tc.pathsLocked(job)
}

// scopes lists the distinct jobs with collected journals ("" = fleet
// scope), sorted with the fleet scope last.
func (tc *traceCollector) scopes() []string {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	seen := map[string]bool{}
	for _, j := range tc.journals {
		seen[j.job] = true
	}
	var out []string
	for job := range seen {
		if job != "" {
			out = append(out, job)
		}
	}
	sort.Strings(out)
	if seen[""] {
		out = append(out, "")
	}
	return out
}

func (tc *traceCollector) bytesLocked(job string) int64 {
	var total int64
	for _, j := range tc.journals {
		if job == "" || j.job == job {
			total += j.size
		}
	}
	return total
}

// digest analyzes one scope's collected timeline, memoised by
// collected byte total. The file reads run outside the lock —
// collected journals only ever grow, so a racing append at worst
// leaves this digest one chunk behind, which the next poll fixes.
func (tc *traceCollector) digest(job string) (*obs.Analysis, int, error) {
	tc.mu.Lock()
	paths := tc.pathsLocked(job)
	total := tc.bytesLocked(job)
	if dc := tc.digests[job]; dc != nil && dc.bytes == total && dc.journals == len(paths) {
		a, n := dc.analysis, dc.journals
		tc.mu.Unlock()
		return a, n, nil
	}
	tc.mu.Unlock()

	recs, err := obs.LoadFiles(paths...)
	if err != nil {
		return nil, 0, err
	}
	a := obs.Analyze(recs)

	tc.mu.Lock()
	tc.digests[job] = &traceDigestCache{bytes: total, journals: len(paths), analysis: a}
	tc.mu.Unlock()
	return a, len(paths), nil
}

// Close removes the lazily created temp root, if any.
func (tc *traceCollector) Close() error {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	if tc.temp && tc.root != "" {
		err := os.RemoveAll(tc.root)
		tc.root, tc.temp = "", false
		return err
	}
	return nil
}

// --- Handlers ---

func (c *Coordinator) handleTraceUpload(w http.ResponseWriter, r *http.Request) {
	var up TraceUpload
	if !c.readBody(w, r, &up) {
		return
	}
	if up.Writer == "" {
		writeError(w, fmt.Errorf("grid: trace upload needs a writer"))
		return
	}
	if up.Offset < 0 {
		writeError(w, fmt.Errorf("grid: trace upload offset must be >= 0"))
		return
	}
	if up.Job != "" {
		c.mu.Lock()
		_, err := c.getJob(up.Job)
		c.mu.Unlock()
		if err != nil {
			writeError(w, err)
			return
		}
	}
	ack, spans, dup, err := c.traces.append(up.Job, up.Writer, up.Offset, up.Data)
	if err != nil {
		writeError(w, fmt.Errorf("grid: trace collect: %w", err))
		return
	}
	c.metrics.traceUploads.Inc()
	c.metrics.traceBytes.Add(float64(ack.Accepted))
	c.metrics.traceSpans.Add(float64(spans))
	if dup {
		c.metrics.traceDedup.Inc()
	}
	if up.Stats != nil {
		c.traces.setSnapshot(up.Writer, *up.Stats)
	}
	if ack.Accepted > 0 {
		c.logfCtx(r.Context(), "grid: trace: %s/%s +%dB (%d spans, have %d)",
			scopeName(up.Job), up.Writer, ack.Accepted, spans, ack.Have)
	}
	writeJSON(w, http.StatusOK, ack)
}

func (c *Coordinator) handleTraceGet(w http.ResponseWriter, r *http.Request) {
	jobID := r.URL.Query().Get("job")
	if jobID != "" {
		c.mu.Lock()
		_, err := c.getJob(jobID)
		c.mu.Unlock()
		if err != nil {
			writeError(w, err)
			return
		}
	}
	if r.URL.Query().Get("format") == "digest" {
		a, journals, err := c.traces.digest(jobID)
		if err != nil {
			writeError(w, fmt.Errorf("grid: trace digest: %w", err))
			return
		}
		writeJSON(w, http.StatusOK, digestFromAnalysis(jobID, journals, a))
		return
	}
	paths := c.traces.paths(jobID)
	w.Header().Set("Content-Type", "application/x-ndjson")
	if len(paths) == 0 {
		return // 200, empty timeline
	}
	if _, err := obs.Merge(w, paths...); err != nil {
		c.logfCtx(r.Context(), "grid: trace merge failed: %v", err)
	}
}

// --- Client ---

// FetchTraceDigest fetches a coordinator's analyzed trace summary;
// jobID "" digests every collected journal.
func FetchTraceDigest(ctx context.Context, client *http.Client, baseURL, jobID string) (TraceDigest, error) {
	if client == nil {
		client = defaultClient()
	}
	var d TraceDigest
	u := apiURL(baseURL, "trace") + "?format=digest"
	if jobID != "" {
		u += "&job=" + url.QueryEscape(jobID)
	}
	err := getJSON(ctx, client, u, &d)
	return d, err
}

// FetchTrace downloads a coordinator's merged trace journal — JSONL
// bytes in the canonical obs.Merge order, parseable with
// obs.LoadReader. jobID "" merges every collected journal.
func FetchTrace(ctx context.Context, client *http.Client, baseURL, jobID string) ([]byte, error) {
	if client == nil {
		client = defaultClient()
	}
	u := apiURL(baseURL, "trace")
	if jobID != "" {
		u += "?job=" + url.QueryEscape(jobID)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("grid: GET %s: %s: %s", u, resp.Status, bytes.TrimSpace(body))
	}
	return body, nil
}
