package grid

import (
	"math"
	"sort"
	"time"
)

// This file is the coordinator's scheduling brain: fair-share lease
// scheduling across concurrent jobs (weighted by per-job priority) and
// per-worker scoring (EWMA of task latency and failure rate) that
// shapes how much work a lease call hands out.
//
// Fairness model. Workers pull; the coordinator cannot push work to
// anyone. What it can choose is *which job* a pulling worker serves
// next. PickJob grants from the eligible job with the lowest
// granted-tasks-per-weight ratio, so over any window the granted task
// counts converge to the priority-weight ratios — a deficit round
// robin in units of tasks, not lease calls, which keeps the shares
// fair even when grant sizes differ per worker.
//
// Worker scoring. debswarm ranks download peers by latency, throughput
// and reliability before routing requests at them; the grid applies
// the same ranking to its own fleet. Each worker accumulates an EWMA
// of per-task wall time (from result uploads) and an EWMA failure rate
// (lease expiries count against it, completed tasks count for it). A
// worker whose failure EWMA is high gets its lease batches cut down to
// as little as one task — a crash-looping or flaky machine keeps
// participating but can only strand one task per TTL — and a worker
// much slower than the fleet gets smaller batches so the tail of a job
// is not hostage to it. Healthy workers are untouched: the cap shapes
// allocation toward fast, reliable workers without starving anyone.

// Scoring constants.
const (
	// ewmaAlpha is the weight of the newest observation in both the
	// latency and failure EWMAs.
	ewmaAlpha = 0.3
	// slowFactor is how many times slower than the fleet-mean task
	// latency a worker must be before its grants are halved.
	slowFactor = 2.0
	// livenessTTLs is how many lease TTLs of silence make a worker
	// count as gone in the liveness gauge and the dashboard.
	livenessTTLs = 3
)

// workerStats is the coordinator's per-worker scorecard, updated on
// every lease, ingest and expiry under the coordinator lock.
type workerStats struct {
	name      string
	firstSeen time.Time
	lastSeen  time.Time
	leased    int     // tasks currently on lease to this worker
	done      uint64  // tasks successfully ingested
	failures  uint64  // leases lost to expiry
	latEWMA   float64 // seconds per task, EWMA over uploads
	failEWMA  float64 // 0..1, EWMA of expiry-vs-completion outcomes
}

// touchWorkerLocked returns (creating if needed) the stats row for a
// worker and stamps it live. Anonymous workers are not tracked.
func (c *Coordinator) touchWorkerLocked(name string) *workerStats {
	if name == "" {
		return nil
	}
	ws, ok := c.workers[name]
	if !ok {
		now := c.now()
		ws = &workerStats{name: name, firstSeen: now}
		c.workers[name] = ws
	}
	ws.lastSeen = c.now()
	return ws
}

// workerDoneLocked scores one successful task: latency joins the EWMA,
// the failure EWMA decays toward zero.
func (c *Coordinator) workerDoneLocked(name string, elapsed time.Duration) {
	ws := c.touchWorkerLocked(name)
	if ws == nil {
		return
	}
	ws.done++
	if ws.leased > 0 {
		ws.leased--
	}
	ws.failEWMA *= 1 - ewmaAlpha
	if elapsed > 0 {
		obs := elapsed.Seconds()
		if ws.latEWMA == 0 {
			ws.latEWMA = obs
		} else {
			ws.latEWMA = (1-ewmaAlpha)*ws.latEWMA + ewmaAlpha*obs
		}
	}
}

// workerFailedLocked scores one expired lease against its holder. It
// does not stamp lastSeen — the whole point is that the worker went
// silent.
func (c *Coordinator) workerFailedLocked(name string) {
	if name == "" {
		return
	}
	ws, ok := c.workers[name]
	if !ok {
		return
	}
	ws.failures++
	if ws.leased > 0 {
		ws.leased--
	}
	ws.failEWMA = (1-ewmaAlpha)*ws.failEWMA + ewmaAlpha
}

// grantCapLocked is the routing decision: how many tasks this worker's
// lease call may carry, given its track record. A worker with no
// history gets the full requested batch.
func (c *Coordinator) grantCapLocked(name string, max int) int {
	ws, ok := c.workers[name]
	if !ok || ws.done+ws.failures == 0 {
		return max
	}
	grant := int(math.Ceil(float64(max) * (1 - ws.failEWMA)))
	if grant < 1 {
		grant = 1
	}
	// Latency shaping needs a fleet to compare against: the mean task
	// latency over workers that have completed anything.
	var sum float64
	var n int
	for _, other := range c.workers {
		if other.done > 0 && other.latEWMA > 0 {
			sum += other.latEWMA
			n++
		}
	}
	if n > 1 && ws.latEWMA > 0 && ws.latEWMA > slowFactor*(sum/float64(n)) && grant > 1 {
		grant = (grant + 1) / 2
	}
	return grant
}

// liveWorkersLocked counts workers heard from within livenessTTLs
// lease TTLs.
func (c *Coordinator) liveWorkersLocked() int {
	cutoff := c.now().Add(-livenessTTLs * c.opts.leaseTTL())
	n := 0
	for _, ws := range c.workers {
		if ws.lastSeen.After(cutoff) {
			n++
		}
	}
	return n
}

// pickJobLocked chooses which job a pulling worker serves next: among
// eligible jobs (pending tasks after lazy expiry, open audits, or —
// with hedging on — a straggling lease worth racing), the one with the
// lowest granted-per-weight ratio; ties break by job ID so the
// schedule is deterministic. Returns nil when nothing is eligible.
func (c *Coordinator) pickJobLocked() *gridJob {
	var best *gridJob
	var bestShare float64
	ids := make([]string, 0, len(c.jobs))
	for id := range c.jobs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	now := c.now()
	for _, id := range ids {
		j := c.jobs[id]
		c.expireLocked(j)
		if !j.hasPendingLocked() && len(j.audits) == 0 && !c.hedgeableLocked(j, now) {
			continue
		}
		share := float64(j.leasesGranted) / float64(j.weight)
		if best == nil || share < bestShare {
			best, bestShare = j, share
		}
	}
	return best
}

// --- Hedged leases ---

// hedgeThresholdLocked is the straggler bar: a lease older than
// slowFactor x the fleet-mean task-latency EWMA is worth racing,
// floored at half the lease TTL so a fleet of fast workers does not
// hedge everything the moment it goes idle.
func (c *Coordinator) hedgeThresholdLocked() time.Duration {
	floor := c.opts.leaseTTL() / 2
	var sum float64
	var n int
	for _, ws := range c.workers {
		if ws.done > 0 && ws.latEWMA > 0 {
			sum += ws.latEWMA
			n++
		}
	}
	if n == 0 {
		return floor
	}
	th := time.Duration(slowFactor * sum / float64(n) * float64(time.Second))
	if th < floor {
		return floor
	}
	return th
}

// hedgeableLocked reports whether j holds a straggling lease with no
// hedge yet — job eligibility for the fair scheduler.
func (c *Coordinator) hedgeableLocked(j *gridJob, now time.Time) bool {
	if !c.opts.Hedge {
		return false
	}
	th := c.hedgeThresholdLocked()
	for _, st := range j.tasks {
		if st.status == taskLeased && st.hedgeWorker == "" &&
			!st.leasedAt.IsZero() && now.Sub(st.leasedAt) >= th {
			return true
		}
	}
	return false
}

// grantHedgesLocked fills up to room lease slots with speculative
// duplicates of straggling leases. The hedge is an ordinary-looking
// lease to its holder; first idempotent ingest wins, the loser's
// upload is absorbed as a duplicate (or as audit evidence). Hedges are
// deliberately excluded from the fair-share deficit — they are
// insurance the scheduler buys, not demand the job generated.
func (c *Coordinator) grantHedgesLocked(j *gridJob, worker string, room int, now, deadline time.Time) []LeaseTask {
	if worker == "" || room <= 0 {
		return nil
	}
	th := c.hedgeThresholdLocked()
	var out []LeaseTask
	for _, tid := range j.order {
		if len(out) == room {
			break
		}
		st := j.tasks[tid]
		if st.status != taskLeased || st.worker == worker || st.hedgeWorker != "" ||
			st.leasedAt.IsZero() || now.Sub(st.leasedAt) < th {
			continue
		}
		st.hedgeWorker = worker
		st.hedgeDeadline = deadline
		out = append(out, LeaseTask{
			Task: tid, Measure: st.task.Measure, Lo: st.task.Lo, Hi: st.task.Hi,
			TTLMS: deadline.Sub(now).Milliseconds(),
		})
		c.metrics.leaseHedged.Inc()
		c.walAppendLocked(false, walRecord{T: walHedge, Job: j.id, Task: tid, Worker: worker})
	}
	return out
}

func (j *gridJob) hasPendingLocked() bool {
	if j.done == len(j.order) {
		return false
	}
	for _, st := range j.tasks {
		if st.status == taskPending {
			return true
		}
	}
	return false
}
