// Package grid turns the sweep engine from a library into a deployable
// service: an HTTP coordinator that owns a job's task list and
// checkpoint, and thin workers that lease tasks, compute them with the
// domain's ScoreSlice, and upload the values. The paper's headline
// experiment cost ~25 cluster-hours; the grid is how that workload
// spreads over machines without hand-partitioning -shards/-shard-index
// up front and without losing a shard's share when its machine dies.
//
// The coordinator's unit of work is exactly internal/job's Task, and
// each task moves through a small lease state machine:
//
//	pending ── lease ──▶ leased ── result upload ──▶ done
//	   ▲                   │
//	   └── deadline passed ┘  (requeue; counted, re-leased to anyone)
//
// A lease carries a deadline; workers extend it by heartbeating. A
// worker that is SIGKILLed, partitioned or wedged simply stops
// heartbeating, its leases expire, and the tasks are re-leased — no
// worker registration, no failure detector beyond the deadline.
//
// Correctness under re-leases and duplicate uploads comes from the
// determinism contract of dsa.Domain: a task's values are a pure
// function of the spec and the task identity, so any two honest
// computations of one task agree byte-for-byte. Result ingest is
// therefore idempotent — the first upload wins, is journalled through
// the internal/job checkpoint format (atomic result file + synced
// manifest line), and later duplicates are acknowledged and dropped.
// A grid checkpoint directory is interchangeable with a local one:
// job.Load, dsa-report and a local -resume all read it.
//
// The wire API is JSON over HTTP, rooted at /v1:
//
//	GET  /v1/jobs                  — list jobs (summaries)
//	POST /v1/jobs                  — create a job from an encoded spec
//	GET  /v1/jobs/{id}             — job detail incl. the spec payload
//	POST /v1/jobs/{id}/lease       — lease up to MaxTasks tasks
//	POST /v1/jobs/{id}/heartbeat   — extend leases; learn which were lost
//	POST /v1/jobs/{id}/results     — upload one task's values (idempotent)
//	GET  /v1/jobs/{id}/results     — assembled scores (JSON or ?format=csv)
//	GET  /v1/jobs/{id}/progress    — snapshot, or ?stream=1 for NDJSON
//	                                 snapshots until the job completes
//	GET  /v1/cache                 — cross-job score cache counters
//	POST /v1/lease                 — lease from whichever job the fair
//	                                 scheduler picks (multi-job workers)
//	POST /v1/drain                 — stop granting leases; settle and exit
//	GET  /v1/dashboard             — live HTML operations dashboard
//	GET  /metrics                  — Prometheus text exposition
//
// Production hardening: every error (wrong path, wrong method, bad
// body, unknown job) is structured JSON; request bodies are bounded
// (413 past the cap); an optional shared-secret bearer token guards the
// mutating endpoints; optional per-client token-bucket rate limiting
// answers 429 + Retry-After; and every response carries an
// X-Request-ID that the coordinator's event log lines repeat.
//
// With CoordinatorOptions.Cache set, the coordinator also memoizes:
// every ingested result feeds a cross-job content-addressed score
// cache (internal/cache), and a task whose scores are already known —
// from a previous job, a checkpoint restore, or an overlapping spec —
// is served as an ingested result instead of ever being dispatched.
package grid

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/dsa"
	"repro/internal/gridobs"
)

// JobSummary is one row of the jobs listing.
type JobSummary struct {
	ID         string `json:"id"`
	Domain     string `json:"domain"`
	TotalTasks int    `json:"total_tasks"`
	DoneTasks  int    `json:"done_tasks"`
	Priority   int    `json:"priority"`
	Complete   bool   `json:"complete"`
}

// JobDetail is a summary plus the spec payload (job.EncodeSpec bytes)
// a worker needs to execute leases.
type JobDetail struct {
	JobSummary
	Spec json.RawMessage `json:"spec"`
}

type jobsResponse struct {
	Jobs []JobSummary `json:"jobs"`
}

// CreateJobRequest registers a sweep with the coordinator. Spec is a
// job.EncodeSpec payload; job creation is idempotent — the job ID
// derives from the spec bytes, so re-POSTing the same sweep returns
// the existing job.
type CreateJobRequest struct {
	Spec json.RawMessage `json:"spec"`
	// Priority is the job's fair-share scheduling weight: against other
	// concurrent jobs it receives leased tasks in proportion to this
	// weight. 0 (or absent) means 1. Re-posting an existing job with a
	// different priority updates the weight.
	Priority int `json:"priority,omitempty"`
}

// LeaseRequest asks for up to MaxTasks pending tasks on behalf of
// Worker (an opaque identity used only to match heartbeats to leases).
type LeaseRequest struct {
	Worker   string `json:"worker"`
	MaxTasks int    `json:"max_tasks"`
}

// LeaseTask is one leased task: the job.Task coordinates plus the
// lease TTL the worker must heartbeat within.
type LeaseTask struct {
	Task    string `json:"task"`
	Measure string `json:"measure"`
	Lo      int    `json:"lo"`
	Hi      int    `json:"hi"`
	TTLMS   int64  `json:"ttl_ms"`
}

// LeaseResponse carries the granted leases. Complete means every task
// is done — workers should exit rather than poll again. Draining means
// the coordinator is shutting down gracefully and grants nothing;
// workers should exit and reconnect to the restarted coordinator.
type LeaseResponse struct {
	Tasks    []LeaseTask `json:"tasks"`
	Complete bool        `json:"complete"`
	Draining bool        `json:"draining,omitempty"`
}

// GlobalLeaseResponse answers POST /v1/lease: tasks from whichever job
// the fair scheduler picked (all tasks in one response belong to Job).
// AllComplete means every registered job is done; Draining as in
// LeaseResponse.
type GlobalLeaseResponse struct {
	Job         string      `json:"job"`
	Tasks       []LeaseTask `json:"tasks"`
	AllComplete bool        `json:"all_complete"`
	Draining    bool        `json:"draining,omitempty"`
}

// DrainResponse answers POST /v1/drain: the coordinator stops granting
// leases and will exit once InFlight leases settle (upload or expire).
type DrainResponse struct {
	Draining bool `json:"draining"`
	InFlight int  `json:"in_flight"`
}

// HeartbeatRequest extends Worker's leases on Tasks.
type HeartbeatRequest struct {
	Worker string   `json:"worker"`
	Tasks  []string `json:"tasks"`
}

// HeartbeatResponse reports which leases were renewed and which are
// lost (expired and possibly re-leased, or already done) — the worker
// should stop heartbeating lost tasks but may still upload a finished
// result, which ingest handles idempotently.
type HeartbeatResponse struct {
	Renewed []string `json:"renewed"`
	Lost    []string `json:"lost"`
}

// WireFloats is []float64 that survives JSON: non-finite values,
// which encoding/json rejects but a domain may legitimately produce,
// use the shared canonical tokens (see dsa.JSONFloats — the same
// codec the checkpoint result files use, so grid and local runs agree
// byte-for-byte on disk too).
type WireFloats = dsa.JSONFloats

// ResultUpload is one finished task's values.
type ResultUpload struct {
	Worker    string     `json:"worker"`
	Task      string     `json:"task"`
	Values    WireFloats `json:"values"`
	ElapsedMS int64      `json:"elapsed_ms"`
}

// ScoresWire is dsa.Scores in grid wire form: the same shape, with
// score vectors as WireFloats so non-finite values round-trip.
type ScoresWire struct {
	Domain string                `json:"domain"`
	Points []core.Point          `json:"points"`
	Raw    map[string]WireFloats `json:"raw"`
	Values map[string]WireFloats `json:"values"`
}

func scoresToWire(s *dsa.Scores) ScoresWire {
	w := ScoresWire{
		Domain: s.Domain, Points: s.Points,
		Raw:    make(map[string]WireFloats, len(s.Raw)),
		Values: make(map[string]WireFloats, len(s.Values)),
	}
	for m, v := range s.Raw {
		w.Raw[m] = WireFloats(v)
	}
	for m, v := range s.Values {
		w.Values[m] = WireFloats(v)
	}
	return w
}

func (w ScoresWire) scores() *dsa.Scores {
	s := &dsa.Scores{
		Domain: w.Domain, Points: w.Points,
		Raw:    make(map[string][]float64, len(w.Raw)),
		Values: make(map[string][]float64, len(w.Values)),
	}
	for m, v := range w.Raw {
		s.Raw[m] = []float64(v)
	}
	for m, v := range w.Values {
		s.Values[m] = []float64(v)
	}
	return s
}

// ResultAck acknowledges an upload. Duplicate marks a task that was
// already done (the upload was dropped; determinism makes it
// equivalent).
type ResultAck struct {
	Accepted  bool `json:"accepted"`
	Duplicate bool `json:"duplicate"`
}

// ProgressSnapshot is the live view of a job served by /progress and
// pushed line-by-line on the streaming variant.
type ProgressSnapshot struct {
	JobID         string `json:"job_id"`
	Total         int    `json:"total_tasks"`
	Done          int    `json:"done_tasks"`
	Leased        int    `json:"leased_tasks"`
	Pending       int    `json:"pending_tasks"`
	Requeues      int    `json:"requeues"`         // leases that expired back to pending
	Workers       int    `json:"workers"`          // workers holding a live lease
	CacheTasks    int    `json:"cache_tasks"`      // tasks served from the score cache, never dispatched
	LeasesGranted int    `json:"leases_granted"`   // tasks handed out on leases, re-leases included
	Priority      int    `json:"priority"`         // fair-share weight
	Audits        int    `json:"audits,omitempty"` // open result audits still gating completion
	Complete      bool   `json:"complete"`
}

// CacheStatsResponse is served by GET /v1/cache: the coordinator's
// cross-job score cache counters (see dsa.CacheStats). Enabled is
// false when the coordinator runs without a cache — the counters are
// then all zero.
type CacheStatsResponse struct {
	Enabled bool `json:"enabled"`
	dsa.CacheStats
}

type errorBody struct {
	Error string `json:"error"`
}

// Wire headers for the Byzantine-tolerance plumbing.
const (
	// HeaderBodySHA256 carries the lowercase hex SHA-256 of the request
	// body. The coordinator verifies it before decoding, so a body
	// corrupted in transit is rejected (400 + HeaderCorruptBody) and
	// resent — instead of being recorded and later mistaken for a
	// Byzantine result when an audit re-computes the task.
	HeaderBodySHA256 = "X-Body-Sha256"
	// HeaderCorruptBody marks a 400 as transport corruption: the request
	// as sent was fine, resending it is the fix.
	HeaderCorruptBody = "X-Grid-Corrupt-Body"
	// HeaderQuarantined marks a 429 as a quarantine verdict rather than
	// rate limiting: retrying is pointless, the worker should exit.
	HeaderQuarantined = "X-Grid-Quarantined"
)

// ErrWorkerQuarantined surfaces a quarantine verdict to client callers
// (errors.Is-able): the coordinator refuses this worker's leases,
// heartbeats and uploads, permanently.
var ErrWorkerQuarantined = errors.New("grid: worker quarantined by coordinator")

// --- HTTP client helpers, shared by the worker, the facade and
// dsa-report's -coordinator mode. ---
//
// Every call is bounded and retried: a request either completes within
// the client timeout or fails, and transient failures (transport
// errors, 5xx) back off and retry a few times before surfacing. A hung
// or briefly unreachable coordinator therefore slows a client down; it
// can never wedge one forever — callers that pass their own
// *http.Client keep their own timeout policy, nil callers get
// DefaultHTTPTimeout.

const (
	// DefaultHTTPTimeout bounds one request end to end (connect,
	// request, full response body) for clients that do not inject
	// their own http.Client. Generous because a result upload can
	// carry a large task's values; far from infinite because the
	// default it replaces (http.DefaultClient, no timeout at all)
	// let a hung coordinator wedge workers and reports forever.
	DefaultHTTPTimeout = 60 * time.Second

	// clientAttempts and clientRetryBase shape the retry schedule:
	// exponential ceilings of 250ms, 500ms, 1s between the 4 attempts
	// — enough to ride out a coordinator restart without masking a
	// real outage for long. The actual sleep before each retry is
	// *full jitter* over the ceiling (uniform in [0, ceiling]): when a
	// whole fleet of workers gets 5xx/429 from the same hiccup at the
	// same instant, deterministic backoff would march them back in
	// lockstep and re-create the stampede every period; jitter spreads
	// the retries across the window.
	clientAttempts  = 4
	clientRetryBase = 250 * time.Millisecond

	// maxRetryAfter caps how long a server-sent Retry-After can stall a
	// retry loop: a coordinator asking for an hour (quarantine) should
	// surface as an error via the attempt budget, not a silent hour.
	maxRetryAfter = 30 * time.Second
)

// retryDelay computes the sleep before retry attempt n (n >= 1): full
// jitter over an exponential ceiling. A package variable so tests can
// pin or record it.
var retryDelay = func(attempt int) time.Duration {
	ceiling := clientRetryBase << (attempt - 1)
	return time.Duration(rand.Int64N(int64(ceiling) + 1))
}

// defaultClient returns the client used when callers pass nil.
func defaultClient() *http.Client {
	return &http.Client{Timeout: DefaultHTTPTimeout}
}

// authTransport injects the grid shared-secret bearer token into every
// request it carries.
type authTransport struct {
	token string
	base  http.RoundTripper
}

func (t *authTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	// Per the RoundTripper contract, the request must not be mutated.
	clone := req.Clone(req.Context())
	clone.Header.Set("Authorization", "Bearer "+t.token)
	return t.base.RoundTrip(clone)
}

// AuthTransport wraps base (nil = http.DefaultTransport) so every
// request carries `Authorization: Bearer token` — the client half of
// CoordinatorOptions.AuthToken. An empty token returns base unchanged.
func AuthTransport(token string, base http.RoundTripper) http.RoundTripper {
	if base == nil {
		base = http.DefaultTransport
	}
	if token == "" {
		return base
	}
	return &authTransport{token: token, base: base}
}

// NewClient returns an *http.Client with the default timeout that
// authenticates with token (which may be empty for an open grid).
func NewClient(token string) *http.Client {
	return &http.Client{Timeout: DefaultHTTPTimeout, Transport: AuthTransport(token, nil)}
}

func getJSON(ctx context.Context, client *http.Client, url string, out any) error {
	return doJSON(ctx, client, http.MethodGet, url, nil, out)
}

func postJSON(ctx context.Context, client *http.Client, url string, in, out any) error {
	return doJSON(ctx, client, http.MethodPost, url, in, out)
}

// callInfo reports how one doJSON call actually went on the wire — the
// request ID it carried and how many attempts it took. An out-param
// rather than a package hook so in-process multi-worker tests (and the
// workers themselves) never share mutable state.
type callInfo struct {
	requestID string
	attempts  int
}

// doJSON issues one JSON request with bounded retries. Retrying every
// verb is safe against this API by design: job creation and result
// upload are idempotent, lease duplicates only cost a lease TTL, and
// heartbeats are refreshes. Non-retryable failures (4xx — the request
// itself is wrong) surface immediately.
func doJSON(ctx context.Context, client *http.Client, method, url string, in, out any) error {
	return doJSONInfo(ctx, client, method, url, in, out, nil)
}

func postJSONInfo(ctx context.Context, client *http.Client, url string, in, out any, info *callInfo) error {
	return doJSONInfo(ctx, client, http.MethodPost, url, in, out, info)
}

// doJSONInfo is doJSON plus client-side request identity: one request
// ID is generated per call and sent on every attempt (with retries
// marked via RetryAttemptHeader), so the coordinator's access log and
// the worker's trace journal name the same rid for the same call —
// a task is traceable across both sides of the wire. info (optional)
// receives the rid and the attempt count.
func doJSONInfo(ctx context.Context, client *http.Client, method, url string, in, out any, info *callInfo) error {
	var body []byte
	if in != nil {
		var err error
		if body, err = json.Marshal(in); err != nil {
			return err
		}
	}
	rid := gridobs.NewRequestID()
	if info != nil {
		info.requestID = rid
	}
	var lastErr error
	var serverPause time.Duration
	for attempt := 0; attempt < clientAttempts; attempt++ {
		if attempt > 0 {
			// When the server named a pause (Retry-After on 429/503),
			// honor it exactly: jittering under it would retry into the
			// same closed window, padding past it wastes the fleet's
			// time. Otherwise: full jitter over the exponential ceiling.
			delay := retryDelay(attempt)
			if serverPause > 0 {
				delay = serverPause
			}
			select {
			case <-time.After(delay):
			case <-ctx.Done():
				return ctx.Err()
			}
		}
		serverPause = 0
		if info != nil {
			info.attempts = attempt + 1
		}
		var reqBody io.Reader
		if in != nil {
			reqBody = bytes.NewReader(body)
		}
		req, err := http.NewRequestWithContext(ctx, method, url, reqBody)
		if err != nil {
			return err
		}
		if in != nil {
			req.Header.Set("Content-Type", "application/json")
			sum := sha256.Sum256(body)
			req.Header.Set(HeaderBodySHA256, hex.EncodeToString(sum[:]))
		}
		req.Header.Set(gridobs.RequestIDHeader, rid)
		if attempt > 0 {
			req.Header.Set(gridobs.RetryAttemptHeader, strconv.Itoa(attempt))
		}
		resp, err := client.Do(req)
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			lastErr = err // transport error (refused, reset, timeout): retry
			continue
		}
		retryable, retryAfter, err := decodeResponse(resp, url, out)
		resp.Body.Close()
		if err == nil {
			return nil
		}
		if !retryable {
			return err
		}
		if retryAfter > maxRetryAfter {
			retryAfter = maxRetryAfter
		}
		serverPause = retryAfter
		lastErr = err
	}
	return fmt.Errorf("grid: %s: giving up after %d attempts: %w", url, clientAttempts, lastErr)
}

// decodeResponse reads and decodes one response, classifying failures:
// 5xx, 429 (rate limited), and checksum-rejected bodies (transport
// corruption — resending re-rolls the dice) are transient (retryable),
// with any Retry-After seconds the server sent passed back as the
// pacing to honor; a quarantine-marked 429 is a verdict, surfaced as
// ErrWorkerQuarantined and never retried; other 4xx and
// malformed-success bodies are not retryable either.
func decodeResponse(resp *http.Response, url string, out any) (retryable bool, retryAfter time.Duration, err error) {
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return true, 0, fmt.Errorf("grid: read %s: %w", url, err)
	}
	if resp.StatusCode/100 != 2 {
		if resp.Header.Get(HeaderQuarantined) != "" {
			return false, 0, fmt.Errorf("%w (%s, HTTP %d)", ErrWorkerQuarantined, url, resp.StatusCode)
		}
		retryable = resp.StatusCode >= 500 || resp.StatusCode == http.StatusTooManyRequests ||
			(resp.StatusCode == http.StatusBadRequest && resp.Header.Get(HeaderCorruptBody) != "")
		if retryable {
			if s, perr := strconv.Atoi(resp.Header.Get("Retry-After")); perr == nil && s > 0 {
				retryAfter = time.Duration(s) * time.Second
			}
		}
		var eb errorBody
		if json.Unmarshal(raw, &eb) == nil && eb.Error != "" {
			return retryable, retryAfter, fmt.Errorf("grid: %s: %s (HTTP %d)", url, eb.Error, resp.StatusCode)
		}
		return retryable, retryAfter, fmt.Errorf("grid: %s: HTTP %d", url, resp.StatusCode)
	}
	if out == nil {
		return false, 0, nil
	}
	if err := json.Unmarshal(raw, out); err != nil {
		return false, 0, fmt.Errorf("grid: decode %s: %w", url, err)
	}
	return false, 0, nil
}

func apiURL(base string, parts ...string) string {
	return strings.TrimSuffix(base, "/") + "/v1/" + strings.Join(parts, "/")
}

// ListJobs fetches the coordinator's job summaries. A nil client uses
// a default client with DefaultHTTPTimeout.
func ListJobs(ctx context.Context, client *http.Client, baseURL string) ([]JobSummary, error) {
	if client == nil {
		client = defaultClient()
	}
	var resp jobsResponse
	if err := getJSON(ctx, client, apiURL(baseURL, "jobs"), &resp); err != nil {
		return nil, err
	}
	return resp.Jobs, nil
}

// GetJob fetches one job's detail, including its spec payload.
func GetJob(ctx context.Context, client *http.Client, baseURL, jobID string) (JobDetail, error) {
	if client == nil {
		client = defaultClient()
	}
	var d JobDetail
	err := getJSON(ctx, client, apiURL(baseURL, "jobs", jobID), &d)
	return d, err
}

// FetchScores downloads a completed job's assembled scores. An
// incomplete job is an error (the coordinator answers 409 with its
// progress).
func FetchScores(ctx context.Context, client *http.Client, baseURL, jobID string) (*dsa.Scores, error) {
	if client == nil {
		client = defaultClient()
	}
	var w ScoresWire
	if err := getJSON(ctx, client, apiURL(baseURL, "jobs", jobID, "results"), &w); err != nil {
		return nil, err
	}
	return w.scores(), nil
}

// FetchCacheStats fetches the coordinator's score cache counters
// (dsa-report's `cache -coordinator` view).
func FetchCacheStats(ctx context.Context, client *http.Client, baseURL string) (CacheStatsResponse, error) {
	if client == nil {
		client = defaultClient()
	}
	var resp CacheStatsResponse
	err := getJSON(ctx, client, apiURL(baseURL, "cache"), &resp)
	return resp, err
}
