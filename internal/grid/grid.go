// Package grid turns the sweep engine from a library into a deployable
// service: an HTTP coordinator that owns a job's task list and
// checkpoint, and thin workers that lease tasks, compute them with the
// domain's ScoreSlice, and upload the values. The paper's headline
// experiment cost ~25 cluster-hours; the grid is how that workload
// spreads over machines without hand-partitioning -shards/-shard-index
// up front and without losing a shard's share when its machine dies.
//
// The coordinator's unit of work is exactly internal/job's Task, and
// each task moves through a small lease state machine:
//
//	pending ── lease ──▶ leased ── result upload ──▶ done
//	   ▲                   │
//	   └── deadline passed ┘  (requeue; counted, re-leased to anyone)
//
// A lease carries a deadline; workers extend it by heartbeating. A
// worker that is SIGKILLed, partitioned or wedged simply stops
// heartbeating, its leases expire, and the tasks are re-leased — no
// worker registration, no failure detector beyond the deadline.
//
// Correctness under re-leases and duplicate uploads comes from the
// determinism contract of dsa.Domain: a task's values are a pure
// function of the spec and the task identity, so any two honest
// computations of one task agree byte-for-byte. Result ingest is
// therefore idempotent — the first upload wins, is journalled through
// the internal/job checkpoint format (atomic result file + synced
// manifest line), and later duplicates are acknowledged and dropped.
// A grid checkpoint directory is interchangeable with a local one:
// job.Load, dsa-report and a local -resume all read it.
//
// The wire API is JSON over HTTP, rooted at /v1:
//
//	GET  /v1/jobs                  — list jobs (summaries)
//	POST /v1/jobs                  — create a job from an encoded spec
//	GET  /v1/jobs/{id}             — job detail incl. the spec payload
//	POST /v1/jobs/{id}/lease       — lease up to MaxTasks tasks
//	POST /v1/jobs/{id}/heartbeat   — extend leases; learn which were lost
//	POST /v1/jobs/{id}/results     — upload one task's values (idempotent)
//	GET  /v1/jobs/{id}/results     — assembled scores (JSON or ?format=csv)
//	GET  /v1/jobs/{id}/progress    — snapshot, or ?stream=1 for NDJSON
//	                                 snapshots until the job completes
package grid

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"repro/internal/core"
	"repro/internal/dsa"
)

// JobSummary is one row of the jobs listing.
type JobSummary struct {
	ID         string `json:"id"`
	Domain     string `json:"domain"`
	TotalTasks int    `json:"total_tasks"`
	DoneTasks  int    `json:"done_tasks"`
	Complete   bool   `json:"complete"`
}

// JobDetail is a summary plus the spec payload (job.EncodeSpec bytes)
// a worker needs to execute leases.
type JobDetail struct {
	JobSummary
	Spec json.RawMessage `json:"spec"`
}

type jobsResponse struct {
	Jobs []JobSummary `json:"jobs"`
}

// CreateJobRequest registers a sweep with the coordinator. Spec is a
// job.EncodeSpec payload; job creation is idempotent — the job ID
// derives from the spec bytes, so re-POSTing the same sweep returns
// the existing job.
type CreateJobRequest struct {
	Spec json.RawMessage `json:"spec"`
}

// LeaseRequest asks for up to MaxTasks pending tasks on behalf of
// Worker (an opaque identity used only to match heartbeats to leases).
type LeaseRequest struct {
	Worker   string `json:"worker"`
	MaxTasks int    `json:"max_tasks"`
}

// LeaseTask is one leased task: the job.Task coordinates plus the
// lease TTL the worker must heartbeat within.
type LeaseTask struct {
	Task    string `json:"task"`
	Measure string `json:"measure"`
	Lo      int    `json:"lo"`
	Hi      int    `json:"hi"`
	TTLMS   int64  `json:"ttl_ms"`
}

// LeaseResponse carries the granted leases. Complete means every task
// is done — workers should exit rather than poll again.
type LeaseResponse struct {
	Tasks    []LeaseTask `json:"tasks"`
	Complete bool        `json:"complete"`
}

// HeartbeatRequest extends Worker's leases on Tasks.
type HeartbeatRequest struct {
	Worker string   `json:"worker"`
	Tasks  []string `json:"tasks"`
}

// HeartbeatResponse reports which leases were renewed and which are
// lost (expired and possibly re-leased, or already done) — the worker
// should stop heartbeating lost tasks but may still upload a finished
// result, which ingest handles idempotently.
type HeartbeatResponse struct {
	Renewed []string `json:"renewed"`
	Lost    []string `json:"lost"`
}

// WireFloats is []float64 that survives JSON: non-finite values,
// which encoding/json rejects but a domain may legitimately produce,
// use the shared canonical tokens (see dsa.JSONFloats — the same
// codec the checkpoint result files use, so grid and local runs agree
// byte-for-byte on disk too).
type WireFloats = dsa.JSONFloats

// ResultUpload is one finished task's values.
type ResultUpload struct {
	Worker    string     `json:"worker"`
	Task      string     `json:"task"`
	Values    WireFloats `json:"values"`
	ElapsedMS int64      `json:"elapsed_ms"`
}

// ScoresWire is dsa.Scores in grid wire form: the same shape, with
// score vectors as WireFloats so non-finite values round-trip.
type ScoresWire struct {
	Domain string                `json:"domain"`
	Points []core.Point          `json:"points"`
	Raw    map[string]WireFloats `json:"raw"`
	Values map[string]WireFloats `json:"values"`
}

func scoresToWire(s *dsa.Scores) ScoresWire {
	w := ScoresWire{
		Domain: s.Domain, Points: s.Points,
		Raw:    make(map[string]WireFloats, len(s.Raw)),
		Values: make(map[string]WireFloats, len(s.Values)),
	}
	for m, v := range s.Raw {
		w.Raw[m] = WireFloats(v)
	}
	for m, v := range s.Values {
		w.Values[m] = WireFloats(v)
	}
	return w
}

func (w ScoresWire) scores() *dsa.Scores {
	s := &dsa.Scores{
		Domain: w.Domain, Points: w.Points,
		Raw:    make(map[string][]float64, len(w.Raw)),
		Values: make(map[string][]float64, len(w.Values)),
	}
	for m, v := range w.Raw {
		s.Raw[m] = []float64(v)
	}
	for m, v := range w.Values {
		s.Values[m] = []float64(v)
	}
	return s
}

// ResultAck acknowledges an upload. Duplicate marks a task that was
// already done (the upload was dropped; determinism makes it
// equivalent).
type ResultAck struct {
	Accepted  bool `json:"accepted"`
	Duplicate bool `json:"duplicate"`
}

// ProgressSnapshot is the live view of a job served by /progress and
// pushed line-by-line on the streaming variant.
type ProgressSnapshot struct {
	JobID    string `json:"job_id"`
	Total    int    `json:"total_tasks"`
	Done     int    `json:"done_tasks"`
	Leased   int    `json:"leased_tasks"`
	Pending  int    `json:"pending_tasks"`
	Requeues int    `json:"requeues"` // leases that expired back to pending
	Workers  int    `json:"workers"`  // workers holding a live lease
	Complete bool   `json:"complete"`
}

type errorBody struct {
	Error string `json:"error"`
}

// --- HTTP client helpers, shared by the worker, the facade and
// dsa-report's -coordinator mode. ---

func getJSON(ctx context.Context, client *http.Client, url string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return decodeResponse(resp, url, out)
}

func postJSON(ctx context.Context, client *http.Client, url string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return decodeResponse(resp, url, out)
}

func decodeResponse(resp *http.Response, url string, out any) error {
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return fmt.Errorf("grid: read %s: %w", url, err)
	}
	if resp.StatusCode/100 != 2 {
		var eb errorBody
		if json.Unmarshal(raw, &eb) == nil && eb.Error != "" {
			return fmt.Errorf("grid: %s: %s (HTTP %d)", url, eb.Error, resp.StatusCode)
		}
		return fmt.Errorf("grid: %s: HTTP %d", url, resp.StatusCode)
	}
	if out == nil {
		return nil
	}
	if err := json.Unmarshal(raw, out); err != nil {
		return fmt.Errorf("grid: decode %s: %w", url, err)
	}
	return nil
}

func apiURL(base string, parts ...string) string {
	return strings.TrimSuffix(base, "/") + "/v1/" + strings.Join(parts, "/")
}

// ListJobs fetches the coordinator's job summaries. A nil client uses
// http.DefaultClient.
func ListJobs(ctx context.Context, client *http.Client, baseURL string) ([]JobSummary, error) {
	if client == nil {
		client = http.DefaultClient
	}
	var resp jobsResponse
	if err := getJSON(ctx, client, apiURL(baseURL, "jobs"), &resp); err != nil {
		return nil, err
	}
	return resp.Jobs, nil
}

// GetJob fetches one job's detail, including its spec payload.
func GetJob(ctx context.Context, client *http.Client, baseURL, jobID string) (JobDetail, error) {
	if client == nil {
		client = http.DefaultClient
	}
	var d JobDetail
	err := getJSON(ctx, client, apiURL(baseURL, "jobs", jobID), &d)
	return d, err
}

// FetchScores downloads a completed job's assembled scores. An
// incomplete job is an error (the coordinator answers 409 with its
// progress).
func FetchScores(ctx context.Context, client *http.Client, baseURL, jobID string) (*dsa.Scores, error) {
	if client == nil {
		client = http.DefaultClient
	}
	var w ScoresWire
	if err := getJSON(ctx, client, apiURL(baseURL, "jobs", jobID, "results"), &w); err != nil {
		return nil, err
	}
	return w.scores(), nil
}
