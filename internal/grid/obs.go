package grid

import (
	"math"
	"strconv"
	"time"

	"repro/internal/gridobs"
)

// gridMetrics is every instrument the coordinator exports on
// GET /metrics. Counters and histograms are bumped inline on the hot
// paths; state-shaped gauges (queue depths, worker liveness, cache
// ratios, ETAs) are refreshed by a collect hook at scrape time so a
// scrape always sees current truth without a background updater.
type gridMetrics struct {
	reg *gridobs.Registry

	leaseRequests  *gridobs.Counter
	leasesGranted  *gridobs.Counter
	tasksIngested  *gridobs.Counter
	valuesIngested *gridobs.Counter
	duplicates     *gridobs.Counter
	requeues       *gridobs.Counter
	cacheServed    *gridobs.Counter
	authFailures   *gridobs.Counter
	rateLimited    *gridobs.Counter
	httpRequests   *gridobs.CounterVec // code
	leaseLatency   *gridobs.Histogram
	httpDuration   *gridobs.Histogram

	// Byzantine-tolerance instruments (audit.go) and crash-recovery
	// bookkeeping (wal.go).
	auditsOpened    *gridobs.Counter
	auditsPassed    *gridobs.Counter
	auditMismatches *gridobs.Counter
	invalidated     *gridobs.Counter
	quarantines     *gridobs.Counter
	corruptBodies   *gridobs.Counter
	leaseHedged     *gridobs.Counter
	walRecords      *gridobs.Counter
	walReplayed     *gridobs.Gauge
	quarantinedVec  *gridobs.GaugeVec // worker

	// Trace-ingest counters: the fleet observability plane's own
	// health (POST /v1/trace volume and dedup effectiveness).
	traceUploads  *gridobs.Counter
	traceBytes    *gridobs.Counter
	traceSpans    *gridobs.Counter
	traceDedup    *gridobs.Counter
	traceJournals *gridobs.Gauge

	// Federated worker metrics, refreshed at scrape time from the
	// latest snapshot each worker piggybacked on a trace upload.
	// Counters arrive cumulative-since-worker-start, so they re-expose
	// as per-worker gauges (the same shape as grid_cache_hits);
	// histograms re-expose per worker and merged across the fleet.
	workerTasks       *gridobs.GaugeVec     // worker
	workerPoints      *gridobs.GaugeVec     // worker, kind
	workerRetries     *gridobs.GaugeVec     // worker
	workerTaskSeconds *gridobs.HistogramVec // worker, measure
	fleetTaskSeconds  *gridobs.HistogramVec // measure

	jobTasks      *gridobs.GaugeVec // job, state
	jobETA        *gridobs.GaugeVec // job
	jobPriority   *gridobs.GaugeVec // job
	workerLive    *gridobs.GaugeVec // worker
	workerLatency *gridobs.GaugeVec // worker
	workerFailure *gridobs.GaugeVec // worker
	workersLive   *gridobs.Gauge
	jobsTotal     *gridobs.Gauge
	jobsComplete  *gridobs.Gauge
	draining      *gridobs.Gauge
	cacheHits     *gridobs.Gauge
	cacheMisses   *gridobs.Gauge
	cacheEntries  *gridobs.Gauge
	cacheHitRatio *gridobs.Gauge
}

func newGridMetrics(c *Coordinator) *gridMetrics {
	r := gridobs.NewRegistry()
	m := &gridMetrics{
		reg: r,

		leaseRequests:  r.NewCounter("grid_lease_requests_total", "Lease calls received (including empty grants)."),
		leasesGranted:  r.NewCounter("grid_leases_granted_total", "Tasks handed out on leases (re-leases included)."),
		tasksIngested:  r.NewCounter("grid_tasks_ingested_total", "Task results accepted and journalled."),
		valuesIngested: r.NewCounter("grid_values_ingested_total", "Individual point scores ingested — the ingest throughput counter."),
		duplicates:     r.NewCounter("grid_duplicate_uploads_total", "Uploads dropped as idempotent duplicates."),
		requeues:       r.NewCounter("grid_lease_expiries_total", "Leases that expired and re-queued their task."),
		cacheServed:    r.NewCounter("grid_cache_served_tasks_total", "Tasks served from the cross-job score cache without being leased."),
		authFailures:   r.NewCounter("grid_auth_failures_total", "Requests rejected for a missing or wrong auth token."),
		rateLimited:    r.NewCounter("grid_ratelimited_total", "Requests rejected by per-client rate limiting."),
		httpRequests:   r.NewCounterVec("grid_http_requests_total", "HTTP requests served, by status code.", "code"),
		leaseLatency: r.NewHistogram("grid_lease_latency_seconds",
			"Per-task lease latency: lease grant to result ingest.", gridobs.DefBuckets),
		httpDuration: r.NewHistogram("grid_http_request_duration_seconds",
			"HTTP request handling time.", gridobs.DefBuckets),

		auditsOpened:    r.NewCounter("grid_audits_opened_total", "Completed tasks silently re-leased for verification."),
		auditsPassed:    r.NewCounter("grid_audits_passed_total", "Audits settled with the recorded value confirmed."),
		auditMismatches: r.NewCounter("grid_audit_mismatches_total", "Uploads that contradicted a recorded value."),
		invalidated:     r.NewCounter("grid_tasks_invalidated_total", "Done tasks whose recorded value was discarded and re-queued."),
		quarantines:     r.NewCounter("grid_quarantines_total", "Workers quarantined (audit verdicts, operator requests and WAL replays)."),
		corruptBodies:   r.NewCounter("grid_corrupt_bodies_total", "Request bodies rejected for a checksum mismatch (transport corruption)."),
		leaseHedged:     r.NewCounter("grid_lease_hedged_total", "Speculative duplicate leases granted against straggling primaries."),
		walRecords:      r.NewCounter("grid_wal_records_total", "Scheduling records appended to the coordinator WAL."),
		walReplayed:     r.NewGauge("grid_wal_replayed_records", "WAL records replayed at the last coordinator startup."),
		quarantinedVec:  r.NewGaugeVec("grid_worker_quarantined", "1 while the worker is quarantined.", "worker"),

		traceUploads:  r.NewCounter("grid_trace_uploads_total", "Trace chunk uploads accepted (including empty stats probes)."),
		traceBytes:    r.NewCounter("grid_trace_bytes_total", "Journal bytes appended to collected traces (post-dedup)."),
		traceSpans:    r.NewCounter("grid_trace_spans_total", "Span records appended to collected traces (post-dedup)."),
		traceDedup:    r.NewCounter("grid_trace_dedup_total", "Trace uploads that overlapped already-collected bytes (retries after a lost ack)."),
		traceJournals: r.NewGauge("grid_trace_journals", "Distinct (job, writer) journals collected."),

		workerTasks:   r.NewGaugeVec("grid_worker_tasks", "Tasks computed, per worker (cumulative since worker start, federated from trace uploads).", "worker"),
		workerPoints:  r.NewGaugeVec("grid_worker_points", "Design points by source, per worker (federated).", "worker", "kind"),
		workerRetries: r.NewGaugeVec("grid_worker_upload_retries", "Upload retries, per worker (federated).", "worker"),
		workerTaskSeconds: r.NewHistogramVec("grid_worker_task_seconds",
			"Per-worker task compute latency by measure (federated from trace uploads).", gridobs.DefBuckets, "worker", "measure"),
		fleetTaskSeconds: r.NewHistogramVec("grid_fleet_task_seconds",
			"Fleet-wide task compute latency by measure: per-worker histograms merged bucket-wise.", gridobs.DefBuckets, "measure"),

		jobTasks:      r.NewGaugeVec("grid_job_tasks", "Per-job task counts by state — pending is the queue depth.", "job", "state"),
		jobETA:        r.NewGaugeVec("grid_job_eta_seconds", "Estimated seconds until the job completes, from its observed completion rate. NaN before any progress.", "job"),
		jobPriority:   r.NewGaugeVec("grid_job_priority", "Fair-share scheduling weight.", "job"),
		workerLive:    r.NewGaugeVec("grid_worker_live", "1 if the worker was heard from within the liveness window.", "worker"),
		workerLatency: r.NewGaugeVec("grid_worker_latency_seconds", "EWMA of the worker's per-task wall time.", "worker"),
		workerFailure: r.NewGaugeVec("grid_worker_failure_ratio", "EWMA of the worker's lease-expiry rate (0 reliable, 1 failing).", "worker"),
		workersLive:   r.NewGauge("grid_workers_live", "Workers heard from within the liveness window."),
		jobsTotal:     r.NewGauge("grid_jobs", "Jobs registered."),
		jobsComplete:  r.NewGauge("grid_jobs_complete", "Jobs with every task done."),
		draining:      r.NewGauge("grid_draining", "1 while the coordinator is draining (no new leases)."),
		cacheHits:     r.NewGauge("grid_cache_hits", "Score cache hits (cumulative, from the cache's own counters)."),
		cacheMisses:   r.NewGauge("grid_cache_misses", "Score cache misses (cumulative)."),
		cacheEntries:  r.NewGauge("grid_cache_entries", "Distinct keys in the score cache."),
		cacheHitRatio: r.NewGauge("grid_cache_hit_ratio", "hits / (hits + misses); NaN before any lookup."),
	}
	r.NewGaugeFunc("grid_uptime_seconds", "Seconds since the coordinator started.", func() float64 {
		return time.Since(c.started).Seconds()
	})
	r.OnCollect(func() { c.collectGauges(m) })
	return m
}

// collectGauges refreshes every state-shaped gauge from coordinator
// state; it runs at scrape time (and for the dashboard).
func (c *Coordinator) collectGauges(m *gridMetrics) {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.now()

	m.jobTasks.Reset()
	m.jobETA.Reset()
	m.jobPriority.Reset()
	complete := 0
	for id, j := range c.jobs {
		c.expireLocked(j)
		snap := c.snapshotLocked(j)
		m.jobTasks.With(id, "pending").Set(float64(snap.Pending))
		m.jobTasks.With(id, "leased").Set(float64(snap.Leased))
		m.jobTasks.With(id, "done").Set(float64(snap.Done))
		m.jobTasks.With(id, "total").Set(float64(snap.Total))
		m.jobETA.With(id).Set(c.etaLocked(j, now))
		m.jobPriority.With(id).Set(float64(j.weight))
		if snap.Complete {
			complete++
		}
	}
	m.jobsTotal.Set(float64(len(c.jobs)))
	m.jobsComplete.Set(float64(complete))

	m.workerLive.Reset()
	m.workerLatency.Reset()
	m.workerFailure.Reset()
	cutoff := now.Add(-livenessTTLs * c.opts.leaseTTL())
	for name, ws := range c.workers {
		live := 0.0
		if ws.lastSeen.After(cutoff) {
			live = 1
		}
		m.workerLive.With(name).Set(live)
		m.workerLatency.With(name).Set(ws.latEWMA)
		m.workerFailure.With(name).Set(ws.failEWMA)
	}
	m.workersLive.Set(float64(c.liveWorkersLocked()))

	m.quarantinedVec.Reset()
	for name := range c.quarantined {
		m.quarantinedVec.With(name).Set(1)
	}

	if c.draining {
		m.draining.Set(1)
	} else {
		m.draining.Set(0)
	}

	if stats, ok := c.cacheStatsLocked(); ok {
		m.cacheHits.Set(float64(stats.Hits))
		m.cacheMisses.Set(float64(stats.Misses))
		m.cacheEntries.Set(float64(stats.Entries))
		if total := stats.Hits + stats.Misses; total > 0 {
			m.cacheHitRatio.Set(float64(stats.Hits) / float64(total))
		} else {
			m.cacheHitRatio.Set(math.NaN())
		}
	}

	c.collectFederated(m)
}

// collectFederated re-exposes the latest worker snapshots (shipped on
// trace uploads) as per-worker series plus a fleet-merged latency
// histogram. Departed workers' last snapshots persist — like
// grid_worker_latency_seconds, the series outlives the worker so a
// post-run scrape still sees the whole fleet.
func (c *Coordinator) collectFederated(m *gridMetrics) {
	m.traceJournals.Set(float64(c.traces.journalCount()))

	snaps := c.traces.snapshots()
	m.workerTasks.Reset()
	m.workerPoints.Reset()
	m.workerRetries.Reset()
	m.workerTaskSeconds.Reset()
	m.fleetTaskSeconds.Reset()
	fleet := map[string]gridobs.HistSnapshot{}
	for name, snap := range snaps {
		m.workerTasks.With(name).Set(snap.Tasks)
		m.workerPoints.With(name, "simulated").Set(snap.PointsSimulated)
		m.workerPoints.With(name, "cache_served").Set(snap.PointsCached)
		m.workerRetries.With(name).Set(snap.UploadRetries)
		for measure, hs := range snap.TaskSeconds {
			m.workerTaskSeconds.With(name, measure).Load(hs)
			fleet[measure] = fleet[measure].Merge(hs)
		}
	}
	for measure, hs := range fleet {
		m.fleetTaskSeconds.With(measure).Load(hs)
	}
}

// etaLocked estimates seconds to completion from the job's observed
// rate: tasks completed since work actually started (checkpoint
// restores don't count — they were free). NaN before any progress, 0
// once complete.
func (c *Coordinator) etaLocked(j *gridJob, now time.Time) float64 {
	if j.done == len(j.order) {
		return 0
	}
	progressed := j.done - j.restored
	if progressed <= 0 || j.startedAt.IsZero() {
		return math.NaN()
	}
	elapsed := now.Sub(j.startedAt).Seconds()
	if elapsed <= 0 {
		return math.NaN()
	}
	rate := float64(progressed) / elapsed
	return float64(len(j.order)-j.done) / rate
}

// onRequestDone is the access-log + HTTP-metrics sink wired into
// gridobs.Instrument: one structured line per request (request ID
// first so operators can grep a request's whole trail) and the
// by-status-code counter.
func (c *Coordinator) onRequestDone(ai gridobs.AccessInfo) {
	c.metrics.httpRequests.With(strconv.Itoa(ai.Status)).Inc()
	c.metrics.httpDuration.Observe(ai.Elapsed.Seconds())
	// Progress streams and dashboards poll; logging every 200 GET
	// would drown the event log. Errors always log.
	if ai.Status < 400 && (ai.Method == "GET" || ai.Path == "/metrics") {
		return
	}
	c.logf("grid: rid=%s %s %s -> %d (%dB in %s) from %s",
		ai.RequestID, ai.Method, ai.Path, ai.Status, ai.Bytes, ai.Elapsed.Round(time.Millisecond), ai.Remote)
}
