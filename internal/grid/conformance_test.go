package grid

// HTTP API conformance suite: every /v1 endpoint (plus /metrics, the
// dashboard and drain) hit with wrong methods, malformed JSON,
// oversized bodies, missing and bad auth tokens, and rate-limit
// exhaustion — pinning status codes, content types, and the structured
// JSON error contract. The suite runs against one live coordinator and
// then proves the abuse never corrupted the lease state machine by
// completing the job and comparing scores with the single-process
// reference.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/dsa"
)

const conformanceToken = "conformance-secret"

// doRaw issues one request with no retries, so status codes are
// observed exactly as served.
func doRaw(t *testing.T, method, url, auth, body string) *http.Response {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if body != "" {
		req.Header.Set("Content-Type", "application/json")
	}
	if auth != "" {
		req.Header.Set("Authorization", "Bearer "+auth)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestHTTPConformance(t *testing.T) {
	spec := gossipSpec(t)
	want := wantScores(t, spec)

	coord := NewCoordinator(CoordinatorOptions{
		Dir:       t.TempDir(),
		LeaseTTL:  500 * time.Millisecond,
		AuthToken: conformanceToken,
	})
	defer coord.Close()
	id, err := coord.AddJob(spec)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	const (
		noAuth  = ""
		badAuth = "wrong-token"
	)
	good := conformanceToken

	cases := []struct {
		name       string
		method     string
		path       string
		auth       string
		body       string
		wantStatus int
		wantCT     string // substring of Content-Type; "" = application/json
		wantErrMsg bool   // body must decode as {"error": non-empty}
	}{
		{name: "list jobs", method: "GET", path: "/v1/jobs", wantStatus: 200},
		{name: "list jobs wrong method", method: "DELETE", path: "/v1/jobs", wantStatus: 405, wantErrMsg: true},
		{name: "unknown path", method: "GET", path: "/v1/nonsense", wantStatus: 404, wantErrMsg: true},
		{name: "root path", method: "GET", path: "/", wantStatus: 404, wantErrMsg: true},
		{name: "get job", method: "GET", path: "/v1/jobs/" + id, wantStatus: 200},
		{name: "get unknown job", method: "GET", path: "/v1/jobs/no-such-job", wantStatus: 404, wantErrMsg: true},
		{name: "create without auth", method: "POST", path: "/v1/jobs", auth: noAuth, body: `{}`, wantStatus: 401, wantErrMsg: true},
		{name: "create with bad auth", method: "POST", path: "/v1/jobs", auth: badAuth, body: `{}`, wantStatus: 401, wantErrMsg: true},
		{name: "create malformed json", method: "POST", path: "/v1/jobs", auth: good, body: `{"spec":`, wantStatus: 400, wantErrMsg: true},
		{name: "lease without auth", method: "POST", path: "/v1/jobs/" + id + "/lease", auth: noAuth, body: `{}`, wantStatus: 401, wantErrMsg: true},
		{name: "lease wrong method", method: "GET", path: "/v1/jobs/" + id + "/lease", wantStatus: 405, wantErrMsg: true},
		{name: "lease malformed json", method: "POST", path: "/v1/jobs/" + id + "/lease", auth: good, body: `not json`, wantStatus: 400, wantErrMsg: true},
		{name: "lease unknown job", method: "POST", path: "/v1/jobs/no-such-job/lease", auth: good, body: `{"worker":"c"}`, wantStatus: 404, wantErrMsg: true},
		{name: "lease ok", method: "POST", path: "/v1/jobs/" + id + "/lease", auth: good, body: `{"worker":"conf","max_tasks":1}`, wantStatus: 200},
		{name: "global lease without auth", method: "POST", path: "/v1/lease", auth: noAuth, body: `{}`, wantStatus: 401, wantErrMsg: true},
		{name: "global lease ok", method: "POST", path: "/v1/lease", auth: good, body: `{"worker":"conf","max_tasks":1}`, wantStatus: 200},
		{name: "heartbeat without auth", method: "POST", path: "/v1/jobs/" + id + "/heartbeat", auth: noAuth, body: `{}`, wantStatus: 401, wantErrMsg: true},
		{name: "heartbeat malformed json", method: "POST", path: "/v1/jobs/" + id + "/heartbeat", auth: good, body: `[`, wantStatus: 400, wantErrMsg: true},
		{name: "upload without auth", method: "POST", path: "/v1/jobs/" + id + "/results", auth: noAuth, body: `{}`, wantStatus: 401, wantErrMsg: true},
		{name: "upload unknown task", method: "POST", path: "/v1/jobs/" + id + "/results", auth: good, body: `{"worker":"c","task":"no-such-task","values":[]}`, wantStatus: 404, wantErrMsg: true},
		{name: "upload unknown job", method: "POST", path: "/v1/jobs/no-such-job/results", auth: good, body: `{"worker":"c","task":"x","values":[]}`, wantStatus: 404, wantErrMsg: true},
		{name: "results before complete", method: "GET", path: "/v1/jobs/" + id + "/results", wantStatus: 409, wantErrMsg: true},
		{name: "results unknown job", method: "GET", path: "/v1/jobs/no-such-job/results", wantStatus: 404, wantErrMsg: true},
		{name: "progress", method: "GET", path: "/v1/jobs/" + id + "/progress", wantStatus: 200},
		{name: "progress unknown job", method: "GET", path: "/v1/jobs/no-such-job/progress", wantStatus: 404, wantErrMsg: true},
		{name: "cache stats", method: "GET", path: "/v1/cache", wantStatus: 200},
		{name: "drain without auth", method: "POST", path: "/v1/drain", auth: noAuth, wantStatus: 401, wantErrMsg: true},
		{name: "drain with bad auth", method: "POST", path: "/v1/drain", auth: badAuth, wantStatus: 401, wantErrMsg: true},
		{name: "drain wrong method", method: "GET", path: "/v1/drain", wantStatus: 405, wantErrMsg: true},
		{name: "trace upload without auth", method: "POST", path: "/v1/trace", auth: noAuth, body: `{"writer":"w"}`, wantStatus: 401, wantErrMsg: true},
		{name: "trace upload bad auth", method: "POST", path: "/v1/trace", auth: badAuth, body: `{"writer":"w"}`, wantStatus: 401, wantErrMsg: true},
		{name: "trace upload malformed json", method: "POST", path: "/v1/trace", auth: good, body: `{`, wantStatus: 400, wantErrMsg: true},
		{name: "trace upload no writer", method: "POST", path: "/v1/trace", auth: good, body: `{"offset":0}`, wantStatus: 400, wantErrMsg: true},
		{name: "trace upload negative offset", method: "POST", path: "/v1/trace", auth: good, body: `{"writer":"w","offset":-1}`, wantStatus: 400, wantErrMsg: true},
		{name: "trace upload unknown job", method: "POST", path: "/v1/trace", auth: good, body: `{"writer":"w","job":"no-such-job"}`, wantStatus: 404, wantErrMsg: true},
		{name: "trace upload probe", method: "POST", path: "/v1/trace", auth: good, body: `{"writer":"w","offset":0}`, wantStatus: 200},
		{name: "trace wrong method", method: "DELETE", path: "/v1/trace", wantStatus: 405, wantErrMsg: true},
		{name: "trace timeline", method: "GET", path: "/v1/trace", wantStatus: 200, wantCT: "application/x-ndjson"},
		{name: "trace digest", method: "GET", path: "/v1/trace?format=digest", wantStatus: 200},
		{name: "trace unknown job", method: "GET", path: "/v1/trace?job=no-such-job", wantStatus: 404, wantErrMsg: true},
		{name: "metrics", method: "GET", path: "/metrics", wantStatus: 200, wantCT: "text/plain"},
		{name: "metrics wrong method", method: "POST", path: "/metrics", wantStatus: 405, wantErrMsg: true},
		{name: "dashboard", method: "GET", path: "/v1/dashboard", wantStatus: 200, wantCT: "text/html"},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp := doRaw(t, tc.method, srv.URL+tc.path, tc.auth, tc.body)
			defer resp.Body.Close()
			raw, _ := io.ReadAll(resp.Body)
			if resp.StatusCode != tc.wantStatus {
				t.Fatalf("%s %s: status %d, want %d (body %q)", tc.method, tc.path, resp.StatusCode, tc.wantStatus, raw)
			}
			if resp.Header.Get("X-Request-ID") == "" {
				t.Error("response missing X-Request-ID")
			}
			wantCT := tc.wantCT
			if wantCT == "" {
				wantCT = "application/json"
			}
			if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, wantCT) {
				t.Errorf("Content-Type %q, want %q (body %q)", ct, wantCT, raw)
			}
			if tc.wantErrMsg {
				var eb errorBody
				if err := json.Unmarshal(raw, &eb); err != nil || eb.Error == "" {
					t.Errorf("error body not structured JSON: %q (%v)", raw, err)
				}
			}
			if resp.StatusCode == 401 && resp.Header.Get("WWW-Authenticate") == "" {
				t.Error("401 missing WWW-Authenticate")
			}
		})
	}

	// The abuse above — including two real leases that will now expire
	// unheartbeated — must leave the lease state machine intact: a
	// normal worker fleet completes the job with byte-identical scores.
	ctx := context.Background()
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for w := range errs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[w] = Work(ctx, srv.URL, id, WorkerOptions{
				Workers: 2, TasksPerLease: 2, Poll: 20 * time.Millisecond, AuthToken: conformanceToken,
			})
		}()
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}
	got, err := FetchScores(ctx, NewClient(conformanceToken), srv.URL, id)
	if err != nil {
		t.Fatal(err)
	}
	if mustJSON(t, scoresToWire(got)) != mustJSON(t, scoresToWire(want)) {
		t.Fatal("scores after conformance abuse differ from single-process reference")
	}
}

func TestOversizedBodyRejected(t *testing.T) {
	coord := NewCoordinator(CoordinatorOptions{MaxBody: 128})
	defer coord.Close()
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	for _, path := range []string{"/v1/jobs", "/v1/trace"} {
		resp := doRaw(t, "POST", srv.URL+path, "", `{"spec":"`+strings.Repeat("x", 4096)+`"}`)
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Fatalf("POST %s: status %d, want 413 (body %q)", path, resp.StatusCode, raw)
		}
		var eb errorBody
		if err := json.Unmarshal(raw, &eb); err != nil || eb.Error == "" {
			t.Fatalf("POST %s: 413 body not structured JSON: %q", path, raw)
		}
	}
}

func TestRateLimitExhaustion(t *testing.T) {
	coord := NewCoordinator(CoordinatorOptions{RateLimit: 5, RateBurst: 3})
	defer coord.Close()
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	var ok, limited int
	for i := 0; i < 12; i++ {
		resp := doRaw(t, "GET", srv.URL+"/v1/jobs", "", "")
		switch resp.StatusCode {
		case 200:
			ok++
		case 429:
			limited++
			if resp.Header.Get("Retry-After") == "" {
				t.Error("429 missing Retry-After")
			}
			var eb errorBody
			raw, _ := io.ReadAll(resp.Body)
			if err := json.Unmarshal(raw, &eb); err != nil || eb.Error == "" {
				t.Errorf("429 body not structured JSON: %q", raw)
			}
		default:
			t.Fatalf("unexpected status %d", resp.StatusCode)
		}
		resp.Body.Close()
	}
	if ok == 0 || limited == 0 {
		t.Fatalf("want both admitted and limited requests, got ok=%d limited=%d", ok, limited)
	}

	// Metrics scrapes must survive the very overload they observe.
	resp := doRaw(t, "GET", srv.URL+"/metrics", "", "")
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/metrics rate-limited: status %d", resp.StatusCode)
	}
	raw, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(raw), "grid_ratelimited_total") {
		t.Fatal("metrics missing grid_ratelimited_total")
	}

	// So must trace shipping: a worker draining under overload would
	// otherwise lose its final journal flush to a 429.
	traceResp := doRaw(t, "POST", srv.URL+"/v1/trace", "", `{"writer":"w","offset":0}`)
	defer traceResp.Body.Close()
	if traceResp.StatusCode != 200 {
		t.Fatalf("POST /v1/trace rate-limited after exhaustion: status %d", traceResp.StatusCode)
	}
}

// TestFairScheduling pins the deficit scheduler: with weights 1 and 3
// and single-task grants, the granted counts converge to the 1:3
// priority ratio while both jobs have pending work.
func TestFairScheduling(t *testing.T) {
	specA := gossipSpec(t)
	specB := gossipSpec(t)
	specB.Cfg.Seed = 99 // distinct spec => distinct job

	coord := NewCoordinator(CoordinatorOptions{})
	defer coord.Close()
	idA, err := coord.AddJobPriority(specA, 1)
	if err != nil {
		t.Fatal(err)
	}
	idB, err := coord.AddJobPriority(specB, 3)
	if err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	counts := map[string]int{}
	for i := 0; i < 12; i++ {
		resp, err := coord.LeaseAny(ctx, "w", 1)
		if err != nil {
			t.Fatal(err)
		}
		if len(resp.Tasks) != 1 {
			t.Fatalf("grant %d: %d tasks, want 1", i, len(resp.Tasks))
		}
		counts[resp.Job]++
	}
	if a, b := counts[idA], counts[idB]; b < 8 || b > 10 || a+b != 12 {
		t.Fatalf("granted A=%d B=%d over 12 single grants, want ~1:3 split", a, b)
	}

	// Re-registering with a new priority updates the weight.
	if _, err := coord.AddJobPriority(specA, 5); err != nil {
		t.Fatal(err)
	}
	snap, err := coord.Progress(idA)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Priority != 5 {
		t.Fatalf("priority after re-register = %d, want 5", snap.Priority)
	}
}

// TestWorkerScoringCapsGrants pins the routing half of the scheduler: a
// worker whose leases keep expiring gets its batches cut down, while a
// clean worker keeps full batches.
func TestWorkerScoringCapsGrants(t *testing.T) {
	spec := gossipSpec(t)
	coord := NewCoordinator(CoordinatorOptions{LeaseTTL: time.Second})
	defer coord.Close()
	id, err := coord.AddJob(spec)
	if err != nil {
		t.Fatal(err)
	}
	now := time.Now()
	coord.now = func() time.Time { return now }

	ctx := context.Background()
	for i := 0; i < 3; i++ {
		lease, err := coord.Lease(ctx, id, "flaky", 1)
		if err != nil {
			t.Fatal(err)
		}
		if len(lease.Tasks) == 0 {
			t.Fatal("expected a grant")
		}
		now = now.Add(2 * time.Second) // past the TTL
		if _, err := coord.Progress(id); err != nil {
			t.Fatal(err) // Progress runs lazy expiry
		}
	}
	// failEWMA after three straight expiries: 1 - 0.7^3 ≈ 0.657, so a
	// 4-task request is capped at ceil(4 * 0.343) = 2.
	lease, err := coord.Lease(ctx, id, "flaky", 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(lease.Tasks) != 2 {
		t.Fatalf("flaky worker granted %d tasks, want 2", len(lease.Tasks))
	}
	fresh, err := coord.Lease(ctx, id, "steady", 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(fresh.Tasks) != 4 {
		t.Fatalf("fresh worker granted %d tasks, want the full 4", len(fresh.Tasks))
	}
}

func TestDrainSettlesAndSignals(t *testing.T) {
	spec := gossipSpec(t)
	coord := NewCoordinator(CoordinatorOptions{LeaseTTL: time.Minute})
	defer coord.Close()
	id, err := coord.AddJob(spec)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	lease, err := coord.Lease(ctx, id, "w", 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(lease.Tasks) == 0 {
		t.Fatal("expected granted tasks")
	}

	coord.Drain(ctx)
	if !coord.Draining() {
		t.Fatal("Draining() false after Drain")
	}
	// With leases in flight the drain must not be complete yet.
	select {
	case <-coord.Drained():
		t.Fatal("drain completed with leases in flight")
	default:
	}
	// And no new work is granted.
	again, err := coord.Lease(ctx, id, "w2", 2)
	if err != nil {
		t.Fatal(err)
	}
	if !again.Draining || len(again.Tasks) != 0 {
		t.Fatalf("lease during drain = %+v, want Draining and no tasks", again)
	}
	anyLease, err := coord.LeaseAny(ctx, "w2", 2)
	if err != nil {
		t.Fatal(err)
	}
	if !anyLease.Draining || len(anyLease.Tasks) != 0 {
		t.Fatalf("global lease during drain = %+v, want Draining and no tasks", anyLease)
	}

	// Uploading the in-flight results settles the drain.
	for _, lt := range lease.Tasks {
		if _, err := coord.Ingest(ctx, id, ResultUpload{Worker: "w", Task: lt.Task, Values: make([]float64, lt.Hi-lt.Lo)}); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case <-coord.Drained():
	case <-time.After(5 * time.Second):
		t.Fatal("drain did not settle after in-flight uploads landed")
	}
}

// TestGridMultiJobFaultInjection is the headline fault drill: two
// concurrent jobs at different priorities, three multi-job workers on
// an authenticated grid, one worker SIGKILLed mid-lease. Both jobs
// must complete with results byte-identical to single-process job.Run
// — as JSON scores and as rendered CSV — and the scheduler's per-job
// accounting must be coherent.
func TestGridMultiJobFaultInjection(t *testing.T) {
	specA := gossipSpec(t)
	specB := gossipSpec(t)
	specB.Cfg.Seed = 99
	wantA := wantScores(t, specA)
	wantB := wantScores(t, specB)

	const token = "fleet-secret"
	coord := NewCoordinator(CoordinatorOptions{Dir: t.TempDir(), LeaseTTL: 2 * time.Second, AuthToken: token})
	defer coord.Close()
	idA, err := coord.AddJobPriority(specA, 1)
	if err != nil {
		t.Fatal(err)
	}
	idB, err := coord.AddJobPriority(specB, 2)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	ctx := context.Background()
	var wg sync.WaitGroup
	errs := make([]error, 3)
	for w := range errs {
		opts := WorkerOptions{
			Name: fmt.Sprintf("fleet-%d", w), Workers: 2, TasksPerLease: 2,
			Poll: 20 * time.Millisecond, AuthToken: token,
		}
		if w == 2 {
			// The doomed worker: leases 3 tasks, uploads one, then goes
			// silent holding the other two — a SIGKILL mid-lease.
			opts.TasksPerLease = 3
			opts.Client = &http.Client{
				Timeout:   DefaultHTTPTimeout,
				Transport: AuthTransport(token, &killingTransport{killAfter: 1}),
			}
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[w] = Work(ctx, srv.URL, "", opts)
		}()
	}
	wg.Wait()
	if errs[2] == nil {
		t.Fatal("doomed worker should have failed")
	}
	for w := 0; w < 2; w++ {
		if errs[w] != nil {
			t.Fatalf("healthy worker %d: %v", w, errs[w])
		}
	}

	client := NewClient(token)
	for _, tc := range []struct {
		id   string
		spec string
		want *dsa.Scores
	}{{idA, "A", wantA}, {idB, "B", wantB}} {
		got, err := FetchScores(ctx, client, srv.URL, tc.id)
		if err != nil {
			t.Fatalf("job %s: %v", tc.spec, err)
		}
		if mustJSON(t, scoresToWire(got)) != mustJSON(t, scoresToWire(tc.want)) {
			t.Fatalf("job %s: grid scores differ from single-process reference", tc.spec)
		}
		// CSV render must be byte-identical too.
		resp := doRaw(t, "GET", srv.URL+"/v1/jobs/"+tc.id+"/results?format=csv", "", "")
		gotCSV, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		var wantCSV bytes.Buffer
		if err := dsa.WriteCSV(&wantCSV, specA.Domain, tc.want); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(gotCSV, wantCSV.Bytes()) {
			t.Fatalf("job %s: grid CSV differs from single-process render", tc.spec)
		}
	}

	// Scheduler accounting: every task of both jobs was granted at
	// least once (re-leases after the kill can only add), the kill
	// actually re-queued something, and the priorities stuck.
	snapA, err := coord.Progress(idA)
	if err != nil {
		t.Fatal(err)
	}
	snapB, err := coord.Progress(idB)
	if err != nil {
		t.Fatal(err)
	}
	if snapA.LeasesGranted < snapA.Total || snapB.LeasesGranted < snapB.Total {
		t.Fatalf("lease accounting short: A %d/%d, B %d/%d granted/total",
			snapA.LeasesGranted, snapA.Total, snapB.LeasesGranted, snapB.Total)
	}
	if snapA.Requeues+snapB.Requeues == 0 {
		t.Fatal("killed worker's leases never re-queued — the fault was not injected")
	}
	if snapA.Priority != 1 || snapB.Priority != 2 {
		t.Fatalf("priorities = %d, %d, want 1, 2", snapA.Priority, snapB.Priority)
	}

	// The metrics endpoint must reflect the run: grants, ingest
	// throughput, expiries, per-job done counts, lease latency.
	resp := doRaw(t, "GET", srv.URL+"/metrics", "", "")
	defer resp.Body.Close()
	metrics, _ := io.ReadAll(resp.Body)
	for _, want := range []string{
		"grid_leases_granted_total",
		"grid_tasks_ingested_total",
		"grid_values_ingested_total",
		"grid_lease_expiries_total",
		"grid_lease_latency_seconds_count",
		fmt.Sprintf(`grid_job_tasks{job="%s",state="done"} %d`, idA, snapA.Total),
		fmt.Sprintf(`grid_job_tasks{job="%s",state="pending"} 0`, idB),
		`grid_jobs_complete 2`,
	} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestRequestIDThreading pins the observability contract: a
// caller-provided X-Request-ID is echoed on the response and lands in
// the coordinator's event log for the request's work.
func TestRequestIDThreading(t *testing.T) {
	var mu sync.Mutex
	var logs []string
	coord := NewCoordinator(CoordinatorOptions{Logf: func(format string, args ...any) {
		mu.Lock()
		logs = append(logs, fmt.Sprintf(format, args...))
		mu.Unlock()
	}})
	defer coord.Close()
	id, err := coord.AddJob(gossipSpec(t))
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	req, _ := http.NewRequest("POST", srv.URL+"/v1/jobs/"+id+"/lease", strings.NewReader(`{"worker":"ridw","max_tasks":1}`))
	req.Header.Set("X-Request-ID", "trace-me-123")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); got != "trace-me-123" {
		t.Fatalf("response X-Request-ID = %q", got)
	}
	mu.Lock()
	defer mu.Unlock()
	for _, line := range logs {
		if strings.Contains(line, "rid=trace-me-123") && strings.Contains(line, "leased") {
			return
		}
	}
	t.Fatalf("no lease log line carries rid=trace-me-123; logs:\n%s", strings.Join(logs, "\n"))
}
