package grid

// Client retry behavior: full-jitter backoff on transient failures
// (5xx and 429), verified against a flaky httptest server that counts
// and timestamps arrivals.

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// TestRetryDelayFullJitter pins the shape of the backoff: each retry's
// sleep is uniform over [0, ceiling] with the ceiling doubling per
// attempt — and it actually varies (the whole point of jitter).
func TestRetryDelayFullJitter(t *testing.T) {
	for attempt := 1; attempt <= 3; attempt++ {
		ceiling := clientRetryBase << (attempt - 1)
		distinct := map[time.Duration]bool{}
		for i := 0; i < 64; i++ {
			d := retryDelay(attempt)
			if d < 0 || d > ceiling {
				t.Fatalf("attempt %d: delay %v outside [0, %v]", attempt, d, ceiling)
			}
			distinct[d] = true
		}
		if len(distinct) < 8 {
			t.Fatalf("attempt %d: only %d distinct delays over 64 samples — not jittered", attempt, len(distinct))
		}
	}
}

// flakyServer answers failStatus for the first failCount requests and
// then serves a valid empty jobs listing, recording arrival times.
func flakyServer(failCount int, failStatus int) (*httptest.Server, *struct {
	sync.Mutex
	arrivals []time.Time
}) {
	state := &struct {
		sync.Mutex
		arrivals []time.Time
	}{}
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		state.Lock()
		state.arrivals = append(state.arrivals, time.Now())
		n := len(state.arrivals)
		state.Unlock()
		if n <= failCount {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(failStatus)
			w.Write([]byte(`{"error":"transient"}`))
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"jobs":[]}`))
	}))
	return srv, state
}

func TestClientRetries5xxWithSpacing(t *testing.T) {
	// Pin the jitter so arrival spacing is assertable; the ceiling
	// contract itself is covered by TestRetryDelayFullJitter.
	const delay = 30 * time.Millisecond
	orig := retryDelay
	retryDelay = func(attempt int) time.Duration { return delay }
	defer func() { retryDelay = orig }()

	srv, state := flakyServer(2, http.StatusInternalServerError)
	defer srv.Close()

	jobs, err := ListJobs(context.Background(), nil, srv.URL)
	if err != nil {
		t.Fatalf("client gave up on a recoverable server: %v", err)
	}
	if jobs == nil || len(jobs) != 0 {
		t.Fatalf("jobs = %v, want empty listing", jobs)
	}
	state.Lock()
	defer state.Unlock()
	if len(state.arrivals) != 3 {
		t.Fatalf("%d arrivals, want 3 (2 failures + success)", len(state.arrivals))
	}
	for i := 1; i < len(state.arrivals); i++ {
		if gap := state.arrivals[i].Sub(state.arrivals[i-1]); gap < delay {
			t.Fatalf("retry %d arrived %v after the previous attempt, want >= %v backoff", i, gap, delay)
		}
	}
}

func TestClientRetries429(t *testing.T) {
	orig := retryDelay
	retryDelay = func(int) time.Duration { return time.Millisecond }
	defer func() { retryDelay = orig }()

	srv, state := flakyServer(1, http.StatusTooManyRequests)
	defer srv.Close()

	if _, err := ListJobs(context.Background(), nil, srv.URL); err != nil {
		t.Fatalf("429 must be retryable: %v", err)
	}
	state.Lock()
	defer state.Unlock()
	if len(state.arrivals) != 2 {
		t.Fatalf("%d arrivals, want 2", len(state.arrivals))
	}
}

// TestClientDoesNotRetry4xx pins the other side: a plain client error
// surfaces immediately instead of hammering the coordinator.
func TestClientDoesNotRetry4xx(t *testing.T) {
	srv, state := flakyServer(100, http.StatusBadRequest)
	defer srv.Close()

	if _, err := ListJobs(context.Background(), nil, srv.URL); err == nil {
		t.Fatal("400 should be a hard error")
	}
	state.Lock()
	defer state.Unlock()
	if len(state.arrivals) != 1 {
		t.Fatalf("%d arrivals, want exactly 1 (no retries on 4xx)", len(state.arrivals))
	}
}

// TestClientHonorsRetryAfter: a server-named pause on 429 is honored
// exactly — the client must not jitter under it into the same closed
// window, even when its own backoff would be tiny.
func TestClientHonorsRetryAfter(t *testing.T) {
	orig := retryDelay
	retryDelay = func(int) time.Duration { return time.Millisecond }
	defer func() { retryDelay = orig }()

	const pause = time.Second
	state := &struct {
		sync.Mutex
		arrivals []time.Time
	}{}
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		state.Lock()
		state.arrivals = append(state.arrivals, time.Now())
		n := len(state.arrivals)
		state.Unlock()
		if n == 1 {
			w.Header().Set("Retry-After", "1")
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusTooManyRequests)
			w.Write([]byte(`{"error":"rate limited"}`))
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"jobs":[]}`))
	}))
	defer srv.Close()

	if _, err := ListJobs(context.Background(), nil, srv.URL); err != nil {
		t.Fatalf("client gave up on a rate-limited server: %v", err)
	}
	state.Lock()
	defer state.Unlock()
	if len(state.arrivals) != 2 {
		t.Fatalf("%d arrivals, want 2", len(state.arrivals))
	}
	if gap := state.arrivals[1].Sub(state.arrivals[0]); gap < pause {
		t.Fatalf("retry arrived %v after the 429, want >= the server's Retry-After %v", gap, pause)
	}
}

// TestClientRetriesChecksumReject: a 400 carrying the corrupt-body
// marker means the request was damaged in transit — resending re-rolls
// the dice, so it must be retried (unlike a plain 400, pinned above).
func TestClientRetriesChecksumReject(t *testing.T) {
	orig := retryDelay
	retryDelay = func(int) time.Duration { return time.Millisecond }
	defer func() { retryDelay = orig }()

	state := &struct {
		sync.Mutex
		arrivals []time.Time
	}{}
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		state.Lock()
		state.arrivals = append(state.arrivals, time.Now())
		n := len(state.arrivals)
		state.Unlock()
		if n == 1 {
			w.Header().Set(HeaderCorruptBody, "1")
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusBadRequest)
			w.Write([]byte(`{"error":"grid: request body checksum mismatch (corrupted in transit)"}`))
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"jobs":[]}`))
	}))
	defer srv.Close()

	if _, err := ListJobs(context.Background(), nil, srv.URL); err != nil {
		t.Fatalf("checksum-rejected request must be retried: %v", err)
	}
	state.Lock()
	defer state.Unlock()
	if len(state.arrivals) != 2 {
		t.Fatalf("%d arrivals, want 2 (reject + retry)", len(state.arrivals))
	}
}
