package grid

// The worker-side observability contract: one request ID per client
// call, stable across retries and visible on both sides of the wire
// (worker trace journal and coordinator access log), plus the worker
// metrics and span taxonomy a traced grid sweep produces.

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/gridobs"
	"repro/internal/obs"
)

// TestRequestIDStableAcrossRetries pins the client half of satellite
// one: a retried call re-sends the same X-Request-ID with an
// X-Retry-Attempt mark, so coordinator logs show one rid per logical
// call, not one per attempt.
func TestRequestIDStableAcrossRetries(t *testing.T) {
	orig := retryDelay
	retryDelay = func(int) time.Duration { return 0 }
	defer func() { retryDelay = orig }()

	var mu sync.Mutex
	var rids, retries []string
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		rids = append(rids, r.Header.Get(gridobs.RequestIDHeader))
		retries = append(retries, r.Header.Get(gridobs.RetryAttemptHeader))
		mu.Unlock()
		if calls.Add(1) <= 2 {
			http.Error(w, `{"error":"temporarily sad"}`, http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"jobs":[]}`))
	}))
	defer srv.Close()

	var out jobsResponse
	var info callInfo
	err := doJSONInfo(context.Background(), defaultClient(), http.MethodGet,
		apiURL(srv.URL, "jobs"), nil, &out, &info)
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(rids) != 3 {
		t.Fatalf("attempts = %d, want 3", len(rids))
	}
	if rids[0] == "" || rids[0] != rids[1] || rids[1] != rids[2] {
		t.Errorf("request IDs changed across retries: %v", rids)
	}
	if info.requestID != rids[0] {
		t.Errorf("callInfo rid = %q, wire sent %q", info.requestID, rids[0])
	}
	if info.attempts != 3 {
		t.Errorf("callInfo attempts = %d, want 3", info.attempts)
	}
	wantRetries := []string{"", "1", "2"}
	for i, want := range wantRetries {
		if retries[i] != want {
			t.Errorf("attempt %d %s = %q, want %q", i, gridobs.RetryAttemptHeader, retries[i], want)
		}
	}
}

// TestWorkerTraceEndToEnd runs a real coordinator + traced worker and
// pins the whole satellite: the worker's lease/upload spans carry
// request IDs that appear (as rid=...) in the coordinator's own log
// lines, the lease-batch → task span tree is journalled, and the
// worker metrics counters agree with the work done.
func TestWorkerTraceEndToEnd(t *testing.T) {
	spec := gossipSpec(t)

	var logMu sync.Mutex
	var coordLog strings.Builder
	coord := NewCoordinator(CoordinatorOptions{
		Dir:      t.TempDir(),
		LeaseTTL: time.Minute,
		Logf: func(format string, args ...any) {
			logMu.Lock()
			fmt.Fprintf(&coordLog, format+"\n", args...)
			logMu.Unlock()
		},
	})
	defer coord.Close()
	if _, err := coord.AddJob(spec); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	traceDir := t.TempDir()
	rec, err := obs.OpenDir(traceDir, "tracer1")
	if err != nil {
		t.Fatal(err)
	}
	metrics := gridobs.NewWorkerMetrics(nil)
	err = Work(context.Background(), srv.URL, "", WorkerOptions{
		Name: "tracer1", Workers: 2, TasksPerLease: 4,
		Trace: rec, Metrics: metrics,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}

	recs, err := obs.LoadDir(traceDir)
	if err != nil {
		t.Fatal(err)
	}
	wantTasks := len(spec.Tasks())
	counts := map[string]int{}
	var uploadRids []string
	batchIDs := map[uint64]bool{}
	for _, r := range recs {
		counts[r.Name]++
		switch r.Name {
		case "lease-batch":
			batchIDs[r.ID] = true
		case "upload":
			if rid := r.AttrStr("rid"); rid != "" {
				uploadRids = append(uploadRids, rid)
			}
			if r.AttrInt("attempts") < 1 {
				t.Errorf("upload span without attempts: %+v", r)
			}
		case "lease":
			if r.AttrStr("rid") == "" {
				t.Errorf("lease span without rid: %+v", r)
			}
		}
	}
	if counts["task"] != wantTasks || counts["upload"] != wantTasks {
		t.Errorf("task/upload spans = %d/%d, want %d", counts["task"], counts["upload"], wantTasks)
	}
	if counts["lease"] == 0 || counts["lease-batch"] == 0 {
		t.Errorf("span counts = %v, want lease and lease-batch spans", counts)
	}
	// Task and upload spans hang under their batch.
	for _, r := range recs {
		if (r.Name == "task" || r.Name == "upload") && !batchIDs[r.Parent] {
			t.Errorf("%s span parented under %d, not a lease-batch", r.Name, r.Parent)
		}
	}

	// Every upload rid the worker journalled shows up in the
	// coordinator's access log — the cross-side correlation.
	logMu.Lock()
	logged := coordLog.String()
	logMu.Unlock()
	if len(uploadRids) != wantTasks {
		t.Fatalf("upload rids journalled = %d, want %d", len(uploadRids), wantTasks)
	}
	for _, rid := range uploadRids {
		if !strings.Contains(logged, "rid="+rid) {
			t.Errorf("upload rid %s missing from coordinator log", rid)
		}
	}

	// Metrics agree with the work done.
	var metricsOut strings.Builder
	metrics.Registry().WritePrometheus(&metricsOut)
	text := metricsOut.String()
	for _, want := range []string{
		fmt.Sprintf("worker_tasks_total %d", wantTasks),
		fmt.Sprintf("worker_uploads_total %d", wantTasks),
		"worker_lease_requests_total",
		`worker_task_seconds_count{measure=`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q:\n%s", want, text)
		}
	}
	st := rec.Stats()
	if st.TasksDone != uint64(wantTasks) {
		t.Errorf("recorder tasks = %d, want %d", st.TasksDone, wantTasks)
	}
	if st.UploadRetries != 0 {
		t.Errorf("upload retries = %d against a healthy coordinator, want 0", st.UploadRetries)
	}
}

// TestWorkerMetricsNilSafe pins the no-metrics path: a worker without
// -metrics-addr passes a nil *WorkerMetrics everywhere.
func TestWorkerMetricsNilSafe(t *testing.T) {
	var m *gridobs.WorkerMetrics
	m.ObserveLease(3)
	m.ObserveTask("performance", time.Millisecond, 4, 2)
	m.ObserveUpload(1)
	m.ObserveLeasesLost(2)
	if m.Registry() != nil {
		t.Error("nil metrics registry != nil")
	}
}
