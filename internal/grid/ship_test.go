package grid

// The fleet trace-collection contract: chunked POST /v1/trace uploads
// are idempotent by byte offset, the coordinator's collected journals
// are verbatim copies of the workers' local ones (so the canonical
// merge is byte-identical on either side), and worker metric
// snapshots federate into the coordinator's /metrics.

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/gridobs"
	"repro/internal/obs"
)

// TestTraceCollectorIdempotent pins the offset protocol: duplicate,
// overlapping and gapped chunks all converge on one verbatim copy.
func TestTraceCollectorIdempotent(t *testing.T) {
	tc := newTraceCollector(t.TempDir(), nil)
	defer tc.Close()
	chunk1 := []byte("alpha\nbravo\n")
	chunk2 := []byte("charlie\n")

	ack, spans, dup, err := tc.append("", "w1", 0, chunk1)
	if err != nil {
		t.Fatal(err)
	}
	if ack.Have != 12 || ack.Accepted != 12 || ack.Duplicate || dup || spans != 2 {
		t.Fatalf("first append ack = %+v spans %d dup %v", ack, spans, dup)
	}

	// Exact replay: nothing appended, flagged as a duplicate.
	ack, _, dup, err = tc.append("", "w1", 0, chunk1)
	if err != nil {
		t.Fatal(err)
	}
	if ack.Have != 12 || ack.Accepted != 0 || !ack.Duplicate || !dup {
		t.Fatalf("replay ack = %+v dup %v, want duplicate at 12", ack, dup)
	}

	// Overlap: a chunk straddling the collected end appends only the
	// unseen suffix.
	ack, spans, dup, err = tc.append("", "w1", 6, append([]byte("bravo\n"), chunk2...))
	if err != nil {
		t.Fatal(err)
	}
	if ack.Have != 20 || ack.Accepted != 8 || !ack.Duplicate || !dup || spans != 1 {
		t.Fatalf("overlap ack = %+v spans %d dup %v", ack, spans, dup)
	}

	// Gap: an offset past the collected end accepts nothing — the
	// client must rewind to Have.
	ack, _, _, err = tc.append("", "w1", 100, []byte("late\n"))
	if err != nil {
		t.Fatal(err)
	}
	if ack.Have != 20 || ack.Accepted != 0 {
		t.Fatalf("gap ack = %+v, want nothing accepted at 20", ack)
	}

	paths := tc.paths("")
	if len(paths) != 1 {
		t.Fatalf("journals = %v, want 1", paths)
	}
	got, err := os.ReadFile(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	if want := append(append([]byte(nil), chunk1...), chunk2...); !bytes.Equal(got, want) {
		t.Fatalf("collected journal = %q, want %q", got, want)
	}
}

// TestTraceCollectorRestartTruncatesTornTail pins the restart path: a
// collected file with a torn final line is trimmed back to its last
// newline so the resumed offset sits on a record boundary.
func TestTraceCollectorRestartTruncatesTornTail(t *testing.T) {
	dir := t.TempDir()
	tc := newTraceCollector(dir, nil)
	if _, _, _, err := tc.append("", "w1", 0, []byte("one\ntwo\n")); err != nil {
		t.Fatal(err)
	}
	path := tc.paths("")[0]
	if err := os.WriteFile(path, []byte("one\ntwo\n{torn"), 0o644); err != nil {
		t.Fatal(err)
	}

	// A fresh collector over the same dir — a coordinator restart.
	tc2 := newTraceCollector(dir, nil)
	ack, _, _, err := tc2.append("", "w1", 8, []byte("three\n"))
	if err != nil {
		t.Fatal(err)
	}
	if ack.Have != 14 || ack.Accepted != 6 {
		t.Fatalf("post-restart ack = %+v, want resume at 8 + 6 accepted", ack)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if want := []byte("one\ntwo\nthree\n"); !bytes.Equal(got, want) {
		t.Fatalf("collected journal after restart = %q, want %q", got, want)
	}
}

// TestTraceShippingEndToEnd runs the tentpole end to end: two traced
// workers sweep one job while shipping their journals, and afterwards
// the coordinator's collected merge is byte-identical to the local
// reference merge, the digest agrees with the work done, and the
// coordinator's /metrics carries the federated per-worker counters
// and latency histograms.
func TestTraceShippingEndToEnd(t *testing.T) {
	spec := gossipSpec(t)
	coord := NewCoordinator(CoordinatorOptions{Dir: t.TempDir(), LeaseTTL: time.Minute})
	defer coord.Close()
	jobID, err := coord.AddJob(spec)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	traceDir := t.TempDir()
	ctx := context.Background()
	names := []string{"shipper1", "shipper2"}
	var wg sync.WaitGroup
	workErrs := make([]error, len(names))
	shippers := make([]*TraceShipper, len(names))
	for i, name := range names {
		rec, err := obs.OpenDir(traceDir, name)
		if err != nil {
			t.Fatal(err)
		}
		metrics := gridobs.NewWorkerMetrics(nil)
		shipper := NewTraceShipper(srv.URL, rec, obs.JournalPath(traceDir, name),
			TraceShipperOptions{Job: jobID, Metrics: metrics, ChunkBytes: 2048})
		shippers[i] = shipper
		// Mid-run incremental ship (empty journal: a pure stats probe).
		if err := shipper.Ship(ctx); err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			workErrs[i] = Work(ctx, srv.URL, "", WorkerOptions{
				Name: name, Workers: 2, TasksPerLease: 2,
				Trace: rec, Metrics: metrics,
			})
			if err := rec.Close(); err != nil && workErrs[i] == nil {
				workErrs[i] = err
			}
		}(i, name)
	}
	wg.Wait()
	for i, err := range workErrs {
		if err != nil {
			t.Fatalf("worker %s: %v", names[i], err)
		}
	}
	for _, shipper := range shippers {
		// The drain-time final ship, with a small chunk size so multiple
		// round trips exercise offset resumption.
		if err := shipper.Ship(ctx); err != nil {
			t.Fatal(err)
		}
		// A second final ship must be a no-op — everything is collected.
		before := shipper.Offset()
		if err := shipper.Ship(ctx); err != nil {
			t.Fatal(err)
		}
		if shipper.Offset() != before {
			t.Errorf("re-ship moved the offset %d -> %d", before, shipper.Offset())
		}
	}

	// Byte-identity: the coordinator's merged timeline equals the
	// canonical merge of the workers' local journals.
	files, err := obs.JournalFiles(traceDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 2 {
		t.Fatalf("local journals = %d, want 2", len(files))
	}
	var local bytes.Buffer
	if _, err := obs.Merge(&local, files...); err != nil {
		t.Fatal(err)
	}
	collected, err := FetchTrace(ctx, nil, srv.URL, jobID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(collected, local.Bytes()) {
		t.Fatalf("collected merge (%d bytes) != local merge (%d bytes)", len(collected), local.Len())
	}

	// The digest agrees with the sweep.
	digest, err := FetchTraceDigest(ctx, nil, srv.URL, jobID)
	if err != nil {
		t.Fatal(err)
	}
	wantTasks := len(spec.Tasks())
	if digest.Journals != 2 {
		t.Errorf("digest journals = %d, want 2", digest.Journals)
	}
	if digest.Tasks != wantTasks {
		t.Errorf("digest tasks = %d, want %d", digest.Tasks, wantTasks)
	}
	// Both workers race for tasks; at least one (typically both) shows
	// up in the utilization table.
	if len(digest.Workers) == 0 || digest.WallUS <= 0 {
		t.Errorf("digest workers/wall = %d/%d", len(digest.Workers), digest.WallUS)
	}
	if len(digest.Measures) == 0 || len(digest.CriticalPath) == 0 {
		t.Errorf("digest measures/critical path empty: %+v", digest)
	}

	// Federated metrics: trace-ingest counters and per-worker series.
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	for _, want := range []string{
		"grid_trace_uploads_total",
		"grid_trace_bytes_total",
		"grid_trace_journals 2",
		`grid_worker_tasks{worker="shipper1"}`,
		`grid_worker_tasks{worker="shipper2"}`,
		`grid_worker_points{worker="shipper1",kind="simulated"}`,
		`grid_worker_task_seconds_count{`,
		`grid_fleet_task_seconds_count{`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("coordinator /metrics missing %q", want)
		}
	}
	// The fleet histogram is the sum of the workers': its count equals
	// the total tasks done.
	if !strings.Contains(text, fmt.Sprintf("grid_trace_spans_total %d", countLines(collected))) {
		t.Errorf("grid_trace_spans_total != %d collected spans:\n%s", countLines(collected), grepLines(text, "grid_trace_"))
	}

	// The dashboard renders a timeline panel for the collected scope.
	dashResp, err := http.Get(srv.URL + "/v1/dashboard")
	if err != nil {
		t.Fatal(err)
	}
	defer dashResp.Body.Close()
	dash, err := io.ReadAll(dashResp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Trace timeline", jobID} {
		if !strings.Contains(string(dash), want) {
			t.Errorf("dashboard missing %q", want)
		}
	}
}

// TestTraceUploadUnknownJob pins the scope validation: shipping into a
// job the coordinator does not know is a 404, not a silent new scope.
func TestTraceUploadUnknownJob(t *testing.T) {
	coord := NewCoordinator(CoordinatorOptions{})
	defer coord.Close()
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	var ack TraceAck
	err := postJSON(context.Background(), defaultClient(), apiURL(srv.URL, "trace"),
		TraceUpload{Writer: "w", Job: "gossip-000000000000"}, &ack)
	if err == nil || !strings.Contains(err.Error(), "404") {
		t.Fatalf("upload into unknown job: err = %v, want 404", err)
	}
}

func countLines(b []byte) int { return bytes.Count(b, []byte{'\n'}) }

func grepLines(text, substr string) string {
	var out []string
	for _, line := range strings.Split(text, "\n") {
		if strings.Contains(line, substr) {
			out = append(out, line)
		}
	}
	return strings.Join(out, "\n")
}

// TestTraceShipperSurvivesCoordinatorOutage: ship errors during an
// outage lose nothing — the journal is append-only and offsets are
// acked — and after a coordinator restart over the same directory the
// collected copy converges byte-identical to the worker's local one.
func TestTraceShipperSurvivesCoordinatorOutage(t *testing.T) {
	dir := t.TempDir()
	coord1 := NewCoordinator(CoordinatorOptions{Dir: dir})

	// A front proxy with a stable URL whose backend we can kill and
	// replace: the worker-side view of a coordinator crash + restart.
	var mu sync.Mutex
	var backend http.Handler = coord1.Handler()
	down := false
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		h, dead := backend, down
		mu.Unlock()
		if dead {
			panic(http.ErrAbortHandler) // sever the connection mid-request
		}
		h.ServeHTTP(w, r)
	}))
	defer srv.Close()

	traceDir := t.TempDir()
	rec, err := obs.OpenDir(traceDir, "lonely")
	if err != nil {
		t.Fatal(err)
	}
	shipper := NewTraceShipper(srv.URL, rec, obs.JournalPath(traceDir, "lonely"),
		TraceShipperOptions{ChunkBytes: 256})

	ctx := context.Background()
	rec.Start(0, "before-outage").End()
	if err := shipper.Ship(ctx); err != nil {
		t.Fatal(err)
	}
	if shipper.Offset() == 0 {
		t.Fatal("nothing collected before the outage")
	}

	// Coordinator dies. Spans keep landing in the local journal; ship
	// passes fail (Run would log and retry) without losing anything.
	mu.Lock()
	down = true
	mu.Unlock()
	rec.Start(0, "during-outage").End()
	if err := shipper.Ship(ctx); err == nil {
		t.Fatal("ship through a dead coordinator should error")
	}

	// Restart over the same directory: the collector resumes from its
	// on-disk copy and the shipper rewinds to the acked Have.
	coord2 := NewCoordinator(CoordinatorOptions{Dir: dir})
	defer coord2.Close()
	mu.Lock()
	backend = coord2.Handler()
	down = false
	mu.Unlock()

	rec.Start(0, "after-restart").End()
	if err := shipper.Ship(ctx); err != nil {
		t.Fatal(err)
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}

	local, err := os.ReadFile(obs.JournalPath(traceDir, "lonely"))
	if err != nil {
		t.Fatal(err)
	}
	collected, err := FetchTrace(ctx, nil, srv.URL, "")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(collected, local) {
		t.Fatalf("collected journal (%d bytes) != local journal (%d bytes) after outage + restart", len(collected), len(local))
	}
	if !bytes.Contains(collected, []byte("during-outage")) {
		t.Fatal("the span recorded during the outage never made it to the coordinator")
	}
}
