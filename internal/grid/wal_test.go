package grid

// The coordinator WAL contract: every scheduling decision survives a
// kill -9. A coordinator restarted over the same directory — without
// Close, without drain — restores exact task states, fair-share
// deficits, requeue counts and per-worker scores from the journal, and
// the finished sweep is byte-identical to a single-process job.Run.

import (
	"bytes"
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/dsa"
	"repro/internal/job"
)

// TestWALRoundTrip pins the on-disk format: append, close, reopen,
// same records back; torn tails truncated; corrupt lines skipped.
func TestWALRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, recs, skipped, err := openWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 || skipped != 0 {
		t.Fatalf("fresh WAL replayed %d records, %d skipped", len(recs), skipped)
	}
	want := []walRecord{
		{T: walLease, Job: "j", Task: "t1", Worker: "w1"},
		{T: walIngest, Job: "j", Task: "t1", Worker: "w1", ElapsedMS: 42},
		{T: walQuarantine, Worker: "evil"},
	}
	if err := w.append(false, want[0], want[1]); err != nil {
		t.Fatal(err)
	}
	if err := w.append(true, want[2]); err != nil { // verdict-grade: fsynced
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, recs, skipped, err := openWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 0 || len(recs) != len(want) {
		t.Fatalf("reopen: %d records (%d skipped), want %d", len(recs), skipped, len(want))
	}
	for i, r := range recs {
		if r != want[i] {
			t.Fatalf("record %d = %+v, want %+v", i, r, want[i])
		}
	}
	w2.Close()

	// A torn final write (no newline) is truncated away on open; a
	// complete line with a bad CRC is skipped but appends stay safe.
	path := filepath.Join(dir, walFileName)
	intact, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"crc":12345,"rec":{"t":"lease","job":"j","task":"bogus"}}` + "\n") // wrong CRC
	f.WriteString(`{"crc":1,"rec":{"t":"lea`)                                          // torn tail
	f.Close()

	w3, recs, skipped, err := openWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(want) || skipped != 1 {
		t.Fatalf("after corruption: %d records (%d skipped), want %d (1 skipped)", len(recs), skipped, len(want))
	}
	if err := w3.append(false, walRecord{T: walExpire, Job: "j", Task: "t1", Worker: "w1"}); err != nil {
		t.Fatal(err)
	}
	w3.Close()
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(after, intact) || bytes.Contains(after, []byte(`"t":"lea"`)) {
		t.Fatalf("torn tail not cleanly truncated before append:\n%s", after)
	}

	w4, recs, skipped, err := openWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer w4.Close()
	if len(recs) != len(want)+1 || skipped != 1 {
		t.Fatalf("final reopen: %d records (%d skipped), want %d (1 skipped)", len(recs), skipped, len(want)+1)
	}
}

// TestWALWriteErrorTyped pins the failure surface: a disk-full or
// short write during append comes back as *job.WriteError carrying the
// WAL path, offset and operation, with the root cause unwrappable —
// and the torn bytes are trimmed so the journal stays appendable.
func TestWALWriteErrorTyped(t *testing.T) {
	dir := t.TempDir()
	w, _, _, err := openWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.append(false, walRecord{T: walLease, Job: "j", Task: "t1", Worker: "w1"}); err != nil {
		t.Fatal(err)
	}

	faults := chaos.NewFileFaults(1, 0, 1.0, walFileName) // every WAL write: ENOSPC
	restore := job.SetWriterSeam(faults.Wrap)
	err = w.append(false, walRecord{T: walIngest, Job: "j", Task: "t1", Worker: "w1"})
	restore()
	var werr *job.WriteError
	if !errors.As(err, &werr) {
		t.Fatalf("append under disk-full: err = %v, want *job.WriteError", err)
	}
	if werr.Path != filepath.Join(dir, walFileName) || werr.Op != "append wal" || werr.Off <= 0 {
		t.Fatalf("WriteError = %+v, want wal path, op \"append wal\", positive offset", werr)
	}
	if !errors.Is(err, syscall.ENOSPC) || !errors.Is(err, chaos.ErrInjected) {
		t.Fatalf("err = %v, want ENOSPC via chaos.ErrInjected", err)
	}

	// The journal is still healthy: the failed record never landed, the
	// next append does.
	if err := w.append(false, walRecord{T: walExpire, Job: "j", Task: "t1", Worker: "w1"}); err != nil {
		t.Fatal(err)
	}
	w.Close()
	_, recs, skipped, err := openWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || skipped != 0 {
		t.Fatalf("replay after failed append: %d records (%d skipped), want 2 clean", len(recs), skipped)
	}
	if recs[1].T != walExpire {
		t.Fatalf("surviving records = %+v, the ENOSPC'd ingest must not appear", recs)
	}
}

// TestCoordinatorCrashRecovery is the tentpole pin: a coordinator is
// abandoned mid-sweep (no Close, no drain — the WAL file is exactly
// what a kill -9 leaves) while a worker holds a live lease. The
// restarted coordinator must restore done/leased/pending task states,
// the fair-share deficit, and the dead worker's score row from the
// WAL, then finish the sweep byte-identical to job.Run — including the
// merged CSV.
func TestCoordinatorCrashRecovery(t *testing.T) {
	spec := gossipSpec(t)
	want := wantScores(t, spec)
	dir := t.TempDir()
	ctx := context.Background()

	coord1 := NewCoordinator(CoordinatorOptions{Dir: dir, LeaseTTL: time.Minute})
	id, err := coord1.AddJob(spec)
	if err != nil {
		t.Fatal(err)
	}
	srv1 := httptest.NewServer(coord1.Handler())
	// TasksPerLease 2, killed after upload 3: the worker dies holding a
	// live lease on its 4th task (computed, upload severed).
	kill := &killingTransport{killAfter: 3}
	err = Work(ctx, srv1.URL, id, WorkerOptions{
		Name: "first-life", Workers: 1, TasksPerLease: 2,
		Client: &http.Client{Transport: kill},
	})
	if err == nil {
		t.Fatal("worker should have died after 3 uploads")
	}
	srv1.Close()
	// Deliberately NO coord1.Close(): the process is gone, the WAL and
	// checkpoint directory are all that survive.

	coord2 := NewCoordinator(CoordinatorOptions{Dir: dir, LeaseTTL: 250 * time.Millisecond})
	defer coord2.Close()
	id2, err := coord2.AddJob(spec)
	if err != nil {
		t.Fatal(err)
	}
	if id2 != id {
		t.Fatalf("job ID changed across crash: %s vs %s", id, id2)
	}

	snap, err := coord2.Progress(id)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Done != 3 || snap.Leased != 1 || snap.Complete {
		t.Fatalf("restored progress = %+v, want 3 done + 1 re-armed lease", snap)
	}
	coord2.mu.Lock()
	j := coord2.jobs[id]
	if j.leasesGranted != 4 || j.requeues != 0 {
		t.Errorf("replayed deficit: leasesGranted %d requeues %d, want 4 and 0", j.leasesGranted, j.requeues)
	}
	ws := coord2.workers["first-life"]
	if ws == nil || ws.done != 3 || ws.leased != 1 {
		t.Errorf("replayed worker score row = %+v, want done 3 with 1 still leased", ws)
	}
	coord2.mu.Unlock()

	// The dead worker's re-armed lease expires on coordinator 2's own
	// clock; a second-life worker finishes the sweep.
	srv2 := httptest.NewServer(coord2.Handler())
	defer srv2.Close()
	if err := Work(ctx, srv2.URL, id, WorkerOptions{Name: "second-life", Workers: 2, TasksPerLease: 2, Poll: 20 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	got, err := coord2.WaitComplete(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if mustJSON(t, got) != mustJSON(t, want) {
		t.Fatal("post-crash scores differ from single-process job.Run")
	}
	snap, err = coord2.Progress(id)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Requeues < 1 {
		t.Fatalf("the dead worker's re-armed lease should have expired and re-queued: %+v", snap)
	}

	var gotCSV, wantCSV bytes.Buffer
	if err := dsa.WriteCSV(&gotCSV, spec.Domain, got); err != nil {
		t.Fatal(err)
	}
	if err := dsa.WriteCSV(&wantCSV, spec.Domain, want); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotCSV.Bytes(), wantCSV.Bytes()) {
		t.Fatal("merged CSV after crash recovery is not byte-identical to job.Run's")
	}
}
