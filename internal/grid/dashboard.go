package grid

import (
	"fmt"
	"html/template"
	"math"
	"net/http"
	"sort"
	"time"

	"repro/internal/dsa"
)

// The dashboard is the human view of the same state /metrics exports:
// one self-refreshing HTML page, no JS frameworks, no assets, so it
// works from curl -L, a phone, or a locked-down ops box. It is
// deliberately read-only — operators drive the grid through the API.

type dashboardData struct {
	Now       string
	Uptime    string
	Draining  bool
	Jobs      []dashboardJob
	Workers   []dashboardWorker
	HasCache  bool
	Cache     dsa.CacheStats
	HitRatio  string
	AuthOn    bool
	RateLimit float64
	Traces    []dashboardTrace
}

// dashboardTrace is one collected-trace scope's timeline panel: the
// fleet-wide digest GET /v1/trace?format=digest serves, trimmed for
// the page.
type dashboardTrace struct {
	Scope      string // job ID, or "fleet" for unscoped journals
	Journals   int
	Records    int
	Tasks      int
	Wall       string
	Busy       string
	Workers    []dashboardTraceWorker
	Stragglers []dashboardTraceStraggler
}

type dashboardTraceWorker struct {
	Name        string
	Tasks       int
	Busy        string
	Window      string
	Coverage    float64 // window as % of the scope's wall clock
	Parallelism string
}

type dashboardTraceStraggler struct {
	Worker  string
	Task    string
	Measure string
	Dur     string
	Typical string
	Factor  string
}

type dashboardJob struct {
	ID       string
	Domain   string
	Priority int
	Done     int
	Total    int
	Pending  int
	Leased   int
	Requeues int
	Cached   int
	Granted  int
	Audits   int
	Percent  float64
	ETA      string
	Complete bool
}

type dashboardWorker struct {
	Name        string
	Live        bool
	Quarantined bool
	Leased      int
	Done        uint64
	Failures    uint64
	Latency     string
	FailRate    string
	LastSeen    string
}

func (c *Coordinator) handleDashboard(w http.ResponseWriter, r *http.Request) {
	c.mu.Lock()
	now := c.now()
	data := dashboardData{
		Now:       now.Format(time.RFC3339),
		Uptime:    time.Since(c.started).Round(time.Second).String(),
		Draining:  c.draining,
		AuthOn:    c.opts.AuthToken != "",
		RateLimit: c.opts.RateLimit,
	}
	ids := make([]string, 0, len(c.jobs))
	for id := range c.jobs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		j := c.jobs[id]
		c.expireLocked(j)
		snap := c.snapshotLocked(j)
		dj := dashboardJob{
			ID: id, Domain: j.spec.Domain.Name(), Priority: j.weight,
			Done: snap.Done, Total: snap.Total, Pending: snap.Pending,
			Leased: snap.Leased, Requeues: snap.Requeues, Cached: snap.CacheTasks,
			Granted: snap.LeasesGranted, Audits: snap.Audits, Complete: snap.Complete,
		}
		if snap.Total > 0 {
			dj.Percent = 100 * float64(snap.Done) / float64(snap.Total)
		}
		switch eta := c.etaLocked(j, now); {
		case snap.Complete:
			dj.ETA = "done"
		case math.IsNaN(eta):
			dj.ETA = "—"
		default:
			dj.ETA = (time.Duration(eta * float64(time.Second))).Round(time.Second).String()
		}
		data.Jobs = append(data.Jobs, dj)
	}
	names := make([]string, 0, len(c.workers))
	for name := range c.workers {
		names = append(names, name)
	}
	// Quarantined workers the coordinator never heard from this run
	// (verdict replayed from the WAL) still get a row — an operator
	// must be able to see every standing ban.
	for name := range c.quarantined {
		if _, ok := c.workers[name]; !ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	cutoff := now.Add(-livenessTTLs * c.opts.leaseTTL())
	for _, name := range names {
		ws := c.workers[name]
		if ws == nil {
			data.Workers = append(data.Workers, dashboardWorker{
				Name: name, Quarantined: true, Latency: "—", FailRate: "—", LastSeen: "—",
			})
			continue
		}
		dw := dashboardWorker{
			Name: name, Live: ws.lastSeen.After(cutoff), Leased: ws.leased,
			Quarantined: c.quarantined[name],
			Done:        ws.done, Failures: ws.failures,
			LastSeen: now.Sub(ws.lastSeen).Round(time.Second).String() + " ago",
		}
		if ws.latEWMA > 0 {
			dw.Latency = (time.Duration(ws.latEWMA * float64(time.Second))).Round(time.Millisecond).String()
		} else {
			dw.Latency = "—"
		}
		dw.FailRate = formatPercent(ws.failEWMA)
		data.Workers = append(data.Workers, dw)
	}
	if stats, ok := c.cacheStatsLocked(); ok {
		data.HasCache = true
		data.Cache = stats
		if total := stats.Hits + stats.Misses; total > 0 {
			data.HitRatio = formatPercent(float64(stats.Hits) / float64(total))
		} else {
			data.HitRatio = "—"
		}
	}
	c.mu.Unlock()

	// Trace panels read collected journal files (memoised by collected
	// bytes), so they are built outside c.mu.
	data.Traces = c.traceDashboard()

	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	if err := dashboardTmpl.Execute(w, data); err != nil {
		c.logfCtx(r.Context(), "grid: dashboard render: %v", err)
	}
}

// traceDashboard builds one timeline/straggler panel per collected
// trace scope from the digest cache.
func (c *Coordinator) traceDashboard() []dashboardTrace {
	var out []dashboardTrace
	for _, scope := range c.traces.scopes() {
		a, journals, err := c.traces.digest(scope)
		if err != nil || a.Records == 0 {
			continue
		}
		dt := dashboardTrace{
			Scope:    scope,
			Journals: journals,
			Records:  a.Records,
			Tasks:    a.Tasks,
			Wall:     a.Wall.Round(time.Millisecond).String(),
			Busy:     a.TaskBusy.Round(time.Millisecond).String(),
		}
		if scope == "" {
			dt.Scope = "fleet"
		}
		for _, ws := range a.Workers {
			dw := dashboardTraceWorker{
				Name:        ws.Writer,
				Tasks:       ws.Tasks,
				Busy:        ws.Busy.Round(time.Millisecond).String(),
				Window:      ws.Window.Round(time.Millisecond).String(),
				Parallelism: fmt.Sprintf("%.2f", ws.Parallelism),
			}
			if a.Wall > 0 {
				dw.Coverage = math.Min(100, 100*float64(ws.Window)/float64(a.Wall))
			}
			dt.Workers = append(dt.Workers, dw)
		}
		for i, st := range a.Stragglers {
			if i == 5 {
				break
			}
			dt.Stragglers = append(dt.Stragglers, dashboardTraceStraggler{
				Worker:  st.Record.Writer,
				Task:    st.Record.AttrStr("task"),
				Measure: st.Measure,
				Dur:     st.Dur.Round(time.Millisecond).String(),
				Typical: st.Typical.Round(time.Millisecond).String(),
				Factor:  fmt.Sprintf("%.1fx", st.Factor),
			})
		}
		out = append(out, dt)
	}
	return out
}

func formatPercent(v float64) string {
	if math.IsNaN(v) {
		return "—"
	}
	return fmt.Sprintf("%.1f%%", 100*v)
}

var dashboardTmpl = template.Must(template.New("dashboard").Parse(`<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta http-equiv="refresh" content="2">
<title>dsa-grid dashboard</title>
<style>
body { font: 14px/1.5 system-ui, sans-serif; margin: 2rem; color: #1a1a1a; background: #fafafa; }
h1 { font-size: 1.3rem; } h2 { font-size: 1.05rem; margin-top: 1.8rem; }
table { border-collapse: collapse; background: #fff; box-shadow: 0 1px 2px rgba(0,0,0,.08); }
th, td { padding: .35rem .7rem; border: 1px solid #e2e2e2; text-align: left; font-variant-numeric: tabular-nums; }
th { background: #f0f0f0; }
.bar { background: #e8e8e8; border-radius: 3px; width: 10rem; height: .8rem; display: inline-block; vertical-align: middle; }
.bar > i { background: #4a90d9; border-radius: 3px; height: 100%; display: block; }
.done .bar > i { background: #3cab5a; }
.pill { padding: .1rem .5rem; border-radius: 999px; font-size: .8rem; }
.live { background: #d9f2e0; color: #1e7a3c; } .dead { background: #f7d9d9; color: #9b2c2c; }
.quarantined { background: #2b2b2b; color: #ffb3b3; }
.drain { background: #fff3cd; border: 1px solid #e6cf7a; padding: .6rem 1rem; border-radius: 4px; margin: 1rem 0; }
.meta { color: #666; font-size: .85rem; }
</style>
</head>
<body>
<h1>dsa-grid coordinator</h1>
<p class="meta">up {{.Uptime}} · {{.Now}} · auth {{if .AuthOn}}on{{else}}off{{end}} · rate limit {{if .RateLimit}}{{.RateLimit}}/s per client{{else}}off{{end}} · <a href="/metrics">/metrics</a></p>
{{if .Draining}}<div class="drain">Draining: no new leases; the coordinator exits once in-flight leases settle.</div>{{end}}

<h2>Jobs</h2>
{{if .Jobs}}
<table>
<tr><th>job</th><th>domain</th><th>priority</th><th>progress</th><th>done</th><th>pending</th><th>leased</th><th>requeues</th><th>cache-served</th><th>granted</th><th>audits</th><th>ETA</th></tr>
{{range .Jobs}}
<tr{{if .Complete}} class="done"{{end}}>
<td><code>{{.ID}}</code></td><td>{{.Domain}}</td><td>{{.Priority}}</td>
<td><span class="bar"><i style="width:{{printf "%.1f" .Percent}}%"></i></span> {{printf "%.1f" .Percent}}%</td>
<td>{{.Done}}/{{.Total}}</td><td>{{.Pending}}</td><td>{{.Leased}}</td><td>{{.Requeues}}</td><td>{{.Cached}}</td><td>{{.Granted}}</td><td>{{.Audits}}</td><td>{{.ETA}}</td>
</tr>
{{end}}
</table>
{{else}}<p class="meta">No jobs registered.</p>{{end}}

<h2>Workers</h2>
{{if .Workers}}
<table>
<tr><th>worker</th><th>status</th><th>on lease</th><th>done</th><th>expiries</th><th>latency (EWMA)</th><th>failure rate (EWMA)</th><th>last seen</th></tr>
{{range .Workers}}
<tr>
<td><code>{{.Name}}</code></td>
<td>{{if .Quarantined}}<span class="pill quarantined">quarantined</span>{{else if .Live}}<span class="pill live">live</span>{{else}}<span class="pill dead">gone</span>{{end}}</td>
<td>{{.Leased}}</td><td>{{.Done}}</td><td>{{.Failures}}</td><td>{{.Latency}}</td><td>{{.FailRate}}</td><td>{{.LastSeen}}</td>
</tr>
{{end}}
</table>
{{else}}<p class="meta">No workers seen yet.</p>{{end}}

{{range .Traces}}
<h2>Trace timeline — <code>{{.Scope}}</code></h2>
<p class="meta">{{.Records}} spans from {{.Journals}} shipped journals · {{.Tasks}} tasks · wall {{.Wall}} · task busy {{.Busy}} · <a href="/v1/trace{{if ne .Scope "fleet"}}?job={{.Scope}}{{end}}">merged journal</a></p>
<table>
<tr><th>worker</th><th>tasks</th><th>busy</th><th>active window</th><th>window vs wall</th><th>parallelism</th></tr>
{{range .Workers}}
<tr>
<td><code>{{.Name}}</code></td><td>{{.Tasks}}</td><td>{{.Busy}}</td><td>{{.Window}}</td>
<td><span class="bar"><i style="width:{{printf "%.1f" .Coverage}}%"></i></span> {{printf "%.1f" .Coverage}}%</td>
<td>{{.Parallelism}}</td>
</tr>
{{end}}
</table>
{{if .Stragglers}}
<h3 class="meta">Stragglers</h3>
<table>
<tr><th>worker</th><th>task</th><th>measure</th><th>duration</th><th>typical</th><th>factor</th></tr>
{{range .Stragglers}}
<tr><td><code>{{.Worker}}</code></td><td><code>{{.Task}}</code></td><td>{{.Measure}}</td><td>{{.Dur}}</td><td>{{.Typical}}</td><td>{{.Factor}}</td></tr>
{{end}}
</table>
{{end}}
{{end}}

{{if .HasCache}}
<h2>Score cache</h2>
<table>
<tr><th>entries</th><th>hits</th><th>misses</th><th>hit ratio</th><th>puts</th><th>evictions</th></tr>
<tr><td>{{.Cache.Entries}}</td><td>{{.Cache.Hits}}</td><td>{{.Cache.Misses}}</td><td>{{.HitRatio}}</td><td>{{.Cache.Puts}}</td><td>{{.Cache.Evictions}}</td></tr>
</table>
{{end}}
</body>
</html>
`))
