package grid

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dsa"
	"repro/internal/gridobs"
	"repro/internal/job"
	"repro/internal/obs"
)

// WorkerOptions configures a Work loop.
type WorkerOptions struct {
	// Name identifies this worker in leases and heartbeats. "" derives
	// a unique host-pid-N identity, so several in-process workers never
	// collide.
	Name string
	// Workers is the parallel task width per lease batch, passed to
	// job.ExecTasks — the same bounded pool a local run uses. 0 =
	// Cfg.Workers, then GOMAXPROCS.
	Workers int
	// TasksPerLease is how many tasks to request per lease call
	// (capped by the coordinator). 0 accepts the coordinator's cap.
	TasksPerLease int
	// Poll is the idle wait when no task is available but the job is
	// not complete (everything is leased to other workers). 0 = 500ms.
	Poll time.Duration
	// Client is the HTTP client; nil = a client with
	// DefaultHTTPTimeout, so a hung coordinator can never wedge the
	// worker forever (requests are also retried with backoff — see
	// doJSON).
	Client *http.Client
	// AuthToken is the coordinator's shared secret (see
	// CoordinatorOptions.AuthToken); sent as a bearer token on every
	// request. Ignored when Client is provided — wrap your own client
	// with AuthTransport instead.
	AuthToken string
	// Cache, if non-nil, memoises raw scores on the worker side:
	// leased tasks consult it before simulating and record what they
	// computed (job.ExecOptions.Cache). A worker pointed at a warm
	// -cache-dir uploads known scores instead of recomputing them.
	Cache dsa.ScoreCache
	// Logf, if non-nil, receives worker event logs.
	Logf func(format string, args ...any)
	// Trace, if non-nil, journals the worker's side of the sweep:
	// "lease" and "upload" spans carrying the request ID each HTTP call
	// sent (the same rid the coordinator logs), with each lease batch's
	// task spans (job.ExecTasks) parented under a "lease-batch" span.
	Trace *obs.Recorder
	// Metrics, if non-nil, receives worker counters (tasks, points
	// simulated vs cache-served, per-measure latency, upload retries) —
	// served on dsa-grid work -metrics-addr.
	Metrics *gridobs.WorkerMetrics

	// Reconnect, when > 0, makes the worker ride out coordinator
	// outages: instead of exiting on the first unreachable call, it
	// keeps polling until the coordinator has been continuously
	// unreachable for this long. This is what lets a fleet survive a
	// coordinator kill -9 + restart without being restarted itself.
	// Context cancellation and quarantine verdicts always exit.
	Reconnect time.Duration
	// Corrupt, if non-nil, transforms each computed result before
	// upload — the chaos harness's Byzantine-worker hook (dsa-grid
	// work -chaos-byzantine). Honest deployments leave it nil.
	Corrupt func(t job.Task, values []float64) []float64
}

var workerSeq atomic.Int64

func (o WorkerOptions) name() string {
	if o.Name != "" {
		return o.Name
	}
	host, err := os.Hostname()
	if err != nil {
		host = "worker"
	}
	return fmt.Sprintf("%s-%d-%d", host, os.Getpid(), workerSeq.Add(1))
}

func (o WorkerOptions) poll() time.Duration {
	if o.Poll > 0 {
		return o.Poll
	}
	return 500 * time.Millisecond
}

func (o WorkerOptions) client() *http.Client {
	if o.Client != nil {
		return o.Client
	}
	return NewClient(o.AuthToken)
}

// Work runs a worker loop against the coordinator at baseURL: lease →
// ScoreSlice (on the engine's bounded pool) → upload, heartbeating
// held leases, until the work completes (nil), ctx is cancelled
// (ctx.Err()), the coordinator drains (nil — the worker is being asked
// to go away), or the coordinator becomes unreachable.
//
// With an explicit jobID the worker serves that one job. With jobID ""
// it runs in multi-job mode: every lease call hits the global
// POST /v1/lease and the coordinator's fair scheduler decides which
// job each batch serves, so one fleet of workers drains any mix of
// concurrent jobs in proportion to their priorities.
//
// A worker holds no durable state: killing it at any instant loses at
// most its in-flight leases, which expire on the coordinator and are
// re-run elsewhere.
func Work(ctx context.Context, baseURL, jobID string, opts WorkerOptions) error {
	name := opts.name()
	client := opts.client()
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	if jobID == "" {
		return workAny(ctx, client, baseURL, name, opts, logf)
	}

	rc := &reconnector{window: opts.Reconnect}
	var spec job.Spec
	for {
		detail, err := GetJob(ctx, client, baseURL, jobID)
		if err != nil {
			if rc.tolerate(err) {
				logf("worker %s: coordinator unreachable (%v), waiting to reconnect", name, err)
				if err := sleepPoll(ctx, opts); err != nil {
					return err
				}
				continue
			}
			return err
		}
		if spec, err = job.DecodeSpec(detail.Spec); err != nil {
			return err
		}
		rc.ok()
		break
	}
	logf("worker %s: joined job %s (%s domain, %d points)", name, jobID, spec.Domain.Name(), len(spec.Points))

	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		var lease LeaseResponse
		var info callInfo
		leaseSpan := opts.Trace.Start(0, "lease")
		err := postJSONInfo(ctx, client, apiURL(baseURL, "jobs", jobID, "lease"),
			LeaseRequest{Worker: name, MaxTasks: opts.TasksPerLease}, &lease, &info)
		if err != nil {
			leaseSpan.Drop()
			if rc.tolerate(err) {
				logf("worker %s: coordinator unreachable (%v), waiting to reconnect", name, err)
				if err := sleepPoll(ctx, opts); err != nil {
					return err
				}
				continue
			}
			return err
		}
		rc.ok()
		leaseSpan.Str("rid", info.requestID).Str("job", jobID).
			Int("granted", int64(len(lease.Tasks))).End()
		opts.Metrics.ObserveLease(len(lease.Tasks))
		if lease.Draining {
			logf("worker %s: coordinator draining, exiting", name)
			return nil
		}
		if len(lease.Tasks) == 0 {
			if lease.Complete {
				logf("worker %s: job %s complete", name, jobID)
				return nil
			}
			// Everything pending is leased to other workers; wait for
			// either completion or an expiry to free tasks up.
			select {
			case <-time.After(opts.poll()):
			case <-ctx.Done():
				return ctx.Err()
			}
			continue
		}
		if err := runLease(ctx, client, baseURL, jobID, name, spec, lease, opts, logf); err != nil {
			if rc.tolerate(err) {
				// The batch's uploads died mid-outage; the leases expire
				// and re-queue, so just go back to pulling.
				logf("worker %s: lease batch failed (%v), waiting to reconnect", name, err)
				if err := sleepPoll(ctx, opts); err != nil {
					return err
				}
				continue
			}
			return err
		}
		rc.ok()
	}
}

// reconnector implements WorkerOptions.Reconnect: one outage window,
// reset by any successful call.
type reconnector struct {
	window time.Duration
	since  time.Time // start of the current outage; zero = healthy
}

func (rc *reconnector) ok() { rc.since = time.Time{} }

// tolerate reports whether err is worth riding out: anything transient
// while the continuous-outage clock is inside the window. Context
// cancellation and quarantine verdicts always surface.
func (rc *reconnector) tolerate(err error) bool {
	if rc.window <= 0 || err == nil {
		return false
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) ||
		errors.Is(err, ErrWorkerQuarantined) {
		return false
	}
	if rc.since.IsZero() {
		rc.since = time.Now()
		return true
	}
	return time.Since(rc.since) < rc.window
}

func sleepPoll(ctx context.Context, opts WorkerOptions) error {
	select {
	case <-time.After(opts.poll()):
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// workAny is the multi-job worker loop: lease from the global endpoint,
// lazily fetch and cache each job's spec the first time the scheduler
// routes a batch from it, and keep pulling until every job is done.
func workAny(ctx context.Context, client *http.Client, baseURL, name string, opts WorkerOptions, logf func(string, ...any)) error {
	specs := map[string]job.Spec{}
	rc := &reconnector{window: opts.Reconnect}
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		var lease GlobalLeaseResponse
		var info callInfo
		leaseSpan := opts.Trace.Start(0, "lease")
		err := postJSONInfo(ctx, client, apiURL(baseURL, "lease"),
			LeaseRequest{Worker: name, MaxTasks: opts.TasksPerLease}, &lease, &info)
		if err != nil {
			leaseSpan.Drop()
			if rc.tolerate(err) {
				logf("worker %s: coordinator unreachable (%v), waiting to reconnect", name, err)
				if err := sleepPoll(ctx, opts); err != nil {
					return err
				}
				continue
			}
			return err
		}
		rc.ok()
		leaseSpan.Str("rid", info.requestID).Str("job", lease.Job).
			Int("granted", int64(len(lease.Tasks))).End()
		opts.Metrics.ObserveLease(len(lease.Tasks))
		if lease.Draining {
			logf("worker %s: coordinator draining, exiting", name)
			return nil
		}
		if len(lease.Tasks) == 0 {
			if lease.AllComplete {
				logf("worker %s: all jobs complete", name)
				return nil
			}
			// No jobs yet, or everything pending is leased elsewhere.
			select {
			case <-time.After(opts.poll()):
			case <-ctx.Done():
				return ctx.Err()
			}
			continue
		}
		spec, ok := specs[lease.Job]
		if !ok {
			detail, err := GetJob(ctx, client, baseURL, lease.Job)
			if err != nil {
				if rc.tolerate(err) {
					logf("worker %s: coordinator unreachable (%v), waiting to reconnect", name, err)
					if err := sleepPoll(ctx, opts); err != nil {
						return err
					}
					continue
				}
				return err
			}
			if spec, err = job.DecodeSpec(detail.Spec); err != nil {
				return err
			}
			specs[lease.Job] = spec
			logf("worker %s: joined job %s (%s domain, %d points)", name, lease.Job, spec.Domain.Name(), len(spec.Points))
		}
		if err := runLease(ctx, client, baseURL, lease.Job, name, spec,
			LeaseResponse{Tasks: lease.Tasks}, opts, logf); err != nil {
			if rc.tolerate(err) {
				logf("worker %s: lease batch failed (%v), waiting to reconnect", name, err)
				if err := sleepPoll(ctx, opts); err != nil {
					return err
				}
				continue
			}
			return err
		}
		rc.ok()
	}
}

// runLease executes one lease batch: a heartbeat goroutine keeps the
// outstanding leases alive while job.ExecTasks computes them and the
// sink uploads each result as it lands.
func runLease(ctx context.Context, client *http.Client, baseURL, jobID, name string, spec job.Spec, lease LeaseResponse, opts WorkerOptions, logf func(string, ...any)) error {
	tasks := make([]job.Task, len(lease.Tasks))
	ttl := DefaultLeaseTTL
	held := make(map[string]bool, len(lease.Tasks))
	for i, lt := range lease.Tasks {
		tasks[i] = job.Task{Measure: lt.Measure, Lo: lt.Lo, Hi: lt.Hi}
		held[lt.Task] = true
		if ms := time.Duration(lt.TTLMS) * time.Millisecond; ms > 0 {
			ttl = ms
		}
	}

	var mu sync.Mutex
	hbCtx, stopHB := context.WithCancel(ctx)
	var hbWG sync.WaitGroup
	hbWG.Add(1)
	go func() {
		defer hbWG.Done()
		tick := time.NewTicker(max(ttl/3, 10*time.Millisecond))
		defer tick.Stop()
		for {
			select {
			case <-hbCtx.Done():
				return
			case <-tick.C:
			}
			mu.Lock()
			ids := make([]string, 0, len(held))
			for id := range held {
				ids = append(ids, id)
			}
			mu.Unlock()
			if len(ids) == 0 {
				return
			}
			var resp HeartbeatResponse
			if err := postJSON(hbCtx, client, apiURL(baseURL, "jobs", jobID, "heartbeat"),
				HeartbeatRequest{Worker: name, Tasks: ids}, &resp); err != nil {
				continue // transient; the lease survives until its TTL
			}
			if len(resp.Lost) > 0 {
				// Per the protocol, stop heartbeating lost leases; the
				// finished values are still uploaded (idempotent) when
				// their computation lands.
				mu.Lock()
				for _, id := range resp.Lost {
					delete(held, id)
				}
				mu.Unlock()
				opts.Metrics.ObserveLeasesLost(len(resp.Lost))
				logf("worker %s: %d leases lost (expired or done elsewhere)", name, len(resp.Lost))
			}
		}
	}()
	defer func() {
		stopHB()
		hbWG.Wait()
	}()

	batch := opts.Trace.Start(0, "lease-batch").
		Str("job", jobID).Int("tasks", int64(len(tasks)))
	defer batch.End()
	execOpts := job.ExecOptions{
		Workers: opts.Workers, Cache: opts.Cache,
		Trace: opts.Trace, TraceParent: batch.ID(),
		OnTask: func(ts job.TaskStats) {
			opts.Metrics.ObserveTask(ts.Task.Measure, ts.Elapsed, ts.Simulated, ts.CacheHits)
		},
	}
	return job.ExecTasks(ctx, spec, tasks, execOpts, func(t job.Task, values []float64, elapsed time.Duration) error {
		if opts.Corrupt != nil {
			values = opts.Corrupt(t, values)
		}
		var ack ResultAck
		var info callInfo
		upload := opts.Trace.Start(batch.ID(), "upload").Str("task", t.ID())
		err := postJSONInfo(ctx, client, apiURL(baseURL, "jobs", jobID, "results"),
			ResultUpload{Worker: name, Task: t.ID(), Values: WireFloats(values), ElapsedMS: elapsed.Milliseconds()}, &ack, &info)
		if err != nil {
			upload.Drop()
			return err
		}
		upload.Str("rid", info.requestID).Int("attempts", int64(info.attempts)).End()
		opts.Metrics.ObserveUpload(info.attempts - 1)
		opts.Trace.CountUploadRetries(info.attempts - 1)
		mu.Lock()
		delete(held, t.ID())
		mu.Unlock()
		if ack.Duplicate {
			logf("worker %s: task %s was already done (duplicate dropped)", name, t.ID())
		}
		return nil
	})
}
