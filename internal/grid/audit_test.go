package grid

// The Byzantine-tolerance contract: with -audit-rate on, a completed
// task's recorded value is silently re-computed by a different worker
// and byte-compared; agreement verifies, disagreement arbitrates by
// value-voting, and a worker caught lying is quarantined — 429'd
// everywhere, its unaudited work invalidated and re-queued. Hedged
// leases race stragglers without double-counting anyone's fair share.

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/gossip"
	"repro/internal/job"
)

func jsonBody(t *testing.T, v any) io.Reader {
	t.Helper()
	return strings.NewReader(mustJSON(t, v))
}

// honestVals is the stand-in for a correct computation: a value vector
// that is a pure function of the task coordinates, like the real
// domains guarantee.
func honestVals(lt LeaseTask) []float64 {
	out := make([]float64, lt.Hi-lt.Lo)
	for i := range out {
		out[i] = float64(lt.Lo + i)
	}
	return out
}

func lyingVals(lt LeaseTask) []float64 {
	out := honestVals(lt)
	out[0]++
	return out
}

func auditSpec(t *testing.T, points int) job.Spec {
	t.Helper()
	all := gossip.Domain().Space().Enumerate()
	return job.Spec{Domain: gossip.Domain(), Points: all[:points], Cfg: tinyGossipCfg(), Chunk: 2}
}

func mustLease(t *testing.T, c *Coordinator, id, worker string, wantTasks int) LeaseResponse {
	t.Helper()
	resp, err := c.Lease(context.Background(), id, worker, 10)
	if err != nil {
		t.Fatalf("lease %s: %v", worker, err)
	}
	if len(resp.Tasks) != wantTasks {
		t.Fatalf("lease %s: got %d tasks, want %d", worker, len(resp.Tasks), wantTasks)
	}
	return resp
}

func mustIngest(t *testing.T, c *Coordinator, id, worker string, lt LeaseTask, vals []float64) ResultAck {
	t.Helper()
	ack, err := c.Ingest(context.Background(), id, ResultUpload{Worker: worker, Task: lt.Task, Values: vals})
	if err != nil {
		t.Fatalf("ingest %s %s: %v", worker, lt.Task, err)
	}
	if !ack.Accepted {
		t.Fatalf("ingest %s %s: not accepted", worker, lt.Task)
	}
	return ack
}

func mustProgress(t *testing.T, c *Coordinator, id string) ProgressSnapshot {
	t.Helper()
	snap, err := c.Progress(id)
	if err != nil {
		t.Fatal(err)
	}
	return snap
}

// TestAuditVerifiesAndGatesCompletion: with AuditRate 1 every done
// task opens an audit that gates completion; the producer is not
// eligible to audit itself (until constraints relax), and a matching
// second opinion verifies.
func TestAuditVerifiesAndGatesCompletion(t *testing.T) {
	spec := auditSpec(t, 2) // 2 points x 2 measures / chunk 2 = 2 tasks
	coord := NewCoordinator(CoordinatorOptions{LeaseTTL: time.Minute, AuditRate: 1})
	now := time.Unix(1000, 0)
	coord.now = func() time.Time { return now }
	id, err := coord.AddJob(spec)
	if err != nil {
		t.Fatal(err)
	}

	lease := mustLease(t, coord, id, "w1", 2)
	for _, lt := range lease.Tasks {
		mustIngest(t, coord, id, "w1", lt, honestVals(lt))
	}
	snap := mustProgress(t, coord, id)
	if snap.Done != 2 || snap.Audits != 2 || snap.Complete {
		t.Fatalf("after producer ingest: %+v, want 2 done + 2 open audits gating completion", snap)
	}

	// The producer may not audit its own fresh work.
	mustLease(t, coord, id, "w1", 0)

	// A different worker gets the re-checks as ordinary-looking leases
	// and its agreement verifies them.
	release := mustLease(t, coord, id, "w2", 2)
	for _, lt := range release.Tasks {
		ack := mustIngest(t, coord, id, "w2", lt, honestVals(lt))
		if !ack.Duplicate {
			t.Fatalf("audit agreement for %s should ack as duplicate, got %+v", lt.Task, ack)
		}
	}
	snap = mustProgress(t, coord, id)
	if snap.Audits != 0 || !snap.Complete {
		t.Fatalf("after audits verified: %+v, want complete with no open audits", snap)
	}
	if len(coord.Quarantined()) != 0 {
		t.Fatalf("honest grid quarantined someone: %v", coord.Quarantined())
	}
}

// TestAuditSoleWorkerRelaxes: one worker alone must not wedge the job
// — after a lease TTL the self-audit exclusion relaxes.
func TestAuditSoleWorkerRelaxes(t *testing.T) {
	spec := auditSpec(t, 2) // 2 tasks
	coord := NewCoordinator(CoordinatorOptions{LeaseTTL: time.Minute, AuditRate: 1})
	now := time.Unix(1000, 0)
	coord.now = func() time.Time { return now }
	id, err := coord.AddJob(spec)
	if err != nil {
		t.Fatal(err)
	}

	lease := mustLease(t, coord, id, "solo", 2)
	for _, lt := range lease.Tasks {
		mustIngest(t, coord, id, "solo", lt, honestVals(lt))
	}
	mustLease(t, coord, id, "solo", 0) // excluded while fresh

	now = now.Add(time.Minute + time.Second)
	again := mustLease(t, coord, id, "solo", 2)
	for _, lt := range again.Tasks {
		mustIngest(t, coord, id, "solo", lt, honestVals(lt))
	}
	if snap := mustProgress(t, coord, id); !snap.Complete {
		t.Fatalf("sole worker should self-verify after relax: %+v", snap)
	}
}

// TestByzantineLiarQuarantined walks the full value-voting arbitration:
// a liar's record is disputed by one honest worker, confirmed wrong by
// a second, the liar is quarantined, its other unaudited task is
// invalidated and re-queued, and honest workers re-verify everything.
func TestByzantineLiarQuarantined(t *testing.T) {
	spec := auditSpec(t, 2) // 2 points x 2 measures / chunk 2 = 2 tasks
	coord := NewCoordinator(CoordinatorOptions{Dir: t.TempDir(), LeaseTTL: time.Minute, AuditRate: 1})
	defer coord.Close()
	now := time.Unix(1000, 0)
	coord.now = func() time.Time { return now }
	id, err := coord.AddJob(spec)
	if err != nil {
		t.Fatal(err)
	}

	// The liar computes both tasks — wrongly.
	lease := mustLease(t, coord, id, "liar", 2)
	t1, t2 := lease.Tasks[0], lease.Tasks[1]
	mustIngest(t, coord, id, "liar", t1, lyingVals(t1))
	mustIngest(t, coord, id, "liar", t2, lyingVals(t2))
	if snap := mustProgress(t, coord, id); snap.Audits != 2 {
		t.Fatalf("both tasks should be under audit: %+v", snap)
	}

	// First honest worker re-computes both: two disputes open.
	aud := mustLease(t, coord, id, "good1", 2)
	for _, lt := range aud.Tasks {
		mustIngest(t, coord, id, "good1", lt, honestVals(lt))
	}

	// Second honest worker arbitrates task 1 and confirms good1's
	// value: the liar is quarantined on the spot, and its OTHER
	// unaudited task is invalidated and re-queued.
	arb := mustLease(t, coord, id, "good2", 2)
	ack := mustIngest(t, coord, id, "good2", arb.Tasks[0], honestVals(arb.Tasks[0]))
	if ack.Duplicate {
		t.Fatalf("confirming arbitration upload should be a fresh accept, got %+v", ack)
	}
	if q := coord.Quarantined(); len(q) != 1 || q[0] != "liar" {
		t.Fatalf("quarantined = %v, want exactly [liar]", q)
	}
	snap := mustProgress(t, coord, id)
	if snap.Done != 1 || snap.Pending != 1 || snap.Complete {
		t.Fatalf("after quarantine: %+v, want the liar's unaudited task re-queued", snap)
	}

	// The corrected record carries the honest value and producer.
	coord.mu.Lock()
	j := coord.jobs[id]
	if !equalValues(j.results[t1.Task], honestVals(t1)) || j.doneBy[t1.Task] != "good1" {
		t.Errorf("task %s record = %v by %q, want good1's honest value", t1.Task, j.results[t1.Task], j.doneBy[t1.Task])
	}
	coord.mu.Unlock()

	// The quarantined liar is refused everywhere.
	if _, err := coord.Lease(context.Background(), id, "liar", 1); !errors.Is(err, errQuarantined) {
		t.Fatalf("liar lease: err = %v, want quarantine rejection", err)
	}
	if _, err := coord.Ingest(context.Background(), id, ResultUpload{Worker: "liar", Task: t2.Task, Values: honestVals(t2)}); !errors.Is(err, errQuarantined) {
		t.Fatalf("liar ingest: err = %v, want quarantine rejection", err)
	}
	if _, err := coord.Heartbeat(context.Background(), id, HeartbeatRequest{Worker: "liar", Tasks: []string{t2.Task}}); !errors.Is(err, errQuarantined) {
		t.Fatalf("liar heartbeat: err = %v, want quarantine rejection", err)
	}

	// good2 re-computes the re-queued task; good1 verifies it. No
	// unaudited result survives.
	re := mustLease(t, coord, id, "good2", 1)
	mustIngest(t, coord, id, "good2", re.Tasks[0], honestVals(re.Tasks[0]))
	ver := mustLease(t, coord, id, "good1", 1)
	mustIngest(t, coord, id, "good1", ver.Tasks[0], honestVals(ver.Tasks[0]))

	snap = mustProgress(t, coord, id)
	if !snap.Complete || snap.Audits != 0 {
		t.Fatalf("final state: %+v, want complete with audits settled", snap)
	}
	coord.mu.Lock()
	for _, tid := range j.order {
		if !j.verified[tid] {
			t.Errorf("task %s completed unverified", tid)
		}
		if by := j.doneBy[tid]; by == "liar" {
			t.Errorf("task %s still attributed to the quarantined liar", tid)
		}
	}
	coord.mu.Unlock()
}

// TestQuarantineOverHTTP pins the wire shape of a quarantine verdict:
// HTTP 429 with Retry-After and the X-Grid-Quarantined marker, which
// the client surfaces as ErrWorkerQuarantined without retrying.
func TestQuarantineOverHTTP(t *testing.T) {
	spec := auditSpec(t, 2)
	coord := NewCoordinator(CoordinatorOptions{LeaseTTL: time.Minute})
	defer coord.Close()
	id, err := coord.AddJob(spec)
	if err != nil {
		t.Fatal(err)
	}
	coord.Quarantine("bad")
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/v1/jobs/"+id+"/lease", "application/json",
		jsonBody(t, LeaseRequest{Worker: "bad", MaxTasks: 1}))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("quarantined lease status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" || resp.Header.Get(HeaderQuarantined) != "1" {
		t.Fatalf("quarantine response headers = %v, want Retry-After and %s", resp.Header, HeaderQuarantined)
	}

	err = Work(context.Background(), srv.URL, id, WorkerOptions{
		Name: "bad", Workers: 1, Reconnect: time.Minute, // reconnect must NOT mask a verdict
	})
	if !errors.Is(err, ErrWorkerQuarantined) {
		t.Fatalf("quarantined Work: err = %v, want ErrWorkerQuarantined", err)
	}
}

// TestHedgedLease: a straggling lease gets one speculative duplicate,
// the first upload wins, the loser is absorbed as a duplicate — and
// hedges never count toward the job's fair-share deficit.
func TestHedgedLease(t *testing.T) {
	spec := auditSpec(t, 2) // 2 tasks
	coord := NewCoordinator(CoordinatorOptions{LeaseTTL: time.Minute, Hedge: true})
	now := time.Unix(1000, 0)
	coord.now = func() time.Time { return now }
	id, err := coord.AddJob(spec)
	if err != nil {
		t.Fatal(err)
	}

	lease := mustLease(t, coord, id, "slow", 2)
	mustLease(t, coord, id, "fast", 0) // too fresh to hedge

	now = now.Add(31 * time.Second) // past the leaseTTL/2 straggler bar
	hedge := mustLease(t, coord, id, "fast", 2)
	if hedge.Tasks[0].Task != lease.Tasks[0].Task || hedge.Tasks[1].Task != lease.Tasks[1].Task {
		t.Fatalf("hedged %v, want the straggling %v", hedge.Tasks, lease.Tasks)
	}
	coord.mu.Lock()
	j := coord.jobs[id]
	for _, lt := range lease.Tasks {
		if st := j.tasks[lt.Task]; st.hedgeWorker != "fast" || st.worker != "slow" {
			t.Fatalf("hedge state for %s = %q racing %q, want fast racing slow", lt.Task, st.hedgeWorker, st.worker)
		}
	}
	if j.leasesGranted != 2 {
		t.Fatalf("leasesGranted = %d after hedging, want 2 — hedges must not count toward the deficit", j.leasesGranted)
	}
	coord.mu.Unlock()

	// The racer wins both; the primary's late uploads are duplicates.
	for _, lt := range lease.Tasks {
		if ack := mustIngest(t, coord, id, "fast", lt, honestVals(lt)); ack.Duplicate {
			t.Fatalf("winning hedge upload acked as duplicate: %+v", ack)
		}
	}
	for _, lt := range lease.Tasks {
		if ack := mustIngest(t, coord, id, "slow", lt, honestVals(lt)); !ack.Duplicate {
			t.Fatalf("losing primary upload should be a duplicate: %+v", ack)
		}
	}
	if snap := mustProgress(t, coord, id); !snap.Complete {
		t.Fatalf("job incomplete after hedge won: %+v", snap)
	}
}

// TestHedgePromotion: when the straggling primary's lease expires with
// a live hedge outstanding, the racer inherits the task instead of it
// going back in the queue.
func TestHedgePromotion(t *testing.T) {
	spec := auditSpec(t, 2)
	coord := NewCoordinator(CoordinatorOptions{LeaseTTL: time.Minute, Hedge: true})
	now := time.Unix(1000, 0)
	coord.now = func() time.Time { return now }
	id, err := coord.AddJob(spec)
	if err != nil {
		t.Fatal(err)
	}

	lease := mustLease(t, coord, id, "slow", 2)
	now = now.Add(31 * time.Second)
	mustLease(t, coord, id, "fast", 2) // the hedges

	now = now.Add(35 * time.Second) // primaries expired (t+66s), hedges live until t+91s
	snap := mustProgress(t, coord, id)
	if snap.Requeues != 2 || snap.Leased != 2 || snap.Pending != 0 {
		t.Fatalf("after primary expiry: %+v, want both hedges promoted in place", snap)
	}
	coord.mu.Lock()
	for _, lt := range lease.Tasks {
		if st := coord.jobs[id].tasks[lt.Task]; st.worker != "fast" || st.hedgeWorker != "" {
			t.Fatalf("promotion of %s: owner %q hedge %q, want fast owning with no hedge", lt.Task, st.worker, st.hedgeWorker)
		}
	}
	coord.mu.Unlock()

	for _, lt := range lease.Tasks {
		mustIngest(t, coord, id, "fast", lt, honestVals(lt))
	}
	if snap := mustProgress(t, coord, id); !snap.Complete {
		t.Fatalf("job incomplete after promoted hedges finished: %+v", snap)
	}
}
