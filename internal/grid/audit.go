package grid

import (
	"hash/fnv"
	"math"
	"time"

	"repro/internal/job"
)

// Result audit + quarantine: the BAR-tolerance layer. The determinism
// contract (Domain.ScoreSlice is a pure function of the point
// identity) makes verification cheap — re-running a task on a second
// worker must reproduce the recorded values bit for bit. The
// coordinator silently re-leases a deterministic AuditRate fraction of
// completed tasks to a *different* worker (the wire shape is an
// ordinary lease; a rational or Byzantine worker cannot tell an audit
// from real work) and byte-compares the scores.
//
// Arbitration is value-voting: the recorded result holds one implicit
// vote (its producer); the first value claimed by two distinct workers
// wins. A match verifies the task. A mismatch escalates to a third
// worker; whichever of the two claims it confirms wins, and the
// loser's producer is quarantined — leases and uploads answered 429,
// every done-but-unaudited task it produced invalidated on disk and
// re-queued. Three distinct values mean the determinism contract
// itself is broken: the task is invalidated and re-run, loudly, with
// no quarantine (the fault is ours, not a worker's).
//
// Guaranteed liar detection needs >= 3 workers (2 honest); with fewer,
// eligibility constraints relax after a lease TTL so audits cannot
// wedge a small grid — at the documented cost that a sole surviving
// worker can confirm its own results.

type auditPhase int

const (
	auditPending auditPhase = iota // waiting for a second opinion
	auditLeased                    // second opinion computing
	arbPending                     // values split; waiting for a tiebreaker
	arbLeased                      // tiebreaker computing
)

// auditState tracks one task's open audit. Entries live in
// gridJob.audits, keyed by task ID, and gate job completion: a job is
// complete only when every task is done AND every audit is settled.
type auditState struct {
	task       job.Task
	original   string // producer of the recorded value ("" if unknown)
	phase      auditPhase
	auditor    string    // worker currently re-computing (audit or arb lease)
	deadline   time.Time // auditor's lease deadline
	relaxAt    time.Time // when worker-exclusion constraints loosen
	giveUpAt   time.Time // arb only: when an unresolvable split re-queues instead
	second     string    // the mismatching second worker (arb phases)
	secondVals []float64
}

// auditSelected is the deterministic sampling decision: a pure
// function of (job, task, rate), so a restarted coordinator re-selects
// exactly the tasks whose audits were in flight at the crash, and a
// worker cannot influence whether its work gets checked.
func auditSelected(jobID, taskID string, rate float64) bool {
	if rate <= 0 {
		return false
	}
	if rate >= 1 {
		return true
	}
	h := fnv.New64a()
	h.Write([]byte(jobID))
	h.Write([]byte{'/'})
	h.Write([]byte(taskID))
	return float64(h.Sum64()>>11)/float64(1<<53) < rate
}

func (c *Coordinator) auditEnabled() bool { return c.opts.AuditRate > 0 }

// openAuditLocked opens (idempotently) the audit entry for a completed
// task whose recorded value came from original.
func (c *Coordinator) openAuditLocked(j *gridJob, t job.Task, original string) {
	tid := t.ID()
	if _, ok := j.audits[tid]; ok || j.verified[tid] {
		return
	}
	j.audits[tid] = &auditState{
		task: t, original: original,
		relaxAt: c.now().Add(c.opts.leaseTTL()),
	}
	c.metrics.auditsOpened.Inc()
}

// auditRenewLocked extends an audit/arbitration lease held by worker,
// so heartbeats keep re-checks alive exactly like ordinary leases.
func (c *Coordinator) auditRenewLocked(j *gridJob, tid, worker string, deadline time.Time) bool {
	ast, ok := j.audits[tid]
	if !ok || worker == "" || ast.auditor != worker {
		return false
	}
	if ast.phase != auditLeased && ast.phase != arbLeased {
		return false
	}
	ast.deadline = deadline
	return true
}

// auditExpireLocked lazily expires audit leases whose holder went
// silent (back to pending, scored against the holder) and re-queues
// arbitrations that ran out of road (no third worker ever arrived).
// Runs from expireLocked, so every API call that looks at task state
// keeps audits live too.
func (c *Coordinator) auditExpireLocked(j *gridJob, now time.Time) {
	for tid, ast := range j.audits {
		if (ast.phase == auditLeased || ast.phase == arbLeased) && ast.deadline.Before(now) {
			c.workerFailedLocked(ast.auditor)
			ast.auditor = ""
			ast.relaxAt = now.Add(c.opts.leaseTTL())
			if ast.phase == auditLeased {
				ast.phase = auditPending
			} else {
				ast.phase = arbPending
			}
		}
		if ast.phase == arbPending && !ast.giveUpAt.IsZero() && ast.giveUpAt.Before(now) {
			// Unresolvable split (e.g. both claimants quarantine-proof
			// in a 2-worker grid): discard both claims and re-run.
			c.logf("grid: job %s: task %s audit split unresolved (%q vs %q), re-queueing",
				j.id, tid, ast.original, ast.second)
			c.invalidateTaskLocked(j, tid)
			delete(j.audits, tid)
		}
	}
}

// grantAuditsLocked fills up to room lease slots with audit re-leases
// worker is eligible for. Audits are granted before pending work: a
// handful of re-checks catching a liar early is worth more than the
// same slots of fresh work it would poison.
func (c *Coordinator) grantAuditsLocked(j *gridJob, worker string, room int, now time.Time, deadline time.Time) []LeaseTask {
	if worker == "" || room <= 0 || len(j.audits) == 0 {
		return nil
	}
	var out []LeaseTask
	for _, tid := range j.order {
		if len(out) == room {
			break
		}
		ast, ok := j.audits[tid]
		if !ok {
			continue
		}
		relaxed := !now.Before(ast.relaxAt)
		switch ast.phase {
		case auditPending:
			// Prefer a different worker than the producer; relax so a
			// sole surviving worker cannot wedge the job.
			if worker == ast.original && !relaxed {
				continue
			}
		case arbPending:
			// The producer may never arbitrate its own dispute (a
			// deterministic liar would confirm itself); the second
			// claimant re-computing is equally useless.
			if worker == ast.original || worker == ast.second {
				continue
			}
		default:
			continue
		}
		if ast.phase == auditPending {
			ast.phase = auditLeased
		} else {
			ast.phase = arbLeased
		}
		ast.auditor = worker
		ast.deadline = deadline
		t := ast.task
		out = append(out, LeaseTask{
			Task: tid, Measure: t.Measure, Lo: t.Lo, Hi: t.Hi,
			TTLMS: deadline.Sub(now).Milliseconds(),
		})
		c.walAppendLocked(false, walRecord{T: walLease, Job: j.id, Task: tid, Worker: worker})
	}
	return out
}

// equalValues is the audit comparison: bit-exact, NaN-tolerant (a
// domain may legitimately score NaN, and two honest workers produce
// the same NaN payload via the same code path).
func equalValues(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// auditIngestLocked consumes an upload for an already-done task under
// the audit regime and returns the ack plus work to run after the
// coordinator lock is released (checkpoint invalidations from a
// quarantine). Value-voting:
//
//	upload == recorded            → verified (two workers agree)
//	first mismatch                → escalate to arbitration
//	upload == second claim        → recorded was the lie: fix the
//	                                 record, quarantine its producer
//	third distinct value          → determinism broken: re-run, loudly
func (c *Coordinator) auditIngestLocked(j *gridJob, st *taskState, up ResultUpload) (ResultAck, func()) {
	tid := up.Task
	recorded := j.results[tid]
	ast := j.audits[tid]
	vals := []float64(up.Values)
	elapsed := time.Duration(up.ElapsedMS) * time.Millisecond

	// Uploads that carry no audit information: the producer re-sending
	// its own value, or anything after verification settled.
	if up.Worker == "" || j.verified[tid] || (up.Worker == j.doneBy[tid] && ast == nil) {
		c.metrics.duplicates.Inc()
		c.touchWorkerLocked(up.Worker)
		return ResultAck{Accepted: true, Duplicate: true}, nil
	}

	if equalValues(vals, recorded) {
		// Agreement with the record verifies it — whether this upload
		// was the assigned auditor, a hedge loser, or a stray retry.
		c.workerDoneLocked(up.Worker, elapsed)
		c.markVerifiedLocked(j, st.task, up.Worker)
		return ResultAck{Accepted: true, Duplicate: true}, nil
	}

	// Mismatch against the record.
	c.metrics.auditMismatches.Inc()
	now := c.now()
	if ast == nil || ast.second == "" {
		// First dissent: open (or escalate) to arbitration.
		c.workerDoneLocked(up.Worker, elapsed)
		if ast == nil {
			ast = &auditState{task: st.task, original: j.doneBy[tid]}
			j.audits[tid] = ast
			c.metrics.auditsOpened.Inc()
		}
		ast.phase = arbPending
		ast.auditor = ""
		ast.second = up.Worker
		ast.secondVals = vals
		ast.relaxAt = now.Add(c.opts.leaseTTL())
		ast.giveUpAt = now.Add(4 * c.opts.leaseTTL())
		c.logf("grid: job %s: task %s AUDIT MISMATCH: %q disagrees with recorded value from %q, arbitrating",
			j.id, tid, up.Worker, ast.original)
		c.broadcastLocked(j)
		return ResultAck{Accepted: true, Duplicate: true}, nil
	}

	if up.Worker == ast.second {
		// The dissenter repeating itself adds no information.
		c.metrics.duplicates.Inc()
		c.touchWorkerLocked(up.Worker)
		return ResultAck{Accepted: true, Duplicate: true}, nil
	}

	if equalValues(vals, ast.secondVals) {
		// Two workers agree on a value that contradicts the record:
		// the recorded producer lied. Fix the record (synchronously —
		// quarantine verdicts are rare enough to fsync under the
		// lock), then quarantine.
		c.workerDoneLocked(up.Worker, elapsed)
		liar := ast.original
		j.results[tid] = vals
		j.doneBy[tid] = ast.second
		if j.cp != nil {
			if err := j.cp.Record(st.task, vals, elapsed); err != nil {
				c.logf("grid: job %s: task %s corrected value failed to journal: %v", j.id, tid, err)
			}
		}
		c.markVerifiedLocked(j, st.task, up.Worker)
		after := c.quarantineLocked(liar, "audit of task "+tid+" overruled its value")
		return ResultAck{Accepted: true}, after
	}

	// Three distinct values for one deterministic task: the
	// determinism contract is broken (or two liars collide). Re-run.
	c.workerDoneLocked(up.Worker, elapsed)
	c.logf("grid: job %s: task %s has THREE distinct claimed values (%q, %q, %q) — determinism violation, re-queueing",
		j.id, tid, ast.original, ast.second, up.Worker)
	c.invalidateTaskLocked(j, tid)
	delete(j.audits, tid)
	c.broadcastLocked(j)
	return ResultAck{Accepted: true, Duplicate: true}, nil
}

// markVerifiedLocked settles a task's audit as confirmed: the verify
// record hits the WAL (fsynced — a verdict must not be re-litigated
// after a power loss), the deferred cache feed happens, and completion
// is re-checked.
func (c *Coordinator) markVerifiedLocked(j *gridJob, t job.Task, by string) {
	tid := t.ID()
	if j.verified[tid] {
		return
	}
	j.verified[tid] = true
	delete(j.audits, tid)
	delete(j.tainted, tid)
	c.metrics.auditsPassed.Inc()
	c.walAppendLocked(true, walRecord{T: walVerify, Job: j.id, Task: tid, Worker: by})
	c.feedCacheLocked(j, t, j.results[tid])
	c.finishIfCompleteLocked(j)
	c.broadcastLocked(j)
}

// invalidateTaskLocked drops a done task's recorded value and
// re-queues it. The on-disk result file is removed first (one unlink +
// dir sync — cheap enough for this rare path to run under the lock),
// so a crash in between re-runs the task instead of resurrecting the
// dropped value. Batch invalidations (quarantine) use the deferred
// path instead.
func (c *Coordinator) invalidateTaskLocked(j *gridJob, tid string) {
	st, ok := j.tasks[tid]
	if !ok || st.status != taskDone {
		return
	}
	if j.cp != nil {
		if err := j.cp.Invalidate(st.task); err != nil {
			c.logf("grid: job %s: task %s invalidation: %v", j.id, tid, err)
		}
	}
	st.status = taskPending
	st.worker = ""
	j.done--
	delete(j.results, tid)
	delete(j.doneBy, tid)
	delete(j.verified, tid)
	j.tainted[tid] = true
	j.scores, j.scoresErr = nil, nil
	c.metrics.invalidated.Inc()
}

// quarantineLocked bans a worker and expunges its unaudited work:
// leases revoked, every done-but-unverified task it produced is
// invalidated (result files deleted in the returned func, which the
// caller runs after releasing the lock) and re-queued. Verified tasks
// survive — a second worker vouched for them.
func (c *Coordinator) quarantineLocked(name, reason string) func() {
	if name == "" || c.quarantined[name] {
		return nil
	}
	c.quarantined[name] = true
	c.metrics.quarantines.Inc()
	c.walAppendLocked(true, walRecord{T: walQuarantine, Worker: name})
	c.logf("grid: worker %s QUARANTINED: %s", name, reason)

	type inval struct {
		j  *gridJob
		st *taskState
	}
	var invals []inval
	for _, j := range c.jobs {
		revoked := 0
		for _, st := range j.tasks {
			if st.status == taskLeased && st.worker == name {
				st.status = taskPending
				st.worker = ""
				j.requeues++
				revoked++
			}
			if st.hedgeWorker == name {
				st.hedgeWorker = ""
				st.hedgeDeadline = time.Time{}
			}
		}
		if revoked > 0 {
			c.metrics.requeues.Add(float64(revoked))
		}
		for _, ast := range j.audits {
			// Audits the liar was computing go back to the pool; a
			// dispute the liar raised dissolves (its claim is void).
			if ast.auditor == name {
				ast.auditor = ""
				if ast.phase == auditLeased {
					ast.phase = auditPending
				} else if ast.phase == arbLeased {
					ast.phase = arbPending
				}
			}
			if ast.second == name {
				ast.second = ""
				ast.secondVals = nil
				ast.giveUpAt = time.Time{}
				if ast.phase == arbPending || ast.phase == arbLeased {
					ast.phase = auditPending
					ast.auditor = ""
				}
			}
		}
		for tid, by := range j.doneBy {
			if by != name || j.verified[tid] {
				continue
			}
			st := j.tasks[tid]
			if st == nil || st.status != taskDone || st.recording {
				continue
			}
			// Claim the task like an in-flight ingest so nothing races
			// the unlocked file deletion.
			st.recording = true
			delete(j.audits, tid)
			invals = append(invals, inval{j: j, st: st})
		}
		c.broadcastLocked(j)
	}

	if len(invals) == 0 {
		return func() {}
	}
	return func() {
		// Disk first: once the result files are gone, a crash anywhere
		// below re-runs the tasks instead of resurrecting the lies.
		for _, iv := range invals {
			if iv.j.cp != nil {
				if err := iv.j.cp.Invalidate(iv.st.task); err != nil {
					c.logf("grid: job %s: task %s invalidation: %v", iv.j.id, iv.st.task.ID(), err)
				}
			}
		}
		c.mu.Lock()
		defer c.mu.Unlock()
		byJob := map[*gridJob]int{}
		for _, iv := range invals {
			j, st := iv.j, iv.st
			tid := st.task.ID()
			st.recording = false
			if st.status != taskDone {
				continue
			}
			st.status = taskPending
			st.worker = ""
			j.done--
			delete(j.results, tid)
			delete(j.doneBy, tid)
			j.tainted[tid] = true
			j.scores, j.scoresErr = nil, nil
			byJob[j]++
		}
		for j, n := range byJob {
			c.metrics.invalidated.Add(float64(n))
			c.logf("grid: job %s: %d unaudited tasks from %s invalidated and re-queued", j.id, n, name)
			c.broadcastLocked(j)
		}
		c.checkDrainedLocked()
	}
}

// Quarantine bans a worker by operator decision: same mechanics as an
// audit verdict (429'd leases and uploads, unaudited work re-queued).
func (c *Coordinator) Quarantine(name string) {
	c.mu.Lock()
	after := c.quarantineLocked(name, "operator request")
	c.mu.Unlock()
	if after != nil {
		after()
	}
}

// Quarantined lists quarantined workers (for the dashboard and tests).
func (c *Coordinator) Quarantined() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.quarantined))
	for name := range c.quarantined {
		out = append(out, name)
	}
	return out
}
