package grid

import (
	"context"
	"crypto/sha256"
	"crypto/subtle"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"net"
	"net/http"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/dsa"
	"repro/internal/gridobs"
	"repro/internal/job"
	"repro/internal/profiling"
)

// Defaults for CoordinatorOptions zero values.
const (
	DefaultLeaseTTL = 30 * time.Second
	DefaultMaxLease = 4
	// DefaultMaxBody caps request bodies; a result upload for a huge
	// task fits comfortably, a runaway or hostile body does not.
	DefaultMaxBody = 64 << 20
)

// CoordinatorOptions configures a Coordinator.
type CoordinatorOptions struct {
	// Dir is the checkpoint root; each job journals into Dir/<job-id>
	// in the internal/job checkpoint format, so a restarted
	// coordinator resumes where it left off and job.Load/dsa-report
	// read the directory directly. Shipped worker traces are collected
	// under Dir/<job-id>/trace/ in the internal/obs journal format.
	// "" keeps results in memory only (collected traces then live in a
	// temp dir removed on Close).
	Dir string
	// LeaseTTL is how long a lease lives without a heartbeat before
	// its task is re-queued. 0 = DefaultLeaseTTL.
	LeaseTTL time.Duration
	// MaxLease caps tasks granted per lease call. 0 = DefaultMaxLease.
	MaxLease int
	// Logf, if non-nil, receives coordinator event logs.
	Logf func(format string, args ...any)
	// CSV renders assembled scores for the results endpoint's
	// ?format=csv. nil = the generic dsa.WriteCSV layout; callers that
	// want domain-bespoke layouts (exp.WriteDomainCSV keeps swarming
	// CSVs interchangeable with dsa-sweep output) inject them here —
	// the grid itself stays domain-agnostic.
	CSV func(w io.Writer, d dsa.Domain, s *dsa.Scores) error
	// Cache, if non-nil, is the coordinator's cross-job score cache.
	// Every ingested or checkpoint-restored result feeds it, and every
	// job draws from it: a task whose per-point scores are all already
	// known is served as an ingested result (journalled, counted done)
	// instead of ever being leased — so overlapping jobs, whatever
	// their chunking, pay for each score once. Stats are served on
	// GET /v1/cache.
	Cache dsa.ScoreCache

	// AuthToken, when non-empty, switches on shared-secret worker
	// auth: lease, heartbeat, result upload, job creation and drain
	// require `Authorization: Bearer <token>` (compared in constant
	// time). Read-only endpoints — listings, progress, results,
	// metrics, the dashboard — stay open so operators can observe a
	// grid they cannot drive.
	AuthToken string
	// RateLimit is the per-client admission rate in requests/second
	// against the /v1 API (metrics scrapes are never limited); 0
	// disables limiting. Clients are keyed by remote IP.
	RateLimit float64
	// RateBurst is the token-bucket burst capacity; 0 derives a
	// one-second burst from RateLimit.
	RateBurst float64
	// MaxBody caps request body bytes; oversized bodies are rejected
	// with 413 before any decoding. 0 = DefaultMaxBody.
	MaxBody int64
	// Pprof, when set, mounts net/http/pprof under /debug/pprof/ on
	// the coordinator mux, behind the same bearer auth as the write
	// endpoints when AuthToken is set.
	Pprof bool

	// AuditRate is the fraction (0..1) of completed tasks silently
	// re-leased to a different worker for byte-exact verification (see
	// audit.go). Selection is a deterministic hash of (job, task), so
	// restarts re-arm exactly the audits that were open. 0 disables
	// auditing; with auditing on, the score cache is fed only by
	// audit-verified values for the selected tasks.
	AuditRate float64
	// Hedge enables speculative duplicate leases: a leased task past
	// the straggler threshold (slowFactor x the fleet-mean EWMA task
	// latency, floored at half the lease TTL) is offered once more to
	// a different worker; the first idempotent ingest wins. Off by
	// default — hedging trades duplicate compute for tail latency.
	Hedge bool
}

func (o CoordinatorOptions) leaseTTL() time.Duration {
	if o.LeaseTTL > 0 {
		return o.LeaseTTL
	}
	return DefaultLeaseTTL
}

func (o CoordinatorOptions) maxLease() int {
	if o.MaxLease > 0 {
		return o.MaxLease
	}
	return DefaultMaxLease
}

func (o CoordinatorOptions) maxBody() int64 {
	if o.MaxBody > 0 {
		return o.MaxBody
	}
	return DefaultMaxBody
}

// Coordinator owns grid jobs: it serves leases, ingests results into
// the checkpoint format, and exposes the live JSON API plus /metrics
// and the dashboard. Create one with NewCoordinator, register sweeps
// with AddJob (or let clients POST them), and mount Handler on an HTTP
// server (or call Serve).
type Coordinator struct {
	opts    CoordinatorOptions
	now     func() time.Time // injectable clock for tests
	started time.Time
	metrics *gridMetrics
	limiter *gridobs.Limiter
	traces  *traceCollector // collected worker journals + federated snapshots

	mu      sync.Mutex
	jobs    map[string]*gridJob
	workers map[string]*workerStats
	// quarantined workers get 429 on every lease, heartbeat and
	// upload; membership survives restarts via the WAL.
	quarantined map[string]bool
	// wal journals scheduling state (nil without Dir, or after an open
	// failure — the grid then runs, loudly, without crash recovery).
	wal *wal
	// walRecs holds replayed per-job WAL records until AddJob
	// registers the matching job and consumes them.
	walRecs map[string][]walRecord
	// cacheEpoch counts cache-feeding events (ingests, checkpoint
	// restores). Each job remembers the epoch it last scanned the
	// cache at, so the pending-task rescan in Lease runs only when
	// the cache could actually have gained something — not on every
	// poll of an idle grid.
	cacheEpoch uint64

	// draining is set by Drain: no new leases are granted, and once
	// every in-flight lease settles (uploads or expires) drainDone is
	// closed — the graceful-exit signal Serve and dsa-grid wait on.
	draining    bool
	drainClosed bool
	drainDone   chan struct{}
}

type taskStatus int

const (
	taskPending taskStatus = iota
	taskLeased
	taskDone
)

type taskState struct {
	task      job.Task
	status    taskStatus
	worker    string
	deadline  time.Time
	leasedAt  time.Time // last lease grant, for the lease-latency histogram
	recording bool      // an Ingest is journalling this task outside the lock

	// Speculative duplicate lease (CoordinatorOptions.Hedge): a second
	// worker racing the straggling primary. First ingest wins; a dead
	// primary promotes the hedge instead of re-queueing.
	hedgeWorker   string
	hedgeDeadline time.Time
}

type gridJob struct {
	id        string
	spec      job.Spec
	specRaw   json.RawMessage
	weight    int      // fair-share priority weight, >= 1
	order     []string // task IDs in canonical enumeration order
	tasks     map[string]*taskState
	results   map[string][]float64
	cp        *job.Checkpoint // nil without a checkpoint dir
	done      int
	requeues  int
	restored  int       // tasks restored from checkpoint at registration
	startedAt time.Time // first lease grant; anchors the ETA estimate
	// leasesGranted counts tasks handed out on leases (re-leases
	// included) — the fair scheduler's deficit measure.
	leasesGranted int
	scores        *dsa.Scores // assembled once complete
	scoresErr     error
	changed       chan struct{} // closed and replaced on every state change

	// Score-cache plumbing (nil/zero without CoordinatorOptions.Cache):
	// the job's key derivation context and per-point IDs, the epoch of
	// its last cache scan, and how many of its tasks the cache served.
	keyer         *dsa.ScoreKeyer
	ids           []int // stable point IDs aligned with spec.Points
	absorbedEpoch uint64
	cacheServed   int

	// Audit bookkeeping (audit.go). doneBy is maintained regardless of
	// AuditRate — it is what the WAL replays and what a later
	// quarantine sweeps.
	doneBy   map[string]string      // task ID -> worker whose value is on record
	verified map[string]bool        // task ID -> audit-confirmed
	audits   map[string]*auditState // open audits, gate job completion
	// tainted marks tasks whose recorded value was invalidated: the
	// cache may still hold the bad per-point scores, so the absorb
	// scan must not serve them back until an honest re-run overwrites.
	tainted map[string]bool
}

// completeLocked is the job-completion predicate: every task done AND
// every audit settled — a job with open audits may still re-queue work.
func (j *gridJob) completeLocked() bool {
	return j.done == len(j.order) && len(j.audits) == 0
}

// NewCoordinator returns an empty coordinator.
func NewCoordinator(opts CoordinatorOptions) *Coordinator {
	// cacheEpoch starts at 1 so a fresh job (absorbedEpoch zero value
	// 0) always runs its first cache scan, even before any ingest.
	c := &Coordinator{
		opts:        opts,
		now:         time.Now,
		started:     time.Now(),
		jobs:        map[string]*gridJob{},
		workers:     map[string]*workerStats{},
		quarantined: map[string]bool{},
		walRecs:     map[string][]walRecord{},
		cacheEpoch:  1,
		drainDone:   make(chan struct{}),
	}
	c.limiter = gridobs.NewLimiter(opts.RateLimit, opts.RateBurst)
	c.traces = newTraceCollector(opts.Dir, opts.Logf)
	c.metrics = newGridMetrics(c)
	if opts.Dir != "" {
		w, recs, skipped, err := openWAL(opts.Dir)
		if err != nil {
			// Run without crash recovery rather than not at all — but
			// say so every startup, loudly.
			c.logf("grid: WAL unavailable, coordinator runs WITHOUT crash recovery: %v", err)
		} else {
			c.wal = w
			c.replayWAL(recs)
			if len(recs) > 0 || skipped > 0 {
				c.logf("grid: wal: replayed %d records (%d corrupt lines skipped)", len(recs), skipped)
			}
			c.metrics.walReplayed.Set(float64(len(recs)))
		}
	}
	return c
}

// replayWAL applies the global (worker-level) effect of every record
// at construction time and stashes job-level records for AddJob to
// consume when the matching job registers. Runs before the coordinator
// is published, so no lock is needed (the *Locked helpers it calls
// only assert state, not the mutex).
func (c *Coordinator) replayWAL(recs []walRecord) {
	for _, r := range recs {
		switch r.T {
		case walQuarantine:
			c.quarantined[r.Worker] = true
			continue
		case walLease:
			if ws := c.touchWorkerLocked(r.Worker); ws != nil {
				ws.leased++
			}
		case walExpire:
			c.workerFailedLocked(r.Worker)
		case walIngest, walVerify:
			c.workerDoneLocked(r.Worker, time.Duration(r.ElapsedMS)*time.Millisecond)
		case walHedge:
			// Informational: hedges re-arm live if still warranted.
			continue
		}
		if r.Job != "" {
			c.walRecs[r.Job] = append(c.walRecs[r.Job], r)
		}
	}
	if n := len(c.quarantined); n > 0 {
		c.metrics.quarantines.Add(float64(n))
	}
}

// walAppendLocked journals records, logging (never failing the caller)
// on write trouble: the WAL losing a record degrades a future restart,
// not the current run. sync is reserved for verdict-grade records.
func (c *Coordinator) walAppendLocked(sync bool, recs ...walRecord) {
	if c.wal == nil || len(recs) == 0 {
		return
	}
	if err := c.wal.append(sync, recs...); err != nil {
		c.logf("grid: %v", err)
		return
	}
	c.metrics.walRecords.Add(float64(len(recs)))
}

// applyWALLocked replays j's stashed WAL records onto its freshly
// restored task table: checkpoint restore has already marked done
// tasks (values are the checkpoint's job), so this pass rebuilds the
// scheduler's view — outstanding leases (re-armed with a fresh TTL
// from *this* coordinator's clock), fair-share deficits, requeue
// counts, priority, producer attribution and audit verdicts.
func (c *Coordinator) applyWALLocked(j *gridJob) {
	recs := c.walRecs[j.id]
	if len(recs) == 0 {
		return
	}
	delete(c.walRecs, j.id)
	now := c.now()
	deadline := now.Add(c.opts.leaseTTL())
	for _, r := range recs {
		st := j.tasks[r.Task]
		switch r.T {
		case walPriority:
			if r.Weight >= 1 {
				j.weight = r.Weight
			}
		case walLease:
			j.leasesGranted++
			if st != nil && st.status == taskPending && !c.quarantined[r.Worker] {
				st.status = taskLeased
				st.worker = r.Worker
				st.leasedAt = now
				st.deadline = deadline
			}
		case walExpire:
			j.requeues++
			if st != nil && st.status == taskLeased && st.worker == r.Worker {
				st.status = taskPending
				st.worker = ""
			}
		case walIngest:
			if st == nil {
				continue
			}
			if st.status == taskDone {
				j.doneBy[r.Task] = r.Worker
			} else if st.status == taskLeased && st.worker == r.Worker {
				// The WAL saw the ingest but the checkpoint lost the
				// value (should not happen: Record syncs first). The
				// value is gone, so the task must re-run.
				st.status = taskPending
				st.worker = ""
			}
		case walVerify:
			if st != nil && st.status == taskDone {
				j.verified[r.Task] = true
			}
		}
	}
	c.logf("grid: job %s: wal replay applied %d records (priority %d, %d leases outstanding re-armed)",
		j.id, len(recs), j.weight, func() (n int) {
			for _, st := range j.tasks {
				if st.status == taskLeased {
					n++
				}
			}
			return
		}())
}

// Metrics exposes the coordinator's registry — what GET /metrics
// serves — for embedding callers that scrape in-process.
func (c *Coordinator) Metrics() *gridobs.Registry { return c.metrics.reg }

func (c *Coordinator) logf(format string, args ...any) {
	if c.opts.Logf != nil {
		c.opts.Logf(format, args...)
	}
}

// logfCtx is logf with the request ID (if the context carries one)
// appended, so every coordinator event triggered by an HTTP request
// can be correlated with its access-log line.
func (c *Coordinator) logfCtx(ctx context.Context, format string, args ...any) {
	if c.opts.Logf == nil {
		return
	}
	if rid := gridobs.RequestID(ctx); rid != "" {
		format += " rid=" + rid
	}
	c.opts.Logf(format, args...)
}

// jobID derives a stable identifier from the spec payload, so the same
// sweep always maps to the same job (idempotent creation) and a
// restarted coordinator reopens the same checkpoint subdirectory.
func jobID(domain string, specRaw []byte) string {
	h := fnv.New64a()
	h.Write(specRaw)
	return fmt.Sprintf("%s-%012x", domain, h.Sum64()&0xffffffffffff)
}

// AddJob registers a sweep at the default priority. Adding a spec that
// is already registered returns the existing job's ID. With a
// checkpoint dir configured, completed tasks are restored from disk
// before any lease is granted.
func (c *Coordinator) AddJob(spec job.Spec) (string, error) {
	return c.AddJobPriority(spec, 1)
}

// AddJobPriority registers a sweep with a fair-share weight: against
// other concurrent jobs, this job receives leased tasks in proportion
// to its priority (a priority-3 job gets ~3x the grant share of a
// priority-1 job while both have pending work). priority < 1 is
// treated as 1. Re-adding an existing job updates its priority.
func (c *Coordinator) AddJobPriority(spec job.Spec, priority int) (string, error) {
	if priority < 1 {
		priority = 1
	}
	if err := spec.Cfg.Validate(); err != nil {
		return "", err
	}
	if spec.Points == nil {
		spec.Points = spec.Domain.Space().Enumerate()
	}
	specRaw, err := job.EncodeSpec(spec)
	if err != nil {
		return "", err
	}
	id := jobID(spec.Domain.Name(), specRaw)

	c.mu.Lock()
	if j, ok := c.jobs[id]; ok {
		if j.weight != priority {
			j.weight = priority
			c.walAppendLocked(false, walRecord{T: walPriority, Job: id, Weight: priority})
			c.mu.Unlock()
			c.logf("grid: job %s priority set to %d", id, priority)
			return id, nil
		}
		c.mu.Unlock()
		return id, nil
	}
	j := &gridJob{
		id:       id,
		spec:     spec,
		specRaw:  specRaw,
		weight:   priority,
		tasks:    map[string]*taskState{},
		results:  map[string][]float64{},
		doneBy:   map[string]string{},
		verified: map[string]bool{},
		audits:   map[string]*auditState{},
		tainted:  map[string]bool{},
		changed:  make(chan struct{}),
	}
	for _, t := range spec.Tasks() {
		j.order = append(j.order, t.ID())
		j.tasks[t.ID()] = &taskState{task: t}
	}
	if c.opts.Cache != nil {
		keyer, err := dsa.NewScoreKeyer(spec.Domain, spec.Domain.SampleOpponents(spec.Cfg), spec.Cfg)
		if err != nil {
			c.mu.Unlock()
			return "", err
		}
		ids := make([]int, len(spec.Points))
		for i, p := range spec.Points {
			if ids[i], err = spec.Domain.PointID(p); err != nil {
				c.mu.Unlock()
				return "", err
			}
		}
		j.keyer, j.ids = keyer, ids
	}
	if c.opts.Dir != "" {
		cp, err := job.OpenCheckpoint(filepath.Join(c.opts.Dir, id), spec)
		if err != nil {
			c.mu.Unlock()
			return "", err
		}
		j.cp = cp
		for tid, vals := range cp.Completed() {
			st, ok := j.tasks[tid]
			if !ok || st.status == taskDone {
				continue
			}
			st.status = taskDone
			j.results[tid] = vals
			j.done++
		}
	}
	// WAL replay must see the restored task table (it re-arms leases
	// only on still-pending tasks) and must run before the cache feed
	// (it supplies the verified set and producer attribution the feed
	// policy consults).
	c.applyWALLocked(j)
	if c.opts.Dir != "" {
		for tid, vals := range j.results {
			st := j.tasks[tid]
			if c.quarantined[j.doneBy[tid]] && !j.verified[tid] {
				// A quarantine raced the crash: the on-disk expunge of
				// this liar's results did not finish. Finish it.
				c.invalidateTaskLocked(j, tid)
				continue
			}
			if c.auditEnabled() && !j.verified[tid] && auditSelected(j.id, tid, c.opts.AuditRate) {
				// Re-arm the audit instead of feeding the cache: with
				// auditing on, selected values feed only once verified.
				c.openAuditLocked(j, st.task, j.doneBy[tid])
				continue
			}
			c.feedCacheLocked(j, st.task, vals)
		}
	}
	j.restored = j.done
	// A restored job's own results never complete its own tasks, but
	// they must still trigger a scan of *this* job against what other
	// jobs cached before it arrived.
	j.absorbedEpoch = 0
	c.finishIfCompleteLocked(j)
	c.jobs[id] = j
	restored := j.done
	c.mu.Unlock()
	c.logf("grid: job %s registered: %d tasks (%d restored from checkpoint), priority %d", id, len(j.order), restored, priority)
	// Registration is visible before the absorb scan; a concurrent
	// Lease absorbing the same job is harmless (the epoch gate and
	// recording flags keep the work single-shot).
	c.absorbCache(j)
	return id, nil
}

// feedCacheLocked records one finished task's per-point scores in the
// cross-job cache and bumps the epoch so *other* jobs rescan their
// pending tasks on their next lease. The feeding job itself is marked
// up to date: one job's tasks partition its (measure, point) pairs, so
// its own results can never complete another of its own tasks, and
// counting self-feeds would make every single-job grid rescan all
// pending tasks after every ingest for nothing.
func (c *Coordinator) feedCacheLocked(j *gridJob, t job.Task, vals []float64) {
	if c.opts.Cache == nil || j.keyer == nil || len(vals) != t.Hi-t.Lo {
		return
	}
	for i := t.Lo; i < t.Hi; i++ {
		c.opts.Cache.Put(j.keyer.Key(t.Measure, j.ids[i]), vals[i-t.Lo])
	}
	c.cacheEpoch++
	j.absorbedEpoch = c.cacheEpoch
}

// absorbedTask is one task whose values the cache fully supplied,
// in flight between the locked scan and the locked finalize.
type absorbedTask struct {
	st   *taskState
	vals []float64
}

// collectCacheHitsLocked scans j's not-yet-done tasks against the
// cache and claims every full hit (recording=true, exactly like an
// in-flight ingest, so no lease/upload/second scan races it). The scan
// is memory-speed (key hashing + LRU/index lookups, no I/O) and is
// skipped entirely unless the cache gained foreign entries since this
// job last looked (see cacheEpoch).
func (c *Coordinator) collectCacheHitsLocked(j *gridJob) []absorbedTask {
	if c.opts.Cache == nil || j.keyer == nil || j.absorbedEpoch == c.cacheEpoch {
		return nil
	}
	j.absorbedEpoch = c.cacheEpoch
	if j.done == len(j.order) {
		return nil
	}
	var hits []absorbedTask
	for _, tid := range j.order {
		st := j.tasks[tid]
		// A tainted task's cached per-point scores may be the very lie
		// that was just invalidated — only an honest re-compute clears it.
		if st.status == taskDone || st.recording || j.tainted[tid] {
			continue
		}
		t := st.task
		vals := make([]float64, t.Hi-t.Lo)
		hit := true
		for i := t.Lo; i < t.Hi; i++ {
			v, ok := c.opts.Cache.Get(j.keyer.Key(t.Measure, j.ids[i]))
			if !ok {
				hit = false
				break
			}
			vals[i-t.Lo] = v
		}
		if hit {
			st.recording = true
			hits = append(hits, absorbedTask{st: st, vals: vals})
		}
	}
	return hits
}

// absorbCache serves every task of j whose per-point scores the cache
// already holds — journalling each through the checkpoint exactly like
// an uploaded result, so cache-served and worker-computed tasks are
// indistinguishable on disk and in the results (determinism makes
// their values identical by construction). Like Ingest, the journal
// writes (fsyncs) run outside the coordinator lock: a large absorbed
// job must not stall every other worker's leases and heartbeats behind
// a fsync train.
func (c *Coordinator) absorbCache(j *gridJob) {
	c.mu.Lock()
	hits := c.collectCacheHitsLocked(j)
	c.mu.Unlock()
	if len(hits) == 0 {
		return
	}

	errs := make([]error, len(hits))
	if j.cp != nil {
		for i, h := range hits {
			h := h
			errs[i] = func() (err error) {
				defer func() {
					if r := recover(); r != nil {
						err = fmt.Errorf("grid: task %s: checkpoint write panicked: %v", h.st.task.ID(), r)
					}
				}()
				return j.cp.Record(h.st.task, h.vals, 0)
			}()
		}
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	absorbed := 0
	for i, h := range hits {
		h.st.recording = false
		if errs[i] != nil {
			// Leave the task pending: a worker will compute and
			// re-upload it, taking the normal ingest error path.
			c.logf("grid: job %s: task %s cache absorption failed to journal: %v", j.id, h.st.task.ID(), errs[i])
			continue
		}
		h.st.status = taskDone
		h.st.worker = ""
		j.results[h.st.task.ID()] = h.vals
		j.done++
		absorbed++
	}
	if absorbed > 0 {
		j.cacheServed += absorbed
		c.metrics.cacheServed.Add(float64(absorbed))
		c.logf("grid: job %s: %d tasks served from the score cache", j.id, absorbed)
		c.finishIfCompleteLocked(j)
		c.broadcastLocked(j)
	}
	c.checkDrainedLocked()
}

// Close releases every job's checkpoint handle and the WAL.
func (c *Coordinator) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	var first error
	for _, j := range c.jobs {
		if j.cp != nil {
			if err := j.cp.Close(); err != nil && first == nil {
				first = err
			}
			j.cp = nil
		}
	}
	if c.wal != nil {
		if err := c.wal.Close(); err != nil && first == nil {
			first = err
		}
		c.wal = nil
	}
	if err := c.traces.Close(); err != nil && first == nil {
		first = err
	}
	return first
}

var (
	errUnknownJob  = errors.New("grid: unknown job")
	errUnknownTask = errors.New("grid: unknown task")
	errDraining    = errors.New("grid: coordinator is draining")
	errQuarantined = errors.New("grid: worker is quarantined")
)

func (c *Coordinator) getJob(id string) (*gridJob, error) {
	j, ok := c.jobs[id]
	if !ok {
		return nil, fmt.Errorf("%w %q", errUnknownJob, id)
	}
	return j, nil
}

// expireLocked requeues every lease whose deadline has passed, scoring
// the expiry against the worker that went silent. A task with a live
// hedge promotes the hedge to primary instead of re-queueing (the
// expiry still counts). Expiry is lazy: it runs at the top of every
// API call that looks at task state, which is the only time staleness
// could matter (plus the drain loop's ticks).
func (c *Coordinator) expireLocked(j *gridJob) {
	now := c.now()
	expired := 0
	for tid, st := range j.tasks {
		if st.status != taskLeased {
			continue
		}
		// A dead hedge clears quietly: the primary still owns the task.
		if st.hedgeWorker != "" && st.hedgeDeadline.Before(now) {
			c.workerFailedLocked(st.hedgeWorker)
			st.hedgeWorker = ""
			st.hedgeDeadline = time.Time{}
		}
		if !st.deadline.Before(now) {
			continue
		}
		c.workerFailedLocked(st.worker)
		c.walAppendLocked(false, walRecord{T: walExpire, Job: j.id, Task: tid, Worker: st.worker})
		j.requeues++
		expired++
		if st.hedgeWorker != "" {
			// Promote the live hedge: the task never goes back in the
			// queue, the racer simply becomes the owner.
			st.worker, st.deadline = st.hedgeWorker, st.hedgeDeadline
			st.hedgeWorker, st.hedgeDeadline = "", time.Time{}
			j.leasesGranted++
			c.walAppendLocked(false, walRecord{T: walLease, Job: j.id, Task: tid, Worker: st.worker})
			continue
		}
		st.status = taskPending
		st.worker = ""
	}
	c.auditExpireLocked(j, now)
	if expired > 0 {
		c.metrics.requeues.Add(float64(expired))
		c.logf("grid: job %s: %d leases expired, tasks re-queued", j.id, expired)
		c.broadcastLocked(j)
		c.checkDrainedLocked()
	}
}

func (c *Coordinator) broadcastLocked(j *gridJob) {
	close(j.changed)
	j.changed = make(chan struct{})
}

// finishIfCompleteLocked assembles the scores once the last task is
// done and the last audit settled. Assembly runs once per completion;
// an invalidation (quarantine) clears the cached result and reopens it.
func (c *Coordinator) finishIfCompleteLocked(j *gridJob) {
	if !j.completeLocked() || j.scores != nil || j.scoresErr != nil {
		return
	}
	j.scores, j.scoresErr = j.spec.AssembleScores(j.results)
	if j.scoresErr != nil {
		c.logf("grid: job %s: assembly failed: %v", j.id, j.scoresErr)
	} else {
		c.logf("grid: job %s complete: %d tasks, %d requeues", j.id, len(j.order), j.requeues)
	}
	c.broadcastLocked(j)
}

// grantLocked hands out up to max tasks of j to worker, shaping max by
// the worker's score first. Grant order: audit re-leases (a few
// re-checks catch a liar before it poisons more), then pending tasks,
// then — with hedging on and capacity to spare — speculative
// duplicates of straggling leases.
func (c *Coordinator) grantLocked(j *gridJob, worker string, max int) []LeaseTask {
	if c.quarantined[worker] {
		return nil
	}
	if max <= 0 || max > c.opts.maxLease() {
		max = c.opts.maxLease()
	}
	max = c.grantCapLocked(worker, max)
	ttl := c.opts.leaseTTL()
	now := c.now()
	deadline := now.Add(ttl)
	tasks := c.grantAuditsLocked(j, worker, max, now, deadline)
	granted := len(tasks) // audit + pending grants: what the deficit counts
	for _, tid := range j.order {
		if len(tasks) == max {
			break
		}
		st := j.tasks[tid]
		if st.status != taskPending {
			continue
		}
		st.status = taskLeased
		st.worker = worker
		st.deadline = deadline
		st.leasedAt = now
		tasks = append(tasks, LeaseTask{
			Task: tid, Measure: st.task.Measure, Lo: st.task.Lo, Hi: st.task.Hi,
			TTLMS: ttl.Milliseconds(),
		})
		granted++
		c.walAppendLocked(false, walRecord{T: walLease, Job: j.id, Task: tid, Worker: worker})
	}
	if c.opts.Hedge && len(tasks) < max {
		tasks = append(tasks, c.grantHedgesLocked(j, worker, max-len(tasks), now, deadline)...)
	}
	if len(tasks) > 0 {
		if j.startedAt.IsZero() {
			j.startedAt = now
		}
		j.leasesGranted += granted
		c.metrics.leasesGranted.Add(float64(granted))
		if ws := c.touchWorkerLocked(worker); ws != nil {
			ws.leased += len(tasks)
		}
		c.broadcastLocked(j)
	} else if worker != "" {
		// An empty grant is still a sign of life.
		c.touchWorkerLocked(worker)
	}
	return tasks
}

// Lease grants up to max pending tasks of one job to worker. While the
// coordinator drains, no tasks are granted and the response says so.
func (c *Coordinator) Lease(ctx context.Context, id, worker string, max int) (LeaseResponse, error) {
	c.metrics.leaseRequests.Inc()
	c.mu.Lock()
	j, err := c.getJob(id)
	if err != nil {
		c.mu.Unlock()
		return LeaseResponse{}, err
	}
	c.mu.Unlock()
	// Serve what the cache already knows before handing out leases:
	// overlapping jobs ingested since the last scan may have made
	// whole pending tasks free.
	c.absorbCache(j)
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.quarantined[worker] {
		return LeaseResponse{}, fmt.Errorf("%w: %s", errQuarantined, worker)
	}
	c.expireLocked(j)
	var resp LeaseResponse
	if c.draining {
		c.touchWorkerLocked(worker)
		resp.Draining = true
		resp.Complete = j.completeLocked()
		return resp, nil
	}
	resp.Tasks = c.grantLocked(j, worker, max)
	resp.Complete = j.completeLocked()
	if len(resp.Tasks) > 0 {
		c.logfCtx(ctx, "grid: job %s: leased %d tasks to %s", j.id, len(resp.Tasks), worker)
	}
	return resp, nil
}

// LeaseAny grants up to max pending tasks from whichever job the fair
// scheduler picks: the eligible job with the lowest granted-per-weight
// share (see pickJobLocked). One call serves one job, so the worker
// always computes a batch against a single spec.
func (c *Coordinator) LeaseAny(ctx context.Context, worker string, max int) (GlobalLeaseResponse, error) {
	c.metrics.leaseRequests.Inc()
	// Absorb pending cache hits for every job first — an absorbed job
	// may complete without ever dispatching work, which changes both
	// eligibility and the AllComplete answer.
	c.mu.Lock()
	jobs := make([]*gridJob, 0, len(c.jobs))
	for _, j := range c.jobs {
		jobs = append(jobs, j)
	}
	c.mu.Unlock()
	for _, j := range jobs {
		c.absorbCache(j)
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	if c.quarantined[worker] {
		return GlobalLeaseResponse{}, fmt.Errorf("%w: %s", errQuarantined, worker)
	}
	var resp GlobalLeaseResponse
	if c.draining {
		c.touchWorkerLocked(worker)
		resp.Draining = true
		resp.AllComplete = c.allCompleteLocked()
		return resp, nil
	}
	j := c.pickJobLocked()
	if j == nil {
		c.touchWorkerLocked(worker)
		resp.AllComplete = c.allCompleteLocked()
		return resp, nil
	}
	resp.Job = j.id
	resp.Tasks = c.grantLocked(j, worker, max)
	if len(resp.Tasks) > 0 {
		c.logfCtx(ctx, "grid: job %s: leased %d tasks to %s (fair share %d/%d)",
			j.id, len(resp.Tasks), worker, j.leasesGranted, j.weight)
	}
	return resp, nil
}

// allCompleteLocked reports whether at least one job exists and every
// job is complete (tasks done, audits settled).
func (c *Coordinator) allCompleteLocked() bool {
	if len(c.jobs) == 0 {
		return false
	}
	for _, j := range c.jobs {
		if !j.completeLocked() {
			return false
		}
	}
	return true
}

// Heartbeat extends worker's leases and reports the ones it no longer
// holds.
func (c *Coordinator) Heartbeat(ctx context.Context, id string, req HeartbeatRequest) (HeartbeatResponse, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	j, err := c.getJob(id)
	if err != nil {
		return HeartbeatResponse{}, err
	}
	if c.quarantined[req.Worker] {
		return HeartbeatResponse{}, fmt.Errorf("%w: %s", errQuarantined, req.Worker)
	}
	c.expireLocked(j)
	c.touchWorkerLocked(req.Worker)
	deadline := c.now().Add(c.opts.leaseTTL())
	var resp HeartbeatResponse
	for _, tid := range req.Tasks {
		st, ok := j.tasks[tid]
		switch {
		case ok && st.status == taskLeased && st.worker == req.Worker:
			st.deadline = deadline
			resp.Renewed = append(resp.Renewed, tid)
		case ok && st.status == taskLeased && st.hedgeWorker == req.Worker:
			st.hedgeDeadline = deadline
			resp.Renewed = append(resp.Renewed, tid)
		case ok && c.auditRenewLocked(j, tid, req.Worker, deadline):
			resp.Renewed = append(resp.Renewed, tid)
		default:
			resp.Lost = append(resp.Lost, tid)
		}
	}
	return resp, nil
}

// Ingest records one uploaded result. It is idempotent: a duplicate of
// a done task is acknowledged and dropped (task determinism makes the
// values equivalent), and an upload from a worker whose lease expired
// is still accepted if it arrives first. The checkpoint write happens
// before the task is marked done, so an acknowledged result is always
// durable — and it runs outside the coordinator lock, so leases,
// heartbeats and progress are never stalled behind an fsync. A second
// upload racing a journalling first one is told to move on without
// waiting for durability; if the first write then fails, the task
// simply re-queues and re-runs.
func (c *Coordinator) Ingest(ctx context.Context, id string, up ResultUpload) (ResultAck, error) {
	c.mu.Lock()
	j, err := c.getJob(id)
	if err != nil {
		c.mu.Unlock()
		return ResultAck{}, err
	}
	if c.quarantined[up.Worker] {
		c.mu.Unlock()
		return ResultAck{}, fmt.Errorf("%w: %s", errQuarantined, up.Worker)
	}
	st, ok := j.tasks[up.Task]
	if !ok {
		c.mu.Unlock()
		return ResultAck{}, fmt.Errorf("%w %q in job %s", errUnknownTask, up.Task, id)
	}
	if len(up.Values) != st.task.Hi-st.task.Lo {
		c.mu.Unlock()
		return ResultAck{}, fmt.Errorf("grid: task %s upload has %d values, want %d",
			up.Task, len(up.Values), st.task.Hi-st.task.Lo)
	}
	if st.status == taskDone && c.auditEnabled() && !st.recording {
		// Under the audit regime a second upload for a done task is
		// evidence, not noise: it either verifies the record or opens a
		// dispute. Any checkpoint invalidations run after unlock.
		ack, after := c.auditIngestLocked(j, st, up)
		c.mu.Unlock()
		if after != nil {
			after()
		}
		return ack, nil
	}
	if st.status == taskDone || st.recording {
		c.metrics.duplicates.Inc()
		c.touchWorkerLocked(up.Worker)
		c.mu.Unlock()
		return ResultAck{Accepted: true, Duplicate: true}, nil
	}
	st.recording = true
	var leaseLatency time.Duration
	if st.status == taskLeased && !st.leasedAt.IsZero() {
		leaseLatency = c.now().Sub(st.leasedAt)
	}
	cp, task := j.cp, st.task
	c.mu.Unlock()

	// The journalling runs unlocked; recover any panic so a wedged
	// write can never leak recording=true and permanently strand the
	// task (the handler would otherwise swallow the panic).
	recErr := func() (err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("grid: task %s: checkpoint write panicked: %v", task.ID(), r)
			}
		}()
		if cp == nil {
			return nil
		}
		return cp.Record(task, up.Values, time.Duration(up.ElapsedMS)*time.Millisecond)
	}()

	c.mu.Lock()
	defer c.mu.Unlock()
	st.recording = false
	if recErr != nil {
		c.checkDrainedLocked()
		return ResultAck{}, recErr
	}
	st.status = taskDone
	if st.hedgeWorker != "" {
		// The losing racer's lease dissolves without a verdict: its
		// leased count drops, but no failure is scored — it was asked
		// to race and simply lost.
		loser := st.hedgeWorker
		if up.Worker == loser {
			loser = st.worker
		}
		if ws := c.workers[loser]; ws != nil && ws.leased > 0 {
			ws.leased--
		}
		st.hedgeWorker, st.hedgeDeadline = "", time.Time{}
	}
	st.worker = ""
	j.results[up.Task] = []float64(up.Values)
	j.doneBy[up.Task] = up.Worker
	j.done++
	c.workerDoneLocked(up.Worker, time.Duration(up.ElapsedMS)*time.Millisecond)
	c.walAppendLocked(false, walRecord{T: walIngest, Job: j.id, Task: up.Task, Worker: up.Worker, ElapsedMS: up.ElapsedMS})
	c.metrics.tasksIngested.Inc()
	c.metrics.valuesIngested.Add(float64(len(up.Values)))
	if leaseLatency > 0 {
		c.metrics.leaseLatency.Observe(leaseLatency.Seconds())
	}
	if c.auditEnabled() && up.Worker != "" && auditSelected(j.id, up.Task, c.opts.AuditRate) {
		// Selected tasks feed the cache only once audit-verified.
		c.openAuditLocked(j, st.task, up.Worker)
	} else {
		delete(j.tainted, up.Task)
		c.feedCacheLocked(j, st.task, []float64(up.Values))
	}
	c.finishIfCompleteLocked(j)
	c.broadcastLocked(j)
	c.checkDrainedLocked()
	return ResultAck{Accepted: true}, nil
}

// --- Drain ---

// Drain switches the coordinator into drain mode: lease calls stop
// granting tasks (workers are told to exit), and once every in-flight
// lease settles — its result uploads, or its TTL expires — the channel
// from Drained closes. Serve exits cleanly at that point, which is the
// graceful-restart story: POST /v1/drain (or SIGTERM in dsa-grid),
// wait, restart on the same checkpoint dir, nothing is lost.
func (c *Coordinator) Drain(ctx context.Context) {
	c.mu.Lock()
	if c.draining {
		c.mu.Unlock()
		return
	}
	c.draining = true
	inflight := 0
	for _, j := range c.jobs {
		for _, st := range j.tasks {
			if st.status == taskLeased || st.recording {
				inflight++
			}
		}
		c.broadcastLocked(j)
	}
	c.logfCtx(ctx, "grid: draining: no new leases; %d in-flight tasks to settle", inflight)
	c.checkDrainedLocked()
	c.mu.Unlock()
	go c.drainLoop()
}

// Draining reports whether Drain has been called.
func (c *Coordinator) Draining() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.draining
}

// Drained returns a channel that closes once a drain has fully
// settled (it never closes if Drain is never called).
func (c *Coordinator) Drained() <-chan struct{} { return c.drainDone }

// checkDrainedLocked closes the drain-complete channel once draining
// and nothing is in flight anywhere.
func (c *Coordinator) checkDrainedLocked() {
	if !c.draining || c.drainClosed {
		return
	}
	for _, j := range c.jobs {
		for _, st := range j.tasks {
			if st.status == taskLeased || st.recording {
				return
			}
		}
	}
	c.drainClosed = true
	close(c.drainDone)
	c.logf("grid: drained: all in-flight work settled")
}

// drainLoop ticks lease expiry while draining, so the drain completes
// even if every lease holder vanished and nothing else touches the
// state. It reads the injectable clock for expiry decisions but paces
// itself on wall time.
func (c *Coordinator) drainLoop() {
	tick := time.NewTicker(100 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case <-c.drainDone:
			return
		case <-tick.C:
		}
		c.mu.Lock()
		for _, j := range c.jobs {
			c.expireLocked(j)
		}
		c.checkDrainedLocked()
		c.mu.Unlock()
	}
}

// CacheStats reports the coordinator's score cache counters; ok is
// false when it runs without a cache. Counter details come from the
// cache's own Stats (internal/cache.Store provides them); a cache
// without that method still works, it just reports zeros.
func (c *Coordinator) CacheStats() (dsa.CacheStats, bool) {
	return c.cacheStatsLocked()
}

// cacheStatsLocked is safe with or without c.mu held: it only touches
// the cache, which has its own synchronization.
func (c *Coordinator) cacheStatsLocked() (dsa.CacheStats, bool) {
	if c.opts.Cache == nil {
		return dsa.CacheStats{}, false
	}
	if sp, ok := c.opts.Cache.(interface{ Stats() dsa.CacheStats }); ok {
		return sp.Stats(), true
	}
	return dsa.CacheStats{}, true
}

// Progress returns a job's live snapshot.
func (c *Coordinator) Progress(id string) (ProgressSnapshot, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	j, err := c.getJob(id)
	if err != nil {
		return ProgressSnapshot{}, err
	}
	c.expireLocked(j)
	return c.snapshotLocked(j), nil
}

func (c *Coordinator) snapshotLocked(j *gridJob) ProgressSnapshot {
	snap := ProgressSnapshot{
		JobID: j.id, Total: len(j.order), Done: j.done, Requeues: j.requeues,
		CacheTasks: j.cacheServed, LeasesGranted: j.leasesGranted, Priority: j.weight,
	}
	workers := map[string]bool{}
	for _, st := range j.tasks {
		switch st.status {
		case taskLeased:
			snap.Leased++
			workers[st.worker] = true
		case taskPending:
			snap.Pending++
		}
	}
	snap.Workers = len(workers)
	snap.Audits = len(j.audits)
	snap.Complete = j.completeLocked()
	return snap
}

// Scores returns a completed job's assembled scores; ok is false while
// tasks are outstanding.
func (c *Coordinator) Scores(id string) (s *dsa.Scores, ok bool, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	j, err := c.getJob(id)
	if err != nil {
		return nil, false, err
	}
	if !j.completeLocked() {
		return nil, false, nil
	}
	return j.scores, true, j.scoresErr
}

// WaitComplete blocks until the job's last task is done (returning the
// assembled scores) or ctx is cancelled.
func (c *Coordinator) WaitComplete(ctx context.Context, id string) (*dsa.Scores, error) {
	for {
		c.mu.Lock()
		j, err := c.getJob(id)
		if err != nil {
			c.mu.Unlock()
			return nil, err
		}
		if j.completeLocked() {
			s, serr := j.scores, j.scoresErr
			c.mu.Unlock()
			return s, serr
		}
		changed := j.changed
		c.mu.Unlock()
		select {
		case <-changed:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// Summaries lists every job, sorted by ID.
func (c *Coordinator) Summaries() []JobSummary {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]JobSummary, 0, len(c.jobs))
	for _, j := range c.jobs {
		out = append(out, c.summaryLocked(j))
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}

func (c *Coordinator) summaryLocked(j *gridJob) JobSummary {
	return JobSummary{
		ID: j.id, Domain: j.spec.Domain.Name(),
		TotalTasks: len(j.order), DoneTasks: j.done,
		Priority: j.weight,
		Complete: j.completeLocked(),
	}
}

// --- HTTP layer ---

// Handler returns the full API handler: the /v1 JSON API, /metrics,
// and the dashboard, wrapped in request-ID instrumentation, JSON
// error normalization (no text/plain 404/405 pages) and — when
// configured — per-client rate limiting. Auth, when configured, guards
// the mutating endpoints per route.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/jobs", c.handleListJobs)
	mux.HandleFunc("POST /v1/jobs", c.authed(c.handleCreateJob))
	mux.HandleFunc("GET /v1/jobs/{id}", c.handleGetJob)
	mux.HandleFunc("POST /v1/jobs/{id}/lease", c.authed(c.handleLease))
	mux.HandleFunc("POST /v1/lease", c.authed(c.handleLeaseAny))
	mux.HandleFunc("POST /v1/jobs/{id}/heartbeat", c.authed(c.handleHeartbeat))
	mux.HandleFunc("POST /v1/jobs/{id}/results", c.authed(c.handleUpload))
	mux.HandleFunc("GET /v1/jobs/{id}/results", c.handleResults)
	mux.HandleFunc("GET /v1/jobs/{id}/progress", c.handleProgress)
	mux.HandleFunc("GET /v1/cache", c.handleCacheStats)
	mux.HandleFunc("POST /v1/drain", c.authed(c.handleDrain))
	mux.HandleFunc("POST /v1/trace", c.authed(c.handleTraceUpload))
	mux.HandleFunc("GET /v1/trace", c.handleTraceGet)
	mux.HandleFunc("GET /v1/dashboard", c.handleDashboard)
	mux.HandleFunc("GET /metrics", c.handleMetrics)
	if c.opts.Pprof {
		pp := profiling.Handler("") // coordinator auth wraps it instead
		mux.Handle("/debug/pprof/", c.authed(pp.ServeHTTP))
	}
	return gridobs.Instrument(c.rateLimited(jsonErrors(mux)), c.onRequestDone)
}

// authed guards one mutating route with the shared-secret token. The
// compare hashes both sides first, so it is constant-time regardless
// of the presented token's length.
func (c *Coordinator) authed(h http.HandlerFunc) http.HandlerFunc {
	if c.opts.AuthToken == "" {
		return h
	}
	want := sha256.Sum256([]byte(c.opts.AuthToken))
	return func(w http.ResponseWriter, r *http.Request) {
		got := sha256.Sum256([]byte(bearerToken(r)))
		if subtle.ConstantTimeCompare(got[:], want[:]) != 1 {
			c.metrics.authFailures.Inc()
			w.Header().Set("WWW-Authenticate", `Bearer realm="grid"`)
			writeJSON(w, http.StatusUnauthorized, errorBody{Error: "grid: missing or invalid auth token"})
			return
		}
		h(w, r)
	}
}

func bearerToken(r *http.Request) string {
	auth := r.Header.Get("Authorization")
	const prefix = "Bearer "
	if len(auth) > len(prefix) && strings.EqualFold(auth[:len(prefix)], prefix) {
		return auth[len(prefix):]
	}
	return ""
}

// rateLimited applies per-client token-bucket admission to the /v1 API
// (metrics scrapes are never limited — observability must survive the
// very overload it is for). Clients are keyed by remote IP.
func (c *Coordinator) rateLimited(next http.Handler) http.Handler {
	if !c.limiter.Enabled() {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !strings.HasPrefix(r.URL.Path, "/v1/") {
			next.ServeHTTP(w, r)
			return
		}
		// Trace shipping is exempt like /metrics: throttling the
		// observability plane during an overload would blind exactly
		// the tools needed to diagnose it, and a 429'd chunk just
		// re-ships later anyway (idempotent offsets).
		if r.URL.Path == "/v1/trace" {
			next.ServeHTTP(w, r)
			return
		}
		key := r.RemoteAddr
		if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil {
			key = host
		}
		if !c.limiter.Allow(key) {
			c.metrics.rateLimited.Inc()
			after := int(math.Ceil(c.limiter.RetryAfter(key).Seconds()))
			if after < 1 {
				after = 1
			}
			w.Header().Set("Retry-After", strconv.Itoa(after))
			writeJSON(w, http.StatusTooManyRequests, errorBody{Error: "grid: rate limit exceeded, retry later"})
			return
		}
		next.ServeHTTP(w, r)
	})
}

// jsonErrors rewrites the mux's text/plain 404 and 405 pages into the
// API's structured JSON error shape, so every error a client can
// receive — wrong path, wrong method, bad body, unknown job — has the
// same {"error": ...} contract. Responses that already chose their
// own content type (our handlers) pass through untouched.
func jsonErrors(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		next.ServeHTTP(&jsonErrorWriter{ResponseWriter: w}, r)
	})
}

type jsonErrorWriter struct {
	http.ResponseWriter
	intercepted bool
	wroteHeader bool
}

func (w *jsonErrorWriter) WriteHeader(code int) {
	if w.wroteHeader {
		return
	}
	w.wroteHeader = true
	if (code == http.StatusNotFound || code == http.StatusMethodNotAllowed) &&
		!strings.Contains(w.Header().Get("Content-Type"), "json") {
		w.intercepted = true
		h := w.Header()
		h.Set("Content-Type", "application/json")
		h.Del("Content-Length")
		w.ResponseWriter.WriteHeader(code)
		msg := "grid: not found"
		if code == http.StatusMethodNotAllowed {
			msg = "grid: method not allowed"
		}
		body, _ := json.Marshal(errorBody{Error: msg})
		w.ResponseWriter.Write(append(body, '\n'))
		return
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *jsonErrorWriter) Write(p []byte) (int, error) {
	if w.intercepted {
		// Swallow the mux's text body; ours is already written.
		return len(p), nil
	}
	if !w.wroteHeader {
		w.wroteHeader = true
	}
	return w.ResponseWriter.Write(p)
}

// Flush forwards to the underlying writer so NDJSON progress streams
// keep flushing through the wrapper.
func (w *jsonErrorWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (c *Coordinator) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", gridobs.TextContentType)
	c.metrics.reg.WritePrometheus(w)
}

func (c *Coordinator) handleDrain(w http.ResponseWriter, r *http.Request) {
	c.Drain(r.Context())
	c.mu.Lock()
	inflight := 0
	for _, j := range c.jobs {
		for _, st := range j.tasks {
			if st.status == taskLeased || st.recording {
				inflight++
			}
		}
	}
	c.mu.Unlock()
	writeJSON(w, http.StatusOK, DrainResponse{Draining: true, InFlight: inflight})
}

func (c *Coordinator) handleCacheStats(w http.ResponseWriter, r *http.Request) {
	stats, enabled := c.CacheStats()
	writeJSON(w, http.StatusOK, CacheStatsResponse{Enabled: enabled, CacheStats: stats})
}

// writeJSON marshals before touching the response, so an encoding
// failure becomes a clean 500 instead of a truncated 200.
func writeJSON(w http.ResponseWriter, status int, v any) {
	body, err := json.Marshal(v)
	if err != nil {
		http.Error(w, `{"error":"grid: response encoding failed"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(body, '\n'))
}

func writeError(w http.ResponseWriter, err error) {
	status := http.StatusBadRequest
	switch {
	case errors.Is(err, errUnknownJob), errors.Is(err, errUnknownTask):
		status = http.StatusNotFound
	case errors.Is(err, errDraining):
		status = http.StatusServiceUnavailable
	case errors.Is(err, errQuarantined):
		// 429 like the rate limiter, but with the quarantine marker so
		// clients know retrying is pointless; the long Retry-After tells
		// generic HTTP clients the same thing.
		w.Header().Set("Retry-After", "3600")
		w.Header().Set(HeaderQuarantined, "1")
		status = http.StatusTooManyRequests
	}
	writeJSON(w, status, errorBody{Error: err.Error()})
}

// readBody decodes a JSON request body, bounded by MaxBody: oversized
// bodies answer 413, malformed ones 400 — always as structured JSON.
// A request carrying the body-checksum header is verified first; a
// mismatch is transport corruption (the client signed what it meant to
// send), answered 400 with the corrupt-body marker so the client
// retries instead of treating it as a protocol error — and so a
// corrupted result upload is rejected here rather than recorded and
// later mistaken for a Byzantine worker.
func (c *Coordinator) readBody(w http.ResponseWriter, r *http.Request, v any) bool {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, c.opts.maxBody()))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeJSON(w, http.StatusRequestEntityTooLarge,
				errorBody{Error: fmt.Sprintf("grid: request body exceeds %d bytes", tooBig.Limit)})
			return false
		}
		writeError(w, fmt.Errorf("grid: bad request body: %w", err))
		return false
	}
	if want := r.Header.Get(HeaderBodySHA256); want != "" {
		sum := sha256.Sum256(body)
		if !strings.EqualFold(hex.EncodeToString(sum[:]), want) {
			c.metrics.corruptBodies.Inc()
			w.Header().Set(HeaderCorruptBody, "1")
			writeJSON(w, http.StatusBadRequest,
				errorBody{Error: "grid: request body checksum mismatch (corrupted in transit)"})
			return false
		}
	}
	if err := json.Unmarshal(body, v); err != nil {
		writeError(w, fmt.Errorf("grid: bad request body: %w", err))
		return false
	}
	return true
}

func (c *Coordinator) handleListJobs(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, jobsResponse{Jobs: c.Summaries()})
}

func (c *Coordinator) handleCreateJob(w http.ResponseWriter, r *http.Request) {
	var req CreateJobRequest
	if !c.readBody(w, r, &req) {
		return
	}
	spec, err := job.DecodeSpec(req.Spec)
	if err != nil {
		writeError(w, err)
		return
	}
	priority := req.Priority
	if priority == 0 {
		priority = 1
	}
	id, err := c.AddJobPriority(spec, priority)
	if err != nil {
		writeError(w, err)
		return
	}
	c.mu.Lock()
	summary := c.summaryLocked(c.jobs[id])
	c.mu.Unlock()
	writeJSON(w, http.StatusOK, summary)
}

func (c *Coordinator) handleGetJob(w http.ResponseWriter, r *http.Request) {
	c.mu.Lock()
	j, err := c.getJob(r.PathValue("id"))
	if err != nil {
		c.mu.Unlock()
		writeError(w, err)
		return
	}
	detail := JobDetail{JobSummary: c.summaryLocked(j), Spec: j.specRaw}
	c.mu.Unlock()
	writeJSON(w, http.StatusOK, detail)
}

func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	var req LeaseRequest
	if !c.readBody(w, r, &req) {
		return
	}
	resp, err := c.Lease(r.Context(), r.PathValue("id"), req.Worker, req.MaxTasks)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (c *Coordinator) handleLeaseAny(w http.ResponseWriter, r *http.Request) {
	var req LeaseRequest
	if !c.readBody(w, r, &req) {
		return
	}
	resp, err := c.LeaseAny(r.Context(), req.Worker, req.MaxTasks)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req HeartbeatRequest
	if !c.readBody(w, r, &req) {
		return
	}
	resp, err := c.Heartbeat(r.Context(), r.PathValue("id"), req)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (c *Coordinator) handleUpload(w http.ResponseWriter, r *http.Request) {
	var up ResultUpload
	if !c.readBody(w, r, &up) {
		return
	}
	ack, err := c.Ingest(r.Context(), r.PathValue("id"), up)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, ack)
}

func (c *Coordinator) handleResults(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	scores, ok, err := c.Scores(id)
	if err != nil {
		writeError(w, err)
		return
	}
	if !ok {
		snap, _ := c.Progress(id)
		writeJSON(w, http.StatusConflict, struct {
			errorBody
			Progress ProgressSnapshot `json:"progress"`
		}{errorBody{Error: fmt.Sprintf("grid: job %s incomplete: %d/%d tasks done", id, snap.Done, snap.Total)}, snap})
		return
	}
	if r.URL.Query().Get("format") == "csv" {
		c.mu.Lock()
		d := c.jobs[id].spec.Domain
		c.mu.Unlock()
		writeCSV := c.opts.CSV
		if writeCSV == nil {
			writeCSV = dsa.WriteCSV
		}
		w.Header().Set("Content-Type", "text/csv")
		if err := writeCSV(w, d, scores); err != nil {
			c.logfCtx(r.Context(), "grid: job %s: csv render: %v", id, err)
		}
		return
	}
	writeJSON(w, http.StatusOK, scoresToWire(scores))
}

// handleProgress serves one snapshot, or — with ?stream=1 — newline-
// delimited JSON snapshots on every state change (and at least once a
// second, so lease expiries surface) until the job completes or the
// client goes away.
func (c *Coordinator) handleProgress(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	snap, err := c.Progress(id)
	if err != nil {
		writeError(w, err)
		return
	}
	if r.URL.Query().Get("stream") == "" {
		writeJSON(w, http.StatusOK, snap)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	var last ProgressSnapshot
	first := true
	for {
		if first || snap != last {
			if err := enc.Encode(snap); err != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
			last, first = snap, false
		}
		if snap.Complete {
			return
		}
		c.mu.Lock()
		j, err := c.getJob(id)
		if err != nil {
			c.mu.Unlock()
			return
		}
		changed := j.changed
		c.mu.Unlock()
		select {
		case <-changed:
		case <-time.After(time.Second):
		case <-r.Context().Done():
			return
		}
		if snap, err = c.Progress(id); err != nil {
			return
		}
	}
}

// Serve listens on addr and serves the API until ctx is cancelled or a
// drain completes (POST /v1/drain, or Drain called directly) — the
// latter exits cleanly after in-flight work settles. onListen (if
// non-nil) receives the bound address before serving — useful with
// ":0".
func (c *Coordinator) Serve(ctx context.Context, addr string, onListen func(addr string)) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	if onListen != nil {
		onListen(ln.Addr().String())
	}
	srv := &http.Server{Handler: c.Handler()}
	stopped := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
		case <-c.Drained():
		case <-stopped:
			return
		}
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(shutCtx)
	}()
	err = srv.Serve(ln)
	close(stopped)
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}
