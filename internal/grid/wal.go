package grid

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/job"
)

// The coordinator WAL journals every scheduling decision that the
// checkpoint (which only stores completed values) cannot reconstruct:
// lease grants, lease expirations, ingest acks (who computed what, how
// fast), priority changes, audit verdicts and quarantines. Replayed on
// startup, it restores exact task states, per-worker EWMA scores and
// fair-scheduling deficits after a kill -9 — the checkpoint makes
// results durable, the WAL makes the *scheduler* durable.
//
// Format: one JSON line per record, `{"crc":<ieee>,"rec":{...}}`, the
// CRC32 taken over the raw rec bytes — the same torn-tail discipline
// as the cache segment log. A record with a bad CRC is skipped; an
// unterminated tail (torn final write) is truncated away on open so
// appends always start on a clean line. Records are plain appends with
// no fsync on the hot path: a kill -9 loses nothing that was write()n
// (the page cache survives process death), and verdict-grade records
// (quarantine, verify) are fsynced so they also survive power loss.
const walFileName = "coordinator.wal"

// walRecord event types.
const (
	walLease      = "lease"      // task handed to worker (re-leases and audit re-leases included)
	walExpire     = "expire"     // worker's lease on task expired
	walIngest     = "ingest"     // worker's result for task accepted
	walPriority   = "priority"   // job fair-share weight changed
	walVerify     = "verify"     // task's recorded value audit-confirmed by worker
	walQuarantine = "quarantine" // worker quarantined (job field empty: global)
	walHedge      = "hedge"      // speculative duplicate lease granted to worker
)

type walRecord struct {
	T         string `json:"t"`
	Job       string `json:"job,omitempty"`
	Task      string `json:"task,omitempty"`
	Worker    string `json:"worker,omitempty"`
	Weight    int    `json:"weight,omitempty"`     // priority records
	ElapsedMS int64  `json:"elapsed_ms,omitempty"` // ingest records: feeds the latency EWMA on replay
}

type walLine struct {
	CRC uint32          `json:"crc"`
	Rec json.RawMessage `json:"rec"`
}

type wal struct {
	path string
	mu   sync.Mutex
	f    *os.File
	off  int64 // durable end of the file
}

// openWAL opens (creating if absent) dir's WAL, replays every intact
// record, truncates any torn tail, and returns the handle positioned
// for appending. skipped counts complete-but-corrupt lines left in
// place (their CRC failed; appends after them are safe).
func openWAL(dir string) (w *wal, recs []walRecord, skipped int, err error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, 0, fmt.Errorf("grid: wal dir: %w", err)
	}
	path := filepath.Join(dir, walFileName)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("grid: open wal: %w", err)
	}
	data, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return nil, nil, 0, fmt.Errorf("grid: read wal: %w", err)
	}
	var goodEnd int64
	for off := 0; off < len(data); {
		nl := bytes.IndexByte(data[off:], '\n')
		if nl < 0 {
			break // unterminated torn tail: truncated below
		}
		line := data[off : off+nl]
		off += nl + 1
		goodEnd = int64(off)
		var l walLine
		var rec walRecord
		if json.Unmarshal(line, &l) != nil ||
			crc32.ChecksumIEEE(l.Rec) != l.CRC ||
			json.Unmarshal(l.Rec, &rec) != nil {
			skipped++
			continue
		}
		recs = append(recs, rec)
	}
	if goodEnd < int64(len(data)) {
		if err := f.Truncate(goodEnd); err != nil {
			f.Close()
			return nil, nil, 0, fmt.Errorf("grid: truncate torn wal tail: %w", err)
		}
	}
	if _, err := f.Seek(goodEnd, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, 0, fmt.Errorf("grid: seek wal: %w", err)
	}
	return &wal{path: path, f: f, off: goodEnd}, recs, skipped, nil
}

// append journals recs as one write (all-or-nothing for the batch up
// to a torn tail, which replay tolerates). sync additionally fsyncs —
// used for verdict-grade records (quarantine, verify) that must
// survive power loss, not just kill -9. Write failures surface as
// job.WriteError with path and offset, and the torn tail is trimmed so
// the next append starts clean.
func (w *wal) append(sync bool, recs ...walRecord) error {
	var buf []byte
	for _, r := range recs {
		raw, err := json.Marshal(r)
		if err != nil {
			return fmt.Errorf("grid: wal encode: %w", err)
		}
		line, err := json.Marshal(walLine{CRC: crc32.ChecksumIEEE(raw), Rec: raw})
		if err != nil {
			return fmt.Errorf("grid: wal encode: %w", err)
		}
		buf = append(buf, line...)
		buf = append(buf, '\n')
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	n, err := job.WrapWriter(w.path, w.f).Write(buf)
	if err == nil && n < len(buf) {
		err = io.ErrShortWrite
	}
	if err != nil {
		werr := &job.WriteError{Path: w.path, Off: w.off + int64(n), Op: "append wal", Err: err}
		if w.f.Truncate(w.off) == nil {
			w.f.Seek(w.off, io.SeekStart)
		}
		return werr
	}
	w.off += int64(n)
	if sync {
		if err := w.f.Sync(); err != nil {
			return &job.WriteError{Path: w.path, Off: w.off, Op: "sync wal", Err: err}
		}
	}
	return nil
}

func (w *wal) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.f.Close()
}
