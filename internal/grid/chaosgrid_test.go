package grid

// Failure-injection coverage at the grid boundary: upload body
// checksums catch transport corruption server-side, lease timing is
// immune to wall-clock skew between coordinator and workers, and a
// worker behind a seeded fault-injecting transport (drops, delays,
// duplicates, corruption, spurious 5xx) still finishes a sweep
// byte-identical to the clean run.

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/chaos"
)

// TestUploadChecksumServerSide: a body whose X-Body-Sha256 does not
// match is refused with the corrupt-body marker (so clients retry);
// a matching checksum — and, for compatibility, no checksum at all —
// is accepted.
func TestUploadChecksumServerSide(t *testing.T) {
	spec := auditSpec(t, 2)
	coord := NewCoordinator(CoordinatorOptions{LeaseTTL: time.Minute})
	defer coord.Close()
	id, err := coord.AddJob(spec)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	lease, err := coord.Lease(context.Background(), id, "w1", 2)
	if err != nil {
		t.Fatal(err)
	}
	lt := lease.Tasks[0]
	body := mustJSON(t, ResultUpload{Worker: "w1", Task: lt.Task, Values: WireFloats(honestVals(lt))})
	post := func(body, sum string) *http.Response {
		t.Helper()
		req, err := http.NewRequest(http.MethodPost, srv.URL+"/v1/jobs/"+id+"/results", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		if sum != "" {
			req.Header.Set(HeaderBodySHA256, sum)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}

	wrong := sha256.Sum256([]byte(body + "corrupted"))
	resp := post(body, hex.EncodeToString(wrong[:]))
	if resp.StatusCode != http.StatusBadRequest || resp.Header.Get(HeaderCorruptBody) == "" {
		t.Fatalf("mismatched checksum: status %d headers %v, want 400 with %s", resp.StatusCode, resp.Header, HeaderCorruptBody)
	}
	if snap := mustProgress(t, coord, id); snap.Done != 0 {
		t.Fatalf("corrupted upload was ingested: %+v", snap)
	}

	right := sha256.Sum256([]byte(body))
	if resp := post(body, hex.EncodeToString(right[:])); resp.StatusCode != http.StatusOK {
		t.Fatalf("matching checksum: status %d, want 200", resp.StatusCode)
	}
	lt2 := lease.Tasks[1]
	body2 := mustJSON(t, ResultUpload{Worker: "w1", Task: lt2.Task, Values: WireFloats(honestVals(lt2))})
	if resp := post(body2, ""); resp.StatusCode != http.StatusOK {
		t.Fatalf("checksum-less upload: status %d, want 200 (header is optional)", resp.StatusCode)
	}
	if snap := mustProgress(t, coord, id); snap.Done != 2 {
		t.Fatalf("after valid uploads: %+v, want 2 done", snap)
	}
}

// TestClockSkewImmunity: lease deadlines and expiry run purely on the
// coordinator's own clock, and the wire carries only relative TTLs —
// so a worker whose wall clock is ten minutes off (either way,
// simulated by skewing the coordinator against the worker's real
// clock) sees no spurious expiries and finishes byte-identical.
func TestClockSkewImmunity(t *testing.T) {
	spec := auditSpec(t, 4)
	want := wantScores(t, spec)
	for name, offset := range map[string]time.Duration{
		"worker 10m ahead":  -10 * time.Minute,
		"worker 10m behind": 10 * time.Minute,
	} {
		t.Run(name, func(t *testing.T) {
			coord := NewCoordinator(CoordinatorOptions{LeaseTTL: 30 * time.Second})
			defer coord.Close()
			coord.now = func() time.Time { return time.Now().Add(offset) }
			id, err := coord.AddJob(spec)
			if err != nil {
				t.Fatal(err)
			}
			srv := httptest.NewServer(coord.Handler())
			defer srv.Close()

			if err := Work(context.Background(), srv.URL, id, WorkerOptions{Name: "skewed", Workers: 2}); err != nil {
				t.Fatal(err)
			}
			snap := mustProgress(t, coord, id)
			if !snap.Complete || snap.Requeues != 0 {
				t.Fatalf("skewed run: %+v, want complete with zero spurious requeues", snap)
			}
			got, err := coord.WaitComplete(context.Background(), id)
			if err != nil {
				t.Fatal(err)
			}
			if mustJSON(t, got) != mustJSON(t, want) {
				t.Fatal("scores under clock skew differ from single-process job.Run")
			}
		})
	}
}

// TestChaosTransportSweepCompletes: the deterministic fault harness
// end to end — every request the worker makes may be dropped, delayed,
// duplicated, corrupted or answered 500, and the sweep still converges
// byte-identical because every failure mode maps to a retry path
// (checksum reject, idempotent ingest, lease expiry).
func TestChaosTransportSweepCompletes(t *testing.T) {
	spec := gossipSpec(t)
	want := wantScores(t, spec)

	coord := NewCoordinator(CoordinatorOptions{LeaseTTL: 2 * time.Second})
	defer coord.Close()
	id, err := coord.AddJob(spec)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	cfg := chaos.Config{
		Seed: 7, Drop: 0.05, Delay: 0.2, DelayBy: 5 * time.Millisecond,
		Dup: 0.05, Corrupt: 0.05, Err500: 0.05,
	}
	err = Work(context.Background(), srv.URL, id, WorkerOptions{
		Name: "stormy", Workers: 2, TasksPerLease: 2, Poll: 20 * time.Millisecond,
		Reconnect: 30 * time.Second,
		Client:    &http.Client{Transport: chaos.NewTransport(cfg, nil, t.Logf)},
	})
	if err != nil {
		t.Fatalf("worker under chaos transport: %v", err)
	}
	got, err := coord.WaitComplete(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}
	if mustJSON(t, got) != mustJSON(t, want) {
		t.Fatal("scores under transport chaos differ from single-process job.Run")
	}
}
