package grid

// The grid's contract is the engine's contract, at a distance: a
// coordinator + workers run over HTTP must produce byte-identical
// scores to a single-process job.Run — including when a worker is
// killed mid-sweep and its leases expire — and a grid checkpoint
// directory must be interchangeable with a locally-written one.

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"math"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dsa"
	"repro/internal/gossip"
	"repro/internal/job"
)

func tinyGossipCfg() dsa.Config {
	return dsa.Config{Peers: 8, Rounds: 40, PerfRuns: 1, EncounterRuns: 1, Opponents: 4, Seed: 7}
}

// gossipSubset strides the 216-point gossip space down to 18 points.
func gossipSubset(t *testing.T) []core.Point {
	t.Helper()
	all := gossip.Domain().Space().Enumerate()
	var pts []core.Point
	for i := 0; i < len(all); i += 12 {
		pts = append(pts, all[i])
	}
	return pts
}

func gossipSpec(t *testing.T) job.Spec {
	return job.Spec{Domain: gossip.Domain(), Points: gossipSubset(t), Cfg: tinyGossipCfg(), Chunk: 2}
}

// wantScores is the single-process reference result.
func wantScores(t *testing.T, spec job.Spec) *dsa.Scores {
	t.Helper()
	s, err := job.Run(context.Background(), spec.Domain, spec.Points, spec.Cfg, job.Options{Chunk: spec.Chunk})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func mustJSON(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// killingTransport forwards requests until killAfter result uploads
// have succeeded, then fails everything — from the coordinator's point
// of view the worker is SIGKILLed: it goes silent instantly, holding
// whatever leases it had.
type killingTransport struct {
	mu        sync.Mutex
	uploads   int
	killAfter int
	dead      bool
}

var errWorkerKilled = errors.New("worker killed")

func (k *killingTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	k.mu.Lock()
	if k.dead {
		k.mu.Unlock()
		return nil, errWorkerKilled
	}
	k.mu.Unlock()
	resp, err := http.DefaultTransport.RoundTrip(req)
	if err == nil && req.Method == http.MethodPost && strings.HasSuffix(req.URL.Path, "/results") {
		k.mu.Lock()
		k.uploads++
		if k.uploads >= k.killAfter {
			k.dead = true
		}
		k.mu.Unlock()
	}
	return resp, err
}

func TestGridTwoWorkersMatchRunSweep(t *testing.T) {
	spec := gossipSpec(t)
	want := wantScores(t, spec)

	coord := NewCoordinator(CoordinatorOptions{Dir: t.TempDir(), LeaseTTL: 2 * time.Second})
	defer coord.Close()
	id, err := coord.AddJob(spec)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	ctx := context.Background()
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for w := range errs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[w] = Work(ctx, srv.URL, "", WorkerOptions{Workers: 2, TasksPerLease: 2, Poll: 20 * time.Millisecond})
		}()
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}

	got, err := coord.WaitComplete(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if mustJSON(t, got) != mustJSON(t, want) {
		t.Fatal("2-worker grid scores are not byte-identical to single-process job.Run")
	}
	fetched, err := FetchScores(ctx, nil, srv.URL, id)
	if err != nil {
		t.Fatal(err)
	}
	if mustJSON(t, fetched) != mustJSON(t, want) {
		t.Fatal("scores fetched over HTTP differ from single-process job.Run")
	}
}

func TestGridWorkerKilledMidSweep(t *testing.T) {
	spec := gossipSpec(t)
	want := wantScores(t, spec)

	coord := NewCoordinator(CoordinatorOptions{LeaseTTL: 150 * time.Millisecond})
	id, err := coord.AddJob(spec)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	ctx := context.Background()
	kill := &killingTransport{killAfter: 1}
	var wg sync.WaitGroup
	var killedErr, survivorErr error
	wg.Add(2)
	go func() {
		defer wg.Done()
		// Leases 3 tasks, uploads one result, then goes silent holding
		// the other two.
		killedErr = Work(ctx, srv.URL, id, WorkerOptions{
			Name: "doomed", Workers: 1, TasksPerLease: 3,
			Client: &http.Client{Transport: kill},
		})
	}()
	go func() {
		defer wg.Done()
		survivorErr = Work(ctx, srv.URL, id, WorkerOptions{
			Name: "survivor", Workers: 2, TasksPerLease: 2, Poll: 20 * time.Millisecond,
		})
	}()
	wg.Wait()

	if killedErr == nil {
		t.Fatal("the doomed worker should have died on its severed connection")
	}
	if survivorErr != nil {
		t.Fatalf("survivor: %v", survivorErr)
	}
	snap, err := coord.Progress(id)
	if err != nil {
		t.Fatal(err)
	}
	if !snap.Complete {
		t.Fatalf("sweep incomplete after survivor finished: %+v", snap)
	}
	if snap.Requeues < 2 {
		t.Fatalf("the dead worker's 2 held leases should have expired and re-queued, got %d requeues", snap.Requeues)
	}
	got, err := coord.WaitComplete(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if mustJSON(t, got) != mustJSON(t, want) {
		t.Fatal("scores after a mid-sweep worker kill are not byte-identical to single-process job.Run")
	}
}

// TestGridCheckpointResume: a coordinator restart on the same directory
// restores completed tasks, and the finished directory is readable by
// job.Load exactly like a local checkpoint.
func TestGridCheckpointResume(t *testing.T) {
	spec := gossipSpec(t)
	want := wantScores(t, spec)
	dir := t.TempDir()
	ctx := context.Background()

	coord1 := NewCoordinator(CoordinatorOptions{Dir: dir, LeaseTTL: time.Second})
	id, err := coord1.AddJob(spec)
	if err != nil {
		t.Fatal(err)
	}
	srv1 := httptest.NewServer(coord1.Handler())
	kill := &killingTransport{killAfter: 3}
	err = Work(ctx, srv1.URL, id, WorkerOptions{
		Name: "first-life", Workers: 1, TasksPerLease: 1,
		Client: &http.Client{Transport: kill},
	})
	if err == nil {
		t.Fatal("worker should have died after 3 uploads")
	}
	srv1.Close()
	if err := coord1.Close(); err != nil {
		t.Fatal(err)
	}

	coord2 := NewCoordinator(CoordinatorOptions{Dir: dir, LeaseTTL: time.Second})
	defer coord2.Close()
	id2, err := coord2.AddJob(spec)
	if err != nil {
		t.Fatal(err)
	}
	if id2 != id {
		t.Fatalf("spec-derived job ID changed across restarts: %s vs %s", id, id2)
	}
	snap, err := coord2.Progress(id2)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Done < 3 || snap.Complete {
		t.Fatalf("restart should restore the 3 checkpointed tasks and no more: %+v", snap)
	}

	srv2 := httptest.NewServer(coord2.Handler())
	defer srv2.Close()
	if err := Work(ctx, srv2.URL, id2, WorkerOptions{Workers: 2, TasksPerLease: 2}); err != nil {
		t.Fatal(err)
	}
	got, err := coord2.WaitComplete(ctx, id2)
	if err != nil {
		t.Fatal(err)
	}
	if mustJSON(t, got) != mustJSON(t, want) {
		t.Fatal("resumed grid scores differ from single-process job.Run")
	}
	loaded, err := job.Load(filepath.Join(dir, id))
	if err != nil {
		t.Fatal(err)
	}
	if mustJSON(t, loaded) != mustJSON(t, want) {
		t.Fatal("job.Load of the grid checkpoint differs from single-process job.Run")
	}
}

// TestLeaseStateMachine drives the coordinator directly with an
// injected clock: grant, heartbeat renewal, expiry requeue, idempotent
// ingest, and validation failures.
func TestLeaseStateMachine(t *testing.T) {
	all := gossip.Domain().Space().Enumerate()
	spec := job.Spec{Domain: gossip.Domain(), Points: all[:4], Cfg: tinyGossipCfg(), Chunk: 2}
	coord := NewCoordinator(CoordinatorOptions{LeaseTTL: time.Minute, MaxLease: 2})
	now := time.Unix(1000, 0)
	coord.now = func() time.Time { return now }

	id, err := coord.AddJob(spec)
	if err != nil {
		t.Fatal(err)
	}
	if again, err := coord.AddJob(spec); err != nil || again != id {
		t.Fatalf("AddJob is not idempotent: %s vs %s (err %v)", again, id, err)
	}

	lease, err := coord.Lease(context.Background(), id, "w1", 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(lease.Tasks) != 2 {
		t.Fatalf("MaxLease 2 should cap the grant, got %d tasks", len(lease.Tasks))
	}

	// Heartbeat within the TTL renews; an unknown task is lost.
	now = now.Add(30 * time.Second)
	hb, err := coord.Heartbeat(context.Background(), id, HeartbeatRequest{Worker: "w1", Tasks: []string{lease.Tasks[0].Task, "nope"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(hb.Renewed) != 1 || len(hb.Lost) != 1 {
		t.Fatalf("heartbeat = %+v, want 1 renewed + 1 lost", hb)
	}

	// Task 0 was renewed at t+30s (deadline t+90s); task 1 still
	// expires at t+60s. At t+70s only task 1 has been re-queued.
	now = now.Add(40 * time.Second)
	snap, err := coord.Progress(id)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Requeues != 1 || snap.Pending != 3 || snap.Leased != 1 {
		t.Fatalf("after partial expiry: %+v, want 1 requeue, 3 pending, 1 leased", snap)
	}

	// The expired task is re-leasable by another worker...
	lease2, err := coord.Lease(context.Background(), id, "w2", 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(lease2.Tasks) != 2 {
		t.Fatalf("w2 should lease the re-queued + remaining tasks, got %d", len(lease2.Tasks))
	}
	// ...and w1's original heartbeat on it now reports it lost.
	hb, err = coord.Heartbeat(context.Background(), id, HeartbeatRequest{Worker: "w1", Tasks: []string{lease.Tasks[1].Task}})
	if err != nil {
		t.Fatal(err)
	}
	if len(hb.Lost) != 1 {
		t.Fatalf("w1 should have lost its expired lease, got %+v", hb)
	}

	// Ingest validates value counts, accepts the first result, and
	// drops duplicates.
	lt := lease.Tasks[0]
	if _, err := coord.Ingest(context.Background(), id, ResultUpload{Task: lt.Task, Values: []float64{1}}); err == nil {
		t.Fatal("short value vector should be rejected")
	}
	vals := make([]float64, lt.Hi-lt.Lo)
	ack, err := coord.Ingest(context.Background(), id, ResultUpload{Task: lt.Task, Values: vals})
	if err != nil || !ack.Accepted || ack.Duplicate {
		t.Fatalf("first ingest: ack %+v err %v", ack, err)
	}
	ack, err = coord.Ingest(context.Background(), id, ResultUpload{Task: lt.Task, Values: vals})
	if err != nil || !ack.Accepted || !ack.Duplicate {
		t.Fatalf("second ingest should be a dropped duplicate: ack %+v err %v", ack, err)
	}
	if _, err := coord.Ingest(context.Background(), id, ResultUpload{Task: "nope", Values: vals}); err == nil {
		t.Fatal("unknown task should be rejected")
	}
	if _, err := coord.Lease(context.Background(), "nope", "w1", 1); !errors.Is(err, errUnknownJob) {
		t.Fatalf("unknown job: err = %v", err)
	}
}

// TestNonFiniteValuesOverTheWire: encoding/json rejects NaN/±Inf, but
// a domain may produce them; the grid's wire types must round-trip
// them through upload, assembly and the results endpoint.
func TestNonFiniteValuesOverTheWire(t *testing.T) {
	all := gossip.Domain().Space().Enumerate()
	spec := job.Spec{Domain: gossip.Domain(), Points: all[:4], Cfg: tinyGossipCfg(), Chunk: 2}
	coord := NewCoordinator(CoordinatorOptions{})
	id, err := coord.AddJob(spec)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	ctx := context.Background()
	lease, err := coord.Lease(context.Background(), id, "w", 100)
	if err != nil {
		t.Fatal(err)
	}
	special := []float64{math.NaN(), math.Inf(1), math.Inf(-1), 0.25}
	for i, lt := range lease.Tasks {
		vals := make([]float64, lt.Hi-lt.Lo)
		for k := range vals {
			vals[k] = special[(i+k)%len(special)]
		}
		// Through the real HTTP ingest path, not the method.
		var ack ResultAck
		err := postJSON(ctx, srv.Client(), apiURL(srv.URL, "jobs", id, "results"),
			ResultUpload{Worker: "w", Task: lt.Task, Values: vals}, &ack)
		if err != nil {
			t.Fatalf("upload of non-finite values: %v", err)
		}
	}
	got, err := FetchScores(ctx, nil, srv.URL, id)
	if err != nil {
		t.Fatalf("fetch of non-finite scores: %v", err)
	}
	raw := got.Raw[gossip.MeasureRobustness]
	if len(raw) != 4 {
		t.Fatalf("raw robustness has %d values, want 4", len(raw))
	}
	sawNaN, sawInf := false, false
	for _, ms := range []string{gossip.MeasureCoverage, gossip.MeasureRobustness} {
		for _, v := range got.Raw[ms] {
			sawNaN = sawNaN || math.IsNaN(v)
			sawInf = sawInf || math.IsInf(v, 0)
		}
	}
	if !sawNaN || !sawInf {
		t.Fatalf("NaN/Inf did not survive the wire round trip: raw=%v", got.Raw)
	}
}

// TestProgressStream reads the NDJSON stream while tasks complete.
func TestProgressStream(t *testing.T) {
	all := gossip.Domain().Space().Enumerate()
	spec := job.Spec{Domain: gossip.Domain(), Points: all[:4], Cfg: tinyGossipCfg(), Chunk: 2}
	coord := NewCoordinator(CoordinatorOptions{})
	id, err := coord.AddJob(spec)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/v1/jobs/" + id + "/progress?stream=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	if !sc.Scan() {
		t.Fatal("no first snapshot on the stream")
	}
	var first ProgressSnapshot
	if err := json.Unmarshal(sc.Bytes(), &first); err != nil {
		t.Fatal(err)
	}
	if first.Complete || first.Total == 0 {
		t.Fatalf("first snapshot should be an incomplete total: %+v", first)
	}

	// Complete every task by direct ingest; the stream must end with a
	// complete snapshot and EOF.
	lease, err := coord.Lease(context.Background(), id, "w", 100)
	if err != nil {
		t.Fatal(err)
	}
	for _, lt := range lease.Tasks {
		if _, err := coord.Ingest(context.Background(), id, ResultUpload{Task: lt.Task, Values: make([]float64, lt.Hi-lt.Lo)}); err != nil {
			t.Fatal(err)
		}
	}
	var lastSnap ProgressSnapshot
	for sc.Scan() {
		if err := json.Unmarshal(sc.Bytes(), &lastSnap); err != nil {
			t.Fatal(err)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if !lastSnap.Complete || lastSnap.Done != lastSnap.Total {
		t.Fatalf("stream should end on a complete snapshot, got %+v", lastSnap)
	}
}
