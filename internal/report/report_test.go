package report

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := NewTable("name", "value")
	tb.Add("alpha", 1.0)
	tb.Add("b", 0.123456)
	var sb strings.Builder
	if err := tb.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"name", "value", "alpha", "1.0", "0.1235"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Errorf("lines = %d, want 4", len(lines))
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("a", "b")
	tb.Add("x,y", 2.0) // comma must be quoted
	var sb strings.Builder
	if err := tb.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `"x,y"`) {
		t.Errorf("CSV quoting broken: %q", sb.String())
	}
}

func TestScatter(t *testing.T) {
	var sb strings.Builder
	xs := []float64{0, 0.5, 1, 1, 1, 1, 1, 1}
	ys := []float64{0, 0.5, 1, 1, 1, 1, 1, 1}
	if err := Scatter(&sb, xs, ys, 20, 10, "R", "P"); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "P") || !strings.Contains(out, "R") {
		t.Error("labels missing")
	}
	// The dense corner should be darker than a single point.
	if !strings.ContainsAny(out, "oO@") {
		t.Error("density shading missing")
	}
	if err := Scatter(&sb, xs, ys[:2], 20, 10, "x", "y"); err == nil {
		t.Error("length mismatch should error")
	}
	if err := Scatter(&sb, xs, ys, 2, 2, "x", "y"); err == nil {
		t.Error("tiny plot should error")
	}
}

func TestScatterClampsOutOfRange(t *testing.T) {
	var sb strings.Builder
	if err := Scatter(&sb, []float64{-1, 2}, []float64{2, -1}, 10, 5, "x", "y"); err != nil {
		t.Fatal(err)
	}
}

func TestHBar(t *testing.T) {
	var sb strings.Builder
	if err := HBar(&sb, []string{"aa", "b"}, []float64{1, 0.5}, 10); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d", len(lines))
	}
	if strings.Count(lines[0], "#") != 10 || strings.Count(lines[1], "#") != 5 {
		t.Errorf("bar lengths wrong:\n%s", sb.String())
	}
	if err := HBar(&sb, []string{"a"}, []float64{1, 2}, 10); err == nil {
		t.Error("length mismatch should error")
	}
	// All-zero values should render without division by zero.
	var sb2 strings.Builder
	if err := HBar(&sb2, []string{"z"}, []float64{0}, 10); err != nil {
		t.Fatal(err)
	}
}

func TestHeat(t *testing.T) {
	var sb strings.Builder
	rows := [][]float64{{0, 0.05, 0.2}, {0.4, 0.6, 0}}
	err := Heat(&sb, func(b int) []float64 { return rows[b] }, 2, 3,
		func(b int) string { return "row" })
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, ch := range []string{".", "o", "O", "@"} {
		if !strings.Contains(out, ch) {
			t.Errorf("missing shade %q in:\n%s", ch, out)
		}
	}
	err = Heat(&sb, func(b int) []float64 { return []float64{1} }, 1, 3,
		func(b int) string { return "" })
	if err == nil {
		t.Error("row width mismatch should error")
	}
}

func TestDensityShades(t *testing.T) {
	cases := map[int]byte{0: ' ', 1: '.', 4: 'o', 10: 'O', 100: '@'}
	for n, want := range cases {
		if got := density(n); got != want {
			t.Errorf("density(%d) = %c, want %c", n, got, want)
		}
	}
}
