// Package report renders experiment results as aligned ASCII tables,
// CSV files, and terminal plots (scatter, histogram, CCDF) — the output
// layer behind the cmd tools that regenerate the paper's figures.
package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strings"
)

// Table accumulates rows and renders them with aligned columns.
type Table struct {
	Header []string
	Rows   [][]string
}

// NewTable creates a table with the given header.
func NewTable(header ...string) *Table {
	return &Table{Header: header}
}

// Add appends a row, formatting each cell with %v.
func (t *Table) Add(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e9 {
		return fmt.Sprintf("%.1f", v)
	}
	return fmt.Sprintf("%.4f", v)
}

// Render writes the aligned table to w.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) string {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		return b.String()
	}
	if _, err := fmt.Fprintln(w, line(t.Header)); err != nil {
		return err
	}
	total := 0
	for _, wd := range widths {
		total += wd + 2
	}
	if _, err := fmt.Fprintln(w, strings.Repeat("-", total-2)); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV writes the table as CSV.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Header); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Scatter renders an ASCII scatter plot of (x, y) points, both assumed
// in [0,1] — the terminal rendition of Figures 2 and 8.
func Scatter(w io.Writer, xs, ys []float64, width, height int, xlabel, ylabel string) error {
	if len(xs) != len(ys) {
		return fmt.Errorf("report: scatter length mismatch %d vs %d", len(xs), len(ys))
	}
	if width < 8 || height < 4 {
		return fmt.Errorf("report: plot area too small")
	}
	grid := make([][]int, height)
	for i := range grid {
		grid[i] = make([]int, width)
	}
	for i := range xs {
		x, y := clamp01(xs[i]), clamp01(ys[i])
		cx := int(x * float64(width-1))
		cy := int(y * float64(height-1))
		grid[height-1-cy][cx]++
	}
	if _, err := fmt.Fprintf(w, "%s\n", ylabel); err != nil {
		return err
	}
	for r := 0; r < height; r++ {
		var b strings.Builder
		b.WriteString("|")
		for c := 0; c < width; c++ {
			b.WriteByte(density(grid[r][c]))
		}
		if _, err := fmt.Fprintln(w, b.String()); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "+%s\n", strings.Repeat("-", width)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, " 0%s%s 1\n", strings.Repeat(" ", width-len(xlabel)-3), xlabel)
	return err
}

func density(n int) byte {
	switch {
	case n == 0:
		return ' '
	case n <= 2:
		return '.'
	case n <= 5:
		return 'o'
	case n <= 15:
		return 'O'
	default:
		return '@'
	}
}

func clamp01(v float64) float64 {
	if v < 0 || math.IsNaN(v) {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// HBar renders a horizontal bar chart of labelled values.
func HBar(w io.Writer, labels []string, values []float64, width int) error {
	if len(labels) != len(values) {
		return fmt.Errorf("report: bar length mismatch")
	}
	maxV := 0.0
	maxL := 0
	for i, v := range values {
		if v > maxV {
			maxV = v
		}
		if len(labels[i]) > maxL {
			maxL = len(labels[i])
		}
	}
	for i, v := range values {
		bar := 0
		if maxV > 0 {
			bar = int(v / maxV * float64(width))
		}
		if _, err := fmt.Fprintf(w, "%-*s %s %s\n", maxL, labels[i],
			strings.Repeat("#", bar), formatFloat(v)); err != nil {
			return err
		}
	}
	return nil
}

// Heat renders a category×bin frequency grid (Figures 3-4 style):
// rows are value intervals from high to low, columns are categories,
// cells shaded by row-normalised frequency.
func Heat(w io.Writer, rowNorm func(bin int) []float64, bins, categories int, rowLabel func(bin int) string) error {
	for b := bins - 1; b >= 0; b-- {
		frac := rowNorm(b)
		if len(frac) != categories {
			return fmt.Errorf("report: heat row width mismatch")
		}
		var sb strings.Builder
		sb.WriteString(rowLabel(b))
		sb.WriteString(" ")
		for c := 0; c < categories; c++ {
			sb.WriteByte(shade(frac[c]))
			sb.WriteByte(' ')
		}
		if _, err := fmt.Fprintln(w, sb.String()); err != nil {
			return err
		}
	}
	return nil
}

func shade(f float64) byte {
	switch {
	case f <= 0:
		return ' '
	case f < 0.1:
		return '.'
	case f < 0.25:
		return 'o'
	case f < 0.5:
		return 'O'
	default:
		return '@'
	}
}
