package exp

import (
	"strings"
	"testing"
)

func TestCSVRoundTrip(t *testing.T) {
	r := sweepForTest(t)
	var sb strings.Builder
	if err := r.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Protocols) != len(r.Protocols) {
		t.Fatalf("rows = %d, want %d", len(back.Protocols), len(r.Protocols))
	}
	for i := range r.Protocols {
		if back.Protocols[i] != r.Protocols[i] {
			t.Fatalf("protocol %d changed", i)
		}
		if diff(back.Scores.Performance[i], r.Scores.Performance[i]) > 1e-6 ||
			diff(back.Scores.Robustness[i], r.Scores.Robustness[i]) > 1e-6 ||
			diff(back.Scores.Aggressiveness[i], r.Scores.Aggressiveness[i]) > 1e-6 ||
			diff(back.Scores.RawPerformance[i], r.Scores.RawPerformance[i]) > 1e-4 {
			t.Fatalf("scores %d changed", i)
		}
	}
}

func diff(a, b float64) float64 {
	if a > b {
		return a - b
	}
	return b - a
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"",           // empty
		"protocol\n", // header only, missing columns
		"protocol,raw_kbps,performance,robustness,aggressiveness\nBADCODE,1,1,1,1\n",
		"protocol,raw_kbps,performance,robustness,aggressiveness\nB1h1-C1-I1k4-R1,x,1,1,1\n",
	}
	for i, in := range cases {
		if _, err := ReadCSV(strings.NewReader(in)); err == nil {
			t.Errorf("case %d should error", i)
		}
	}
}

func TestReadCSVTolerantToExtraColumns(t *testing.T) {
	in := "extra,protocol,raw_kbps,performance,robustness,aggressiveness\n" +
		"zz,B1h1-C1-I1k4-R1,100,0.5,0.25,0.125\n"
	res, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Protocols) != 1 || res.Scores.Robustness[0] != 0.25 {
		t.Fatalf("parsed %+v", res.Scores)
	}
}
