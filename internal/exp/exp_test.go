package exp

import (
	"context"
	"math"
	"reflect"
	"testing"

	"repro/internal/design"
	"repro/internal/job"
	"repro/internal/pra"
	"repro/internal/swarm"
)

// tinyCfg is small enough for unit tests while exercising every path.
func tinyCfg() pra.Config {
	return pra.Config{Peers: 14, Rounds: 50, PerfRuns: 1, EncounterRuns: 1, Opponents: 6, Seed: 3}
}

// subset returns a representative protocol subset including the named
// protocols plus a stride over the space.
func subset(stride int) []design.Protocol {
	var ps []design.Protocol
	for _, p := range design.Named() {
		ps = append(ps, p)
	}
	all := design.Enumerate()
	for i := 0; i < len(all); i += stride {
		ps = append(ps, all[i])
	}
	return ps
}

func sweepForTest(t *testing.T) *SweepResult {
	t.Helper()
	r, err := Sweep(subset(150), tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestSweepJobCheckpointRoundTrip(t *testing.T) {
	ps := subset(400)
	want, err := Sweep(ps, tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	got, err := SweepJob(context.Background(), ps, tinyCfg(), job.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Scores, want.Scores) {
		t.Fatal("checkpointed SweepJob does not match plain Sweep")
	}
	loaded, err := LoadCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(loaded.Scores, want.Scores) {
		t.Fatal("LoadCheckpoint does not match plain Sweep")
	}
	if !reflect.DeepEqual(loaded.Protocols, want.Protocols) {
		t.Fatal("LoadCheckpoint protocol list does not match")
	}
}

func TestSweepAndFig2(t *testing.T) {
	r := sweepForTest(t)
	xs, ys := r.Fig2()
	if len(xs) != len(r.Protocols) || len(ys) != len(r.Protocols) {
		t.Fatal("Fig2 lengths wrong")
	}
	for i := range xs {
		if xs[i] < 0 || xs[i] > 1 || ys[i] < 0 || ys[i] > 1 {
			t.Fatalf("point %d out of range: %v,%v", i, xs[i], ys[i])
		}
	}
}

func TestFig3Fig4Heat(t *testing.T) {
	r := sweepForTest(t)
	h3 := r.Fig3(10)
	h4 := r.Fig4(10)
	total3, total4 := 0, 0
	for c := 0; c <= design.MaxPartners; c++ {
		for b := 0; b < 10; b++ {
			total3 += h3.Counts[c][b]
			total4 += h4.Counts[c][b]
		}
	}
	if total3 != len(r.Protocols) || total4 != len(r.Protocols) {
		t.Errorf("heat mass = %d/%d, want %d", total3, total4, len(r.Protocols))
	}
}

func TestFig5GroupsCoverStrangerPolicies(t *testing.T) {
	r := sweepForTest(t)
	curves := r.Fig5()
	for _, name := range []string{"Periodic", "WhenNeeded", "Defect"} {
		if len(curves[name]) == 0 {
			t.Errorf("missing CCDF for %s", name)
		}
	}
}

func TestFig6Fig7Groups(t *testing.T) {
	r := sweepForTest(t)
	for _, pts := range [][]GroupPoint{r.Fig6(), r.Fig7()} {
		if len(pts) != len(r.Protocols) {
			t.Fatal("group point count mismatch")
		}
		for _, p := range pts {
			if p.Group == "" {
				t.Fatal("empty group label")
			}
		}
	}
}

func TestFig8Pearson(t *testing.T) {
	r := sweepForTest(t)
	xs, ys, pearson, err := r.Fig8()
	if err != nil {
		t.Fatal(err)
	}
	if len(xs) != len(ys) {
		t.Fatal("length mismatch")
	}
	// Robustness and aggressiveness should correlate strongly and
	// positively (paper: 0.96).
	if pearson < 0.5 {
		t.Errorf("Pearson(R,A) = %v, want strongly positive", pearson)
	}
}

func TestTable3Regression(t *testing.T) {
	r := sweepForTest(t)
	perf, rob, agg, err := r.Table3()
	if err != nil {
		t.Fatal(err)
	}
	// Structural checks: 13 coefficients (intercept + 12 regressors).
	for _, fit := range []interface{ DF() int }{perf, rob, agg} {
		if fit.DF() <= 0 {
			t.Fatal("no residual degrees of freedom")
		}
	}
	if perf.Coef("R3") == nil || rob.Coef("B3") == nil || agg.Coef("log(h~)") == nil {
		t.Fatal("expected coefficients missing")
	}
	// Sign checks from Table 3: Freeride (R3) has the biggest negative
	// impact on Performance; Defect (B3) hurts Robustness.
	if perf.Coef("R3").Estimate >= 0 {
		t.Errorf("R3 performance estimate = %v, want negative", perf.Coef("R3").Estimate)
	}
	if rob.Coef("B3").Estimate >= 0 {
		t.Errorf("B3 robustness estimate = %v, want negative", rob.Coef("B3").Estimate)
	}
	if agg.Coef("R3").Estimate >= 0 {
		t.Errorf("R3 aggressiveness estimate = %v, want negative", agg.Coef("R3").Estimate)
	}
}

func TestValidate9010(t *testing.T) {
	r := sweepForTest(t)
	r5050, r9010, pearson, err := r.Validate9010(tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(r5050) != len(r9010) {
		t.Fatal("length mismatch")
	}
	// At tiny scale the correlation is noisy but must be positive
	// (paper reports 0.97 at full scale).
	if pearson <= 0 {
		t.Errorf("Pearson(50-50, 90-10) = %v, want positive", pearson)
	}
}

func TestChurnSweep(t *testing.T) {
	pts, err := ChurnSweep(subset(300), []float64{0.01, 0.1}, tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	for _, pt := range pts {
		if len(pt.MeanPerfK) != design.MaxPartners+1 {
			t.Fatal("per-k vector wrong length")
		}
	}
}

func TestFig9Drivers(t *testing.T) {
	cfg := swarm.Default()
	cfg.FileKiB = 1024
	cfg.PieceKiB = 128
	for _, f := range []func(int, int, swarm.Config) ([]swarm.MixPoint, error){Fig9a, Fig9b, Fig9c} {
		pts, err := f(10, 1, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(pts) != len(Fig9Fractions) {
			t.Fatalf("points = %d, want %d", len(pts), len(Fig9Fractions))
		}
	}
}

func TestFig10Driver(t *testing.T) {
	cfg := swarm.Default()
	cfg.FileKiB = 1024
	cfg.PieceKiB = 128
	out, err := Fig10(10, 2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(Fig10Clients) {
		t.Fatalf("clients = %d", len(out))
	}
	for c, ci := range out {
		if ci.Mean <= 0 || math.IsNaN(ci.Mean) {
			t.Errorf("%s mean = %v", c, ci.Mean)
		}
	}
}

func TestNash(t *testing.T) {
	rep, err := Nash()
	if err != nil {
		t.Fatal(err)
	}
	if rep.BTVerdict.IsEquilibrium() {
		t.Error("BT should not be an equilibrium")
	}
	if !rep.BirdsVerdict.IsEquilibrium() {
		t.Error("Birds should be an equilibrium")
	}
	if rep.Example.Validate() != nil {
		t.Error("example params invalid")
	}
}
