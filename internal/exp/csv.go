package exp

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"repro/internal/design"
	"repro/internal/dsa"
	"repro/internal/pra"
)

// WriteDomainCSV writes assembled generic scores in the domain's
// canonical CSV layout: the swarming domain keeps the original
// dsa-sweep column set (ReadCSV and the figure/table extractors parse
// it), every other domain uses the generic dsa layout. Every tool —
// dsa-sweep, dsa-grid, the grid results API — goes through this one
// function, so a domain's CSV is interchangeable regardless of which
// engine produced it.
func WriteDomainCSV(w io.Writer, d dsa.Domain, s *dsa.Scores) error {
	if d.Name() != pra.DomainName {
		return dsa.WriteCSV(w, d, s)
	}
	typed, err := pra.ScoresFromGeneric(s)
	if err != nil {
		return err
	}
	res := &SweepResult{Protocols: typed.Protocols, Scores: typed}
	return res.WriteCSV(w)
}

// csvHeader is the column layout shared by WriteCSV and ReadCSV (and
// therefore by the dsa-sweep and dsa-report tools).
var csvHeader = []string{
	"id", "protocol", "stranger", "h", "candidates", "ranking", "k",
	"allocation", "raw_kbps", "performance", "robustness", "aggressiveness",
}

// WriteCSV serialises a sweep result in the dsa-sweep CSV format.
func (r *SweepResult) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	for i, p := range r.Protocols {
		row := []string{
			strconv.Itoa(design.ID(p)), p.String(), p.Stranger.String(),
			strconv.Itoa(p.H), p.Candidate.String(), p.Ranking.String(),
			strconv.Itoa(p.K), p.Allocation.String(),
			fmt.Sprintf("%.6f", r.Scores.RawPerformance[i]),
			fmt.Sprintf("%.6f", r.Scores.Performance[i]),
			fmt.Sprintf("%.6f", r.Scores.Robustness[i]),
			fmt.Sprintf("%.6f", r.Scores.Aggressiveness[i]),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a dsa-sweep CSV back into a SweepResult. Columns are
// located by header name, so extra columns and reordering are fine.
func ReadCSV(r io.Reader) (*SweepResult, error) {
	rows, err := csv.NewReader(r).ReadAll()
	if err != nil {
		return nil, err
	}
	if len(rows) < 2 {
		return nil, fmt.Errorf("exp: CSV has no data rows")
	}
	col := map[string]int{}
	for i, h := range rows[0] {
		col[h] = i
	}
	for _, need := range []string{"protocol", "raw_kbps", "performance", "robustness", "aggressiveness"} {
		if _, ok := col[need]; !ok {
			return nil, fmt.Errorf("exp: CSV column %q missing", need)
		}
	}
	res := &SweepResult{Scores: &pra.Scores{}}
	for rowIdx, row := range rows[1:] {
		p, err := design.Parse(row[col["protocol"]])
		if err != nil {
			return nil, fmt.Errorf("exp: row %d: %w", rowIdx+2, err)
		}
		res.Protocols = append(res.Protocols, p)
		for _, c := range []struct {
			name string
			dst  *[]float64
		}{
			{"raw_kbps", &res.Scores.RawPerformance},
			{"performance", &res.Scores.Performance},
			{"robustness", &res.Scores.Robustness},
			{"aggressiveness", &res.Scores.Aggressiveness},
		} {
			v, err := strconv.ParseFloat(row[col[c.name]], 64)
			if err != nil {
				return nil, fmt.Errorf("exp: row %d: bad %s: %w", rowIdx+2, c.name, err)
			}
			*c.dst = append(*c.dst, v)
		}
	}
	res.Scores.Protocols = res.Protocols
	return res, nil
}
