// Package exp contains one driver per table and figure of the paper's
// evaluation, parameterised by scale so the same code backs the quick
// benchmarks and the full paper-scale reruns. The experiment index in
// DESIGN.md maps each paper artefact to its driver here.
package exp

import (
	"context"
	"fmt"
	"math"

	"repro/internal/analytic"
	"repro/internal/core"
	"repro/internal/design"
	"repro/internal/job"
	"repro/internal/pra"
	"repro/internal/stats"
	"repro/internal/swarm"
)

// SweepResult bundles the PRA scores of a protocol set — the raw
// material of Figures 2-8 and Table 3.
type SweepResult struct {
	Protocols []design.Protocol
	Scores    *pra.Scores
}

// Sweep runs the PRA quantification over the given protocols (nil =
// the whole 3270-protocol space). It is a thin wrapper over the job
// engine with sharding and checkpointing off; use SweepJob for
// paper-scale runs that need either.
func Sweep(protos []design.Protocol, cfg pra.Config) (*SweepResult, error) {
	return SweepJob(context.Background(), protos, cfg, job.Options{})
}

// SweepJob runs the sweep on the sharded, checkpointed job engine: the
// work is cut into deterministic (measure × protocol chunk) tasks,
// this process executes its shard's share on a worker pool, completed
// tasks are journalled to opts.Dir, and a cancelled or killed run
// resumes where it left off. The engine itself is domain-agnostic
// (package job runs any dsa.Domain); this wrapper binds it to the
// file-swarming domain and the typed Scores. If other shards still own
// outstanding tasks it returns job.ErrIncomplete.
func SweepJob(ctx context.Context, protos []design.Protocol, cfg pra.Config, opts job.Options) (*SweepResult, error) {
	if protos == nil {
		protos = design.Enumerate()
	}
	if cfg.Dist != nil {
		// A custom bandwidth distribution cannot cross the generic
		// Domain boundary (it is not serialisable into a checkpoint
		// spec), so this path runs the quantification in-process.
		// Options.Workers still applies; Options.Progress does not
		// fire (there are no engine tasks to report on).
		if opts.Dir != "" || opts.Shards > 1 {
			return nil, fmt.Errorf("exp: sweeps with a custom bandwidth distribution cannot be checkpointed or sharded")
		}
		if shards := max(opts.Shards, 1); opts.ShardIndex < 0 || opts.ShardIndex >= shards {
			return nil, fmt.Errorf("exp: shard index %d out of range [0,%d)", opts.ShardIndex, shards)
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if opts.Workers > 0 {
			cfg.Workers = opts.Workers
		}
		scores, err := pra.Run(protos, cfg)
		if err != nil {
			return nil, err
		}
		return &SweepResult{Protocols: protos, Scores: scores}, nil
	}
	points := make([]core.Point, len(protos))
	for i, p := range protos {
		points[i] = core.ProtocolPoint(p)
	}
	generic, err := job.Run(ctx, pra.Domain(), points, cfg.Generic(), opts)
	if err != nil {
		return nil, err
	}
	scores, err := pra.ScoresFromGeneric(generic)
	if err != nil {
		return nil, err
	}
	return &SweepResult{Protocols: protos, Scores: scores}, nil
}

// LoadCheckpoint reassembles a checkpointed file-swarming sweep —
// possibly written by several shard processes whose manifests were
// merged into dir — without running any simulation.
func LoadCheckpoint(dir string) (*SweepResult, error) {
	generic, err := job.Load(dir)
	if err != nil {
		return nil, err
	}
	scores, err := pra.ScoresFromGeneric(generic)
	if err != nil {
		return nil, err
	}
	return &SweepResult{Protocols: scores.Protocols, Scores: scores}, nil
}

// Fig2 returns the Robustness (x) and Performance (y) coordinates of
// every protocol — the scatter of Figure 2.
func (r *SweepResult) Fig2() (xs, ys []float64) {
	return r.Scores.Robustness, r.Scores.Performance
}

// Fig3 returns the Figure 3 heat data: for each partner count k (0-9),
// a histogram of normalised Performance over `bins` intervals.
func (r *SweepResult) Fig3(bins int) *stats.Hist2D {
	return r.heatByK(r.Scores.Performance, bins)
}

// Fig4 returns the Figure 4 heat data: Robustness by partner count.
func (r *SweepResult) Fig4(bins int) *stats.Hist2D {
	return r.heatByK(r.Scores.Robustness, bins)
}

func (r *SweepResult) heatByK(values []float64, bins int) *stats.Hist2D {
	h := stats.NewHist2D(design.MaxPartners+1, bins, 0, 1)
	for i, p := range r.Protocols {
		h.Add(p.K, values[i])
	}
	return h
}

// Fig5 returns the Figure 5 CCDF curves: Robustness grouped by
// stranger policy kind (Periodic, WhenNeeded, Defect). The paper plots
// these three; protocols with no strangers are reported under "None".
func (r *SweepResult) Fig5() map[string][]stats.CCDFPoint {
	groups := map[string][]float64{}
	for i, p := range r.Protocols {
		groups[p.Stranger.String()] = append(groups[p.Stranger.String()], r.Scores.Robustness[i])
	}
	out := make(map[string][]stats.CCDFPoint, len(groups))
	for name, vals := range groups {
		out[name] = stats.CCDF(vals)
	}
	return out
}

// GroupPoint is one protocol's coordinates in a grouped strip plot
// (Figures 6 and 7): its group label, robustness, and performance
// (rendered as circle size in the paper).
type GroupPoint struct {
	Group       string
	Robustness  float64
	Performance float64
}

// Fig6 returns Figure 6's strip data: robustness by allocation policy.
func (r *SweepResult) Fig6() []GroupPoint {
	out := make([]GroupPoint, len(r.Protocols))
	for i, p := range r.Protocols {
		out[i] = GroupPoint{p.Allocation.String(), r.Scores.Robustness[i], r.Scores.Performance[i]}
	}
	return out
}

// Fig7 returns Figure 7's strip data: robustness by ranking function.
func (r *SweepResult) Fig7() []GroupPoint {
	out := make([]GroupPoint, len(r.Protocols))
	for i, p := range r.Protocols {
		out[i] = GroupPoint{p.Ranking.String(), r.Scores.Robustness[i], r.Scores.Performance[i]}
	}
	return out
}

// Fig8 returns the Robustness/Aggressiveness scatter and their Pearson
// correlation (the paper reports r = 0.96).
func (r *SweepResult) Fig8() (xs, ys []float64, pearson float64, err error) {
	xs, ys = r.Scores.Robustness, r.Scores.Aggressiveness
	pearson, err = stats.Pearson(xs, ys)
	return xs, ys, pearson, err
}

// Table3 fits the paper's multiple linear regression for each PRA
// measure over the protocol set. Regressors follow Table 3: the
// standardised logs of k and h (log1p, since both include 0), dummy
// variables for B2, B3 (baseline B1/none), C2 (baseline C1), I2-I6
// (baseline I1) and R2, R3 (baseline R1).
func (r *SweepResult) Table3() (performance, robustness, aggressiveness *stats.OLSResult, err error) {
	n := len(r.Protocols)
	logK := make([]float64, n)
	logH := make([]float64, n)
	for i, p := range r.Protocols {
		logK[i] = math.Log1p(float64(p.K))
		logH[i] = math.Log1p(float64(p.H))
	}
	logK = stats.Standardize(logK)
	logH = stats.Standardize(logH)

	fit := func(y []float64) (*stats.OLSResult, error) {
		b := stats.NewDesignBuilder()
		b.AddNumeric("log(k~)")
		b.AddNumeric("log(h~)")
		b.AddDummies("B2", "B3")
		b.AddDummies("C2")
		b.AddDummies("I2", "I3", "I4", "I5", "I6")
		b.AddDummies("R2", "R3")
		for i, p := range r.Protocols {
			row := []float64{
				logK[i], logH[i],
				dummy(p.Stranger == design.WhenNeeded), dummy(p.Stranger == design.DefectStrangers),
				dummy(p.Candidate == design.TF2T),
				dummy(p.Ranking == design.Slowest), dummy(p.Ranking == design.Proximity),
				dummy(p.Ranking == design.Adaptive), dummy(p.Ranking == design.Loyal),
				dummy(p.Ranking == design.RandomRank),
				dummy(p.Allocation == design.PropShare), dummy(p.Allocation == design.Freeride),
			}
			b.AddRow(y[i], row...)
		}
		return b.Fit()
	}
	if performance, err = fit(r.Scores.Performance); err != nil {
		return nil, nil, nil, fmt.Errorf("exp: Table3 performance: %w", err)
	}
	if robustness, err = fit(r.Scores.Robustness); err != nil {
		return nil, nil, nil, fmt.Errorf("exp: Table3 robustness: %w", err)
	}
	if aggressiveness, err = fit(r.Scores.Aggressiveness); err != nil {
		return nil, nil, nil, fmt.Errorf("exp: Table3 aggressiveness: %w", err)
	}
	return performance, robustness, aggressiveness, nil
}

func dummy(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// Validate9010 re-runs the robustness tournament with the protocol
// under test at 90% of the population (invaders at 10%) and returns
// both robustness vectors and their Pearson correlation — the paper's
// §4.3.2 validation (r = 0.97).
func (r *SweepResult) Validate9010(cfg pra.Config) (rob5050, rob9010 []float64, pearson float64, err error) {
	opponents := pra.SampleOpponents(cfg)
	rob9010, err = pra.TournamentScores(r.Protocols, opponents, 0.9, cfg)
	if err != nil {
		return nil, nil, 0, err
	}
	pearson, err = stats.Pearson(r.Scores.Robustness, rob9010)
	if err != nil {
		return nil, nil, 0, err
	}
	return r.Scores.Robustness, rob9010, pearson, nil
}

// ChurnPoint reports mean normalised performance per partner count at
// one churn rate — the §4.4 churn sensitivity check.
type ChurnPoint struct {
	Churn     float64
	MeanPerfK []float64 // indexed by k (0..MaxPartners)
}

// ChurnSweep measures homogeneous performance across the protocol set
// at the given churn rates and aggregates mean normalised performance
// per partner count. The paper's claim: low-k protocols stay on top.
func ChurnSweep(protos []design.Protocol, rates []float64, cfg pra.Config) ([]ChurnPoint, error) {
	if protos == nil {
		protos = design.Enumerate()
	}
	out := make([]ChurnPoint, 0, len(rates))
	for _, rate := range rates {
		c := cfg
		c.Churn = rate
		raw, err := pra.PerformanceSweep(protos, c)
		if err != nil {
			return nil, err
		}
		norm := stats.MinMaxNormalize(raw)
		sums := make([]float64, design.MaxPartners+1)
		counts := make([]int, design.MaxPartners+1)
		for i, p := range protos {
			sums[p.K] += norm[i]
			counts[p.K]++
		}
		pt := ChurnPoint{Churn: rate, MeanPerfK: make([]float64, design.MaxPartners+1)}
		for k := range sums {
			if counts[k] > 0 {
				pt.MeanPerfK[k] = sums[k] / float64(counts[k])
			}
		}
		out = append(out, pt)
	}
	return out, nil
}

// Fig9Fractions are the swarm compositions of Figure 9.
var Fig9Fractions = []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 1}

// Fig9a runs Loyal-When-needed vs BitTorrent (Figure 9a).
func Fig9a(n, runs int, cfg swarm.Config) ([]swarm.MixPoint, error) {
	return swarm.EncounterSeries(swarm.ClientLoyal, swarm.ClientBT, Fig9Fractions, n, runs, cfg)
}

// Fig9b runs Birds vs BitTorrent (Figure 9b).
func Fig9b(n, runs int, cfg swarm.Config) ([]swarm.MixPoint, error) {
	return swarm.EncounterSeries(swarm.ClientBirds, swarm.ClientBT, Fig9Fractions, n, runs, cfg)
}

// Fig9c runs Loyal-When-needed vs Birds (Figure 9c).
func Fig9c(n, runs int, cfg swarm.Config) ([]swarm.MixPoint, error) {
	return swarm.EncounterSeries(swarm.ClientLoyal, swarm.ClientBirds, Fig9Fractions, n, runs, cfg)
}

// Fig10Clients is the protocol lineup of Figure 10, in the paper's
// left-to-right order.
var Fig10Clients = []swarm.Client{
	swarm.ClientSortS, swarm.ClientRandom, swarm.ClientLoyal, swarm.ClientBT, swarm.ClientBirds,
}

// Fig10 measures homogeneous swarms for every client variant.
func Fig10(n, runs int, cfg swarm.Config) (map[swarm.Client]stats.MeanCI, error) {
	out := make(map[swarm.Client]stats.MeanCI, len(Fig10Clients))
	for _, c := range Fig10Clients {
		ci, err := swarm.Homogeneous(c, n, runs, cfg)
		if err != nil {
			return nil, err
		}
		out[c] = ci
	}
	return out, nil
}

// NashReport bundles the Section 2 analytical results.
type NashReport struct {
	BTVerdict    analytic.Verdict // Birds deviation in a BT swarm
	BirdsVerdict analytic.Verdict // BT deviation in a Birds swarm
	Example      Params           // one worked example configuration
}

// Params is a readable alias for the analytic model parameters.
type Params = analytic.Params

// Nash evaluates the Appendix equilibrium claims over the default grid.
func Nash() (NashReport, error) {
	grid := analytic.DefaultGrid()
	bt, err := analytic.CheckBTNash(grid)
	if err != nil {
		return NashReport{}, err
	}
	birds, err := analytic.CheckBirdsNash(grid)
	if err != nil {
		return NashReport{}, err
	}
	return NashReport{
		BTVerdict:    bt,
		BirdsVerdict: birds,
		Example:      Params{NA: 20, NB: 15, NC: 15, Ur: 4},
	}, nil
}
