package game

import (
	"math/rand"
	"testing"
)

func rng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func TestTFTMirrors(t *testing.T) {
	var s TFT
	if got := s.Move(nil, nil, rng(1)); got != Cooperate {
		t.Error("TFT must open with C")
	}
	if got := s.Move([]Action{Cooperate}, []Action{Defect}, rng(1)); got != Defect {
		t.Error("TFT must mirror a defection")
	}
	if got := s.Move([]Action{Defect}, []Action{Cooperate}, rng(1)); got != Cooperate {
		t.Error("TFT must forgive after cooperation")
	}
}

func TestTF2TForgivesSingleDefection(t *testing.T) {
	var s TF2T
	if got := s.Move([]Action{Cooperate}, []Action{Defect}, rng(1)); got != Cooperate {
		t.Error("TF2T should forgive one defection")
	}
	if got := s.Move([]Action{Cooperate, Cooperate}, []Action{Defect, Defect}, rng(1)); got != Defect {
		t.Error("TF2T should punish two defections")
	}
}

func TestGrimTriggers(t *testing.T) {
	g := &Grim{}
	g.Reset()
	if got := g.Move(nil, nil, rng(1)); got != Cooperate {
		t.Error("Grim opens with C")
	}
	if got := g.Move([]Action{Cooperate}, []Action{Defect}, rng(1)); got != Defect {
		t.Error("Grim must trigger")
	}
	// Once triggered, defects forever even if opponent cooperates.
	if got := g.Move([]Action{Cooperate, Defect}, []Action{Defect, Cooperate}, rng(1)); got != Defect {
		t.Error("Grim must stay triggered")
	}
	g.Reset()
	if got := g.Move(nil, nil, rng(1)); got != Cooperate {
		t.Error("Reset must clear the trigger")
	}
}

func TestWSLS(t *testing.T) {
	var s WSLS
	if got := s.Move(nil, nil, rng(1)); got != Cooperate {
		t.Error("WSLS opens with C")
	}
	// Win (opp cooperated): stay with own last move.
	if got := s.Move([]Action{Defect}, []Action{Cooperate}, rng(1)); got != Defect {
		t.Error("WSLS should stay after win")
	}
	// Lose (opp defected): shift.
	if got := s.Move([]Action{Defect}, []Action{Defect}, rng(1)); got != Cooperate {
		t.Error("WSLS should shift after loss")
	}
}

func TestRandomStrategyExtremes(t *testing.T) {
	r := rng(5)
	always := RandomStrategy{P: 1}
	never := RandomStrategy{P: 0}
	for i := 0; i < 50; i++ {
		if always.Move(nil, nil, r) != Cooperate {
			t.Fatal("P=1 must always cooperate")
		}
		if never.Move(nil, nil, r) != Defect {
			t.Fatal("P=0 must always defect")
		}
	}
	if always.Name() != "Random(1.00)" {
		t.Errorf("name = %q", always.Name())
	}
}

func TestPlayMatchTFTvsAllD(t *testing.T) {
	// TFT vs AllD over the 5/3/1/0 PD: TFT loses only the first round.
	g := StandardPD()
	res := PlayMatch(g, TFT{}, AllD{}, 10, rng(1))
	// Round 1: TFT C (0), AllD D (5). Rounds 2-10: both D (1,1).
	if res.RowScore != 0+9*1 {
		t.Errorf("TFT score = %v, want 9", res.RowScore)
	}
	if res.ColScore != 5+9*1 {
		t.Errorf("AllD score = %v, want 14", res.ColScore)
	}
	if len(res.Moves[0]) != 10 || len(res.Moves[1]) != 10 {
		t.Error("history length wrong")
	}
}

func TestPlayMatchMutualTFT(t *testing.T) {
	g := StandardPD()
	res := PlayMatch(g, TFT{}, TFT{}, 100, rng(1))
	if res.RowScore != 300 || res.ColScore != 300 {
		t.Errorf("mutual TFT = %v/%v, want 300/300", res.RowScore, res.ColScore)
	}
}

func TestPlayMatchDeterministic(t *testing.T) {
	g := StandardPD()
	a := PlayMatch(g, RandomStrategy{P: 0.5}, TFT{}, 50, rng(7))
	b := PlayMatch(g, RandomStrategy{P: 0.5}, TFT{}, 50, rng(7))
	if a.RowScore != b.RowScore || a.ColScore != b.ColScore {
		t.Error("same seed must give same match")
	}
}

func TestRoundRobinAxelrodFlavour(t *testing.T) {
	// In a PD round-robin with this lineup, AllD must not beat TFT on
	// average (Axelrod's classic observation over long matches).
	g := StandardPD()
	strategies := []Strategy{TFT{}, AllD{}, AllC{}, TF2T{}, &Grim{}, WSLS{}}
	entries := RoundRobin(g, strategies, 200, 99)
	byName := map[string]TournamentEntry{}
	for _, e := range entries {
		byName[e.Strategy] = e
	}
	if byName["TFT"].Average <= byName["AllD"].Average {
		t.Errorf("TFT avg %v should beat AllD avg %v over long matches",
			byName["TFT"].Average, byName["AllD"].Average)
	}
	for _, e := range entries {
		if e.Matches != len(strategies)+1 {
			// Each strategy plays every other once plus itself twice
			// (once per side).
			t.Errorf("%s matches = %d, want %d", e.Strategy, e.Matches, len(strategies)+1)
		}
	}
}

func TestRoundRobinDeterminism(t *testing.T) {
	g := StandardPD()
	s1 := []Strategy{TFT{}, AllD{}, RandomStrategy{P: 0.5}}
	s2 := []Strategy{TFT{}, AllD{}, RandomStrategy{P: 0.5}}
	a := RoundRobin(g, s1, 100, 42)
	b := RoundRobin(g, s2, 100, 42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("tournament not deterministic")
		}
	}
}

func TestIteratedBitTorrentDilemma(t *testing.T) {
	// In the iterated BT Dilemma (fast row, slow col), a fast AllD
	// against a slow AllC accumulates s per round — the "free rides"
	// the paper describes.
	g, err := BitTorrentDilemma(100, 20)
	if err != nil {
		t.Fatal(err)
	}
	res := PlayMatch(g, AllD{}, AllC{}, 10, rng(1))
	if res.RowScore != 200 {
		t.Errorf("fast AllD score = %v, want 200", res.RowScore)
	}
	if res.ColScore != 0 {
		t.Errorf("slow AllC score = %v, want 0", res.ColScore)
	}
}

func TestStrategyNames(t *testing.T) {
	all := []Strategy{AllC{}, AllD{}, TFT{}, TF2T{}, &Grim{}, WSLS{}}
	seen := map[string]bool{}
	for _, s := range all {
		n := s.Name()
		if n == "" || seen[n] {
			t.Errorf("bad or duplicate name %q", n)
		}
		seen[n] = true
	}
}
