package game

import (
	"math/rand"
	"strings"
	"testing"
)

func TestNoisyFlipsAtFullNoise(t *testing.T) {
	n := Noisy{Inner: AllC{}, P: 1}
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 20; i++ {
		if n.Move(nil, nil, r) != Defect {
			t.Fatal("P=1 noise must always flip")
		}
	}
	quiet := Noisy{Inner: AllC{}, P: 0}
	for i := 0; i < 20; i++ {
		if quiet.Move(nil, nil, r) != Cooperate {
			t.Fatal("P=0 noise must never flip")
		}
	}
}

func TestNoisyNameAndReset(t *testing.T) {
	g := &Grim{}
	n := Noisy{Inner: g, P: 0.1}
	if !strings.HasSuffix(n.Name(), "+noise") {
		t.Errorf("name = %q", n.Name())
	}
	g.triggered = true
	n.Reset()
	if g.triggered {
		t.Error("Reset must reach the inner strategy")
	}
}

func TestMutualTFTDegradesUnderNoise(t *testing.T) {
	// Two TFTs with noise fall into defection vendettas: their mutual
	// score must drop well below the noise-free 3-per-round.
	g := StandardPD()
	clean := PlayMatch(g, TFT{}, TFT{}, 500, rand.New(rand.NewSource(2)))
	noisy := PlayMatch(g,
		Noisy{Inner: TFT{}, P: 0.05},
		Noisy{Inner: TFT{}, P: 0.05},
		500, rand.New(rand.NewSource(2)))
	if noisy.RowScore >= clean.RowScore {
		t.Errorf("noisy TFT score %v should fall below clean %v", noisy.RowScore, clean.RowScore)
	}
}

func TestWSLSRecoversBetterThanGrimUnderNoise(t *testing.T) {
	// Pavlov self-corrects after an accidental defection; Grim never
	// does. In self-play under noise WSLS must out-score Grim.
	g := StandardPD()
	wsls := PlayMatch(g,
		Noisy{Inner: WSLS{}, P: 0.05},
		Noisy{Inner: WSLS{}, P: 0.05},
		1000, rand.New(rand.NewSource(3)))
	grim := PlayMatch(g,
		Noisy{Inner: &Grim{}, P: 0.05},
		Noisy{Inner: &Grim{}, P: 0.05},
		1000, rand.New(rand.NewSource(3)))
	if wsls.RowScore+wsls.ColScore <= grim.RowScore+grim.ColScore {
		t.Errorf("WSLS self-play %v should beat Grim self-play %v under noise",
			wsls.RowScore+wsls.ColScore, grim.RowScore+grim.ColScore)
	}
}

func TestNoiseSweepShape(t *testing.T) {
	g := StandardPD()
	strategies := []Strategy{TFT{}, AllD{}, WSLS{}}
	levels := []float64{0, 0.05, 0.2}
	out := NoiseSweep(g, strategies, levels, 200, 7)
	if len(out) != len(levels) {
		t.Fatalf("levels = %d", len(out))
	}
	for li, entries := range out {
		if len(entries) != len(strategies) {
			t.Fatalf("level %d: entries = %d", li, len(entries))
		}
	}
	// Noise-free level must match a plain round-robin.
	plain := RoundRobin(g, []Strategy{TFT{}, AllD{}, WSLS{}}, 200, 7)
	for i := range plain {
		if plain[i].Total != out[0][i].Total {
			t.Error("zero-noise level should equal the plain tournament")
		}
	}
}
