package game

import (
	"fmt"
	"math/rand"
)

// Strategy decides moves in an iterated 2×2 game. Implementations may
// keep per-match state; Reset is called before every new match.
//
// This mirrors how the paper treats BitTorrent: "Each peer plays a
// number of games with other peers ... following a Tit-for-Tat (TFT)
// like strategy" (Section 2.1).
type Strategy interface {
	// Name identifies the strategy in tournament tables.
	Name() string
	// Reset clears any per-match state before a new opponent.
	Reset()
	// Move returns the next action given the full history of own and
	// opponent moves (equal-length slices, oldest first) and an RNG
	// for mixed strategies.
	Move(own, opp []Action, rng *rand.Rand) Action
}

// AllC always cooperates.
type AllC struct{}

// Name implements Strategy.
func (AllC) Name() string { return "AllC" }

// Reset implements Strategy.
func (AllC) Reset() {}

// Move implements Strategy.
func (AllC) Move(_, _ []Action, _ *rand.Rand) Action { return Cooperate }

// AllD always defects — the strategy Locher et al. showed exploits
// BitTorrent ("Free riding in BitTorrent is cheap", cited in §2.4).
type AllD struct{}

// Name implements Strategy.
func (AllD) Name() string { return "AllD" }

// Reset implements Strategy.
func (AllD) Reset() {}

// Move implements Strategy.
func (AllD) Move(_, _ []Action, _ *rand.Rand) Action { return Defect }

// TFT is Tit-for-Tat: cooperate first, then mirror the opponent's last
// move.
type TFT struct{}

// Name implements Strategy.
func (TFT) Name() string { return "TFT" }

// Reset implements Strategy.
func (TFT) Reset() {}

// Move implements Strategy.
func (TFT) Move(_, opp []Action, _ *rand.Rand) Action {
	if len(opp) == 0 {
		return Cooperate
	}
	return opp[len(opp)-1]
}

// TF2T is Tit-for-Two-Tats: defect only after two consecutive opponent
// defections. The paper's candidate-list actualization C2 is modelled
// on it (Axelrod [1]).
type TF2T struct{}

// Name implements Strategy.
func (TF2T) Name() string { return "TF2T" }

// Reset implements Strategy.
func (TF2T) Reset() {}

// Move implements Strategy.
func (TF2T) Move(_, opp []Action, _ *rand.Rand) Action {
	n := len(opp)
	if n >= 2 && opp[n-1] == Defect && opp[n-2] == Defect {
		return Defect
	}
	return Cooperate
}

// Grim cooperates until the opponent defects once, then defects forever.
type Grim struct {
	triggered bool
}

// Name implements Strategy.
func (*Grim) Name() string { return "Grim" }

// Reset implements Strategy.
func (g *Grim) Reset() { g.triggered = false }

// Move implements Strategy.
func (g *Grim) Move(_, opp []Action, _ *rand.Rand) Action {
	if g.triggered {
		return Defect
	}
	if n := len(opp); n > 0 && opp[n-1] == Defect {
		g.triggered = true
		return Defect
	}
	return Cooperate
}

// WSLS is Win-Stay-Lose-Shift (Pavlov): repeat the last move after a
// good outcome (opponent cooperated), switch after a bad one. The
// paper's Sort Adaptive ranking (I4) is inspired by the same
// aspiration-level idea (Posch [25]).
type WSLS struct{}

// Name implements Strategy.
func (WSLS) Name() string { return "WSLS" }

// Reset implements Strategy.
func (WSLS) Reset() {}

// Move implements Strategy.
func (WSLS) Move(own, opp []Action, _ *rand.Rand) Action {
	n := len(own)
	if n == 0 {
		return Cooperate
	}
	if opp[n-1] == Cooperate {
		return own[n-1] // win: stay
	}
	return 1 - own[n-1] // lose: shift
}

// RandomStrategy cooperates with probability P.
type RandomStrategy struct {
	P float64
}

// Name implements Strategy.
func (r RandomStrategy) Name() string { return fmt.Sprintf("Random(%.2f)", r.P) }

// Reset implements Strategy.
func (RandomStrategy) Reset() {}

// Move implements Strategy.
func (r RandomStrategy) Move(_, _ []Action, rng *rand.Rand) Action {
	if rng.Float64() < r.P {
		return Cooperate
	}
	return Defect
}

// MatchResult holds the totals of one iterated match.
type MatchResult struct {
	Rounds   int
	RowScore float64
	ColScore float64
	// Moves records the played history (index 0 = row player).
	Moves [2][]Action
}

// PlayMatch plays rounds iterations of g between row and col, resetting
// both strategies first. The RNG drives any mixed strategies; pass a
// deterministic source for reproducibility.
func PlayMatch(g *Bimatrix, row, col Strategy, rounds int, rng *rand.Rand) MatchResult {
	row.Reset()
	col.Reset()
	res := MatchResult{Rounds: rounds}
	rowHist := make([]Action, 0, rounds)
	colHist := make([]Action, 0, rounds)
	for i := 0; i < rounds; i++ {
		ra := row.Move(rowHist, colHist, rng)
		ca := col.Move(colHist, rowHist, rng)
		p := g.At(ra, ca)
		res.RowScore += p.Row
		res.ColScore += p.Col
		rowHist = append(rowHist, ra)
		colHist = append(colHist, ca)
	}
	res.Moves[0] = rowHist
	res.Moves[1] = colHist
	return res
}

// TournamentEntry is one strategy's aggregate result in a round-robin
// tournament.
type TournamentEntry struct {
	Strategy string
	Total    float64 // summed score over all matches
	Matches  int
	Average  float64 // Total / Matches
}

// RoundRobin plays every strategy against every other (and itself, as
// in Axelrod's tournaments) for rounds iterations per match and returns
// per-strategy aggregates, ordered as the input. Strategies must have
// distinct names. The game must be symmetric for the scores to be
// comparable; the caller is responsible for that.
func RoundRobin(g *Bimatrix, strategies []Strategy, rounds int, seed int64) []TournamentEntry {
	n := len(strategies)
	entries := make([]TournamentEntry, n)
	for i := range entries {
		entries[i].Strategy = strategies[i].Name()
	}
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			rng := rand.New(rand.NewSource(seed ^ int64(i*1000003+j)))
			res := PlayMatch(g, strategies[i], strategies[j], rounds, rng)
			entries[i].Total += res.RowScore
			entries[i].Matches++
			// Self-play counts once per side to keep totals comparable.
			entries[j].Total += res.ColScore
			entries[j].Matches++
		}
	}
	for i := range entries {
		if entries[i].Matches > 0 {
			entries[i].Average = entries[i].Total / float64(entries[i].Matches)
		}
	}
	return entries
}
