package game

import "math/rand"

// Noisy wraps a strategy with trembling-hand noise: with probability P
// the intended move is flipped. Axelrod's follow-up work (and Posch's
// WSLS analysis cited by the paper for the Adaptive ranking) showed
// that noise reshuffles the iterated-game rankings — TFT locks into
// vendettas while forgiving strategies recover — which is exactly the
// kind of fragility DSA's Robustness measure probes at the protocol
// level.
type Noisy struct {
	Inner Strategy
	P     float64
}

// Name implements Strategy.
func (n Noisy) Name() string { return n.Inner.Name() + "+noise" }

// Reset implements Strategy.
func (n Noisy) Reset() { n.Inner.Reset() }

// Move implements Strategy.
func (n Noisy) Move(own, opp []Action, rng *rand.Rand) Action {
	a := n.Inner.Move(own, opp, rng)
	if rng.Float64() < n.P {
		return 1 - a
	}
	return a
}

// NoiseSweep replays a round-robin tournament at each noise level and
// returns the per-strategy average scores, outer index matching levels.
// It quantifies how the Axelrod ranking degrades as execution noise
// grows.
func NoiseSweep(g *Bimatrix, strategies []Strategy, levels []float64, rounds int, seed int64) [][]TournamentEntry {
	out := make([][]TournamentEntry, len(levels))
	for li, p := range levels {
		noisy := make([]Strategy, len(strategies))
		for i, s := range strategies {
			if p > 0 {
				noisy[i] = Noisy{Inner: s, P: p}
			} else {
				noisy[i] = s
			}
		}
		out[li] = RoundRobin(g, noisy, rounds, seed+int64(li))
	}
	return out
}
