// Package game implements the game-theoretic substrate of Section 2:
// two-player 2×2 games (payoff matrices, dominance, pure Nash
// equilibria), the paper's BitTorrent Dilemma (Figure 1a) and its
// Birds modification (Figure 1c), and an iterated-game engine with the
// classic repeated-game strategies (AllC, AllD, TFT, TF2T, Grim,
// Win-Stay-Lose-Shift) played in Axelrod-style round-robin tournaments.
package game

import "fmt"

// Action is a move in a 2×2 game.
type Action int

// The two actions of every game in this package.
const (
	Cooperate Action = iota
	Defect
)

// String returns "C" or "D".
func (a Action) String() string {
	if a == Cooperate {
		return "C"
	}
	return "D"
}

// Payoff holds the payoffs of the row and column players for one
// outcome cell.
type Payoff struct {
	Row, Col float64
}

// Bimatrix is a general two-player 2×2 game. Cells is indexed
// [rowAction][colAction].
type Bimatrix struct {
	Name  string
	Cells [2][2]Payoff
}

// At returns the payoffs when row plays r and column plays c.
func (g *Bimatrix) At(r, c Action) Payoff { return g.Cells[r][c] }

// String renders the game as a small table.
func (g *Bimatrix) String() string {
	s := g.Name + "\n"
	for r := Action(0); r <= Defect; r++ {
		for c := Action(0); c <= Defect; c++ {
			p := g.At(r, c)
			s += fmt.Sprintf("(%s,%s)=(%g,%g) ", r, c, p.Row, p.Col)
		}
		s += "\n"
	}
	return s
}

// PrisonersDilemma returns the canonical PD with temptation t, reward r,
// punishment p and sucker payoff s (requires t > r > p > s for a true
// PD, which is validated).
func PrisonersDilemma(t, r, p, s float64) (*Bimatrix, error) {
	if !(t > r && r > p && p > s) {
		return nil, fmt.Errorf("game: PD requires t>r>p>s, got t=%g r=%g p=%g s=%g", t, r, p, s)
	}
	return &Bimatrix{
		Name: "Prisoner's Dilemma",
		Cells: [2][2]Payoff{
			{{r, r}, {s, t}},
			{{t, s}, {p, p}},
		},
	}, nil
}

// StandardPD returns the textbook 5/3/1/0 Prisoner's Dilemma.
func StandardPD() *Bimatrix {
	g, err := PrisonersDilemma(5, 3, 1, 0)
	if err != nil {
		panic("game: standard PD invalid: " + err.Error())
	}
	return g
}

// BitTorrentDilemma returns the game of Figure 1(a): the row player is
// a fast peer with upload speed f, the column player a slow peer with
// upload speed s (f > s > 0).
//
// The payoffs encode the paper's opportunity-cost reasoning:
//
//   - (C,C): the fast peer receives s but forgoes f from another fast
//     peer → s−f (negative); the slow peer downloads at f with no
//     opportunity cost charged in this (BitTorrent's) view → f.
//   - (D,C): the fast peer takes s for free → s; the slow peer gets
//     nothing → 0.
//   - (C,D): the fast peer gets nothing for its upload → 0; the slow
//     peer takes f and can still pair with another slow peer at
//     s−f opportunity-adjusted value, f+(s−f) = s (Section 2.1).
//   - (D,D): (0, 0).
//
// Under these payoffs defecting (weakly) dominates for the fast peer
// and cooperating (weakly) dominates for the slow peer, reproducing the
// Dictator-game flavour the paper calls the BitTorrent Dilemma.
func BitTorrentDilemma(f, s float64) (*Bimatrix, error) {
	if err := validateSpeeds(f, s); err != nil {
		return nil, err
	}
	return &Bimatrix{
		Name: "BitTorrent Dilemma",
		Cells: [2][2]Payoff{
			{{s - f, f}, {0, s}},
			{{s, 0}, {0, 0}},
		},
	}, nil
}

// BirdsDilemma returns the modified game of Figure 1(c). The slow
// peer's payoffs now charge the opportunity cost of cooperating with a
// fast peer (a missed sustained relationship with another slow peer):
// cooperation yields f−s instead of f, and defection yields the free f
// with no opportunity cost. Defection becomes the (weakly) dominant
// strategy for both classes, so peers pair within their own class —
// "birds of a feather stick together".
func BirdsDilemma(f, s float64) (*Bimatrix, error) {
	if err := validateSpeeds(f, s); err != nil {
		return nil, err
	}
	return &Bimatrix{
		Name: "Birds Dilemma",
		Cells: [2][2]Payoff{
			{{s - f, f - s}, {0, f}},
			{{s, 0}, {0, 0}},
		},
	}, nil
}

// Dictator returns a degenerate game in which the column player's
// action does not affect either payoff: the row player decides whether
// to give amount g (keeping total t), the column player responds
// passively. It models the paper's observation that slow-vs-fast
// interaction in BitTorrent "resembles an interaction in the Dictator
// game".
func Dictator(t, g float64) *Bimatrix {
	keep := t - g
	return &Bimatrix{
		Name: "Dictator",
		Cells: [2][2]Payoff{
			{{keep, g}, {keep, g}},
			{{t, 0}, {t, 0}},
		},
	}
}

func validateSpeeds(f, s float64) error {
	if !(f > s && s > 0) {
		return fmt.Errorf("game: require f > s > 0, got f=%g s=%g", f, s)
	}
	return nil
}

// DominantRow reports whether action a weakly dominates the other
// action for the row player, and whether the domination is strict.
func (g *Bimatrix) DominantRow(a Action) (weak, strict bool) {
	other := 1 - a
	weak, strict = true, true
	for c := Action(0); c <= Defect; c++ {
		pa := g.Cells[a][c].Row
		pb := g.Cells[other][c].Row
		if pa < pb {
			weak, strict = false, false
			return
		}
		if pa == pb {
			strict = false
		}
	}
	return
}

// DominantCol reports whether action a weakly dominates the other
// action for the column player, and whether the domination is strict.
func (g *Bimatrix) DominantCol(a Action) (weak, strict bool) {
	other := 1 - a
	weak, strict = true, true
	for r := Action(0); r <= Defect; r++ {
		pa := g.Cells[r][a].Col
		pb := g.Cells[r][other].Col
		if pa < pb {
			weak, strict = false, false
			return
		}
		if pa == pb {
			strict = false
		}
	}
	return
}

// Outcome is one action profile.
type Outcome struct {
	Row, Col Action
}

// PureNash returns every pure-strategy Nash equilibrium of the game:
// profiles where neither player can strictly improve by a unilateral
// deviation.
func (g *Bimatrix) PureNash() []Outcome {
	var out []Outcome
	for r := Action(0); r <= Defect; r++ {
		for c := Action(0); c <= Defect; c++ {
			if g.Cells[1-r][c].Row > g.Cells[r][c].Row {
				continue // row deviates
			}
			if g.Cells[r][1-c].Col > g.Cells[r][c].Col {
				continue // col deviates
			}
			out = append(out, Outcome{r, c})
		}
	}
	return out
}

// BestResponseRow returns the row player's best response(s) to column
// action c.
func (g *Bimatrix) BestResponseRow(c Action) []Action {
	pc := g.Cells[Cooperate][c].Row
	pd := g.Cells[Defect][c].Row
	switch {
	case pc > pd:
		return []Action{Cooperate}
	case pd > pc:
		return []Action{Defect}
	default:
		return []Action{Cooperate, Defect}
	}
}

// BestResponseCol returns the column player's best response(s) to row
// action r.
func (g *Bimatrix) BestResponseCol(r Action) []Action {
	pc := g.Cells[r][Cooperate].Col
	pd := g.Cells[r][Defect].Col
	switch {
	case pc > pd:
		return []Action{Cooperate}
	case pd > pc:
		return []Action{Defect}
	default:
		return []Action{Cooperate, Defect}
	}
}
