package game

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestActionString(t *testing.T) {
	if Cooperate.String() != "C" || Defect.String() != "D" {
		t.Error("action names wrong")
	}
}

func TestPrisonersDilemmaValidation(t *testing.T) {
	if _, err := PrisonersDilemma(3, 5, 1, 0); err == nil {
		t.Error("t<r should be rejected")
	}
	if _, err := PrisonersDilemma(5, 3, 1, 0); err != nil {
		t.Errorf("valid PD rejected: %v", err)
	}
}

func TestStandardPDNash(t *testing.T) {
	g := StandardPD()
	nash := g.PureNash()
	if len(nash) != 1 || nash[0] != (Outcome{Defect, Defect}) {
		t.Errorf("PD Nash = %v, want only (D,D)", nash)
	}
	if weak, strict := g.DominantRow(Defect); !weak || !strict {
		t.Error("defect should strictly dominate in PD (row)")
	}
	if weak, strict := g.DominantCol(Defect); !weak || !strict {
		t.Error("defect should strictly dominate in PD (col)")
	}
}

func TestBitTorrentDilemmaDominance(t *testing.T) {
	// Section 2.1: "the dominant strategy for fast peers is to always
	// defect on the slow peers ... for the slow peers, the dominant
	// strategy is to always cooperate with the fast peers".
	g, err := BitTorrentDilemma(100, 20)
	if err != nil {
		t.Fatal(err)
	}
	if weak, _ := g.DominantRow(Defect); !weak {
		t.Error("fast (row) should weakly dominate with Defect")
	}
	if weak, _ := g.DominantCol(Cooperate); !weak {
		t.Error("slow (col) should weakly dominate with Cooperate")
	}
	// The fast peer's payoff for cooperating with a slow peer is the
	// negative opportunity cost s-f.
	if p := g.At(Cooperate, Cooperate); p.Row != 20-100 {
		t.Errorf("(C,C) fast payoff = %v, want s-f = -80", p.Row)
	}
	// (D,C) is a pure Nash equilibrium: fast defects, slow cooperates —
	// the Dictator-like outcome the paper describes.
	found := false
	for _, o := range g.PureNash() {
		if o == (Outcome{Defect, Cooperate}) {
			found = true
		}
	}
	if !found {
		t.Errorf("Nash = %v, want to include (D,C)", g.PureNash())
	}
}

func TestBirdsDilemmaDominance(t *testing.T) {
	// Section 2.3 / Figure 1(c): "the dominant strategy of both slow
	// and fast peers is to defect against each other".
	g, err := BirdsDilemma(100, 20)
	if err != nil {
		t.Fatal(err)
	}
	if weak, _ := g.DominantRow(Defect); !weak {
		t.Error("fast should weakly dominate with Defect")
	}
	if weak, _ := g.DominantCol(Defect); !weak {
		t.Error("slow should weakly dominate with Defect in Birds")
	}
	// Slow's cooperation payoff is charged the opportunity cost: f-s.
	if p := g.At(Cooperate, Cooperate); p.Col != 100-20 {
		t.Errorf("(C,C) slow payoff = %v, want f-s = 80", p.Col)
	}
	// (D,D) must be a Nash equilibrium.
	found := false
	for _, o := range g.PureNash() {
		if o == (Outcome{Defect, Defect}) {
			found = true
		}
	}
	if !found {
		t.Errorf("Nash = %v, want to include (D,D)", g.PureNash())
	}
}

func TestBirdsFlipsSlowDominance(t *testing.T) {
	// The entire point of Figure 1(a) → 1(c): the slow peer's dominant
	// strategy flips from Cooperate to Defect for every f > s > 0.
	f := func(rawF, rawS float64) bool {
		fSpeed := 1 + mod1e3(rawF)*999 // (1, 1000)
		sSpeed := fSpeed * (0.01 + 0.98*mod1e3(rawS))
		if sSpeed >= fSpeed || sSpeed <= 0 {
			return true
		}
		bt, err := BitTorrentDilemma(fSpeed, sSpeed)
		if err != nil {
			return true
		}
		birds, err := BirdsDilemma(fSpeed, sSpeed)
		if err != nil {
			return true
		}
		btCoop, _ := bt.DominantCol(Cooperate)
		birdsDef, _ := birds.DominantCol(Defect)
		return btCoop && birdsDef
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// mod1e3 maps any float64 into [0,1) robustly for quick.Check inputs.
func mod1e3(x float64) float64 {
	if x != x || x > 1e300 || x < -1e300 { // NaN or huge
		return 0.5
	}
	if x < 0 {
		x = -x
	}
	for x >= 1 {
		x /= 10
	}
	return x
}

func TestSpeedValidation(t *testing.T) {
	if _, err := BitTorrentDilemma(10, 10); err == nil {
		t.Error("f == s should be rejected")
	}
	if _, err := BitTorrentDilemma(10, -1); err == nil {
		t.Error("negative s should be rejected")
	}
	if _, err := BirdsDilemma(5, 10); err == nil {
		t.Error("f < s should be rejected")
	}
}

func TestDictator(t *testing.T) {
	g := Dictator(10, 4)
	// Column player's action never changes anything.
	for r := Action(0); r <= Defect; r++ {
		if g.At(r, Cooperate) != g.At(r, Defect) {
			t.Error("dictator recipient should be powerless")
		}
	}
	// Dictator prefers to defect (keep all).
	if weak, strict := g.DominantRow(Defect); !weak || !strict {
		t.Error("keeping everything should strictly dominate")
	}
}

func TestBestResponses(t *testing.T) {
	g := StandardPD()
	br := g.BestResponseRow(Cooperate)
	if len(br) != 1 || br[0] != Defect {
		t.Errorf("best response to C = %v", br)
	}
	br = g.BestResponseCol(Defect)
	if len(br) != 1 || br[0] != Defect {
		t.Errorf("best response to D = %v", br)
	}
	// Tie → both actions.
	tie := &Bimatrix{Cells: [2][2]Payoff{{{1, 1}, {1, 1}}, {{1, 1}, {1, 1}}}}
	if got := tie.BestResponseRow(Cooperate); len(got) != 2 {
		t.Errorf("tie best response = %v", got)
	}
	if got := tie.BestResponseCol(Cooperate); len(got) != 2 {
		t.Errorf("tie best response = %v", got)
	}
}

func TestPureNashCoordination(t *testing.T) {
	// Coordination game: two pure equilibria on the diagonal.
	g := &Bimatrix{Cells: [2][2]Payoff{{{2, 2}, {0, 0}}, {{0, 0}, {1, 1}}}}
	nash := g.PureNash()
	if len(nash) != 2 {
		t.Fatalf("nash = %v", nash)
	}
}

func TestNashIsDeviationProofProperty(t *testing.T) {
	// Property: every reported Nash profile really admits no profitable
	// unilateral deviation, for random games.
	f := func(a, b, c, d, e, f2, g2, h float64) bool {
		g := &Bimatrix{Cells: [2][2]Payoff{
			{{mod1e3(a), mod1e3(b)}, {mod1e3(c), mod1e3(d)}},
			{{mod1e3(e), mod1e3(f2)}, {mod1e3(g2), mod1e3(h)}},
		}}
		for _, o := range g.PureNash() {
			if g.Cells[1-o.Row][o.Col].Row > g.Cells[o.Row][o.Col].Row {
				return false
			}
			if g.Cells[o.Row][1-o.Col].Col > g.Cells[o.Row][o.Col].Col {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGameString(t *testing.T) {
	s := StandardPD().String()
	if !strings.Contains(s, "Prisoner") || !strings.Contains(s, "(C,C)") {
		t.Errorf("String output missing content: %q", s)
	}
}

func TestDominantRowNonDominated(t *testing.T) {
	// Anti-coordination: no dominant strategy for either player.
	g := &Bimatrix{Cells: [2][2]Payoff{{{0, 0}, {2, 1}}, {{1, 2}, {0, 0}}}}
	if weak, _ := g.DominantRow(Cooperate); weak {
		t.Error("no dominance expected")
	}
	if weak, _ := g.DominantRow(Defect); weak {
		t.Error("no dominance expected")
	}
}

var _ = rand.New // keep math/rand imported for iterated tests in this package
