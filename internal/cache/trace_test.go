package cache

import (
	"testing"

	"repro/internal/obs"
)

// TestSetTracerReportsOutcomes pins the instrumented store: every Get
// reports its outcome into the recorder, every Put is counted, values
// are untouched, and detaching the tracer stops the reporting.
func TestSetTracerReportsOutcomes(t *testing.T) {
	s, err := Open(Options{MemEntries: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	rec := obs.NewRecorder("store")
	s.SetTracer(rec)

	if _, ok := s.Get(key(1)); ok {
		t.Fatal("hit on empty store")
	}
	s.Put(key(1), 0.5)
	if v, ok := s.Get(key(1)); !ok || v != 0.5 {
		t.Fatalf("get = %v,%v, want 0.5,true", v, ok)
	}
	if v, err := s.GetOrCompute(key(2), func() (float64, error) { return 0.25, nil }); err != nil || v != 0.25 {
		t.Fatalf("GetOrCompute = %v,%v", v, err)
	}

	st := rec.Stats()
	// Get(1) miss, Get(1) hit, GetOrCompute: Get(2) miss + ownership
	// re-check miss, then Put(2).
	if st.CacheHits != 1 {
		t.Errorf("tracer hits = %d, want 1", st.CacheHits)
	}
	if st.CacheMisses != 3 {
		t.Errorf("tracer misses = %d, want 3", st.CacheMisses)
	}
	if st.CachePuts != 2 {
		t.Errorf("tracer puts = %d, want 2", st.CachePuts)
	}
	// Store's own counters agree with what the tracer saw.
	cs := s.Stats()
	if cs.Hits != st.CacheHits || cs.Misses != st.CacheMisses || cs.Puts != st.CachePuts {
		t.Errorf("store stats %+v disagree with tracer %+v", cs, st)
	}

	s.SetTracer(nil) // detach: operations keep working, reporting stops
	s.Put(key(3), 1)
	if _, ok := s.Get(key(3)); !ok {
		t.Fatal("get after detach failed")
	}
	if after := rec.Stats(); after != st {
		t.Errorf("detached tracer still counting: %+v vs %+v", after, st)
	}
}
