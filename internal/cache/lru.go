package cache

import (
	"container/list"
	"sync"
)

// lruShards is the in-memory layer: a key→score map sharded by the
// first byte of the key (keys are SHA-256 outputs, so the shard
// distribution is uniform by construction), each shard an LRU bounded
// to its share of the configured capacity. Sharding keeps the hot path
// — one mutex, one map lookup, one list move — uncontended when many
// pool workers hit the cache at once.
type lruShards struct {
	shards []lruShard
}

type lruShard struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recent; values are *lruEntry
	items map[Key]*list.Element
}

type lruEntry struct {
	key Key
	val float64
}

// newLRUShards builds n shards splitting capacity entries between
// them (each shard holds at least one entry).
func newLRUShards(n, capacity int) *lruShards {
	perShard := capacity / n
	if perShard < 1 {
		perShard = 1
	}
	l := &lruShards{shards: make([]lruShard, n)}
	for i := range l.shards {
		l.shards[i] = lruShard{cap: perShard, order: list.New(), items: map[Key]*list.Element{}}
	}
	return l
}

func (l *lruShards) shard(k Key) *lruShard {
	return &l.shards[int(k[0])%len(l.shards)]
}

func (l *lruShards) get(k Key) (float64, bool) {
	s := l.shard(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.items[k]
	if !ok {
		return 0, false
	}
	s.order.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

// put inserts k and reports how many entries were evicted to make room
// (0 or 1; 0 also covers overwriting an existing key).
func (l *lruShards) put(k Key, v float64) (evicted int) {
	s := l.shard(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.items[k]; ok {
		// Determinism makes any two values for one key equal, but keep
		// the newest anyway: it is the cheapest way to stay correct if
		// a caller ever violates that.
		el.Value.(*lruEntry).val = v
		s.order.MoveToFront(el)
		return 0
	}
	s.items[k] = s.order.PushFront(&lruEntry{key: k, val: v})
	if s.order.Len() > s.cap {
		oldest := s.order.Back()
		s.order.Remove(oldest)
		delete(s.items, oldest.Value.(*lruEntry).key)
		return 1
	}
	return 0
}

func (l *lruShards) len() int {
	n := 0
	for i := range l.shards {
		s := &l.shards[i]
		s.mu.Lock()
		n += s.order.Len()
		s.mu.Unlock()
	}
	return n
}
