package cache

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"syscall"
)

// The persistent layer is an append-only segment log:
//
//	<dir>/seg-000001.log, seg-000002.log, ...
//
// Each segment starts with an 8-byte magic ("DSASCR1\n", validated on
// open — a directory of something else is an error, not garbage
// lookups) followed by fixed-size records:
//
//	key[32] | score float64 LE [8] | crc32 IEEE of the first 40 [4]
//
// Append-only and fixed-size buys the crash story for free: a torn
// tail from a crash is a short or CRC-broken record, detected and
// dropped on the next open — at worst the cache forgets the last few
// scores, it can never serve a wrong one. Records are additionally
// CRC-verified on every read, so latent corruption (bit rot, truncated
// copies) degrades to a miss, never a bad hit.
//
// Every open claims a *fresh* segment (O_EXCL on max+1) instead of
// appending to an existing one, so any number of processes may share a
// cache directory: each writes its own segment, readers merge all of
// them at open, and no write ever races another process's. This is the
// same multi-writer discipline the job checkpoints use (one manifest
// per shard, merge on load).
//
// Values are never rewritten — a key's score is a pure function of the
// key (dsa.CacheKey hashes everything score-relevant) — so there is no
// compaction and no tombstone; duplicate keys across segments (two
// processes caching one score) are benign and deduplicated by the
// index at open.

const (
	segMagic      = "DSASCR1\n"
	segHeaderSize = len(segMagic)
	recordSize    = 32 + 8 + 4

	// DefaultSegmentBytes is the rotation threshold for the active
	// segment: ~95k scores per segment.
	DefaultSegmentBytes = 4 << 20
)

type recordLoc struct {
	seg int
	off int64
}

type diskLog struct {
	dir      string
	segBytes int64

	index      map[Key]recordLoc
	readers    map[int]*os.File // segment number → read handle (includes the active segment)
	active     *os.File
	activeSeg  int
	activeSize int64
	total      int64 // bytes across all segments
	dropped    uint64
}

func segPath(dir string, n int) string {
	return filepath.Join(dir, fmt.Sprintf("seg-%06d.log", n))
}

// openDiskLog scans every segment in dir (creating dir if needed),
// builds the key→location index, and prepares to claim a fresh active
// segment on the first append.
func openDiskLog(dir string, segBytes int64) (*diskLog, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cache: dir: %w", err)
	}
	if segBytes <= 0 {
		segBytes = DefaultSegmentBytes
	}
	d := &diskLog{
		dir:      dir,
		segBytes: segBytes,
		index:    map[Key]recordLoc{},
		readers:  map[int]*os.File{},
	}
	names, err := filepath.Glob(filepath.Join(dir, "seg-*.log"))
	if err != nil {
		return nil, err
	}
	sort.Strings(names)
	for _, name := range names {
		var n int
		if _, err := fmt.Sscanf(filepath.Base(name), "seg-%06d.log", &n); err != nil {
			continue // not ours
		}
		if err := d.scanSegment(name, n); err != nil {
			d.closeReaders()
			return nil, err
		}
	}
	return d, nil
}

// scanSegment validates one segment and merges its records into the
// index. Records that are torn (short tail) or fail their CRC are
// dropped and counted; fixed-size records keep the scan aligned, so a
// single corrupt record never takes the rest of the segment with it.
func (d *diskLog) scanSegment(path string, n int) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("cache: open segment: %w", err)
	}
	var header [segHeaderSize]byte
	if _, err := io.ReadFull(f, header[:]); err != nil {
		// An empty or headerless file (crash between create and header
		// write) holds no records; skip it.
		f.Close()
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			d.dropped++
			return nil
		}
		return fmt.Errorf("cache: read segment header %s: %w", path, err)
	}
	if string(header[:]) != segMagic {
		f.Close()
		return fmt.Errorf("cache: %s is not a score cache segment (bad magic %q) — wrong -cache-dir?", path, header[:])
	}
	var rec [recordSize]byte
	off := int64(segHeaderSize)
	for {
		_, err := io.ReadFull(f, rec[:])
		if errors.Is(err, io.EOF) {
			break
		}
		if errors.Is(err, io.ErrUnexpectedEOF) {
			d.dropped++ // torn tail from a crash mid-append
			break
		}
		if err != nil {
			f.Close()
			return fmt.Errorf("cache: read segment %s: %w", path, err)
		}
		if verifyRecord(rec[:]) {
			var k Key
			copy(k[:], rec[:32])
			d.index[k] = recordLoc{seg: n, off: off}
		} else {
			d.dropped++
		}
		off += recordSize
	}
	d.total += off
	d.readers[n] = f
	return nil
}

func verifyRecord(rec []byte) bool {
	return binary.LittleEndian.Uint32(rec[40:44]) == crc32.ChecksumIEEE(rec[:40])
}

// get reads and verifies k's record. A record that fails verification
// at read time (latent corruption) is dropped from the index and
// reported as a miss.
func (d *diskLog) get(k Key) (float64, bool) {
	loc, ok := d.index[k]
	if !ok {
		return 0, false
	}
	f := d.readers[loc.seg]
	if f == nil {
		return 0, false
	}
	var rec [recordSize]byte
	if _, err := f.ReadAt(rec[:], loc.off); err != nil {
		delete(d.index, k)
		d.dropped++
		return 0, false
	}
	var have Key
	copy(have[:], rec[:32])
	if have != k || !verifyRecord(rec[:]) {
		delete(d.index, k)
		d.dropped++
		return 0, false
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(rec[32:40])), true
}

// put appends k's record to the active segment (claiming or rotating
// one as needed). A key already present is a no-op: values never
// change, so the first record wins.
func (d *diskLog) put(k Key, v float64) error {
	if _, ok := d.index[k]; ok {
		return nil
	}
	if d.active == nil || d.activeSize >= d.segBytes {
		if err := d.rotate(); err != nil {
			return err
		}
	}
	var rec [recordSize]byte
	copy(rec[:32], k[:])
	binary.LittleEndian.PutUint64(rec[32:40], math.Float64bits(v))
	binary.LittleEndian.PutUint32(rec[40:44], crc32.ChecksumIEEE(rec[:40]))
	if _, err := d.active.Write(rec[:]); err != nil {
		return fmt.Errorf("cache: append segment: %w", err)
	}
	d.index[k] = recordLoc{seg: d.activeSeg, off: d.activeSize}
	d.activeSize += recordSize
	d.total += recordSize
	return nil
}

// rotate syncs and retires the current active segment (its read handle
// stays open) and claims a fresh one with O_EXCL, so concurrent
// processes sharing the directory can never append to one file.
func (d *diskLog) rotate() error {
	if d.active != nil {
		if err := d.active.Sync(); err != nil {
			return fmt.Errorf("cache: sync segment: %w", err)
		}
		d.active = nil
	}
	n := 1
	for seg := range d.readers {
		if seg >= n {
			n = seg + 1
		}
	}
	for {
		f, err := os.OpenFile(segPath(d.dir, n), os.O_CREATE|os.O_EXCL|os.O_RDWR, 0o644)
		if errors.Is(err, os.ErrExist) {
			n++ // another process claimed it between our scan and now
			continue
		}
		if err != nil {
			return fmt.Errorf("cache: claim segment: %w", err)
		}
		if _, err := f.Write([]byte(segMagic)); err != nil {
			f.Close()
			return fmt.Errorf("cache: write segment header: %w", err)
		}
		// Make the segment's directory entry durable before any record
		// lands in it — the same discipline the checkpoint writer uses.
		if err := syncDir(d.dir); err != nil {
			f.Close()
			return fmt.Errorf("cache: sync cache dir: %w", err)
		}
		d.active, d.activeSeg, d.activeSize = f, n, int64(segHeaderSize)
		d.total += int64(segHeaderSize)
		d.readers[n] = f
		return nil
	}
}

// sync flushes the active segment to stable storage.
func (d *diskLog) sync() error {
	if d.active == nil {
		return nil
	}
	return d.active.Sync()
}

func (d *diskLog) close() error {
	var first error
	if d.active != nil {
		if err := d.active.Sync(); err != nil {
			first = err
		}
		d.active = nil
	}
	if err := d.closeReaders(); err != nil && first == nil {
		first = err
	}
	return first
}

func (d *diskLog) closeReaders() error {
	var first error
	for n, f := range d.readers {
		if err := f.Close(); err != nil && first == nil {
			first = err
		}
		delete(d.readers, n)
	}
	return first
}

// syncDir fsyncs a directory so a just-created file's entry is
// durable. Filesystems that cannot sync directories report
// EINVAL/ENOTSUP; those fall back to crash-only durability.
func syncDir(dir string) error {
	f, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = f.Sync()
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if errors.Is(err, syscall.EINVAL) || errors.Is(err, syscall.ENOTSUP) {
		return nil
	}
	return err
}
