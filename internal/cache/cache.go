// Package cache is the content-addressed score store behind -cache-dir:
// memoization for every evaluation seam of the sweep machinery.
//
// Design-space analysis re-evaluates the same scores constantly —
// explorers revisit neighbours, resumed and re-shaped sweeps recompute
// panels, grid jobs with overlapping specs redo identical work. The
// determinism contract of dsa.Domain makes a raw score a pure function
// of its dsa.CacheKey (domain, domain score version, measure, point
// ID, opponent panel, score-relevant config — see dsa.NewScoreKeyer),
// which is exactly the precondition for safe memoization: compute
// once, reuse everywhere, byte-identical by construction.
//
// A Store layers three mechanisms behind the dsa.ScoreCache interface:
//
//   - a sharded in-memory LRU — the hot path, uncontended under the
//     job engine's worker pools;
//   - an append-only on-disk segment log (see disk.go) — survives
//     restarts, shareable between concurrent processes, CRC-checked so
//     corruption degrades to misses, never wrong hits;
//   - singleflight deduplication — concurrent GetOrCompute calls for
//     one key run the computation once and share the result.
//
// A Store with no directory is memory-only: same interface, no
// persistence — what an in-process explorer wants.
package cache

import (
	"sync"
	"sync/atomic"

	"repro/internal/dsa"
	"repro/internal/obs"
)

// Key is the content address of one score (see dsa.NewScoreKeyer for
// the derivation).
type Key = dsa.CacheKey

// Stats is a point-in-time snapshot of a Store's counters.
type Stats = dsa.CacheStats

// Default sizing for Options zero values.
const (
	DefaultMemEntries = 1 << 20 // ~48 MiB of resident scores
	DefaultShards     = 16
)

// Options configures a Store.
type Options struct {
	// Dir is the segment log directory; "" keeps the cache in memory
	// only. Any number of processes may share one directory (each
	// writes its own segments); a process sees entries other processes
	// wrote before it opened the directory.
	Dir string
	// MemEntries bounds the in-memory LRU layer. 0 = DefaultMemEntries.
	MemEntries int
	// Shards is the LRU shard count. 0 = DefaultShards.
	Shards int
	// SegmentBytes is the on-disk segment rotation threshold. 0 =
	// DefaultSegmentBytes.
	SegmentBytes int64
}

// Store is a concurrency-safe score cache. It implements
// dsa.ScoreCache.
type Store struct {
	mem *lruShards

	diskMu sync.Mutex
	disk   *diskLog // nil when memory-only

	flightMu sync.Mutex
	flight   map[Key]*flightCall

	hits, misses, puts, evictions, dropped, flights, flightWaits atomic.Uint64

	trace atomic.Pointer[obs.Recorder] // nil until SetTracer
}

type flightCall struct {
	done chan struct{}
	val  float64
	err  error
}

// Open creates a Store. With a directory, every valid record already
// on disk is indexed before Open returns (corrupt or torn records are
// dropped and counted, never served).
func Open(opts Options) (*Store, error) {
	if opts.MemEntries <= 0 {
		opts.MemEntries = DefaultMemEntries
	}
	if opts.Shards <= 0 {
		opts.Shards = DefaultShards
	}
	s := &Store{
		mem:    newLRUShards(opts.Shards, opts.MemEntries),
		flight: map[Key]*flightCall{},
	}
	if opts.Dir != "" {
		disk, err := openDiskLog(opts.Dir, opts.SegmentBytes)
		if err != nil {
			return nil, err
		}
		s.disk = disk
	}
	return s, nil
}

// SetTracer wires an obs recorder into the store: every Get reports
// its outcome as a "cache-lookup" event and every Put is counted.
// Observation only — lookups and stores behave identically with or
// without one. Safe to call concurrently with operations; a nil
// recorder detaches.
func (s *Store) SetTracer(r *obs.Recorder) {
	s.trace.Store(r)
}

// Get returns the cached score for k, consulting the LRU first and
// the segment log second (promoting disk hits into the LRU).
func (s *Store) Get(k Key) (float64, bool) {
	if v, ok := s.mem.get(k); ok {
		s.hits.Add(1)
		s.trace.Load().CacheLookup(true)
		return v, true
	}
	if s.disk != nil {
		s.diskMu.Lock()
		v, ok := s.disk.get(k)
		s.diskMu.Unlock()
		if ok {
			s.evictions.Add(uint64(s.mem.put(k, v)))
			s.hits.Add(1)
			s.trace.Load().CacheLookup(true)
			return v, true
		}
	}
	s.misses.Add(1)
	s.trace.Load().CacheLookup(false)
	return 0, false
}

// Put records the score for k in every layer. Disk trouble is
// deliberately non-fatal — the entry stays served from memory and the
// failure is counted in Stats.Dropped; a cache must never turn an
// otherwise healthy sweep into an error.
func (s *Store) Put(k Key, v float64) {
	s.puts.Add(1)
	s.trace.Load().CountCachePut()
	s.evictions.Add(uint64(s.mem.put(k, v)))
	if s.disk != nil {
		s.diskMu.Lock()
		err := s.disk.put(k, v)
		s.diskMu.Unlock()
		if err != nil {
			s.dropped.Add(1)
		}
	}
}

// GetOrCompute returns the cached score for k or computes, caches and
// returns it. Concurrent calls for the same key compute once: the
// first caller runs compute, the rest wait and share its result. A
// compute error is handed to every waiter and nothing is cached, so a
// transient failure is retried by the next call.
func (s *Store) GetOrCompute(k Key, compute func() (float64, error)) (float64, error) {
	if v, ok := s.Get(k); ok {
		return v, nil
	}
	s.flightMu.Lock()
	if c, ok := s.flight[k]; ok {
		s.flightMu.Unlock()
		s.flightWaits.Add(1)
		<-c.done
		return c.val, c.err
	}
	c := &flightCall{done: make(chan struct{})}
	s.flight[k] = c
	s.flightMu.Unlock()

	// Re-check under flight ownership: another goroutine may have
	// completed (and retired) its flight between our Get and our
	// registration.
	if v, ok := s.Get(k); ok {
		c.val = v
	} else {
		s.flights.Add(1)
		c.val, c.err = compute()
		if c.err == nil {
			s.Put(k, c.val)
		}
	}
	s.flightMu.Lock()
	delete(s.flight, k)
	s.flightMu.Unlock()
	close(c.done)
	return c.val, c.err
}

// Sync flushes the active on-disk segment to stable storage. Put
// batches durability (the segment is synced on rotation and Close);
// call Sync at natural barriers — e.g. after a sweep completes.
func (s *Store) Sync() error {
	if s.disk == nil {
		return nil
	}
	s.diskMu.Lock()
	defer s.diskMu.Unlock()
	return s.disk.sync()
}

// Stats returns a snapshot of the store's counters.
func (s *Store) Stats() Stats {
	st := Stats{
		MemEntries: s.mem.len(),
		Hits:       s.hits.Load(),
		Misses:     s.misses.Load(),
		Puts:       s.puts.Load(),
		Evictions:  s.evictions.Load(),
		Dropped:    s.dropped.Load(),
		Flights:    s.flights.Load(),
		FlightWait: s.flightWaits.Load(),
	}
	if s.disk != nil {
		s.diskMu.Lock()
		st.Entries = len(s.disk.index)
		st.Bytes = s.disk.total
		// The disk layer's counter is read live, not snapshotted at
		// Open: records dropped by later reads (latent corruption
		// detected on Get) must show up too.
		st.Dropped += s.disk.dropped
		s.diskMu.Unlock()
	} else {
		st.Entries = st.MemEntries
	}
	return st
}

// Close syncs and releases the on-disk layer. The Store must not be
// used after Close.
func (s *Store) Close() error {
	if s.disk == nil {
		return nil
	}
	s.diskMu.Lock()
	defer s.diskMu.Unlock()
	return s.disk.close()
}

// Interface conformance: Store is the dsa.ScoreCache the engine seams
// accept.
var _ dsa.ScoreCache = (*Store)(nil)
