package cache

// The store's contract: a Get only ever returns a value that was Put
// under exactly that key — across restarts, concurrent writers,
// crashes mid-append and corrupted bytes on disk. Everything here
// hammers that plus the layer mechanics (LRU bounds, segment
// rotation, singleflight dedup).

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
)

func key(n int) Key {
	var k Key
	binary.LittleEndian.PutUint64(k[:8], uint64(n))
	// Spread n into the shard-selecting byte too, so tests exercise
	// several shards.
	k[0] = byte(n)
	return k
}

func TestMemoryRoundTrip(t *testing.T) {
	s, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, ok := s.Get(key(1)); ok {
		t.Fatal("empty store hit")
	}
	s.Put(key(1), 1.5)
	if v, ok := s.Get(key(1)); !ok || v != 1.5 {
		t.Fatalf("Get = %v,%v want 1.5,true", v, ok)
	}
	if _, ok := s.Get(key(2)); ok {
		t.Fatal("wrong key hit")
	}
	st := s.Stats()
	if st.Entries != 1 || st.Hits != 1 || st.Misses != 2 || st.Puts != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestLRUEviction(t *testing.T) {
	s, err := Open(Options{MemEntries: 8, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 100; i++ {
		s.Put(key(i), float64(i))
	}
	st := s.Stats()
	if st.MemEntries > 8 {
		t.Fatalf("LRU holds %d entries, capacity 8", st.MemEntries)
	}
	if st.Evictions == 0 {
		t.Fatal("no evictions counted after overfilling")
	}
	// Whatever survives must still read back correctly.
	for i := 0; i < 100; i++ {
		if v, ok := s.Get(key(i)); ok && v != float64(i) {
			t.Fatalf("key %d = %v after eviction churn", i, v)
		}
	}
}

func TestDiskPersistence(t *testing.T) {
	dir := t.TempDir()
	s1, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		s1.Put(key(i), float64(i)*0.5)
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	st := s2.Stats()
	if st.Entries != 50 {
		t.Fatalf("reopened store has %d entries, want 50", st.Entries)
	}
	for i := 0; i < 50; i++ {
		if v, ok := s2.Get(key(i)); !ok || v != float64(i)*0.5 {
			t.Fatalf("key %d after reopen = %v,%v", i, v, ok)
		}
	}
}

// TestLRUMissFallsThroughToDisk: an entry evicted from memory is still
// served from the segment log (and promoted back).
func TestLRUMissFallsThroughToDisk(t *testing.T) {
	s, err := Open(Options{Dir: t.TempDir(), MemEntries: 4, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 64; i++ {
		s.Put(key(i), float64(i))
	}
	for i := 0; i < 64; i++ {
		if v, ok := s.Get(key(i)); !ok || v != float64(i) {
			t.Fatalf("key %d = %v,%v want disk fallthrough", i, v, ok)
		}
	}
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments: header + 2 records.
	s, err := Open(Options{Dir: dir, SegmentBytes: int64(segHeaderSize + 2*recordSize)})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		s.Put(key(i), float64(i))
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "seg-*.log"))
	if len(segs) < 4 {
		t.Fatalf("10 records at 2/segment left %d segments, want >= 4", len(segs))
	}
	s2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	for i := 0; i < 10; i++ {
		if v, ok := s2.Get(key(i)); !ok || v != float64(i) {
			t.Fatalf("key %d lost across rotation: %v,%v", i, v, ok)
		}
	}
}

// TestTornTailDropped: a crash mid-append leaves a partial record; the
// next open drops it and keeps everything before it.
func TestTornTailDropped(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		s.Put(key(i), float64(i))
	}
	s.Close()

	segs, _ := filepath.Glob(filepath.Join(dir, "seg-*.log"))
	if len(segs) != 1 {
		t.Fatalf("want 1 segment, got %d", len(segs))
	}
	// Append half a record: the simulated torn write.
	f, err := os.OpenFile(segs[0], os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write(make([]byte, recordSize/2))
	f.Close()

	s2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	st := s2.Stats()
	if st.Entries != 5 {
		t.Fatalf("torn tail should leave 5 entries, got %d", st.Entries)
	}
	if st.Dropped == 0 {
		t.Fatal("torn record not counted as dropped")
	}
}

// TestCorruptRecordDropped: a flipped byte breaks that record's CRC;
// the record is dropped, its neighbours survive (fixed-size records
// keep the scan aligned).
func TestCorruptRecordDropped(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		s.Put(key(i), float64(i))
	}
	s.Close()

	segs, _ := filepath.Glob(filepath.Join(dir, "seg-*.log"))
	raw, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte in the value of record 2 (records are in Put order).
	raw[segHeaderSize+2*recordSize+35] ^= 0xff
	if err := os.WriteFile(segs[0], raw, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if st := s2.Stats(); st.Entries != 4 || st.Dropped == 0 {
		t.Fatalf("corrupt record: stats %+v, want 4 entries and a drop", st)
	}
	for i := 0; i < 5; i++ {
		v, ok := s2.Get(key(i))
		if i == 2 {
			if ok {
				t.Fatal("corrupted record served")
			}
			continue
		}
		if !ok || v != float64(i) {
			t.Fatalf("neighbour %d of corrupt record lost: %v,%v", i, v, ok)
		}
	}
}

// TestForeignFileRejected: pointing -cache-dir at a directory whose
// seg files are not ours must fail loudly, not serve garbage.
func TestForeignFileRejected(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "seg-000001.log"), []byte("definitely not a cache segment"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Options{Dir: dir}); err == nil {
		t.Fatal("foreign segment file accepted")
	}
}

// TestConcurrentProcessesShareDir: two stores open on one directory
// (two processes in real life) each write their own segment; a later
// open merges both.
func TestConcurrentProcessesShareDir(t *testing.T) {
	dir := t.TempDir()
	a, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		a.Put(key(i), float64(i))
		b.Put(key(100+i), float64(100+i))
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	s, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if st := s.Stats(); st.Entries != 40 {
		t.Fatalf("merged store has %d entries, want 40", st.Entries)
	}
	for i := 0; i < 20; i++ {
		if v, ok := s.Get(key(i)); !ok || v != float64(i) {
			t.Fatalf("writer A's key %d: %v,%v", i, v, ok)
		}
		if v, ok := s.Get(key(100 + i)); !ok || v != float64(100+i) {
			t.Fatalf("writer B's key %d: %v,%v", 100+i, v, ok)
		}
	}
}

// TestSingleflight: N concurrent GetOrCompute calls for one key run
// the computation exactly once and all see its value.
func TestSingleflight(t *testing.T) {
	s, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	const goroutines = 32
	var computes atomic.Int64
	gate := make(chan struct{})
	var wg sync.WaitGroup
	vals := make([]float64, goroutines)
	errs := make([]error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			vals[g], errs[g] = s.GetOrCompute(key(7), func() (float64, error) {
				computes.Add(1)
				<-gate // hold every racer at the flight door
				return 42, nil
			})
		}()
	}
	close(gate)
	wg.Wait()
	if n := computes.Load(); n != 1 {
		t.Fatalf("computed %d times, want 1", n)
	}
	for g := 0; g < goroutines; g++ {
		if errs[g] != nil || vals[g] != 42 {
			t.Fatalf("goroutine %d: %v, %v", g, vals[g], errs[g])
		}
	}
}

// TestGetOrComputeErrorNotCached: a failed computation reaches every
// waiter and leaves nothing behind, so the next call retries.
func TestGetOrComputeErrorNotCached(t *testing.T) {
	s, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	boom := errors.New("boom")
	if _, err := s.GetOrCompute(key(1), func() (float64, error) { return 0, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if _, ok := s.Get(key(1)); ok {
		t.Fatal("failed computation was cached")
	}
	v, err := s.GetOrCompute(key(1), func() (float64, error) { return 9, nil })
	if err != nil || v != 9 {
		t.Fatalf("retry after error: %v, %v", v, err)
	}
}

// TestConcurrentMixedUse races Put/Get/GetOrCompute over a persistent
// store — the -race CI step turns any locking mistake into a failure.
func TestConcurrentMixedUse(t *testing.T) {
	s, err := Open(Options{Dir: t.TempDir(), MemEntries: 64, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				n := (g*31 + i) % 128
				switch i % 3 {
				case 0:
					s.Put(key(n), float64(n))
				case 1:
					if v, ok := s.Get(key(n)); ok && v != float64(n) {
						panic(fmt.Sprintf("key %d = %v", n, v))
					}
				default:
					v, err := s.GetOrCompute(key(n), func() (float64, error) { return float64(n), nil })
					if err != nil || v != float64(n) {
						panic(fmt.Sprintf("GetOrCompute %d = %v, %v", n, v, err))
					}
				}
			}
		}()
	}
	wg.Wait()
	_ = s.Sync()
}
