package dsa

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strconv"
)

// Generic CSV layout, shared by dsa-sweep and dsa-report for every
// domain without a bespoke format:
//
//	domain, id, point, <one column per dimension>, then per measure m
//	in canonical order: raw_<m>, <m>
//
// domain names the design space the row belongs to (verified on read,
// so a file cannot be silently reinterpreted under the wrong domain),
// id is the domain's stable point ID, point the human label; dimension
// columns carry the actualized value strings so the file is greppable
// and regression-friendly without the codec.
//
// Score cells are specified, not incidental: finite values encode as
// fixed six-decimal notation, and non-finite values — which a domain
// may legitimately produce (a diverging measure, a 0/0 ratio) —
// encode deterministically as the exact tokens "NaN", "+Inf" and
// "-Inf", which ReadCSV parses back. A header-only file (an empty
// evaluated panel) is a valid round trip, not an error. Embedded
// commas, quotes and newlines in labels or dimension values are the
// csv package's quoting problem, covered by the codec's property test.

// formatScore renders one score cell: six decimals for finite values,
// canonical tokens for the non-finite ones.
func formatScore(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'f', 6, 64)
}

// WriteCSV serialises assembled scores in the generic domain CSV
// format.
func WriteCSV(w io.Writer, d Domain, s *Scores) error {
	if s.Domain != d.Name() {
		return fmt.Errorf("dsa: scores are for domain %q, not %q", s.Domain, d.Name())
	}
	for _, m := range d.Measures() {
		if len(s.Raw[m]) != len(s.Points) || len(s.Values[m]) != len(s.Points) {
			return fmt.Errorf("dsa: measure %q has %d/%d values for %d points", m, len(s.Raw[m]), len(s.Values[m]), len(s.Points))
		}
	}
	space := d.Space()
	header := []string{"domain", "id", "point"}
	for _, dim := range space.Dimensions {
		header = append(header, dim.Name)
	}
	for _, m := range d.Measures() {
		header = append(header, "raw_"+m, m)
	}
	cw := csv.NewWriter(w)
	if err := cw.Write(header); err != nil {
		return err
	}
	for i, p := range s.Points {
		id, err := d.PointID(p)
		if err != nil {
			return fmt.Errorf("dsa: row %d: %w", i, err)
		}
		row := []string{d.Name(), strconv.Itoa(id), d.Label(p)}
		for dim, v := range p {
			row = append(row, space.Dimensions[dim].Values[v])
		}
		for _, m := range d.Measures() {
			row = append(row, formatScore(s.Raw[m][i]), formatScore(s.Values[m][i]))
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a generic domain CSV back into Scores. Columns are
// located by header name, so extra columns and reordering are fine;
// points are restored through the domain's ID codec.
func ReadCSV(r io.Reader, d Domain) (*Scores, error) {
	rows, err := csv.NewReader(r).ReadAll()
	if err != nil {
		return nil, err
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("dsa: CSV has no header row")
	}
	col := map[string]int{}
	for i, h := range rows[0] {
		col[h] = i
	}
	for _, need := range []string{"domain", "id"} {
		if _, ok := col[need]; !ok {
			return nil, fmt.Errorf("dsa: CSV column %q missing", need)
		}
	}
	for _, m := range d.Measures() {
		for _, c := range []string{"raw_" + m, m} {
			if _, ok := col[c]; !ok {
				return nil, fmt.Errorf("dsa: CSV column %q missing", c)
			}
		}
	}
	s := &Scores{
		Domain: d.Name(),
		Raw:    map[string][]float64{},
		Values: map[string][]float64{},
	}
	// Every measure is present even for a header-only file, so an
	// empty panel round-trips and Measure() never distinguishes
	// "no rows" from "unknown measure" by accident.
	for _, m := range d.Measures() {
		s.Raw[m] = []float64{}
		s.Values[m] = []float64{}
	}
	for rowIdx, row := range rows[1:] {
		if got := row[col["domain"]]; got != d.Name() {
			return nil, fmt.Errorf("dsa: row %d is for domain %q, not %q", rowIdx+2, got, d.Name())
		}
		id, err := strconv.Atoi(row[col["id"]])
		if err != nil {
			return nil, fmt.Errorf("dsa: row %d: bad id: %w", rowIdx+2, err)
		}
		p, err := d.PointByID(id)
		if err != nil {
			return nil, fmt.Errorf("dsa: row %d: %w", rowIdx+2, err)
		}
		s.Points = append(s.Points, p)
		for _, m := range d.Measures() {
			for _, c := range []struct {
				name string
				dst  map[string][]float64
			}{{"raw_" + m, s.Raw}, {m, s.Values}} {
				v, err := strconv.ParseFloat(row[col[c.name]], 64)
				if err != nil {
					return nil, fmt.Errorf("dsa: row %d: bad %s: %w", rowIdx+2, c.name, err)
				}
				c.dst[m] = append(c.dst[m], v)
			}
		}
	}
	return s, nil
}
