package dsa_test

// Explorer coverage promised by the caching PR: determinism under a
// fixed seed, identical results with and without a score cache (with a
// warm cache running zero simulations), error propagation when
// ScoreSlice fails mid-exploration, and the cache-key sensitivity
// rules ("a mismatched anything is a miss, never a wrong hit").
//
// Everything runs on a small in-test fake domain rather than the real
// simulators: the properties under test are engine properties, and the
// fake gives exact control over scores, call counts and failures.

import (
	"errors"
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/dsa"
)

// fakeDomain is a tiny two-dimensional space with synthetic scores:
// deterministic functions of (measure, point ID, seed), never of slice
// composition — the same contract real domains honour.
type fakeDomain struct {
	name     string
	version  int // reported via ScoreVersion
	space    *core.Space
	index    map[string]int
	points   []core.Point
	calls    atomic.Int64 // ScoreSlice invocations (not points)
	failFrom int64        // fail every call after this many (0 = never fail)
}

func newFakeDomain(t *testing.T) *fakeDomain {
	t.Helper()
	space, err := core.NewSpace("fake", []core.Dimension{
		{Name: "x", Values: []string{"a", "b", "c", "d"}},
		{Name: "y", Values: []string{"p", "q", "r"}},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	d := &fakeDomain{name: "fake-explore", space: space, index: map[string]int{}}
	d.points = space.Enumerate()
	for i, p := range d.points {
		d.index[p.Key()] = i
	}
	return d
}

func (d *fakeDomain) Name() string       { return d.name }
func (d *fakeDomain) Space() *core.Space { return d.space }
func (d *fakeDomain) ScoreVersion() int  { return d.version }

func (d *fakeDomain) PointID(p core.Point) (int, error) {
	id, ok := d.index[p.Key()]
	if !ok {
		return 0, fmt.Errorf("fake: unknown point %v", p)
	}
	return id, nil
}

func (d *fakeDomain) PointByID(id int) (core.Point, error) {
	if id < 0 || id >= len(d.points) {
		return nil, fmt.Errorf("fake: id %d out of range", id)
	}
	return d.points[id], nil
}

func (d *fakeDomain) Label(p core.Point) string { return p.Key() }
func (d *fakeDomain) Measures() []string        { return []string{"alpha", "beta"} }

func (d *fakeDomain) DefaultConfig(string) (dsa.Config, error) {
	return fakeCfg(), nil
}

func fakeCfg() dsa.Config {
	return dsa.Config{Peers: 4, Rounds: 2, PerfRuns: 1, EncounterRuns: 1, Opponents: 3, Seed: 11}
}

func (d *fakeDomain) SampleOpponents(cfg dsa.Config) []core.Point {
	return dsa.SamplePanel(d.space.Enumerate(), cfg.Opponents, cfg.Seed)
}

var errFakeScore = errors.New("fake: simulator blew up")

func (d *fakeDomain) ScoreSlice(measure string, pts, opponents []core.Point, cfg dsa.Config) ([]float64, error) {
	n := d.calls.Add(1)
	if d.failFrom > 0 && n > d.failFrom {
		return nil, errFakeScore
	}
	kind := 1
	if measure == "beta" {
		kind = 2
	}
	out := make([]float64, len(pts))
	for i, p := range pts {
		id, err := d.PointID(p)
		if err != nil {
			return nil, err
		}
		// Point-identity seeding, like the real domains.
		out[i] = float64(dsa.TaskSeed(cfg.Seed, id, 0, 0, kind)%1000) / 1000
	}
	return out, nil
}

func (d *fakeDomain) Assemble(pts []core.Point, raw map[string][]float64) (*dsa.Scores, error) {
	return &dsa.Scores{Domain: d.name, Points: pts, Raw: raw, Values: raw}, nil
}

func fakeWeights() dsa.Weights { return dsa.Weights{"alpha": 1, "beta": 0.5} }

func TestHillClimbDeterministicUnderFixedSeed(t *testing.T) {
	d := newFakeDomain(t)
	hcfg := core.HillClimbConfig{Restarts: 3, MaxSteps: 20, Seed: 42}
	best1, calls1, err := dsa.HillClimb(d, fakeWeights(), fakeCfg(), hcfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if calls1 <= 0 {
		t.Fatalf("hill climb made %d objective calls", calls1)
	}
	best2, calls2, err := dsa.HillClimb(d, fakeWeights(), fakeCfg(), hcfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(best1, best2) || calls1 != calls2 {
		t.Fatalf("hill climb not deterministic: (%v, %d) vs (%v, %d)", best1, calls1, best2, calls2)
	}
}

func TestEvolveDeterministicUnderFixedSeed(t *testing.T) {
	d := newFakeDomain(t)
	ecfg := core.EvolveConfig{Population: 6, Generations: 4, Seed: 42}
	best1, _, err := dsa.Evolve(d, fakeWeights(), fakeCfg(), ecfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	best2, _, err := dsa.Evolve(d, fakeWeights(), fakeCfg(), ecfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(best1, best2) {
		t.Fatalf("evolve not deterministic: %v vs %v", best1, best2)
	}
}

// TestExplorersCacheParity: results are identical with no cache, a
// cold cache and a warm cache — and the warm run simulates nothing.
func TestExplorersCacheParity(t *testing.T) {
	hcfg := core.HillClimbConfig{Restarts: 3, MaxSteps: 20, Seed: 42}
	ecfg := core.EvolveConfig{Population: 6, Generations: 4, Seed: 42}

	bare := newFakeDomain(t)
	hcBare, _, err := dsa.HillClimb(bare, fakeWeights(), fakeCfg(), hcfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	evBare, _, err := dsa.Evolve(bare, fakeWeights(), fakeCfg(), ecfg, nil)
	if err != nil {
		t.Fatal(err)
	}

	store, err := cache.Open(cache.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	cold := newFakeDomain(t)
	hcCold, _, err := dsa.HillClimb(cold, fakeWeights(), fakeCfg(), hcfg, store)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(hcBare, hcCold) {
		t.Fatalf("cold cache changed hill climb: %v vs %v", hcBare, hcCold)
	}
	if cold.calls.Load() == 0 {
		t.Fatal("cold run should simulate")
	}

	warm := newFakeDomain(t)
	hcWarm, _, err := dsa.HillClimb(warm, fakeWeights(), fakeCfg(), hcfg, store)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(hcBare, hcWarm) {
		t.Fatalf("warm cache changed hill climb: %v vs %v", hcBare, hcWarm)
	}
	if n := warm.calls.Load(); n != 0 {
		t.Fatalf("warm hill climb ran %d simulations, want 0", n)
	}

	// Evolve visits a superset of points; it shares the same raw-score
	// cache (weights are not part of the key), so its warm run only
	// simulates points the climb never touched — and a second warm run
	// simulates nothing at all.
	evWarm, _, err := dsa.Evolve(warm, fakeWeights(), fakeCfg(), ecfg, store)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(evBare, evWarm) {
		t.Fatalf("cache changed evolve: %v vs %v", evBare, evWarm)
	}
	warm.calls.Store(0)
	if _, _, err := dsa.Evolve(warm, fakeWeights(), fakeCfg(), ecfg, store); err != nil {
		t.Fatal(err)
	}
	if n := warm.calls.Load(); n != 0 {
		t.Fatalf("second warm evolve ran %d simulations, want 0", n)
	}
}

// TestScoreSliceErrorMidExploration: a simulator failure partway
// through a search surfaces as the explorer's error — with and without
// a cache — and the failure is not cached, so a recovered simulator
// succeeds on retry.
func TestScoreSliceErrorMidExploration(t *testing.T) {
	hcfg := core.HillClimbConfig{Restarts: 3, MaxSteps: 20, Seed: 42}

	d := newFakeDomain(t)
	d.failFrom = 3 // a few evaluations succeed, then the simulator dies
	if _, _, err := dsa.HillClimb(d, fakeWeights(), fakeCfg(), hcfg, nil); !errors.Is(err, errFakeScore) {
		t.Fatalf("hill climb error = %v, want the simulator failure", err)
	}
	if _, _, err := dsa.Evolve(d, fakeWeights(), fakeCfg(), core.EvolveConfig{Population: 6, Generations: 4, Seed: 42}, nil); !errors.Is(err, errFakeScore) {
		t.Fatalf("evolve error = %v, want the simulator failure", err)
	}

	store, err := cache.Open(cache.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	cached := newFakeDomain(t)
	cached.failFrom = 3
	if _, _, err := dsa.HillClimb(cached, fakeWeights(), fakeCfg(), hcfg, store); !errors.Is(err, errFakeScore) {
		t.Fatalf("cached hill climb error = %v, want the simulator failure", err)
	}
	// The simulator recovers; the failed evaluations must re-run (an
	// error that got cached would resurface here as a wrong value or
	// a repeat failure).
	cached.failFrom = 0
	best, _, err := dsa.HillClimb(cached, fakeWeights(), fakeCfg(), hcfg, store)
	if err != nil {
		t.Fatal(err)
	}
	ref, _, err := dsa.HillClimb(newFakeDomain(t), fakeWeights(), fakeCfg(), hcfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(best, ref) {
		t.Fatalf("post-recovery result %v differs from reference %v", best, ref)
	}
}

// TestScoreKeyerSensitivity pins the invalidation rules: every
// score-relevant input changes the key; the speed-only knob does not.
func TestScoreKeyerSensitivity(t *testing.T) {
	d := newFakeDomain(t)
	cfg := fakeCfg()
	opponents := d.SampleOpponents(cfg)
	baseKeyer, err := dsa.NewScoreKeyer(d, opponents, cfg)
	if err != nil {
		t.Fatal(err)
	}
	base := baseKeyer.Key("alpha", 1)

	keyWith := func(name string, mutate func(d *fakeDomain, cfg *dsa.Config, opps *[]core.Point, measure *string, id *int)) dsa.CacheKey {
		t.Helper()
		d2 := newFakeDomain(t)
		cfg2 := fakeCfg()
		opps2 := opponents
		measure, id := "alpha", 1
		mutate(d2, &cfg2, &opps2, &measure, &id)
		k, err := dsa.NewScoreKeyer(d2, opps2, cfg2)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		return k.Key(measure, id)
	}

	same := keyWith("identical", func(*fakeDomain, *dsa.Config, *[]core.Point, *string, *int) {})
	if same != base {
		t.Fatal("identical context should derive identical keys")
	}
	workers := keyWith("workers", func(_ *fakeDomain, c *dsa.Config, _ *[]core.Point, _ *string, _ *int) { c.Workers = 9 })
	if workers != base {
		t.Fatal("Workers is speed-only and must not change the key")
	}

	differs := map[string]dsa.CacheKey{
		"measure":        keyWith("measure", func(_ *fakeDomain, _ *dsa.Config, _ *[]core.Point, m *string, _ *int) { *m = "beta" }),
		"point id":       keyWith("point id", func(_ *fakeDomain, _ *dsa.Config, _ *[]core.Point, _ *string, id *int) { *id = 2 }),
		"domain name":    keyWith("domain name", func(d *fakeDomain, _ *dsa.Config, _ *[]core.Point, _ *string, _ *int) { d.name = "other" }),
		"domain version": keyWith("domain version", func(d *fakeDomain, _ *dsa.Config, _ *[]core.Point, _ *string, _ *int) { d.version = 1 }),
		"seed":           keyWith("seed", func(_ *fakeDomain, c *dsa.Config, _ *[]core.Point, _ *string, _ *int) { c.Seed = 99 }),
		"peers":          keyWith("peers", func(_ *fakeDomain, c *dsa.Config, _ *[]core.Point, _ *string, _ *int) { c.Peers = 16 }),
		"rounds":         keyWith("rounds", func(_ *fakeDomain, c *dsa.Config, _ *[]core.Point, _ *string, _ *int) { c.Rounds = 7 }),
		"perf runs":      keyWith("perf runs", func(_ *fakeDomain, c *dsa.Config, _ *[]core.Point, _ *string, _ *int) { c.PerfRuns = 5 }),
		"encounter runs": keyWith("encounter runs", func(_ *fakeDomain, c *dsa.Config, _ *[]core.Point, _ *string, _ *int) { c.EncounterRuns = 5 }),
		"opponents knob": keyWith("opponents knob", func(_ *fakeDomain, c *dsa.Config, _ *[]core.Point, _ *string, _ *int) { c.Opponents = 2 }),
		"churn":          keyWith("churn", func(_ *fakeDomain, c *dsa.Config, _ *[]core.Point, _ *string, _ *int) { c.Churn = 0.1 }),
		"panel": keyWith("panel", func(d *fakeDomain, _ *dsa.Config, opps *[]core.Point, _ *string, _ *int) {
			*opps = d.Space().Enumerate()[:2]
		}),
	}
	seen := map[dsa.CacheKey]string{base: "base"}
	for name, k := range differs {
		if prev, dup := seen[k]; dup {
			t.Errorf("changing %s collided with %s", name, prev)
		}
		seen[k] = name
	}
}

// TestSamplePanelEdges pins the documented edge-size policy (these
// return values are part of sweep results: changing them would change
// every score computed against a sampled panel).
func TestSamplePanelEdges(t *testing.T) {
	all := []int{10, 20, 30, 40, 50}
	for _, tc := range []struct {
		name string
		n    int
		want int // -1 = exactly `all`, aliased
	}{
		{"zero means full set", 0, -1},
		{"negative means full set", -5, -1},
		{"size equals population", 5, -1},
		{"size exceeds population", 7, -1},
		{"normal sample", 3, 3},
		{"single", 1, 1},
	} {
		got := dsa.SamplePanel(all, tc.n, 1)
		if tc.want == -1 {
			if !reflect.DeepEqual(got, all) {
				t.Errorf("%s: got %v, want the full set", tc.name, got)
			}
			continue
		}
		if len(got) != tc.want {
			t.Errorf("%s: got %d elements, want %d", tc.name, len(got), tc.want)
		}
		members := map[int]bool{}
		for _, v := range all {
			members[v] = true
		}
		for _, v := range got {
			if !members[v] {
				t.Errorf("%s: sampled %v which is not in the population", tc.name, v)
			}
		}
	}

	// Empty population: empty result for any requested size, no panic.
	for _, n := range []int{-1, 0, 1, 10} {
		if got := dsa.SamplePanel([]int{}, n, 1); len(got) != 0 {
			t.Errorf("empty population, n=%d: got %v", n, got)
		}
	}

	// Determinism and seed sensitivity.
	a := dsa.SamplePanel(all, 3, 7)
	b := dsa.SamplePanel(all, 3, 7)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed produced different panels: %v vs %v", a, b)
	}
}

// TestTaskSeedEdges: TaskSeed must be total and non-negative for every
// input — including the negative IDs and run indices a buggy caller
// might produce — and must actually vary with each identity component.
func TestTaskSeedEdges(t *testing.T) {
	inputs := [][5]int64{
		{0, 0, 0, 0, 0},
		{-1, -2, -3, -4, -5},
		{1 << 62, -(1 << 62), 1 << 30, -(1 << 30), 999},
		{42, 3269, 3268, 9, 500},
	}
	for _, in := range inputs {
		s := dsa.TaskSeed(in[0], int(in[1]), int(in[2]), int(in[3]), int(in[4]))
		if s < 0 {
			t.Errorf("TaskSeed%v = %d, want non-negative", in, s)
		}
		if again := dsa.TaskSeed(in[0], int(in[1]), int(in[2]), int(in[3]), int(in[4])); again != s {
			t.Errorf("TaskSeed%v not deterministic: %d vs %d", in, s, again)
		}
	}
	base := dsa.TaskSeed(1, 2, 3, 4, 5)
	for name, s := range map[string]int64{
		"master": dsa.TaskSeed(2, 2, 3, 4, 5),
		"a":      dsa.TaskSeed(1, 9, 3, 4, 5),
		"b":      dsa.TaskSeed(1, 2, 9, 4, 5),
		"run":    dsa.TaskSeed(1, 2, 3, 9, 5),
		"kind":   dsa.TaskSeed(1, 2, 3, 4, 9),
	} {
		if s == base {
			t.Errorf("changing %s did not change the seed", name)
		}
	}
}
