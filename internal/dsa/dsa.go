// Package dsa defines the domain-agnostic sweep API of Design Space
// Analysis. The paper's central claim (Sections 3 and 7) is that the
// Parameterization/Actualization/analysis machinery is independent of
// the domain being analysed: the same solution concept that quantifies
// the file-swarming space of Section 4 applies verbatim to the gossip
// space of Section 3.1, or to any other distributed-system design
// space.
//
// This package is where that claim becomes an interface. A Domain
// packages everything the engine layers need to know about a design
// space:
//
//   - its core.Space (Parameterization + Actualization),
//   - a stable point ↔ integer-ID codec (the checkpoint key),
//   - the list of measure kinds its solution concept computes
//     (file swarming: performance/robustness/aggressiveness;
//     gossip: coverage/robustness),
//   - a deterministic ScoreSlice evaluator, the unit the job engine
//     shards: raw scores of one measure for an arbitrary slice of
//     points, seeded from point identity so any partition of the work
//     recombines into byte-identical results,
//   - an Assemble step for whole-set post-processing (e.g. the paper's
//     min-max performance normalisation, which needs every value).
//
// Everything above a Domain — the sharded checkpointed job engine
// (internal/job), the sweep/report CLIs, the heuristic explorers, the
// repro facade — is written against this interface and therefore works
// for every registered domain: implementing a Domain buys sharding,
// resume, merge and the tooling for free.
package dsa

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"repro/internal/core"
)

// Config is the domain-independent sweep scale: the result-affecting
// knobs every domain maps onto its own simulator. The names come from
// the file-swarming quantification (Section 4.3), but each domain
// interprets them in its own terms — for gossip, Peers is nodes per
// run and PerfRuns averages coverage runs. The zero value is not valid;
// start from Domain.DefaultConfig.
type Config struct {
	Peers         int     // population size per simulation run
	Rounds        int     // rounds per simulation run
	PerfRuns      int     // runs averaged per homogeneous measure value
	EncounterRuns int     // runs per tournament encounter
	Opponents     int     // opponents per tournament; 0 = every other point
	Seed          int64   // master seed; task seeds derive from it and point identity
	Churn         float64 // per-round churn rate; domains without churn ignore it
	Workers       int     // parallel workers; 0 = GOMAXPROCS. Speed only, never values.
}

// Parallelism resolves the Workers contract: the configured worker
// count, or GOMAXPROCS when Workers is 0. Domains pass this to
// ParallelFor so the contract has a single implementation.
func (c Config) Parallelism() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// ApplyOverrides returns cfg with the standard sweep overrides
// applied: peers/rounds/perfRuns/encRuns <= 0 and opponents < 0 keep
// cfg's setting (opponents 0 is meaningful: full round-robin). The
// sweep CLIs (dsa-sweep, dsa-grid serve) share this one mapping from
// flags to config, so identical flags always mean identical specs —
// the grid's byte-identical-to-local guarantee depends on that.
func ApplyOverrides(cfg Config, seed int64, opponents, peers, rounds, perfRuns, encRuns int) Config {
	cfg.Seed = seed
	if opponents >= 0 {
		cfg.Opponents = opponents
	}
	if peers > 0 {
		cfg.Peers = peers
	}
	if rounds > 0 {
		cfg.Rounds = rounds
	}
	if perfRuns > 0 {
		cfg.PerfRuns = perfRuns
	}
	if encRuns > 0 {
		cfg.EncounterRuns = encRuns
	}
	return cfg
}

// StridePoints enumerates every stride-th point of the domain's space
// (stride 1 = the whole space).
func StridePoints(d Domain, stride int) []core.Point {
	all := d.Space().Enumerate()
	var out []core.Point
	for i := 0; i < len(all); i += stride {
		out = append(out, all[i])
	}
	return out
}

// Validate checks the scale knobs shared by every domain.
func (c Config) Validate() error {
	if c.Peers < 2 {
		return fmt.Errorf("dsa: need at least 2 peers, got %d", c.Peers)
	}
	if c.Rounds < 1 {
		return fmt.Errorf("dsa: need at least 1 round, got %d", c.Rounds)
	}
	if c.PerfRuns < 1 || c.EncounterRuns < 1 {
		return fmt.Errorf("dsa: PerfRuns and EncounterRuns must be >= 1")
	}
	if c.Opponents < 0 {
		return fmt.Errorf("dsa: Opponents must be >= 0, got %d", c.Opponents)
	}
	if math.IsNaN(c.Churn) || c.Churn < 0 || c.Churn > 1 {
		// The seed silently treated negative/NaN churn as 0 and let
		// churn > 1 saturate; domains now get an explicit error before
		// any simulation (cyclesim rejects it at its own boundary too).
		return fmt.Errorf("dsa: Churn must be in [0,1], got %v", c.Churn)
	}
	return nil
}

// Scores is the assembled result of a sweep: per-measure value vectors
// aligned with Points. Raw holds the values as ScoreSlice produced
// them; Values holds the post-Assemble form (normalised where the
// domain's solution concept calls for it, identical to Raw otherwise).
type Scores struct {
	Domain string
	Points []core.Point
	Raw    map[string][]float64
	Values map[string][]float64
}

// Measure returns the assembled value vector of one measure (nil if
// the measure is unknown).
func (s *Scores) Measure(name string) []float64 { return s.Values[name] }

// Domain packages one design space and its solution concept for the
// generic engine layers. Implementations must be safe for concurrent
// use: the job engine calls ScoreSlice from many workers at once.
type Domain interface {
	// Name is the stable identifier used in checkpoint specs, CLI
	// -domain flags and the registry. Lower-case, no spaces.
	Name() string

	// Space returns the design space (Parameterization/Actualization).
	Space() *core.Space

	// PointID and PointByID are a stable codec between points and
	// integer IDs; checkpoints persist IDs, so the mapping must never
	// change for a given domain name.
	PointID(p core.Point) (int, error)
	PointByID(id int) (core.Point, error)

	// Label renders a point for humans and CSVs (e.g. the protocol
	// code "2-1-Loyal-When needed").
	Label(p core.Point) string

	// Measures lists the measure kinds of the domain's solution
	// concept in canonical order. The order is part of the task
	// enumeration contract: changing it invalidates checkpoints.
	Measures() []string

	// DefaultConfig returns the domain's configuration for a named
	// preset ("quick" or "paper").
	DefaultConfig(preset string) (Config, error)

	// SampleOpponents returns the tournament opponent panel for cfg —
	// deterministic, so every task of a sweep sees the same panel.
	SampleOpponents(cfg Config) []core.Point

	// ScoreSlice computes the raw scores of one measure for pts, a
	// slice of a (possibly larger) point set. Seeds must derive from
	// point identity, not position, so that concatenating slice
	// results equals a single full-set call — this is the primitive
	// the job engine cuts into tasks.
	ScoreSlice(measure string, pts, opponents []core.Point, cfg Config) ([]float64, error)

	// Assemble bundles per-measure raw vectors into Scores, applying
	// any whole-set normalisation. Every measure must be present and
	// match len(pts).
	Assemble(pts []core.Point, raw map[string][]float64) (*Scores, error)
}

// registry holds the known domains. Registration normally happens in
// the domain packages' init functions, so importing a domain package
// makes it available to the CLIs and to job.Load.
var (
	regMu    sync.RWMutex
	registry = map[string]Domain{}
)

// Register adds a domain under its Name. It panics on a duplicate
// name — two domains claiming one name would corrupt checkpoints.
func Register(d Domain) {
	regMu.Lock()
	defer regMu.Unlock()
	name := d.Name()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("dsa: domain %q registered twice", name))
	}
	registry[name] = d
}

// Get returns the registered domain with the given name.
func Get(name string) (Domain, error) {
	regMu.RLock()
	defer regMu.RUnlock()
	d, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("dsa: unknown domain %q (known: %v); is its package imported?", name, names())
	}
	return d, nil
}

// Registered returns every registered domain, sorted by name.
func Registered() []Domain {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]Domain, 0, len(registry))
	for _, n := range names() {
		out = append(out, registry[n])
	}
	return out
}

// Names returns the sorted names of every registered domain — what the
// CLIs print in -domain flag help and what Get's unknown-domain error
// lists.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	return names()
}

// names returns the sorted registered names; callers hold regMu.
func names() []string {
	ns := make([]string, 0, len(registry))
	for n := range registry {
		ns = append(ns, n)
	}
	sort.Strings(ns)
	return ns
}

// mix64 is a splitmix64-style hash used to derive independent task
// seeds from sweep coordinates.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// TaskSeed derives a simulation seed from the master seed and work-item
// identity (point IDs a and b, run index, measure discriminator). The
// derivation depends only on identity, never on position or schedule,
// which is what makes domain ScoreSlice results recombine exactly.
//
// TaskSeed is total: every int input is defined, including negative
// IDs or run indices (they mix in as their two's-complement bit
// patterns — deterministic, no wrapping surprises), and the result is
// always non-negative (the sign bit is cleared) so it is safe for
// seed parameters that reject negatives. Pinned by tests.
func TaskSeed(master int64, a, b, run, kind int) int64 {
	h := mix64(uint64(master))
	h = mix64(h ^ uint64(a)*0x100000001b3)
	h = mix64(h ^ uint64(b)*0x1000193)
	h = mix64(h ^ uint64(run)<<8 ^ uint64(kind))
	return int64(h &^ (1 << 63))
}

// SamplePanel returns a fixed opponent panel: n elements drawn
// deterministically and evenly from all. Even strides keep the panel
// representative of every region of the space; the offset derives from
// the master seed. Domains without a bespoke panel policy build
// SampleOpponents on this — it is generic over the element type so
// domains can sample their native protocol representation as well as
// core.Point.
//
// Edge sizes are policy, not accident (changing any of these would
// silently change sweep values, so they are pinned by tests):
//
//	n == 0          → the full set: 0 means "no panel cap", the
//	                  paper's full round-robin (Config.Opponents
//	                  documents the same convention)
//	n < 0           → the full set, same as 0 (Config.Validate
//	                  rejects negative Opponents before a sweep
//	                  starts; a direct caller gets the permissive
//	                  reading rather than a panic)
//	n >= len(all)   → the full set: a panel cannot exceed the
//	                  population, and at n == len(all) sampling
//	                  would only reorder it
//	len(all) == 0   → empty, whatever n is
func SamplePanel[T any](all []T, n int, seed int64) []T {
	if len(all) == 0 {
		return all
	}
	if n <= 0 || n >= len(all) {
		return all
	}
	out := make([]T, 0, n)
	offset := int(mix64(uint64(seed)) % uint64(len(all)))
	for j := 0; j < n; j++ {
		idx := (offset + j*len(all)/n) % len(all)
		out = append(out, all[idx])
	}
	return out
}

// ParallelFor runs fn(i) for i in [0,n) on w workers (w <= 0 means
// serial). Results must not depend on scheduling; domains use it to
// parallelise ScoreSlice over points.
func ParallelFor(n, w int, fn func(i int)) {
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int)
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}
