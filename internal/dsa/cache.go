package dsa

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"hash"
	"math"

	"repro/internal/core"
)

// This file is the caching seam of the sweep API: the key derivation
// that makes scores content-addressable, and the minimal interface the
// engine layers (job.ExecTasks, the explorers, the grid coordinator)
// consult. The store itself lives in internal/cache; dsa only defines
// what a key *means*, because only dsa knows which inputs a score is a
// function of.
//
// The determinism contract (Domain.ScoreSlice: seeds derive from point
// identity, never position or schedule) makes a raw score a pure
// function of exactly six inputs:
//
//	(domain name, domain score version, measure, point ID,
//	 opponent panel, score-relevant Config fields)
//
// A CacheKey is a SHA-256 over a canonical encoding of those inputs —
// nothing else. Workers, chunk sizes, shard counts and schedules are
// deliberately absent (they change speed, never values), so a cache
// warmed by any run — single-process, sharded, grid — serves any other
// run of an overlapping spec. Anything that *could* change values
// (engine key schema via cacheSchemaVersion, domain semantics via
// ScoreVersioned) is hashed in, so a change yields a different key: a
// stale entry is a miss, never a wrong hit.

// CacheKey is the content address of one raw score: one (measure,
// point) evaluation under a fixed domain, opponent panel and config.
type CacheKey [32]byte

// String renders the key in hex (for logs and debugging).
func (k CacheKey) String() string { return fmt.Sprintf("%x", k[:]) }

// cacheSchemaVersion is the version of the key derivation itself. Bump
// it whenever the encoding below changes meaning — every previously
// cached score then misses instead of aliasing a new key.
const cacheSchemaVersion = 1

// ScoreVersioned is an optional Domain extension: a domain whose
// ScoreSlice semantics change (a simulator fix, a reseeded measure)
// bumps its score version so every cached score from the old semantics
// becomes a miss. Domains that do not implement it are version 0.
type ScoreVersioned interface {
	ScoreVersion() int
}

// ScoreCache is the memoization seam consulted by the engine layers.
// Implementations must be safe for concurrent use; internal/cache
// provides the real store (sharded LRU + on-disk segment log +
// singleflight). Put is best-effort: a store may drop entries
// (capacity, I/O trouble) — correctness never depends on a Put being
// durable, only on Get never returning a value for a key it was not
// given.
type ScoreCache interface {
	// Get returns the cached score for k, if present.
	Get(k CacheKey) (float64, bool)
	// Put records the score for k.
	Put(k CacheKey, v float64)
	// GetOrCompute returns the cached score for k or computes, caches
	// and returns it. Concurrent calls for one key compute at most
	// once (the others wait); a compute error is returned to every
	// waiter and nothing is cached.
	GetOrCompute(k CacheKey, compute func() (float64, error)) (float64, error)
}

// CacheStats is the observability surface of a score cache, shared by
// `dsa-report cache` and the grid coordinator's /v1/cache endpoint.
type CacheStats struct {
	Entries    int    `json:"entries"`     // distinct keys in the persistent layer (memory entries when no disk layer)
	MemEntries int    `json:"mem_entries"` // keys currently resident in the in-memory LRU
	Bytes      int64  `json:"bytes"`       // on-disk bytes across segments
	Hits       uint64 `json:"hits"`
	Misses     uint64 `json:"misses"`
	Puts       uint64 `json:"puts"`
	Evictions  uint64 `json:"evictions"`    // LRU evictions (disk entries are never evicted)
	Dropped    uint64 `json:"dropped"`      // records dropped at open (torn/corrupt) or on write failure
	Flights    uint64 `json:"flights"`      // GetOrCompute calls that actually computed
	FlightWait uint64 `json:"flight_waits"` // GetOrCompute calls that waited on another's computation
}

// ScoreKeyer derives CacheKeys for one evaluation context: a domain,
// an opponent panel and a config. The context digest is computed once;
// per-key work is one short hash over (digest, measure, point ID).
type ScoreKeyer struct {
	context [32]byte
}

// NewScoreKeyer builds the keyer for an evaluation context. The
// opponent panel is hashed by the domain's stable point IDs — the same
// codec checkpoints persist — so the panel's identity, not its memory
// representation, addresses the scores. It fails if an opponent is not
// a point of the domain.
func NewScoreKeyer(d Domain, opponents []core.Point, cfg Config) (*ScoreKeyer, error) {
	h := sha256.New()
	hashString(h, "repro/dsa score key")
	hashInt(h, cacheSchemaVersion)
	hashString(h, d.Name())
	ver := 0
	if v, ok := d.(ScoreVersioned); ok {
		ver = v.ScoreVersion()
	}
	hashInt(h, ver)

	// The score-relevant Config subset, in fixed order. Workers is
	// deliberately excluded: it is the one knob the Config contract
	// guarantees affects speed only (the checkpoint spec omits it for
	// the same reason — see job's configJSON).
	hashInt(h, cfg.Peers)
	hashInt(h, cfg.Rounds)
	hashInt(h, cfg.PerfRuns)
	hashInt(h, cfg.EncounterRuns)
	hashInt(h, cfg.Opponents)
	// Seed is hashed at full int64 width: int(cfg.Seed) would truncate
	// to 32 bits on 32-bit platforms, aliasing seeds that differ only
	// in their high halves — a wrong hit, the one failure the key must
	// make impossible.
	hashUint64(h, uint64(cfg.Seed))
	hashUint64(h, math.Float64bits(cfg.Churn))

	hashInt(h, len(opponents))
	for _, opp := range opponents {
		id, err := d.PointID(opp)
		if err != nil {
			return nil, fmt.Errorf("dsa: score key opponent panel: %w", err)
		}
		hashInt(h, id)
	}

	var k ScoreKeyer
	h.Sum(k.context[:0])
	return &k, nil
}

// Key returns the content address of one (measure, point ID) score in
// this context.
func (k *ScoreKeyer) Key(measure string, pointID int) CacheKey {
	h := sha256.New()
	h.Write(k.context[:])
	hashString(h, measure)
	hashInt(h, pointID)
	var out CacheKey
	h.Sum(out[:0])
	return out
}

// hashString writes a length-prefixed string, so adjacent fields can
// never alias ("ab","c" vs "a","bc").
func hashString(h hash.Hash, s string) {
	hashInt(h, len(s))
	h.Write([]byte(s))
}

func hashInt(h hash.Hash, v int) {
	hashUint64(h, uint64(int64(v)))
}

func hashUint64(h hash.Hash, v uint64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	h.Write(buf[:])
}
