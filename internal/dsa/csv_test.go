package dsa_test

// Round-trip property tests for the generic CSV codec: random subsets
// of a quoting-hostile space, scores drawn from finite values rounded
// to the codec's six-decimal precision plus the specified non-finite
// encodings (NaN, ±Inf), and the empty-panel edge case. The fake
// domain's labels and dimension values embed commas, quotes and
// newlines on purpose — the codec must lean on csv quoting, never on
// the strings being friendly.

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dsa"
)

// quirkDomain is a minimal Domain whose human-facing strings are
// hostile to naive CSV writing. Only the codec-facing methods are
// implemented; the engine-facing ones are never called by WriteCSV or
// ReadCSV and panic to prove it.
type quirkDomain struct {
	space *core.Space
}

func newQuirkDomain(t *testing.T) quirkDomain {
	t.Helper()
	space, err := core.NewSpace("quirk", []core.Dimension{
		{Name: "alloc,policy", Values: []string{`a,b`, `c"d`, "e\nf"}},
		{Name: `rank "fn"`, Values: []string{"x", "y,z"}},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return quirkDomain{space: space}
}

func (q quirkDomain) Name() string       { return "quirk" }
func (q quirkDomain) Space() *core.Space { return q.space }

func (q quirkDomain) PointID(p core.Point) (int, error) {
	for i, cand := range q.space.Enumerate() {
		if cand.Equal(p) {
			return i, nil
		}
	}
	return 0, fmt.Errorf("quirk: point %v not in space", p)
}

func (q quirkDomain) PointByID(id int) (core.Point, error) {
	pts := q.space.Enumerate()
	if id < 0 || id >= len(pts) {
		return nil, fmt.Errorf("quirk: id %d out of range", id)
	}
	return pts[id], nil
}

func (q quirkDomain) Label(p core.Point) string {
	parts := make([]string, len(p))
	for d, v := range p {
		parts[d] = q.space.Dimensions[d].Values[v]
	}
	return `point "` + strings.Join(parts, ",") + `"` + "\nsecond line"
}

func (q quirkDomain) Measures() []string { return []string{"m,1", `m"2`} }

func (q quirkDomain) DefaultConfig(string) (dsa.Config, error) {
	panic("quirk: DefaultConfig is not part of the CSV codec")
}
func (q quirkDomain) SampleOpponents(dsa.Config) []core.Point {
	panic("quirk: SampleOpponents is not part of the CSV codec")
}
func (q quirkDomain) ScoreSlice(string, []core.Point, []core.Point, dsa.Config) ([]float64, error) {
	panic("quirk: ScoreSlice is not part of the CSV codec")
}
func (q quirkDomain) Assemble([]core.Point, map[string][]float64) (*dsa.Scores, error) {
	panic("quirk: Assemble is not part of the CSV codec")
}

// randomScore draws finite values already rounded to the codec's
// six-decimal wire precision (so equality is exact after a round
// trip), salted with the specified non-finite encodings.
func randomScore(rng *rand.Rand) float64 {
	switch rng.Intn(10) {
	case 0:
		return math.NaN()
	case 1:
		return math.Inf(1)
	case 2:
		return math.Inf(-1)
	}
	v, err := strconv.ParseFloat(strconv.FormatFloat(rng.NormFloat64()*1e3, 'f', 6, 64), 64)
	if err != nil {
		panic(err)
	}
	return v
}

func sameScore(a, b float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.IsNaN(a) && math.IsNaN(b)
	}
	return a == b
}

func TestCSVRoundTripProperty(t *testing.T) {
	d := newQuirkDomain(t)
	all := d.Space().Enumerate()
	rng := rand.New(rand.NewSource(20260728))

	for iter := 0; iter < 200; iter++ {
		// Random subset of the space, in random order, possibly empty.
		perm := rng.Perm(len(all))
		pts := make([]core.Point, rng.Intn(len(all)+1))
		for i := range pts {
			pts[i] = all[perm[i]]
		}
		want := &dsa.Scores{
			Domain: d.Name(),
			Points: pts,
			Raw:    map[string][]float64{},
			Values: map[string][]float64{},
		}
		for _, m := range d.Measures() {
			raw := make([]float64, len(pts))
			vals := make([]float64, len(pts))
			for i := range pts {
				raw[i], vals[i] = randomScore(rng), randomScore(rng)
			}
			want.Raw[m], want.Values[m] = raw, vals
		}

		var buf bytes.Buffer
		if err := dsa.WriteCSV(&buf, d, want); err != nil {
			t.Fatalf("iter %d: write: %v", iter, err)
		}
		got, err := dsa.ReadCSV(bytes.NewReader(buf.Bytes()), d)
		if err != nil {
			t.Fatalf("iter %d: read: %v\nfile:\n%s", iter, err, buf.String())
		}
		if len(got.Points) != len(pts) {
			t.Fatalf("iter %d: %d points round-tripped to %d", iter, len(pts), len(got.Points))
		}
		for i, p := range pts {
			if !got.Points[i].Equal(p) {
				t.Fatalf("iter %d: point %d = %v, want %v", iter, i, got.Points[i], p)
			}
		}
		for _, m := range d.Measures() {
			for i := range pts {
				if !sameScore(got.Raw[m][i], want.Raw[m][i]) {
					t.Fatalf("iter %d: raw %s[%d] = %v, want %v", iter, m, i, got.Raw[m][i], want.Raw[m][i])
				}
				if !sameScore(got.Values[m][i], want.Values[m][i]) {
					t.Fatalf("iter %d: %s[%d] = %v, want %v", iter, m, i, got.Values[m][i], want.Values[m][i])
				}
			}
		}
	}
}

func TestCSVEmptyPanelRoundTrip(t *testing.T) {
	d := newQuirkDomain(t)
	empty := &dsa.Scores{
		Domain: d.Name(),
		Raw:    map[string][]float64{},
		Values: map[string][]float64{},
	}
	var buf bytes.Buffer
	if err := dsa.WriteCSV(&buf, d, empty); err != nil {
		t.Fatal(err)
	}
	got, err := dsa.ReadCSV(bytes.NewReader(buf.Bytes()), d)
	if err != nil {
		t.Fatalf("header-only CSV should round-trip, got: %v", err)
	}
	if len(got.Points) != 0 {
		t.Fatalf("empty panel read back %d points", len(got.Points))
	}
	for _, m := range d.Measures() {
		if got.Raw[m] == nil || got.Values[m] == nil {
			t.Fatalf("measure %q should be present (empty), got nil", m)
		}
	}
	if _, err := dsa.ReadCSV(strings.NewReader(""), d); err == nil {
		t.Fatal("a file with no header row must still be rejected")
	}
}

// TestCSVNonFiniteEncoding pins the wire tokens themselves: the
// encoding is a contract, not an accident of fmt.
func TestCSVNonFiniteEncoding(t *testing.T) {
	d := newQuirkDomain(t)
	pts := d.Space().Enumerate()[:3]
	s := &dsa.Scores{
		Domain: d.Name(),
		Points: pts,
		Raw: map[string][]float64{
			"m,1": {math.NaN(), math.Inf(1), math.Inf(-1)},
			`m"2`: {0.5, 0.5, 0.5},
		},
		Values: map[string][]float64{
			"m,1": {math.Inf(-1), math.NaN(), math.Inf(1)},
			`m"2`: {1, 2, 3},
		},
	}
	var buf bytes.Buffer
	if err := dsa.WriteCSV(&buf, d, s); err != nil {
		t.Fatal(err)
	}
	for _, token := range []string{"NaN", "+Inf", "-Inf"} {
		if !strings.Contains(buf.String(), token) {
			t.Fatalf("wire format should contain the canonical %q token:\n%s", token, buf.String())
		}
	}
	got, err := dsa.ReadCSV(bytes.NewReader(buf.Bytes()), d)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range s.Raw["m,1"] {
		if !sameScore(got.Raw["m,1"][i], want) {
			t.Fatalf("raw[%d] = %v, want %v", i, got.Raw["m,1"][i], want)
		}
	}
}
