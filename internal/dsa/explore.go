package dsa

import (
	"fmt"

	"repro/internal/core"
)

// Weights blends a domain's measures into a single exploration
// objective: the score of a point is Σ weights[m] · raw(m, point).
// Any subset of the domain's measures may be weighted; the paper's
// Section 7 explorers then climb the blend — e.g. {"performance": 1}
// reproduces the pure-performance search, while adding a robustness
// weight explores the P/R trade-off frontier heuristically.
//
// Weights apply to raw measure values (whole-set normalisation needs
// the whole set, which an explorer never has), so pick weights on the
// measures' natural scales.
type Weights map[string]float64

// Objective builds a core.Objective for the domain from a measure-
// weight blend. The opponent panel is sampled once, so every evaluation
// is played against the same opponents and results are deterministic.
// Explorers memoise on top of this (see core.HillClimb), so a point is
// simulated at most once per search.
//
// With a non-nil cache, every raw (measure, point) score is looked up
// before it is simulated and recorded after — so a revisited neighbour
// is free not just within one search (core's explorers already memoise
// that) but across searches, restarts and processes sharing a
// persistent store. Concurrent evaluations of one score deduplicate
// through the cache's singleflight. The blend weights are deliberately
// not part of the cache key: the cache holds raw measure values, so
// one warmed cache serves every weighting of the same measures.
func Objective(d Domain, w Weights, cfg Config, c ScoreCache) (core.Objective, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(w) == 0 {
		return nil, fmt.Errorf("dsa: empty weight vector for domain %q", d.Name())
	}
	measures := d.Measures()
	known := make(map[string]bool, len(measures))
	for _, m := range measures {
		known[m] = true
	}
	for m := range w {
		if !known[m] {
			return nil, fmt.Errorf("dsa: domain %q has no measure %q (measures: %v)", d.Name(), m, measures)
		}
	}
	opponents := d.SampleOpponents(cfg)
	var keyer *ScoreKeyer
	if c != nil {
		var err error
		if keyer, err = NewScoreKeyer(d, opponents, cfg); err != nil {
			return nil, err
		}
	}
	rawScore := func(m string, p core.Point) (float64, error) {
		compute := func() (float64, error) {
			vals, err := d.ScoreSlice(m, []core.Point{p}, opponents, cfg)
			if err != nil {
				return 0, err
			}
			return vals[0], nil
		}
		if c == nil {
			return compute()
		}
		id, err := d.PointID(p)
		if err != nil {
			return 0, err
		}
		return c.GetOrCompute(keyer.Key(m, id), compute)
	}
	return func(p core.Point) (float64, error) {
		var sum float64
		// Iterate in canonical measure order, not map order: float
		// addition order must not vary between runs.
		for _, m := range measures {
			wt, ok := w[m]
			if !ok || wt == 0 {
				continue
			}
			v, err := rawScore(m, p)
			if err != nil {
				return 0, err
			}
			sum += wt * v
		}
		return sum, nil
	}, nil
}

// HillClimb runs the Section 7 steepest-ascent explorer on a domain
// against a measure-weight blend. It returns the best evaluation and
// the number of objective calls (points actually simulated). A non-nil
// cache memoises raw scores across searches and processes (see
// Objective); results are identical with and without one.
func HillClimb(d Domain, w Weights, cfg Config, hcfg core.HillClimbConfig, c ScoreCache) (core.Evaluation, int, error) {
	obj, err := Objective(d, w, cfg, c)
	if err != nil {
		return core.Evaluation{}, 0, err
	}
	return core.HillClimb(d.Space(), obj, hcfg)
}

// Evolve runs the Section 7 evolutionary explorer on a domain against a
// measure-weight blend. A non-nil cache memoises raw scores across
// searches and processes (see Objective); results are identical with
// and without one.
func Evolve(d Domain, w Weights, cfg Config, ecfg core.EvolveConfig, c ScoreCache) (core.Evaluation, int, error) {
	obj, err := Objective(d, w, cfg, c)
	if err != nil {
		return core.Evaluation{}, 0, err
	}
	return core.Evolve(d.Space(), obj, ecfg)
}
