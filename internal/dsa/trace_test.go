package dsa_test

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/dsa"
	"repro/internal/obs"
)

// TestTracedExplorersIdentical pins the observation contract on the
// explorer seam: traced searches return exactly what plain ones do,
// and the journal carries one restart/generation span per boundary
// under a single "explore" root.
func TestTracedExplorersIdentical(t *testing.T) {
	d := newFakeDomain(t)
	hcfg := core.HillClimbConfig{Restarts: 3, MaxSteps: 20, Seed: 42}
	ecfg := core.EvolveConfig{Population: 6, Generations: 4, Seed: 42}

	hcPlain, hcCalls, err := dsa.HillClimb(d, fakeWeights(), fakeCfg(), hcfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	evPlain, evCalls, err := dsa.Evolve(d, fakeWeights(), fakeCfg(), ecfg, nil)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	rec, err := obs.OpenDir(dir, "explorer")
	if err != nil {
		t.Fatal(err)
	}
	hcTraced, hcTracedCalls, err := dsa.HillClimbTraced(d, fakeWeights(), fakeCfg(), hcfg, nil, rec)
	if err != nil {
		t.Fatal(err)
	}
	evTraced, evTracedCalls, err := dsa.EvolveTraced(d, fakeWeights(), fakeCfg(), ecfg, nil, rec)
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(hcTraced, hcPlain) || hcTracedCalls != hcCalls {
		t.Errorf("traced HillClimb diverged: %+v/%d vs %+v/%d", hcTraced, hcTracedCalls, hcPlain, hcCalls)
	}
	if !reflect.DeepEqual(evTraced, evPlain) || evTracedCalls != evCalls {
		t.Errorf("traced Evolve diverged: %+v/%d vs %+v/%d", evTraced, evTracedCalls, evPlain, evCalls)
	}

	recs, err := obs.LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	roots := map[string]obs.Record{} // explorer attr → root record
	for _, r := range recs {
		if r.Name == "explore" {
			roots[r.AttrStr("explorer")] = r
		}
	}
	if len(roots) != 2 {
		t.Fatalf("explore roots = %d, want 2 (hillclimb, evolve)", len(roots))
	}
	restarts, generations := 0, 0
	for _, r := range recs {
		switch r.Name {
		case "restart":
			restarts++
			if r.Parent != roots["hillclimb"].ID {
				t.Errorf("restart span parented under %d, want %d", r.Parent, roots["hillclimb"].ID)
			}
		case "generation":
			generations++
			if r.Parent != roots["evolve"].ID {
				t.Errorf("generation span parented under %d, want %d", r.Parent, roots["evolve"].ID)
			}
		}
	}
	if restarts != hcfg.Restarts {
		t.Errorf("restart spans = %d, want %d", restarts, hcfg.Restarts)
	}
	if generations != ecfg.Generations {
		t.Errorf("generation spans = %d, want %d", generations, ecfg.Generations)
	}
	// Restart call counts sum to the search total (memoisation makes
	// later restarts cheaper, never double-counted).
	sum := int64(0)
	for _, r := range recs {
		if r.Name == "restart" {
			sum += r.AttrInt("calls")
		}
	}
	if sum != int64(hcCalls) {
		t.Errorf("restart span calls sum to %d, want %d", sum, hcCalls)
	}
	if got := roots["hillclimb"].AttrInt("calls"); got != int64(hcCalls) {
		t.Errorf("hillclimb root calls = %d, want %d", got, hcCalls)
	}
}

// TestTracedExplorerNilRecorder pins the degenerate path: a nil
// recorder must make the traced variants exactly the plain ones.
func TestTracedExplorerNilRecorder(t *testing.T) {
	d := newFakeDomain(t)
	hcfg := core.HillClimbConfig{Restarts: 2, MaxSteps: 10, Seed: 9}
	plain, calls, err := dsa.HillClimb(d, fakeWeights(), fakeCfg(), hcfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	traced, tracedCalls, err := dsa.HillClimbTraced(d, fakeWeights(), fakeCfg(), hcfg, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(traced, plain) || tracedCalls != calls {
		t.Errorf("nil-recorder traced HillClimb diverged")
	}
}
