package dsa_test

// External test package: it exercises the interface through the real
// domain implementations (pra registers "swarming", gossip registers
// "gossip", delivery registers "delivery"), which the dsa package
// itself must not import. TestDomainContracts below runs against every
// registered domain, so each import here buys the whole contract suite
// for that domain.

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/delivery"
	"repro/internal/dsa"
	"repro/internal/gossip"
	"repro/internal/pra"
)

func TestRegistryHasAllDomains(t *testing.T) {
	names := dsa.Names()
	for _, want := range []string{delivery.DomainName, gossip.DomainName, pra.DomainName} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("domain %q not registered (have %v)", want, names)
		}
	}
	// Names, Registered and Get agree on the same sorted universe.
	reg := dsa.Registered()
	if len(reg) != len(names) {
		t.Fatalf("Registered() has %d domains, Names() %d", len(reg), len(names))
	}
	for i, d := range reg {
		if d.Name() != names[i] {
			t.Errorf("Registered()[%d] = %q, Names()[%d] = %q", i, d.Name(), i, names[i])
		}
	}
	err := func() error { _, err := dsa.Get("no-such-domain"); return err }()
	if err == nil || !strings.Contains(err.Error(), "unknown domain") {
		t.Errorf("unknown domain lookup: err = %v", err)
	}
	// The error lists every registered name — the CLIs' typo UX.
	for _, n := range names {
		if !strings.Contains(err.Error(), n) {
			t.Errorf("unknown-domain error %q does not list %q", err, n)
		}
	}
}

func TestDomainContracts(t *testing.T) {
	for _, d := range dsa.Registered() {
		d := d
		t.Run(d.Name(), func(t *testing.T) {
			pts := d.Space().Enumerate()
			if len(pts) == 0 {
				t.Fatal("empty space")
			}
			if len(d.Measures()) == 0 {
				t.Fatal("no measures")
			}
			// The point↔ID codec must round-trip and IDs must be
			// unique — they are the checkpoint keys.
			seen := map[int]bool{}
			for _, p := range pts {
				id, err := d.PointID(p)
				if err != nil {
					t.Fatal(err)
				}
				if seen[id] {
					t.Fatalf("duplicate point ID %d", id)
				}
				seen[id] = true
				back, err := d.PointByID(id)
				if err != nil {
					t.Fatal(err)
				}
				if !p.Equal(back) {
					t.Fatalf("codec round-trip: %v → %d → %v", p, id, back)
				}
			}
			if _, err := d.DefaultConfig("quick"); err != nil {
				t.Fatalf("quick preset: %v", err)
			}
			if _, err := d.DefaultConfig("paper"); err != nil {
				t.Fatalf("paper preset: %v", err)
			}
			if _, err := d.DefaultConfig("bogus"); err == nil {
				t.Fatal("bogus preset accepted")
			}
		})
	}
}

// TestScoreSliceConcatenation pins the contract the job engine relies
// on: scoring a point set in slices equals scoring it whole.
func TestScoreSliceConcatenation(t *testing.T) {
	d := gossip.Domain()
	cfg := dsa.Config{Peers: 8, Rounds: 30, PerfRuns: 1, EncounterRuns: 1, Opponents: 3, Seed: 11}
	all := d.Space().Enumerate()
	var pts []core.Point
	for i := 0; i < len(all); i += 40 {
		pts = append(pts, all[i])
	}
	opponents := d.SampleOpponents(cfg)
	for _, m := range d.Measures() {
		whole, err := d.ScoreSlice(m, pts, opponents, cfg)
		if err != nil {
			t.Fatal(err)
		}
		var pieced []float64
		for lo := 0; lo < len(pts); lo += 2 {
			hi := min(lo+2, len(pts))
			vals, err := d.ScoreSlice(m, pts[lo:hi], opponents, cfg)
			if err != nil {
				t.Fatal(err)
			}
			pieced = append(pieced, vals...)
		}
		if !reflect.DeepEqual(whole, pieced) {
			t.Fatalf("measure %s: sliced scoring diverged from whole-set scoring", m)
		}
	}
}

func TestSamplePanel(t *testing.T) {
	all := gossip.Domain().Space().Enumerate()
	panel := dsa.SamplePanel(all, 10, 42)
	if len(panel) != 10 {
		t.Fatalf("panel size = %d, want 10", len(panel))
	}
	if !reflect.DeepEqual(panel, dsa.SamplePanel(all, 10, 42)) {
		t.Fatal("panel is not deterministic")
	}
	if got := dsa.SamplePanel(all, 0, 42); len(got) != len(all) {
		t.Fatal("0 opponents should mean the whole set")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	d := gossip.Domain()
	cfg := dsa.Config{Peers: 8, Rounds: 30, PerfRuns: 1, EncounterRuns: 1, Opponents: 3, Seed: 3}
	all := d.Space().Enumerate()
	pts := all[:6]
	opponents := d.SampleOpponents(cfg)
	raw := map[string][]float64{}
	for _, m := range d.Measures() {
		vals, err := d.ScoreSlice(m, pts, opponents, cfg)
		if err != nil {
			t.Fatal(err)
		}
		raw[m] = vals
	}
	scores, err := d.Assemble(pts, raw)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := dsa.WriteCSV(&buf, d, scores); err != nil {
		t.Fatal(err)
	}
	back, err := dsa.ReadCSV(bytes.NewReader(buf.Bytes()), d)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Points) != len(pts) {
		t.Fatalf("round-trip lost points: %d of %d", len(back.Points), len(pts))
	}
	for i, p := range pts {
		if !p.Equal(back.Points[i]) {
			t.Fatalf("point %d changed: %v → %v", i, p, back.Points[i])
		}
	}
	for _, m := range d.Measures() {
		for i := range pts {
			if diff := scores.Values[m][i] - back.Values[m][i]; diff > 1e-6 || diff < -1e-6 {
				t.Fatalf("measure %s value %d drifted: %v → %v", m, i, scores.Values[m][i], back.Values[m][i])
			}
		}
	}
}

// TestExplorersOnGossipDomain: the Section 7 explorers run on any
// domain against a measure-weight blend.
func TestExplorersOnGossipDomain(t *testing.T) {
	d := gossip.Domain()
	cfg := dsa.Config{Peers: 8, Rounds: 30, PerfRuns: 1, EncounterRuns: 1, Opponents: 3, Seed: 5}
	w := dsa.Weights{gossip.MeasureCoverage: 1}
	best, calls, err := dsa.HillClimb(d, w, cfg, core.HillClimbConfig{Restarts: 2, MaxSteps: 10, Seed: 9}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if calls <= 0 || calls >= d.Space().Size() {
		t.Fatalf("hill climb made %d objective calls (space %d)", calls, d.Space().Size())
	}
	if !d.Space().Valid(best.Point) {
		t.Fatalf("hill climb returned invalid point %v", best.Point)
	}
	again, _, err := dsa.HillClimb(d, w, cfg, core.HillClimbConfig{Restarts: 2, MaxSteps: 10, Seed: 9}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(best, again) {
		t.Fatal("hill climb is not deterministic")
	}

	if _, _, err := dsa.HillClimb(d, dsa.Weights{"bogus": 1}, cfg, core.HillClimbConfig{Restarts: 1, MaxSteps: 1, Seed: 1}, nil); err == nil {
		t.Fatal("unknown measure weight accepted")
	}
}

func TestConfigValidateChurnRange(t *testing.T) {
	ok := dsa.Config{Peers: 4, Rounds: 5, PerfRuns: 1, EncounterRuns: 1}
	for _, churn := range []float64{0, 0.01, 0.5, 1} {
		c := ok
		c.Churn = churn
		if err := c.Validate(); err != nil {
			t.Errorf("churn %v rejected: %v", churn, err)
		}
	}
	for _, churn := range []float64{-0.01, 1.01, math.NaN(), math.Inf(1), math.Inf(-1)} {
		c := ok
		c.Churn = churn
		if err := c.Validate(); err == nil {
			t.Errorf("churn %v accepted, want error", churn)
		}
	}
}
