package dsa

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
)

// JSONFloats is []float64 that survives JSON. encoding/json rejects
// NaN and ±Inf, but a domain's ScoreSlice may legitimately produce
// them (a diverging measure, a 0/0 ratio), so every JSON surface that
// carries score vectors — checkpoint result files (internal/job) and
// the grid wire (internal/grid) — encodes non-finite values as the
// same canonical tokens the CSV codec uses: "NaN", "+Inf", "-Inf".
type JSONFloats []float64

func (f JSONFloats) MarshalJSON() ([]byte, error) {
	var b bytes.Buffer
	b.WriteByte('[')
	for i, v := range f {
		if i > 0 {
			b.WriteByte(',')
		}
		switch {
		case math.IsNaN(v):
			b.WriteString(`"NaN"`)
		case math.IsInf(v, 1):
			b.WriteString(`"+Inf"`)
		case math.IsInf(v, -1):
			b.WriteString(`"-Inf"`)
		default:
			num, err := json.Marshal(v)
			if err != nil {
				return nil, err
			}
			b.Write(num)
		}
	}
	b.WriteByte(']')
	return b.Bytes(), nil
}

func (f *JSONFloats) UnmarshalJSON(raw []byte) error {
	var mixed []json.RawMessage
	if err := json.Unmarshal(raw, &mixed); err != nil {
		return err
	}
	out := make([]float64, len(mixed))
	for i, m := range mixed {
		if err := json.Unmarshal(m, &out[i]); err == nil {
			continue
		}
		var s string
		if err := json.Unmarshal(m, &s); err != nil {
			return fmt.Errorf("dsa: value %d is neither a number nor a token: %s", i, m)
		}
		switch s {
		case "NaN":
			out[i] = math.NaN()
		case "+Inf":
			out[i] = math.Inf(1)
		case "-Inf":
			out[i] = math.Inf(-1)
		default:
			return fmt.Errorf("dsa: unknown score token %q at index %d", s, i)
		}
	}
	*f = out
	return nil
}
