package dsa

import (
	"repro/internal/core"
	"repro/internal/obs"
)

// HillClimbTraced is HillClimb with span recording: an "explore" root
// span for the whole search and a "restart" child span per restart
// (steps, fresh objective calls, converged score). The search itself
// is untouched — same seeds, same memoisation, same result — and a
// nil recorder makes this exactly HillClimb. Installs its own
// hcfg.OnRestart; callers wanting both tracing and their own hook
// should chain inside the hook they pass to plain HillClimb.
func HillClimbTraced(d Domain, w Weights, cfg Config, hcfg core.HillClimbConfig, c ScoreCache, rec *obs.Recorder) (core.Evaluation, int, error) {
	if rec == nil {
		return HillClimb(d, w, cfg, hcfg, c)
	}
	root := rec.Start(0, "explore").
		Str("domain", d.Name()).
		Str("explorer", "hillclimb").
		Int("restarts", int64(hcfg.Restarts))
	last := rec.Now()
	prev := hcfg.OnRestart
	hcfg.OnRestart = func(restart, steps, calls int, got core.Evaluation) {
		now := rec.Now()
		rec.Interval(root.ID(), "restart", last, now).
			Int("restart", int64(restart)).
			Int("steps", int64(steps)).
			Int("calls", int64(calls)).
			Float("score", got.Score).
			End()
		last = now
		if prev != nil {
			prev(restart, steps, calls, got)
		}
	}
	best, calls, err := HillClimb(d, w, cfg, hcfg, c)
	if err != nil {
		root.Drop()
		return best, calls, err
	}
	root.Int("calls", int64(calls)).Float("best", best.Score).End()
	return best, calls, nil
}

// EvolveTraced is Evolve with span recording: an "explore" root span
// and a "generation" child span per generation (fresh objective calls,
// generation best). Same contract as HillClimbTraced: observation
// only, nil recorder degrades to plain Evolve.
func EvolveTraced(d Domain, w Weights, cfg Config, ecfg core.EvolveConfig, c ScoreCache, rec *obs.Recorder) (core.Evaluation, int, error) {
	if rec == nil {
		return Evolve(d, w, cfg, ecfg, c)
	}
	root := rec.Start(0, "explore").
		Str("domain", d.Name()).
		Str("explorer", "evolve").
		Int("generations", int64(ecfg.Generations)).
		Int("population", int64(ecfg.Population))
	last := rec.Now()
	prev := ecfg.OnGeneration
	ecfg.OnGeneration = func(gen, calls int, gbest core.Evaluation) {
		now := rec.Now()
		rec.Interval(root.ID(), "generation", last, now).
			Int("generation", int64(gen)).
			Int("calls", int64(calls)).
			Float("score", gbest.Score).
			End()
		last = now
		if prev != nil {
			prev(gen, calls, gbest)
		}
	}
	best, calls, err := Evolve(d, w, cfg, ecfg, c)
	if err != nil {
		root.Drop()
		return best, calls, err
	}
	root.Int("calls", int64(calls)).Float("best", best.Score).End()
	return best, calls, nil
}
