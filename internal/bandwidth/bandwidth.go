// Package bandwidth models the upload-capacity distribution used to
// initialise peers in every experiment.
//
// The paper initialises peers "using the bandwidth distribution provided
// by Piatek et al." (NSDI'07), a measured distribution of BitTorrent
// peers' upload capacities. We do not have the raw trace, so this
// package ships a synthetic piecewise-linear empirical CDF with the
// published shape: heavy-tailed, a median around 50 KB/s, a slow 10th
// percentile around 10 KB/s, and a 99th percentile in the multi-MB/s
// range. Only the heterogeneity — the existence of distinct slow and
// fast bandwidth classes with a long tail — drives the paper's dynamics
// (class-based reciprocation, opportunity cost), so this substitution
// preserves the relevant behaviour. See DESIGN.md.
//
// All capacities are in KiB/s to match the paper's units (the seeder in
// Section 5 uploads at 128 KBps).
package bandwidth

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Point is one knot of an empirical CDF: P(X <= KBps) = Q.
type Point struct {
	Q    float64 // cumulative probability in [0,1]
	KBps float64 // upload capacity in KiB/s
}

// Distribution is a piecewise-linear inverse-CDF sampler over upload
// capacities. The zero value is unusable; use Piatek or New.
type Distribution struct {
	points []Point
}

// Piatek returns the default distribution, a synthetic stand-in for the
// measured BitTorrent upload-capacity distribution of Piatek et al.
// (NSDI'07) used by the paper: mostly cable/DSL-class uploaders with a
// long heavy tail of high-capacity peers.
func Piatek() *Distribution {
	d, err := New([]Point{
		{0.00, 4},
		{0.10, 10},
		{0.25, 24},
		{0.50, 50},
		{0.75, 110},
		{0.90, 350},
		{0.95, 800},
		{0.99, 5000},
		{1.00, 10000},
	})
	if err != nil {
		panic("bandwidth: invalid built-in distribution: " + err.Error())
	}
	return d
}

// Uniform returns a degenerate distribution where every peer has the
// same capacity, useful for isolating incentive effects from
// heterogeneity in tests and ablations.
func Uniform(kbps float64) *Distribution {
	d, err := New([]Point{{0, kbps}, {1, kbps}})
	if err != nil {
		panic("bandwidth: invalid uniform distribution: " + err.Error())
	}
	return d
}

// TwoClass returns a distribution with a fraction fracSlow of peers at
// slowKBps and the rest at fastKBps — the two-class world of the
// paper's Section 2 game-theoretic analysis.
func TwoClass(slowKBps, fastKBps, fracSlow float64) (*Distribution, error) {
	if fracSlow <= 0 || fracSlow >= 1 {
		return nil, fmt.Errorf("bandwidth: fracSlow %v outside (0,1)", fracSlow)
	}
	eps := 1e-9
	return New([]Point{
		{0, slowKBps},
		{fracSlow - eps, slowKBps},
		{fracSlow + eps, fastKBps},
		{1, fastKBps},
	})
}

// New builds a distribution from CDF knots. Knots must be sorted by Q,
// start at Q=0, end at Q=1, and have finite, non-negative,
// non-decreasing capacities. Every violation gets its own error naming
// the offending knot — NaN included: a NaN Q would sail through plain
// ordering comparisons (every comparison with NaN is false) and
// corrupt sampling silently, so it is rejected explicitly.
func New(points []Point) (*Distribution, error) {
	if len(points) < 2 {
		return nil, fmt.Errorf("bandwidth: need at least 2 points, got %d", len(points))
	}
	for i, p := range points {
		if math.IsNaN(p.Q) || p.Q < 0 || p.Q > 1 {
			return nil, fmt.Errorf("bandwidth: knot %d has Q=%v, want a value in [0,1]", i, p.Q)
		}
		if math.IsNaN(p.KBps) || math.IsInf(p.KBps, 0) || p.KBps < 0 {
			return nil, fmt.Errorf("bandwidth: knot %d has capacity %v KiB/s, want finite and >= 0", i, p.KBps)
		}
	}
	if points[0].Q != 0 || points[len(points)-1].Q != 1 {
		return nil, fmt.Errorf("bandwidth: CDF must span Q=0..1")
	}
	for i := 1; i < len(points); i++ {
		if points[i].Q < points[i-1].Q {
			return nil, fmt.Errorf("bandwidth: Q not sorted at knot %d", i)
		}
		if points[i].KBps < points[i-1].KBps {
			return nil, fmt.Errorf("bandwidth: capacities must be non-decreasing at knot %d", i)
		}
	}
	cp := make([]Point, len(points))
	copy(cp, points)
	return &Distribution{points: cp}, nil
}

// SampleQ returns the capacity at cumulative probability q in [0,1] by
// linear interpolation (the inverse CDF).
func (d *Distribution) SampleQ(q float64) float64 {
	pts := d.points
	if q <= 0 {
		return pts[0].KBps
	}
	if q >= 1 {
		return pts[len(pts)-1].KBps
	}
	i := sort.Search(len(pts), func(i int) bool { return pts[i].Q >= q })
	if i == 0 {
		return pts[0].KBps
	}
	a, b := pts[i-1], pts[i]
	if b.Q == a.Q {
		return b.KBps
	}
	frac := (q - a.Q) / (b.Q - a.Q)
	return a.KBps + frac*(b.KBps-a.KBps)
}

// Sample draws one capacity using rng.
func (d *Distribution) Sample(rng *rand.Rand) float64 {
	return d.SampleQ(rng.Float64())
}

// SampleN draws n capacities using rng.
func (d *Distribution) SampleN(rng *rand.Rand, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = d.Sample(rng)
	}
	return out
}

// Stratified returns n capacities spread evenly over the CDF
// (quantiles (i+0.5)/n), giving every run the same representative
// population mix without sampling noise. Experiments use this for
// population initialisation so that encounter outcomes reflect protocol
// differences rather than bandwidth-draw luck.
func (d *Distribution) Stratified(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = d.SampleQ((float64(i) + 0.5) / float64(n))
	}
	return out
}

// Median returns the distribution's median capacity.
func (d *Distribution) Median() float64 { return d.SampleQ(0.5) }

// Class identifies a bandwidth class once a population is partitioned.
type Class int

// The three coarse classes used when reasoning about class dynamics.
const (
	Slow Class = iota
	Medium
	Fast
)

// String returns the class name.
func (c Class) String() string {
	switch c {
	case Slow:
		return "slow"
	case Medium:
		return "medium"
	case Fast:
		return "fast"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Classify partitions capacities into Slow/Medium/Fast by the
// distribution's terciles and returns the class of each input.
func (d *Distribution) Classify(capacities []float64) []Class {
	t1 := d.SampleQ(1.0 / 3.0)
	t2 := d.SampleQ(2.0 / 3.0)
	out := make([]Class, len(capacities))
	for i, c := range capacities {
		switch {
		case c <= t1:
			out[i] = Slow
		case c <= t2:
			out[i] = Medium
		default:
			out[i] = Fast
		}
	}
	return out
}
