package bandwidth

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

func TestPiatekShape(t *testing.T) {
	d := Piatek()
	if m := d.Median(); m != 50 {
		t.Errorf("median = %v, want 50", m)
	}
	if q := d.SampleQ(0.10); q != 10 {
		t.Errorf("p10 = %v, want 10", q)
	}
	if q := d.SampleQ(0.99); q != 5000 {
		t.Errorf("p99 = %v, want 5000", q)
	}
	// Heavy tail: mean far above median.
	xs := d.Stratified(10000)
	if mean := stats.Mean(xs); mean < 2*d.Median() {
		t.Errorf("mean %v should exceed 2×median %v (heavy tail)", mean, d.Median())
	}
}

func TestSampleQInterpolation(t *testing.T) {
	d, err := New([]Point{{0, 0}, {1, 100}})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []struct{ q, want float64 }{
		{0, 0}, {0.5, 50}, {1, 100}, {-1, 0}, {2, 100}, {0.25, 25},
	} {
		if got := d.SampleQ(c.q); got != c.want {
			t.Errorf("SampleQ(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestNewValidation(t *testing.T) {
	cases := [][]Point{
		{{0, 1}},                             // too few
		{{0.1, 1}, {1, 2}},                   // doesn't start at 0
		{{0, 1}, {0.9, 2}},                   // doesn't end at 1
		{{0, 1}, {0.6, 2}, {0.5, 3}, {1, 4}}, // Q not sorted
		{{0, 5}, {1, 2}},                     // capacity decreasing
	}
	for i, pts := range cases {
		if _, err := New(pts); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestUniform(t *testing.T) {
	d := Uniform(64)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		if v := d.Sample(rng); v != 64 {
			t.Fatalf("uniform sample = %v", v)
		}
	}
}

func TestTwoClass(t *testing.T) {
	d, err := TwoClass(10, 100, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	xs := d.Stratified(100)
	slow, fast := 0, 0
	for _, x := range xs {
		switch x {
		case 10:
			slow++
		case 100:
			fast++
		default:
			t.Fatalf("unexpected capacity %v", x)
		}
	}
	if slow != 50 || fast != 50 {
		t.Errorf("split = %d/%d, want 50/50", slow, fast)
	}
	if _, err := TwoClass(10, 100, 0); err == nil {
		t.Error("fracSlow 0 should error")
	}
	if _, err := TwoClass(10, 100, 1); err == nil {
		t.Error("fracSlow 1 should error")
	}
}

func TestStratifiedIsSortedAndDeterministic(t *testing.T) {
	d := Piatek()
	a := d.Stratified(50)
	b := d.Stratified(50)
	if !sort.Float64sAreSorted(a) {
		t.Error("stratified sample should be sorted")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("stratified sampling should be deterministic")
		}
	}
}

func TestSampleWithinSupportProperty(t *testing.T) {
	d := Piatek()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 100; i++ {
			v := d.Sample(rng)
			if v < 4 || v > 10000 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSampleN(t *testing.T) {
	d := Piatek()
	rng := rand.New(rand.NewSource(9))
	xs := d.SampleN(rng, 17)
	if len(xs) != 17 {
		t.Fatalf("len = %d", len(xs))
	}
}

func TestInverseCDFMonotoneProperty(t *testing.T) {
	d := Piatek()
	prev := d.SampleQ(0)
	for q := 0.0; q <= 1.0; q += 0.001 {
		v := d.SampleQ(q)
		if v < prev {
			t.Fatalf("inverse CDF not monotone at q=%v", q)
		}
		prev = v
	}
}

func TestClassify(t *testing.T) {
	d := Piatek()
	classes := d.Classify([]float64{5, 50, 9000})
	if classes[0] != Slow || classes[2] != Fast {
		t.Errorf("classes = %v", classes)
	}
	// Class string rendering.
	if Slow.String() != "slow" || Medium.String() != "medium" || Fast.String() != "fast" {
		t.Error("class names wrong")
	}
	if Class(42).String() == "" {
		t.Error("unknown class should still render")
	}
}

func TestClassifyTerciles(t *testing.T) {
	d := Uniform(10)
	// With a degenerate distribution everything is <= tercile → Slow.
	for _, c := range d.Classify([]float64{10, 10}) {
		if c != Slow {
			t.Errorf("uniform classify = %v", c)
		}
	}
}
