package bandwidth

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

func TestPiatekShape(t *testing.T) {
	d := Piatek()
	if m := d.Median(); m != 50 {
		t.Errorf("median = %v, want 50", m)
	}
	if q := d.SampleQ(0.10); q != 10 {
		t.Errorf("p10 = %v, want 10", q)
	}
	if q := d.SampleQ(0.99); q != 5000 {
		t.Errorf("p99 = %v, want 5000", q)
	}
	// Heavy tail: mean far above median.
	xs := d.Stratified(10000)
	if mean := stats.Mean(xs); mean < 2*d.Median() {
		t.Errorf("mean %v should exceed 2×median %v (heavy tail)", mean, d.Median())
	}
}

func TestSampleQInterpolation(t *testing.T) {
	d, err := New([]Point{{0, 0}, {1, 100}})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []struct{ q, want float64 }{
		{0, 0}, {0.5, 50}, {1, 100}, {-1, 0}, {2, 100}, {0.25, 25},
	} {
		if got := d.SampleQ(c.q); got != c.want {
			t.Errorf("SampleQ(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestNewValidation(t *testing.T) {
	cases := []struct {
		pts  []Point
		want string // substring the error must carry
	}{
		{[]Point{{0, 1}}, "at least 2"},                                 // too few
		{[]Point{{0.1, 1}, {1, 2}}, "span Q=0..1"},                      // doesn't start at 0
		{[]Point{{0, 1}, {0.9, 2}}, "span Q=0..1"},                      // doesn't end at 1
		{[]Point{{0, 1}, {0.6, 2}, {0.5, 3}, {1, 4}}, "not sorted"},     // Q not sorted
		{[]Point{{0, 5}, {1, 2}}, "non-decreasing"},                     // capacity decreasing
		{[]Point{{0, 1}, {math.NaN(), 2}, {1, 3}}, "knot 1"},            // NaN Q: unsortable, must not slip through
		{[]Point{{0, 1}, {1.5, 2}, {1, 3}}, "knot 1"},                   // Q above 1 mid-CDF
		{[]Point{{0, 1}, {-0.5, 2}, {1, 3}}, "knot 1"},                  // negative Q mid-CDF
		{[]Point{{0, 1}, {0.5, math.NaN()}, {1, 3}}, "knot 1"},          // NaN capacity
		{[]Point{{0, 1}, {0.5, math.Inf(1)}, {1, math.Inf(1)}}, "knot"}, // infinite capacity
		{[]Point{{0, -3}, {1, 2}}, "knot 0"},                            // negative capacity
	}
	for i, c := range cases {
		_, err := New(c.pts)
		if err == nil {
			t.Errorf("case %d: expected error", i)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("case %d: error %q should contain %q", i, err, c.want)
		}
	}
}

// randomCDF builds a valid random CDF from a seed: sorted Q spanning
// 0..1, finite non-decreasing capacities.
func randomCDF(seed int64) []Point {
	rng := rand.New(rand.NewSource(seed))
	n := 2 + rng.Intn(8)
	pts := make([]Point, n)
	q := 0.0
	kbps := rng.Float64() * 100
	for i := range pts {
		pts[i] = Point{Q: q, KBps: kbps}
		q += rng.Float64()
		kbps += rng.Float64() * 1000
	}
	// Rescale Q onto exactly [0,1].
	span := pts[n-1].Q
	if span == 0 {
		span = 1
	}
	for i := range pts {
		pts[i].Q /= span
	}
	pts[0].Q, pts[n-1].Q = 0, 1
	return pts
}

// TestNewAcceptsValidRejectsMutatedProperty: every randomly generated
// valid CDF is accepted, and a random order-breaking mutation of it is
// rejected — the validator's acceptance region is exactly the
// contract, not a lucky subset of hand-picked cases.
func TestNewAcceptsValidRejectsMutatedProperty(t *testing.T) {
	f := func(seed int64) bool {
		pts := randomCDF(seed)
		if _, err := New(pts); err != nil {
			t.Logf("seed %d: valid CDF rejected: %v", seed, err)
			return false
		}
		rng := rand.New(rand.NewSource(seed ^ 0x5eed))
		mutated := make([]Point, len(pts))
		copy(mutated, pts)
		i := rng.Intn(len(mutated))
		switch rng.Intn(4) {
		case 0:
			mutated[i].Q = math.NaN()
		case 1:
			mutated[i].Q = 1 + rng.Float64() // out of range
		case 2:
			mutated[i].KBps = -1 - rng.Float64()*100
		case 3:
			if i == 0 {
				i = 1
			}
			// Break capacity monotonicity below the previous knot.
			mutated[i].KBps = mutated[i-1].KBps - 1 - rng.Float64()
		}
		if _, err := New(mutated); err == nil {
			t.Logf("seed %d: mutated CDF %v accepted", seed, mutated)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestSamplingDeterministicProperty: for any valid CDF and any seed,
// two samplers with equal seeds walk the quantile range identically —
// SampleQ is a pure function and Sample/SampleN consume the rng
// identically. The delivery domain's byte-identity guarantees sit on
// exactly this.
func TestSamplingDeterministicProperty(t *testing.T) {
	f := func(seed int64) bool {
		d, err := New(randomCDF(seed))
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		// Pure inverse-CDF determinism across the quantile range.
		for q := 0.0; q <= 1.0; q += 0.01 {
			if a, b := d.SampleQ(q), d.SampleQ(q); a != b {
				t.Logf("seed %d: SampleQ(%v) unstable: %v vs %v", seed, q, a, b)
				return false
			}
		}
		// rng-driven draws: equal seeds, equal streams.
		ra, rb := rand.New(rand.NewSource(seed)), rand.New(rand.NewSource(seed))
		as, bs := d.SampleN(ra, 64), d.SampleN(rb, 64)
		for i := range as {
			if as[i] != bs[i] {
				t.Logf("seed %d: SampleN diverged at %d", seed, i)
				return false
			}
		}
		// And the support is respected.
		lo, hi := d.SampleQ(0), d.SampleQ(1)
		for _, v := range as {
			if v < lo || v > hi {
				t.Logf("seed %d: sample %v outside [%v,%v]", seed, v, lo, hi)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestUniform(t *testing.T) {
	d := Uniform(64)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		if v := d.Sample(rng); v != 64 {
			t.Fatalf("uniform sample = %v", v)
		}
	}
}

func TestTwoClass(t *testing.T) {
	d, err := TwoClass(10, 100, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	xs := d.Stratified(100)
	slow, fast := 0, 0
	for _, x := range xs {
		switch x {
		case 10:
			slow++
		case 100:
			fast++
		default:
			t.Fatalf("unexpected capacity %v", x)
		}
	}
	if slow != 50 || fast != 50 {
		t.Errorf("split = %d/%d, want 50/50", slow, fast)
	}
	if _, err := TwoClass(10, 100, 0); err == nil {
		t.Error("fracSlow 0 should error")
	}
	if _, err := TwoClass(10, 100, 1); err == nil {
		t.Error("fracSlow 1 should error")
	}
}

func TestStratifiedIsSortedAndDeterministic(t *testing.T) {
	d := Piatek()
	a := d.Stratified(50)
	b := d.Stratified(50)
	if !sort.Float64sAreSorted(a) {
		t.Error("stratified sample should be sorted")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("stratified sampling should be deterministic")
		}
	}
}

func TestSampleWithinSupportProperty(t *testing.T) {
	d := Piatek()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 100; i++ {
			v := d.Sample(rng)
			if v < 4 || v > 10000 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSampleN(t *testing.T) {
	d := Piatek()
	rng := rand.New(rand.NewSource(9))
	xs := d.SampleN(rng, 17)
	if len(xs) != 17 {
		t.Fatalf("len = %d", len(xs))
	}
}

func TestInverseCDFMonotoneProperty(t *testing.T) {
	d := Piatek()
	prev := d.SampleQ(0)
	for q := 0.0; q <= 1.0; q += 0.001 {
		v := d.SampleQ(q)
		if v < prev {
			t.Fatalf("inverse CDF not monotone at q=%v", q)
		}
		prev = v
	}
}

func TestClassify(t *testing.T) {
	d := Piatek()
	classes := d.Classify([]float64{5, 50, 9000})
	if classes[0] != Slow || classes[2] != Fast {
		t.Errorf("classes = %v", classes)
	}
	// Class string rendering.
	if Slow.String() != "slow" || Medium.String() != "medium" || Fast.String() != "fast" {
		t.Error("class names wrong")
	}
	if Class(42).String() == "" {
		t.Error("unknown class should still render")
	}
}

func TestClassifyTerciles(t *testing.T) {
	d := Uniform(10)
	// With a degenerate distribution everything is <= tercile → Slow.
	for _, c := range d.Classify([]float64{10, 10}) {
		if c != Slow {
			t.Errorf("uniform classify = %v", c)
		}
	}
}
